// Content distribution: Crescendo with proximity adaptation on a
// transit-stub internet model. Popular content is fetched by many clients;
// inter-domain path convergence lets proxy caches absorb most of the load
// and the reverse paths form a cheap multicast tree (Sections 4.2, 5.4).
#include <iostream>

#include "canon/crescendo.h"
#include "canon/proximity.h"
#include "common/rng.h"
#include "common/table.h"
#include "overlay/metrics.h"
#include "storage/hierarchical_store.h"
#include "topology/physical_network.h"

using namespace canon;

int main() {
  // A small internet: 4 transit domains, 680 routers, 2000 overlay nodes.
  Rng rng(2004);  // ICDCS 2004
  TransitStubConfig topo_cfg;
  topo_cfg.transit_domains = 4;
  topo_cfg.transit_per_domain = 4;
  topo_cfg.stub_domains_per_transit = 4;
  topo_cfg.stubs_per_domain = 10;
  const PhysicalNetwork phys(topo_cfg, rng);
  const OverlayNetwork net = make_physical_population(2000, phys, 32, rng);
  const HopCost latency = host_hop_cost(net, phys);

  const LinkTable links = build_crescendo(net);
  std::cout << "CDN overlay: " << net.size() << " nodes over "
            << phys.topology().router_count() << " routers\n\n";

  // One popular object, stored globally.
  HierarchicalStore store(net, links, /*cache_capacity=*/16);
  const NodeId video = 0xCAFE0001;
  store.put(0, video, "big-buck-bunny.mp4", 0, 0);

  // 500 random clients fetch it; measure how the latency of a fetch decays
  // as proxy caches fill up.
  Summary first100;
  Summary last100;
  MulticastTree tree;
  for (int i = 0; i < 500; ++i) {
    const auto client = static_cast<std::uint32_t>(rng.uniform(net.size()));
    const GetResult got = store.get(client, video);
    if (got.source == AnswerSource::kNotFound) continue;
    const double ms = path_cost(got.route, latency);
    (i < 100 ? first100 : last100).add(ms);
    tree.add_route(got.route);
  }
  std::cout << "mean fetch latency, first 100 clients: "
            << TextTable::num(first100.mean(), 0) << " ms\n";
  std::cout << "mean fetch latency, later clients:     "
            << TextTable::num(last100.mean(), 0) << " ms  (proxy caches "
               "absorb repeat fetches near the clients)\n\n";

  // The union of the query paths doubles as a multicast tree for pushing
  // an update of the object back out.
  std::cout << "multicast tree for pushing an update: " << tree.edge_count()
            << " edges total\n";
  for (int level = 1; level <= 3; ++level) {
    std::cout << "  crossing level-" << level
              << " domain boundaries: "
              << tree.inter_domain_edges(net, level) << "\n";
  }
  std::cout << "(expensive wide-area links carry the object once per "
               "domain, not once per client)\n";
  return 0;
}
