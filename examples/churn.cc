// Churn: nodes joining and leaving a live Crescendo DHT (Section 2.3).
// Joins cost O(log n) messages, routing keeps working throughout, and the
// incrementally maintained structure stays byte-identical to a
// from-scratch build.
//
// Flags: --nodes=600 --pairs=200 --seed=42 --snapshot-every=100
//        --journal=<path> (JSONL event journal, docs/TELEMETRY.md)
//        --json=<path>    (BenchReport with per-snapshot audit rows)
// The run fails (exit 1) if routing degrades, the maintained links drift
// from a from-scratch construction, or the final structural audit reports
// any violation.
#include <cmath>
#include <iostream>
#include <memory>

#include "audit/auditor.h"
#include "overlay/family_registry.h"
#include "bench/bench_util.h"
#include "canon/crescendo.h"
#include "common/rng.h"
#include "common/table.h"
#include "hierarchy/generators.h"
#include "maintenance/dynamic_crescendo.h"
#include "overlay/routing.h"
#include "telemetry/journal.h"
#include "telemetry/metrics.h"

using namespace canon;

int main(int argc, char** argv) {
  bench::BenchRun run(argc, argv, "churn");
  const std::uint64_t target_nodes = run.u64("nodes", 600);
  const std::uint64_t pairs = run.u64("pairs", 200);
  const std::uint64_t snapshot_every = run.u64("snapshot-every", 100);
  const std::string journal_path = run.str("journal", "");

  // Collect maintenance metrics for the whole run. The registry must be
  // installed before DynamicCrescendo is constructed so its instruments
  // resolve against it; BenchRun already installed one when --json was
  // given, otherwise install a local one for the printout below.
  telemetry::MetricsRegistry local;
  telemetry::MetricsRegistry* prev = nullptr;
  const bool own_registry = !run.json_enabled();
  if (own_registry) prev = telemetry::install_registry(&local);
  telemetry::MetricsRegistry& registry = own_registry ? local : run.metrics();

  Rng rng(run.seed * 13 + 77);
  const IdSpace space(32);
  HierarchySpec hier;
  hier.levels = 3;
  hier.fanout = 5;
  DynamicCrescendo dht(space);

  std::unique_ptr<telemetry::EventJournal> journal;
  if (!journal_path.empty()) {
    journal = std::make_unique<telemetry::EventJournal>(journal_path);
  }
  dht.set_journal(journal.get());

  // Structural audit of the current state; snapshots flow into the
  // journal and the JSON report every --snapshot-every membership ops.
  std::uint64_t ops = 0;
  const auto audit_now = [&] {
    const LinkTable table = dht.link_table();
    return registry::audit_family("crescendo", dht.network(), table);
  };
  const auto snapshot = [&] {
    const audit::AuditReport report = audit_now();
    if (journal) {
      journal->audit_snapshot(dht.size(), report.total_checks(),
                              report.violations.size());
    }
    telemetry::JsonValue row = telemetry::JsonValue::object();
    row.set("op", telemetry::JsonValue(ops));
    row.set("size",
            telemetry::JsonValue(static_cast<std::uint64_t>(dht.size())));
    row.set("audit", report.to_json());
    run.report().add_row(std::move(row));
    return report;
  };
  const auto after_op = [&] {
    ++ops;
    if (snapshot_every > 0 && ops % snapshot_every == 0) snapshot();
  };

  // Grow to the target size.
  Summary join_msgs;
  while (dht.size() < target_nodes) {
    const auto ids = sample_unique_ids(1, space, rng);
    const auto paths = generate_hierarchy(1, hier, rng);
    const MaintenanceCost c = dht.join({ids[0], paths[0], -1});
    join_msgs.add(c.messages());
    after_op();
  }
  std::cout << "grew to " << dht.size() << " nodes; mean join cost "
            << TextTable::num(join_msgs.mean(), 1) << " messages (log2(n) = "
            << TextTable::num(std::log2(static_cast<double>(target_nodes)), 1)
            << ")\n";

  // Churn: random leaves interleaved with joins.
  Summary leave_msgs;
  for (std::uint64_t i = 0; i < pairs; ++i) {
    const auto victim = static_cast<std::uint32_t>(
        rng.uniform(dht.network().size()));
    leave_msgs.add(dht.leave(dht.network().id(victim)).messages());
    after_op();
    const auto ids = sample_unique_ids(1, space, rng);
    const auto paths = generate_hierarchy(1, hier, rng);
    dht.join({ids[0], paths[0], -1});
    after_op();
  }
  std::cout << "after " << pairs << " leave/join pairs; mean leave cost "
            << TextTable::num(leave_msgs.mean(), 1) << " messages\n";

  // Routing still works from everywhere.
  const LinkTable links = dht.link_table();
  const RingRouter router(dht.network(), links);
  int ok = 0;
  for (int t = 0; t < 1000; ++t) {
    const auto from = static_cast<std::uint32_t>(
        rng.uniform(dht.network().size()));
    const NodeId key = space.wrap(rng());
    ok += router.route(from, key).ok;
  }
  std::cout << "routing success after churn: " << ok << "/1000\n";

  // The maintained structure equals a from-scratch build.
  const LinkTable scratch = build_crescendo(dht.network());
  bool identical = true;
  for (std::uint32_t m = 0; m < dht.network().size() && identical; ++m) {
    const auto a = links.neighbors(m);
    const auto b = scratch.neighbors(m);
    identical = a.size() == b.size() &&
                std::equal(a.begin(), a.end(), b.begin());
  }
  std::cout << "incrementally maintained links "
            << (identical ? "MATCH" : "DIFFER FROM")
            << " a from-scratch construction\n";

  // Final structural audit (always journaled/reported when enabled).
  const audit::AuditReport final_audit = snapshot();
  if (journal) journal->flush();
  std::cout << "structural audit: " << final_audit.summary() << "\n";

  // Leaf sets at each level of one node.
  const NodeId probe = dht.network().id(0);
  std::cout << "\nleaf sets of node " << id_to_hex(probe) << ":\n";
  for (int level = 0;
       level <= dht.network().domains().node_depth(0); ++level) {
    std::cout << "  level " << level << ":";
    for (const NodeId s : dht.leaf_set(probe, level, 4)) {
      std::cout << " " << id_to_hex(s);
    }
    std::cout << "\n";
  }

  // What the telemetry layer saw, without any bookkeeping in the loops
  // above: the DynamicCrescendo instruments record into the registry.
  std::cout << "\ntelemetry:\n";
  for (const auto& [name, counter] : registry.counters()) {
    std::cout << "  " << name << " = " << counter.value() << "\n";
  }
  for (const auto& [name, hist] : registry.histograms()) {
    std::cout << "  " << name << ": n=" << hist.count() << ", mean "
              << TextTable::num(hist.mean_ms(), 3) << " ms, p99 "
              << TextTable::num(hist.quantile_upper_ms(0.99), 3) << " ms\n";
  }
  if (own_registry) telemetry::install_registry(prev);
  const int rc = run.finish();
  if (rc != 0) return rc;
  return identical && ok == 1000 && final_audit.ok() ? 0 : 1;
}
