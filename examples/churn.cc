// Churn: nodes joining and leaving a live Crescendo DHT (Section 2.3).
// Joins cost O(log n) messages, routing keeps working throughout, and the
// incrementally maintained structure stays byte-identical to a
// from-scratch build.
#include <cmath>
#include <iostream>

#include "canon/crescendo.h"
#include "common/rng.h"
#include "common/table.h"
#include "hierarchy/generators.h"
#include "maintenance/dynamic_crescendo.h"
#include "overlay/routing.h"
#include "telemetry/metrics.h"

using namespace canon;

int main() {
  // Collect maintenance metrics for the whole run. The registry must be
  // installed before DynamicCrescendo is constructed so its instruments
  // resolve against it.
  telemetry::MetricsRegistry registry;
  telemetry::install_registry(&registry);
  Rng rng(77);
  const IdSpace space(32);
  HierarchySpec hier;
  hier.levels = 3;
  hier.fanout = 5;
  DynamicCrescendo dht(space);

  // Grow to 600 nodes.
  Summary join_msgs;
  while (dht.size() < 600) {
    const auto ids = sample_unique_ids(1, space, rng);
    const auto paths = generate_hierarchy(1, hier, rng);
    const MaintenanceCost c = dht.join({ids[0], paths[0], -1});
    join_msgs.add(c.messages());
  }
  std::cout << "grew to " << dht.size() << " nodes; mean join cost "
            << TextTable::num(join_msgs.mean(), 1) << " messages (log2(n) = "
            << TextTable::num(std::log2(600.0), 1) << ")\n";

  // Churn: 200 random leaves interleaved with 200 joins.
  Summary leave_msgs;
  for (int i = 0; i < 200; ++i) {
    const auto victim = static_cast<std::uint32_t>(
        rng.uniform(dht.network().size()));
    leave_msgs.add(dht.leave(dht.network().id(victim)).messages());
    const auto ids = sample_unique_ids(1, space, rng);
    const auto paths = generate_hierarchy(1, hier, rng);
    dht.join({ids[0], paths[0], -1});
  }
  std::cout << "after 200 leave/join pairs; mean leave cost "
            << TextTable::num(leave_msgs.mean(), 1) << " messages\n";

  // Routing still works from everywhere.
  const LinkTable links = dht.link_table();
  const RingRouter router(dht.network(), links);
  int ok = 0;
  for (int t = 0; t < 1000; ++t) {
    const auto from = static_cast<std::uint32_t>(
        rng.uniform(dht.network().size()));
    const NodeId key = space.wrap(rng());
    ok += router.route(from, key).ok;
  }
  std::cout << "routing success after churn: " << ok << "/1000\n";

  // The maintained structure equals a from-scratch build.
  const LinkTable scratch = build_crescendo(dht.network());
  bool identical = true;
  for (std::uint32_t m = 0; m < dht.network().size() && identical; ++m) {
    const auto a = links.neighbors(m);
    const auto b = scratch.neighbors(m);
    identical = a.size() == b.size() &&
                std::equal(a.begin(), a.end(), b.begin());
  }
  std::cout << "incrementally maintained links "
            << (identical ? "MATCH" : "DIFFER FROM")
            << " a from-scratch construction\n";

  // Leaf sets at each level of one node.
  const NodeId probe = dht.network().id(0);
  std::cout << "\nleaf sets of node " << id_to_hex(probe) << ":\n";
  for (int level = 0;
       level <= dht.network().domains().node_depth(0); ++level) {
    std::cout << "  level " << level << ":";
    for (const NodeId s : dht.leaf_set(probe, level, 4)) {
      std::cout << " " << id_to_hex(s);
    }
    std::cout << "\n";
  }

  // What the telemetry layer saw, without any bookkeeping in the loops
  // above: the DynamicCrescendo instruments record into the registry.
  std::cout << "\ntelemetry:\n";
  for (const auto& [name, counter] : registry.counters()) {
    std::cout << "  " << name << " = " << counter.value() << "\n";
  }
  for (const auto& [name, hist] : registry.histograms()) {
    std::cout << "  " << name << ": n=" << hist.count() << ", mean "
              << TextTable::num(hist.mean_ms(), 3) << " ms, p99 "
              << TextTable::num(hist.quantile_upper_ms(0.99), 3) << " ms\n";
  }
  telemetry::install_registry(nullptr);
  return identical && ok == 1000 ? 0 : 1;
}
