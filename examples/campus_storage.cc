// Campus storage: the paper's Figure-1 scenario. Stanford's hierarchy
// (campus / school / department) runs one Crescendo DHT; departments store
// private data that never leaves (or becomes visible outside) their
// domain, while campus-wide data is globally routable. Demonstrates
// hierarchical storage, access control and pointer indirection (Section 4).
#include <iostream>

#include "canon/crescendo.h"
#include "common/rng.h"
#include "overlay/population.h"
#include "storage/hierarchical_store.h"

using namespace canon;

namespace {

const char* source_name(AnswerSource s) {
  switch (s) {
    case AnswerSource::kOwner:
      return "owner";
    case AnswerSource::kPointer:
      return "pointer";
    case AnswerSource::kCache:
      return "cache";
    default:
      return "not found";
  }
}

}  // namespace

int main() {
  // Campus hierarchy: 2 schools x 3 departments, ~40 machines each.
  Rng rng(1891);  // Stanford's founding year
  std::vector<OverlayNode> nodes;
  const IdSpace space(32);
  const auto ids = sample_unique_ids(240, space, rng);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto school = static_cast<std::uint16_t>(i % 2);
    const auto dept = static_cast<std::uint16_t>((i / 2) % 3);
    nodes.push_back({ids[i], DomainPath({school, dept}), -1});
  }
  const OverlayNetwork net(space, std::move(nodes));
  const LinkTable links = build_crescendo(net);
  HierarchicalStore store(net, links, /*cache_capacity=*/32);

  // A machine in school 0 / department 1 ("the DB group").
  std::uint32_t db_machine = 0;
  while (!(net.node(db_machine).domain == DomainPath({0, 1}))) ++db_machine;

  // Department-private data: stored and visible only inside DB.
  const NodeId grades_key = 0xDB000001;
  store.put(db_machine, grades_key, "db-group internal wiki", /*storage=*/2,
            /*access=*/2);
  // Department-stored but campus-visible data: a pointer is published at
  // the campus level.
  const NodeId paper_key = 0xDB000002;
  store.put(db_machine, paper_key, "tech report draft", /*storage=*/2,
            /*access=*/0);
  // Campus-wide data.
  const NodeId shuttle_key = 0xCA000001;
  store.put(db_machine, shuttle_key, "shuttle schedule", /*storage=*/0,
            /*access=*/0);

  // Probe from three vantage points.
  std::uint32_t db_peer = db_machine + 1;
  while (!(net.node(db_peer).domain == DomainPath({0, 1}))) ++db_peer;
  std::uint32_t other_school = 0;
  while (net.node(other_school).domain.branch(0) != 1) ++other_school;

  struct Probe {
    const char* who;
    std::uint32_t node;
  };
  const Probe probes[] = {{"DB colleague", db_peer},
                          {"other-school machine", other_school}};
  const struct {
    const char* what;
    NodeId key;
  } content[] = {{"private wiki", grades_key},
                 {"tech report (pointered)", paper_key},
                 {"shuttle schedule", shuttle_key}};

  for (const auto& probe : probes) {
    std::cout << "--- queries from " << probe.who << " (domain "
              << net.node(probe.node).domain.to_string() << ") ---\n";
    for (const auto& c : content) {
      const GetResult got = store.get(probe.node, c.key);
      std::cout << "  " << c.what << ": " << source_name(got.source);
      if (got.source != AnswerSource::kNotFound) {
        std::cout << " -> \"" << got.value << "\" in " << got.route.hops()
                  << " hops";
        bool stayed_inside = true;
        for (const auto hop : got.route.path) {
          stayed_inside &= net.lca_level(hop, db_machine) >= 1 ||
                           net.lca_level(hop, probe.node) >= 1;
        }
        (void)stayed_inside;
      }
      std::cout << "\n";
    }
  }
  std::cout << "\nThe private wiki is invisible outside DB; the tech report "
               "resolves through a campus-level pointer; the shuttle "
               "schedule lives at the campus root.\n";
  return 0;
}
