// Quickstart: build a Crescendo DHT over a small organizational hierarchy,
// inspect a node's links, and route a lookup.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>

#include "canon/crescendo.h"
#include "common/rng.h"
#include "overlay/population.h"
#include "overlay/routing.h"
#include "telemetry/trace.h"

using namespace canon;

int main() {
  // 1. A population of 200 nodes arranged in a 3-level hierarchy
  //    (think: university / department / lab), fan-out 4, random 32-bit IDs.
  Rng rng(2026);
  PopulationSpec spec;
  spec.node_count = 200;
  spec.hierarchy.levels = 3;
  spec.hierarchy.fanout = 4;
  const OverlayNetwork net = make_population(spec, rng);

  // 2. Build the Crescendo link structure (bottom-up ring merging).
  const LinkTable links = build_crescendo(net);
  std::cout << "built Crescendo over " << net.size() << " nodes: "
            << links.total_links() << " links, mean degree "
            << links.mean_degree() << "\n";

  // 3. Inspect one node.
  const std::uint32_t node = 7;
  std::cout << "\nnode " << id_to_hex(net.id(node)) << " in domain \""
            << net.node(node).domain.to_string() << "\" links to:\n";
  for (const auto v : links.neighbors(node)) {
    std::cout << "  " << id_to_hex(net.id(v)) << "  (domain "
              << net.node(v).domain.to_string() << ", shares "
              << net.lca_level(node, v) << " levels)\n";
  }

  // 4. Route a lookup: greedy clockwise routing, hierarchical by
  //    construction. A trace sink captures every hop with its hierarchy
  //    level (deep level = local hop, level 0 = crossing top domains).
  const NodeId key = net.space().wrap(rng());
  RingRouter router(net, links);
  telemetry::RecordingTraceSink trace;
  router.set_trace(&trace);
  const Route route = router.route(node, key);
  std::cout << "\nlookup of key " << id_to_hex(key) << " from node "
            << id_to_hex(net.id(node)) << ":\n";
  for (const auto hop : route.path) {
    std::cout << "  -> " << id_to_hex(net.id(hop)) << "  (domain "
              << net.node(hop).domain.to_string() << ")\n";
  }
  std::cout << (route.ok ? "reached the responsible node in "
                         : "FAILED after ")
            << route.hops() << " hops\n";

  // 5. The trace shows the paper's convergence property directly: hops
  //    start at coarse levels and never leave a domain once entered.
  const auto by_level = trace.hops_by_level();
  std::cout << "hops by hierarchy level:";
  for (std::size_t l = 0; l < by_level.size(); ++l) {
    std::cout << "  L" << l << "=" << by_level[l];
  }
  std::cout << "\n";
  return route.ok ? 0 : 1;
}
