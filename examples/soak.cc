// Soak test: a Crescendo deployment under concurrent load and failures.
// Drives thousands of simultaneous lookups through the discrete-event
// simulator (per-node queueing), then kills a third of the network and
// shows leaf-set fallback keeping lookups alive.
#include <iostream>

#include "canon/crescendo.h"
#include "common/rng.h"
#include "common/table.h"
#include "overlay/event_sim.h"
#include "overlay/population.h"
#include "overlay/resilient_routing.h"

using namespace canon;

int main() {
  Rng rng(424242);
  PopulationSpec spec;
  spec.node_count = 4096;
  spec.hierarchy.levels = 4;
  spec.hierarchy.fanout = 8;
  const OverlayNetwork net = make_population(spec, rng);
  const LinkTable links = build_crescendo(net);

  // Phase 1: 20k concurrent lookups, Poisson-ish arrivals.
  EventSimulator sim(net, links);
  for (int t = 0; t < 20000; ++t) {
    const auto from = static_cast<std::uint32_t>(rng.uniform(net.size()));
    sim.submit(from, net.space().wrap(rng()), 0.05 * t);
  }
  sim.run();
  Percentiles latency;
  Percentiles load;
  int failed = 0;
  for (const auto& lookup : sim.lookups()) {
    latency.add(lookup.latency_ms());
    failed += !lookup.ok;
  }
  for (const auto l : sim.node_load()) load.add(static_cast<double>(l));
  std::cout << "phase 1: 20000 concurrent lookups over " << net.size()
            << " nodes\n";
  std::cout << "  failures: " << failed << "\n";
  std::cout << "  lookup latency ms  p50 " << TextTable::num(latency.quantile(0.5), 2)
            << "  p99 " << TextTable::num(latency.quantile(0.99), 2) << "\n";
  std::cout << "  per-node load      p50 " << load.quantile(0.5) << "  max "
            << load.quantile(1.0) << "  (max/mean "
            << TextTable::num(load.quantile(1.0) / load.mean(), 2)
            << " - no hot spots)\n\n";

  // Phase 2: kill 33% of nodes; resilient routing with leaf sets.
  FailureSet failures(net.size());
  for (std::uint32_t i = 0; i < net.size(); ++i) {
    if (rng.uniform(3) == 0) failures.kill(i);
  }
  const ResilientRingRouter router(net, links, failures, /*leaf_set=*/8);
  int ok = 0;
  const int kTrials = 5000;
  Summary hops;
  for (int t = 0; t < kTrials;) {
    const auto from = static_cast<std::uint32_t>(rng.uniform(net.size()));
    if (failures.dead(from)) continue;
    ++t;
    const Route r = router.route(from, net.space().wrap(rng()));
    ok += r.ok;
    if (r.ok) hops.add(r.hops());
  }
  std::cout << "phase 2: " << failures.dead_count() << "/" << net.size()
            << " nodes failed simultaneously\n";
  std::cout << "  lookups still reaching the live responsible node: " << ok
            << "/" << kTrials << " ("
            << TextTable::num(100.0 * ok / kTrials, 2) << "%)\n";
  std::cout << "  mean hops " << TextTable::num(hops.mean(), 2)
            << " (leaf sets route around the dead)\n";
  return ok >= kTrials * 99 / 100 ? 0 : 1;
}
