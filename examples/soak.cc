// Soak test: a Crescendo deployment under concurrent load and failures.
// Drives thousands of simultaneous lookups through the discrete-event
// simulator (per-node queueing), then kills a third of the network and
// shows leaf-set fallback keeping lookups alive.
//
// Flags: --nodes=4096 --lookups=20000 --seed=42
//        --journal=<path> (JSONL: lookup_failure events, audit snapshot,
//                          and windowed load_snapshot events)
//        --json=<path>    (BenchReport with the final audit, the load
//                          phase's time series, and a load report)
//        --trace=<path>   (Chrome trace-event JSON of the construction
//                          phases; a FlameGraph/speedscope collapsed-stack
//                          profile lands next to it at <path>.folded)
// The run always ends with a resource report: per-subsystem attributed
// bytes against measured RSS (docs/TELEMETRY.md section 10). It fails
// (exit 1) if lookups fail under load, post-failure routing drops below
// 99%, or the structural audit reports any violation.
#include <iostream>
#include <memory>

#include "audit/auditor.h"
#include "overlay/family_registry.h"
#include "bench/bench_util.h"
#include "canon/crescendo.h"
#include "common/rng.h"
#include "common/table.h"
#include "overlay/event_sim.h"
#include "overlay/population.h"
#include "overlay/resilient_routing.h"
#include "telemetry/flame_export.h"
#include "telemetry/journal.h"
#include "telemetry/load_stats.h"
#include "telemetry/mem_stats.h"
#include "telemetry/timeseries.h"
#include "telemetry/trace_export.h"

using namespace canon;

int main(int argc, char** argv) {
  bench::BenchRun run(argc, argv, "soak");
  const std::uint64_t node_count = run.u64("nodes", 4096);
  const std::uint64_t lookup_count = run.u64("lookups", 20000);
  const std::string journal_path = run.str("journal", "");
  const std::string trace_path = run.str("trace", "");

  // The resource observatory rides along on every soak: subsystem byte
  // ledger + construction-phase spans (printed at the end; exported when
  // --trace is given).
  telemetry::MemoryAccountant accountant;
  telemetry::install_mem_accountant(&accountant);
  telemetry::SpanLog spans;
  telemetry::install_span_log(&spans);

  Rng rng(run.seed * 10101 + 424242);
  PopulationSpec spec;
  spec.node_count = node_count;
  spec.hierarchy.levels = 4;
  spec.hierarchy.fanout = 8;
  const OverlayNetwork net = make_population(spec, rng);
  const LinkTable links = build_crescendo(net);

  std::unique_ptr<telemetry::EventJournal> journal;
  if (!journal_path.empty()) {
    journal = std::make_unique<telemetry::EventJournal>(journal_path);
  }

  // Structural audit before applying load: a drifted structure would make
  // every load number below meaningless.
  const audit::AuditReport audit_report =
      registry::audit_family("crescendo", net, links);
  std::cout << "structural audit: " << audit_report.summary() << "\n\n";
  if (journal) {
    journal->audit_snapshot(net.size(), audit_report.total_checks(),
                            audit_report.violations.size());
  }
  {
    telemetry::JsonValue row = telemetry::JsonValue::object();
    row.set("size",
            telemetry::JsonValue(static_cast<std::uint64_t>(net.size())));
    row.set("audit", audit_report.to_json());
    run.report().add_row(std::move(row));
  }

  // Phase 1: concurrent lookups, Poisson-ish arrivals. Failed lookups
  // land in the journal as lookup_failure events.
  EventSimulator sim(net, links);
  telemetry::TimeSeriesRecorder series(/*window_ms=*/50.0);
  SimSinks sinks;
  sinks.journal = journal.get();
  sinks.timeseries = &series;
  if (journal) {
    sinks.snapshot_top_k = 5;
    sinks.snapshot_window_ms = 200.0;
  }
  sim.attach(sinks);
  for (std::uint64_t t = 0; t < lookup_count; ++t) {
    const auto from = static_cast<std::uint32_t>(rng.uniform(net.size()));
    sim.submit(from, net.space().wrap(rng()),
               0.05 * static_cast<double>(t));
  }
  sim.run();
  Percentiles latency;
  Percentiles load;
  int failed = 0;
  for (const auto& lookup : sim.lookups()) {
    latency.add(lookup.latency_ms());
    failed += !lookup.ok;
  }
  for (const auto l : sim.node_load()) load.add(static_cast<double>(l));
  std::cout << "phase 1: " << lookup_count << " concurrent lookups over "
            << net.size() << " nodes\n";
  std::cout << "  failures: " << failed << "\n";
  std::cout << "  lookup latency ms  p50 " << TextTable::num(latency.quantile(0.5), 2)
            << "  p99 " << TextTable::num(latency.quantile(0.99), 2) << "\n";
  const double gini = telemetry::gini_coefficient(sim.node_load());
  const auto hottest = telemetry::top_loaded_nodes(sim.node_load(), 3);
  std::cout << "  per-node load      p50 " << load.quantile(0.5) << "  max "
            << load.quantile(1.0) << "  (max/mean "
            << TextTable::num(load.quantile(1.0) / load.mean(), 2)
            << ", gini " << TextTable::num(gini, 3)
            << " - no hot spots)\n";
  std::cout << "  hottest nodes     ";
  for (const auto& [node, messages] : hottest) {
    std::cout << "  #" << node << " (" << messages << " msgs)";
  }
  std::cout << "\n  time series        " << series.windows().size()
            << " windows of 50ms in the JSON report\n\n";

  // Phase 2: kill 33% of nodes; resilient routing with leaf sets.
  FailureSet failures(net.size());
  for (std::uint32_t i = 0; i < net.size(); ++i) {
    if (rng.uniform(3) == 0) failures.kill(i);
  }
  const ResilientRingRouter router(net, links, /*leaf_set=*/8);
  int ok = 0;
  const int kTrials = 5000;
  Summary hops;
  for (int t = 0; t < kTrials;) {
    const auto from = static_cast<std::uint32_t>(rng.uniform(net.size()));
    if (failures.dead(from)) continue;
    ++t;
    const Route r = router.route(from, net.space().wrap(rng()), failures);
    ok += r.ok;
    if (r.ok) hops.add(r.hops());
  }
  std::cout << "phase 2: " << failures.dead_count() << "/" << net.size()
            << " nodes failed simultaneously\n";
  std::cout << "  lookups still reaching the live responsible node: " << ok
            << "/" << kTrials << " ("
            << TextTable::num(100.0 * ok / kTrials, 2) << "%)\n";
  std::cout << "  mean hops " << TextTable::num(hops.mean(), 2)
            << " (leaf sets route around the dead)\n";

  // Resource report: which subsystem owns the bytes, against measured RSS.
  std::cout << "\nresource report:\n";
  for (const auto& [tag, stats] : accountant.tags()) {
    std::cout << "  " << tag << ": "
              << TextTable::num(static_cast<double>(stats.current) / 1024.0,
                                0)
              << " KB now, "
              << TextTable::num(static_cast<double>(stats.peak) / 1024.0, 0)
              << " KB peak\n";
  }
  std::cout << "  attributed "
            << TextTable::num(static_cast<double>(accountant.current_bytes())
                                  / (1024.0 * 1024.0), 1)
            << " MB of " << TextTable::num(telemetry::current_rss_mb(), 1)
            << " MB resident (" << TextTable::num(telemetry::peak_rss_mb(), 1)
            << " MB peak)\n";

  if (!trace_path.empty()) {
    telemetry::TraceExporter exporter;
    exporter.set_process_name(telemetry::TraceExporter::kBuildPid,
                              "construction phases");
    exporter.add_span_log(spans);
    exporter.write_file(trace_path);
    const std::string folded = trace_path + ".folded";
    const std::size_t stacks =
        telemetry::write_collapsed_stacks(spans, folded);
    std::cout << "trace: " << exporter.event_count() << " events -> "
              << trace_path << "; " << stacks << " collapsed stacks -> "
              << folded << " (speedscope / flamegraph.pl)\n";
  }

  if (journal) journal->flush();
  {
    telemetry::JsonValue row = telemetry::JsonValue::object();
    row.set("phase1_failures", telemetry::JsonValue(
        static_cast<std::int64_t>(failed)));
    row.set("phase2_ok", telemetry::JsonValue(
        static_cast<std::int64_t>(ok)));
    row.set("phase2_trials", telemetry::JsonValue(
        static_cast<std::int64_t>(kTrials)));
    row.set("load_gini", telemetry::JsonValue(gini));
    {
      telemetry::JsonValue hot = telemetry::JsonValue::array();
      for (const auto& [node, messages] : hottest) {
        telemetry::JsonValue entry = telemetry::JsonValue::object();
        entry.set("node", telemetry::JsonValue(
            static_cast<std::uint64_t>(node)));
        entry.set("load", telemetry::JsonValue(messages));
        hot.push_back(std::move(entry));
      }
      row.set("top_nodes", std::move(hot));
    }
    row.set("timeseries", series.to_json());
    run.report().add_row(std::move(row));
  }
  const int rc = run.finish();
  if (rc != 0) return rc;
  return failed == 0 && ok >= kTrials * 99 / 100 && audit_report.ok() ? 0
                                                                      : 1;
}
