# Empty compiler generated dependencies file for campus_storage.
# This may be replaced when dependencies are built.
