file(REMOVE_RECURSE
  "CMakeFiles/campus_storage.dir/campus_storage.cc.o"
  "CMakeFiles/campus_storage.dir/campus_storage.cc.o.d"
  "campus_storage"
  "campus_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campus_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
