# Empty dependencies file for cdn_caching.
# This may be replaced when dependencies are built.
