file(REMOVE_RECURSE
  "CMakeFiles/cdn_caching.dir/cdn_caching.cc.o"
  "CMakeFiles/cdn_caching.dir/cdn_caching.cc.o.d"
  "cdn_caching"
  "cdn_caching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdn_caching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
