file(REMOVE_RECURSE
  "CMakeFiles/fig7_locality.dir/fig7_locality.cc.o"
  "CMakeFiles/fig7_locality.dir/fig7_locality.cc.o.d"
  "fig7_locality"
  "fig7_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
