# Empty compiler generated dependencies file for fig7_locality.
# This may be replaced when dependencies are built.
