file(REMOVE_RECURSE
  "CMakeFiles/fig3_links.dir/fig3_links.cc.o"
  "CMakeFiles/fig3_links.dir/fig3_links.cc.o.d"
  "fig3_links"
  "fig3_links.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_links.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
