# Empty dependencies file for fig3_links.
# This may be replaced when dependencies are built.
