file(REMOVE_RECURSE
  "CMakeFiles/ablation_fault_isolation.dir/ablation_fault_isolation.cc.o"
  "CMakeFiles/ablation_fault_isolation.dir/ablation_fault_isolation.cc.o.d"
  "ablation_fault_isolation"
  "ablation_fault_isolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fault_isolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
