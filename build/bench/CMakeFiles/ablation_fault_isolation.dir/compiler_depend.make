# Empty compiler generated dependencies file for ablation_fault_isolation.
# This may be replaced when dependencies are built.
