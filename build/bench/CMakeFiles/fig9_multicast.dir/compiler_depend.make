# Empty compiler generated dependencies file for fig9_multicast.
# This may be replaced when dependencies are built.
