file(REMOVE_RECURSE
  "CMakeFiles/fig9_multicast.dir/fig9_multicast.cc.o"
  "CMakeFiles/fig9_multicast.dir/fig9_multicast.cc.o.d"
  "fig9_multicast"
  "fig9_multicast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_multicast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
