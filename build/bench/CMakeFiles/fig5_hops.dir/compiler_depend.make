# Empty compiler generated dependencies file for fig5_hops.
# This may be replaced when dependencies are built.
