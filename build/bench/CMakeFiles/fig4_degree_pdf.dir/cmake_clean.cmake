file(REMOVE_RECURSE
  "CMakeFiles/fig4_degree_pdf.dir/fig4_degree_pdf.cc.o"
  "CMakeFiles/fig4_degree_pdf.dir/fig4_degree_pdf.cc.o.d"
  "fig4_degree_pdf"
  "fig4_degree_pdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_degree_pdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
