# Empty compiler generated dependencies file for fig4_degree_pdf.
# This may be replaced when dependencies are built.
