file(REMOVE_RECURSE
  "CMakeFiles/fig6_latency_stretch.dir/fig6_latency_stretch.cc.o"
  "CMakeFiles/fig6_latency_stretch.dir/fig6_latency_stretch.cc.o.d"
  "fig6_latency_stretch"
  "fig6_latency_stretch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_latency_stretch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
