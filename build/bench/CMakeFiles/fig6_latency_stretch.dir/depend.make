# Empty dependencies file for fig6_latency_stretch.
# This may be replaced when dependencies are built.
