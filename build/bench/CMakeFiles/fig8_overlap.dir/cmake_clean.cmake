file(REMOVE_RECURSE
  "CMakeFiles/fig8_overlap.dir/fig8_overlap.cc.o"
  "CMakeFiles/fig8_overlap.dir/fig8_overlap.cc.o.d"
  "fig8_overlap"
  "fig8_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
