# Empty dependencies file for fig8_overlap.
# This may be replaced when dependencies are built.
