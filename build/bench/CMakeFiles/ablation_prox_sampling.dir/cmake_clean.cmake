file(REMOVE_RECURSE
  "CMakeFiles/ablation_prox_sampling.dir/ablation_prox_sampling.cc.o"
  "CMakeFiles/ablation_prox_sampling.dir/ablation_prox_sampling.cc.o.d"
  "ablation_prox_sampling"
  "ablation_prox_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_prox_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
