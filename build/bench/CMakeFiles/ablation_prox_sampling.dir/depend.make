# Empty dependencies file for ablation_prox_sampling.
# This may be replaced when dependencies are built.
