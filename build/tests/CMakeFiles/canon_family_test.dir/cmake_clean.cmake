file(REMOVE_RECURSE
  "CMakeFiles/canon_family_test.dir/canon_family_test.cc.o"
  "CMakeFiles/canon_family_test.dir/canon_family_test.cc.o.d"
  "canon_family_test"
  "canon_family_test.pdb"
  "canon_family_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/canon_family_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
