# Empty dependencies file for canon_family_test.
# This may be replaced when dependencies are built.
