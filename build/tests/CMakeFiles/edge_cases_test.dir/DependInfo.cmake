
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/edge_cases_test.cc" "tests/CMakeFiles/edge_cases_test.dir/edge_cases_test.cc.o" "gcc" "tests/CMakeFiles/edge_cases_test.dir/edge_cases_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/canon_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hierarchy/CMakeFiles/canon_hierarchy.dir/DependInfo.cmake"
  "/root/repo/build/src/overlay/CMakeFiles/canon_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/dht/CMakeFiles/canon_dht.dir/DependInfo.cmake"
  "/root/repo/build/src/canon/CMakeFiles/canon_core.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/canon_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/canon_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/maintenance/CMakeFiles/canon_maintenance.dir/DependInfo.cmake"
  "/root/repo/build/src/balance/CMakeFiles/canon_balance.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
