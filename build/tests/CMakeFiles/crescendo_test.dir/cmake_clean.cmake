file(REMOVE_RECURSE
  "CMakeFiles/crescendo_test.dir/crescendo_test.cc.o"
  "CMakeFiles/crescendo_test.dir/crescendo_test.cc.o.d"
  "crescendo_test"
  "crescendo_test.pdb"
  "crescendo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crescendo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
