# Empty compiler generated dependencies file for crescendo_test.
# This may be replaced when dependencies are built.
