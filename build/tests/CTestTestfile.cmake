# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/hierarchy_test[1]_include.cmake")
include("/root/repo/build/tests/overlay_test[1]_include.cmake")
include("/root/repo/build/tests/dht_test[1]_include.cmake")
include("/root/repo/build/tests/crescendo_test[1]_include.cmake")
include("/root/repo/build/tests/canon_family_test[1]_include.cmake")
include("/root/repo/build/tests/topology_test[1]_include.cmake")
include("/root/repo/build/tests/proximity_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/maintenance_test[1]_include.cmake")
include("/root/repo/build/tests/balance_test[1]_include.cmake")
include("/root/repo/build/tests/resilience_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/event_sim_test[1]_include.cmake")
include("/root/repo/build/tests/edge_cases_test[1]_include.cmake")
