
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/latency_matrix.cc" "src/topology/CMakeFiles/canon_topology.dir/latency_matrix.cc.o" "gcc" "src/topology/CMakeFiles/canon_topology.dir/latency_matrix.cc.o.d"
  "/root/repo/src/topology/physical_network.cc" "src/topology/CMakeFiles/canon_topology.dir/physical_network.cc.o" "gcc" "src/topology/CMakeFiles/canon_topology.dir/physical_network.cc.o.d"
  "/root/repo/src/topology/transit_stub.cc" "src/topology/CMakeFiles/canon_topology.dir/transit_stub.cc.o" "gcc" "src/topology/CMakeFiles/canon_topology.dir/transit_stub.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/canon_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hierarchy/CMakeFiles/canon_hierarchy.dir/DependInfo.cmake"
  "/root/repo/build/src/overlay/CMakeFiles/canon_overlay.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
