file(REMOVE_RECURSE
  "libcanon_topology.a"
)
