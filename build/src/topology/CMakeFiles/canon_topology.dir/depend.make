# Empty dependencies file for canon_topology.
# This may be replaced when dependencies are built.
