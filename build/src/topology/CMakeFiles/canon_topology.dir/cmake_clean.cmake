file(REMOVE_RECURSE
  "CMakeFiles/canon_topology.dir/latency_matrix.cc.o"
  "CMakeFiles/canon_topology.dir/latency_matrix.cc.o.d"
  "CMakeFiles/canon_topology.dir/physical_network.cc.o"
  "CMakeFiles/canon_topology.dir/physical_network.cc.o.d"
  "CMakeFiles/canon_topology.dir/transit_stub.cc.o"
  "CMakeFiles/canon_topology.dir/transit_stub.cc.o.d"
  "libcanon_topology.a"
  "libcanon_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/canon_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
