file(REMOVE_RECURSE
  "CMakeFiles/canon_core.dir/cacophony.cc.o"
  "CMakeFiles/canon_core.dir/cacophony.cc.o.d"
  "CMakeFiles/canon_core.dir/cancan.cc.o"
  "CMakeFiles/canon_core.dir/cancan.cc.o.d"
  "CMakeFiles/canon_core.dir/crescendo.cc.o"
  "CMakeFiles/canon_core.dir/crescendo.cc.o.d"
  "CMakeFiles/canon_core.dir/kandy.cc.o"
  "CMakeFiles/canon_core.dir/kandy.cc.o.d"
  "CMakeFiles/canon_core.dir/mixed.cc.o"
  "CMakeFiles/canon_core.dir/mixed.cc.o.d"
  "CMakeFiles/canon_core.dir/nondet_crescendo.cc.o"
  "CMakeFiles/canon_core.dir/nondet_crescendo.cc.o.d"
  "CMakeFiles/canon_core.dir/proximity.cc.o"
  "CMakeFiles/canon_core.dir/proximity.cc.o.d"
  "libcanon_core.a"
  "libcanon_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/canon_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
