
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/canon/cacophony.cc" "src/canon/CMakeFiles/canon_core.dir/cacophony.cc.o" "gcc" "src/canon/CMakeFiles/canon_core.dir/cacophony.cc.o.d"
  "/root/repo/src/canon/cancan.cc" "src/canon/CMakeFiles/canon_core.dir/cancan.cc.o" "gcc" "src/canon/CMakeFiles/canon_core.dir/cancan.cc.o.d"
  "/root/repo/src/canon/crescendo.cc" "src/canon/CMakeFiles/canon_core.dir/crescendo.cc.o" "gcc" "src/canon/CMakeFiles/canon_core.dir/crescendo.cc.o.d"
  "/root/repo/src/canon/kandy.cc" "src/canon/CMakeFiles/canon_core.dir/kandy.cc.o" "gcc" "src/canon/CMakeFiles/canon_core.dir/kandy.cc.o.d"
  "/root/repo/src/canon/mixed.cc" "src/canon/CMakeFiles/canon_core.dir/mixed.cc.o" "gcc" "src/canon/CMakeFiles/canon_core.dir/mixed.cc.o.d"
  "/root/repo/src/canon/nondet_crescendo.cc" "src/canon/CMakeFiles/canon_core.dir/nondet_crescendo.cc.o" "gcc" "src/canon/CMakeFiles/canon_core.dir/nondet_crescendo.cc.o.d"
  "/root/repo/src/canon/proximity.cc" "src/canon/CMakeFiles/canon_core.dir/proximity.cc.o" "gcc" "src/canon/CMakeFiles/canon_core.dir/proximity.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/canon_common.dir/DependInfo.cmake"
  "/root/repo/build/src/overlay/CMakeFiles/canon_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/dht/CMakeFiles/canon_dht.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/canon_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/hierarchy/CMakeFiles/canon_hierarchy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
