# Empty compiler generated dependencies file for canon_core.
# This may be replaced when dependencies are built.
