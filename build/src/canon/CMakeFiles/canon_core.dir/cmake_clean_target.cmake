file(REMOVE_RECURSE
  "libcanon_core.a"
)
