file(REMOVE_RECURSE
  "CMakeFiles/canon_overlay.dir/event_sim.cc.o"
  "CMakeFiles/canon_overlay.dir/event_sim.cc.o.d"
  "CMakeFiles/canon_overlay.dir/link_table.cc.o"
  "CMakeFiles/canon_overlay.dir/link_table.cc.o.d"
  "CMakeFiles/canon_overlay.dir/metrics.cc.o"
  "CMakeFiles/canon_overlay.dir/metrics.cc.o.d"
  "CMakeFiles/canon_overlay.dir/overlay_network.cc.o"
  "CMakeFiles/canon_overlay.dir/overlay_network.cc.o.d"
  "CMakeFiles/canon_overlay.dir/population.cc.o"
  "CMakeFiles/canon_overlay.dir/population.cc.o.d"
  "CMakeFiles/canon_overlay.dir/resilient_routing.cc.o"
  "CMakeFiles/canon_overlay.dir/resilient_routing.cc.o.d"
  "CMakeFiles/canon_overlay.dir/routing.cc.o"
  "CMakeFiles/canon_overlay.dir/routing.cc.o.d"
  "libcanon_overlay.a"
  "libcanon_overlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/canon_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
