# Empty compiler generated dependencies file for canon_overlay.
# This may be replaced when dependencies are built.
