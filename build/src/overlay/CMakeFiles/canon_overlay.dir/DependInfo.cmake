
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/overlay/event_sim.cc" "src/overlay/CMakeFiles/canon_overlay.dir/event_sim.cc.o" "gcc" "src/overlay/CMakeFiles/canon_overlay.dir/event_sim.cc.o.d"
  "/root/repo/src/overlay/link_table.cc" "src/overlay/CMakeFiles/canon_overlay.dir/link_table.cc.o" "gcc" "src/overlay/CMakeFiles/canon_overlay.dir/link_table.cc.o.d"
  "/root/repo/src/overlay/metrics.cc" "src/overlay/CMakeFiles/canon_overlay.dir/metrics.cc.o" "gcc" "src/overlay/CMakeFiles/canon_overlay.dir/metrics.cc.o.d"
  "/root/repo/src/overlay/overlay_network.cc" "src/overlay/CMakeFiles/canon_overlay.dir/overlay_network.cc.o" "gcc" "src/overlay/CMakeFiles/canon_overlay.dir/overlay_network.cc.o.d"
  "/root/repo/src/overlay/population.cc" "src/overlay/CMakeFiles/canon_overlay.dir/population.cc.o" "gcc" "src/overlay/CMakeFiles/canon_overlay.dir/population.cc.o.d"
  "/root/repo/src/overlay/resilient_routing.cc" "src/overlay/CMakeFiles/canon_overlay.dir/resilient_routing.cc.o" "gcc" "src/overlay/CMakeFiles/canon_overlay.dir/resilient_routing.cc.o.d"
  "/root/repo/src/overlay/routing.cc" "src/overlay/CMakeFiles/canon_overlay.dir/routing.cc.o" "gcc" "src/overlay/CMakeFiles/canon_overlay.dir/routing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/canon_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hierarchy/CMakeFiles/canon_hierarchy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
