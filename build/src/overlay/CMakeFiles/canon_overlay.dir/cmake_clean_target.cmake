file(REMOVE_RECURSE
  "libcanon_overlay.a"
)
