file(REMOVE_RECURSE
  "libcanon_common.a"
)
