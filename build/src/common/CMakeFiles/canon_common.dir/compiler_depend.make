# Empty compiler generated dependencies file for canon_common.
# This may be replaced when dependencies are built.
