file(REMOVE_RECURSE
  "CMakeFiles/canon_common.dir/ids.cc.o"
  "CMakeFiles/canon_common.dir/ids.cc.o.d"
  "CMakeFiles/canon_common.dir/rng.cc.o"
  "CMakeFiles/canon_common.dir/rng.cc.o.d"
  "CMakeFiles/canon_common.dir/stats.cc.o"
  "CMakeFiles/canon_common.dir/stats.cc.o.d"
  "CMakeFiles/canon_common.dir/table.cc.o"
  "CMakeFiles/canon_common.dir/table.cc.o.d"
  "CMakeFiles/canon_common.dir/zipf.cc.o"
  "CMakeFiles/canon_common.dir/zipf.cc.o.d"
  "libcanon_common.a"
  "libcanon_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/canon_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
