# Empty compiler generated dependencies file for canon_hierarchy.
# This may be replaced when dependencies are built.
