file(REMOVE_RECURSE
  "libcanon_hierarchy.a"
)
