file(REMOVE_RECURSE
  "CMakeFiles/canon_hierarchy.dir/domain_path.cc.o"
  "CMakeFiles/canon_hierarchy.dir/domain_path.cc.o.d"
  "CMakeFiles/canon_hierarchy.dir/domain_tree.cc.o"
  "CMakeFiles/canon_hierarchy.dir/domain_tree.cc.o.d"
  "CMakeFiles/canon_hierarchy.dir/generators.cc.o"
  "CMakeFiles/canon_hierarchy.dir/generators.cc.o.d"
  "libcanon_hierarchy.a"
  "libcanon_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/canon_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
