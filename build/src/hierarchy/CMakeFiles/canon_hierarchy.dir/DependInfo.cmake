
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hierarchy/domain_path.cc" "src/hierarchy/CMakeFiles/canon_hierarchy.dir/domain_path.cc.o" "gcc" "src/hierarchy/CMakeFiles/canon_hierarchy.dir/domain_path.cc.o.d"
  "/root/repo/src/hierarchy/domain_tree.cc" "src/hierarchy/CMakeFiles/canon_hierarchy.dir/domain_tree.cc.o" "gcc" "src/hierarchy/CMakeFiles/canon_hierarchy.dir/domain_tree.cc.o.d"
  "/root/repo/src/hierarchy/generators.cc" "src/hierarchy/CMakeFiles/canon_hierarchy.dir/generators.cc.o" "gcc" "src/hierarchy/CMakeFiles/canon_hierarchy.dir/generators.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/canon_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
