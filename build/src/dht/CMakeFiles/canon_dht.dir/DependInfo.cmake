
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dht/can.cc" "src/dht/CMakeFiles/canon_dht.dir/can.cc.o" "gcc" "src/dht/CMakeFiles/canon_dht.dir/can.cc.o.d"
  "/root/repo/src/dht/chord.cc" "src/dht/CMakeFiles/canon_dht.dir/chord.cc.o" "gcc" "src/dht/CMakeFiles/canon_dht.dir/chord.cc.o.d"
  "/root/repo/src/dht/iterative_lookup.cc" "src/dht/CMakeFiles/canon_dht.dir/iterative_lookup.cc.o" "gcc" "src/dht/CMakeFiles/canon_dht.dir/iterative_lookup.cc.o.d"
  "/root/repo/src/dht/kademlia.cc" "src/dht/CMakeFiles/canon_dht.dir/kademlia.cc.o" "gcc" "src/dht/CMakeFiles/canon_dht.dir/kademlia.cc.o.d"
  "/root/repo/src/dht/nondet_chord.cc" "src/dht/CMakeFiles/canon_dht.dir/nondet_chord.cc.o" "gcc" "src/dht/CMakeFiles/canon_dht.dir/nondet_chord.cc.o.d"
  "/root/repo/src/dht/symphony.cc" "src/dht/CMakeFiles/canon_dht.dir/symphony.cc.o" "gcc" "src/dht/CMakeFiles/canon_dht.dir/symphony.cc.o.d"
  "/root/repo/src/dht/xor_util.cc" "src/dht/CMakeFiles/canon_dht.dir/xor_util.cc.o" "gcc" "src/dht/CMakeFiles/canon_dht.dir/xor_util.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/canon_common.dir/DependInfo.cmake"
  "/root/repo/build/src/overlay/CMakeFiles/canon_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/hierarchy/CMakeFiles/canon_hierarchy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
