# Empty compiler generated dependencies file for canon_dht.
# This may be replaced when dependencies are built.
