file(REMOVE_RECURSE
  "CMakeFiles/canon_dht.dir/can.cc.o"
  "CMakeFiles/canon_dht.dir/can.cc.o.d"
  "CMakeFiles/canon_dht.dir/chord.cc.o"
  "CMakeFiles/canon_dht.dir/chord.cc.o.d"
  "CMakeFiles/canon_dht.dir/iterative_lookup.cc.o"
  "CMakeFiles/canon_dht.dir/iterative_lookup.cc.o.d"
  "CMakeFiles/canon_dht.dir/kademlia.cc.o"
  "CMakeFiles/canon_dht.dir/kademlia.cc.o.d"
  "CMakeFiles/canon_dht.dir/nondet_chord.cc.o"
  "CMakeFiles/canon_dht.dir/nondet_chord.cc.o.d"
  "CMakeFiles/canon_dht.dir/symphony.cc.o"
  "CMakeFiles/canon_dht.dir/symphony.cc.o.d"
  "CMakeFiles/canon_dht.dir/xor_util.cc.o"
  "CMakeFiles/canon_dht.dir/xor_util.cc.o.d"
  "libcanon_dht.a"
  "libcanon_dht.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/canon_dht.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
