file(REMOVE_RECURSE
  "libcanon_dht.a"
)
