file(REMOVE_RECURSE
  "CMakeFiles/canon_maintenance.dir/dynamic_crescendo.cc.o"
  "CMakeFiles/canon_maintenance.dir/dynamic_crescendo.cc.o.d"
  "libcanon_maintenance.a"
  "libcanon_maintenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/canon_maintenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
