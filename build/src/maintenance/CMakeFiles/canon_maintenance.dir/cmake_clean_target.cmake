file(REMOVE_RECURSE
  "libcanon_maintenance.a"
)
