# Empty compiler generated dependencies file for canon_maintenance.
# This may be replaced when dependencies are built.
