file(REMOVE_RECURSE
  "libcanon_storage.a"
)
