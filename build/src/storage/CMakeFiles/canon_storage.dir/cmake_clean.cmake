file(REMOVE_RECURSE
  "CMakeFiles/canon_storage.dir/cache.cc.o"
  "CMakeFiles/canon_storage.dir/cache.cc.o.d"
  "CMakeFiles/canon_storage.dir/hierarchical_store.cc.o"
  "CMakeFiles/canon_storage.dir/hierarchical_store.cc.o.d"
  "libcanon_storage.a"
  "libcanon_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/canon_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
