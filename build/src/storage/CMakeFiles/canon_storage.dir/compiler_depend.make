# Empty compiler generated dependencies file for canon_storage.
# This may be replaced when dependencies are built.
