
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/cache.cc" "src/storage/CMakeFiles/canon_storage.dir/cache.cc.o" "gcc" "src/storage/CMakeFiles/canon_storage.dir/cache.cc.o.d"
  "/root/repo/src/storage/hierarchical_store.cc" "src/storage/CMakeFiles/canon_storage.dir/hierarchical_store.cc.o" "gcc" "src/storage/CMakeFiles/canon_storage.dir/hierarchical_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/canon_common.dir/DependInfo.cmake"
  "/root/repo/build/src/overlay/CMakeFiles/canon_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/hierarchy/CMakeFiles/canon_hierarchy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
