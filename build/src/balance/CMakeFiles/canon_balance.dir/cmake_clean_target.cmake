file(REMOVE_RECURSE
  "libcanon_balance.a"
)
