# Empty dependencies file for canon_balance.
# This may be replaced when dependencies are built.
