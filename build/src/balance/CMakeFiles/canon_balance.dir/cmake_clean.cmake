file(REMOVE_RECURSE
  "CMakeFiles/canon_balance.dir/id_allocator.cc.o"
  "CMakeFiles/canon_balance.dir/id_allocator.cc.o.d"
  "libcanon_balance.a"
  "libcanon_balance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/canon_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
