#!/usr/bin/env python3
"""Perf-regression gate: diff a fresh micro-bench report against a
committed baseline.

    compare_bench.py <baseline.json> <fresh.json> [--tolerance=0.25]
                     [--normalize] [--metric=real_time] [--run=<name>]

The baseline is either a committed BENCH_*.json trajectory file (the
per-machine envelope with runs.<bench>.threads1 inside — see
BENCH_routing.json) or a plain bench report with a top-level "series".
The fresh report is a plain --json report from the same binary. Rows are
matched by "name"; only names present in the baseline are gated, so new
benchmarks can land before their baseline does, while a baseline row
missing from the fresh report fails the gate (a benchmark was removed or
renamed without regenerating the baseline). An envelope bundling several
binaries' runs (BENCH_construction.json carries both micros) is
restricted to one with --run=<name>.

Default mode gates each row's metric at +/-tolerance of the baseline —
meaningful only on the machine class that produced the baseline. With
--normalize the per-row ratios are first divided by their geometric mean,
cancelling any uniform machine-speed difference; the gate then catches a
*single* benchmark drifting against the rest, which is the
machine-portable signal CI wants. In both modes an overall geomean drift
line is printed for the perf trajectory (docs/PERFORMANCE.md).

Exit 0 when every gated row is within tolerance, 1 otherwise.
"""
import json
import math
import sys


def load_series(path, run_name=None):
    """Returns {name: row} for a baseline envelope or a plain report."""
    with open(path) as f:
        doc = json.load(f)
    if "series" in doc:
        series = doc["series"]
    elif "runs" in doc:
        # BENCH_*.json envelope: take every run's threads1 series (the
        # only numbers the trajectory files treat as baseline), or just
        # --run's when the envelope bundles several binaries.
        if run_name is not None and run_name not in doc["runs"]:
            raise SystemExit(
                f"{path}: no run {run_name!r} (has {sorted(doc['runs'])})")
        series = []
        for name, run in doc["runs"].items():
            if run_name is not None and name != run_name:
                continue
            series.extend(run.get("threads1", {}).get("series", []))
    else:
        raise SystemExit(f"{path}: neither a report nor a BENCH envelope")
    rows = {}
    for row in series:
        if "name" in row:
            rows[row["name"]] = row
    if not rows:
        raise SystemExit(f"{path}: no named series rows")
    return rows


def main():
    paths, tolerance, normalize, metric, run = [], 0.25, False, "real_time", None
    for arg in sys.argv[1:]:
        if arg.startswith("--tolerance="):
            tolerance = float(arg.split("=", 1)[1])
        elif arg == "--normalize":
            normalize = True
        elif arg.startswith("--metric="):
            metric = arg.split("=", 1)[1]
        elif arg.startswith("--run="):
            run = arg.split("=", 1)[1]
        else:
            paths.append(arg)
    if len(paths) != 2:
        raise SystemExit(__doc__)
    baseline, fresh = load_series(paths[0], run), load_series(paths[1])

    missing = [n for n in baseline
               if n not in fresh and metric in baseline[n]]
    ratios = {}  # name -> fresh/baseline for the gated metric
    for name, base_row in baseline.items():
        if name not in fresh or metric not in base_row:
            continue
        base, cur = base_row[metric], fresh[name].get(metric)
        if cur is None or base <= 0 or cur <= 0:
            continue
        ratios[name] = cur / base
    new = sorted(n for n in fresh if n not in baseline)

    if not ratios and not missing:
        raise SystemExit("no comparable rows between the two reports")
    geomean = (math.exp(sum(math.log(r) for r in ratios.values()) /
                        len(ratios)) if ratios else 1.0)

    failures = list(missing)
    print(f"{len(ratios)} rows compared on {metric!r} "
          f"(tolerance +/-{tolerance:.0%}"
          f"{', normalized by geomean' if normalize else ''})")
    for name in sorted(ratios):
        ratio = ratios[name]
        gated = ratio / geomean if normalize else ratio
        verdict = "ok"
        if not (1 - tolerance <= gated <= 1 + tolerance):
            verdict = "REGRESSION" if gated > 1 else "FASTER?"
            failures.append(name)
        print(f"  {name:<44} {ratio:7.3f}x"
              f"{f'  ({gated:.3f}x vs fleet)' if normalize else '':<20}"
              f"  {verdict}")
    print(f"geomean drift: {geomean:.3f}x "
          f"({'slower' if geomean > 1 else 'faster'} than baseline)")
    for name in missing:
        print(f"  {name:<44} MISSING from fresh report")
    for name in new:
        print(f"  {name:<44} new (no baseline yet, not gated)")

    if failures:
        print(f"FAIL: {len(failures)} row(s) outside tolerance")
        return 1
    print("ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
