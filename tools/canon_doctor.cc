// canon_doctor: build (or ingest) an overlay, audit its structure, and —
// when asked — measure how it routes under injected failures.
//
// Three modes, selected by flags:
//
//   static  (default)      Build --family over a fresh population (every
//                          family from the registry with --all) and run
//                          the family's full audit battery. With
//                          --crash-rate (and optionally --drop-rate) each
//                          audited family additionally routes --trials
//                          lookups through its failure-aware router over a
//                          FaultPlan killing that fraction of nodes, plus
//                          a liveness audit of the survivors. With
//                          --load-report each family also routes --trials
//                          Zipf(1.25) hot-key lookups with a LoadAccountant
//                          attached (load spread, hotspots, per-domain
//                          shares, the §5 confinement ratio). With
//                          --trace-out=<path> the run writes a Chrome
//                          trace-event JSON (construction-phase spans plus
//                          a sampled per-hop lookup trace of the first
//                          family) loadable in chrome://tracing or
//                          ui.perfetto.dev. With --resource-report the run
//                          installs the memory accountant and prints the
//                          per-subsystem byte ledger (docs/TELEMETRY.md
//                          §10), measured RSS, and a self-time-per-phase
//                          wall-clock table; the ledger also lands under
//                          metrics.memory in the JSON report. With
//                          --flame-out=<path> construction-phase spans are
//                          written as FlameGraph/speedscope collapsed
//                          stacks. Exit 0 iff no structural violations and
//                          every measured success rate reaches
//                          --min-success.
//   churn   (--churn=N)    Run N join/leave operations through
//                          DynamicCrescendo, journaling every event to
//                          --journal-out (JSONL) and appending an
//                          audit_snapshot every --snapshot-every ops plus
//                          one final snapshot. With --crash-rate the
//                          post-churn structure also runs the fault phase
//                          (its crash events land in the same journal).
//                          Exit 0 iff the final audit is clean and the
//                          fault phase (if any) reaches --min-success.
//   replay  (--replay=F)   Re-read a churn journal, reconstruct the
//                          surviving member set from its join/leave
//                          events (crash/revive fault events are injected
//                          faults, not membership changes, and are
//                          ignored), rebuild Crescendo from scratch and
//                          re-audit. Exit 0 iff the fresh audit is clean
//                          AND its verdict matches the journal's final
//                          audit_snapshot (the incremental structure and
//                          the from-scratch one must agree).
//
// Common flags: --nodes=1024 --levels=3 --fanout=10 --seed=42 --json=F.
// Fault flags: --crash-rate=0.3 --drop-rate=0.05 --trials=2000
// --min-success=0.5. Valid --family values come from the family registry
// (overlay/family_registry.h); an unknown name prints the full list.
// Replay assumes the default 32-bit ID space (the journal records IDs, not
// the space). See docs/TELEMETRY.md for the journal schema and
// docs/RESILIENCE.md for the fault model.
#include <cstdio>
#include <exception>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "audit/auditor.h"
#include "bench/bench_util.h"
#include "canon/crescendo.h"
#include "hierarchy/generators.h"
#include "maintenance/dynamic_crescendo.h"
#include "overlay/family_registry.h"
#include "overlay/population.h"
#include "overlay/query_engine.h"
#include "telemetry/flame_export.h"
#include "telemetry/journal.h"
#include "telemetry/load_stats.h"
#include "telemetry/mem_stats.h"
#include "telemetry/scoped_timer.h"
#include "telemetry/trace.h"
#include "telemetry/trace_export.h"

namespace {

using namespace canon;

/// The leaf-set reach assumed by the liveness audit — the resilient ring
/// router's default fallback depth.
constexpr int kLivenessLeafSet = 4;

struct FaultOptions {
  double crash_rate = 0.0;  ///< fail-stop fraction in [0, 1)
  double drop_rate = 0.0;   ///< per-forwarding message-drop probability
  std::uint64_t trials = 2000;
  double min_success = 0.0;  ///< exit-gating success-rate floor

  bool active() const { return crash_rate > 0.0 || drop_rate > 0.0; }
};

struct DoctorOptions {
  std::size_t nodes = 1024;
  int levels = 3;
  int fanout = 10;
  std::uint64_t seed = 42;
  FaultOptions faults;
  std::string trace_out;     ///< Chrome/Perfetto trace path ("" = off)
  bool load_report = false;  ///< per-family load observatory tables
  bool resource_report = false;  ///< per-subsystem memory ledger + phases
  std::string flame_out;     ///< collapsed-stack profile path ("" = off)
};

void print_report(std::string_view name, const audit::AuditReport& report) {
  std::printf("  %-18s %s\n", std::string(name).c_str(),
              report.summary().c_str());
  constexpr std::size_t kMaxShown = 5;
  for (std::size_t i = 0;
       i < report.violations.size() && i < kMaxShown; ++i) {
    const audit::Violation& v = report.violations[i];
    std::printf("      [%s] node=%s level=%d: %s\n", v.check.c_str(),
                v.node == audit::kNoNode ? "-" : std::to_string(v.node).c_str(),
                v.level, v.detail.c_str());
  }
  if (report.violations.size() > kMaxShown) {
    std::printf("      ... and %zu more\n",
                report.violations.size() - kMaxShown);
  }
}

telemetry::JsonValue family_row(std::string_view name,
                                const audit::AuditReport& report) {
  telemetry::JsonValue row = telemetry::JsonValue::object();
  row.set("family", telemetry::JsonValue(name));
  row.set("audit", report.to_json());
  return row;
}

OverlayNetwork make_net(const DoctorOptions& opt) {
  Rng rng(opt.seed);
  PopulationSpec spec;
  spec.node_count = opt.nodes;
  spec.hierarchy.levels = opt.levels;
  spec.hierarchy.fanout = opt.fanout;
  return make_population(spec, rng);
}

/// Routes `trials` uniform lookups through `name`'s failure-aware router
/// under the doctor's FaultPlan, audits survivor liveness, prints one
/// summary line, and appends a "resilience" object to `row`. Crash events
/// go to `journal` when given. Returns whether the success rate clears
/// --min-success.
bool run_fault_phase(std::string_view name, const OverlayNetwork& net,
                     const LinkTable& links, const DoctorOptions& opt,
                     telemetry::EventJournal* journal,
                     telemetry::JsonValue& row) {
  const FaultOptions& f = opt.faults;
  FaultPlan plan =
      FaultPlan::fail_fraction(net.size(), f.crash_rate, opt.seed);
  if (f.drop_rate > 0.0) plan.set_drop(f.drop_rate);
  const FailureSet dead = plan.materialize(net, journal);

  const registry::FamilyRouter router =
      registry::family(name).make_router(net, links);
  const QueryEngine engine(net);
  const auto queries =
      uniform_workload(net, f.trials, Rng(opt.seed ^ 0x7e5171dcULL));
  const ResilientStats stats =
      router.run_resilient_with(engine, queries, dead, plan);

  audit::AuditReport live;
  const audit::StructureAuditor auditor(net, links);
  auditor.check_liveness(live, dead, kLivenessLeafSet);

  std::printf(
      "      faults: %llu/%zu crashed, drop %.2f -> success %.3f "
      "(%llu/%llu ok, %llu dead sources), retries %llu, fallback hops "
      "%llu; liveness %s\n",
      static_cast<unsigned long long>(dead.dead_count()), net.size(),
      f.drop_rate, stats.success_rate(),
      static_cast<unsigned long long>(stats.base.ok()),
      static_cast<unsigned long long>(stats.attempted()),
      static_cast<unsigned long long>(stats.skipped_dead_source),
      static_cast<unsigned long long>(stats.retries),
      static_cast<unsigned long long>(stats.fallback_hops),
      live.summary().c_str());

  telemetry::JsonValue res = telemetry::JsonValue::object();
  res.set("crash_rate", telemetry::JsonValue(f.crash_rate));
  res.set("drop_rate", telemetry::JsonValue(f.drop_rate));
  res.set("crashed", telemetry::JsonValue(
                         static_cast<std::uint64_t>(dead.dead_count())));
  res.set("trials", telemetry::JsonValue(f.trials));
  res.set("attempted", telemetry::JsonValue(stats.attempted()));
  res.set("ok", telemetry::JsonValue(stats.base.ok()));
  res.set("success_rate", telemetry::JsonValue(stats.success_rate()));
  res.set("availability", telemetry::JsonValue(stats.availability()));
  res.set("retries", telemetry::JsonValue(stats.retries));
  res.set("fallback_hops", telemetry::JsonValue(stats.fallback_hops));
  res.set("skipped_dead_source",
          telemetry::JsonValue(stats.skipped_dead_source));
  res.set("mean_hops", telemetry::JsonValue(stats.base.hops.mean()));
  // The liveness audit is diagnostic, not exit-gating: at high kill
  // fractions isolated survivors are expected, and the success rate
  // already prices them in.
  res.set("liveness", live.to_json());
  row.set("resilience", std::move(res));

  return stats.success_rate() >= f.min_success;
}

/// Routes `trials` Zipf(1.25) hot-key lookups through `router` with a
/// LoadAccountant attached: per-node load spread, hotspot attribution and
/// the §5 domain-confinement ratio, printed and appended to `row` as a
/// "load" object.
void run_load_report(const OverlayNetwork& net,
                     const registry::FamilyRouter& router,
                     const DoctorOptions& opt, telemetry::JsonValue& row) {
  telemetry::LoadAccountant load(net.domains(), net.ids());
  QueryEngine engine(net);
  engine.set_load(&load);
  const auto queries = zipf_workload(net, opt.faults.trials,
                                     Rng(opt.seed ^ 0x10adULL));
  router.run(engine, queries);

  const auto hot_nodes = load.top_nodes(1);
  const auto hot_keys = load.top_keys(1);
  std::printf(
      "      load: %llu zipf lookups -> gini %.3f, max/mean %.2f, "
      "confinement %.3f",
      static_cast<unsigned long long>(load.queries()), load.gini(),
      load.max_mean_ratio(), load.confinement_ratio());
  if (!hot_nodes.empty()) {
    std::printf(", hottest node %u (%llu msgs)", hot_nodes[0].node,
                static_cast<unsigned long long>(hot_nodes[0].total));
  }
  if (!hot_keys.empty()) {
    std::printf(", hottest key %llu lookups",
                static_cast<unsigned long long>(hot_keys[0].lookups));
  }
  std::printf("\n");
  row.set("load", load.to_json());
}

int run_static(bench::BenchRun& run, const DoctorOptions& opt,
               const std::string& family, bool all,
               const std::string& journal_path) {
  const OverlayNetwork net = make_net(opt);
  std::vector<std::string_view> families;
  if (all) {
    const auto names = registry::family_names();
    families.assign(names.begin(), names.end());
  } else {
    families.push_back(family);
  }

  std::unique_ptr<telemetry::EventJournal> journal;
  if (!journal_path.empty() && opt.faults.active()) {
    journal = std::make_unique<telemetry::EventJournal>(journal_path);
  }

  std::size_t total_violations = 0;
  bool success_ok = true;
  telemetry::RecordingTraceSink trace_sink;  // first family's sample
  for (const std::string_view f : families) {
    const LinkTable links = registry::build_family(net, f, opt.seed);
    const audit::AuditReport report = registry::audit_family(f, net, links);
    total_violations += report.violations.size();
    print_report(f, report);
    telemetry::JsonValue row = family_row(f, report);
    if (opt.faults.active()) {
      success_ok &=
          run_fault_phase(f, net, links, opt, journal.get(), row);
    }
    if (opt.load_report) {
      run_load_report(net, registry::family(f).make_router(net, links), opt,
                      row);
    }
    if (!opt.trace_out.empty() && trace_sink.lookups().empty()) {
      // Sample a small traced batch through the first family (the sink
      // forces the engine serial, so keep it off the main measurements).
      QueryEngine engine(net);
      engine.set_trace(&trace_sink);
      const std::uint64_t sample = std::min<std::uint64_t>(opt.faults.trials,
                                                           64);
      const auto queries =
          uniform_workload(net, sample, Rng(opt.seed ^ 0x7eaceULL));
      registry::family(f).make_router(net, links).run(engine, queries);
    }
    run.report().add_row(std::move(row));
  }
  if (journal) journal->flush();
  if (opt.resource_report) {
    if (const telemetry::MemoryAccountant* acct = telemetry::mem_accountant()) {
      std::printf("\nresource report (per-subsystem bytes):\n");
      std::printf("  %-24s %14s %14s %8s\n", "tag", "current", "peak",
                  "charges");
      for (const auto& [tag, stats] : acct->tags()) {
        std::printf("  %-24s %14llu %14llu %8llu\n", tag.c_str(),
                    static_cast<unsigned long long>(stats.current),
                    static_cast<unsigned long long>(stats.peak),
                    static_cast<unsigned long long>(stats.charges));
      }
      std::printf("  %-24s %14llu %14llu\n", "total",
                  static_cast<unsigned long long>(acct->current_bytes()),
                  static_cast<unsigned long long>(acct->peak_bytes()));
      std::printf("  measured RSS: %.1f MB current, %.1f MB peak "
                  "(attributed %.1f MB)\n",
                  telemetry::current_rss_mb(), telemetry::peak_rss_mb(),
                  static_cast<double>(acct->current_bytes()) /
                      (1024.0 * 1024.0));
      telemetry::JsonValue mem = acct->to_json();
      telemetry::JsonValue measured = telemetry::JsonValue::object();
      measured.set("current_mb",
                   telemetry::JsonValue(telemetry::current_rss_mb()));
      measured.set("peak_mb", telemetry::JsonValue(telemetry::peak_rss_mb()));
      mem.set("measured", std::move(measured));
      run.report().set_metric("memory", std::move(mem));
    }
    if (const telemetry::SpanLog* spans = telemetry::span_log()) {
      const auto tree = telemetry::build_flame_tree(spans->snapshot());
      const telemetry::JsonValue phases = telemetry::flame_phase_table(tree);
      std::printf("\nwall-clock by phase (self time):\n");
      std::printf("  %-32s %6s %12s %12s\n", "phase", "count", "total ms",
                  "self ms");
      for (const telemetry::JsonValue& p : phases.items()) {
        std::printf("  %-32s %6lld %12.2f %12.2f\n",
                    p.get("name")->as_string().c_str(),
                    static_cast<long long>(p.get("count")->as_int()),
                    p.get("total_us")->as_double() / 1e3,
                    p.get("self_us")->as_double() / 1e3);
      }
    }
  }
  if (!opt.flame_out.empty()) {
    if (const telemetry::SpanLog* spans = telemetry::span_log()) {
      const std::size_t lines =
          telemetry::write_collapsed_stacks(*spans, opt.flame_out);
      std::printf("\nflame: %zu collapsed stacks -> %s (load in speedscope "
                  "or flamegraph.pl)\n",
                  lines, opt.flame_out.c_str());
    }
  }
  if (!opt.trace_out.empty()) {
    telemetry::TraceExporter exporter;
    exporter.set_process_name(telemetry::TraceExporter::kBuildPid,
                              "construction phases");
    exporter.set_process_name(telemetry::TraceExporter::kLookupPid,
                              "sampled lookups (" +
                                  std::string(families.front()) + ")");
    if (const telemetry::SpanLog* spans = telemetry::span_log()) {
      exporter.add_span_log(*spans);
    }
    exporter.add_lookup_traces(trace_sink);
    exporter.write_file(opt.trace_out);
    std::printf("\ntrace: %zu events -> %s (load in chrome://tracing or "
                "ui.perfetto.dev)\n",
                exporter.event_count(), opt.trace_out.c_str());
  }
  std::printf("\n%s\n", total_violations == 0
                            ? "all audited structures are healthy"
                            : "structural violations detected");
  if (opt.faults.active() && !success_ok) {
    std::printf("fault phase: success rate below --min-success=%.3f\n",
                opt.faults.min_success);
  }
  const int rc = run.finish();
  if (rc != 0) return rc;
  return (total_violations == 0 && success_ok) ? 0 : 1;
}

/// Applies `ops` random join/leave operations; journals when `journal` is
/// non-null and snapshots (journal + report rows) every `snapshot_every`
/// ops plus once at the end. Returns the final report.
audit::AuditReport run_churn_ops(bench::BenchRun& run, DynamicCrescendo& dyn,
                                 const DoctorOptions& opt, std::uint64_t ops,
                                 std::uint64_t snapshot_every,
                                 telemetry::EventJournal* journal) {
  Rng rng(opt.seed + 0x9e3779b97f4a7c15ULL);
  HierarchySpec hier;
  hier.levels = opt.levels;
  hier.fanout = opt.fanout;
  const IdSpace space = dyn.network().space();
  const std::size_t floor_size = opt.nodes / 2 + 2;

  const auto snapshot = [&](std::uint64_t op) {
    const LinkTable links = dyn.link_table();
    const audit::AuditReport report =
        registry::audit_family("crescendo", dyn.network(), links);
    if (journal) {
      journal->audit_snapshot(dyn.size(), report.total_checks(),
                              report.violations.size());
    }
    telemetry::JsonValue row = telemetry::JsonValue::object();
    row.set("op", telemetry::JsonValue(op));
    row.set("size",
            telemetry::JsonValue(static_cast<std::uint64_t>(dyn.size())));
    row.set("checks", telemetry::JsonValue(report.total_checks()));
    row.set("violations",
            telemetry::JsonValue(
                static_cast<std::uint64_t>(report.violations.size())));
    run.report().add_row(std::move(row));
    return report;
  };

  for (std::uint64_t op = 1; op <= ops; ++op) {
    const bool join = dyn.size() <= floor_size ||
                      (dyn.size() < 2 * opt.nodes && rng.uniform(2) == 0);
    if (join) {
      OverlayNode node;
      do {
        node.id = rng() & space.mask();
      } while (dyn.links_by_id().contains(node.id));
      node.domain = generate_hierarchy(1, hier, rng)[0];
      dyn.join(node);
    } else {
      const auto& links = dyn.links_by_id();
      auto it = links.begin();
      std::advance(it, static_cast<long>(rng.uniform(links.size())));
      dyn.leave(it->first);
    }
    if (snapshot_every > 0 && op % snapshot_every == 0 && op != ops) {
      snapshot(op);
    }
  }
  audit::AuditReport final_report = snapshot(ops);
  if (journal) journal->flush();
  return final_report;
}

int run_churn(bench::BenchRun& run, const DoctorOptions& opt,
              std::uint64_t ops, std::uint64_t snapshot_every,
              const std::string& journal_path) {
  Rng rng(opt.seed);
  PopulationSpec spec;
  spec.node_count = opt.nodes;
  spec.hierarchy.levels = opt.levels;
  spec.hierarchy.fanout = opt.fanout;
  const IdSpace space(spec.id_bits);
  const std::vector<NodeId> ids =
      sample_unique_ids(spec.node_count, space, rng);
  const std::vector<DomainPath> paths =
      generate_hierarchy(spec.node_count, spec.hierarchy, rng);
  std::vector<OverlayNode> initial(spec.node_count);
  for (std::size_t i = 0; i < spec.node_count; ++i) {
    initial[i].id = ids[i];
    initial[i].domain = paths[i];
  }
  DynamicCrescendo dyn(space, std::move(initial));

  std::unique_ptr<telemetry::EventJournal> journal;
  if (!journal_path.empty()) {
    journal = std::make_unique<telemetry::EventJournal>(journal_path);
    // Journal the bootstrap population as join events (lookup_hops 0:
    // these nodes never routed an insertion lookup) so a replay can
    // reconstruct the full member set, not just the churn-time joiners.
    std::size_t bootstrapped = 0;
    for (std::size_t i = 0; i < spec.node_count; ++i) {
      journal->join(ids[i], paths[i].branches(), 0, ++bootstrapped);
    }
  }
  dyn.set_journal(journal.get());

  const audit::AuditReport report =
      run_churn_ops(run, dyn, opt, ops, snapshot_every, journal.get());
  std::printf("after %llu churn ops (final size %zu):\n",
              static_cast<unsigned long long>(ops), dyn.size());
  print_report("crescendo", report);

  // The post-churn fault phase: does the *churned* structure still route
  // around injected failures?
  bool success_ok = true;
  if (opt.faults.active()) {
    const LinkTable links = dyn.link_table();
    telemetry::JsonValue row = family_row("crescendo", report);
    success_ok = run_fault_phase("crescendo", dyn.network(), links, opt,
                                 journal.get(), row);
    run.report().add_row(std::move(row));
    if (journal) journal->flush();
  }

  if (journal) {
    std::printf("journal: %s (%llu events)\n", journal_path.c_str(),
                static_cast<unsigned long long>(journal->events()));
  }
  const int rc = run.finish();
  if (rc != 0) return rc;
  return (report.ok() && success_ok) ? 0 : 1;
}

int run_replay(bench::BenchRun& run, const std::string& journal_path) {
  const std::vector<telemetry::JsonValue> events =
      telemetry::read_journal_file(journal_path);

  // Reconstruct the surviving member set; remember the last snapshot's
  // verdict for the incremental-vs-from-scratch comparison. Fault events
  // (crash/revive) are injected failures, not membership changes — they
  // fall through the type dispatch untouched.
  std::map<NodeId, DomainPath> members;
  bool saw_snapshot = false;
  std::uint64_t snapshot_violations = 0;
  for (const telemetry::JsonValue& ev : events) {
    const std::string& type = ev.get("type")->as_string();
    if (type == "join") {
      std::vector<std::uint16_t> branches;
      for (const telemetry::JsonValue& b : ev.get("path")->items()) {
        branches.push_back(static_cast<std::uint16_t>(b.as_int()));
      }
      members[static_cast<NodeId>(ev.get("id")->as_int())] =
          DomainPath(std::move(branches));
    } else if (type == "leave") {
      members.erase(static_cast<NodeId>(ev.get("id")->as_int()));
    } else if (type == "audit_snapshot") {
      saw_snapshot = true;
      snapshot_violations =
          static_cast<std::uint64_t>(ev.get("violations")->as_int());
    }
  }

  std::vector<OverlayNode> nodes;
  nodes.reserve(members.size());
  for (const auto& [id, path] : members) {
    nodes.push_back(OverlayNode{id, path, -1});
  }
  const OverlayNetwork net(IdSpace(), std::move(nodes));
  const LinkTable links = build_crescendo(net);
  const audit::AuditReport report =
      registry::audit_family("crescendo", net, links);

  std::printf("replayed %zu events -> %zu surviving members\n", events.size(),
              members.size());
  print_report("crescendo", report);
  bool verdicts_agree = true;
  if (saw_snapshot) {
    verdicts_agree = (snapshot_violations == 0) == report.ok();
    std::printf("journal's final snapshot: %llu violations -> verdicts %s\n",
                static_cast<unsigned long long>(snapshot_violations),
                verdicts_agree ? "AGREE" : "DISAGREE");
  }
  telemetry::JsonValue row = family_row("crescendo", report);
  row.set("replayed_events",
          telemetry::JsonValue(static_cast<std::uint64_t>(events.size())));
  row.set("verdicts_agree", telemetry::JsonValue(verdicts_agree));
  run.report().add_row(std::move(row));
  const int rc = run.finish();
  return rc != 0 ? rc : ((report.ok() && verdicts_agree) ? 0 : 1);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    bench::BenchRun run(argc, argv, "canon_doctor");
    const std::string family = run.str("family", "crescendo");
    const bool all = run.boolean("all", false);
    DoctorOptions opt;
    opt.nodes = run.u64("nodes", 1024);
    opt.levels = static_cast<int>(run.u64("levels", 3));
    opt.fanout = static_cast<int>(run.u64("fanout", 10));
    opt.seed = run.seed;
    const std::uint64_t churn = run.u64("churn", 0);
    const std::uint64_t snapshot_every = run.u64("snapshot-every", 100);
    const std::string journal_out = run.str("journal-out", "");
    const std::string replay = run.str("replay", "");
    // Fault flags stay out of the recorded params unless passed, so a
    // fault-free doctor report is byte-identical to the pre-fault tool's.
    if (run.present("crash-rate")) {
      opt.faults.crash_rate = run.f64("crash-rate", 0.0);
    }
    if (run.present("drop-rate")) {
      opt.faults.drop_rate = run.f64("drop-rate", 0.0);
    }
    if (opt.faults.active() || run.present("trials")) {
      opt.faults.trials = run.u64("trials", 2000);
    }
    if (opt.faults.active() || run.present("min-success")) {
      opt.faults.min_success = run.f64("min-success", 0.0);
    }
    // Observatory flags (static mode; gated on present() like the fault
    // flags so default reports stay byte-identical).
    if (run.present("trace-out")) {
      opt.trace_out = run.str("trace-out", "");
    }
    if (run.present("load-report")) {
      opt.load_report = run.boolean("load-report", true);
    }
    if (run.present("resource-report")) {
      opt.resource_report = run.boolean("resource-report", true);
    }
    if (run.present("flame-out")) {
      opt.flame_out = run.str("flame-out", "");
    }
    // Span capture feeds --trace-out, --flame-out, and the
    // --resource-report phase table; the accountant feeds the byte ledger.
    // Both are gated on present() so default reports stay byte-identical.
    telemetry::SpanLog spans;
    if (!opt.trace_out.empty() || !opt.flame_out.empty() ||
        opt.resource_report) {
      telemetry::install_span_log(&spans);
    }
    telemetry::MemoryAccountant accountant;
    if (opt.resource_report) telemetry::install_mem_accountant(&accountant);

    run.header("canon_doctor: structural health report",
               "invariants of Sections 2.1, 2.3, 3.4 (audit battery)");

    if (!replay.empty()) return run_replay(run, replay);
    if (churn > 0) return run_churn(run, opt, churn, snapshot_every,
                                    journal_out);
    if (!all && !registry::is_family(family)) {
      std::fprintf(stderr,
                   "canon_doctor: unknown family '%s' (families: %s)\n",
                   family.c_str(), registry::family_list().c_str());
      return 2;
    }
    return run_static(run, opt, family, all, journal_out);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "canon_doctor: %s\n", e.what());
    return 2;
  }
}
