// canon_doctor: build (or ingest) an overlay and audit its structure.
//
// Three modes, selected by flags:
//
//   static  (default)      Build --family over a fresh population and run
//                          the family's full audit battery. --all audits
//                          every one of the 13 families over the same
//                          population. Exit 0 iff no violations.
//   churn   (--churn=N)    Run N join/leave operations through
//                          DynamicCrescendo, journaling every event to
//                          --journal-out (JSONL) and appending an
//                          audit_snapshot every --snapshot-every ops plus
//                          one final snapshot. Exit 0 iff the final audit
//                          is clean.
//   replay  (--replay=F)   Re-read a churn journal, reconstruct the
//                          surviving member set from its join/leave
//                          events, rebuild Crescendo from scratch and
//                          re-audit. Exit 0 iff the fresh audit is clean
//                          AND its verdict matches the journal's final
//                          audit_snapshot (the incremental structure and
//                          the from-scratch one must agree).
//
// Common flags: --nodes=1024 --levels=3 --fanout=10 --seed=42 --json=F.
// Replay assumes the default 32-bit ID space (the journal records IDs,
// not the space). See docs/TELEMETRY.md for the journal schema.
#include <cstdio>
#include <exception>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "audit/auditor.h"
#include "bench/bench_util.h"
#include "canon/cacophony.h"
#include "canon/cancan.h"
#include "canon/crescendo.h"
#include "canon/kandy.h"
#include "canon/mixed.h"
#include "canon/nondet_crescendo.h"
#include "canon/proximity.h"
#include "dht/can.h"
#include "dht/chord.h"
#include "dht/kademlia.h"
#include "dht/nondet_chord.h"
#include "dht/symphony.h"
#include "hierarchy/generators.h"
#include "maintenance/dynamic_crescendo.h"
#include "overlay/population.h"
#include "telemetry/journal.h"

namespace {

using namespace canon;

/// Same construction conventions as tests/parallel_determinism_test.cc:
/// randomized families draw from Rng(seed * 2 + 1), the proximity families
/// group by the top bits (target group size 16) and use a synthetic but
/// deterministic pairwise latency oracle.
LinkTable build_family(const OverlayNetwork& net, std::string_view family,
                       std::uint64_t seed) {
  const HopCost cost = [](std::uint32_t a, std::uint32_t b) {
    return static_cast<double>((a * 31u + b * 17u) % 97u + 1u);
  };
  Rng rng(seed * 2 + 1);
  if (family == "chord") return build_chord(net);
  if (family == "crescendo") return build_crescendo(net);
  if (family == "clique_crescendo") return build_clique_crescendo(net);
  if (family == "can") return build_can(net).links;
  if (family == "cancan") return CanCanNetwork(net).links();
  if (family == "symphony") return build_symphony(net, rng);
  if (family == "nondet_chord") return build_nondet_chord(net, rng);
  if (family == "kademlia") {
    return build_kademlia(net, BucketChoice::kClosest, rng);
  }
  if (family == "kandy") return build_kandy(net, BucketChoice::kClosest, rng);
  if (family == "cacophony") return build_cacophony(net, rng);
  if (family == "nondet_crescendo") return build_nondet_crescendo(net, rng);
  if (family == "chord_prox") {
    const GroupedOverlay groups(net, ProximityConfig{}.target_group_size);
    return build_chord_prox(net, groups, cost, ProximityConfig{}, rng);
  }
  if (family == "crescendo_prox") {
    const GroupedOverlay groups(net, ProximityConfig{}.target_group_size);
    return build_crescendo_prox(net, groups, cost, ProximityConfig{}, rng);
  }
  throw std::invalid_argument("canon_doctor: unknown family '" +
                              std::string(family) + "'");
}

void print_report(std::string_view name, const audit::AuditReport& report) {
  std::printf("  %-18s %s\n", std::string(name).c_str(),
              report.summary().c_str());
  constexpr std::size_t kMaxShown = 5;
  for (std::size_t i = 0;
       i < report.violations.size() && i < kMaxShown; ++i) {
    const audit::Violation& v = report.violations[i];
    std::printf("      [%s] node=%s level=%d: %s\n", v.check.c_str(),
                v.node == audit::kNoNode ? "-" : std::to_string(v.node).c_str(),
                v.level, v.detail.c_str());
  }
  if (report.violations.size() > kMaxShown) {
    std::printf("      ... and %zu more\n",
                report.violations.size() - kMaxShown);
  }
}

telemetry::JsonValue family_row(std::string_view name,
                                const audit::AuditReport& report) {
  telemetry::JsonValue row = telemetry::JsonValue::object();
  row.set("family", telemetry::JsonValue(name));
  row.set("audit", report.to_json());
  return row;
}

struct DoctorOptions {
  std::size_t nodes = 1024;
  int levels = 3;
  int fanout = 10;
  std::uint64_t seed = 42;
};

OverlayNetwork make_net(const DoctorOptions& opt) {
  Rng rng(opt.seed);
  PopulationSpec spec;
  spec.node_count = opt.nodes;
  spec.hierarchy.levels = opt.levels;
  spec.hierarchy.fanout = opt.fanout;
  return make_population(spec, rng);
}

int run_static(bench::BenchRun& run, const DoctorOptions& opt,
               const std::string& family, bool all) {
  const OverlayNetwork net = make_net(opt);
  std::vector<std::string_view> families;
  if (all) {
    const auto names = audit::family_names();
    families.assign(names.begin(), names.end());
  } else {
    families.push_back(family);
  }
  std::size_t total_violations = 0;
  for (const std::string_view f : families) {
    const LinkTable links = build_family(net, f, opt.seed);
    const audit::StructureAuditor auditor(net, links);
    const audit::AuditReport report = auditor.audit(f);
    total_violations += report.violations.size();
    print_report(f, report);
    run.report().add_row(family_row(f, report));
  }
  std::printf("\n%s\n", total_violations == 0
                            ? "all audited structures are healthy"
                            : "structural violations detected");
  const int rc = run.finish();
  return rc != 0 ? rc : (total_violations == 0 ? 0 : 1);
}

/// Applies `ops` random join/leave operations; journals when `journal` is
/// non-null and snapshots (journal + report rows) every `snapshot_every`
/// ops plus once at the end. Returns the final report.
audit::AuditReport run_churn_ops(bench::BenchRun& run, DynamicCrescendo& dyn,
                                 const DoctorOptions& opt, std::uint64_t ops,
                                 std::uint64_t snapshot_every,
                                 telemetry::EventJournal* journal) {
  Rng rng(opt.seed + 0x9e3779b97f4a7c15ULL);
  HierarchySpec hier;
  hier.levels = opt.levels;
  hier.fanout = opt.fanout;
  const IdSpace space = dyn.network().space();
  const std::size_t floor_size = opt.nodes / 2 + 2;

  const auto snapshot = [&](std::uint64_t op) {
    const LinkTable links = dyn.link_table();
    const audit::StructureAuditor auditor(dyn.network(), links);
    const audit::AuditReport report = auditor.audit("crescendo");
    if (journal) {
      journal->audit_snapshot(dyn.size(), report.total_checks(),
                              report.violations.size());
    }
    telemetry::JsonValue row = telemetry::JsonValue::object();
    row.set("op", telemetry::JsonValue(op));
    row.set("size",
            telemetry::JsonValue(static_cast<std::uint64_t>(dyn.size())));
    row.set("checks", telemetry::JsonValue(report.total_checks()));
    row.set("violations",
            telemetry::JsonValue(
                static_cast<std::uint64_t>(report.violations.size())));
    run.report().add_row(std::move(row));
    return report;
  };

  for (std::uint64_t op = 1; op <= ops; ++op) {
    const bool join = dyn.size() <= floor_size ||
                      (dyn.size() < 2 * opt.nodes && rng.uniform(2) == 0);
    if (join) {
      OverlayNode node;
      do {
        node.id = rng() & space.mask();
      } while (dyn.links_by_id().contains(node.id));
      node.domain = generate_hierarchy(1, hier, rng)[0];
      dyn.join(node);
    } else {
      const auto& links = dyn.links_by_id();
      auto it = links.begin();
      std::advance(it, static_cast<long>(rng.uniform(links.size())));
      dyn.leave(it->first);
    }
    if (snapshot_every > 0 && op % snapshot_every == 0 && op != ops) {
      snapshot(op);
    }
  }
  audit::AuditReport final_report = snapshot(ops);
  if (journal) journal->flush();
  return final_report;
}

int run_churn(bench::BenchRun& run, const DoctorOptions& opt,
              std::uint64_t ops, std::uint64_t snapshot_every,
              const std::string& journal_path) {
  Rng rng(opt.seed);
  PopulationSpec spec;
  spec.node_count = opt.nodes;
  spec.hierarchy.levels = opt.levels;
  spec.hierarchy.fanout = opt.fanout;
  const IdSpace space(spec.id_bits);
  const std::vector<NodeId> ids =
      sample_unique_ids(spec.node_count, space, rng);
  const std::vector<DomainPath> paths =
      generate_hierarchy(spec.node_count, spec.hierarchy, rng);
  std::vector<OverlayNode> initial(spec.node_count);
  for (std::size_t i = 0; i < spec.node_count; ++i) {
    initial[i].id = ids[i];
    initial[i].domain = paths[i];
  }
  DynamicCrescendo dyn(space, std::move(initial));

  std::unique_ptr<telemetry::EventJournal> journal;
  if (!journal_path.empty()) {
    journal = std::make_unique<telemetry::EventJournal>(journal_path);
    // Journal the bootstrap population as join events (lookup_hops 0:
    // these nodes never routed an insertion lookup) so a replay can
    // reconstruct the full member set, not just the churn-time joiners.
    std::size_t bootstrapped = 0;
    for (std::size_t i = 0; i < spec.node_count; ++i) {
      journal->join(ids[i], paths[i].branches(), 0, ++bootstrapped);
    }
  }
  dyn.set_journal(journal.get());

  const audit::AuditReport report =
      run_churn_ops(run, dyn, opt, ops, snapshot_every, journal.get());
  std::printf("after %llu churn ops (final size %zu):\n",
              static_cast<unsigned long long>(ops), dyn.size());
  print_report("crescendo", report);
  if (journal) {
    std::printf("journal: %s (%llu events)\n", journal_path.c_str(),
                static_cast<unsigned long long>(journal->events()));
  }
  const int rc = run.finish();
  return rc != 0 ? rc : (report.ok() ? 0 : 1);
}

int run_replay(bench::BenchRun& run, const std::string& journal_path) {
  const std::vector<telemetry::JsonValue> events =
      telemetry::read_journal_file(journal_path);

  // Reconstruct the surviving member set; remember the last snapshot's
  // verdict for the incremental-vs-from-scratch comparison.
  std::map<NodeId, DomainPath> members;
  bool saw_snapshot = false;
  std::uint64_t snapshot_violations = 0;
  for (const telemetry::JsonValue& ev : events) {
    const std::string& type = ev.get("type")->as_string();
    if (type == "join") {
      std::vector<std::uint16_t> branches;
      for (const telemetry::JsonValue& b : ev.get("path")->items()) {
        branches.push_back(static_cast<std::uint16_t>(b.as_int()));
      }
      members[static_cast<NodeId>(ev.get("id")->as_int())] =
          DomainPath(std::move(branches));
    } else if (type == "leave") {
      members.erase(static_cast<NodeId>(ev.get("id")->as_int()));
    } else if (type == "audit_snapshot") {
      saw_snapshot = true;
      snapshot_violations =
          static_cast<std::uint64_t>(ev.get("violations")->as_int());
    }
  }

  std::vector<OverlayNode> nodes;
  nodes.reserve(members.size());
  for (const auto& [id, path] : members) {
    nodes.push_back(OverlayNode{id, path, -1});
  }
  const OverlayNetwork net(IdSpace(), std::move(nodes));
  const LinkTable links = build_crescendo(net);
  const audit::StructureAuditor auditor(net, links);
  const audit::AuditReport report = auditor.audit("crescendo");

  std::printf("replayed %zu events -> %zu surviving members\n", events.size(),
              members.size());
  print_report("crescendo", report);
  bool verdicts_agree = true;
  if (saw_snapshot) {
    verdicts_agree = (snapshot_violations == 0) == report.ok();
    std::printf("journal's final snapshot: %llu violations -> verdicts %s\n",
                static_cast<unsigned long long>(snapshot_violations),
                verdicts_agree ? "AGREE" : "DISAGREE");
  }
  telemetry::JsonValue row = family_row("crescendo", report);
  row.set("replayed_events",
          telemetry::JsonValue(static_cast<std::uint64_t>(events.size())));
  row.set("verdicts_agree", telemetry::JsonValue(verdicts_agree));
  run.report().add_row(std::move(row));
  const int rc = run.finish();
  return rc != 0 ? rc : ((report.ok() && verdicts_agree) ? 0 : 1);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    bench::BenchRun run(argc, argv, "canon_doctor");
    const std::string family = run.str("family", "crescendo");
    const bool all = run.boolean("all", false);
    DoctorOptions opt;
    opt.nodes = run.u64("nodes", 1024);
    opt.levels = static_cast<int>(run.u64("levels", 3));
    opt.fanout = static_cast<int>(run.u64("fanout", 10));
    opt.seed = run.seed;
    const std::uint64_t churn = run.u64("churn", 0);
    const std::uint64_t snapshot_every = run.u64("snapshot-every", 100);
    const std::string journal_out = run.str("journal-out", "");
    const std::string replay = run.str("replay", "");

    run.header("canon_doctor: structural health report",
               "invariants of Sections 2.1, 2.3, 3.4 (audit battery)");

    if (!replay.empty()) return run_replay(run, replay);
    if (churn > 0) return run_churn(run, opt, churn, snapshot_every,
                                    journal_out);
    if (!all && !audit::is_family(family)) {
      std::fprintf(stderr, "canon_doctor: unknown family '%s'\n",
                   family.c_str());
      return 2;
    }
    return run_static(run, opt, family, all);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "canon_doctor: %s\n", e.what());
    return 2;
  }
}
