# ctest script: a small churn run must journal cleanly and replay to the
# same healthy verdict (incremental structure == from-scratch structure).
set(journal "${WORK_DIR}/doctor_churn.jsonl")
execute_process(
  COMMAND "${DOCTOR}" --nodes=128 --churn=60 --snapshot-every=20
          --journal-out=${journal}
  RESULT_VARIABLE churn_rc)
if(NOT churn_rc EQUAL 0)
  message(FATAL_ERROR "canon_doctor churn run failed (rc=${churn_rc})")
endif()
execute_process(
  COMMAND "${DOCTOR}" --replay=${journal}
  RESULT_VARIABLE replay_rc)
if(NOT replay_rc EQUAL 0)
  message(FATAL_ERROR "canon_doctor replay failed (rc=${replay_rc})")
endif()
