// Tests for the structural health auditor: every family audits clean when
// healthy, and seeded corruptions are detected and attributed to the
// check, node, and level that were actually broken.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "audit/auditor.h"
#include "canon/cacophony.h"
#include "canon/crescendo.h"
#include "dht/can.h"
#include "dht/chord.h"
#include "dht/kademlia.h"
#include "overlay/family_registry.h"
#include "overlay/population.h"
#include "telemetry/metrics.h"

namespace canon {

/// Test-only corruption hook (friend of LinkTable): produces the malformed
/// CSR layouts the public API is designed to make impossible.
struct LinkTableMutator {
  /// Reverses node's CSR row in place (targets and inline ids together, so
  /// only the sort order breaks, not the id alignment).
  static void reverse_row(LinkTable& t, std::uint32_t node) {
    const auto b = static_cast<std::ptrdiff_t>(t.offsets_[node]);
    const auto e = static_cast<std::ptrdiff_t>(t.offsets_[node + 1]);
    std::reverse(t.targets_.begin() + b, t.targets_.begin() + e);
    if (!t.target_ids_.empty()) {
      std::reverse(t.target_ids_.begin() + b, t.target_ids_.begin() + e);
    }
  }
};

namespace {

OverlayNetwork test_net(std::size_t n = 256, int levels = 3,
                        std::uint64_t seed = 7) {
  Rng rng(seed);
  PopulationSpec spec;
  spec.node_count = n;
  spec.hierarchy.levels = levels;
  spec.hierarchy.fanout = 4;
  return make_population(spec, rng);
}

std::vector<std::uint32_t> row_copy(const LinkTable& t, std::uint32_t node) {
  const auto row = t.neighbors(node);
  return {row.begin(), row.end()};
}

TEST(Auditor, EveryHealthyFamilyAuditsClean) {
  const OverlayNetwork net = test_net();
  for (const std::string_view family : registry::family_names()) {
    LinkTable links = registry::build_family(net, family, 7);
    const audit::AuditReport report =
        registry::audit_family(family, net, links);
    EXPECT_TRUE(report.ok())
        << family << ": " << report.summary();
    EXPECT_GT(report.total_checks(), 0u) << family;
    // Every battery that ran counted at least one assertion.
    for (const auto& [battery, n] : report.checks) {
      EXPECT_GT(n, 0u) << family << "/" << battery;
    }
  }
}

TEST(Auditor, FlatPopulationAuditsClean) {
  const OverlayNetwork net = test_net(128, /*levels=*/1, 11);
  for (const std::string_view family :
       {"chord", "crescendo", "kademlia", "kandy", "can", "cancan"}) {
    LinkTable links = registry::build_family(net, family, 11);
    EXPECT_TRUE(registry::audit_family(family, net, links).ok()) << family;
  }
}

TEST(Auditor, RequiresFinalizedTable) {
  const OverlayNetwork net = test_net(32, 1, 3);
  LinkTable raw(net.size());
  EXPECT_THROW(audit::StructureAuditor(net, raw), std::invalid_argument);
}

TEST(Auditor, UnknownFamilyThrows) {
  const OverlayNetwork net = test_net(32, 1, 3);
  const LinkTable links = build_chord(net);
  EXPECT_THROW(registry::family("pastry"), std::invalid_argument);
  EXPECT_THROW(registry::audit_family("pastry", net, links),
               std::invalid_argument);
  EXPECT_FALSE(registry::is_family("pastry"));
  EXPECT_TRUE(registry::is_family("crescendo"));
  EXPECT_EQ(registry::family_names().size(), 13u);
  EXPECT_EQ(registry::families().size(), 13u);
  // The thrown message names the valid families, so a CLI typo is
  // self-correcting.
  try {
    registry::family("pastry");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("crescendo"), std::string::npos);
  }
}

// Mutation: drop a Crescendo node's leaf-ring successor edge. The auditor
// must attribute every resulting violation to that node, and at least one
// must be a ring.closure miss at its leaf level.
TEST(AuditorMutation, CrescendoDroppedRingEdge) {
  const OverlayNetwork net = test_net();
  LinkTable links = build_crescendo(net);
  const std::uint32_t m = 17;
  const int depth = net.domains().node_depth(m);
  const RingView leaf_ring =
      net.domain_ring(net.domains().domain_chain(m).back());
  ASSERT_GE(leaf_ring.size(), 2u);
  const std::uint32_t succ = leaf_ring.first_at_distance(net.id(m), 1);
  ASSERT_TRUE(links.has_link(m, succ));

  std::vector<std::uint32_t> row = row_copy(links, m);
  row.erase(std::remove(row.begin(), row.end(), succ), row.end());
  links.set_neighbors(m, std::move(row));

  const audit::AuditReport report =
      registry::audit_family("crescendo", net, links);
  ASSERT_FALSE(report.ok());
  bool leaf_closure_missed = false;
  for (const audit::Violation& v : report.violations) {
    EXPECT_EQ(v.node, m) << v.check << ": " << v.detail;
    EXPECT_TRUE(v.check == "ring.closure" || v.check == "chord.finger")
        << v.check;
    if (v.check == "ring.closure" && v.level == depth) {
      leaf_closure_missed = true;
    }
  }
  EXPECT_TRUE(leaf_closure_missed);
}

// Mutation: drop a flat Chord node's farthest finger. chord.finger must
// report the missing link; ring closure (the successor) must stay intact.
TEST(AuditorMutation, ChordDroppedFarFinger) {
  const OverlayNetwork net = test_net();
  LinkTable links = build_chord(net);
  const std::uint32_t m = 99;
  std::vector<std::uint32_t> row = row_copy(links, m);
  ASSERT_GE(row.size(), 2u);
  const auto far = *std::max_element(
      row.begin(), row.end(), [&](std::uint32_t a, std::uint32_t b) {
        return net.space().ring_distance(net.id(m), net.id(a)) <
               net.space().ring_distance(net.id(m), net.id(b));
      });
  row.erase(std::remove(row.begin(), row.end(), far), row.end());
  links.set_neighbors(m, std::move(row));

  const audit::AuditReport report =
      registry::audit_family("chord", net, links);
  ASSERT_FALSE(report.ok());
  for (const audit::Violation& v : report.violations) {
    EXPECT_EQ(v.check, "chord.finger");
    EXPECT_EQ(v.node, m);
    EXPECT_NE(v.detail.find("missing"), std::string::npos) << v.detail;
  }
  EXPECT_EQ(report.checks.count("ring.closure"), 1u);  // battery ran...
  EXPECT_EQ(report.violations.size(), 1u);             // ...and stayed clean
}

// Mutation: empty one populated XOR bucket of a Kademlia node.
TEST(AuditorMutation, KademliaEmptiedBucket) {
  const OverlayNetwork net = test_net();
  Rng rng(7 * 2 + 1);
  LinkTable links = build_kademlia(net, BucketChoice::kClosest, rng);
  const std::uint32_t m = 42;
  std::vector<std::uint32_t> row = row_copy(links, m);
  ASSERT_FALSE(row.empty());
  const int victim_bucket = floor_log2(
      net.space().xor_distance(net.id(m), net.id(row.back())));
  row.erase(std::remove_if(row.begin(), row.end(),
                           [&](std::uint32_t v) {
                             return floor_log2(net.space().xor_distance(
                                        net.id(m), net.id(v))) ==
                                    victim_bucket;
                           }),
            row.end());
  links.set_neighbors(m, std::move(row));

  const audit::AuditReport report =
      registry::audit_family("kademlia", net, links);
  ASSERT_FALSE(report.ok());
  for (const audit::Violation& v : report.violations) {
    EXPECT_EQ(v.check, "xor.bucket");
    EXPECT_EQ(v.node, m);
    EXPECT_EQ(v.level, 0);
  }
}

// Mutation: truncate a Cacophony node's neighbor list to nothing — every
// per-level ring successor disappears at once.
TEST(AuditorMutation, CacophonyTruncatedSuccessors) {
  const OverlayNetwork net = test_net();
  Rng rng(7 * 2 + 1);
  LinkTable links = build_cacophony(net, rng);
  const std::uint32_t m = 3;
  links.set_neighbors(m, {});

  const audit::AuditReport report =
      registry::audit_family("cacophony", net, links);
  ASSERT_FALSE(report.ok());
  std::vector<int> levels;
  for (const audit::Violation& v : report.violations) {
    EXPECT_EQ(v.check, "ring.closure");
    EXPECT_EQ(v.node, m);
    levels.push_back(v.level);
  }
  // One missing successor per level whose domain ring has >= 2 members.
  std::size_t expected_levels = 0;
  for (const int d : net.domains().domain_chain(m)) {
    expected_levels += net.domain_ring(d).size() >= 2;
  }
  EXPECT_EQ(levels.size(), expected_levels);
}

// Mutation: swap the owners of two single-zone CAN nodes — both now own
// only a zone that does not contain their own ID.
TEST(AuditorMutation, CanSwappedZoneOwners) {
  const OverlayNetwork net = test_net(256, 1, 7);
  const CanNetwork can = build_can(net);
  auto zones = audit::StructureAuditor::extract_zones(
      can.tree, net.ring().members());

  // Find two distinct single-zone owners whose zones differ.
  std::map<std::uint32_t, int> zone_count;
  for (const auto& oz : zones) ++zone_count[oz.owner];
  std::vector<std::size_t> picks;
  for (std::size_t i = 0; i < zones.size() && picks.size() < 2; ++i) {
    if (zone_count[zones[i].owner] == 1 &&
        (picks.empty() || zones[picks[0]].owner != zones[i].owner)) {
      picks.push_back(i);
    }
  }
  ASSERT_EQ(picks.size(), 2u);
  std::swap(zones[picks[0]].owner, zones[picks[1]].owner);

  const audit::StructureAuditor auditor(net, can.links);
  audit::AuditReport report;
  auditor.check_zone_list(report, zones, 0);
  ASSERT_FALSE(report.ok());
  std::vector<std::uint32_t> blamed;
  for (const audit::Violation& v : report.violations) {
    EXPECT_EQ(v.check, "zone.containment");
    blamed.push_back(v.node);
  }
  std::sort(blamed.begin(), blamed.end());
  std::vector<std::uint32_t> expected = {zones[picks[0]].owner,
                                         zones[picks[1]].owner};
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(blamed, expected);
}

// Mutation: delete a zone from the list — the tiling check must report the
// gap; the surviving zones still contain their owners.
TEST(AuditorMutation, CanMissingZoneIsAGap) {
  const OverlayNetwork net = test_net(256, 1, 7);
  const CanNetwork can = build_can(net);
  auto zones = audit::StructureAuditor::extract_zones(
      can.tree, net.ring().members());
  ASSERT_GE(zones.size(), net.size());
  zones.erase(zones.begin() + static_cast<std::ptrdiff_t>(zones.size() / 2));

  const audit::StructureAuditor auditor(net, can.links);
  audit::AuditReport report;
  auditor.check_zone_list(report, zones, 0);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(std::any_of(report.violations.begin(), report.violations.end(),
                          [](const audit::Violation& v) {
                            return v.check == "zone.tiling";
                          }));
}

// Mutation: desort a CSR row through the test-only backdoor (the public
// API re-sorts, so this is the only way to get a malformed layout).
TEST(AuditorMutation, DesortedCsrRow) {
  const OverlayNetwork net = test_net();
  LinkTable links = build_crescendo(net);
  std::uint32_t m = 0;
  while (links.degree(m) < 2) ++m;
  LinkTableMutator::reverse_row(links, m);

  const audit::StructureAuditor auditor(net, links);
  audit::AuditReport report;
  auditor.check_csr(report);
  ASSERT_FALSE(report.ok());
  for (const audit::Violation& v : report.violations) {
    EXPECT_EQ(v.check, "csr.row_sorted");
    EXPECT_EQ(v.node, m);
  }
}

TEST(Auditor, ReportToJsonSchema) {
  const OverlayNetwork net = test_net(128, 2, 9);
  LinkTable links = build_crescendo(net);
  links.set_neighbors(5, {});  // seed some violations
  const audit::AuditReport report =
      registry::audit_family("crescendo", net, links);
  ASSERT_FALSE(report.ok());

  const telemetry::JsonValue doc = report.to_json();
  ASSERT_TRUE(doc.is_object());
  EXPECT_FALSE(doc.get("ok")->as_bool());
  EXPECT_EQ(static_cast<std::size_t>(doc.get("violation_count")->as_int()),
            report.violations.size());
  ASSERT_TRUE(doc.get("checks")->is_object());
  EXPECT_EQ(doc.get("checks")->members().size(), report.checks.size());
  const auto& list = doc.get("violations")->items();
  ASSERT_EQ(list.size(), report.violations.size());
  for (const telemetry::JsonValue& v : list) {
    EXPECT_TRUE(v.get("check")->is_string());
    EXPECT_TRUE(v.get("node")->is_number() || v.get("node")->is_null());
    EXPECT_TRUE(v.get("level")->is_number());
    EXPECT_TRUE(v.get("detail")->is_string());
  }
  // A clean report round-trips too.
  const audit::AuditReport clean =
      registry::audit_family("crescendo", net, build_crescendo(net));
  EXPECT_TRUE(clean.to_json().get("ok")->as_bool());
}

TEST(Auditor, LivenessBatteryBlamesIsolatedSurvivors) {
  const OverlayNetwork net = test_net(64, 1, 5);
  const LinkTable links = build_chord(net);
  const audit::StructureAuditor auditor(net, links);

  // Fully live: both batteries run (one assertion per live node) and pass.
  audit::AuditReport clean;
  auditor.check_liveness(clean, FailureSet(net.size()), 4);
  EXPECT_TRUE(clean.ok()) << clean.summary();
  EXPECT_EQ(clean.checks.at("live.degree"), net.size());
  EXPECT_EQ(clean.checks.at("live.leafset"), net.size());

  // leaf_set == 0 disables the leafset battery entirely.
  audit::AuditReport no_leaf;
  auditor.check_liveness(no_leaf, FailureSet(net.size()), 0);
  EXPECT_EQ(no_leaf.checks.count("live.leafset"), 0u);

  // Kill every neighbor of node 0 plus its 4 ring successors: node 0 must
  // be blamed by both batteries (dead nodes are never blamed).
  FailureSet dead(net.size());
  for (const std::uint32_t v : links.neighbors(0)) dead.kill(v);
  for (std::uint32_t step = 1; step <= 4; ++step) {
    dead.kill(step % static_cast<std::uint32_t>(net.size()));
  }
  audit::AuditReport r;
  auditor.check_liveness(r, dead, 4);
  ASSERT_FALSE(r.ok());
  bool degree_blamed = false;
  bool leafset_blamed = false;
  for (const audit::Violation& v : r.violations) {
    EXPECT_FALSE(dead.dead(v.node)) << v.check;
    if (v.node == 0 && v.check == "live.degree") degree_blamed = true;
    if (v.node == 0 && v.check == "live.leafset") leafset_blamed = true;
  }
  EXPECT_TRUE(degree_blamed);
  EXPECT_TRUE(leafset_blamed);
  EXPECT_EQ(r.checks.at("live.degree"), net.size() - dead.dead_count());
}

TEST(Auditor, MetricsCountersRecordChecksAndViolations) {
  const OverlayNetwork net = test_net(128, 2, 13);
  LinkTable links = build_crescendo(net);
  links.set_neighbors(8, {});
  telemetry::MetricsRegistry registry;
  telemetry::MetricsRegistry* prev = telemetry::install_registry(&registry);
  const audit::AuditReport report =
      registry::audit_family("crescendo", net, links);
  telemetry::install_registry(prev);
  EXPECT_EQ(registry.counters().at("audit.checks").value(),
            report.total_checks());
  EXPECT_EQ(registry.counters().at("audit.violations").value(),
            report.violations.size());
}

}  // namespace
}  // namespace canon
