// Tests for partition balance (Section 4.3): random vs bisection vs
// hierarchical ID allocation.
#include <gtest/gtest.h>

#include <set>

#include "balance/id_allocator.h"
#include "common/rng.h"

namespace canon {
namespace {

std::vector<NodeId> grow(IdAllocator& alloc, std::size_t n,
                         const IdSpace& space, Rng& rng) {
  std::vector<NodeId> ids;
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId id = alloc.allocate(ids, {}, space, rng);
    ids.insert(std::lower_bound(ids.begin(), ids.end(), id), id);
  }
  return ids;
}

TEST(PartitionRatio, HandValues) {
  const IdSpace space(4);
  EXPECT_DOUBLE_EQ(partition_ratio({0, 8}, space), 1.0);
  EXPECT_DOUBLE_EQ(partition_ratio({0, 4}, space), 3.0);  // 4 vs 12
  EXPECT_THROW(partition_ratio({3}, space), std::invalid_argument);
}

TEST(RandomIdAllocator, ProducesUniqueIds) {
  Rng rng(801);
  RandomIdAllocator alloc;
  const auto ids = grow(alloc, 2000, IdSpace(24), rng);
  EXPECT_EQ(std::set<NodeId>(ids.begin(), ids.end()).size(), 2000u);
}

TEST(Balance, BisectionBeatsRandomByALot) {
  Rng rng(802);
  const IdSpace space(32);
  RandomIdAllocator random_alloc;
  BisectionIdAllocator bisect_alloc;
  const auto random_ids = grow(random_alloc, 4096, space, rng);
  const auto bisect_ids = grow(bisect_alloc, 4096, space, rng);
  const double random_ratio = partition_ratio(random_ids, space);
  const double bisect_ratio = partition_ratio(bisect_ids, space);
  // Random: Theta(log^2 n) ~ 100+; bisection: a small constant (the paper
  // quotes 4 w.h.p. for the full scheme of [11]; our simplified bucket
  // bisection lands at a constant 8-32).
  EXPECT_GT(random_ratio, 20.0);
  EXPECT_LE(bisect_ratio, 32.0);
}

TEST(Balance, BisectionRatioStaysBoundedAcrossScales) {
  Rng rng(803);
  const IdSpace space(32);
  for (const std::size_t n : {256u, 1024u, 4096u}) {
    BisectionIdAllocator alloc;
    const auto ids = grow(alloc, n, space, rng);
    // Constant across scales (random ID selection would grow as log^2 n).
    EXPECT_LE(partition_ratio(ids, space), 16.0 + 1e-9) << "n=" << n;
  }
}

TEST(Balance, HierarchicalBalancesEachDomain) {
  Rng rng(804);
  const IdSpace space(32);
  HierarchicalIdAllocator alloc;
  // Grow 8 domains round-robin; measure per-domain partition ratios.
  constexpr int kDomains = 8;
  std::vector<std::vector<NodeId>> domains(kDomains);
  std::vector<NodeId> all;
  for (int i = 0; i < 1024; ++i) {
    const int d = i % kDomains;
    const NodeId id = alloc.allocate(all, domains[d], space, rng);
    all.insert(std::lower_bound(all.begin(), all.end(), id), id);
    domains[d].push_back(id);
  }
  // Per-domain partitions must be far better balanced than random IDs
  // would leave them (Theta(log^2) ~ 50+ at 128 nodes per domain), and the
  // global population must not be pathologically unbalanced either.
  Rng check_rng(8040);
  RandomIdAllocator random_alloc;
  double random_worst = 0;
  for (int d = 0; d < kDomains; ++d) {
    const auto ids = grow(random_alloc, domains[d].size(), space, check_rng);
    random_worst = std::max(random_worst, partition_ratio(ids, space));
  }
  double hier_worst = 0;
  for (int d = 0; d < kDomains; ++d) {
    hier_worst = std::max(hier_worst, partition_ratio(domains[d], space));
  }
  EXPECT_LT(hier_worst, random_worst / 2);
  EXPECT_LT(partition_ratio(all, space), random_worst * 4);
}

TEST(Balance, HierarchicalBeatsPlainBisectionPerDomain) {
  Rng rng(805);
  const IdSpace space(32);
  BisectionIdAllocator plain;
  HierarchicalIdAllocator hier;
  constexpr int kDomains = 8;
  std::vector<std::vector<NodeId>> plain_domains(kDomains);
  std::vector<std::vector<NodeId>> hier_domains(kDomains);
  std::vector<NodeId> plain_all;
  std::vector<NodeId> hier_all;
  for (int i = 0; i < 1024; ++i) {
    const int d = i % kDomains;
    const NodeId a = plain.allocate(plain_all, plain_domains[d], space, rng);
    plain_all.insert(std::lower_bound(plain_all.begin(), plain_all.end(), a),
                     a);
    plain_domains[d].push_back(a);
    const NodeId b = hier.allocate(hier_all, hier_domains[d], space, rng);
    hier_all.insert(std::lower_bound(hier_all.begin(), hier_all.end(), b), b);
    hier_domains[d].push_back(b);
  }
  double plain_worst = 0;
  double hier_worst = 0;
  for (int d = 0; d < kDomains; ++d) {
    plain_worst = std::max(plain_worst,
                           partition_ratio(plain_domains[d], space));
    hier_worst = std::max(hier_worst, partition_ratio(hier_domains[d], space));
  }
  EXPECT_LT(hier_worst, plain_worst);
}

}  // namespace
}  // namespace canon
