// Tests for dynamic maintenance (Section 2.3): joins, leaves, the
// incremental-equals-from-scratch invariant, message costs and leaf sets.
#include <gtest/gtest.h>

#include <cmath>

#include "canon/crescendo.h"
#include "common/rng.h"
#include "maintenance/dynamic_crescendo.h"
#include "overlay/population.h"
#include "overlay/routing.h"

namespace canon {
namespace {

OverlayNode make_node(NodeId id, DomainPath path) {
  return OverlayNode{id, std::move(path), -1};
}

/// Asserts the dynamic structure's links equal a from-scratch Crescendo
/// build over the same population.
void expect_equals_scratch(const DynamicCrescendo& dynamic) {
  const OverlayNetwork& net = dynamic.network();
  const LinkTable scratch = build_crescendo(net);
  for (std::uint32_t m = 0; m < net.size(); ++m) {
    const auto want = scratch.neighbors(m);
    const auto it = dynamic.links_by_id().find(net.id(m));
    ASSERT_NE(it, dynamic.links_by_id().end());
    const auto& got = it->second;
    ASSERT_EQ(got.size(), want.size()) << "node " << net.id(m);
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i], net.id(want[i]));
    }
  }
}

TEST(DynamicCrescendo, JoinsMatchScratchConstruction) {
  Rng rng(701);
  DynamicCrescendo dyn(IdSpace(16));
  HierarchySpec hier;
  hier.levels = 3;
  hier.fanout = 3;
  const auto paths = generate_hierarchy(60, hier, rng);
  const auto ids = sample_unique_ids(60, IdSpace(16), rng);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    dyn.join(make_node(ids[i], paths[i]));
    if (i % 10 == 9) expect_equals_scratch(dyn);
  }
  expect_equals_scratch(dyn);
}

TEST(DynamicCrescendo, LeavesMatchScratchConstruction) {
  Rng rng(702);
  HierarchySpec hier;
  hier.levels = 3;
  hier.fanout = 3;
  const auto paths = generate_hierarchy(60, hier, rng);
  const auto ids = sample_unique_ids(60, IdSpace(16), rng);
  std::vector<OverlayNode> initial;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    initial.push_back(make_node(ids[i], paths[i]));
  }
  DynamicCrescendo dyn(IdSpace(16), initial);
  expect_equals_scratch(dyn);
  std::vector<NodeId> order(ids);
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.uniform(i)]);
  }
  for (std::size_t i = 0; i + 5 < order.size(); ++i) {
    dyn.leave(order[i]);
    if (i % 10 == 9) expect_equals_scratch(dyn);
  }
  expect_equals_scratch(dyn);
}

TEST(DynamicCrescendo, MixedChurnMatchesScratch) {
  Rng rng(703);
  HierarchySpec hier;
  hier.levels = 2;
  hier.fanout = 4;
  DynamicCrescendo dyn(IdSpace(20));
  std::vector<OverlayNode> alive;
  for (int round = 0; round < 120; ++round) {
    const bool join = alive.size() < 10 || rng.uniform(3) != 0;
    if (join) {
      const auto ids = sample_unique_ids(1, IdSpace(20), rng);
      if (dyn.links_by_id().contains(ids[0])) continue;
      const auto paths = generate_hierarchy(1, hier, rng);
      const OverlayNode n = make_node(ids[0], paths[0]);
      dyn.join(n);
      alive.push_back(n);
    } else {
      const std::size_t pick = rng.uniform(alive.size());
      dyn.leave(alive[pick].id);
      alive.erase(alive.begin() + static_cast<long>(pick));
    }
  }
  expect_equals_scratch(dyn);
  EXPECT_EQ(dyn.size(), alive.size());
}

TEST(DynamicCrescendo, RoutingWorksThroughoutChurn) {
  Rng rng(704);
  HierarchySpec hier;
  hier.levels = 3;
  hier.fanout = 3;
  DynamicCrescendo dyn(IdSpace(20));
  for (int round = 0; round < 80; ++round) {
    const auto ids = sample_unique_ids(1, IdSpace(20), rng);
    if (dyn.links_by_id().contains(ids[0])) continue;
    const auto paths = generate_hierarchy(1, hier, rng);
    dyn.join(make_node(ids[0], paths[0]));
    if (dyn.size() >= 2 && round % 10 == 0) {
      const LinkTable table = dyn.link_table();
      const RingRouter router(dyn.network(), table);
      for (int t = 0; t < 20; ++t) {
        const auto from =
            static_cast<std::uint32_t>(rng.uniform(dyn.size()));
        const NodeId key = dyn.network().space().wrap(rng());
        const Route r = router.route(from, key);
        EXPECT_TRUE(r.ok);
      }
    }
  }
}

TEST(DynamicCrescendo, JoinCostIsLogarithmic) {
  Rng rng(705);
  HierarchySpec hier;
  hier.levels = 3;
  hier.fanout = 4;
  DynamicCrescendo dyn(IdSpace(28));
  Summary messages;
  for (int i = 0; i < 400; ++i) {
    const auto ids = sample_unique_ids(1, IdSpace(28), rng);
    if (dyn.links_by_id().contains(ids[0])) continue;
    const auto paths = generate_hierarchy(1, hier, rng);
    const MaintenanceCost c = dyn.join(make_node(ids[0], paths[0]));
    if (dyn.size() > 100) messages.add(c.messages());
  }
  // O(log n) messages: for n in (100, 400], log2(n) in (6.6, 8.6]. Allow a
  // generous constant factor.
  EXPECT_LE(messages.mean(), 6 * std::log2(400.0));
}

TEST(DynamicCrescendo, DuplicateJoinAndUnknownLeaveThrow) {
  DynamicCrescendo dyn(IdSpace(8));
  dyn.join(make_node(5, {}));
  EXPECT_THROW(dyn.join(make_node(5, {})), std::invalid_argument);
  EXPECT_THROW(dyn.leave(99), std::invalid_argument);
}

TEST(DynamicCrescendo, LeafSetsFollowPerLevelRings) {
  Rng rng(706);
  HierarchySpec hier;
  hier.levels = 2;
  hier.fanout = 2;
  const auto paths = generate_hierarchy(40, hier, rng);
  const auto ids = sample_unique_ids(40, IdSpace(16), rng);
  std::vector<OverlayNode> initial;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    initial.push_back(make_node(ids[i], paths[i]));
  }
  const DynamicCrescendo dyn(IdSpace(16), initial);
  const OverlayNetwork& net = dyn.network();
  for (std::uint32_t m = 0; m < net.size(); m += 5) {
    for (int level = 0; level <= net.domains().node_depth(m); ++level) {
      const auto set = dyn.leaf_set(net.id(m), level, 3);
      const RingView ring =
          net.domain_ring(net.domains().domain_of(m, level));
      ASSERT_LE(set.size(), 3u);
      // The leaf set is the next successors of m on the level ring.
      NodeId cursor = net.id(m);
      for (const NodeId s : set) {
        const std::uint32_t expect =
            ring.first_at_distance(cursor, 1);
        EXPECT_EQ(s, net.id(expect));
        cursor = s;
      }
    }
  }
}

TEST(DynamicCrescendo, LeafSetsEnableSuccessorRepair) {
  // When a node dies, its predecessor's leaf set already contains the next
  // live successor at every level — the repair needs no lookup.
  Rng rng(707);
  HierarchySpec hier;
  hier.levels = 2;
  hier.fanout = 2;
  const auto paths = generate_hierarchy(30, hier, rng);
  const auto ids = sample_unique_ids(30, IdSpace(16), rng);
  std::vector<OverlayNode> initial;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    initial.push_back(make_node(ids[i], paths[i]));
  }
  DynamicCrescendo dyn(IdSpace(16), initial);
  const OverlayNetwork& before = dyn.network();
  const NodeId victim = before.id(7);
  const NodeId pred =
      before.id(before.ring().predecessor_or_self(
          before.space().advance(victim, before.space().mask())));
  const auto leaf_before = dyn.leaf_set(pred, 0, 3);
  ASSERT_GE(leaf_before.size(), 2u);
  ASSERT_EQ(leaf_before[0], victim);
  dyn.leave(victim);
  const auto leaf_after = dyn.leaf_set(pred, 0, 3);
  ASSERT_GE(leaf_after.size(), 1u);
  // The new first successor is the old second entry.
  EXPECT_EQ(leaf_after[0], leaf_before[1]);
}

}  // namespace
}  // namespace canon
