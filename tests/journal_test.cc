// Tests for the JSONL event journal: the envelope/sequence contract, the
// DynamicCrescendo and EventSimulator emitters, and the churn acceptance
// property — a journaled churn run replays to the same healthy verdict as
// a from-scratch audit.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "audit/auditor.h"
#include "overlay/family_registry.h"
#include "canon/crescendo.h"
#include "common/rng.h"
#include "hierarchy/generators.h"
#include "maintenance/dynamic_crescendo.h"
#include "overlay/event_sim.h"
#include "overlay/population.h"
#include "telemetry/journal.h"

namespace canon {
namespace {

using telemetry::EventJournal;
using telemetry::JsonValue;
using telemetry::read_journal;

TEST(Journal, RoundTripPreservesEventsAndSequence) {
  std::ostringstream os;
  EventJournal journal(os);
  EXPECT_EQ(journal.join(0xABCDu, {1, 2}, 3, 10), 0u);
  EXPECT_EQ(journal.leave(0xABCDu, 9), 1u);
  EXPECT_EQ(journal.repair("leave", 0xABCDu, 7), 2u);
  EXPECT_EQ(journal.lookup_failure(4, 0xFFu, 12), 3u);
  EXPECT_EQ(journal.audit_snapshot(9, 1000, 0), 4u);
  EXPECT_EQ(journal.events(), 5u);

  std::istringstream is(os.str());
  const std::vector<JsonValue> events = read_journal(is);
  ASSERT_EQ(events.size(), 5u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].get("seq")->as_int(), static_cast<std::int64_t>(i));
  }
  EXPECT_EQ(events[0].get("type")->as_string(), "join");
  EXPECT_EQ(events[0].get("id")->as_int(), 0xABCD);
  ASSERT_TRUE(events[0].get("path")->is_array());
  EXPECT_EQ(events[0].get("path")->items().size(), 2u);
  EXPECT_EQ(events[0].get("lookup_hops")->as_int(), 3);
  EXPECT_EQ(events[0].get("size")->as_int(), 10);
  EXPECT_EQ(events[1].get("type")->as_string(), "leave");
  EXPECT_EQ(events[2].get("cause")->as_string(), "leave");
  EXPECT_EQ(events[3].get("type")->as_string(), "lookup_failure");
  EXPECT_EQ(events[4].get("violations")->as_int(), 0);
}

TEST(Journal, CustomRecordEmbedsEnvelopeFirst) {
  std::ostringstream os;
  EventJournal journal(os);
  JsonValue fields = JsonValue::object();
  fields.set("answer", JsonValue(42));
  journal.record("custom", std::move(fields));
  const std::string line = os.str();
  EXPECT_EQ(line.find("{\"seq\":0,\"type\":\"custom\""), 0u) << line;
  EXPECT_THROW(journal.record("bad", JsonValue(1)), std::logic_error);
}

TEST(Journal, ReaderRejectsSequenceGapsAndGarbage) {
  {
    std::istringstream is(
        "{\"seq\":0,\"type\":\"join\"}\n{\"seq\":2,\"type\":\"leave\"}\n");
    EXPECT_THROW(read_journal(is), std::runtime_error);
  }
  {
    std::istringstream is("{\"seq\":0,\"type\":\"join\"}\nnot json\n");
    EXPECT_THROW(read_journal(is), std::runtime_error);
  }
  {
    std::istringstream is("{\"type\":\"join\"}\n");
    EXPECT_THROW(read_journal(is), std::runtime_error);
  }
  {  // blank lines are tolerated, order still enforced
    std::istringstream is(
        "{\"seq\":0,\"type\":\"a\"}\n\n{\"seq\":1,\"type\":\"b\"}\n");
    EXPECT_EQ(read_journal(is).size(), 2u);
  }
}

TEST(Journal, MissingFileThrows) {
  EXPECT_THROW(telemetry::read_journal_file("/nonexistent/journal.jsonl"),
               std::runtime_error);
}

TEST(Journal, DynamicCrescendoEmitsJoinLeaveRepair) {
  std::ostringstream os;
  EventJournal journal(os);
  const IdSpace space(32);
  DynamicCrescendo dyn(space);
  dyn.set_journal(&journal);
  dyn.join(OverlayNode{100, DomainPath({0}), -1});
  dyn.join(OverlayNode{200, DomainPath({1}), -1});
  dyn.leave(100);

  std::istringstream is(os.str());
  const std::vector<JsonValue> events = read_journal(is);
  ASSERT_EQ(events.size(), 6u);  // join+repair, join+repair, leave+repair
  EXPECT_EQ(events[0].get("type")->as_string(), "join");
  EXPECT_EQ(events[0].get("size")->as_int(), 1);
  EXPECT_EQ(events[1].get("type")->as_string(), "repair");
  EXPECT_EQ(events[1].get("cause")->as_string(), "join");
  EXPECT_EQ(events[2].get("type")->as_string(), "join");
  EXPECT_EQ(events[2].get("id")->as_int(), 200);
  EXPECT_EQ(events[2].get("path")->items()[0].as_int(), 1);
  EXPECT_EQ(events[4].get("type")->as_string(), "leave");
  EXPECT_EQ(events[4].get("id")->as_int(), 100);
  EXPECT_EQ(events[4].get("size")->as_int(), 1);
  EXPECT_EQ(events[5].get("cause")->as_string(), "leave");
}

TEST(Journal, EventSimEmitsLookupFailures) {
  // A network with a single stripped node cannot complete a lookup for a
  // key owned elsewhere... every node keeps only itself, so any lookup for
  // a key another node owns terminates unsuccessfully at the origin.
  Rng rng(3);
  const IdSpace space(16);
  std::vector<OverlayNode> nodes;
  nodes.push_back({100, {}, -1});
  nodes.push_back({200, {}, -1});
  const OverlayNetwork net(space, std::move(nodes));
  LinkTable links(2);
  links.finalize();  // no links at all
  EventSimulator sim(net, links);
  std::ostringstream os;
  EventJournal journal(os);
  sim.set_journal(&journal);
  sim.submit(0, 201, 0.0);  // responsible node is index 1; unreachable
  sim.run();
  ASSERT_FALSE(sim.lookups()[0].ok);
  std::istringstream is(os.str());
  const std::vector<JsonValue> events = read_journal(is);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].get("type")->as_string(), "lookup_failure");
  EXPECT_EQ(events[0].get("from")->as_int(), 0);
  EXPECT_EQ(events[0].get("key")->as_int(), 201);
}

TEST(Journal, LoadSnapshotEmitsTopNodes) {
  std::ostringstream os;
  EventJournal journal(os);
  const std::vector<std::pair<std::uint32_t, std::uint64_t>> top{
      {4, 17}, {0, 9}};
  EXPECT_EQ(journal.load_snapshot(125.0, top), 0u);

  std::istringstream is(os.str());
  const std::vector<JsonValue> events = telemetry::read_journal(is);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].get("type")->as_string(), "load_snapshot");
  EXPECT_DOUBLE_EQ(events[0].get("t_ms")->as_double(), 125.0);
  const JsonValue* nodes = events[0].get("nodes");
  ASSERT_TRUE(nodes && nodes->is_array());
  ASSERT_EQ(nodes->size(), 2u);
  EXPECT_EQ(nodes->items()[0].get("node")->as_int(), 4);
  EXPECT_EQ(nodes->items()[0].get("load")->as_int(), 17);
  EXPECT_EQ(nodes->items()[1].get("node")->as_int(), 0);
}

TEST(Journal, EventSimLoadSnapshotsAreDeterministic) {
  // Two identical simulator runs must journal byte-identical load
  // snapshots: windows land at fixed multiples of the snapshot window and
  // the serial simulator's load tallies are a pure function of the seed.
  const auto run_once = [](std::string* out) {
    Rng rng(17);
    PopulationSpec spec;
    spec.node_count = 128;
    spec.hierarchy.levels = 2;
    spec.hierarchy.fanout = 4;
    const OverlayNetwork net = make_population(spec, rng);
    const LinkTable links = build_crescendo(net);
    EventSimulator sim(net, links);
    std::ostringstream os;
    EventJournal journal(os);
    sim.set_journal(&journal);
    sim.set_load_snapshots(/*top_k=*/3, /*window_ms=*/10.0);
    Rng qrng(5);
    for (int i = 0; i < 400; ++i) {
      sim.submit(static_cast<std::uint32_t>(qrng.uniform(net.size())),
                 net.space().wrap(qrng()), 0.1 * i);
    }
    sim.run();
    *out = os.str();
  };
  std::string first, second;
  run_once(&first);
  run_once(&second);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);

  // Snapshots land on whole windows, each carrying <= top_k nodes sorted
  // by load descending, plus the final drain snapshot.
  std::istringstream is(first);
  int snapshots = 0;
  for (const JsonValue& ev : telemetry::read_journal(is)) {
    if (ev.get("type")->as_string() != "load_snapshot") continue;
    ++snapshots;
    const JsonValue* nodes = ev.get("nodes");
    ASSERT_TRUE(nodes && nodes->is_array());
    EXPECT_LE(nodes->size(), 3u);
    std::int64_t prev = -1;
    for (const JsonValue& n : nodes->items()) {
      const std::int64_t load = n.get("load")->as_int();
      if (prev >= 0) {
        EXPECT_LE(load, prev);
      }
      prev = load;
    }
  }
  EXPECT_GE(snapshots, 4);
}

// Acceptance: a >= 500-op churn run journals cleanly; the final snapshot
// is violation-free; and rebuilding the member set from the journal yields
// exactly the maintained structure (same verdict, same links).
TEST(Journal, ChurnRunReplaysToIdenticalVerdict) {
  Rng rng(99);
  const IdSpace space(32);
  HierarchySpec hier;
  hier.levels = 3;
  hier.fanout = 4;
  DynamicCrescendo dyn(space);
  std::ostringstream os;
  EventJournal journal(os);
  dyn.set_journal(&journal);

  std::uint64_t ops = 0;
  while (dyn.size() < 120) {  // grow: 120 journaled joins
    const auto ids = sample_unique_ids(1, space, rng);
    if (dyn.links_by_id().contains(ids[0])) continue;
    dyn.join(OverlayNode{ids[0], generate_hierarchy(1, hier, rng)[0], -1});
    ++ops;
  }
  for (int i = 0; i < 200; ++i) {  // churn: 200 leave/join pairs
    const auto victim =
        static_cast<std::uint32_t>(rng.uniform(dyn.network().size()));
    dyn.leave(dyn.network().id(victim));
    const auto ids = sample_unique_ids(1, space, rng);
    if (dyn.links_by_id().contains(ids[0])) {
      --i;
      continue;
    }
    dyn.join(OverlayNode{ids[0], generate_hierarchy(1, hier, rng)[0], -1});
    ops += 2;
  }
  ASSERT_GE(ops, 500u);

  // Final snapshot from the live (incrementally maintained) structure.
  const LinkTable live = dyn.link_table();
  const audit::AuditReport live_report =
      registry::audit_family("crescendo", dyn.network(), live);
  journal.audit_snapshot(dyn.size(), live_report.total_checks(),
                         live_report.violations.size());
  EXPECT_TRUE(live_report.ok()) << live_report.summary();

  // Replay: reconstruct the member set from the journal alone.
  std::istringstream is(os.str());
  const std::vector<JsonValue> events = read_journal(is);
  std::map<NodeId, DomainPath> members;
  std::uint64_t final_snapshot_violations = 1;
  for (const JsonValue& ev : events) {
    const std::string& type = ev.get("type")->as_string();
    if (type == "join") {
      std::vector<std::uint16_t> branches;
      for (const JsonValue& b : ev.get("path")->items()) {
        branches.push_back(static_cast<std::uint16_t>(b.as_int()));
      }
      members[static_cast<NodeId>(ev.get("id")->as_int())] =
          DomainPath(std::move(branches));
    } else if (type == "leave") {
      members.erase(static_cast<NodeId>(ev.get("id")->as_int()));
    } else if (type == "audit_snapshot") {
      final_snapshot_violations =
          static_cast<std::uint64_t>(ev.get("violations")->as_int());
    }
  }
  EXPECT_EQ(final_snapshot_violations, 0u);
  ASSERT_EQ(members.size(), dyn.size());

  std::vector<OverlayNode> rebuilt;
  for (const auto& [id, path] : members) {
    rebuilt.push_back(OverlayNode{id, path, -1});
  }
  const OverlayNetwork net(space, std::move(rebuilt));
  const LinkTable scratch = build_crescendo(net);
  const audit::AuditReport replay_report =
      registry::audit_family("crescendo", net, scratch);
  EXPECT_EQ(replay_report.ok(), live_report.ok());

  // Verdict identity is not just boolean: the reconstructed from-scratch
  // structure must be exactly the maintained one (Section 2.3's claim).
  ASSERT_EQ(net.size(), dyn.network().size());
  for (std::uint32_t m = 0; m < net.size(); ++m) {
    ASSERT_EQ(net.id(m), dyn.network().id(m));
    const auto a = scratch.neighbors(m);
    const auto b = live.neighbors(m);
    ASSERT_TRUE(a.size() == b.size() &&
                std::equal(a.begin(), a.end(), b.begin()))
        << "links diverge at node " << m;
  }
}

}  // namespace
}  // namespace canon
