// Mega-scale regression tests: the streamed construction path, the
// compact-id hot paths, and the dense-bitmap ID sampler must all be
// byte-identical to their plain counterparts — at sizes large enough
// (>= 2^18 nodes in optimized builds) to exercise the shard machinery for
// real, not just one shard.
//
// Sizes are NDEBUG-gated: the Debug/ASan/TSan CI jobs run the same
// assertions at 2^14 so the suite stays fast where every container access
// is checked; RelWithDebInfo and Release run the full 2^18.
#include <gtest/gtest.h>

#include <unordered_set>
#include <vector>

#include "canon/crescendo.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "overlay/population.h"
#include "overlay/query_engine.h"
#include "overlay/routing.h"

namespace canon {
namespace {

#ifdef NDEBUG
constexpr std::size_t kScaleNodes = std::size_t{1} << 18;
#else
constexpr std::size_t kScaleNodes = std::size_t{1} << 14;
#endif

/// Restores the default thread count even if an assertion bails out early.
struct ThreadGuard {
  ~ThreadGuard() { set_parallel_threads(0); }
};

OverlayNetwork scale_population(std::size_t n) {
  Rng rng(42);
  PopulationSpec spec;
  spec.node_count = n;
  spec.hierarchy.levels = 3;
  spec.hierarchy.fanout = 10;
  return make_population(spec, rng);
}

TEST(Scale, StreamedBuildEqualsPlainBuild) {
  const auto net = scale_population(kScaleNodes);
  const LinkTable plain = build_crescendo(net);
  // Exercise shard boundaries: a shard size that divides the population
  // unevenly and a tiny one that forces many shards.
  for (const std::size_t shard_nodes : {kStreamShardNodes, std::size_t{777}}) {
    const LinkTable streamed = build_crescendo_streamed(net, shard_nodes);
    EXPECT_TRUE(streamed == plain) << "shard_nodes=" << shard_nodes;
  }
}

TEST(Scale, StreamedBuildIsThreadInvariant) {
  ThreadGuard guard;
  const auto net = scale_population(kScaleNodes);
  set_parallel_threads(1);
  const LinkTable serial = build_crescendo_streamed(net);
  set_parallel_threads(4);
  const LinkTable parallel = build_crescendo_streamed(net);
  EXPECT_TRUE(serial == parallel);
}

TEST(Scale, ConstructionAndQueriesAreThreadInvariant) {
  ThreadGuard guard;
  // The full mega-scale pipeline (population -> streamed build -> batch
  // lookups) must produce byte-identical figures at every thread count.
  auto run_once = [] {
    const auto net = scale_population(kScaleNodes);
    const LinkTable links = build_crescendo_streamed(net);
    const RingRouter router(net, links);
    QueryEngine engine(net);
    const auto queries = uniform_workload(net, 20000, Rng(7));
    return engine.run(queries, router);
  };
  set_parallel_threads(1);
  const QueryStats serial = run_once();
  set_parallel_threads(4);
  const QueryStats parallel = run_once();
  EXPECT_EQ(serial.queries, parallel.queries);
  EXPECT_EQ(serial.failures, parallel.failures);
  EXPECT_EQ(serial.total_hops, parallel.total_hops);
  EXPECT_EQ(serial.hops.count(), parallel.hops.count());
  EXPECT_EQ(serial.hops.mean(), parallel.hops.mean());
  EXPECT_EQ(serial.failures, 0u);
}

TEST(Scale, BitmapSamplerMatchesHashSetSampler) {
  // 2^18 ids in a 24-bit space lands in the dense-bitmap branch; the same
  // seed in a 64-bit space takes the hash-set branch. Both must accept
  // the first occurrence of every draw, so the 24-bit sequence is exactly
  // the 64-bit sequence wrapped — checked against a scalar reference.
  const std::size_t count = kScaleNodes;
  const IdSpace small(24);
  Rng a(123);
  const std::vector<NodeId> sampled = sample_unique_ids(count, small, a);
  ASSERT_EQ(sampled.size(), count);

  Rng b(123);
  std::vector<NodeId> reference;
  reference.reserve(count);
  std::unordered_set<NodeId> seen;
  while (reference.size() < count) {
    const NodeId id = small.wrap(b());
    if (seen.insert(id).second) reference.push_back(id);
  }
  EXPECT_EQ(sampled, reference);
}

TEST(Scale, BitmapSamplerIdsAreUniqueAndInRange) {
  const IdSpace space(20);  // 2^20 ids, sample fills half the space
  Rng rng(99);
  const std::vector<NodeId> ids =
      sample_unique_ids(std::size_t{1} << 19, space, rng);
  std::unordered_set<NodeId> uniq(ids.begin(), ids.end());
  EXPECT_EQ(uniq.size(), ids.size());
  for (const NodeId id : ids) EXPECT_EQ(id, space.wrap(id));
}

}  // namespace
}  // namespace canon
