// The batch QueryEngine's contracts (overlay/query_engine.h):
//
// * thread-count invariance — workload generation and batch results
//   (QueryStats AND per-query terminals) are bit-identical at 1, 2 and 7
//   threads for every router family;
// * hot-path equivalence — route_into matches route() hop-for-hop and
//   reuses the caller's capacity; probe agrees with full routing on
//   terminal/hops/ok;
// * telemetry — counters flush aggregates only, after the merge barrier;
//   attaching a sink serializes the batch and replays faithful traces.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "canon/cancan.h"
#include "canon/crescendo.h"
#include "canon/kandy.h"
#include "canon/proximity.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "overlay/population.h"
#include "overlay/query_engine.h"
#include "overlay/routing.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace canon {
namespace {

constexpr int kThreadCounts[] = {1, 2, 7};

/// Restores the default thread count even if an assertion bails out early.
struct ThreadGuard {
  ~ThreadGuard() { set_parallel_threads(0); }
};

OverlayNetwork make_net(std::size_t n = 768, int levels = 3) {
  Rng rng(99);
  PopulationSpec spec;
  spec.node_count = n;
  spec.hierarchy.levels = levels;
  spec.hierarchy.fanout = 10;
  return make_population(spec, rng);
}

/// Deterministic synthetic per-hop cost (no physical topology needed).
HopCost synthetic_cost() {
  return [](std::uint32_t a, std::uint32_t b) {
    return static_cast<double>((a * 31 + b * 17) % 97 + 1);
  };
}

/// Bit-exact equality of every QueryStats field, including the float
/// moments (the determinism contract is byte-identity, not closeness).
void expect_stats_identical(const QueryStats& a, const QueryStats& b) {
  EXPECT_EQ(a.queries, b.queries);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.total_hops, b.total_hops);
  EXPECT_EQ(a.hops_by_level, b.hops_by_level);
  EXPECT_EQ(a.hops.count(), b.hops.count());
  EXPECT_EQ(a.hops.sum(), b.hops.sum());
  EXPECT_EQ(a.cost.count(), b.cost.count());
  EXPECT_EQ(a.cost.sum(), b.cost.sum());
  if (a.hops.count() > 0 && b.hops.count() > 0) {
    EXPECT_EQ(a.hops.mean(), b.hops.mean());
    EXPECT_EQ(a.hops.min(), b.hops.min());
    EXPECT_EQ(a.hops.max(), b.hops.max());
    EXPECT_EQ(a.hops.variance(), b.hops.variance());
  }
  if (a.cost.count() > 0 && b.cost.count() > 0) {
    EXPECT_EQ(a.cost.mean(), b.cost.mean());
    EXPECT_EQ(a.cost.variance(), b.cost.variance());
  }
}

/// Runs `fn()` (returning {stats, per_query}) at every thread count and
/// asserts all results are identical to the serial ones.
template <typename RunFn>
void expect_thread_invariant(RunFn&& fn) {
  ThreadGuard guard;
  set_parallel_threads(1);
  std::vector<RouteProbe> base_pq;
  const QueryStats base = fn(&base_pq);
  EXPECT_GT(base.queries, 0u);
  for (const int threads : kThreadCounts) {
    set_parallel_threads(threads);
    std::vector<RouteProbe> pq;
    const QueryStats got = fn(&pq);
    expect_stats_identical(base, got);
    EXPECT_EQ(base_pq, pq) << "per-query results differ at threads="
                           << threads;
  }
}

TEST(Workload, GenerationIsThreadInvariant) {
  ThreadGuard guard;
  const auto net = make_net(512);
  set_parallel_threads(1);
  const auto serial = uniform_workload(net, 2000, Rng(7));
  for (const int threads : kThreadCounts) {
    set_parallel_threads(threads);
    EXPECT_EQ(serial, uniform_workload(net, 2000, Rng(7)));
  }
  // Each query comes from its own forked stream: prefix-stable under
  // workload growth.
  set_parallel_threads(0);
  const auto longer = uniform_workload(net, 3000, Rng(7));
  EXPECT_TRUE(std::equal(serial.begin(), serial.end(), longer.begin()));
}

TEST(QueryEngine, RingRouterIsThreadInvariant) {
  const auto net = make_net();
  const auto links = build_crescendo(net);
  const RingRouter router(net, links);
  QueryEngine engine(net);
  engine.set_level_tracking(true);
  const auto queries = uniform_workload(net, 3000, Rng(1));
  expect_thread_invariant([&](std::vector<RouteProbe>* pq) {
    return engine.run(queries, router, pq);
  });
}

TEST(QueryEngine, RingLookaheadIsThreadInvariant) {
  const auto net = make_net();
  const auto links = build_crescendo(net);
  const RingRouter router(net, links);
  const QueryEngine engine(net);
  const auto queries = uniform_workload(net, 2000, Rng(2));
  expect_thread_invariant([&](std::vector<RouteProbe>* pq) {
    return engine.run_lookahead(queries, router, pq);
  });
}

TEST(QueryEngine, XorRouterIsThreadInvariant) {
  const auto net = make_net();
  Rng brng(3);
  const auto links = build_kandy(net, BucketChoice::kClosest, brng);
  const XorRouter router(net, links);
  const QueryEngine engine(net);
  const auto queries = uniform_workload(net, 2000, Rng(3));
  expect_thread_invariant([&](std::vector<RouteProbe>* pq) {
    return engine.run(queries, router, pq);
  });
}

TEST(QueryEngine, GroupRouterWithCostIsThreadInvariant) {
  const auto net = make_net();
  const GroupedOverlay groups(net, 16);
  const HopCost cost = synthetic_cost();
  Rng brng(4);
  const auto links =
      build_chord_prox(net, groups, cost, ProximityConfig{}, brng);
  const GroupRouter router(net, groups, links);
  QueryEngine engine(net);
  engine.set_cost(cost);  // float accumulation order must still be fixed
  const auto queries = uniform_workload(net, 2000, Rng(4));
  expect_thread_invariant([&](std::vector<RouteProbe>* pq) {
    return engine.run(queries, router, pq);
  });
}

TEST(QueryEngine, GenericRouteOnlyRouterIsThreadInvariant) {
  // CanCanRouter exposes only route(); the generic run_batch entry point
  // (full mode, no probe) must still be deterministic — and its atomic
  // stuck/fallback diagnostics race-free — under fan-out.
  const auto net = make_net();
  const CanCanNetwork cancan(net);
  const CanCanRouter router(cancan);
  const QueryEngine engine(net);
  const auto queries = uniform_workload(net, 1500, Rng(5));
  expect_thread_invariant([&](std::vector<RouteProbe>* pq) {
    return engine.run_batch(
        queries,
        [&router](std::uint32_t from, NodeId key, Route& out) {
          out = router.route(from, key);
        },
        nullptr, pq);
  });
}

TEST(RouteInto, MatchesRouteHopForHopAndReusesCapacity) {
  const auto net = make_net();
  const auto links = build_crescendo(net);
  const RingRouter router(net, links);
  const auto queries = uniform_workload(net, 500, Rng(6));

  Route scratch;
  for (const Query& q : queries) {
    const Route fresh = router.route(q.from, q.key);
    router.route_into(q.from, q.key, scratch);
    EXPECT_EQ(fresh.path, scratch.path);
    EXPECT_EQ(fresh.ok, scratch.ok);

    Route fresh_la = router.route_lookahead(q.from, q.key);
    router.route_lookahead_into(q.from, q.key, scratch);
    EXPECT_EQ(fresh_la.path, scratch.path);
    EXPECT_EQ(fresh_la.ok, scratch.ok);
  }

  // After one pass the buffer has seen the workload's longest path; a
  // second pass must never reallocate.
  for (const Query& q : queries) router.route_into(q.from, q.key, scratch);
  const std::size_t settled = scratch.path.capacity();
  for (const Query& q : queries) {
    router.route_into(q.from, q.key, scratch);
    EXPECT_EQ(scratch.path.capacity(), settled);
  }
}

TEST(Probe, AgreesWithFullRoutingOn1kQueries) {
  const auto net = make_net(1024);
  const auto crescendo = build_crescendo(net);
  const RingRouter ring(net, crescendo);
  Rng brng(8);
  const auto kandy = build_kandy(net, BucketChoice::kClosest, brng);
  const XorRouter xr(net, kandy);
  const GroupedOverlay groups(net, 16);
  Rng prng(9);
  const auto prox =
      build_chord_prox(net, groups, synthetic_cost(), ProximityConfig{}, prng);
  const GroupRouter group(net, groups, prox);

  const auto queries = uniform_workload(net, 1000, Rng(8));
  for (const Query& q : queries) {
    const Route r1 = ring.route(q.from, q.key);
    EXPECT_EQ(ring.probe(q.from, q.key),
              (RouteProbe{r1.terminal(), r1.hops(), r1.ok}));
    const Route r2 = ring.route_lookahead(q.from, q.key);
    EXPECT_EQ(ring.probe_lookahead(q.from, q.key),
              (RouteProbe{r2.terminal(), r2.hops(), r2.ok}));
    const Route r3 = xr.route(q.from, q.key);
    EXPECT_EQ(xr.probe(q.from, q.key),
              (RouteProbe{r3.terminal(), r3.hops(), r3.ok}));
    const Route r4 = group.route(q.from, q.key);
    EXPECT_EQ(group.probe(q.from, q.key),
              (RouteProbe{r4.terminal(), r4.hops(), r4.ok}));
  }
}

TEST(QueryEngine, ProbeModeMatchesFullModeStats) {
  const auto net = make_net();
  const auto links = build_crescendo(net);
  const RingRouter router(net, links);
  const auto queries = uniform_workload(net, 2000, Rng(10));

  const QueryEngine probe_engine(net);  // nothing needs paths: probe mode
  std::vector<RouteProbe> probe_pq;
  const QueryStats probed = probe_engine.run(queries, router, &probe_pq);

  QueryEngine full_engine(net);
  full_engine.set_level_tracking(true);  // forces route_into
  std::vector<RouteProbe> full_pq;
  const QueryStats full = full_engine.run(queries, router, &full_pq);

  EXPECT_EQ(probe_pq, full_pq);
  EXPECT_EQ(probed.total_hops, full.total_hops);
  EXPECT_EQ(probed.failures, full.failures);
  EXPECT_EQ(probed.hops.count(), full.hops.count());
  EXPECT_EQ(probed.hops.sum(), full.hops.sum());
  // Level tallies exist only in full mode, and account for every hop.
  EXPECT_TRUE(probed.hops_by_level.empty());
  std::uint64_t level_sum = 0;
  for (const std::uint64_t c : full.hops_by_level) level_sum += c;
  EXPECT_EQ(level_sum, full.total_hops);
}

TEST(QueryEngine, CountersFlushAggregatesOnly) {
  const auto net = make_net(512);
  const auto links = build_crescendo(net);
  const RingRouter router(net, links);

  telemetry::MetricsRegistry registry;
  telemetry::MetricsRegistry* prev = telemetry::install_registry(&registry);
  const QueryEngine engine(net);  // resolves counters while installed
  telemetry::install_registry(prev);

  const auto queries = uniform_workload(net, 1000, Rng(11));
  prev = telemetry::install_registry(&registry);
  const QueryStats stats = engine.run(queries, router);
  telemetry::install_registry(prev);

  EXPECT_EQ(registry.counters().at("query_engine.batches").value(), 1u);
  EXPECT_EQ(registry.counters().at("query_engine.queries").value(),
            stats.queries);
  EXPECT_EQ(registry.counters().at("query_engine.hops").value(),
            stats.total_hops);
  EXPECT_EQ(registry.counters().at("query_engine.failures").value(),
            stats.failures);
  // The hot paths never bump the router's own counters.
  EXPECT_EQ(registry.counters().count("ring_router.routes"), 0u);
}

TEST(QueryEngine, SinkModeReplaysFaithfulTracesInWorkloadOrder) {
  ThreadGuard guard;
  set_parallel_threads(4);  // sink mode must serialize regardless
  const auto net = make_net(512);
  const auto links = build_crescendo(net);
  const RingRouter router(net, links);
  const auto queries = uniform_workload(net, 200, Rng(12));

  QueryEngine engine(net);
  telemetry::RecordingTraceSink sink;
  engine.set_trace(&sink);
  const QueryStats stats = engine.run(queries, router);
  EXPECT_EQ(stats.queries, queries.size());
  ASSERT_EQ(sink.lookups().size(), queries.size());

  for (std::size_t i = 0; i < queries.size(); ++i) {
    const auto& trace = sink.lookups()[i];
    EXPECT_EQ(trace.from, queries[i].from);
    EXPECT_EQ(trace.key, queries[i].key);
    const Route r = router.route(queries[i].from, queries[i].key);
    EXPECT_TRUE(trace.done);
    EXPECT_EQ(trace.ok, r.ok);
    EXPECT_EQ(trace.terminal, r.terminal());
    ASSERT_EQ(trace.hops.size(), static_cast<std::size_t>(r.hops()));
    for (std::size_t j = 0; j < trace.hops.size(); ++j) {
      EXPECT_EQ(trace.hops[j].from, r.path[j]);
      EXPECT_EQ(trace.hops[j].to, r.path[j + 1]);
      EXPECT_EQ(trace.hops[j].hop_index, static_cast<int>(j));
      EXPECT_EQ(trace.hops[j].level,
                net.lca_level(r.path[j], r.path[j + 1]));
    }
  }
}

TEST(QueryStats, MergeHandlesEmptyAndGrowsLevels) {
  QueryStats a;
  QueryStats b;
  a.merge(b);  // empty ⊕ empty
  EXPECT_EQ(a.queries, 0u);
  EXPECT_EQ(a.hops.count(), 0u);
  EXPECT_TRUE(a.hops_by_level.empty());

  b.queries = 3;
  b.failures = 1;
  b.total_hops = 10;
  b.hops.add(4);
  b.hops.add(6);
  b.hops_by_level = {2, 8};
  a.merge(b);  // empty ⊕ full
  EXPECT_EQ(a.queries, 3u);
  EXPECT_EQ(a.ok(), 2u);
  EXPECT_EQ(a.hops.mean(), 5.0);
  EXPECT_EQ(a.hops_by_level, (std::vector<std::uint64_t>{2, 8}));

  QueryStats c;
  c.queries = 1;
  c.total_hops = 7;
  c.hops.add(7);
  c.hops_by_level = {1, 2, 4};  // deeper than a's
  a.merge(c);
  EXPECT_EQ(a.queries, 4u);
  EXPECT_EQ(a.total_hops, 17u);
  EXPECT_EQ(a.hops_by_level, (std::vector<std::uint64_t>{3, 10, 4}));
  EXPECT_EQ(a.hops.max(), 7.0);
}

}  // namespace
}  // namespace canon
