// Serial/parallel equivalence of the whole construction pipeline.
//
// The contract (common/parallel.h, docs/PERFORMANCE.md): shard boundaries
// depend only on (n, grain), randomized builders draw from per-node
// Rng::fork streams, and every shard writes only its own rows — so a build
// at --threads=1 (the exact pre-parallel serial code path) and a build at
// any other thread count are byte-identical. These tests pin that promise
// for every link-builder family across 3 seeds x 2 hierarchy shapes, for
// the LatencyMatrix, and for parallel_for itself (coverage, empty ranges,
// grain > n, exception propagation).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "canon/cacophony.h"
#include "canon/cancan.h"
#include "canon/crescendo.h"
#include "canon/kandy.h"
#include "canon/mixed.h"
#include "canon/nondet_crescendo.h"
#include "canon/proximity.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "dht/can.h"
#include "dht/chord.h"
#include "dht/kademlia.h"
#include "dht/nondet_chord.h"
#include "dht/symphony.h"
#include "overlay/link_table.h"
#include "overlay/population.h"
#include "topology/latency_matrix.h"
#include "topology/transit_stub.h"

namespace canon {
namespace {

constexpr std::uint64_t kSeeds[] = {1, 42, 1234};
constexpr int kParallelThreads = 4;

/// Restores the default thread count even if an assertion bails out early.
struct ThreadGuard {
  ~ThreadGuard() { set_parallel_threads(0); }
};

struct Shape {
  const char* name;
  int levels;
  int fanout;
};

constexpr Shape kShapes[] = {
    {"flat", 1, 10},
    {"deep", 4, 10},
};

OverlayNetwork make_net(const Shape& shape, std::uint64_t seed) {
  Rng rng(seed);
  PopulationSpec spec;
  spec.node_count = 512;
  spec.hierarchy.levels = shape.levels;
  spec.hierarchy.fanout = shape.fanout;
  return make_population(spec, rng);
}

/// One named builder; receives the network and the run seed so randomized
/// families can construct an identical base Rng for each invocation.
struct Family {
  const char* name;
  std::function<LinkTable(const OverlayNetwork&, std::uint64_t)> build;
};

const std::vector<Family>& families() {
  static const std::vector<Family> fams = {
      {"chord",
       [](const OverlayNetwork& net, std::uint64_t) {
         return build_chord(net);
       }},
      {"crescendo",
       [](const OverlayNetwork& net, std::uint64_t) {
         return build_crescendo(net);
       }},
      {"clique_crescendo",
       [](const OverlayNetwork& net, std::uint64_t) {
         return build_clique_crescendo(net);
       }},
      {"can",
       [](const OverlayNetwork& net, std::uint64_t) {
         return build_can(net).links;
       }},
      {"cancan",
       [](const OverlayNetwork& net, std::uint64_t) {
         return CanCanNetwork(net).links();
       }},
      {"symphony",
       [](const OverlayNetwork& net, std::uint64_t seed) {
         Rng rng(seed * 2 + 1);
         return build_symphony(net, rng);
       }},
      {"nondet_chord",
       [](const OverlayNetwork& net, std::uint64_t seed) {
         Rng rng(seed * 2 + 1);
         return build_nondet_chord(net, rng);
       }},
      {"kademlia_closest",
       [](const OverlayNetwork& net, std::uint64_t seed) {
         Rng rng(seed * 2 + 1);
         return build_kademlia(net, BucketChoice::kClosest, rng);
       }},
      {"kademlia_random_r2",
       [](const OverlayNetwork& net, std::uint64_t seed) {
         Rng rng(seed * 2 + 1);
         return build_kademlia(net, BucketChoice::kRandom, rng, 2);
       }},
      {"cacophony",
       [](const OverlayNetwork& net, std::uint64_t seed) {
         Rng rng(seed * 2 + 1);
         return build_cacophony(net, rng);
       }},
      {"kandy_closest",
       [](const OverlayNetwork& net, std::uint64_t seed) {
         Rng rng(seed * 2 + 1);
         return build_kandy(net, BucketChoice::kClosest, rng);
       }},
      {"kandy_random",
       [](const OverlayNetwork& net, std::uint64_t seed) {
         Rng rng(seed * 2 + 1);
         return build_kandy(net, BucketChoice::kRandom, rng);
       }},
      {"nondet_crescendo",
       [](const OverlayNetwork& net, std::uint64_t seed) {
         Rng rng(seed * 2 + 1);
         return build_nondet_crescendo(net, rng);
       }},
      {"chord_prox",
       [](const OverlayNetwork& net, std::uint64_t seed) {
         const GroupedOverlay groups(net, 16);
         // Synthetic but deterministic pairwise cost: the builders only
         // need *some* latency oracle, identical across the two runs.
         const HopCost cost = [](std::uint32_t a, std::uint32_t b) {
           return static_cast<double>((a * 31u + b * 17u) % 97u + 1u);
         };
         Rng rng(seed * 2 + 1);
         return build_chord_prox(net, groups, cost, ProximityConfig{}, rng);
       }},
      {"crescendo_prox",
       [](const OverlayNetwork& net, std::uint64_t seed) {
         const GroupedOverlay groups(net, 16);
         const HopCost cost = [](std::uint32_t a, std::uint32_t b) {
           return static_cast<double>((a * 31u + b * 17u) % 97u + 1u);
         };
         Rng rng(seed * 2 + 1);
         return build_crescendo_prox(net, groups, cost, ProximityConfig{},
                                     rng);
       }},
  };
  return fams;
}

TEST(ParallelDeterminism, EveryFamilySerialEqualsParallel) {
  ThreadGuard guard;
  for (const Shape& shape : kShapes) {
    for (const std::uint64_t seed : kSeeds) {
      const OverlayNetwork net = make_net(shape, seed);
      for (const Family& fam : families()) {
        set_parallel_threads(1);
        const LinkTable serial = fam.build(net, seed);
        set_parallel_threads(kParallelThreads);
        const LinkTable parallel = fam.build(net, seed);
        EXPECT_TRUE(serial == parallel)
            << fam.name << " diverges at shape=" << shape.name
            << " seed=" << seed;
      }
    }
  }
}

TEST(ParallelDeterminism, RepeatedParallelBuildsAreIdentical) {
  // Same thread count twice: shard scheduling order must not leak into
  // the result either.
  ThreadGuard guard;
  const OverlayNetwork net = make_net(kShapes[1], 42);
  set_parallel_threads(kParallelThreads);
  for (const Family& fam : families()) {
    const LinkTable a = fam.build(net, 42);
    const LinkTable b = fam.build(net, 42);
    EXPECT_TRUE(a == b) << fam.name << " is not stable across runs";
  }
}

TEST(ParallelDeterminism, LatencyMatrixSerialEqualsParallel) {
  ThreadGuard guard;
  TransitStubConfig cfg;
  cfg.transit_domains = 4;
  cfg.transit_per_domain = 2;
  cfg.stub_domains_per_transit = 2;
  cfg.stubs_per_domain = 5;
  for (const std::uint64_t seed : kSeeds) {
    Rng rng(seed);
    const TransitStubTopology topo(cfg, rng);
    set_parallel_threads(1);
    const LatencyMatrix serial(topo);
    set_parallel_threads(kParallelThreads);
    const LatencyMatrix parallel(topo);
    ASSERT_EQ(serial.router_count(), parallel.router_count());
    for (int a = 0; a < serial.router_count(); ++a) {
      for (int b = 0; b < serial.router_count(); ++b) {
        ASSERT_EQ(serial.latency(a, b), parallel.latency(a, b))
            << "row " << a << " col " << b << " seed " << seed;
      }
    }
  }
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadGuard guard;
  set_parallel_threads(kParallelThreads);
  constexpr std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(n, 7, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, EmptyRangeNeverInvokesBody) {
  ThreadGuard guard;
  for (const int threads : {1, kParallelThreads}) {
    set_parallel_threads(threads);
    bool called = false;
    parallel_for(0, 64, [&](std::size_t, std::size_t) { called = true; });
    EXPECT_FALSE(called) << "threads=" << threads;
  }
}

TEST(ParallelFor, GrainLargerThanRangeRunsInlineOnce) {
  ThreadGuard guard;
  set_parallel_threads(kParallelThreads);
  int calls = 0;
  std::size_t begin = 99, end = 0;
  parallel_for(10, 64, [&](std::size_t b, std::size_t e) {
    ++calls;
    begin = b;
    end = e;
  });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(begin, 0u);
  EXPECT_EQ(end, 10u);
}

TEST(ParallelFor, ZeroGrainIsTreatedAsOne) {
  ThreadGuard guard;
  set_parallel_threads(kParallelThreads);
  std::vector<std::atomic<int>> hits(32);
  parallel_for(32, 0, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (std::size_t i = 0; i < 32; ++i) ASSERT_EQ(hits[i].load(), 1);
}

TEST(ParallelFor, WorkerExceptionPropagatesToCaller) {
  ThreadGuard guard;
  for (const int threads : {1, kParallelThreads}) {
    set_parallel_threads(threads);
    EXPECT_THROW(
        parallel_for(1000, 8,
                     [&](std::size_t begin, std::size_t end) {
                       // Fire from whichever shard covers index 500 (the
                       // single inline call at threads=1 covers it too).
                       if (begin <= 500 && 500 < end) {
                         throw std::runtime_error("shard failure");
                       }
                     }),
        std::runtime_error)
        << "threads=" << threads;
  }
}

TEST(ParallelFor, PoolIsReusableAfterAnException) {
  ThreadGuard guard;
  set_parallel_threads(kParallelThreads);
  EXPECT_THROW(parallel_for(256, 4,
                            [](std::size_t, std::size_t) {
                              throw std::logic_error("boom");
                            }),
               std::logic_error);
  std::atomic<int> total{0};
  parallel_for(256, 4, [&](std::size_t begin, std::size_t end) {
    total.fetch_add(static_cast<int>(end - begin),
                    std::memory_order_relaxed);
  });
  EXPECT_EQ(total.load(), 256);
}

TEST(ParallelFor, ThreadCountSettingRoundTrips) {
  ThreadGuard guard;
  set_parallel_threads(3);
  EXPECT_EQ(parallel_threads(), 3);
  set_parallel_threads(0);
  EXPECT_GE(parallel_threads(), 1);  // hardware_concurrency, at least 1
}

}  // namespace
}  // namespace canon
