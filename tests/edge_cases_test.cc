// Edge-case coverage across modules: degenerate populations, extreme ID
// widths, grouped overlays with one group, CAN multi-zone ownership, and
// store behavior at boundaries.
#include <gtest/gtest.h>

#include <cmath>

#include "canon/crescendo.h"
#include "canon/proximity.h"
#include "common/rng.h"
#include "dht/can.h"
#include "dht/chord.h"
#include "overlay/metrics.h"
#include "overlay/population.h"
#include "overlay/routing.h"
#include "storage/hierarchical_store.h"

namespace canon {
namespace {

TEST(EdgeCases, SixtyFourBitIdSpace) {
  Rng rng(1101);
  PopulationSpec spec;
  spec.node_count = 200;
  spec.id_bits = 64;
  spec.hierarchy.levels = 3;
  spec.hierarchy.fanout = 3;
  const auto net = make_population(spec, rng);
  const auto links = build_crescendo(net);
  const RingRouter router(net, links);
  for (int t = 0; t < 100; ++t) {
    const auto from = static_cast<std::uint32_t>(rng.uniform(net.size()));
    const NodeId key = rng();
    const Route r = router.route(from, key);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.terminal(), net.responsible(key));
  }
}

TEST(EdgeCases, OneBitIdSpace) {
  std::vector<OverlayNode> nodes = {{0, {}, -1}, {1, {}, -1}};
  const OverlayNetwork net(IdSpace(1), std::move(nodes));
  const auto links = build_chord(net);
  EXPECT_TRUE(links.has_link(0, 1));
  EXPECT_TRUE(links.has_link(1, 0));
  const RingRouter router(net, links);
  EXPECT_EQ(router.route(0, 1).terminal(), 1u);
  EXPECT_EQ(router.route(1, 0).terminal(), 0u);
}

TEST(EdgeCases, DenseIdSpaceEveryIdTaken) {
  // All 16 IDs of a 4-bit space occupied.
  std::vector<OverlayNode> nodes;
  for (NodeId id = 0; id < 16; ++id) nodes.push_back({id, {}, -1});
  const OverlayNetwork net(IdSpace(4), std::move(nodes));
  const auto links = build_chord(net);
  const RingRouter router(net, links);
  for (NodeId key = 0; key < 16; ++key) {
    const Route r = router.route(0, key);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(net.id(r.terminal()), key);  // every key has an exact owner
  }
}

TEST(EdgeCases, GroupedOverlaySingleGroup) {
  Rng rng(1102);
  PopulationSpec spec;
  spec.node_count = 8;
  const auto net = make_population(spec, rng);
  // Target size bigger than the population: one group, T == 0 ... or tiny.
  const GroupedOverlay groups(net, 100);
  EXPECT_EQ(groups.prefix_bits(), 0);
  EXPECT_EQ(groups.groups().size(), 1u);
  for (std::uint32_t i = 0; i < net.size(); ++i) {
    EXPECT_EQ(groups.group_index_of(i), 0);
  }
  // The responsible node degenerates to the plain predecessor rule.
  for (int t = 0; t < 50; ++t) {
    const NodeId key = net.space().wrap(rng());
    EXPECT_EQ(groups.responsible(key), net.responsible(key));
  }
}

TEST(EdgeCases, GroupRouterWithSingleGroupUsesClique) {
  Rng rng(1103);
  PopulationSpec spec;
  spec.node_count = 16;
  const auto net = make_population(spec, rng);
  const GroupedOverlay groups(net, 100);
  const HopCost cost = [](std::uint32_t, std::uint32_t) { return 1.0; };
  const ProximityConfig cfg;
  Rng brng(1);
  const auto links = build_chord_prox(net, groups, cost, cfg, brng);
  const GroupRouter router(net, groups, links);
  for (int t = 0; t < 50; ++t) {
    const auto from = static_cast<std::uint32_t>(rng.uniform(net.size()));
    const NodeId key = net.space().wrap(rng());
    const Route r = router.route(from, key);
    EXPECT_TRUE(r.ok);
    EXPECT_LE(r.hops(), 1);  // clique: at most one hop
  }
}

TEST(EdgeCases, ZoneTreeMultiZoneOwnership) {
  // IDs clustered in the low half of an 8-bit space force empty-sibling
  // blocks whose owners hold several zones.
  std::vector<OverlayNode> nodes;
  for (const NodeId id : {1, 2, 3, 5}) nodes.push_back({id, {}, -1});
  const OverlayNetwork net(IdSpace(8), std::move(nodes));
  const auto can = build_can(net);
  std::size_t zones = 0;
  bool someone_owns_many = false;
  for (std::uint32_t m = 0; m < net.size(); ++m) {
    const auto owned = can.tree.zones_of(m);
    zones += owned.size();
    someone_owns_many |= owned.size() > 1;
    // Primary zone always contains the owner's ID.
    const auto z = can.tree.zone(m);
    const int shift = 8 - z.len;
    EXPECT_EQ(net.id(m) >> shift, z.prefix >> shift);
  }
  EXPECT_TRUE(someone_owns_many);
  // Zones partition the space: total size == 256.
  std::uint64_t covered = 0;
  for (std::uint32_t m = 0; m < net.size(); ++m) {
    for (const auto& z : can.tree.zones_of(m)) {
      covered += std::uint64_t{1} << (8 - z.len);
    }
  }
  EXPECT_EQ(covered, 256u);
}

TEST(EdgeCases, ZoneTreeMatchLenUsesAllZones) {
  std::vector<OverlayNode> nodes;
  for (const NodeId id : {0x10, 0x80}) nodes.push_back({id, {}, -1});
  const OverlayNetwork net(IdSpace(8), std::move(nodes));
  const RingView ring = net.ring();
  const ZoneTree tree(net, ring.members());
  // Node 0x10 owns [0x00,0x80); node 0x80 owns [0x80,0x100).
  EXPECT_EQ(tree.owner_of(0x7F), net.index_of(0x10));
  EXPECT_EQ(tree.owner_of(0xFF), net.index_of(0x80));
  EXPECT_EQ(tree.match_len(net.index_of(0x10), 0x00), 1);
}

TEST(EdgeCases, StoreOnFlatPopulationBehavesLikePlainDht) {
  Rng rng(1104);
  PopulationSpec spec;
  spec.node_count = 100;
  const auto net = make_population(spec, rng);
  const auto links = build_crescendo(net);
  HierarchicalStore store(net, links);
  const NodeId key = net.space().wrap(rng());
  // Only level 0 exists.
  EXPECT_THROW(store.put(0, key, "x", 1, 1), std::invalid_argument);
  store.put(0, key, "x", 0, 0);
  EXPECT_EQ(store.get(55, key).value, "x");
}

TEST(EdgeCases, MulticastSingleRoute) {
  MulticastTree tree;
  Route r;
  r.path = {4};
  tree.add_route(r);  // zero-hop route contributes no edges
  EXPECT_EQ(tree.edge_count(), 0u);
}

TEST(EdgeCases, RaggedHierarchyRoutesFine) {
  // Mixed depths: some nodes directly under root, some 3 levels deep.
  Rng rng(1105);
  const auto ids = sample_unique_ids(120, IdSpace(24), rng);
  std::vector<OverlayNode> nodes;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    DomainPath path;
    switch (i % 3) {
      case 0:
        path = DomainPath{};
        break;
      case 1:
        path = DomainPath({static_cast<std::uint16_t>(i % 4)});
        break;
      default:
        path = DomainPath({static_cast<std::uint16_t>(i % 4),
                           static_cast<std::uint16_t>(i % 2), 0});
        break;
    }
    nodes.push_back({ids[i], path, -1});
  }
  const OverlayNetwork net(IdSpace(24), std::move(nodes));
  const auto links = build_crescendo(net);
  const RingRouter router(net, links);
  for (int t = 0; t < 200; ++t) {
    const auto from = static_cast<std::uint32_t>(rng.uniform(net.size()));
    const NodeId key = net.space().wrap(rng());
    const Route r = router.route(from, key);
    EXPECT_TRUE(r.ok);
  }
}

TEST(EdgeCases, CrescendoDeterministicAcrossRebuilds) {
  Rng rng(1106);
  PopulationSpec spec;
  spec.node_count = 150;
  spec.hierarchy.levels = 3;
  const auto net = make_population(spec, rng);
  const auto a = build_crescendo(net);
  const auto b = build_crescendo(net);
  for (std::uint32_t m = 0; m < net.size(); ++m) {
    const auto x = a.neighbors(m);
    const auto y = b.neighbors(m);
    ASSERT_EQ(x.size(), y.size());
    EXPECT_TRUE(std::equal(x.begin(), x.end(), y.begin()));
  }
}

}  // namespace
}  // namespace canon
