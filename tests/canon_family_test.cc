// Tests for the other Canon family members: Cacophony (Symphony),
// nondeterministic Crescendo, Kandy (Kademlia) and Can-Can (CAN).
#include <gtest/gtest.h>

#include <cmath>

#include "canon/cacophony.h"
#include "canon/cancan.h"
#include "canon/kandy.h"
#include "canon/nondet_crescendo.h"
#include "common/rng.h"
#include "dht/kademlia.h"
#include "dht/nondet_chord.h"
#include "dht/symphony.h"
#include "overlay/population.h"
#include "overlay/routing.h"

namespace canon {
namespace {

PopulationSpec deep_spec(std::size_t n, int levels) {
  PopulationSpec spec;
  spec.node_count = n;
  spec.hierarchy.levels = levels;
  spec.hierarchy.fanout = 5;
  return spec;
}

class FamilyLevelsTest : public ::testing::TestWithParam<int> {};

TEST_P(FamilyLevelsTest, CacophonyRoutesSucceed) {
  const int levels = GetParam();
  Rng rng(301 + levels);
  const auto net = make_population(deep_spec(700, levels), rng);
  const auto links = build_cacophony(net, rng);
  const RingRouter router(net, links);
  for (int t = 0; t < 300; ++t) {
    const auto from = static_cast<std::uint32_t>(rng.uniform(net.size()));
    const NodeId key = net.space().wrap(rng());
    const Route r = router.route(from, key);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.terminal(), net.responsible(key));
  }
}

TEST_P(FamilyLevelsTest, NondetCrescendoRoutesSucceed) {
  const int levels = GetParam();
  Rng rng(311 + levels);
  const auto net = make_population(deep_spec(700, levels), rng);
  const auto links = build_nondet_crescendo(net, rng);
  const RingRouter router(net, links);
  for (int t = 0; t < 300; ++t) {
    const auto from = static_cast<std::uint32_t>(rng.uniform(net.size()));
    const NodeId key = net.space().wrap(rng());
    const Route r = router.route(from, key);
    EXPECT_TRUE(r.ok);
  }
}

TEST_P(FamilyLevelsTest, KandyRoutesSucceed) {
  const int levels = GetParam();
  Rng rng(321 + levels);
  const auto net = make_population(deep_spec(700, levels), rng);
  for (const auto choice : {BucketChoice::kClosest, BucketChoice::kRandom}) {
    const auto links = build_kandy(net, choice, rng);
    const XorRouter router(net, links);
    for (int t = 0; t < 200; ++t) {
      const auto from = static_cast<std::uint32_t>(rng.uniform(net.size()));
      const NodeId key = net.space().wrap(rng());
      const Route r = router.route(from, key);
      EXPECT_TRUE(r.ok);
      EXPECT_EQ(r.terminal(), net.xor_closest(key));
    }
  }
}

TEST_P(FamilyLevelsTest, CanCanRoutesSucceed) {
  const int levels = GetParam();
  Rng rng(331 + levels);
  const auto net = make_population(deep_spec(600, levels), rng);
  const CanCanNetwork cancan(net);
  const CanCanRouter router(cancan);
  int ok = 0;
  const int kTrials = 300;
  for (int t = 0; t < kTrials; ++t) {
    const auto from = static_cast<std::uint32_t>(rng.uniform(net.size()));
    const NodeId key = net.space().wrap(rng());
    const Route r = router.route(from, key);
    if (r.ok) {
      ++ok;
      EXPECT_EQ(r.terminal(), cancan.responsible(key));
    }
  }
  // The Canon merge filter for CAN is the loosest part of the paper;
  // require routing to work for the overwhelming majority of queries (the
  // router's XOR fallback covers faces the filter removed).
  EXPECT_GE(ok, kTrials * 99 / 100)
      << "stuck=" << router.stuck_count() << " levels=" << levels;
}

TEST_P(FamilyLevelsTest, DegreesStayLogarithmic) {
  const int levels = GetParam();
  Rng rng(341 + levels);
  const auto net = make_population(deep_spec(1000, levels), rng);
  const double logn = std::log2(1000.0);
  EXPECT_LE(build_cacophony(net, rng).mean_degree(), logn + 2);
  EXPECT_LE(build_nondet_crescendo(net, rng).mean_degree(), logn + 2);
  EXPECT_LE(build_kandy(net, BucketChoice::kClosest, rng).mean_degree(),
            logn + 2);
  const CanCanNetwork cancan(net);
  EXPECT_LE(cancan.links().mean_degree(), 3 * logn);
}

INSTANTIATE_TEST_SUITE_P(Levels, FamilyLevelsTest,
                         ::testing::Values(1, 2, 3, 5));

TEST(Kandy, FlatEqualsKademliaGivenSameSeed) {
  PopulationSpec spec = deep_spec(400, 1);
  Rng rng_net(351);
  const auto net = make_population(spec, rng_net);
  Rng r1(77);
  Rng r2(77);
  const auto kandy = build_kandy(net, BucketChoice::kRandom, r1);
  const auto kademlia = build_kademlia(net, BucketChoice::kRandom, r2);
  for (std::uint32_t m = 0; m < net.size(); ++m) {
    const auto a = kandy.neighbors(m);
    const auto b = kademlia.neighbors(m);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

TEST(NondetCrescendo, FlatEqualsNondetChordGivenSameSeed) {
  PopulationSpec spec = deep_spec(400, 1);
  Rng rng_net(352);
  const auto net = make_population(spec, rng_net);
  Rng r1(78);
  Rng r2(78);
  const auto a_table = build_nondet_crescendo(net, r1);
  const auto b_table = build_nondet_chord(net, r2);
  for (std::uint32_t m = 0; m < net.size(); ++m) {
    const auto a = a_table.neighbors(m);
    const auto b = b_table.neighbors(m);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

TEST(Cacophony, FlatEqualsSymphonyGivenSameSeed) {
  PopulationSpec spec = deep_spec(400, 1);
  Rng rng_net(353);
  const auto net = make_population(spec, rng_net);
  Rng r1(79);
  Rng r2(79);
  const auto a_table = build_cacophony(net, r1);
  const auto b_table = build_symphony(net, r2);
  for (std::uint32_t m = 0; m < net.size(); ++m) {
    const auto a = a_table.neighbors(m);
    const auto b = b_table.neighbors(m);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

TEST(NondetCrescendo, RespectsConditionB) {
  // Section 3.2: merge links must be strictly closer than the closest node
  // of the node's own child ring.
  Rng rng(354);
  const auto net = make_population(deep_spec(500, 3), rng);
  const auto links = build_nondet_crescendo(net, rng);
  const DomainTree& dom = net.domains();
  for (std::uint32_t m = 0; m < net.size(); ++m) {
    const auto& chain = dom.domain_chain(m);
    const int leaf = static_cast<int>(chain.size()) - 1;
    for (const auto v : links.neighbors(m)) {
      // Links to nodes outside the leaf domain must beat the leaf-domain
      // successor distance.
      if (net.lca_level(m, v) >= leaf) continue;
      const std::uint64_t leaf_succ =
          net.domain_ring(chain[static_cast<std::size_t>(leaf)])
              .successor_distance(net.id(m));
      EXPECT_LT(net.space().ring_distance(net.id(m), net.id(v)), leaf_succ);
    }
  }
}

TEST(Kandy, RespectsPerBucketConditionB) {
  // A link leaving the leaf domain must be strictly closer than every leaf
  // mate within the same XOR bucket (the per-bucket reading of "closer than
  // any node in m's own ring").
  Rng rng(355);
  const auto net = make_population(deep_spec(500, 3), rng);
  const auto links = build_kandy(net, BucketChoice::kClosest, rng);
  const DomainTree& dom = net.domains();
  for (std::uint32_t m = 0; m < net.size(); ++m) {
    const auto& chain = dom.domain_chain(m);
    const int leaf = static_cast<int>(chain.size()) - 1;
    const RingView leaf_ring =
        net.domain_ring(chain[static_cast<std::size_t>(leaf)]);
    for (const auto v : links.neighbors(m)) {
      if (net.lca_level(m, v) >= leaf) continue;
      const std::uint64_t d = net.space().xor_distance(net.id(m), net.id(v));
      const std::uint64_t leaf_bucket_best =
          bucket_closest_distance(net, leaf_ring, net.id(m), floor_log2(d));
      EXPECT_LT(d, leaf_bucket_best);
    }
  }
}

TEST(RingLocality, HoldsForAllRingBasedFamilies) {
  // Intra-domain path locality (Section 2.2) holds for every construction
  // whose merge links are strictly shorter than the child-ring successor.
  Rng rng(356);
  const auto net = make_population(deep_spec(700, 3), rng);
  struct NamedTable {
    const char* name;
    LinkTable table;
  };
  std::vector<NamedTable> tables;
  tables.push_back({"cacophony", build_cacophony(net, rng)});
  tables.push_back({"nondet_crescendo", build_nondet_crescendo(net, rng)});
  for (const auto& [name, links] : tables) {
    const RingRouter router(net, links);
    int checked = 0;
    for (int t = 0; t < 3000 && checked < 200; ++t) {
      const auto a = static_cast<std::uint32_t>(rng.uniform(net.size()));
      const auto b = static_cast<std::uint32_t>(rng.uniform(net.size()));
      const int lca = net.lca_level(a, b);
      if (lca == 0 || a == b) continue;
      ++checked;
      const Route r = router.route(a, net.id(b));
      ASSERT_TRUE(r.ok) << name;
      for (const auto hop : r.path) {
        EXPECT_GE(net.lca_level(hop, b), lca) << name;
      }
    }
    EXPECT_GE(checked, 100) << name;
  }
}

TEST(CanCan, FlatEqualsCan) {
  Rng rng(357);
  const auto net = make_population(deep_spec(300, 1), rng);
  const CanCanNetwork cancan(net);
  const auto flat = build_can(net);
  for (std::uint32_t m = 0; m < net.size(); ++m) {
    const auto a = cancan.links().neighbors(m);
    const auto b = flat.links.neighbors(m);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

}  // namespace
}  // namespace canon
