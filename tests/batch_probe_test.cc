// The interleaved batch probe kernels (overlay/batch_probe.h and the
// probe_batch entry points on RingRouter / XorRouter / GroupRouter):
//
// * equivalence — probe_batch matches the per-call probe loop
//   hop-for-hop and terminal-for-terminal, for every family in the
//   registry, at every batch width (the kernels change when memory is
//   touched, never which neighbor wins);
// * width invariance — widths {1, 4, 8, 16} and the width-0 scalar
//   fallback all produce bit-identical stats and per-query results;
// * thread invariance — the width knob composes with the engine's shard
//   fan-out: {1, 2, 7} threads x every width stay bit-identical;
// * at scale (NDEBUG builds) — a 2^18-node streamed build pins
//   batch == scalar on a DRAM-resident structure, where a prefetch-kernel
//   bug would actually pay off in divergence.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "canon/crescendo.h"
#include "canon/kandy.h"
#include "canon/proximity.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "overlay/family_registry.h"
#include "overlay/population.h"
#include "overlay/query_engine.h"
#include "overlay/routing.h"

namespace canon {
namespace {

constexpr int kWidths[] = {1, 4, 8, 16};
constexpr int kThreadCounts[] = {1, 2, 7};

/// Restores the default thread count even if an assertion bails out early.
struct ThreadGuard {
  ~ThreadGuard() { set_parallel_threads(0); }
};

/// Restores the process-wide batch width (tests poke it per-case).
struct WidthGuard {
  int saved = probe_batch_width();
  ~WidthGuard() { set_probe_batch_width(saved); }
};

OverlayNetwork make_net(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  PopulationSpec spec;
  spec.node_count = n;
  spec.hierarchy.levels = 3;
  spec.hierarchy.fanout = 10;
  return make_population(spec, rng);
}

/// Bit-exact equality of every QueryStats field (the contract is
/// byte-identity, not closeness).
void expect_stats_identical(const QueryStats& a, const QueryStats& b) {
  EXPECT_EQ(a.queries, b.queries);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.total_hops, b.total_hops);
  EXPECT_EQ(a.hops_by_level, b.hops_by_level);
  EXPECT_EQ(a.hops.count(), b.hops.count());
  EXPECT_EQ(a.hops.sum(), b.hops.sum());
  if (a.hops.count() > 0 && b.hops.count() > 0) {
    EXPECT_EQ(a.hops.mean(), b.hops.mean());
    EXPECT_EQ(a.hops.min(), b.hops.min());
    EXPECT_EQ(a.hops.max(), b.hops.max());
    EXPECT_EQ(a.hops.variance(), b.hops.variance());
  }
}

/// probe_batch output vs the per-call probe loop on the same router, at
/// every width plus the width-0 fallback.
template <typename Router>
void expect_kernel_matches_probe(const Router& router,
                                 const std::vector<Query>& queries,
                                 const char* what) {
  WidthGuard guard;
  std::vector<RouteProbe> ref(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    ref[i] = router.probe(queries[i].from, queries[i].key);
  }
  std::vector<RouteProbe> out(queries.size());
  set_probe_batch_width(0);  // the scalar fallback must also agree
  router.probe_batch(queries, out);
  EXPECT_EQ(ref, out) << what << " scalar fallback";
  for (const int width : kWidths) {
    set_probe_batch_width(width);
    router.probe_batch(queries, out);
    EXPECT_EQ(ref, out) << what << " width " << width;
  }
}

// ---------------------------------------------------------------------------
// Direct kernel tests: one per probe_batch overload.

TEST(BatchProbe, RingKernelMatchesPerCallProbe) {
  const auto net = make_net(1u << 12, 17);
  const auto links = build_crescendo(net);
  const RingRouter router(net, links);
  const auto queries = uniform_workload(net, 1200, Rng(5));
  expect_kernel_matches_probe(router, queries, "ring");
}

TEST(BatchProbe, XorKernelMatchesPerCallProbe) {
  const auto net = make_net(1u << 12, 18);
  Rng rng(23);
  const auto links = build_kandy(net, BucketChoice::kClosest, rng);
  const XorRouter router(net, links);
  const auto queries = uniform_workload(net, 1200, Rng(6));
  expect_kernel_matches_probe(router, queries, "xor");
}

TEST(BatchProbe, GroupKernelMatchesPerCallProbe) {
  const auto net = make_net(1u << 12, 19);
  const auto links = registry::build_family(net, "crescendo_prox", 19);
  const GroupedOverlay groups(net, ProximityConfig{}.target_group_size);
  const GroupRouter router(net, groups, links);
  const auto queries = uniform_workload(net, 1200, Rng(7));
  expect_kernel_matches_probe(router, queries, "group");
}

TEST(BatchProbe, MismatchedSpansThrow) {
  const auto net = make_net(512, 20);
  const auto links = build_crescendo(net);
  const RingRouter router(net, links);
  const auto queries = uniform_workload(net, 8, Rng(8));
  std::vector<RouteProbe> short_out(queries.size() - 1);
  EXPECT_THROW(router.probe_batch(queries, short_out),
               std::invalid_argument);
}

TEST(BatchProbe, WidthKnobClampsAndRestores) {
  WidthGuard guard;
  set_probe_batch_width(1000);
  EXPECT_EQ(probe_batch_width(), kMaxProbeBatchWidth);
  set_probe_batch_width(-3);
  EXPECT_EQ(probe_batch_width(), 0);
  set_probe_batch_width(kDefaultProbeBatchWidth);
  EXPECT_EQ(probe_batch_width(), kDefaultProbeBatchWidth);
}

// ---------------------------------------------------------------------------
// Registry sweep: every family, every width, three seeds. Ring/Xor/Group
// families hit their interleaved kernels through the engine's probe_batch
// detection; Can/CanCan exercise the registry-level scalar path — either
// way the width knob must never move a single per-query result.

TEST(BatchProbe, AllFamiliesMatchScalarAtEveryWidth) {
  WidthGuard guard;
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const auto net = make_net(1u << 12, seed);
    const QueryEngine engine(net);
    const auto queries = uniform_workload(net, 600, Rng(seed + 100));
    for (const auto& entry : registry::families()) {
      const auto links = registry::build_family(net, entry.name, seed);
      const auto router = entry.make_router(net, links);
      set_probe_batch_width(0);
      std::vector<RouteProbe> ref_pq;
      const QueryStats ref = router.run(engine, queries, &ref_pq);
      ASSERT_EQ(ref_pq.size(), queries.size());
      for (const int width : kWidths) {
        set_probe_batch_width(width);
        std::vector<RouteProbe> pq;
        const QueryStats got = router.run(engine, queries, &pq);
        expect_stats_identical(ref, got);
        EXPECT_EQ(ref_pq, pq)
            << entry.name << " seed " << seed << " width " << width;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// The width knob composes with the engine's shard fan-out and the grain
// knob: threads x widths all bit-identical to the serial scalar run.

TEST(BatchProbe, ThreadAndWidthInvariantThroughEngine) {
  ThreadGuard threads_guard;
  WidthGuard width_guard;
  const auto net = make_net(1u << 12, 21);
  const auto links = build_crescendo(net);
  const RingRouter router(net, links);
  const QueryEngine engine(net);
  const auto queries = uniform_workload(net, 3000, Rng(9));

  set_parallel_threads(1);
  set_probe_batch_width(0);
  std::vector<RouteProbe> ref_pq;
  const QueryStats ref = engine.run(queries, router, &ref_pq);
  EXPECT_GT(ref.queries, 0u);

  for (const int threads : kThreadCounts) {
    for (const int width : kWidths) {
      set_parallel_threads(threads);
      set_probe_batch_width(width);
      std::vector<RouteProbe> pq;
      const QueryStats got = engine.run(queries, router, &pq);
      expect_stats_identical(ref, got);
      EXPECT_EQ(ref_pq, pq)
          << "threads " << threads << " width " << width;
    }
  }
}

// ---------------------------------------------------------------------------
// At scale: a streamed 2^18-node build (the mega-scale construction path)
// with a DRAM-resident CSR, where the prefetch window actually overlaps
// misses. Debug builds drop to 2^14 so sanitizer jobs stay fast.

TEST(BatchProbe, StreamedBuildBatchMatchesScalarAtScale) {
#ifdef NDEBUG
  constexpr std::size_t kNodes = std::size_t{1} << 18;
  constexpr std::size_t kLookups = 20000;
#else
  constexpr std::size_t kNodes = std::size_t{1} << 14;
  constexpr std::size_t kLookups = 4000;
#endif
  WidthGuard guard;
  const auto net = make_net(kNodes, 4);
  const auto links = build_crescendo_streamed(net);
  const RingRouter router(net, links);
  const QueryEngine engine(net);
  const auto queries = uniform_workload(net, kLookups, Rng(3));

  set_probe_batch_width(0);
  std::vector<RouteProbe> ref_pq;
  const QueryStats ref = engine.run(queries, router, &ref_pq);
  EXPECT_EQ(ref.failures, 0u);

  set_probe_batch_width(kDefaultProbeBatchWidth);
  std::vector<RouteProbe> pq;
  const QueryStats got = engine.run(queries, router, &pq);
  expect_stats_identical(ref, got);
  EXPECT_EQ(ref_pq, pq);
}

}  // namespace
}  // namespace canon
