// Tests for the message-granularity simulator: the α=1 greedy-equivalence
// contract, timeout/retry/drop accounting under faults, bounded-inbox
// semantics, sink wiring, and the byte-identical-at-any-thread-count
// determinism contract.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>

#include "canon/crescendo.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "overlay/family_registry.h"
#include "overlay/message_sim.h"
#include "overlay/population.h"
#include "overlay/routing.h"
#include "telemetry/load_stats.h"
#include "telemetry/timeseries.h"

namespace canon {
namespace {

OverlayNetwork small_net(std::size_t n, int levels, std::uint64_t seed) {
  Rng rng(seed);
  PopulationSpec spec;
  spec.node_count = n;
  spec.hierarchy.levels = levels;
  spec.hierarchy.fanout = 4;
  return make_population(spec, rng);
}

struct Workload {
  std::vector<std::uint32_t> from;
  std::vector<NodeId> keys;
};

Workload make_workload(const OverlayNetwork& net, int count,
                       std::uint64_t seed) {
  Workload w;
  Rng rng(seed);
  for (int i = 0; i < count; ++i) {
    w.from.push_back(static_cast<std::uint32_t>(rng.uniform(net.size())));
    w.keys.push_back(net.space().wrap(rng()));
  }
  return w;
}

void submit_all(MessageSimulator& sim, const Workload& w, double gap_ms) {
  for (std::size_t i = 0; i < w.from.size(); ++i) {
    sim.submit(w.from[i], w.keys[i], gap_ms * static_cast<double>(i));
  }
}

/// Every number a report could be derived from, printed at full
/// precision: the determinism contract says this string is identical on
/// every run regardless of the process-wide thread count.
std::string fingerprint(const MessageSimulator& sim) {
  std::ostringstream out;
  char buf[64];
  const auto num = [&](double v) {
    std::snprintf(buf, sizeof buf, "%.17g,", v);
    out << buf;
  };
  for (const auto& lk : sim.lookups()) {
    out << lk.from << ":" << lk.key << ":" << lk.hops << ":" << lk.ok << ":"
        << lk.timeouts << ":" << lk.retries << ":";
    num(lk.issued_ms);
    num(lk.completed_ms);
  }
  const auto& t = sim.totals();
  out << "|" << t.sent << "," << t.serviced << "," << t.timeouts << ","
      << t.retries << "," << t.link_drops << "," << t.inbox_drops << ","
      << t.failures << "|";
  num(sim.now_ms());
  for (const auto l : sim.node_load()) out << l << ",";
  for (const auto d : sim.max_queue_depth()) out << d << ",";
  return out.str();
}

TEST(MessageSim, Alpha1MatchesGreedyRouterExactly) {
  // With no faults and α=1 the frontier walks the family's greedy chain:
  // per-lookup hop counts equal the static router's on the same workload.
  const auto net = small_net(300, 3, 2001);
  const auto links = build_crescendo(net);
  const RingRouter router(net, links);
  MessageSimulator sim(net, links);  // default stepper = greedy ring
  const Workload w = make_workload(net, 200, 7);
  submit_all(sim, w, 1.0);
  sim.run();
  ASSERT_EQ(sim.lookups().size(), 200u);
  for (std::size_t i = 0; i < w.from.size(); ++i) {
    const Route expected = router.route(w.from[i], w.keys[i]);
    const auto& lookup = sim.lookups()[i];
    EXPECT_TRUE(lookup.ok) << i;
    EXPECT_EQ(lookup.hops, expected.hops()) << i;
    EXPECT_EQ(lookup.timeouts, 0) << i;
    EXPECT_GE(lookup.completed_ms, lookup.issued_ms) << i;
  }
  EXPECT_EQ(sim.totals().timeouts, 0u);
  EXPECT_EQ(sim.totals().failures, 0u);
}

TEST(MessageSim, RegistryStepperMatchesFamilyHops) {
  // The registry's make_stepper hook must reproduce the family's route
  // choice (candidate 0 = the greedy next hop): crescendo through the
  // registry stepper equals the RingRouter hop-for-hop.
  const auto net = small_net(256, 3, 2002);
  const auto links = registry::build_family(net, "crescendo", 2002);
  const RingRouter router(net, links);
  MessageSimulator sim(net, links,
                       registry::family("crescendo").make_stepper(net, links));
  const Workload w = make_workload(net, 150, 11);
  submit_all(sim, w, 1.0);
  sim.run();
  for (std::size_t i = 0; i < w.from.size(); ++i) {
    const Route expected = router.route(w.from[i], w.keys[i]);
    EXPECT_EQ(sim.lookups()[i].hops, expected.hops()) << i;
    EXPECT_EQ(sim.lookups()[i].ok, expected.ok) << i;
  }
}

TEST(MessageSim, EveryFamilyStepperTerminatesAndResolves) {
  // Every registry family must expose a stepper the simulator can drive
  // to completion fault-free. (The cancan stepper's prev-node guard is
  // weaker than the scalar core's full visited set — docs/SIMULATION.md —
  // so this asserts termination and a high ok rate, not hop equality.)
  const auto net = small_net(192, 3, 2003);
  for (const auto& name : registry::family_names()) {
    const auto links = registry::build_family(net, name, 2003);
    MessageSimulator sim(net, links,
                         registry::family(name).make_stepper(net, links));
    const Workload w = make_workload(net, 80, 13);
    submit_all(sim, w, 1.0);
    sim.run();
    int ok = 0;
    for (const auto& lookup : sim.lookups()) {
      EXPECT_GE(lookup.completed_ms, 0.0) << name;
      ok += lookup.ok;
    }
    EXPECT_GE(ok, 76) << name << ": " << ok << "/80 ok";
  }
}

TEST(MessageSim, AlphaParallelKeepsThePathAndAddsTraffic) {
  // Advance-on-best-ranked: with no faults candidate 0 always responds,
  // so α=4 walks the same frontier chain as α=1 — it just sends more
  // speculative probes.
  const auto net = small_net(300, 3, 2004);
  const auto links = build_crescendo(net);
  MessageSimConfig cfg;
  MessageSimulator a1(net, links, {}, {}, cfg);
  cfg.alpha = 4;
  MessageSimulator a4(net, links, {}, {}, cfg);
  const Workload w = make_workload(net, 150, 17);
  submit_all(a1, w, 1.0);
  submit_all(a4, w, 1.0);
  a1.run();
  a4.run();
  for (std::size_t i = 0; i < w.from.size(); ++i) {
    EXPECT_EQ(a1.lookups()[i].hops, a4.lookups()[i].hops) << i;
    EXPECT_EQ(a1.lookups()[i].ok, a4.lookups()[i].ok) << i;
  }
  EXPECT_GT(a4.totals().sent, a1.totals().sent);
}

TEST(MessageSim, TimeoutRetryAccountingUnderCrashes) {
  // 30% of the network dead from t=0: probes into the dead set expire and
  // retry up the backoff ladder, then fall back to the next candidate.
  const auto net = small_net(300, 3, 2005);
  const auto links = build_crescendo(net);
  FaultPlan timed;
  const FaultPlan kill = FaultPlan::fail_fraction(net.size(), 0.3, 99);
  for (const FaultEvent& fe : kill.events()) timed.crash(fe.node, 0);

  MessageSimConfig cfg;
  cfg.timeout_ms = 4.0;  // short ladder: the test stays fast
  MessageSimulator sim(net, links, {}, {}, cfg);
  SimSinks sinks;
  sinks.fault_plan = &timed;
  sim.attach(sinks);

  // Submit from live sources only (a dead source fails immediately).
  Rng rng(23);
  int submitted = 0;
  while (submitted < 250) {
    const auto from = static_cast<std::uint32_t>(rng.uniform(net.size()));
    bool dead = false;
    for (const FaultEvent& fe : timed.events()) dead |= fe.node == from;
    if (dead) continue;
    sim.submit(from, net.space().wrap(rng()),
               0.5 * static_cast<double>(submitted++));
  }
  sim.run();

  EXPECT_EQ(sim.live_nodes(), net.size() - timed.events().size());
  EXPECT_GT(sim.totals().timeouts, 0u);
  EXPECT_GE(sim.totals().timeouts, sim.totals().retries);
  std::uint64_t timeouts = 0, retries = 0, failures = 0;
  for (const auto& lookup : sim.lookups()) {
    // Every submitted lookup completes, dead hops notwithstanding.
    EXPECT_GE(lookup.completed_ms, 0.0);
    EXPECT_GE(lookup.timeouts, lookup.retries);
    timeouts += static_cast<std::uint64_t>(lookup.timeouts);
    retries += static_cast<std::uint64_t>(lookup.retries);
    failures += !lookup.ok;
  }
  EXPECT_EQ(timeouts, sim.totals().timeouts);
  EXPECT_EQ(retries, sim.totals().retries);
  EXPECT_EQ(failures, sim.totals().failures);
  // Retries only spend budget on candidates that eventually get marked
  // failed or answered; each timeout is either retried or a final strike.
  EXPECT_LT(failures, 250u) << "every lookup failed under a 30% crash";
}

TEST(MessageSim, LinkDropsRecoverViaRetries) {
  const auto net = small_net(200, 2, 2006);
  const auto links = build_crescendo(net);
  FaultPlan plan;
  plan.set_drop(0.2, 77);
  MessageSimConfig cfg;
  cfg.timeout_ms = 4.0;
  MessageSimulator sim(net, links, {}, {}, cfg);
  SimSinks sinks;
  sinks.fault_plan = &plan;
  sim.attach(sinks);
  const Workload w = make_workload(net, 200, 29);
  submit_all(sim, w, 0.5);
  sim.run();
  EXPECT_GT(sim.totals().link_drops, 0u);
  EXPECT_GT(sim.totals().retries, 0u);
  int ok = 0;
  for (const auto& lookup : sim.lookups()) ok += lookup.ok;
  // 20% per-leg drops with a 3-deep retry ladder and 8 fallback
  // candidates: nearly everything still resolves.
  EXPECT_GE(ok, 190) << ok << "/200 ok";
}

TEST(MessageSim, BoundedInboxDropsAndRecovers) {
  // Everyone asks the same key at the same instant: the owner's inbox
  // (capacity 2) overflows, the overflow recovers via sender timeouts.
  const auto net = small_net(64, 1, 2007);
  const auto links = build_crescendo(net);
  MessageSimConfig cfg;
  cfg.inbox_capacity = 2;
  cfg.service_ms = 1.0;
  cfg.timeout_ms = 16.0;
  MessageSimulator sim(net, links, {}, {}, cfg);
  const NodeId hot_key = net.id(13);
  for (std::uint32_t i = 0; i < 64; ++i) sim.submit(i, hot_key, 0.0);
  sim.run();
  EXPECT_GT(sim.totals().inbox_drops, 0u);
  std::uint32_t deepest = 0;
  for (const auto d : sim.max_queue_depth()) deepest = std::max(deepest, d);
  EXPECT_LE(deepest, 2u) << "inbox bound not enforced";
  for (const auto& lookup : sim.lookups()) {
    EXPECT_GE(lookup.completed_ms, 0.0);
  }
}

TEST(MessageSim, SinksFeedLoadAndTimeseries) {
  const auto net = small_net(200, 3, 2008);
  const auto links = build_crescendo(net);
  MessageSimulator sim(net, links);
  telemetry::LoadAccountant load(net.domains(), net.ids());
  telemetry::TimeSeriesRecorder series(5.0);
  SimSinks sinks;
  sinks.load = &load;
  sinks.timeseries = &series;
  sim.attach(sinks);
  const Workload w = make_workload(net, 120, 31);
  submit_all(sim, w, 0.5);
  sim.run();
  // Every completed lookup's frontier path lands in the accountant...
  EXPECT_EQ(load.queries(), 120u);
  EXPECT_EQ(load.ok(), 120u);
  // ...and the recorder sees every submission, completion, and message.
  std::uint64_t issued = 0, completed = 0;
  for (const auto& win : series.windows()) {
    issued += win.issued;
    completed += win.completed;
  }
  EXPECT_EQ(issued, 120u);
  EXPECT_EQ(completed, 120u);
}

TEST(MessageSim, ValidatesConfigAndInputs) {
  const auto net = small_net(32, 1, 2009);
  const auto links = build_crescendo(net);
  MessageSimConfig cfg;
  cfg.alpha = 0;
  EXPECT_THROW(MessageSimulator(net, links, {}, {}, cfg),
               std::invalid_argument);
  cfg = {};
  cfg.alpha = kMaxStepCandidates + 1;
  EXPECT_THROW(MessageSimulator(net, links, {}, {}, cfg),
               std::invalid_argument);
  cfg = {};
  cfg.service_ms = 0;
  EXPECT_THROW(MessageSimulator(net, links, {}, {}, cfg),
               std::invalid_argument);
  cfg = {};
  cfg.inbox_capacity = 0;
  EXPECT_THROW(MessageSimulator(net, links, {}, {}, cfg),
               std::invalid_argument);
  LinkTable unfinalized(net.size());
  EXPECT_THROW(MessageSimulator(net, unfinalized), std::invalid_argument);
  MessageSimulator sim(net, links);
  EXPECT_THROW(sim.submit(99, 0, 0.0), std::out_of_range);
}

TEST(MessageSim, ByteIdenticalAtAnyThreadCount) {
  // The engine is serial and heap-ordered by (time, seq); the process-wide
  // thread knob must not leak into any number it produces — the contract
  // behind ctest's bench_query_determinism_congestion.
  const auto net = small_net(256, 3, 2010);
  const auto links = build_crescendo(net);
  FaultPlan plan = FaultPlan::fail_fraction(net.size(), 0.2, 55);
  plan.set_drop(0.05, 56);

  std::string baseline;
  for (const int threads : {1, 2, 7}) {
    set_parallel_threads(threads);
    MessageSimConfig cfg;
    cfg.alpha = 2;
    cfg.timeout_ms = 4.0;
    MessageSimulator sim(net, links, {}, {}, cfg);
    SimSinks sinks;
    sinks.fault_plan = &plan;
    sim.attach(sinks);
    const Workload w = make_workload(net, 300, 37);
    submit_all(sim, w, 0.25);
    sim.run();
    const std::string fp = fingerprint(sim);
    if (baseline.empty()) {
      baseline = fp;
      EXPECT_GT(sim.totals().timeouts, 0u);  // the run exercises faults
    } else {
      EXPECT_EQ(fp, baseline) << "report differs at --threads=" << threads;
    }
  }
  set_parallel_threads(0);
}

}  // namespace
}  // namespace canon
