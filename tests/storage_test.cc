// Tests for hierarchical storage, access control, pointer indirection and
// proxy caching (Section 4).
#include <gtest/gtest.h>

#include "canon/crescendo.h"
#include "common/rng.h"
#include "overlay/population.h"
#include "storage/hierarchical_store.h"

namespace canon {
namespace {

struct StoreFixture : ::testing::Test {
  StoreFixture() : rng(601) {
    PopulationSpec spec;
    spec.node_count = 500;
    spec.hierarchy.levels = 3;
    spec.hierarchy.fanout = 4;
    net = std::make_unique<OverlayNetwork>(make_population(spec, rng));
    links = std::make_unique<LinkTable>(build_crescendo(*net));
  }

  std::uint32_t random_node() {
    return static_cast<std::uint32_t>(rng.uniform(net->size()));
  }

  Rng rng;
  std::unique_ptr<OverlayNetwork> net;
  std::unique_ptr<LinkTable> links;
};

TEST_F(StoreFixture, GlobalPutGetRoundTrip) {
  HierarchicalStore store(*net, *links);
  for (int t = 0; t < 50; ++t) {
    const auto origin = random_node();
    const NodeId key = net->space().wrap(rng());
    store.put(origin, key, "v" + std::to_string(t), 0, 0);
    const auto got = store.get(random_node(), key);
    EXPECT_EQ(got.source, AnswerSource::kOwner);
    EXPECT_EQ(got.value, "v" + std::to_string(t));
  }
  EXPECT_EQ(store.stored_pairs(), 50u);
  EXPECT_EQ(store.pointer_entries(), 0u);
}

TEST_F(StoreFixture, GlobalContentStoredAtGlobalResponsible) {
  HierarchicalStore store(*net, *links);
  const NodeId key = net->space().wrap(rng());
  const auto holder = store.put(random_node(), key, "x", 0, 0);
  EXPECT_EQ(holder, net->responsible(key));
}

TEST_F(StoreFixture, DomainStorageStaysInsideDomain) {
  HierarchicalStore store(*net, *links);
  for (int t = 0; t < 50; ++t) {
    const auto origin = random_node();
    const int depth = net->domains().node_depth(origin);
    if (depth < 2) continue;
    const NodeId key = net->space().wrap(rng());
    const auto holder = store.put(origin, key, "local", 2, 2);
    // The holder lies in the origin's level-2 domain.
    EXPECT_GE(net->lca_level(origin, holder), 2);
  }
}

TEST_F(StoreFixture, AccessControlHidesLocalContent) {
  HierarchicalStore store(*net, *links);
  // Find an origin with at least one node outside its level-1 domain.
  const auto origin = random_node();
  const NodeId key = net->space().wrap(rng());
  store.put(origin, key, "secret", 1, 1);
  int outsiders = 0;
  int insiders = 0;
  for (std::uint32_t probe = 0;
       probe < net->size() && (outsiders < 20 || insiders < 20); ++probe) {
    const bool inside = net->lca_level(probe, origin) >= 1;
    if ((inside && insiders >= 20) || (!inside && outsiders >= 20)) continue;
    const auto got = store.get(probe, key);
    if (inside) {
      // Same level-1 domain: must see the content.
      EXPECT_NE(got.source, AnswerSource::kNotFound) << "probe " << probe;
      ++insiders;
    } else {
      EXPECT_EQ(got.source, AnswerSource::kNotFound) << "probe " << probe;
      ++outsiders;
    }
  }
  EXPECT_GT(outsiders, 0);
  EXPECT_GT(insiders, 0);
}

TEST_F(StoreFixture, LocalQueriesNeverLeaveTheStorageDomain) {
  // Section 4.1: "a query for content stored locally in a domain never
  // leaves the domain."
  HierarchicalStore store(*net, *links);
  int checked = 0;
  for (int t = 0; t < 200 && checked < 50; ++t) {
    const auto origin = random_node();
    if (net->domains().node_depth(origin) < 1) continue;
    const NodeId key = net->space().wrap(rng());
    store.put(origin, key, "near", 1, 1);
    // Query from another node of the same level-1 domain.
    const int domain = net->domains().domain_of(origin, 1);
    const RingView ring = net->domain_ring(domain);
    const auto querier = ring.at(rng.uniform(ring.size()));
    const auto got = store.get(querier, key);
    ASSERT_NE(got.source, AnswerSource::kNotFound);
    for (const auto hop : got.route.path) {
      EXPECT_GE(net->lca_level(hop, origin), 1)
          << "query escaped the storage domain";
    }
    ++checked;
  }
  EXPECT_GE(checked, 30);
}

TEST_F(StoreFixture, PointerMakesLocalContentGloballyVisible) {
  HierarchicalStore store(*net, *links);
  int via_pointer = 0;
  for (int t = 0; t < 60; ++t) {
    const auto origin = random_node();
    if (net->domains().node_depth(origin) < 1) continue;
    const NodeId key = net->space().wrap(rng());
    // Stored in the level-1 domain, accessible globally.
    store.put(origin, key, "pointed", 1, 0);
    // A node outside the storage domain must still find it.
    std::uint32_t outsider = random_node();
    int guard = 0;
    while (net->lca_level(outsider, origin) >= 1 && guard++ < 1000) {
      outsider = random_node();
    }
    const auto got = store.get(outsider, key);
    EXPECT_NE(got.source, AnswerSource::kNotFound);
    EXPECT_EQ(got.value, "pointed");
    via_pointer += (got.source == AnswerSource::kPointer);
  }
  EXPECT_GT(via_pointer, 0);
  EXPECT_GT(store.pointer_entries(), 0u);
}

TEST_F(StoreFixture, EraseRemovesContentAndPointers) {
  HierarchicalStore store(*net, *links);
  const auto origin = random_node();
  const NodeId key = net->space().wrap(rng());
  const int depth = std::min(1, net->domains().node_depth(origin));
  store.put(origin, key, "gone", depth, 0);
  EXPECT_TRUE(store.erase(origin, key, depth, 0));
  EXPECT_EQ(store.get(origin, key).source, AnswerSource::kNotFound);
  EXPECT_EQ(store.stored_pairs(), 0u);
  EXPECT_EQ(store.pointer_entries(), 0u);
  EXPECT_FALSE(store.erase(origin, key, depth, 0));
}

TEST_F(StoreFixture, PutValidatesLevels) {
  HierarchicalStore store(*net, *links);
  const auto origin = random_node();
  EXPECT_THROW(store.put(origin, 1, "x", 0, 1), std::invalid_argument);
  EXPECT_THROW(store.put(origin, 1, "x", 99, 0), std::invalid_argument);
}

TEST_F(StoreFixture, RepeatQueriesHitProxyCaches) {
  HierarchicalStore store(*net, *links, /*cache_capacity=*/64);
  const auto origin = random_node();
  const NodeId key = net->space().wrap(rng());
  store.put(origin, key, "popular", 0, 0);

  // Many nodes of one deep domain query the same key; later queries should
  // be served from a proxy cache inside (or near) their domain.
  const int domain =
      net->domains().domain_of(origin, std::min(
          1, net->domains().node_depth(origin)));
  const RingView ring = net->domain_ring(domain);
  int cache_hits = 0;
  Summary first_hops;
  Summary later_hops;
  for (std::size_t i = 0; i < std::min<std::size_t>(ring.size(), 40); ++i) {
    const auto got = store.get(ring.at(i), key);
    EXPECT_NE(got.source, AnswerSource::kNotFound);
    if (got.source == AnswerSource::kCache) ++cache_hits;
    (i == 0 ? first_hops : later_hops).add(got.route.hops());
  }
  EXPECT_GT(cache_hits, 0);
}


TEST_F(StoreFixture, ReplicationPlacesCopiesAtPredecessors) {
  HierarchicalStore store(*net, *links);
  const auto origin = random_node();
  const NodeId key = net->space().wrap(rng());
  store.put(origin, key, "replicated", 0, 0, /*replication=*/3);
  EXPECT_EQ(store.stored_pairs(), 3u);
  // Erase removes every replica.
  EXPECT_TRUE(store.erase(origin, key, 0, 0));
  EXPECT_EQ(store.stored_pairs(), 0u);
}

TEST_F(StoreFixture, ReplicatedContentSurvivesHolderFailure) {
  HierarchicalStore replicated(*net, *links);
  HierarchicalStore lone(*net, *links);
  const auto origin = random_node();
  const NodeId key = net->space().wrap(rng());
  const auto holder = replicated.put(origin, key, "safe", 0, 0, 3);
  lone.put(origin, key, "fragile", 0, 0, 1);

  FailureSet failures(net->size());
  failures.kill(holder);
  std::uint32_t querier = random_node();
  while (querier == holder) querier = random_node();

  const auto saved = replicated.get_resilient(querier, key, failures);
  EXPECT_EQ(saved.source, AnswerSource::kOwner);
  EXPECT_EQ(saved.value, "safe");
  EXPECT_NE(saved.served_by, holder);

  const auto lost = lone.get_resilient(querier, key, failures);
  EXPECT_EQ(lost.source, AnswerSource::kNotFound);
}

TEST_F(StoreFixture, GetResilientMatchesGetWithoutFailures) {
  HierarchicalStore store(*net, *links);
  const FailureSet none(net->size());
  for (int t = 0; t < 30; ++t) {
    const auto origin = random_node();
    const NodeId key = net->space().wrap(rng());
    store.put(origin, key, "v" + std::to_string(t), 0, 0);
    const auto a = store.get(random_node(), key);
    const auto b = store.get_resilient(random_node(), key, none);
    EXPECT_EQ(a.value, b.value);
    EXPECT_NE(b.source, AnswerSource::kNotFound);
  }
}

TEST_F(StoreFixture, PutRejectsBadReplication) {
  HierarchicalStore store(*net, *links);
  EXPECT_THROW(store.put(0, 1, "x", 0, 0, 0), std::invalid_argument);
}

TEST(NodeCache, LevelAwareEvictsDeepestFirst) {
  NodeCache cache(2, CachePolicy::kLevelAware);
  cache.put(1, "a", 1);
  cache.put(2, "b", 3);
  cache.put(3, "c", 2);  // evicts key 2 (level 3, deepest)
  EXPECT_TRUE(cache.get(1).has_value());
  EXPECT_FALSE(cache.get(2).has_value());
  EXPECT_TRUE(cache.get(3).has_value());
}

TEST(NodeCache, LruEvictsOldest) {
  NodeCache cache(2, CachePolicy::kLru);
  cache.put(1, "a", 1);
  cache.put(2, "b", 1);
  EXPECT_TRUE(cache.get(1).has_value());  // refresh key 1
  cache.put(3, "c", 1);                   // evicts key 2
  EXPECT_TRUE(cache.get(1).has_value());
  EXPECT_FALSE(cache.get(2).has_value());
  EXPECT_TRUE(cache.get(3).has_value());
}

TEST(NodeCache, KeepsSmallerLevelOnRefresh) {
  NodeCache cache(4, CachePolicy::kLevelAware);
  cache.put(1, "a", 3);
  cache.put(1, "a", 1);
  EXPECT_EQ(cache.get(1)->level, 1);
  cache.put(1, "a", 2);
  EXPECT_EQ(cache.get(1)->level, 1);
}

TEST(NodeCache, ZeroCapacityStoresNothing) {
  NodeCache cache(0, CachePolicy::kLru);
  cache.put(1, "a", 0);
  EXPECT_FALSE(cache.get(1).has_value());
}


TEST_F(StoreFixture, GetManyCollectsValuesAlongThePath) {
  HierarchicalStore store(*net, *links);
  // The same key stored at several scopes by nodes of one deep domain.
  const auto origin = random_node();
  if (net->domains().node_depth(origin) < 2) GTEST_SKIP();
  const NodeId key = net->space().wrap(rng());
  store.put(origin, key, "lab-copy", 2, 2);
  store.put(origin, key, "dept-copy", 1, 1);
  store.put(origin, key, "global-copy", 0, 0);

  // A query from inside the lab sees all three (stopping when it has
  // enough), in locality order.
  const auto all = store.get_many(origin, key, 10);
  EXPECT_EQ(all.values.size(), 3u);
  const auto two = store.get_many(origin, key, 2);
  EXPECT_EQ(two.values.size(), 2u);
  // Asking for fewer values walks no farther than asking for more.
  EXPECT_LE(two.route.path.size(), all.route.path.size());

  // An outsider sees only the global copy.
  std::uint32_t outsider = random_node();
  int guard = 0;
  while (net->lca_level(outsider, origin) >= 1 && guard++ < 1000) {
    outsider = random_node();
  }
  const auto theirs = store.get_many(outsider, key, 10);
  ASSERT_EQ(theirs.values.size(), 1u);
  EXPECT_EQ(theirs.values[0], "global-copy");
}

TEST_F(StoreFixture, GetManyEmptyForUnknownKey) {
  HierarchicalStore store(*net, *links);
  const auto result = store.get_many(random_node(), 12345, 5);
  EXPECT_TRUE(result.values.empty());
  EXPECT_FALSE(result.route.ok);
}

}  // namespace
}  // namespace canon
