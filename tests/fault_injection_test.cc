// The resilience-engine contracts, pinned per family through the registry:
//
//   1. Zero cost when healthy: run_resilient with an empty FaultPlan is
//      field- and per-query-identical to the plain batch engine.
//   2. Graceful degradation: success rates are monotone non-increasing in
//      the kill fraction (fail_fraction's kill sets are nested).
//   3. Thread invariance: resilient batches — faults, drops and all — are
//      identical at every --threads.
//   4. Journaled faults: materialize() records every crash with strict
//      sequence numbers, and the engine journals before routing.
//   5. Drop-retry: transient drops cost retries, not correctness, within
//      the per-hop retry budget.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "overlay/family_registry.h"
#include "overlay/population.h"
#include "overlay/query_engine.h"
#include "telemetry/journal.h"

namespace canon {
namespace {

constexpr std::uint64_t kSeed = 20260806;

/// Restores the default thread count even if an assertion bails out early.
struct ThreadGuard {
  ~ThreadGuard() { set_parallel_threads(0); }
};

OverlayNetwork make_net(std::size_t n = 256) {
  PopulationSpec spec;
  spec.node_count = n;
  spec.hierarchy.levels = 3;
  spec.hierarchy.fanout = 4;
  Rng rng(kSeed);
  return make_population(spec, rng);
}

void expect_same_base(const QueryStats& plain, const ResilientStats& res,
                      std::string_view family) {
  EXPECT_EQ(res.base.queries, plain.queries) << family;
  EXPECT_EQ(res.base.failures, plain.failures) << family;
  EXPECT_EQ(res.base.total_hops, plain.total_hops) << family;
  EXPECT_EQ(res.base.hops.count(), plain.hops.count()) << family;
  EXPECT_EQ(res.base.hops.mean(), plain.hops.mean()) << family;
  EXPECT_EQ(res.skipped_dead_source, 0u) << family;
  EXPECT_EQ(res.retries, 0u) << family;
  EXPECT_EQ(res.fallback_hops, 0u) << family;
}

TEST(FaultInjection, EmptyPlanMatchesPlainEngineEveryFamily) {
  const auto net = make_net();
  const QueryEngine engine(net);
  const auto queries = uniform_workload(net, 400, Rng(kSeed).fork(7));
  const FaultPlan empty;
  for (const auto& entry : registry::families()) {
    const LinkTable links = registry::build_family(net, entry.name, kSeed);
    const auto router = entry.make_router(net, links);
    std::vector<RouteProbe> plain_probes;
    std::vector<RouteProbe> res_probes;
    const QueryStats plain = router.run(engine, queries, &plain_probes);
    const ResilientStats res =
        router.run_resilient(engine, queries, empty, &res_probes);
    expect_same_base(plain, res, entry.name);
    EXPECT_EQ(res_probes, plain_probes) << entry.name;
  }
}

TEST(FaultInjection, SuccessMonotoneInKillFractionEveryFamily) {
  const auto net = make_net();
  const QueryEngine engine(net);
  const auto queries = uniform_workload(net, 400, Rng(kSeed).fork(7));
  for (const auto& entry : registry::families()) {
    const LinkTable links = registry::build_family(net, entry.name, kSeed);
    const auto router = entry.make_router(net, links);
    double prev = 2.0;
    for (const double fraction : {0.0, 0.1, 0.3, 0.5}) {
      const FaultPlan plan =
          FaultPlan::fail_fraction(net.size(), fraction, kSeed);
      const ResilientStats st = router.run_resilient(engine, queries, plan);
      // Non-increasing up to a small slack: a deeper kill set also removes
      // sources (their queries leave the attempted pool) and reassigns
      // live responsibility, so individual lookups can flip to success
      // even though the population degrades.
      EXPECT_LE(st.success_rate(), prev + 0.02)
          << entry.name << " at fraction " << fraction;
      if (fraction == 0.0) {
        EXPECT_EQ(st.success_rate(), 1.0) << entry.name;
      }
      prev = st.success_rate();
    }
  }
}

TEST(FaultInjection, ResilientBatchesAreThreadInvariant) {
  const auto net = make_net();
  const QueryEngine engine(net);
  const auto queries = uniform_workload(net, 700, Rng(kSeed).fork(7));
  FaultPlan plan = FaultPlan::fail_fraction(net.size(), 0.3, kSeed);
  plan.set_drop(0.05);
  ThreadGuard guard;
  for (const auto& entry : registry::families()) {
    const LinkTable links = registry::build_family(net, entry.name, kSeed);
    const auto router = entry.make_router(net, links);
    set_parallel_threads(1);
    std::vector<RouteProbe> base_probes;
    const ResilientStats base =
        router.run_resilient(engine, queries, plan, &base_probes);
    for (const int threads : {2, 7}) {
      set_parallel_threads(threads);
      std::vector<RouteProbe> probes;
      const ResilientStats st =
          router.run_resilient(engine, queries, plan, &probes);
      EXPECT_EQ(probes, base_probes)
          << entry.name << " at threads=" << threads;
      EXPECT_EQ(st.base.queries, base.base.queries) << entry.name;
      EXPECT_EQ(st.base.failures, base.base.failures) << entry.name;
      EXPECT_EQ(st.base.total_hops, base.base.total_hops) << entry.name;
      EXPECT_EQ(st.skipped_dead_source, base.skipped_dead_source)
          << entry.name;
      EXPECT_EQ(st.retries, base.retries) << entry.name;
      EXPECT_EQ(st.fallback_hops, base.fallback_hops) << entry.name;
    }
  }
}

TEST(FaultInjection, MaterializeJournalsEveryCrashWithStrictSeq) {
  const auto net = make_net();
  const FaultPlan plan = FaultPlan::fail_fraction(net.size(), 0.3, kSeed);
  std::stringstream out;
  telemetry::EventJournal journal(out);
  const FailureSet dead = plan.materialize(net, &journal);
  EXPECT_GT(dead.dead_count(), 0u);
  // read_journal itself throws unless seq is exactly 0,1,2,...
  const auto events = telemetry::read_journal(out);
  ASSERT_EQ(events.size(), dead.dead_count());
  for (const auto& e : events) {
    EXPECT_EQ(e.get("type")->as_string(), "crash");
    const auto node = static_cast<std::uint32_t>(e.get("node")->as_int());
    EXPECT_TRUE(dead.dead(node));
    EXPECT_EQ(static_cast<std::uint64_t>(e.get("id")->as_int()),
              net.id(node));
    ASSERT_NE(e.get("at"), nullptr);
  }
}

TEST(FaultInjection, EngineJournalsCrashesBeforeRouting) {
  const auto net = make_net();
  QueryEngine engine(net);
  std::stringstream out;
  telemetry::EventJournal journal(out);
  engine.set_journal(&journal);
  const auto queries = uniform_workload(net, 50, Rng(kSeed).fork(7));
  const LinkTable links = registry::build_family(net, "crescendo", kSeed);
  const auto router = registry::family("crescendo").make_router(net, links);
  FaultPlan plan;
  plan.crash(3);
  plan.crash(17, /*at=*/5);
  plan.revive(3, /*at=*/9);
  router.run_resilient(engine, queries, plan);
  const auto events = telemetry::read_journal(out);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].get("type")->as_string(), "crash");
  EXPECT_EQ(events[1].get("type")->as_string(), "crash");
  EXPECT_EQ(events[2].get("type")->as_string(), "revive");
  EXPECT_EQ(events[2].get("node")->as_int(), 3);
}

TEST(FaultInjection, DropsCostRetriesNotCorrectness) {
  const auto net = make_net();
  const QueryEngine engine(net);
  const auto queries = uniform_workload(net, 400, Rng(kSeed).fork(7));
  const LinkTable links = registry::build_family(net, "crescendo", kSeed);
  const auto router = registry::family("crescendo").make_router(net, links);
  FaultPlan plan;  // drops only, nobody dead
  plan.set_drop(0.05);
  const ResilientStats st = router.run_resilient(engine, queries, plan);
  EXPECT_GT(st.retries, 0u);
  EXPECT_EQ(st.skipped_dead_source, 0u);
  // Mid-route drops are retried on alternate candidates, but a dropped
  // candidate stays banned for the hop, so a drop on a hop whose only
  // viable candidate is the destination can still lose the lookup: loss
  // stays well under the raw drop rate, not at zero.
  EXPECT_GE(st.success_rate(), 1.0 - 0.05);
  EXPECT_LT(st.base.failures, st.base.queries / 10);
}

TEST(FaultInjection, NestedKillSetsAreActuallyNested) {
  const auto net = make_net();
  const FailureSet d10 =
      FaultPlan::fail_fraction(net.size(), 0.1, kSeed).materialize(net);
  const FailureSet d30 =
      FaultPlan::fail_fraction(net.size(), 0.3, kSeed).materialize(net);
  EXPECT_GT(d30.dead_count(), d10.dead_count());
  for (std::uint32_t i = 0; i < net.size(); ++i) {
    if (d10.dead(i)) EXPECT_TRUE(d30.dead(i)) << i;
  }
}

}  // namespace
}  // namespace canon
