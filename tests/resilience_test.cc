// Tests for failure-aware routing (leaf-set fallback) and Kademlia's
// iterative lookup.
#include <gtest/gtest.h>

#include <cmath>

#include "canon/crescendo.h"
#include "canon/kandy.h"
#include "common/rng.h"
#include "dht/chord.h"
#include "dht/iterative_lookup.h"
#include "dht/kademlia.h"
#include "overlay/population.h"
#include "overlay/resilient_routing.h"

namespace canon {
namespace {

PopulationSpec spec_of(std::size_t n, int levels) {
  PopulationSpec spec;
  spec.node_count = n;
  spec.hierarchy.levels = levels;
  spec.hierarchy.fanout = 4;
  return spec;
}

TEST(FailureSet, TracksState) {
  FailureSet f(5);
  EXPECT_FALSE(f.dead(3));
  f.kill(3);
  EXPECT_TRUE(f.dead(3));
  EXPECT_EQ(f.dead_count(), 1u);
  f.revive(3);
  EXPECT_FALSE(f.dead(3));
  EXPECT_EQ(f.dead_count(), 0u);
}

TEST(ResilientRouting, NoFailuresMatchesPlainGreedy) {
  Rng rng(901);
  const auto net = make_population(spec_of(400, 3), rng);
  const auto links = build_crescendo(net);
  const FailureSet failures(net.size());
  const RingRouter plain(net, links);
  const ResilientRingRouter resilient(net, links);
  for (int t = 0; t < 200; ++t) {
    const auto from = static_cast<std::uint32_t>(rng.uniform(net.size()));
    const NodeId key = net.space().wrap(rng());
    const Route a = plain.route(from, key);
    const Route b = resilient.route(from, key, failures);
    EXPECT_TRUE(b.ok);
    EXPECT_EQ(b.terminal(), a.terminal());
  }
}

TEST(ResilientRouting, LiveResponsibleSkipsDeadPredecessors) {
  Rng rng(902);
  const auto net = make_population(spec_of(100, 1), rng);
  const auto links = build_crescendo(net);
  FailureSet failures(net.size());
  const NodeId key = net.space().wrap(rng());
  const std::uint32_t owner = net.responsible(key);
  failures.kill(owner);
  const ResilientRingRouter router(net, links);
  const std::uint32_t fallback = router.live_responsible(key, failures);
  EXPECT_NE(fallback, owner);
  // The fallback is the next live predecessor.
  EXPECT_FALSE(failures.dead(fallback));
}

class FailureRateTest : public ::testing::TestWithParam<int> {};

TEST_P(FailureRateTest, SurvivesRandomFailures) {
  const int percent = GetParam();
  Rng rng(903 + percent);
  const auto net = make_population(spec_of(600, 3), rng);
  const auto links = build_crescendo(net);
  FailureSet failures(net.size());
  for (std::uint32_t i = 0; i < net.size(); ++i) {
    if (rng.uniform(100) < static_cast<std::uint64_t>(percent)) {
      failures.kill(i);
    }
  }
  const ResilientRingRouter router(net, links, /*leaf_set=*/8);
  int ok = 0;
  int total = 0;
  for (int t = 0; t < 300; ++t) {
    const auto from = static_cast<std::uint32_t>(rng.uniform(net.size()));
    if (failures.dead(from)) continue;
    ++total;
    const NodeId key = net.space().wrap(rng());
    const Route r = router.route(from, key, failures);
    ok += r.ok;
    // Every hop must be live.
    for (const auto hop : r.path) EXPECT_FALSE(failures.dead(hop));
  }
  // With an 8-deep leaf set, stalls need 8+ consecutive dead successors:
  // vanishingly rare at these rates.
  EXPECT_GE(ok, total * 99 / 100) << "failure rate " << percent << "%";
}

INSTANTIATE_TEST_SUITE_P(Rates, FailureRateTest,
                         ::testing::Values(5, 15, 30));

TEST(ResilientRouting, RejectsDeadSource) {
  Rng rng(904);
  const auto net = make_population(spec_of(50, 1), rng);
  const auto links = build_crescendo(net);
  FailureSet failures(net.size());
  failures.kill(0);
  const ResilientRingRouter router(net, links);
  EXPECT_THROW(router.route(0, 1, failures), std::invalid_argument);
}

TEST(IterativeLookup, FindsClosestOnKademlia) {
  Rng rng(905);
  const auto net = make_population(spec_of(500, 1), rng);
  const auto links = build_kademlia(net, BucketChoice::kClosest, rng);
  for (int t = 0; t < 200; ++t) {
    const auto from = static_cast<std::uint32_t>(rng.uniform(net.size()));
    const NodeId key = net.space().wrap(rng());
    const auto result = iterative_lookup(net, links, from, key);
    EXPECT_TRUE(result.ok);
    EXPECT_GT(result.messages, 0);
  }
}

TEST(IterativeLookup, FindsClosestOnKandyAllLevels) {
  for (const int levels : {2, 3, 5}) {
    Rng rng(906 + levels);
    const auto net = make_population(spec_of(500, levels), rng);
    const auto links = build_kandy(net, BucketChoice::kRandom, rng);
    for (int t = 0; t < 100; ++t) {
      const auto from = static_cast<std::uint32_t>(rng.uniform(net.size()));
      const NodeId key = net.space().wrap(rng());
      const auto result = iterative_lookup(net, links, from, key);
      EXPECT_TRUE(result.ok) << "levels " << levels;
    }
  }
}

TEST(IterativeLookup, MessageCountIsLogarithmic) {
  Rng rng(907);
  const auto net = make_population(spec_of(2048, 1), rng);
  const auto links = build_kademlia(net, BucketChoice::kClosest, rng);
  Summary messages;
  for (int t = 0; t < 200; ++t) {
    const auto from = static_cast<std::uint32_t>(rng.uniform(net.size()));
    const NodeId key = net.space().wrap(rng());
    messages.add(iterative_lookup(net, links, from, key).messages);
  }
  // alpha * O(log n) messages; generous bound.
  EXPECT_LE(messages.mean(), 4 * std::log2(2048.0));
}

TEST(IterativeLookup, ValidatesConfig) {
  Rng rng(908);
  const auto net = make_population(spec_of(20, 1), rng);
  const auto links = build_kademlia(net, BucketChoice::kClosest, rng);
  IterativeLookupConfig bad;
  bad.alpha = 0;
  EXPECT_THROW(iterative_lookup(net, links, 0, 1, bad),
               std::invalid_argument);
}


TEST(KademliaReplication, ExtraBucketEntriesIncreaseDegree) {
  Rng rng(909);
  const auto net = make_population(spec_of(400, 1), rng);
  Rng r1(5);
  Rng r2(5);
  const auto single = build_kademlia(net, BucketChoice::kClosest, r1, 1);
  const auto tripled = build_kademlia(net, BucketChoice::kClosest, r2, 3);
  EXPECT_GT(tripled.mean_degree(), 1.8 * single.mean_degree());
  // The primary (closest) entries are still present.
  for (std::uint32_t m = 0; m < net.size(); m += 13) {
    for (const auto v : single.neighbors(m)) {
      EXPECT_TRUE(tripled.has_link(m, v));
    }
  }
}

TEST(KademliaReplication, ImprovesLookupSurvivalUnderFailures) {
  Rng rng(910);
  const auto net = make_population(spec_of(600, 1), rng);
  Rng r1(6);
  Rng r2(6);
  const auto single = build_kademlia(net, BucketChoice::kClosest, r1, 1);
  const auto tripled = build_kademlia(net, BucketChoice::kClosest, r2, 3);
  // Kill 25% of nodes; greedy XOR routing skips dead neighbors.
  std::vector<bool> dead(net.size(), false);
  for (std::uint32_t i = 0; i < net.size(); ++i) {
    dead[i] = rng.uniform(4) == 0;
  }
  const auto survive = [&](const LinkTable& links) {
    int ok = 0;
    int total = 0;
    Rng qrng(911);
    for (int t = 0; t < 600; ++t) {
      const auto from = static_cast<std::uint32_t>(qrng.uniform(net.size()));
      if (dead[from]) continue;
      ++total;
      const NodeId key = net.space().wrap(qrng());
      // Greedy XOR over live neighbors only.
      std::uint32_t cur = from;
      for (int step = 0; step < 200; ++step) {
        std::uint32_t best = cur;
        std::uint64_t best_d = net.space().xor_distance(net.id(cur), key);
        for (const auto nb : links.neighbors(cur)) {
          if (dead[nb]) continue;
          const auto d = net.space().xor_distance(net.id(nb), key);
          if (d < best_d) {
            best_d = d;
            best = nb;
          }
        }
        if (best == cur) break;
        cur = best;
      }
      // Success: terminal is the closest LIVE node to the key.
      std::uint32_t want = from;
      std::uint64_t want_d = ~std::uint64_t{0};
      for (std::uint32_t i = 0; i < net.size(); ++i) {
        if (dead[i]) continue;
        const auto d = net.space().xor_distance(net.id(i), key);
        if (d < want_d) {
          want_d = d;
          want = i;
        }
      }
      ok += (cur == want);
    }
    return static_cast<double>(ok) / total;
  };
  const double lone = survive(single);
  const double redundant = survive(tripled);
  EXPECT_GT(redundant, lone);
  EXPECT_GT(redundant, 0.9);
}

TEST(KademliaReplication, RejectsBadFactor) {
  Rng rng(912);
  const auto net = make_population(spec_of(20, 1), rng);
  EXPECT_THROW(build_kademlia(net, BucketChoice::kClosest, rng, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace canon
