// Unit tests for the hierarchy substrate: domain paths, the domain tree
// index, and the synthetic hierarchy generators.
#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.h"
#include "hierarchy/domain_path.h"
#include "hierarchy/domain_tree.h"
#include "hierarchy/generators.h"

namespace canon {
namespace {

TEST(DomainPath, LcaDepth) {
  const DomainPath a({1, 2, 3});
  const DomainPath b({1, 2, 4});
  const DomainPath c({0, 2, 3});
  const DomainPath flat;
  EXPECT_EQ(a.lca_depth(b), 2);
  EXPECT_EQ(a.lca_depth(c), 0);
  EXPECT_EQ(a.lca_depth(a), 3);
  EXPECT_EQ(a.lca_depth(flat), 0);
  EXPECT_EQ(flat.lca_depth(flat), 0);
}

TEST(DomainPath, InDomainOf) {
  const DomainPath a({1, 2, 3});
  const DomainPath b({1, 2, 4});
  EXPECT_TRUE(a.in_domain_of(b, 0));
  EXPECT_TRUE(a.in_domain_of(b, 2));
  EXPECT_FALSE(a.in_domain_of(b, 3));
  EXPECT_FALSE(a.in_domain_of(b, -1));
  EXPECT_FALSE(a.in_domain_of(b, 4));  // deeper than either path
}

TEST(DomainPath, ToString) {
  EXPECT_EQ(DomainPath({1, 0, 7}).to_string(), "1.0.7");
  EXPECT_EQ(DomainPath{}.to_string(), "");
}

TEST(DomainTree, FlatPopulation) {
  const std::vector<DomainPath> paths(5);
  const std::vector<NodeId> ids = {30, 10, 50, 20, 40};
  const DomainTree tree(paths, ids);
  EXPECT_EQ(tree.domain_count(), 1);
  EXPECT_EQ(tree.max_depth(), 0);
  // Root members are sorted by ID: indices of ids 10,20,30,40,50.
  const auto& members = tree.domain(tree.root()).members;
  ASSERT_EQ(members.size(), 5u);
  for (std::size_t i = 1; i < members.size(); ++i) {
    EXPECT_LT(ids[members[i - 1]], ids[members[i]]);
  }
}

TEST(DomainTree, TwoLevelPartition) {
  const std::vector<DomainPath> paths = {DomainPath({0}), DomainPath({1}),
                                         DomainPath({0}), DomainPath({1}),
                                         DomainPath({0})};
  const std::vector<NodeId> ids = {5, 6, 7, 8, 9};
  const DomainTree tree(paths, ids);
  EXPECT_EQ(tree.domain_count(), 3);  // root + two children
  EXPECT_EQ(tree.max_depth(), 1);
  const auto& root = tree.domain(tree.root());
  ASSERT_EQ(root.children.size(), 2u);
  std::size_t total = 0;
  for (const int c : root.children) {
    const auto& d = tree.domain(c);
    EXPECT_EQ(d.parent, tree.root());
    EXPECT_EQ(d.depth, 1);
    total += d.members.size();
    for (std::size_t i = 1; i < d.members.size(); ++i) {
      EXPECT_LT(ids[d.members[i - 1]], ids[d.members[i]]);
    }
  }
  EXPECT_EQ(total, 5u);
}

TEST(DomainTree, DomainChainIsRootToLeaf) {
  const std::vector<DomainPath> paths = {DomainPath({2, 1}), DomainPath({2, 0}),
                                         DomainPath({3, 1})};
  const std::vector<NodeId> ids = {1, 2, 3};
  const DomainTree tree(paths, ids);
  for (std::uint32_t node = 0; node < 3; ++node) {
    const auto& chain = tree.domain_chain(node);
    ASSERT_EQ(chain.size(), 3u);
    EXPECT_EQ(chain[0], tree.root());
    for (std::size_t i = 1; i < chain.size(); ++i) {
      EXPECT_EQ(tree.domain(chain[i]).parent, chain[i - 1]);
      EXPECT_EQ(tree.domain(chain[i]).depth, static_cast<int>(i));
    }
    EXPECT_EQ(tree.node_depth(node), 2);
  }
}

TEST(DomainTree, RaggedDepthsSupported) {
  // One node lives directly under the root; others are two levels deep.
  const std::vector<DomainPath> paths = {DomainPath{}, DomainPath({0, 1}),
                                         DomainPath({0, 2})};
  const std::vector<NodeId> ids = {10, 20, 30};
  const DomainTree tree(paths, ids);
  EXPECT_EQ(tree.node_depth(tree.domain(0).members[0]), 0);
  EXPECT_EQ(tree.max_depth(), 2);
  // Every node appears in the root's member list.
  EXPECT_EQ(tree.domain(tree.root()).members.size(), 3u);
}

TEST(DomainTree, RejectsDuplicateIds) {
  const std::vector<DomainPath> paths(2);
  const std::vector<NodeId> ids = {7, 7};
  EXPECT_THROW(DomainTree(paths, ids), std::invalid_argument);
}

TEST(DomainTree, RejectsSizeMismatch) {
  EXPECT_THROW(DomainTree(std::vector<DomainPath>(2), {1}),
               std::invalid_argument);
}

TEST(DomainTree, DomainOfChecksLevel) {
  const std::vector<DomainPath> paths = {DomainPath({0})};
  const DomainTree tree(paths, {1});
  EXPECT_EQ(tree.domain_of(0, 0), tree.root());
  EXPECT_THROW(tree.domain_of(0, 5), std::out_of_range);
}

TEST(Generators, FlatHierarchy) {
  Rng rng(1);
  HierarchySpec spec;
  spec.levels = 1;
  const auto paths = generate_hierarchy(100, spec, rng);
  EXPECT_EQ(paths.size(), 100u);
  for (const auto& p : paths) EXPECT_EQ(p.depth(), 0);
}

TEST(Generators, PathLengthMatchesLevels) {
  Rng rng(2);
  for (int levels = 1; levels <= 5; ++levels) {
    HierarchySpec spec;
    spec.levels = levels;
    spec.fanout = 4;
    const auto paths = generate_hierarchy(50, spec, rng);
    for (const auto& p : paths) {
      EXPECT_EQ(p.depth(), levels - 1);
      for (int l = 0; l < p.depth(); ++l) EXPECT_LT(p.branch(l), 4);
    }
  }
}

TEST(Generators, UniformFillsAllBranches) {
  Rng rng(3);
  HierarchySpec spec;
  spec.levels = 2;
  spec.fanout = 10;
  spec.placement = Placement::kUniform;
  const auto paths = generate_hierarchy(5000, spec, rng);
  std::vector<int> counts(10, 0);
  for (const auto& p : paths) ++counts[p.branch(0)];
  for (const int c : counts) EXPECT_NEAR(c, 500, 150);
}

TEST(Generators, ZipfSkewsBranchSizes) {
  Rng rng(4);
  HierarchySpec spec;
  spec.levels = 2;
  spec.fanout = 10;
  spec.placement = Placement::kZipf;
  spec.zipf_theta = 1.25;
  const auto paths = generate_hierarchy(10000, spec, rng);
  std::vector<int> counts(10, 0);
  for (const auto& p : paths) ++counts[p.branch(0)];
  std::sort(counts.begin(), counts.end(), std::greater<>());
  // The largest branch should dominate: with theta=1.25 the top branch
  // holds ~38% of the mass.
  EXPECT_GT(counts[0], 3 * counts[4]);
  EXPECT_GT(counts[0], 2500);
}

TEST(Generators, DeterministicGivenSeed) {
  HierarchySpec spec;
  spec.levels = 3;
  Rng r1(9);
  Rng r2(9);
  const auto a = generate_hierarchy(200, spec, r1);
  const auto b = generate_hierarchy(200, spec, r2);
  EXPECT_EQ(a, b);
}

TEST(Generators, RejectsBadSpecs) {
  Rng rng(1);
  HierarchySpec bad;
  bad.levels = 0;
  EXPECT_THROW(generate_hierarchy(10, bad, rng), std::invalid_argument);
  bad.levels = 2;
  bad.fanout = 0;
  EXPECT_THROW(generate_hierarchy(10, bad, rng), std::invalid_argument);
}

}  // namespace
}  // namespace canon
