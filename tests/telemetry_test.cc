// Tests for the telemetry layer: metrics registry lookup and no-op paths,
// log-scale histogram bucket edges, JSON writer escaping and round-trip,
// the BenchReport schema, and route tracing with per-level hop breakdowns
// on a small deterministic hierarchy.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "canon/crescendo.h"
#include "overlay/event_sim.h"
#include "overlay/overlay_network.h"
#include "overlay/population.h"
#include "overlay/routing.h"
#include "telemetry/json_writer.h"
#include "telemetry/metrics.h"
#include "telemetry/report.h"
#include "telemetry/scoped_timer.h"
#include "telemetry/timeseries.h"
#include "telemetry/trace.h"
#include "telemetry/trace_export.h"

namespace canon {
namespace {

using telemetry::JsonValue;
using telemetry::LatencyHistogram;
using telemetry::MetricsRegistry;

/// Restores the previously installed registry on scope exit so tests
/// cannot leak a registry into each other.
class RegistryGuard {
 public:
  explicit RegistryGuard(MetricsRegistry* r)
      : prev_(telemetry::install_registry(r)) {}
  ~RegistryGuard() { telemetry::install_registry(prev_); }

 private:
  MetricsRegistry* prev_;
};

// ---------------------------------------------------------------- registry

TEST(MetricsRegistry, NoRegistryMeansNullInstruments) {
  ASSERT_EQ(telemetry::registry(), nullptr);
  EXPECT_EQ(telemetry::maybe_counter("x"), nullptr);
  EXPECT_EQ(telemetry::maybe_gauge("x"), nullptr);
  EXPECT_EQ(telemetry::maybe_histogram("x"), nullptr);
}

TEST(MetricsRegistry, LookupIsStableAndNamed) {
  MetricsRegistry reg;
  RegistryGuard guard(&reg);
  telemetry::Counter* c = telemetry::maybe_counter("hops");
  ASSERT_NE(c, nullptr);
  c->inc();
  c->inc(4);
  // Same name resolves to the same instrument.
  EXPECT_EQ(telemetry::maybe_counter("hops"), c);
  EXPECT_EQ(reg.counter("hops").value(), 5u);
  // Distinct names are distinct instruments.
  EXPECT_NE(telemetry::maybe_counter("other"), c);

  reg.gauge("size").set(42.5);
  EXPECT_DOUBLE_EQ(reg.gauge("size").value(), 42.5);
  EXPECT_EQ(reg.counters().size(), 2u);
  EXPECT_EQ(reg.gauges().size(), 1u);
}

TEST(MetricsRegistry, InstallReturnsPrevious) {
  MetricsRegistry a;
  MetricsRegistry b;
  RegistryGuard guard(&a);
  EXPECT_EQ(telemetry::install_registry(&b), &a);
  EXPECT_EQ(telemetry::install_registry(&a), &b);
}

// --------------------------------------------------------------- histogram

TEST(LatencyHistogram, BucketEdges) {
  // Bucket 0 is exact zero; bucket i (i >= 1) covers [2^(i-1), 2^i).
  EXPECT_EQ(LatencyHistogram::bucket_index(0), 0);
  EXPECT_EQ(LatencyHistogram::bucket_index(1), 1);
  EXPECT_EQ(LatencyHistogram::bucket_index(2), 2);
  EXPECT_EQ(LatencyHistogram::bucket_index(3), 2);
  EXPECT_EQ(LatencyHistogram::bucket_index(4), 3);
  EXPECT_EQ(LatencyHistogram::bucket_index(1023), 10);
  EXPECT_EQ(LatencyHistogram::bucket_index(1024), 11);
  EXPECT_EQ(LatencyHistogram::bucket_index(~std::uint64_t{0}),
            LatencyHistogram::kBuckets - 1);

  EXPECT_EQ(LatencyHistogram::bucket_floor_ns(0), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_floor_ns(1), 1u);
  EXPECT_EQ(LatencyHistogram::bucket_floor_ns(11), 1024u);
  // Floors and indices agree at every edge.
  for (int i = 1; i < LatencyHistogram::kBuckets - 1; ++i) {
    const std::uint64_t floor = LatencyHistogram::bucket_floor_ns(i);
    EXPECT_EQ(LatencyHistogram::bucket_index(floor), i);
    EXPECT_EQ(LatencyHistogram::bucket_index(floor - 1), i - 1);
  }
}

TEST(LatencyHistogram, RecordAndSummarize) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean_ms(), 0);
  EXPECT_DOUBLE_EQ(h.quantile_upper_ms(0.5), 0);

  h.record_ns(1000);   // bucket 10
  h.record_ns(1000);
  h.record_ns(3000);   // bucket 12
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.bucket_count(10), 2u);
  EXPECT_EQ(h.bucket_count(12), 1u);
  EXPECT_NEAR(h.mean_ms(), 5000.0 / 3 / 1e6, 1e-12);
  EXPECT_NEAR(h.min_ms(), 1e-3, 1e-12);
  EXPECT_NEAR(h.max_ms(), 3e-3, 1e-12);
  // Median falls in bucket 10 = [512, 1024)ns; upper edge is 1024ns.
  EXPECT_NEAR(h.quantile_upper_ms(0.5), 1024.0 / 1e6, 1e-12);
  // The top quantile clamps to the observed max.
  EXPECT_NEAR(h.quantile_upper_ms(1.0), 3e-3, 1e-12);

  LatencyHistogram other;
  other.record_ns(10);
  other.merge(h);
  EXPECT_EQ(other.count(), 4u);
  EXPECT_NEAR(other.max_ms(), 3e-3, 1e-12);
  EXPECT_NEAR(other.min_ms(), 10.0 / 1e6, 1e-12);
}

TEST(ScopedTimer, RecordsIntoHistogram) {
  LatencyHistogram h;
  {
    telemetry::ScopedTimer t(&h);
    EXPECT_GE(t.elapsed_ms(), 0);
  }
  EXPECT_EQ(h.count(), 1u);

  // stop() records exactly once.
  telemetry::ScopedTimer t(&h);
  t.stop();
  t.stop();
  EXPECT_EQ(h.count(), 2u);

  // Null histogram and no registry are both silent no-ops.
  telemetry::ScopedTimer null_timer(nullptr);
  telemetry::ScopedTimer named_timer("nobody.listens");
  (void)null_timer;
  (void)named_timer;
}

// -------------------------------------------------------------------- JSON

TEST(Json, EscapingRoundTrip) {
  const std::string nasty = "quote:\" backslash:\\ newline:\n tab:\t "
                            "control:\x01 high:\xC3\xA9";
  const JsonValue v(nasty);
  const std::string text = v.dump();
  EXPECT_NE(text.find("\\\""), std::string::npos);
  EXPECT_NE(text.find("\\\\"), std::string::npos);
  EXPECT_NE(text.find("\\n"), std::string::npos);
  EXPECT_NE(text.find("\\u0001"), std::string::npos);
  EXPECT_EQ(JsonValue::parse(text).as_string(), nasty);
}

TEST(Json, NumbersAndLiterals) {
  EXPECT_EQ(JsonValue(std::int64_t{-7}).dump(), "-7");
  EXPECT_EQ(JsonValue(std::uint64_t{1} << 40).dump(), "1099511627776");
  EXPECT_EQ(JsonValue(2.0).dump(), "2");  // integral doubles stay integral
  EXPECT_EQ(JsonValue(true).dump(), "true");
  EXPECT_EQ(JsonValue().dump(), "null");
  EXPECT_NEAR(JsonValue::parse("2.5e3").as_double(), 2500.0, 1e-9);
  EXPECT_EQ(JsonValue::parse("-12").as_int(), -12);
  EXPECT_EQ(JsonValue::parse("\"\\u00e9\"").as_string(), "\xC3\xA9");
}

TEST(Json, StructureRoundTripPreservesOrderAndValues) {
  JsonValue obj = JsonValue::object();
  obj.set("zebra", JsonValue(1));
  obj.set("alpha", JsonValue("two"));
  JsonValue arr = JsonValue::array();
  arr.push_back(JsonValue(3.5));
  arr.push_back(JsonValue());
  arr.push_back(JsonValue(false));
  obj.set("list", std::move(arr));
  obj.set("zebra", JsonValue(9));  // replace keeps position

  const std::string text = obj.dump(2);
  const JsonValue back = JsonValue::parse(text);
  ASSERT_TRUE(back.is_object());
  EXPECT_EQ(back.members()[0].first, "zebra");  // insertion order kept
  EXPECT_EQ(back.members()[1].first, "alpha");
  EXPECT_EQ(back.get("zebra")->as_int(), 9);
  EXPECT_EQ(back.get("alpha")->as_string(), "two");
  ASSERT_EQ(back.get("list")->size(), 3u);
  EXPECT_DOUBLE_EQ(back.get("list")->items()[0].as_double(), 3.5);
  EXPECT_TRUE(back.get("list")->items()[1].is_null());
  EXPECT_FALSE(back.get("list")->items()[2].as_bool());
}

TEST(Json, ParseRejectsMalformedInput) {
  EXPECT_THROW(JsonValue::parse(""), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("{"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("tru"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("[1,]2"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("{} trailing"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("\"unterminated"), std::runtime_error);
}

// ------------------------------------------------------------ BenchReport

TEST(BenchReport, SchemaRoundTripThroughFile) {
  MetricsRegistry reg;
  reg.counter("router.hops").inc(123);
  reg.gauge("net.size").set(1024);
  reg.histogram("build_ms").record_ms(1.5);

  telemetry::BenchReport report("unit_test_bench", 77);
  report.set_param("nodes", JsonValue(std::uint64_t{1024}));
  report.set_param("label", JsonValue("a \"quoted\" label"));
  JsonValue row = JsonValue::object();
  row.set("x", JsonValue(1));
  report.add_row(std::move(row));
  report.merge_registry(reg);

  const std::string path = ::testing::TempDir() + "telemetry_report.json";
  report.write_file(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const JsonValue doc = JsonValue::parse(buf.str());
  std::remove(path.c_str());

  // The stable top-level schema: all four keys always present.
  ASSERT_TRUE(doc.is_object());
  ASSERT_NE(doc.get("bench"), nullptr);
  ASSERT_NE(doc.get("seed"), nullptr);
  ASSERT_NE(doc.get("params"), nullptr);
  ASSERT_NE(doc.get("metrics"), nullptr);
  ASSERT_NE(doc.get("series"), nullptr);
  EXPECT_EQ(doc.get("bench")->as_string(), "unit_test_bench");
  EXPECT_EQ(doc.get("seed")->as_int(), 77);
  EXPECT_EQ(doc.get("params")->get("nodes")->as_int(), 1024);
  EXPECT_EQ(doc.get("params")->get("label")->as_string(),
            "a \"quoted\" label");
  EXPECT_EQ(doc.get("series")->items()[0].get("x")->as_int(), 1);
  const JsonValue* metrics = doc.get("metrics");
  EXPECT_EQ(metrics->get("counters")->get("router.hops")->as_int(), 123);
  EXPECT_DOUBLE_EQ(metrics->get("gauges")->get("net.size")->as_double(), 1024);
  const JsonValue* hist = metrics->get("histograms")->get("build_ms");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->get("count")->as_int(), 1);
  EXPECT_NEAR(hist->get("mean_ms")->as_double(), 1.5, 0.5);
}

// ----------------------------------------------------------- route traces

/// Two-level hierarchy: two top-level domains with two leaf domains each.
OverlayNetwork small_hierarchy() {
  std::vector<OverlayNode> nodes;
  NodeId id = 1;
  for (std::uint16_t top = 0; top < 2; ++top) {
    for (std::uint16_t leaf = 0; leaf < 2; ++leaf) {
      for (int i = 0; i < 8; ++i) {
        nodes.push_back({id, DomainPath({top, leaf}), -1});
        id += 7;  // deterministic spread over the 8-bit space
      }
    }
  }
  return OverlayNetwork(IdSpace(8), std::move(nodes));
}

TEST(RouteTrace, RingRouterPerLevelHopsSumToTotal) {
  const auto net = small_hierarchy();
  const auto links = build_crescendo(net);
  RingRouter router(net, links);
  telemetry::RecordingTraceSink sink;
  router.set_trace(&sink);

  std::uint64_t expected_hops = 0;
  for (NodeId key = 0; key < 256; key += 5) {
    for (const std::uint32_t from : {0u, 7u, 16u, 31u}) {
      const Route r = router.route(from, key);
      ASSERT_TRUE(r.ok);
      expected_hops += static_cast<std::uint64_t>(r.hops());
    }
  }

  EXPECT_EQ(sink.total_hops(), expected_hops);
  const auto by_level = sink.hops_by_level();
  ASSERT_LE(by_level.size(), 3u);  // levels 0..2 in a depth-2 hierarchy
  std::uint64_t sum = 0;
  for (const std::uint64_t c : by_level) sum += c;
  EXPECT_EQ(sum, expected_hops);
  // A hierarchical population routes both across and within domains.
  ASSERT_GE(by_level.size(), 2u);
  EXPECT_GT(by_level[0], 0u);
  EXPECT_GT(by_level.back(), 0u);
}

TEST(RouteTrace, RecordedPathMatchesRoute) {
  const auto net = small_hierarchy();
  const auto links = build_crescendo(net);
  RingRouter router(net, links);
  telemetry::RecordingTraceSink sink;
  router.set_trace(&sink);

  const Route r = router.route(3, 200);
  ASSERT_EQ(sink.lookups().size(), 1u);
  const auto& trace = sink.lookups()[0];
  EXPECT_TRUE(trace.done);
  EXPECT_EQ(trace.ok, r.ok);
  EXPECT_EQ(trace.terminal, r.terminal());
  ASSERT_EQ(trace.hops.size(), static_cast<std::size_t>(r.hops()));
  for (std::size_t i = 0; i < trace.hops.size(); ++i) {
    EXPECT_EQ(trace.hops[i].from, r.path[i]);
    EXPECT_EQ(trace.hops[i].to, r.path[i + 1]);
    EXPECT_EQ(trace.hops[i].hop_index, static_cast<int>(i));
    EXPECT_EQ(trace.hops[i].level,
              net.lca_level(r.path[i], r.path[i + 1]));
    EXPECT_GT(trace.hops[i].candidates, 0u);
  }

  // Detaching stops event delivery.
  router.set_trace(nullptr);
  router.route(3, 100);
  EXPECT_EQ(sink.lookups().size(), 1u);
}

TEST(RouteTrace, LevelHopCounterMatchesRecordingSink) {
  const auto net = small_hierarchy();
  const auto links = build_crescendo(net);
  RingRouter router(net, links);
  telemetry::RecordingTraceSink recording;
  telemetry::LevelHopCounter counter;

  router.set_trace(&recording);
  for (NodeId key = 0; key < 256; key += 11) router.route(1, key);
  router.set_trace(&counter);
  for (NodeId key = 0; key < 256; key += 11) router.route(1, key);

  EXPECT_EQ(counter.total_hops(), recording.total_hops());
  EXPECT_EQ(counter.hops_by_level(), recording.hops_by_level());
  EXPECT_EQ(counter.lookups(), recording.lookups().size());
  EXPECT_EQ(counter.failures(), 0u);
}

TEST(RouteTrace, EventSimulatorReportsQueueingDelay) {
  const auto net = small_hierarchy();
  const auto links = build_crescendo(net);
  telemetry::RecordingTraceSink sink;
  EventSimConfig config;
  config.processing_ms = 1.0;  // force queueing at shared nodes
  EventSimulator sim(net, links, {}, config);
  sim.set_trace(&sink);
  for (int i = 0; i < 20; ++i) {
    sim.submit(static_cast<std::uint32_t>(i % net.size()),
               static_cast<NodeId>(200 - i), 0.0);
  }
  sim.run();

  ASSERT_EQ(sink.lookups().size(), 20u);
  std::uint64_t hops = 0;
  for (const auto& lookup : sim.lookups()) {
    EXPECT_TRUE(lookup.ok);
    hops += static_cast<std::uint64_t>(lookup.hops);
  }
  EXPECT_EQ(sink.total_hops(), hops);
  for (const auto& trace : sink.lookups()) {
    EXPECT_TRUE(trace.done);
    for (const auto& hop : trace.hops) {
      EXPECT_GE(hop.queue_ms, 0);
      EXPECT_GT(hop.hop_ms, 0);
    }
  }
  // 20 concurrent lookups over 32 nodes with a 1ms serial cost must queue
  // somewhere.
  EXPECT_GT(sink.mean_queue_ms(), 0);
}

TEST(RouteTrace, MetricsCountersTrackRouting) {
  MetricsRegistry reg;
  RegistryGuard guard(&reg);
  const auto net = small_hierarchy();
  const auto links = build_crescendo(net);
  const RingRouter router(net, links);  // resolves counters at construction
  const Route r = router.route(0, 99);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(reg.counter("ring_router.routes").value(), 1u);
  EXPECT_EQ(reg.counter("ring_router.hops").value(),
            static_cast<std::uint64_t>(r.hops()));
  EXPECT_EQ(reg.counter("ring_router.failures").value(), 0u);
  // build_crescendo ran inside the guard, so its phase timer recorded too.
  EXPECT_EQ(reg.histograms().at("build.crescendo_ms").count(), 1u);
}

// ------------------------------------------------------- overflow bucket

TEST(LatencyHistogram, OverflowBucketCountsInsteadOfSaturating) {
  LatencyHistogram h;
  // The largest finite bucket covers [2^(kBuckets-2), 2^(kBuckets-1)).
  const std::uint64_t top_floor =
      LatencyHistogram::bucket_floor_ns(LatencyHistogram::kBuckets - 1);
  h.record_ns(top_floor);          // last real bucket
  h.record_ns(~std::uint64_t{0});  // beyond every bucket edge
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.bucket_count(LatencyHistogram::kBuckets - 1), 1u);
  EXPECT_EQ(h.overflow_count(), 1u);
  // Overflow samples still participate in count/min/max and quantiles
  // fall through to the observed max for them.
  EXPECT_NEAR(h.max_ms(), static_cast<double>(~std::uint64_t{0}) / 1e6, 1e3);
  EXPECT_NEAR(h.quantile_upper_ms(1.0), h.max_ms(), 1e-9);

  LatencyHistogram other;
  other.record_ns(~std::uint64_t{0});
  other.merge(h);
  EXPECT_EQ(other.overflow_count(), 2u);
}

// ----------------------------------------------------------- time series

TEST(TimeSeries, WindowsRatesAndCarryForward) {
  telemetry::TimeSeriesRecorder series(100.0);
  EXPECT_THROW(telemetry::TimeSeriesRecorder(0.0), std::invalid_argument);
  EXPECT_TRUE(series.empty());
  EXPECT_EQ(series.window_index(-5.0), 0u);  // clamped
  EXPECT_EQ(series.window_index(99.9), 0u);
  EXPECT_EQ(series.window_index(100.0), 1u);

  series.live_nodes(0.0, 64);
  series.lookup_issued(10.0);
  series.lookup_issued(20.0);
  series.lookup_completed(30.0, true, 20.0);
  series.message(40.0, 5.0);
  // Window 1 is silent; window 2 sees a failure.
  series.lookup_completed(250.0, false, 230.0);

  ASSERT_EQ(series.windows().size(), 3u);
  EXPECT_EQ(series.windows()[0].issued, 2u);
  EXPECT_EQ(series.windows()[0].completed, 1u);
  EXPECT_EQ(series.windows()[0].failures, 0u);
  EXPECT_EQ(series.windows()[0].messages, 1u);
  EXPECT_EQ(series.windows()[2].failures, 1u);

  const JsonValue rows = series.to_json();
  ASSERT_EQ(rows.size(), 3u);
  const JsonValue& w0 = rows.items()[0];
  EXPECT_DOUBLE_EQ(w0.get("t_ms")->as_double(), 0.0);
  // 2 issued per 100ms window = 20/s.
  EXPECT_DOUBLE_EQ(w0.get("issued_per_s")->as_double(), 20.0);
  EXPECT_DOUBLE_EQ(w0.get("lookups_per_s")->as_double(), 10.0);
  EXPECT_DOUBLE_EQ(w0.get("mean_latency_ms")->as_double(), 20.0);
  EXPECT_DOUBLE_EQ(w0.get("mean_queue_ms")->as_double(), 5.0);
  EXPECT_DOUBLE_EQ(w0.get("live_nodes")->as_double(), 64.0);
  // The silent window carries the live-node count forward.
  EXPECT_DOUBLE_EQ(rows.items()[1].get("live_nodes")->as_double(), 64.0);
  EXPECT_DOUBLE_EQ(
      rows.items()[2].get("failures_per_s")->as_double(), 10.0);
}

// ------------------------------------------------------ span log + trace

TEST(SpanLog, ScopedTimerFeedsInstalledLog) {
  telemetry::SpanLog log;
  telemetry::SpanLog* prev = telemetry::install_span_log(&log);
  {
    telemetry::ScopedTimer t("build.test_phase_ms");
    (void)t;
  }
  { telemetry::ScopedTimer anonymous(nullptr); (void)anonymous; }
  telemetry::install_span_log(prev);
  { telemetry::ScopedTimer after("build.after_ms"); (void)after; }

  // Only the named timer that ran while the log was installed recorded.
  ASSERT_EQ(log.size(), 1u);
  const auto spans = log.snapshot();
  EXPECT_EQ(spans[0].name, "build.test_phase_ms");
  EXPECT_GE(spans[0].ts_us, 0.0);
  EXPECT_GE(spans[0].dur_us, 0.0);
}

TEST(TraceExport, AssemblesLoadableChromeTraceJson) {
  telemetry::SpanLog log;
  telemetry::SpanLog* prev = telemetry::install_span_log(&log);
  { telemetry::ScopedTimer t("build.alpha_ms"); (void)t; }
  telemetry::install_span_log(prev);

  telemetry::RecordingTraceSink sink;
  const std::uint64_t id = sink.begin_lookup(3, 42);
  telemetry::HopRecord hop;
  hop.lookup = id;
  hop.from = 3;
  hop.to = 5;
  hop.hop_index = 0;
  hop.level = 1;
  sink.on_hop(hop);
  sink.end_lookup(id, true, 5);

  telemetry::TimeSeriesRecorder series(50.0);
  series.lookup_completed(10.0, true, 4.0);
  series.live_nodes(10.0, 8);

  telemetry::TraceExporter exporter;
  exporter.set_process_name(telemetry::TraceExporter::kBuildPid,
                            "construction phases");
  exporter.add_span_log(log);
  exporter.add_lookup_traces(sink);
  exporter.add_timeseries(series);

  // Round-trip through the serializer: the document must parse and carry
  // the three standard track kinds.
  const JsonValue doc = JsonValue::parse(exporter.to_json().dump());
  EXPECT_EQ(doc.get("displayTimeUnit")->as_string(), "ms");
  const JsonValue* events = doc.get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->size(), exporter.event_count());
  bool saw_span = false, saw_hop = false, saw_counter = false,
       saw_meta = false;
  for (const JsonValue& ev : events->items()) {
    const std::string& ph = ev.get("ph")->as_string();
    if (ph == "X") {
      EXPECT_GE(ev.get("ts")->as_double(), 0.0);
      EXPECT_GE(ev.get("dur")->as_double(), 0.0);
      const std::string& name = ev.get("name")->as_string();
      saw_span = saw_span || name == "build.alpha_ms";
      saw_hop = saw_hop || name.rfind("hop ", 0) == 0;
    } else if (ph == "C") {
      saw_counter = true;
    } else if (ph == "M") {
      saw_meta = true;
    }
  }
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_hop);
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_meta);

  // write_file emits the same document, and rejects unwritable paths.
  const std::string path =
      testing::TempDir() + "/telemetry_trace_test.json";
  exporter.write_file(path);
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_NO_THROW(JsonValue::parse(buffer.str()));
  std::remove(path.c_str());
  EXPECT_THROW(exporter.write_file("/nonexistent-dir/trace.json"),
               std::runtime_error);
}

}  // namespace
}  // namespace canon
