// Resource observatory tests: the MemoryAccountant ledger (hand-checked
// charges, scope/charge lifetimes, peak semantics), the flame-tree
// reconstruction from flat spans, the RSS probes, thread invariance of an
// instrumented full pipeline at --threads {1, 2, 7}, and — the number the
// whole subsystem exists for — attributed bytes reconciling against
// measured RSS growth at scale (NDEBUG-gated like tests/scale_test.cc).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "canon/crescendo.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "overlay/population.h"
#include "overlay/query_engine.h"
#include "overlay/routing.h"
#include "telemetry/flame_export.h"
#include "telemetry/mem_stats.h"

namespace canon {
namespace {

using telemetry::MemCharge;
using telemetry::MemoryAccountant;
using telemetry::MemScope;

/// Uninstalls the accountant (and restores threads) even when an
/// assertion bails out early.
struct AccountantGuard {
  MemoryAccountant acct;
  AccountantGuard() { telemetry::install_mem_accountant(&acct); }
  ~AccountantGuard() { telemetry::install_mem_accountant(nullptr); }
};

struct ThreadGuard {
  ~ThreadGuard() { set_parallel_threads(0); }
};

TEST(MemoryAccountant, HandCheckedChargesAndPeaks) {
  MemoryAccountant a;
  EXPECT_TRUE(a.empty());
  a.account("x", 100);
  a.account("y", 50);
  a.account("x", 25);
  EXPECT_EQ(a.current_bytes(), 175u);
  EXPECT_EQ(a.peak_bytes(), 175u);
  a.release("x", 125);
  EXPECT_EQ(a.current_bytes(), 50u);
  EXPECT_EQ(a.peak_bytes(), 175u);  // peaks never lower
  a.account("y", 10);
  const auto& tags = a.tags();
  ASSERT_EQ(tags.size(), 2u);
  EXPECT_EQ(tags.at("x").current, 0u);
  EXPECT_EQ(tags.at("x").peak, 125u);
  EXPECT_EQ(tags.at("x").charges, 2u);
  EXPECT_EQ(tags.at("y").current, 60u);
  EXPECT_EQ(tags.at("y").peak, 60u);
  EXPECT_EQ(tags.at("y").charges, 2u);
}

TEST(MemoryAccountant, OverReleaseClampsWithoutCorruptingPeaks) {
  MemoryAccountant a;
  a.account("x", 100);
  a.release("x", 250);  // a charge site outliving its install window
  EXPECT_EQ(a.tags().at("x").current, 0u);
  EXPECT_EQ(a.tags().at("x").peak, 100u);
  EXPECT_EQ(a.current_bytes(), 0u);
  EXPECT_EQ(a.peak_bytes(), 100u);
}

TEST(MemoryAccountant, ProcessPeakSeesConcurrentTagsTogether) {
  // Two tags alive at once must register a combined process peak even
  // though neither tag's own peak reaches it.
  MemoryAccountant a;
  a.account("x", 100);
  a.account("y", 100);
  a.release("x", 100);
  a.release("y", 100);
  a.account("z", 150);
  EXPECT_EQ(a.peak_bytes(), 200u);
  EXPECT_EQ(a.tags().at("z").peak, 150u);
}

TEST(MemoryAccountant, ToJsonShapeMatchesLedger) {
  MemoryAccountant a;
  a.account("b_tag", 10);
  a.account("a_tag", 20);
  const telemetry::JsonValue v = a.to_json();
  EXPECT_EQ(v.get("attributed")->get("current_bytes")->as_int(), 30);
  EXPECT_EQ(v.get("attributed")->get("peak_bytes")->as_int(), 30);
  const telemetry::JsonValue* tags = v.get("tags");
  ASSERT_NE(tags, nullptr);
  // std::map ordering: report order is sorted by tag name.
  ASSERT_EQ(tags->members().size(), 2u);
  EXPECT_EQ(tags->members()[0].first, "a_tag");
  EXPECT_EQ(tags->members()[1].first, "b_tag");
  EXPECT_EQ(tags->get("a_tag")->get("charges")->as_int(), 1);
}

TEST(MemScope, ReleasesEverythingOnDestruction) {
  AccountantGuard g;
  {
    MemScope outer("outer", 100);
    EXPECT_EQ(g.acct.current_bytes(), 100u);
    {
      MemScope inner("inner");
      inner.add(40);
      inner.add(0);  // zero-byte adds never create a tag entry
      EXPECT_EQ(g.acct.current_bytes(), 140u);
    }
    EXPECT_EQ(g.acct.current_bytes(), 100u);
    outer.add(11);
    EXPECT_EQ(outer.held(), 111u);
  }
  EXPECT_EQ(g.acct.current_bytes(), 0u);
  EXPECT_EQ(g.acct.peak_bytes(), 140u);
  EXPECT_EQ(g.acct.tags().at("inner").peak, 40u);
}

TEST(MemScope, NoOpWithoutAccountant) {
  MemScope s("tag", 100);
  EXPECT_EQ(s.held(), 0u);  // nothing installed, nothing held
}

TEST(MemCharge, ResetMoveCopyAndDrop) {
  AccountantGuard g;
  MemCharge c("csr", 1000);
  EXPECT_EQ(g.acct.current_bytes(), 1000u);
  c.reset("csr", 600);  // re-charge replaces, does not stack
  EXPECT_EQ(g.acct.current_bytes(), 600u);
  // reset() drops before charging, so a shrink never spikes the peak.
  EXPECT_EQ(g.acct.tags().at("csr").peak, 1000u);

  MemCharge copied = c;  // copy owns its own charge
  EXPECT_EQ(g.acct.current_bytes(), 1200u);
  EXPECT_EQ(g.acct.tags().at("csr").peak, 1200u);
  MemCharge moved = std::move(copied);  // move transfers, no new charge
  EXPECT_EQ(g.acct.current_bytes(), 1200u);
  EXPECT_EQ(moved.held(), 600u);
  EXPECT_EQ(copied.held(), 0u);  // NOLINT(bugprone-use-after-move)

  moved.drop();
  EXPECT_EQ(g.acct.current_bytes(), 600u);
  c.drop();
  EXPECT_EQ(g.acct.current_bytes(), 0u);
}

TEST(MemCharge, DropAfterUninstallIsSafe) {
  MemCharge c;
  {
    AccountantGuard g;
    c.reset("tag", 100);
    EXPECT_EQ(c.held(), 100u);
  }
  // Accountant gone: drop() must still zero the holding without touching
  // the dead ledger (destruction-after-uninstall happens whenever a
  // structure outlives a bench row's accountant).
  c.drop();
  EXPECT_EQ(c.held(), 0u);
}

TEST(FlameTree, RebuildsNestingFromFlatSpans) {
  // root [0, 100), child a [10, 40), grandchild b [15, 20), child c
  // [50, 80) — self times: root 40, a 25, b 5, c 30.
  std::vector<telemetry::SpanRecord> spans = {
      {"c", 50, 30}, {"root", 0, 100}, {"b", 15, 5}, {"a", 10, 30}};
  const auto tree = telemetry::build_flame_tree(std::move(spans));
  ASSERT_EQ(tree.size(), 4u);
  EXPECT_EQ(tree[0].span.name, "root");
  EXPECT_EQ(tree[0].parent, -1);
  EXPECT_DOUBLE_EQ(tree[0].self_us, 40);
  const std::string collapsed = telemetry::collapse_flame_tree(tree);
  EXPECT_EQ(collapsed,
            "root 40\nroot;a 25\nroot;a;b 5\nroot;c 30\n");
  const telemetry::JsonValue table = telemetry::flame_phase_table(tree);
  ASSERT_EQ(table.items().size(), 4u);
  EXPECT_EQ(table.items()[0].get("name")->as_string(), "root");
  EXPECT_DOUBLE_EQ(table.items()[0].get("self_us")->as_double(), 40);
  EXPECT_DOUBLE_EQ(table.items()[0].get("total_us")->as_double(), 100);
}

TEST(FlameTree, SiblingsWithIdenticalNamesAggregate) {
  // Two "shard" spans under one root: the phase table merges them, the
  // collapsed output keeps one line per path with summed self time.
  std::vector<telemetry::SpanRecord> spans = {
      {"root", 0, 100}, {"shard", 5, 20}, {"shard", 30, 40}};
  const auto tree = telemetry::build_flame_tree(std::move(spans));
  const std::string collapsed = telemetry::collapse_flame_tree(tree);
  EXPECT_EQ(collapsed, "root 40\nroot;shard 60\n");
  const telemetry::JsonValue table = telemetry::flame_phase_table(tree);
  ASSERT_EQ(table.items().size(), 2u);
  EXPECT_EQ(table.items()[0].get("name")->as_string(), "shard");
  EXPECT_EQ(table.items()[0].get("count")->as_int(), 2);
  EXPECT_DOUBLE_EQ(table.items()[0].get("self_us")->as_double(), 60);
}

TEST(RssProbes, ReportPlausibleValues) {
  const double current = telemetry::current_rss_mb();
  const double peak = telemetry::peak_rss_mb();
  EXPECT_GT(current, 0.0);
  EXPECT_GT(peak, 0.0);
  // The high-water mark can never sit below the current working set by
  // more than sampling noise.
  EXPECT_GE(peak * 1.05, current);
}

#ifdef NDEBUG
constexpr std::size_t kScaleNodes = std::size_t{1} << 18;
#else
constexpr std::size_t kScaleNodes = std::size_t{1} << 14;
#endif

OverlayNetwork scale_population(std::size_t n) {
  Rng rng(42);
  PopulationSpec spec;
  spec.node_count = n;
  spec.hierarchy.levels = 3;
  spec.hierarchy.fanout = 10;
  return make_population(spec, rng);
}

/// Runs the instrumented mega-scale pipeline and returns the ledger's
/// JSON dump (the exact artifact the determinism contract covers).
std::string instrumented_pipeline_report() {
  MemoryAccountant acct;
  telemetry::install_mem_accountant(&acct);
  {
    const auto net = scale_population(kScaleNodes);
    const LinkTable links = build_crescendo_streamed(net);
    const RingRouter router(net, links);
    QueryEngine engine(net);
    const auto queries = uniform_workload(net, 5000, Rng(7));
    const QueryStats stats = engine.run(queries, router);
    EXPECT_EQ(stats.failures, 0u);
  }
  telemetry::install_mem_accountant(nullptr);
  return acct.to_json().dump();
}

TEST(ResourceReport, ByteIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  set_parallel_threads(1);
  const std::string t1 = instrumented_pipeline_report();
  set_parallel_threads(2);
  const std::string t2 = instrumented_pipeline_report();
  set_parallel_threads(7);
  const std::string t7 = instrumented_pipeline_report();
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(t1, t7);
}

TEST(ResourceReport, PipelineChargesEverySubsystemTag) {
  AccountantGuard g;
  const auto net = scale_population(kScaleNodes);
  const LinkTable links = build_crescendo_streamed(net);
  EXPECT_TRUE(links.finalized());
  for (const char* tag :
       {"overlay.soa", "hierarchy.path_pool", "hierarchy.domain_tree",
        "link_table.csr", "overlay.stream_chunks"}) {
    ASSERT_TRUE(g.acct.tags().contains(tag)) << tag;
    EXPECT_GT(g.acct.tags().at(tag).peak, 0u) << tag;
  }
  // The streamed build's staging chunks are transient: charged, then
  // fully released once scattered into the CSR.
  EXPECT_EQ(g.acct.tags().at("overlay.stream_chunks").current, 0u);
  EXPECT_GT(g.acct.tags().at("link_table.csr").current, 0u);
}

#ifdef NDEBUG
TEST(ResourceReport, AttributedBytesReconcileWithMeasuredRss) {
  // The acceptance number: at scale, the tagged subsystems must own most
  // of the real memory growth. Debug builds skip this (sanitizer shadow
  // memory and unoptimized containers break any RSS ratio).
  const double before_mb = telemetry::current_rss_mb();
  AccountantGuard g;
  const auto net = scale_population(kScaleNodes);
  const LinkTable links = build_crescendo_streamed(net);
  EXPECT_TRUE(links.finalized());
  const double after_mb = telemetry::current_rss_mb();
  const double grown_mb = after_mb - before_mb;
  // Reconcile against the ledger's *peak*: glibc rarely returns freed
  // arena pages to the kernel, so measured RSS growth reflects the
  // high-water footprint — final structures plus the transient build
  // staging the ledger saw at its peak — not the final bytes alone.
  const double attributed_mb =
      static_cast<double>(g.acct.peak_bytes()) / (1024.0 * 1024.0);
  ASSERT_GT(grown_mb, 1.0) << "population too small to measure";
  // >= 90% of the measured growth must be attributed. The ledger may
  // legitimately exceed measured growth (malloc reuses freed pages the
  // kernel never reclaimed), so only the lower bound is asserted.
  EXPECT_GE(attributed_mb, 0.9 * grown_mb)
      << "attributed " << attributed_mb << " MB of " << grown_mb
      << " MB measured growth";
}
#endif

}  // namespace
}  // namespace canon
