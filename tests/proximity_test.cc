// Tests for proximity adaptation (Section 3.6): grouping, group-based
// Chord and Crescendo construction, and the group router.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "canon/crescendo.h"
#include "canon/proximity.h"
#include "common/rng.h"
#include "overlay/population.h"
#include "topology/physical_network.h"

namespace canon {
namespace {

TransitStubConfig tiny_topology() {
  TransitStubConfig cfg;
  cfg.transit_domains = 4;
  cfg.transit_per_domain = 2;
  cfg.stub_domains_per_transit = 2;
  cfg.stubs_per_domain = 5;
  return cfg;
}

TEST(GroupedOverlay, GroupsAreContiguousAndSized) {
  Rng rng(501);
  PopulationSpec spec;
  spec.node_count = 1024;
  const auto net = make_population(spec, rng);
  const GroupedOverlay groups(net, 16);
  EXPECT_EQ(groups.prefix_bits(), 6);  // 1024/16 = 64 groups
  std::size_t total = 0;
  NodeId prev_gid = 0;
  for (std::size_t i = 0; i < groups.groups().size(); ++i) {
    const auto& g = groups.groups()[i];
    if (i > 0) {
      EXPECT_GT(g.gid, prev_gid);
    }
    prev_gid = g.gid;
    total += g.members.size();
    for (const auto m : g.members) {
      EXPECT_EQ(groups.gid_of_node(m), g.gid);
      EXPECT_EQ(groups.group_index_of(m), static_cast<int>(i));
    }
  }
  EXPECT_EQ(total, net.size());
}

TEST(GroupedOverlay, ResponsibleGroupWraps) {
  Rng rng(502);
  PopulationSpec spec;
  spec.node_count = 256;
  const auto net = make_population(spec, rng);
  const GroupedOverlay groups(net, 16);
  for (int t = 0; t < 200; ++t) {
    const NodeId key = net.space().wrap(rng());
    const int gi = groups.responsible_group(key);
    const auto& g = groups.groups()[static_cast<std::size_t>(gi)];
    // The responsible group's gid is the largest <= the key's gid, wrapping.
    EXPECT_LE(groups.group_distance(g.gid, groups.gid_of_key(key)),
              groups.group_distance(g.gid + 1, groups.gid_of_key(key)) + 1);
    const std::uint32_t r = groups.responsible(key);
    EXPECT_EQ(groups.gid_of_node(r), g.gid);
  }
}

TEST(GroupedOverlay, ResponsibleUsuallyGlobalPredecessor) {
  // Group responsibility coincides with the plain predecessor rule except
  // when the key falls below every member of its own group.
  Rng rng(503);
  PopulationSpec spec;
  spec.node_count = 2048;
  const auto net = make_population(spec, rng);
  const GroupedOverlay groups(net, 16);
  int agree = 0;
  const int kTrials = 1000;
  for (int t = 0; t < kTrials; ++t) {
    const NodeId key = net.space().wrap(rng());
    agree += (groups.responsible(key) == net.responsible(key));
  }
  EXPECT_GT(agree, kTrials * 90 / 100);
}

class ProxFixture : public ::testing::Test {
 protected:
  ProxFixture()
      : rng_(504),
        phys_(tiny_topology(), rng_),
        net_(make_physical_population(800, phys_, 32, rng_)),
        cost_(host_hop_cost(net_, phys_)),
        groups_(net_, 16) {}

  Rng rng_;
  PhysicalNetwork phys_;
  OverlayNetwork net_;
  HopCost cost_;
  GroupedOverlay groups_;
};

TEST_F(ProxFixture, ChordProxRoutesSucceed) {
  ProximityConfig cfg;
  const auto links = build_chord_prox(net_, groups_, cost_, cfg, rng_);
  const GroupRouter router(net_, groups_, links);
  for (int t = 0; t < 400; ++t) {
    const auto from = static_cast<std::uint32_t>(rng_.uniform(net_.size()));
    const NodeId key = net_.space().wrap(rng_());
    const Route r = router.route(from, key);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.terminal(), groups_.responsible(key));
  }
}

TEST_F(ProxFixture, CrescendoProxRoutesSucceed) {
  ProximityConfig cfg;
  const auto links = build_crescendo_prox(net_, groups_, cost_, cfg, rng_);
  const GroupRouter router(net_, groups_, links);
  for (int t = 0; t < 400; ++t) {
    const auto from = static_cast<std::uint32_t>(rng_.uniform(net_.size()));
    const NodeId key = net_.space().wrap(rng_());
    const Route r = router.route(from, key);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.terminal(), groups_.responsible(key));
  }
}

TEST_F(ProxFixture, GroupLinksPreferNearbyEndpoints) {
  // The latency-sampled endpoint must be no worse (on average) than a
  // random member of the same target group.
  ProximityConfig cfg;
  const auto links = build_chord_prox(net_, groups_, cost_, cfg, rng_);
  Summary chosen;
  Summary random_member;
  for (std::uint32_t m = 0; m < net_.size(); ++m) {
    for (const auto v : links.neighbors(m)) {
      if (groups_.group_index_of(v) == groups_.group_index_of(m)) continue;
      chosen.add(cost_(m, v));
      const auto& g =
          groups_.groups()[static_cast<std::size_t>(groups_.group_index_of(v))];
      random_member.add(cost_(m, g.members[rng_.uniform(g.members.size())]));
    }
  }
  EXPECT_LT(chosen.mean(), random_member.mean() * 0.9);
}

TEST_F(ProxFixture, CrescendoProxKeepsLowLevelRings) {
  // Below the top level, Crescendo (Prox.) must keep ordinary Crescendo
  // successor links (so intra-domain routing is unaffected).
  ProximityConfig cfg;
  const auto links = build_crescendo_prox(net_, groups_, cost_, cfg, rng_);
  const DomainTree& dom = net_.domains();
  for (std::uint32_t m = 0; m < net_.size(); ++m) {
    const auto& chain = dom.domain_chain(m);
    for (std::size_t level = 1; level < chain.size(); ++level) {
      const RingView ring = net_.domain_ring(chain[level]);
      if (ring.size() < 2) continue;
      const std::uint32_t succ = ring.first_at_distance(net_.id(m), 1);
      EXPECT_TRUE(links.has_link(m, succ))
          << "node " << m << " level " << level;
    }
  }
}

TEST_F(ProxFixture, ProximityReducesMeanRouteLatency) {
  // The headline effect of Section 3.6: group-based construction lowers
  // per-hop latency compared to proximity-oblivious Crescendo.
  ProximityConfig cfg;
  const auto plain = build_crescendo(net_);
  const auto prox = build_crescendo_prox(net_, groups_, cost_, cfg, rng_);
  const RingRouter plain_router(net_, plain);
  const GroupRouter prox_router(net_, groups_, prox);
  Summary plain_ms;
  Summary prox_ms;
  for (int t = 0; t < 400; ++t) {
    const auto from = static_cast<std::uint32_t>(rng_.uniform(net_.size()));
    const NodeId key = net_.space().wrap(rng_());
    const Route a = plain_router.route(from, key);
    const Route b = prox_router.route(from, key);
    ASSERT_TRUE(a.ok);
    ASSERT_TRUE(b.ok);
    plain_ms.add(path_cost(a, cost_));
    prox_ms.add(path_cost(b, cost_));
  }
  EXPECT_LT(prox_ms.mean(), plain_ms.mean());
}

}  // namespace
}  // namespace canon
