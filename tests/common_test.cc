// Unit tests for the common substrate: ID spaces, metrics, RNG, Zipf
// sampling and statistics accumulators.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/zipf.h"

namespace canon {
namespace {

TEST(IdSpace, MaskAndWrap) {
  const IdSpace s8(8);
  EXPECT_EQ(s8.bits(), 8);
  EXPECT_EQ(s8.mask(), 0xFFu);
  EXPECT_EQ(s8.wrap(0x123), 0x23u);
  EXPECT_DOUBLE_EQ(s8.size(), 256.0);

  const IdSpace s64(64);
  EXPECT_EQ(s64.mask(), ~NodeId{0});
  EXPECT_EQ(s64.wrap(~NodeId{0}), ~NodeId{0});
}

TEST(IdSpace, RejectsBadBitWidths) {
  EXPECT_THROW(IdSpace(0), std::invalid_argument);
  EXPECT_THROW(IdSpace(65), std::invalid_argument);
  EXPECT_THROW(IdSpace(-3), std::invalid_argument);
}

TEST(IdSpace, RingDistance) {
  const IdSpace s(4);  // [0, 16)
  EXPECT_EQ(s.ring_distance(3, 7), 4u);
  EXPECT_EQ(s.ring_distance(7, 3), 12u);  // wraps
  EXPECT_EQ(s.ring_distance(5, 5), 0u);
  EXPECT_EQ(s.ring_distance(15, 0), 1u);
  EXPECT_EQ(s.ring_distance(0, 15), 15u);
}

TEST(IdSpace, RingDistanceAsymmetric) {
  const IdSpace s(16);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const NodeId a = s.wrap(rng());
    const NodeId b = s.wrap(rng());
    if (a == b) continue;
    EXPECT_EQ(s.ring_distance(a, b) + s.ring_distance(b, a),
              NodeId{1} << 16);
  }
}

TEST(IdSpace, XorDistanceSymmetricAndIdentity) {
  const IdSpace s(32);
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    const NodeId a = s.wrap(rng());
    const NodeId b = s.wrap(rng());
    EXPECT_EQ(s.xor_distance(a, b), s.xor_distance(b, a));
    EXPECT_EQ(s.xor_distance(a, a), 0u);
  }
}

TEST(IdSpace, Advance) {
  const IdSpace s(4);
  EXPECT_EQ(s.advance(14, 3), 1u);
  EXPECT_EQ(s.advance(0, 15), 15u);
}

TEST(Bits, FloorCeilLog2) {
  EXPECT_EQ(floor_log2(1), 0);
  EXPECT_EQ(floor_log2(2), 1);
  EXPECT_EQ(floor_log2(3), 1);
  EXPECT_EQ(floor_log2(1024), 10);
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(1025), 11);
}

TEST(IdToHex, FormatsFixedWidth) {
  EXPECT_EQ(id_to_hex(0x1A, 8), "0x1a");
  EXPECT_EQ(id_to_hex(0x1A, 16), "0x001a");
  EXPECT_EQ(id_to_hex(0, 32), "0x00000000");
}

TEST(Rng, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform(10), 10u);
    const auto v = rng.uniform_in(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
  EXPECT_THROW(rng.uniform(0), std::invalid_argument);
  EXPECT_THROW(rng.uniform_in(3, 2), std::invalid_argument);
}

TEST(Rng, UniformIsRoughlyUniform) {
  Rng rng(11);
  std::vector<int> counts(8, 0);
  const int kDraws = 80000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.uniform(8)];
  for (const int c : counts) {
    EXPECT_NEAR(c, kDraws / 8, kDraws / 8 / 5);
  }
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(13);
  double mean = 0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
    mean += x;
  }
  EXPECT_NEAR(mean / 10000, 0.5, 0.02);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(99);
  Rng forked = a.fork(1);
  Rng a2(99);
  // A fork must not replay the parent stream.
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (forked() == a2());
  EXPECT_LT(same, 3);
}

TEST(SampleUniqueIds, UniqueAndInRange) {
  Rng rng(3);
  const IdSpace space(16);
  const auto ids = sample_unique_ids(1000, space, rng);
  EXPECT_EQ(ids.size(), 1000u);
  std::set<NodeId> distinct(ids.begin(), ids.end());
  EXPECT_EQ(distinct.size(), 1000u);
  for (const NodeId id : ids) EXPECT_LE(id, space.mask());
}

TEST(SampleUniqueIds, RejectsOverfullSpace) {
  Rng rng(3);
  EXPECT_THROW(sample_unique_ids(200, IdSpace(8), rng),
               std::invalid_argument);
}

TEST(Zipf, UniformWhenThetaZero) {
  ZipfSampler z(4, 0.0);
  for (std::size_t k = 0; k < 4; ++k) EXPECT_NEAR(z.pmf(k), 0.25, 1e-12);
}

TEST(Zipf, MassDecreasesWithRank) {
  ZipfSampler z(10, 1.25);
  for (std::size_t k = 1; k < 10; ++k) EXPECT_LT(z.pmf(k), z.pmf(k - 1));
  double total = 0;
  for (std::size_t k = 0; k < 10; ++k) total += z.pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Zipf, SampleMatchesPmf) {
  ZipfSampler z(5, 1.25);
  Rng rng(17);
  std::vector<int> counts(5, 0);
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[z.sample(rng)];
  for (std::size_t k = 0; k < 5; ++k) {
    EXPECT_NEAR(static_cast<double>(counts[k]) / kDraws, z.pmf(k), 0.01);
  }
}

TEST(Zipf, RejectsBadArguments) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(5, -1.0), std::invalid_argument);
}

TEST(Summary, BasicMoments) {
  Summary s;
  for (const double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
}

TEST(Summary, EmptyIsWellDefined) {
  const Summary s;
  EXPECT_THROW(s.mean(), std::logic_error);
  EXPECT_TRUE(std::isnan(s.min()));
  EXPECT_TRUE(std::isnan(s.max()));
}

TEST(Summary, MergeMatchesCombined) {
  Summary a;
  Summary b;
  Summary all;
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const double x = rng.uniform_double();
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(Summary, MergeEmptyIsIdentity) {
  // empty ⊕ empty stays empty
  Summary a;
  a.merge(Summary{});
  EXPECT_EQ(a.count(), 0u);
  EXPECT_TRUE(std::isnan(a.min()));

  // empty ⊕ full adopts the full side exactly (shard 0 of a batch may be
  // the only one with samples)
  Summary full;
  for (const double x : {3.0, 1.0, 4.0}) full.add(x);
  a.merge(full);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.mean(), full.mean());
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 4.0);
  EXPECT_DOUBLE_EQ(a.variance(), full.variance());

  // full ⊕ empty is a no-op
  Summary b = full;
  b.merge(Summary{});
  EXPECT_EQ(b.count(), full.count());
  EXPECT_DOUBLE_EQ(b.sum(), full.sum());
  EXPECT_DOUBLE_EQ(b.min(), full.min());
  EXPECT_DOUBLE_EQ(b.max(), full.max());
}

TEST(Summary, MergePropagatesMinMax) {
  // The merged extrema must equal the extrema of the union, wherever the
  // min/max samples land across the two halves.
  Summary lo;
  Summary hi;
  for (const double x : {5.0, -2.0, 7.0}) lo.add(x);
  for (const double x : {100.0, 0.5}) hi.add(x);
  lo.merge(hi);
  EXPECT_DOUBLE_EQ(lo.min(), -2.0);
  EXPECT_DOUBLE_EQ(lo.max(), 100.0);

  Summary sequential;
  for (const double x : {5.0, -2.0, 7.0, 100.0, 0.5}) sequential.add(x);
  EXPECT_DOUBLE_EQ(lo.mean(), sequential.mean());
  EXPECT_DOUBLE_EQ(lo.sum(), sequential.sum());
}

TEST(Histogram, CountsAndQuantiles) {
  Histogram h;
  h.add(1, 3);
  h.add(5, 1);
  h.add(2, 6);
  EXPECT_EQ(h.total(), 10u);
  EXPECT_EQ(h.count_at(2), 6u);
  EXPECT_DOUBLE_EQ(h.pmf(5), 0.1);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 5);
  EXPECT_NEAR(h.mean(), (3 * 1 + 6 * 2 + 5) / 10.0, 1e-12);
  EXPECT_EQ(h.quantile(0.5), 2);
  EXPECT_EQ(h.quantile(1.0), 5);
}

TEST(Percentiles, NearestRank) {
  Percentiles p;
  for (int i = 1; i <= 100; ++i) p.add(i);
  EXPECT_DOUBLE_EQ(p.quantile(0.0), 1);
  EXPECT_DOUBLE_EQ(p.quantile(1.0), 100);
  EXPECT_NEAR(p.quantile(0.5), 50, 1.0);
  EXPECT_DOUBLE_EQ(p.mean(), 50.5);
}

TEST(TextTable, AlignsAndValidates) {
  TextTable t({"a", "bb"});
  t.add_row({"1", "2"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("a"), std::string::npos);
  EXPECT_NE(os.str().find("1"), std::string::npos);
}


TEST(Percentiles, AddAfterQuantileStaysCorrect) {
  Percentiles p;
  p.add(10);
  p.add(20);
  EXPECT_DOUBLE_EQ(p.quantile(1.0), 20);
  // Adding out-of-order samples after a query must re-sort.
  p.add(5);
  EXPECT_DOUBLE_EQ(p.quantile(0.0), 5);
  EXPECT_DOUBLE_EQ(p.quantile(1.0), 20);
}

}  // namespace
}  // namespace canon
