// Tests for the transit-stub topology, latency matrix, host attachment and
// induced hierarchy.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "topology/physical_network.h"

namespace canon {
namespace {

TransitStubConfig small_config() {
  TransitStubConfig cfg;
  cfg.transit_domains = 3;
  cfg.transit_per_domain = 2;
  cfg.stub_domains_per_transit = 2;
  cfg.stubs_per_domain = 4;
  return cfg;
}

TEST(TransitStub, RouterCountsMatchConfig) {
  Rng rng(401);
  const TransitStubTopology topo(small_config(), rng);
  // 3*2 transit + 3*2*2*4 stub = 6 + 48.
  EXPECT_EQ(topo.router_count(), 54);
  EXPECT_EQ(topo.stub_routers().size(), 48u);
  int transit = 0;
  for (int r = 0; r < topo.router_count(); ++r) {
    transit += topo.router(r).is_transit;
  }
  EXPECT_EQ(transit, 6);
}

TEST(TransitStub, PaperScaleIs2040Routers) {
  Rng rng(402);
  const TransitStubTopology topo(TransitStubConfig{}, rng);
  EXPECT_EQ(topo.router_count(), 2040);
  EXPECT_EQ(topo.stub_routers().size(), 2000u);
}

TEST(TransitStub, EdgeLatenciesMatchClasses) {
  Rng rng(403);
  const TransitStubTopology topo(small_config(), rng);
  for (int r = 0; r < topo.router_count(); ++r) {
    for (const auto& e : topo.edges(r)) {
      const bool a_transit = topo.router(r).is_transit;
      const bool b_transit = topo.router(e.to).is_transit;
      if (a_transit && b_transit) {
        EXPECT_DOUBLE_EQ(e.ms, 100.0);
      } else if (a_transit != b_transit) {
        EXPECT_DOUBLE_EQ(e.ms, 20.0);
      } else {
        EXPECT_DOUBLE_EQ(e.ms, 5.0);
      }
    }
  }
}

TEST(TransitStub, HierarchyPathHasFourComponents) {
  Rng rng(404);
  const TransitStubTopology topo(small_config(), rng);
  for (const int r : topo.stub_routers()) {
    const DomainPath p = topo.host_hierarchy_path(r);
    ASSERT_EQ(p.depth(), 4);
    EXPECT_EQ(p.branch(0), topo.router(r).transit_domain);
    EXPECT_EQ(p.branch(3), topo.router(r).stub_index);
  }
  EXPECT_THROW(topo.host_hierarchy_path(0), std::invalid_argument);
}

TEST(LatencyMatrix, SymmetricZeroDiagonalConnected) {
  Rng rng(405);
  const TransitStubTopology topo(small_config(), rng);
  const LatencyMatrix m(topo);
  for (int a = 0; a < topo.router_count(); a += 7) {
    EXPECT_DOUBLE_EQ(m.latency(a, a), 0.0);
    for (int b = 0; b < topo.router_count(); b += 5) {
      EXPECT_NEAR(m.latency(a, b), m.latency(b, a), 1e-6);
      if (a != b) {
        EXPECT_GT(m.latency(a, b), 0.0);
      }
    }
  }
}

TEST(LatencyMatrix, IntraStubDomainIsCheap) {
  Rng rng(406);
  const TransitStubTopology topo(small_config(), rng);
  const LatencyMatrix m(topo);
  // Two stub routers in the same stub domain: only 5 ms links between them.
  const auto& stubs = topo.stub_routers();
  for (std::size_t i = 0; i + 1 < stubs.size(); ++i) {
    const auto& a = topo.router(stubs[i]);
    const auto& b = topo.router(stubs[i + 1]);
    if (a.transit_domain == b.transit_domain &&
        a.transit_index == b.transit_index && a.stub_domain == b.stub_domain) {
      EXPECT_LE(m.latency(stubs[i], stubs[i + 1]), 5.0 * 4);
    }
  }
}

TEST(LatencyMatrix, CrossDomainIsExpensive) {
  Rng rng(407);
  const TransitStubTopology topo(small_config(), rng);
  const LatencyMatrix m(topo);
  // Stub routers under different transit domains must cross two 20 ms
  // gateways and at least one 100 ms transit link.
  const auto& stubs = topo.stub_routers();
  int checked = 0;
  for (std::size_t i = 0; i < stubs.size() && checked < 20; ++i) {
    for (std::size_t j = i + 1; j < stubs.size() && checked < 20; ++j) {
      if (topo.router(stubs[i]).transit_domain !=
          topo.router(stubs[j]).transit_domain) {
        EXPECT_GE(m.latency(stubs[i], stubs[j]), 20 + 100 + 20);
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 0);
}

TEST(LandmarkLatency, ExactModeMatchesMatrixBitForBit) {
  Rng rng(412);
  const TransitStubTopology topo(small_config(), rng);
  // 54 routers is far below the default 4096 threshold: the estimator
  // must route every query through the exact matrix.
  const LandmarkLatency est(topo);
  ASSERT_TRUE(est.exact());
  const LatencyMatrix m(topo);
  for (int a = 0; a < topo.router_count(); ++a) {
    for (int b = 0; b < topo.router_count(); ++b) {
      EXPECT_EQ(est.latency(a, b), m.latency(a, b));
    }
  }
}

TEST(LandmarkLatency, EstimatesNeverUnderestimateAndBoundError) {
  Rng rng(413);
  const TransitStubTopology topo(small_config(), rng);
  // Force landmark mode on a graph small enough to also hold the exact
  // matrix for comparison.
  LandmarkLatencyConfig cfg;
  cfg.exact_threshold = 0;
  cfg.stub_stride = 8;
  const LandmarkLatency est(topo, cfg);
  ASSERT_FALSE(est.exact());
  EXPECT_GT(est.landmarks().size(), 0u);
  const LatencyMatrix m(topo);
  double rel_sum = 0;
  int pairs = 0;
  int exact_pairs = 0;
  for (int a = 0; a < topo.router_count(); ++a) {
    for (int b = 0; b < topo.router_count(); ++b) {
      const double exact = m.latency(a, b);
      const double approx = est.latency(a, b);
      // Triangle inequality: a landmark estimate can never come in below
      // the true shortest path (float rounding aside).
      EXPECT_GE(approx, exact - 1e-3);
      if (a != b) {
        rel_sum += (approx - exact) / exact;
        ++pairs;
        exact_pairs += approx <= exact + 1e-3;
      }
    }
  }
  // Inter-stub-domain pairs are exact (the shortest path crosses a
  // transit landmark); only intra-domain pairs are overestimated. On this
  // toy graph (4-router stub domains) those pairs are ~6% of the total —
  // a far larger share than at paper scale or beyond, where the mean
  // relative error shrinks toward zero.
  EXPECT_GT(exact_pairs, pairs * 9 / 10);
  EXPECT_LT(rel_sum / pairs, 0.25);
}

TEST(LandmarkLatency, InterDomainEstimatesAreExact) {
  Rng rng(414);
  const TransitStubTopology topo(small_config(), rng);
  LandmarkLatencyConfig cfg;
  cfg.exact_threshold = 0;
  const LandmarkLatency est(topo, cfg);
  const LatencyMatrix m(topo);
  const auto& stubs = topo.stub_routers();
  int checked = 0;
  for (std::size_t i = 0; i < stubs.size(); ++i) {
    for (std::size_t j = i + 1; j < stubs.size(); ++j) {
      if (topo.router(stubs[i]).transit_domain !=
          topo.router(stubs[j]).transit_domain) {
        EXPECT_NEAR(est.latency(stubs[i], stubs[j]),
                    m.latency(stubs[i], stubs[j]), 1e-3);
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 0);
}

TEST(PhysicalNetwork, HostLatencyAddsLastMile) {
  Rng rng(408);
  const PhysicalNetwork phys(small_config(), rng);
  const int s0 = phys.topology().stub_routers()[0];
  const int s1 = phys.topology().stub_routers()[1];
  EXPECT_DOUBLE_EQ(phys.host_latency(s0, s0), 2.0);
  EXPECT_DOUBLE_EQ(phys.host_latency(s0, s1),
                   2.0 + phys.latencies().latency(s0, s1));
}

TEST(PhysicalNetwork, MeanHostLatencyIsPlausible) {
  Rng rng(409);
  const PhysicalNetwork phys(small_config(), rng);
  const double mean = phys.mean_host_latency(2000, rng);
  EXPECT_GT(mean, 2.0);
  EXPECT_LT(mean, 1000.0);
}

TEST(PhysicalPopulation, AttachesRoundRobinWithInducedHierarchy) {
  Rng rng(410);
  const PhysicalNetwork phys(small_config(), rng);
  const auto net = make_physical_population(96, phys, 24, rng);
  EXPECT_EQ(net.size(), 96u);
  // 96 hosts over 48 stub routers: exactly 2 per stub router.
  std::map<int, int> per_stub;
  for (std::uint32_t i = 0; i < net.size(); ++i) {
    ASSERT_GE(net.node(i).attach, 0);
    ++per_stub[net.node(i).attach];
    EXPECT_EQ(net.node(i).domain.depth(), 4);
  }
  for (const auto& [stub, count] : per_stub) EXPECT_EQ(count, 2);
  // Hierarchy has 5 levels (root + 4).
  EXPECT_EQ(net.domains().max_depth(), 4);
}

TEST(PhysicalPopulation, HopCostMatchesLatency) {
  Rng rng(411);
  const PhysicalNetwork phys(small_config(), rng);
  const auto net = make_physical_population(50, phys, 24, rng);
  const HopCost cost = host_hop_cost(net, phys);
  for (std::uint32_t a = 0; a < 10; ++a) {
    for (std::uint32_t b = 0; b < 10; ++b) {
      EXPECT_DOUBLE_EQ(cost(a, b),
                       phys.host_latency(net.node(a).attach,
                                         net.node(b).attach));
    }
  }
}

}  // namespace
}  // namespace canon
