// Tests for the discrete-event lookup simulator: correctness of completed
// lookups, queueing semantics, and load accounting.
#include <gtest/gtest.h>

#include "canon/crescendo.h"
#include "common/rng.h"
#include "overlay/event_sim.h"
#include "overlay/population.h"
#include "overlay/routing.h"
#include "telemetry/trace.h"

namespace canon {
namespace {

OverlayNetwork small_net(std::size_t n, int levels, std::uint64_t seed) {
  Rng rng(seed);
  PopulationSpec spec;
  spec.node_count = n;
  spec.hierarchy.levels = levels;
  spec.hierarchy.fanout = 4;
  return make_population(spec, rng);
}

TEST(EventSim, CompletedLookupsMatchStaticRouter) {
  const auto net = small_net(300, 3, 1001);
  const auto links = build_crescendo(net);
  EventSimulator sim(net, links);
  const RingRouter router(net, links);
  Rng rng(5);
  std::vector<Route> expected;
  for (int t = 0; t < 100; ++t) {
    const auto from = static_cast<std::uint32_t>(rng.uniform(net.size()));
    const NodeId key = net.space().wrap(rng());
    sim.submit(from, key, static_cast<double>(t));
    expected.push_back(router.route(from, key));
  }
  sim.run();
  ASSERT_EQ(sim.lookups().size(), 100u);
  for (std::size_t i = 0; i < 100; ++i) {
    const auto& lookup = sim.lookups()[i];
    EXPECT_TRUE(lookup.ok);
    EXPECT_EQ(lookup.hops, expected[i].hops());
    EXPECT_GE(lookup.completed_ms, lookup.issued_ms);
  }
}

TEST(EventSim, LatencyIncludesHopsAndProcessing) {
  const auto net = small_net(50, 1, 1002);
  const auto links = build_crescendo(net);
  EventSimConfig cfg;
  cfg.processing_ms = 0.5;
  cfg.default_hop_ms = 10.0;
  EventSimulator sim(net, links, {}, cfg);
  sim.submit(0, net.id(25), 0.0);
  sim.run();
  const auto& lookup = sim.lookups()[0];
  ASSERT_TRUE(lookup.ok);
  // (hops+1) processing slots + hops * hop latency.
  const double want =
      (lookup.hops + 1) * 0.5 + lookup.hops * 10.0;
  EXPECT_NEAR(lookup.latency_ms(), want, 1e-9);
}

TEST(EventSim, BusyNodesQueueMessages) {
  // Two lookups hitting the same single-successor chain at the same time
  // must serialize at the shared nodes.
  std::vector<OverlayNode> nodes = {{0, {}, -1}, {1, {}, -1}};
  const OverlayNetwork net(IdSpace(4), std::move(nodes));
  const auto links = build_crescendo(net);
  EventSimConfig cfg;
  cfg.processing_ms = 1.0;
  cfg.default_hop_ms = 0.0;
  EventSimulator sim(net, links, {}, cfg);
  sim.submit(0, 1, 0.0);  // one hop: node 0 -> node 1
  sim.submit(0, 1, 0.0);  // identical, same instant
  sim.run();
  const auto& a = sim.lookups()[0];
  const auto& b = sim.lookups()[1];
  EXPECT_TRUE(a.ok);
  EXPECT_TRUE(b.ok);
  // Node 0 serializes the two messages; the second finishes >= 1ms later.
  EXPECT_GE(std::max(a.completed_ms, b.completed_ms), 3.0 - 1e-9);
}

TEST(EventSim, LoadSumsToMessages) {
  const auto net = small_net(200, 2, 1003);
  const auto links = build_crescendo(net);
  EventSimulator sim(net, links);
  Rng rng(9);
  int total_hops = 0;
  const int kLookups = 200;
  for (int t = 0; t < kLookups; ++t) {
    const auto from = static_cast<std::uint32_t>(rng.uniform(net.size()));
    sim.submit(from, net.space().wrap(rng()), 0.1 * t);
  }
  sim.run();
  for (const auto& lookup : sim.lookups()) total_hops += lookup.hops;
  std::uint64_t load = 0;
  for (const auto l : sim.node_load()) load += l;
  // Every hop delivers one message, plus the initial processing at the
  // source.
  EXPECT_EQ(load, static_cast<std::uint64_t>(total_hops + kLookups));
}

TEST(EventSim, ValidatesInputs) {
  const auto net = small_net(10, 1, 1004);
  const auto links = build_crescendo(net);
  EventSimulator sim(net, links);
  EXPECT_THROW(sim.submit(99, 0, 0.0), std::out_of_range);
  LinkTable unfinalized(net.size());
  EXPECT_THROW(EventSimulator(net, unfinalized), std::invalid_argument);
}

TEST(EventSim, LateTraceAttachBackfillsBeginLookup) {
  // set_trace after submit used to silently drop begin_lookup, leaving hop
  // and end events keyed to an id the sink never saw. Attachment now
  // backfills begin_lookup for every pending lookup.
  const auto net = small_net(300, 3, 1006);
  const auto links = build_crescendo(net);
  EventSimulator sim(net, links);
  Rng rng(11);
  for (int t = 0; t < 20; ++t) {
    const auto from = static_cast<std::uint32_t>(rng.uniform(net.size()));
    sim.submit(from, net.space().wrap(rng()), static_cast<double>(t));
  }
  telemetry::RecordingTraceSink sink;
  sim.set_trace(&sink);  // late attach: all 20 lookups are already queued
  sim.run();
  ASSERT_EQ(sink.lookups().size(), 20u);
  for (std::size_t i = 0; i < 20; ++i) {
    const auto& traced = sink.lookups()[i];
    const auto& stats = sim.lookups()[i];
    EXPECT_TRUE(traced.done);
    EXPECT_EQ(traced.ok, stats.ok);
    EXPECT_EQ(traced.from, stats.from);
    EXPECT_EQ(traced.key, stats.key);
    EXPECT_EQ(static_cast<int>(traced.hops.size()), stats.hops);
  }
}

TEST(EventSim, DetachedTraceEmitsNothing) {
  const auto net = small_net(100, 2, 1007);
  const auto links = build_crescendo(net);
  EventSimulator sim(net, links);
  telemetry::RecordingTraceSink sink;
  sim.set_trace(&sink);
  sim.set_trace(nullptr);  // detach before anything is submitted
  sim.submit(0, net.id(50), 0.0);
  sim.run();
  EXPECT_TRUE(sim.lookups()[0].ok);
  EXPECT_TRUE(sink.lookups().empty());
}

TEST(EventSim, HierarchicalLoadStaysHomogeneous) {
  // The paper's motivation: Canon keeps the flat design's uniform load.
  // Compare the max/mean routing-load ratio of Crescendo vs flat Chord
  // under an identical random workload.
  const auto flat = small_net(500, 1, 1005);
  const auto deep = small_net(500, 4, 1005);
  const auto flat_links = build_crescendo(flat);
  const auto deep_links = build_crescendo(deep);
  double ratios[2];
  const OverlayNetwork* nets[2] = {&flat, &deep};
  const LinkTable* tables[2] = {&flat_links, &deep_links};
  for (int which = 0; which < 2; ++which) {
    EventSimulator sim(*nets[which], *tables[which]);
    Rng rng(77);
    for (int t = 0; t < 3000; ++t) {
      const auto from =
          static_cast<std::uint32_t>(rng.uniform(nets[which]->size()));
      sim.submit(from, nets[which]->space().wrap(rng()), 0.01 * t);
    }
    sim.run();
    double mean = 0;
    double max = 0;
    for (const auto l : sim.node_load()) {
      mean += static_cast<double>(l);
      max = std::max(max, static_cast<double>(l));
    }
    mean /= static_cast<double>(nets[which]->size());
    ratios[which] = max / mean;
  }
  // The hierarchical structure's load skew stays within 2x of flat Chord's.
  EXPECT_LE(ratios[1], ratios[0] * 2.0);
}

TEST(EventSim, FaultPlanKillsNodesAtTheScheduledInstant) {
  const auto net = small_net(200, 2, 1006);
  const auto links = build_crescendo(net);
  EventSimulator sim(net, links);
  EXPECT_EQ(sim.live_nodes(), net.size());

  // Crash half the network at t=50ms; lookups submitted before the crash
  // complete, traffic arriving at dead nodes afterwards is lost.
  FaultPlan plan = FaultPlan::fail_fraction(net.size(), 0.5, 99);
  FaultPlan timed;
  for (const FaultEvent& fe : plan.events()) timed.crash(fe.node, 50);
  sim.set_fault_plan(&timed);

  Rng rng(12);
  for (int t = 0; t < 600; ++t) {
    const auto from = static_cast<std::uint32_t>(rng.uniform(net.size()));
    sim.submit(from, net.space().wrap(rng()), 0.2 * t);
  }
  sim.run();
  EXPECT_EQ(sim.live_nodes(), net.size() - timed.events().size());

  int failed_before = 0, failed_after = 0, ok_count = 0;
  for (const auto& lookup : sim.lookups()) {
    ok_count += lookup.ok;
    if (!lookup.ok) {
      // A fault-induced failure completes at the arrival instant, which
      // can only be at or after the crash.
      EXPECT_GE(lookup.completed_ms, 50.0);
      (lookup.issued_ms < 50.0 ? failed_before : failed_after)++;
    }
  }
  EXPECT_GT(ok_count, 0);
  EXPECT_GT(failed_after, 0) << "half the network dead, lookups all fine?";
}

TEST(EventSim, TimeSeriesCountsSubmissionsCompletionsAndLiveNodes) {
  const auto net = small_net(150, 2, 1007);
  const auto links = build_crescendo(net);
  EventSimulator sim(net, links);
  telemetry::TimeSeriesRecorder series(10.0);

  // Attach after one submission: the recorder must backfill it.
  sim.submit(0, net.space().wrap(123456789), 0.0);
  sim.set_timeseries(&series);

  FaultPlan timed;
  timed.crash(1, 20);
  sim.set_fault_plan(&timed);

  Rng rng(3);
  const int kLookups = 200;
  for (int t = 1; t < kLookups; ++t) {
    const auto from = static_cast<std::uint32_t>(rng.uniform(net.size()));
    sim.submit(from, net.space().wrap(rng()), 0.25 * t);
  }
  sim.run();

  std::uint64_t issued = 0, completed = 0, messages = 0;
  for (const auto& w : series.windows()) {
    issued += w.issued;
    completed += w.completed;
    messages += w.messages;
  }
  EXPECT_EQ(issued, static_cast<std::uint64_t>(kLookups));
  EXPECT_EQ(completed, static_cast<std::uint64_t>(kLookups));
  std::uint64_t total_load = 0;
  for (const auto l : sim.node_load()) total_load += l;
  EXPECT_EQ(messages, total_load);

  // The live-node gauge starts at the full population and drops by one
  // in the window covering the crash.
  const auto& first = series.windows().front();
  EXPECT_EQ(first.live, static_cast<double>(net.size()));
  EXPECT_EQ(series.windows()[series.window_index(20.0)].live,
            static_cast<double>(net.size() - 1));
}

}  // namespace
}  // namespace canon
