// Tests for Crescendo, the Canonical version of Chord (Section 2): the
// Figure-2 merge example, degeneration to Chord, per-domain ring
// completeness, the paper's two routing properties (intra-domain path
// locality, inter-domain path convergence) and the degree/hop theorems.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "canon/crescendo.h"
#include "canon/mixed.h"
#include "common/rng.h"
#include "dht/chord.h"
#include "overlay/population.h"
#include "overlay/routing.h"

namespace canon {
namespace {

/// The two four-node rings of the paper's Figure 2, as one two-level
/// hierarchy: ring A = {0, 5, 10, 12}, ring B = {2, 3, 8, 13}.
OverlayNetwork figure2_network() {
  std::vector<OverlayNode> nodes;
  for (const NodeId id : {0, 5, 10, 12}) {
    nodes.push_back({id, DomainPath({0}), -1});
  }
  for (const NodeId id : {2, 3, 8, 13}) {
    nodes.push_back({id, DomainPath({1}), -1});
  }
  return OverlayNetwork(IdSpace(4), std::move(nodes));
}

std::set<NodeId> link_ids(const OverlayNetwork& net, const LinkTable& links,
                          NodeId of) {
  std::set<NodeId> out;
  for (const auto v : links.neighbors(net.index_of(of))) out.insert(net.id(v));
  return out;
}

TEST(Crescendo, Figure2Node0) {
  // Paper: node 0 keeps ring-A links {5, 10} and adds only node 2 in the
  // merge (node 8 is ruled out by condition (b); no link to 3).
  const auto net = figure2_network();
  const auto links = build_crescendo(net);
  EXPECT_EQ(link_ids(net, links, 0), (std::set<NodeId>{2, 5, 10}));
}

TEST(Crescendo, Figure2Node8) {
  // Paper: node 8 keeps ring-B links {13, 2} and adds {10, 12}; node 0 is
  // ruled out by condition (b).
  const auto net = figure2_network();
  const auto links = build_crescendo(net);
  EXPECT_EQ(link_ids(net, links, 8), (std::set<NodeId>{2, 10, 12, 13}));
}

TEST(Crescendo, Figure2Node2FormsNoMergeLinks) {
  // Paper: node 2 has node 3 in its own ring as the closest node, so
  // condition (b) rules out every merge link.
  const auto net = figure2_network();
  const auto links = build_crescendo(net);
  // Ring-B-only links of node 2: successor 3 (d1, d2), 8 (d4... ring B from
  // 2: >=1 -> 3, >=2 -> 8? distances: 3 is d1, 8 is d6, 13 is d11).
  for (const auto id : link_ids(net, links, 2)) {
    EXPECT_NE(id, 0u);
    EXPECT_NE(id, 5u);
    EXPECT_NE(id, 10u);
    EXPECT_NE(id, 12u);
  }
}

TEST(Crescendo, FlatPopulationEqualsChord) {
  Rng rng(201);
  PopulationSpec spec;
  spec.node_count = 300;
  spec.hierarchy.levels = 1;
  const auto net = make_population(spec, rng);
  const auto crescendo = build_crescendo(net);
  const auto chord = build_chord(net);
  for (std::uint32_t m = 0; m < net.size(); ++m) {
    const auto a = crescendo.neighbors(m);
    const auto b = chord.neighbors(m);
    ASSERT_EQ(a.size(), b.size()) << "node " << m;
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

TEST(Crescendo, EveryDomainRingIsComplete) {
  // Each node must link its successor within every domain it belongs to,
  // so that each domain forms a routable ring of its own.
  Rng rng(202);
  PopulationSpec spec;
  spec.node_count = 600;
  spec.hierarchy.levels = 4;
  spec.hierarchy.fanout = 4;
  const auto net = make_population(spec, rng);
  const auto links = build_crescendo(net);
  const DomainTree& dom = net.domains();
  for (std::uint32_t m = 0; m < net.size(); ++m) {
    for (const int d : dom.domain_chain(m)) {
      const RingView ring = net.domain_ring(d);
      if (ring.size() < 2) continue;
      const std::uint32_t succ =
          ring.first_at_distance(net.id(m), 1);
      EXPECT_TRUE(links.has_link(m, succ))
          << "node " << m << " misses successor in domain " << d;
    }
  }
}

class CrescendoLevelsTest : public ::testing::TestWithParam<int> {};

TEST_P(CrescendoLevelsTest, AllRoutesSucceed) {
  const int levels = GetParam();
  Rng rng(203 + levels);
  PopulationSpec spec;
  spec.node_count = 800;
  spec.hierarchy.levels = levels;
  spec.hierarchy.fanout = 5;
  const auto net = make_population(spec, rng);
  const auto links = build_crescendo(net);
  const RingRouter router(net, links);
  for (int t = 0; t < 400; ++t) {
    const auto from = static_cast<std::uint32_t>(rng.uniform(net.size()));
    const NodeId key = net.space().wrap(rng());
    const Route r = router.route(from, key);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.terminal(), net.responsible(key));
  }
}

TEST_P(CrescendoLevelsTest, MeanDegreeWithinTheorem2Bound) {
  const int levels = GetParam();
  Rng rng(213 + levels);
  PopulationSpec spec;
  spec.node_count = 1024;
  spec.hierarchy.levels = levels;
  const auto net = make_population(spec, rng);
  const auto links = build_crescendo(net);
  const double n = 1024;
  const double bound =
      std::log2(n - 1) + std::min<double>(levels, std::log2(n));
  EXPECT_LE(links.mean_degree(), bound);
}

TEST_P(CrescendoLevelsTest, MeanHopsWithinTheorem5Bound) {
  const int levels = GetParam();
  Rng rng(223 + levels);
  PopulationSpec spec;
  spec.node_count = 1024;
  spec.hierarchy.levels = levels;
  const auto net = make_population(spec, rng);
  const auto links = build_crescendo(net);
  const RingRouter router(net, links);
  Summary hops;
  for (int t = 0; t < 1500; ++t) {
    const auto from = static_cast<std::uint32_t>(rng.uniform(net.size()));
    const NodeId key = net.space().wrap(rng());
    hops.add(router.route(from, key).hops());
  }
  EXPECT_LE(hops.mean(), std::log2(1023.0) + 1);
}

TEST_P(CrescendoLevelsTest, IntraDomainPathLocality) {
  // "The route from one node to another never leaves the domain that
  //  contains both nodes."
  const int levels = GetParam();
  if (levels == 1) return;  // no non-trivial domains
  Rng rng(233 + levels);
  PopulationSpec spec;
  spec.node_count = 800;
  spec.hierarchy.levels = levels;
  spec.hierarchy.fanout = 4;
  const auto net = make_population(spec, rng);
  const auto links = build_crescendo(net);
  const RingRouter router(net, links);
  int checked = 0;
  for (int t = 0; t < 3000 && checked < 300; ++t) {
    const auto a = static_cast<std::uint32_t>(rng.uniform(net.size()));
    const auto b = static_cast<std::uint32_t>(rng.uniform(net.size()));
    const int lca = net.lca_level(a, b);
    if (lca == 0 || a == b) continue;
    ++checked;
    // Route to b's ID: every hop must stay inside the level-lca domain.
    const Route r = router.route(a, net.id(b));
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.terminal(), b);
    for (const auto hop : r.path) {
      EXPECT_GE(net.lca_level(hop, b), lca)
          << "route " << a << "->" << b << " left their common domain";
    }
  }
  EXPECT_GE(checked, 100);
}

TEST_P(CrescendoLevelsTest, InterDomainPathConvergence) {
  // "When different nodes within a domain D route to the same node x
  //  outside D, all the different routes exit D through a common node: the
  //  closest predecessor of x within D."
  const int levels = GetParam();
  if (levels == 1) return;
  Rng rng(243 + levels);
  PopulationSpec spec;
  spec.node_count = 800;
  spec.hierarchy.levels = levels;
  spec.hierarchy.fanout = 4;
  const auto net = make_population(spec, rng);
  const auto links = build_crescendo(net);
  const RingRouter router(net, links);
  const DomainTree& dom = net.domains();

  int checked = 0;
  for (int t = 0; t < 200 && checked < 40; ++t) {
    // Pick a random non-root domain D and a destination outside it.
    const int d = 1 + static_cast<int>(rng.uniform(
                          static_cast<std::uint64_t>(dom.domain_count() - 1)));
    const RingView ring = net.domain_ring(d);
    if (ring.size() < 2) continue;
    const auto x = static_cast<std::uint32_t>(rng.uniform(net.size()));
    const int depth = dom.domain(d).depth;
    const std::uint32_t probe = ring.at(0);
    if (net.lca_level(probe, x) >= depth &&
        dom.domain_of(x, depth) == d) {
      continue;  // x inside D
    }
    ++checked;
    // The predicted exit: the closest predecessor of x's ID within D.
    const std::uint32_t exit = ring.predecessor_or_self(net.id(x));
    for (std::size_t i = 0; i < std::min<std::size_t>(ring.size(), 10); ++i) {
      const std::uint32_t src = ring.at(i);
      const Route r = router.route(src, net.id(x));
      ASSERT_TRUE(r.ok);
      // Find the last node of the path inside D; it must be `exit`.
      std::uint32_t last_inside = src;
      for (const auto hop : r.path) {
        const bool inside = dom.node_depth(hop) >= depth &&
                            dom.domain_of(hop, depth) == d;
        if (inside) last_inside = hop;
      }
      EXPECT_EQ(last_inside, exit)
          << "domain " << d << " src " << src << " x " << x;
    }
  }
  EXPECT_GE(checked, 10);
}

INSTANTIATE_TEST_SUITE_P(Levels, CrescendoLevelsTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(Crescendo, MeanDegreeNotAboveChordEquivalent) {
  // Section 5.1: the average degree in Crescendo is slightly *less* than
  // in Chord and decreases with more levels.
  Rng rng(251);
  PopulationSpec spec;
  spec.node_count = 2048;
  spec.hierarchy.levels = 1;
  const auto flat = make_population(spec, rng);
  const double chord_mean = build_chord(flat).mean_degree();
  Rng rng2(251);
  spec.hierarchy.levels = 4;
  const auto deep = make_population(spec, rng2);
  const double crescendo_mean = build_crescendo(deep).mean_degree();
  EXPECT_LE(crescendo_mean, chord_mean + 0.1);
}

TEST(CliqueCrescendo, RoutesSucceedAndLeafIsClique) {
  Rng rng(261);
  PopulationSpec spec;
  spec.node_count = 400;
  spec.hierarchy.levels = 3;
  spec.hierarchy.fanout = 4;
  const auto net = make_population(spec, rng);
  const auto links = build_clique_crescendo(net);
  const DomainTree& dom = net.domains();
  // Leaf domains are complete graphs.
  for (std::uint32_t m = 0; m < net.size(); ++m) {
    const int leaf_domain = dom.domain_chain(m).back();
    for (const auto v : dom.domain(leaf_domain).members) {
      if (v != m) {
        EXPECT_TRUE(links.has_link(m, v));
      }
    }
  }
  const RingRouter router(net, links);
  for (int t = 0; t < 300; ++t) {
    const auto from = static_cast<std::uint32_t>(rng.uniform(net.size()));
    const NodeId key = net.space().wrap(rng());
    EXPECT_TRUE(router.route(from, key).ok);
  }
}

}  // namespace
}  // namespace canon
