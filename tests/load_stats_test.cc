// Tests for the load observatory's accounting core: Gini extremes, the
// hand-checked role tallies and their invariants, the §5 domain-confinement
// ratio measured as exactly 1.0 on Crescendo, Zipf workload determinism
// across thread counts (with measured skew tracking the exponent), and
// byte-identical load reports at any --threads.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <unordered_map>
#include <vector>

#include "canon/crescendo.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/zipf.h"
#include "overlay/population.h"
#include "overlay/query_engine.h"
#include "overlay/routing.h"
#include "telemetry/load_stats.h"

namespace canon {
namespace {

using telemetry::LoadAccountant;

/// Restores serial execution on scope exit.
class ThreadGuard {
 public:
  ~ThreadGuard() { set_parallel_threads(0); }
};

OverlayNetwork small_net(std::uint64_t nodes, int levels,
                         std::uint64_t seed = 7) {
  Rng rng(seed);
  PopulationSpec spec;
  spec.node_count = nodes;
  spec.hierarchy.levels = levels;
  spec.hierarchy.fanout = 4;
  return make_population(spec, rng);
}

// ------------------------------------------------------------------- gini

TEST(Gini, ExtremesAndOrdering) {
  EXPECT_EQ(telemetry::gini_coefficient({}), 0.0);
  const std::vector<std::uint64_t> zeros(8, 0);
  EXPECT_EQ(telemetry::gini_coefficient(zeros), 0.0);
  const std::vector<std::uint64_t> even(8, 5);
  EXPECT_EQ(telemetry::gini_coefficient(even), 0.0);

  // All load on one of n nodes: G = (n-1)/n.
  std::vector<std::uint64_t> spike(10, 0);
  spike[3] = 100;
  EXPECT_NEAR(telemetry::gini_coefficient(spike), 0.9, 1e-12);

  // More concentration, higher Gini.
  const std::vector<std::uint64_t> mild{4, 5, 6, 5, 4, 6};
  const std::vector<std::uint64_t> harsh{1, 1, 1, 1, 1, 25};
  EXPECT_LT(telemetry::gini_coefficient(mild),
            telemetry::gini_coefficient(harsh));
}

TEST(Gini, TopLoadedNodesSortedWithIndexTieBreak) {
  const std::vector<std::uint64_t> loads{3, 9, 3, 0, 9, 1};
  const auto top = telemetry::top_loaded_nodes(loads, 4);
  ASSERT_EQ(top.size(), 4u);
  // Count descending, node index ascending on ties.
  EXPECT_EQ(top[0], (std::pair<std::uint32_t, std::uint64_t>{1, 9}));
  EXPECT_EQ(top[1], (std::pair<std::uint32_t, std::uint64_t>{4, 9}));
  EXPECT_EQ(top[2], (std::pair<std::uint32_t, std::uint64_t>{0, 3}));
  EXPECT_EQ(top[3], (std::pair<std::uint32_t, std::uint64_t>{2, 3}));
  // k beyond the population clamps.
  EXPECT_EQ(telemetry::top_loaded_nodes(loads, 100).size(), loads.size());
}

// ------------------------------------------------------- role accounting

TEST(LoadStats, HandCheckedRoleTallies) {
  const OverlayNetwork net = small_net(16, 2);
  LoadAccountant acc(net.domains(), net.ids());
  LoadAccountant::Shard shard;

  const std::vector<std::uint32_t> abc{0, 1, 2};
  acc.observe(abc, /*ok=*/true, /*key=*/7, shard);
  const std::vector<std::uint32_t> single{3};
  acc.observe(single, /*ok=*/true, /*key=*/7, shard);
  const std::vector<std::uint32_t> failed{2, 1};
  acc.observe(failed, /*ok=*/false, /*key=*/9, shard);
  acc.merge(shard);

  EXPECT_EQ(acc.queries(), 3u);
  EXPECT_EQ(acc.ok(), 2u);
  EXPECT_EQ(acc.total_hops(), 3u);

  EXPECT_EQ(acc.load()[0], 1u);
  EXPECT_EQ(acc.load()[1], 2u);
  EXPECT_EQ(acc.load()[2], 2u);
  EXPECT_EQ(acc.load()[3], 1u);
  EXPECT_EQ(acc.as_source()[0], 1u);
  EXPECT_EQ(acc.as_relay()[1], 1u);
  EXPECT_EQ(acc.as_terminal()[2], 1u);
  // The single-node path wears both hats on one message.
  EXPECT_EQ(acc.as_source()[3], 1u);
  EXPECT_EQ(acc.as_terminal()[3], 1u);

  const auto keys = acc.top_keys(2);
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0].key, 7u);
  EXPECT_EQ(keys[0].lookups, 2u);
  EXPECT_EQ(keys[1].key, 9u);
}

TEST(LoadStats, InvariantsOnRealWorkload) {
  const OverlayNetwork net = small_net(512, 3);
  const LinkTable links = build_crescendo(net);
  const RingRouter router(net, links);
  const auto queries = zipf_workload(net, 4000, Rng(11));

  telemetry::LoadAccountant acc(net.domains(), net.ids());
  QueryEngine engine(net);
  engine.set_load(&acc);
  const QueryStats stats = engine.run(queries, router);

  const auto sum = [](const std::vector<std::uint64_t>& v) {
    return std::accumulate(v.begin(), v.end(), std::uint64_t{0});
  };
  EXPECT_EQ(acc.queries(), 4000u);
  EXPECT_EQ(acc.total_hops(), stats.total_hops);
  // One handling per path node: hops + one terminal handling per query.
  EXPECT_EQ(sum(acc.load()), acc.total_hops() + acc.queries());
  EXPECT_EQ(sum(acc.as_source()), acc.queries());
  EXPECT_EQ(sum(acc.as_terminal()), acc.queries());
  EXPECT_EQ(sum(acc.hops_by_level()), acc.total_hops());
  EXPECT_GE(acc.max_load(), static_cast<std::uint64_t>(acc.mean_load()));
  EXPECT_GE(acc.gini(), 0.0);
  EXPECT_LE(acc.gini(), 1.0);

  // Domain shares are fractions of the total hop count.
  double share_sum = 0;
  for (const auto& d : acc.domain_loads()) {
    EXPECT_GE(d.share, 0.0);
    EXPECT_LE(d.share, 1.0);
    share_sum += d.share;
  }
  EXPECT_LE(share_sum, 1.0 + 1e-12);
}

TEST(LoadStats, CrescendoConfinesIntraDomainLookupsExactly) {
  // §5: traffic between nodes of one domain stays inside the domain — the
  // measured ratio must be exactly 1.0, not approximately.
  for (const int levels : {2, 3, 4}) {
    const OverlayNetwork net = small_net(768, levels);
    const LinkTable links = build_crescendo(net);
    const RingRouter router(net, links);
    const auto queries = uniform_workload(net, 3000, Rng(23));

    telemetry::LoadAccountant acc(net.domains(), net.ids());
    QueryEngine engine(net);
    engine.set_load(&acc);
    engine.run(queries, router);

    EXPECT_GT(acc.intra_domain_queries(), 0u) << "levels=" << levels;
    EXPECT_EQ(acc.confined_queries(), acc.intra_domain_queries())
        << "levels=" << levels;
    EXPECT_EQ(acc.confinement_ratio(), 1.0) << "levels=" << levels;
  }
}

// ---------------------------------------------------------- zipf workload

TEST(ZipfWorkload, SameSeedSameSequenceAtAnyThreadCount) {
  ThreadGuard guard;
  const OverlayNetwork net = small_net(256, 2);
  std::vector<Query> reference;
  for (const int threads : {1, 2, 7}) {
    set_parallel_threads(threads);
    const auto queries = zipf_workload(net, 3000, Rng(99));
    if (reference.empty()) {
      reference = queries;
      continue;
    }
    ASSERT_EQ(queries.size(), reference.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(queries[i].from, reference[i].from) << "i=" << i;
      EXPECT_EQ(queries[i].key, reference[i].key) << "i=" << i;
    }
  }
}

TEST(ZipfWorkload, MeasuredSkewTracksExponent) {
  const OverlayNetwork net = small_net(256, 2);
  const double theta = 1.25;
  const std::size_t pool = 256;
  const std::size_t count = 60000;
  const auto queries = zipf_workload(net, count, Rng(5), theta, pool);

  std::unordered_map<std::uint64_t, std::uint64_t> freq;
  for (const Query& q : queries) ++freq[q.key];
  // At theta=1.25 the head dominates: the hottest key's measured share
  // must match the sampler's rank-0 probability within sampling noise.
  std::uint64_t hottest = 0;
  for (const auto& [key, n] : freq) hottest = std::max(hottest, n);
  const ZipfSampler zipf(pool, theta);
  const double expected = zipf.pmf(0);
  const double measured =
      static_cast<double>(hottest) / static_cast<double>(count);
  EXPECT_NEAR(measured, expected, 0.15 * expected);
  // And the workload is genuinely skewed, not uniform.
  EXPECT_LT(freq.size(), pool + 1);
  EXPECT_GT(measured, 2.0 / static_cast<double>(pool));
}

TEST(LoadStats, ReportBytesIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  const OverlayNetwork net = small_net(512, 3);
  const LinkTable links = build_crescendo(net);
  const RingRouter router(net, links);

  std::string reference;
  for (const int threads : {1, 2, 7}) {
    set_parallel_threads(threads);
    const auto queries = zipf_workload(net, 5000, Rng(31));
    telemetry::LoadAccountant acc(net.domains(), net.ids());
    QueryEngine engine(net);
    engine.set_load(&acc);
    engine.run(queries, router);
    const std::string report = acc.to_json().dump(1);
    if (reference.empty()) {
      reference = report;
    } else {
      EXPECT_EQ(report, reference) << "threads=" << threads;
    }
  }
  EXPECT_FALSE(reference.empty());
}

}  // namespace
}  // namespace canon
