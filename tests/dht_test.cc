// Unit and property tests for the flat DHT builders: Chord fingers,
// nondeterministic Chord, Symphony, Kademlia buckets, XOR range utilities
// and the prefix-tree CAN.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "common/rng.h"
#include "dht/can.h"
#include "dht/chord.h"
#include "dht/kademlia.h"
#include "dht/nondet_chord.h"
#include "dht/symphony.h"
#include "dht/xor_util.h"
#include "overlay/population.h"
#include "overlay/routing.h"

namespace canon {
namespace {

OverlayNetwork figure2_ring_a() {
  // Ring A of the paper's Figure 2: nodes 0, 5, 10, 12 on a 4-bit ring.
  std::vector<OverlayNode> nodes;
  for (const NodeId id : {0, 5, 10, 12}) nodes.push_back({id, {}, -1});
  return OverlayNetwork(IdSpace(4), std::move(nodes));
}

TEST(Chord, Figure2LinksOfNode0) {
  // The paper: node 0 in ring A links to node 5 (distances 1, 2, 4) and
  // node 10 (distance 8).
  const auto net = figure2_ring_a();
  const auto links = build_chord(net);
  const auto nb = links.neighbors(net.index_of(0));
  std::set<NodeId> ids;
  for (const auto v : nb) ids.insert(net.id(v));
  EXPECT_EQ(ids, (std::set<NodeId>{5, 10}));
}

TEST(Chord, Figure2LinksOfNode8InRingB) {
  // Ring B: nodes 2, 3, 8, 13. Node 8 links to 13 (distances 1, 2, 4) and
  // 2 (distance 8).
  std::vector<OverlayNode> nodes;
  for (const NodeId id : {2, 3, 8, 13}) nodes.push_back({id, {}, -1});
  const OverlayNetwork net(IdSpace(4), std::move(nodes));
  const auto links = build_chord(net);
  std::set<NodeId> ids;
  for (const auto v : links.neighbors(net.index_of(8))) ids.insert(net.id(v));
  EXPECT_EQ(ids, (std::set<NodeId>{13, 2}));
}

TEST(Chord, AllRoutesSucceed) {
  Rng rng(101);
  PopulationSpec spec;
  spec.node_count = 400;
  spec.id_bits = 24;
  const auto net = make_population(spec, rng);
  const auto links = build_chord(net);
  const RingRouter router(net, links);
  for (int t = 0; t < 300; ++t) {
    const auto from = static_cast<std::uint32_t>(rng.uniform(net.size()));
    const NodeId key = net.space().wrap(rng());
    const Route r = router.route(from, key);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.terminal(), net.responsible(key));
  }
}

TEST(Chord, MeanDegreeWithinTheorem1Bound) {
  // Theorem 1: expected degree <= log2(n-1) + 1.
  Rng rng(102);
  for (const std::size_t n : {64u, 256u, 1024u}) {
    PopulationSpec spec;
    spec.node_count = n;
    const auto net = make_population(spec, rng);
    const auto links = build_chord(net);
    const double bound = std::log2(static_cast<double>(n - 1)) + 1;
    EXPECT_LE(links.mean_degree(), bound)
        << "n=" << n << " mean=" << links.mean_degree();
  }
}

TEST(Chord, MeanHopsWithinTheorem4Bound) {
  // Theorem 4: expected routing hops <= 0.5*log2(n-1) + 0.5.
  Rng rng(103);
  PopulationSpec spec;
  spec.node_count = 1024;
  const auto net = make_population(spec, rng);
  const auto links = build_chord(net);
  const RingRouter router(net, links);
  double total = 0;
  const int kTrials = 2000;
  for (int t = 0; t < kTrials; ++t) {
    const auto from = static_cast<std::uint32_t>(rng.uniform(net.size()));
    const NodeId key = net.space().wrap(rng());
    total += router.route(from, key).hops();
  }
  const double bound = 0.5 * std::log2(1023.0) + 0.5;
  EXPECT_LE(total / kTrials, bound + 0.2);  // small sampling slack
}

TEST(NondetChord, RoutesSucceedAndDegreeLogarithmic) {
  Rng rng(104);
  PopulationSpec spec;
  spec.node_count = 500;
  const auto net = make_population(spec, rng);
  const auto links = build_nondet_chord(net, rng);
  const RingRouter router(net, links);
  for (int t = 0; t < 300; ++t) {
    const auto from = static_cast<std::uint32_t>(rng.uniform(net.size()));
    const NodeId key = net.space().wrap(rng());
    const Route r = router.route(from, key);
    EXPECT_TRUE(r.ok);
  }
  EXPECT_LE(links.mean_degree(), std::log2(499.0) + 2);
}

TEST(NondetChord, LinksRespectBucketRanges) {
  Rng rng(105);
  PopulationSpec spec;
  spec.node_count = 200;
  spec.id_bits = 16;
  const auto net = make_population(spec, rng);
  const auto links = build_nondet_chord(net, rng);
  for (std::uint32_t m = 0; m < net.size(); ++m) {
    // At most one link per power-of-two distance range plus the successor.
    std::map<int, int> per_bucket;
    for (const auto v : links.neighbors(m)) {
      const auto d = net.space().ring_distance(net.id(m), net.id(v));
      ++per_bucket[floor_log2(d)];
    }
    for (const auto& [k, c] : per_bucket) {
      EXPECT_LE(c, 2) << "bucket " << k;  // random pick + successor overlap
    }
  }
}

TEST(Symphony, RoutesSucceed) {
  Rng rng(106);
  PopulationSpec spec;
  spec.node_count = 500;
  const auto net = make_population(spec, rng);
  const auto links = build_symphony(net, rng);
  const RingRouter router(net, links);
  for (int t = 0; t < 300; ++t) {
    const auto from = static_cast<std::uint32_t>(rng.uniform(net.size()));
    const NodeId key = net.space().wrap(rng());
    const Route r = router.route(from, key);
    EXPECT_TRUE(r.ok);
  }
}

TEST(Symphony, DegreeIsAboutLogN) {
  Rng rng(107);
  PopulationSpec spec;
  spec.node_count = 1024;
  const auto net = make_population(spec, rng);
  const auto links = build_symphony(net, rng);
  // floor(log2 1024) = 10 draws + successor, some draws collide/self-hit.
  EXPECT_GE(links.mean_degree(), 6.0);
  EXPECT_LE(links.mean_degree(), 11.5);
}

TEST(Symphony, LookaheadReducesMeanHops) {
  Rng rng(108);
  PopulationSpec spec;
  spec.node_count = 2048;
  const auto net = make_population(spec, rng);
  const auto links = build_symphony(net, rng);
  const RingRouter router(net, links);
  double greedy = 0;
  double ahead = 0;
  const int kTrials = 500;
  for (int t = 0; t < kTrials; ++t) {
    const auto from = static_cast<std::uint32_t>(rng.uniform(net.size()));
    const NodeId key = net.space().wrap(rng());
    greedy += router.route(from, key).hops();
    ahead += router.route_lookahead(from, key).hops();
  }
  // The paper quotes ~40% fewer hops; accept any clear improvement.
  EXPECT_LT(ahead, greedy * 0.85);
}

TEST(XorUtil, BallRangesCoverExactlyTheBall) {
  const IdSpace space(10);
  Rng rng(109);
  for (int trial = 0; trial < 50; ++trial) {
    const NodeId center = space.wrap(rng());
    const std::uint64_t radius = rng.uniform(1024);
    const auto ranges = xor_ball_ranges(center, radius, space);
    std::set<NodeId> covered;
    for (const auto& r : ranges) {
      EXPECT_EQ(r.lo % r.size, 0u) << "range must be aligned";
      for (std::uint64_t i = 0; i < r.size; ++i) covered.insert(r.lo + i);
    }
    std::set<NodeId> expected;
    for (NodeId x = 0; x < 1024; ++x) {
      if (space.xor_distance(center, x) < radius) expected.insert(x);
    }
    EXPECT_EQ(covered, expected) << "center=" << center << " r=" << radius;
  }
}

TEST(XorUtil, ClosestInRangeMatchesBruteForce) {
  Rng rng(110);
  PopulationSpec spec;
  spec.node_count = 300;
  spec.id_bits = 12;
  const auto net = make_population(spec, rng);
  const RingView ring = net.ring();
  for (int trial = 0; trial < 200; ++trial) {
    const int len_bits = static_cast<int>(rng.uniform(12));
    const std::uint64_t size = std::uint64_t{1} << len_bits;
    const NodeId lo = (net.space().wrap(rng()) / size) * size;
    const NodeId key = net.space().wrap(rng());
    const auto got = xor_closest_in_range(ring, lo, size, key);
    std::uint32_t want = RingView::kNone;
    for (std::uint32_t i = 0; i < net.size(); ++i) {
      if (net.id(i) < lo || net.id(i) >= lo + size) continue;
      if (want == RingView::kNone ||
          net.space().xor_distance(net.id(i), key) <
              net.space().xor_distance(net.id(want), key)) {
        want = i;
      }
    }
    EXPECT_EQ(got, want) << "lo=" << lo << " size=" << size << " key=" << key;
  }
}

TEST(Kademlia, LinksOnePerBucketAndClosestIsClosest) {
  Rng rng(111);
  PopulationSpec spec;
  spec.node_count = 300;
  spec.id_bits = 16;
  const auto net = make_population(spec, rng);
  const auto links = build_kademlia(net, BucketChoice::kClosest, rng);
  for (std::uint32_t m = 0; m < net.size(); ++m) {
    std::map<int, std::uint64_t> bucket_min;
    for (std::uint32_t v = 0; v < net.size(); ++v) {
      if (v == m) continue;
      const auto d = net.space().xor_distance(net.id(m), net.id(v));
      const int k = floor_log2(d);
      if (!bucket_min.contains(k) || d < bucket_min[k]) bucket_min[k] = d;
    }
    std::map<int, int> seen;
    for (const auto v : links.neighbors(m)) {
      const auto d = net.space().xor_distance(net.id(m), net.id(v));
      const int k = floor_log2(d);
      ++seen[k];
      EXPECT_EQ(d, bucket_min[k]) << "node " << m << " bucket " << k;
    }
    // One link per non-empty bucket.
    EXPECT_EQ(seen.size(), bucket_min.size());
    for (const auto& [k, c] : seen) EXPECT_EQ(c, 1);
  }
}

TEST(Kademlia, GreedyXorRoutingSucceedsBothChoices) {
  Rng rng(112);
  PopulationSpec spec;
  spec.node_count = 600;
  const auto net = make_population(spec, rng);
  for (const auto choice : {BucketChoice::kClosest, BucketChoice::kRandom}) {
    const auto links = build_kademlia(net, choice, rng);
    const XorRouter router(net, links);
    for (int t = 0; t < 200; ++t) {
      const auto from = static_cast<std::uint32_t>(rng.uniform(net.size()));
      const NodeId key = net.space().wrap(rng());
      const Route r = router.route(from, key);
      EXPECT_TRUE(r.ok);
      EXPECT_EQ(r.terminal(), net.xor_closest(key));
    }
  }
}

TEST(Kademlia, ClosestXorDistanceMatchesBruteForce) {
  Rng rng(113);
  PopulationSpec spec;
  spec.node_count = 100;
  spec.id_bits = 14;
  const auto net = make_population(spec, rng);
  const RingView ring = net.ring();
  for (std::uint32_t m = 0; m < 20; ++m) {
    std::uint64_t want = kNoLimit;
    for (std::uint32_t v = 0; v < net.size(); ++v) {
      if (v != m) {
        want = std::min(want, net.space().xor_distance(net.id(m), net.id(v)));
      }
    }
    EXPECT_EQ(closest_xor_distance(net, ring, m), want);
  }
}

TEST(ZoneTree, PartitionsTheSpace) {
  Rng rng(114);
  PopulationSpec spec;
  spec.node_count = 60;
  spec.id_bits = 10;
  const auto net = make_population(spec, rng);
  const auto can = build_can(net);
  // Every point has exactly one owner, and each owner's zones sum to its
  // share of the space.
  std::map<std::uint32_t, std::uint64_t> zone_points;
  for (NodeId p = 0; p < 1024; ++p) ++zone_points[can.tree.owner_of(p)];
  EXPECT_EQ(zone_points.size(), net.size());
  std::uint64_t total = 0;
  for (const auto& [owner, count] : zone_points) {
    std::uint64_t owned = 0;
    for (const auto& z : can.tree.zones_of(owner)) {
      owned += std::uint64_t{1} << (10 - z.len);
    }
    EXPECT_EQ(count, owned);
    // The primary zone must contain the owner's own ID.
    const auto z = can.tree.zone(owner);
    const NodeId lo = z.prefix;
    const NodeId hi = z.prefix + (std::uint64_t{1} << (10 - z.len));
    EXPECT_GE(net.id(owner), lo);
    EXPECT_LT(net.id(owner), hi);
    total += count;
  }
  EXPECT_EQ(total, 1024u);
}

TEST(ZoneTree, NeighborsAreSymmetric) {
  Rng rng(115);
  PopulationSpec spec;
  spec.node_count = 80;
  spec.id_bits = 12;
  const auto net = make_population(spec, rng);
  const auto can = build_can(net);
  for (std::uint32_t m = 0; m < net.size(); ++m) {
    for (const auto v : can.tree.neighbors(m)) {
      const auto back = can.tree.neighbors(v);
      EXPECT_TRUE(std::find(back.begin(), back.end(), m) != back.end())
          << m << " -> " << v << " not symmetric";
    }
  }
}

TEST(ZoneTree, DegreeIsLogarithmic) {
  Rng rng(116);
  PopulationSpec spec;
  spec.node_count = 1024;
  const auto net = make_population(spec, rng);
  const auto can = build_can(net);
  // Expected degree ~ zone depth ~ log2 n; allow generous slack.
  EXPECT_LE(can.links.mean_degree(), 2.5 * std::log2(1024.0));
  EXPECT_GE(can.links.mean_degree(), 0.5 * std::log2(1024.0));
}

TEST(Can, RoutingReachesZoneOwner) {
  Rng rng(117);
  PopulationSpec spec;
  spec.node_count = 500;
  const auto net = make_population(spec, rng);
  const auto can = build_can(net);
  const CanRouter router(net, can.tree, can.links);
  for (int t = 0; t < 300; ++t) {
    const auto from = static_cast<std::uint32_t>(rng.uniform(net.size()));
    const NodeId key = net.space().wrap(rng());
    const Route r = router.route(from, key);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.terminal(), can.tree.owner_of(key));
  }
}

TEST(Can, HopsAreLogarithmic) {
  Rng rng(118);
  PopulationSpec spec;
  spec.node_count = 1024;
  const auto net = make_population(spec, rng);
  const auto can = build_can(net);
  const CanRouter router(net, can.tree, can.links);
  Summary hops;
  for (int t = 0; t < 500; ++t) {
    const auto from = static_cast<std::uint32_t>(rng.uniform(net.size()));
    const NodeId key = net.space().wrap(rng());
    const Route r = router.route(from, key);
    ASSERT_TRUE(r.ok);
    hops.add(r.hops());
  }
  EXPECT_LE(hops.mean(), std::log2(1024.0));
}

TEST(ZoneTree, RejectsEmptyAndNonMember) {
  Rng rng(119);
  PopulationSpec spec;
  spec.node_count = 4;
  const auto net = make_population(spec, rng);
  EXPECT_THROW(ZoneTree(net, {}), std::invalid_argument);
  std::vector<std::uint32_t> some = {0, 1};
  const ZoneTree tree(net, some);
  EXPECT_THROW(tree.zone(3), std::invalid_argument);
}

}  // namespace
}  // namespace canon
