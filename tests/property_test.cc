// Property-based sweeps: the paper's structural invariants checked across
// a grid of population shapes (size x levels x fanout x ID width x
// placement). These complement the per-module unit tests with broad,
// randomized coverage.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "canon/cacophony.h"
#include "canon/crescendo.h"
#include "canon/kandy.h"
#include "common/rng.h"
#include "dht/chord.h"
#include "overlay/population.h"
#include "overlay/routing.h"

namespace canon {
namespace {

// (nodes, levels, fanout, id_bits, zipf?)
using Shape = std::tuple<int, int, int, int, bool>;

class ShapeTest : public ::testing::TestWithParam<Shape> {
 protected:
  OverlayNetwork build() {
    const auto [n, levels, fanout, bits, zipf] = GetParam();
    rng_.reseed(0xC0FFEE ^ static_cast<std::uint64_t>(n * 31 + levels * 7 +
                                                      fanout * 3 + bits));
    PopulationSpec spec;
    spec.node_count = static_cast<std::size_t>(n);
    spec.id_bits = bits;
    spec.hierarchy.levels = levels;
    spec.hierarchy.fanout = fanout;
    spec.hierarchy.placement = zipf ? Placement::kZipf : Placement::kUniform;
    return make_population(spec, rng_);
  }

  Rng rng_{1};
};

TEST_P(ShapeTest, CrescendoRoutesAlwaysSucceed) {
  const auto net = build();
  const auto links = build_crescendo(net);
  const RingRouter router(net, links);
  for (int t = 0; t < 150; ++t) {
    const auto from = static_cast<std::uint32_t>(rng_.uniform(net.size()));
    const NodeId key = net.space().wrap(rng_());
    const Route r = router.route(from, key);
    ASSERT_TRUE(r.ok);
    ASSERT_EQ(r.terminal(), net.responsible(key));
  }
}

TEST_P(ShapeTest, CrescendoDegreeBoundTheorem2) {
  const auto net = build();
  const auto links = build_crescendo(net);
  const auto [n, levels, fanout, bits, zipf] = GetParam();
  (void)fanout;
  (void)bits;
  (void)zipf;
  const double bound = std::log2(static_cast<double>(n - 1)) +
                       std::min<double>(levels, std::log2(n));
  EXPECT_LE(links.mean_degree(), bound);
}

TEST_P(ShapeTest, CrescendoMaxDegreeIsLogarithmicWhp) {
  // Theorem 3: O(log n) w.h.p. — we allow a 4x constant.
  const auto net = build();
  const auto links = build_crescendo(net);
  const auto [n, levels, fanout, bits, zipf] = GetParam();
  (void)levels;
  (void)fanout;
  (void)bits;
  (void)zipf;
  EXPECT_LE(static_cast<double>(links.degree_histogram().max()),
            4 * std::log2(static_cast<double>(n)) + 8);
}

TEST_P(ShapeTest, CrescendoMaxHopsIsLogarithmicWhp) {
  // Theorem 6: O(log n) w.h.p.
  const auto net = build();
  const auto links = build_crescendo(net);
  const RingRouter router(net, links);
  const auto [n, levels, fanout, bits, zipf] = GetParam();
  (void)levels;
  (void)fanout;
  (void)bits;
  (void)zipf;
  int max_hops = 0;
  for (int t = 0; t < 200; ++t) {
    const auto from = static_cast<std::uint32_t>(rng_.uniform(net.size()));
    const NodeId key = net.space().wrap(rng_());
    max_hops = std::max(max_hops, router.route(from, key).hops());
  }
  EXPECT_LE(max_hops, 3 * std::log2(static_cast<double>(n)) + 8);
}

TEST_P(ShapeTest, EveryDomainIsARoutableSubDht) {
  // The core Canon claim: the nodes of ANY domain form a complete DHT by
  // themselves — routing between two members restricted to the domain's
  // member links always reaches the member responsible within the domain.
  const auto net = build();
  const auto links = build_crescendo(net);
  const DomainTree& dom = net.domains();
  for (int d = 0; d < dom.domain_count(); ++d) {
    const RingView ring = net.domain_ring(d);
    if (ring.size() < 2) continue;
    // Spot-check: successor completeness implies ring routability.
    for (std::size_t i = 0; i < ring.size(); i += std::max<std::size_t>(
             1, ring.size() / 16)) {
      const std::uint32_t m = ring.at(i);
      const std::uint32_t succ = ring.first_at_distance(net.id(m), 1);
      ASSERT_TRUE(links.has_link(m, succ))
          << "domain " << d << " node " << m;
    }
  }
}

TEST_P(ShapeTest, MergeLinksRespectConditionB) {
  // Every link to a node outside the leaf domain is strictly shorter than
  // the leaf-domain successor distance.
  const auto net = build();
  const auto links = build_crescendo(net);
  const DomainTree& dom = net.domains();
  for (std::uint32_t m = 0; m < net.size(); ++m) {
    const int leaf_depth = dom.node_depth(m);
    if (leaf_depth == 0) continue;
    const RingView leaf_ring =
        net.domain_ring(dom.domain_chain(m).back());
    const std::uint64_t limit = leaf_ring.successor_distance(net.id(m));
    for (const auto v : links.neighbors(m)) {
      if (net.lca_level(m, v) >= leaf_depth) continue;
      ASSERT_LT(net.space().ring_distance(net.id(m), net.id(v)), limit)
          << "node " << m << " -> " << v;
    }
  }
}

TEST_P(ShapeTest, RoutingPathClockwiseMonotone) {
  const auto net = build();
  const auto links = build_crescendo(net);
  const RingRouter router(net, links);
  for (int t = 0; t < 60; ++t) {
    const auto from = static_cast<std::uint32_t>(rng_.uniform(net.size()));
    const NodeId key = net.space().wrap(rng_());
    const Route r = router.route(from, key);
    for (std::size_t i = 1; i < r.path.size(); ++i) {
      ASSERT_LT(net.space().ring_distance(net.id(r.path[i]), key),
                net.space().ring_distance(net.id(r.path[i - 1]), key));
    }
  }
}

TEST_P(ShapeTest, CacophonyAndKandyRouteEverywhere) {
  const auto net = build();
  Rng build_rng(99);
  const auto caco = build_cacophony(net, build_rng);
  const auto kandy = build_kandy(net, BucketChoice::kClosest, build_rng);
  const RingRouter ring_router(net, caco);
  const XorRouter xor_router(net, kandy);
  for (int t = 0; t < 80; ++t) {
    const auto from = static_cast<std::uint32_t>(rng_.uniform(net.size()));
    const NodeId key = net.space().wrap(rng_());
    ASSERT_TRUE(ring_router.route(from, key).ok);
    ASSERT_TRUE(xor_router.route(from, key).ok);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ShapeTest,
    ::testing::Values(
        // Tiny populations and corner shapes.
        Shape{2, 1, 1, 8, false}, Shape{3, 2, 2, 8, false},
        Shape{10, 5, 2, 16, true}, Shape{17, 3, 10, 16, false},
        // Mid-size across levels, fanouts, widths and placements.
        Shape{200, 1, 10, 32, true}, Shape{300, 2, 3, 24, false},
        Shape{400, 3, 10, 32, true}, Shape{500, 4, 4, 32, true},
        Shape{600, 5, 10, 32, false}, Shape{700, 5, 2, 48, true},
        // Dense ID space (collision-heavy shapes).
        Shape{100, 3, 4, 10, true}, Shape{60, 2, 8, 8, false}));

TEST(Degenerate, SingleNodeNetworkHasNoLinksAndRoutesToItself) {
  std::vector<OverlayNode> one = {{5, DomainPath({1, 2}), -1}};
  const OverlayNetwork net(IdSpace(8), std::move(one));
  const auto links = build_crescendo(net);
  EXPECT_EQ(links.total_links(), 0u);
  const RingRouter router(net, links);
  const Route r = router.route(0, 200);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.terminal(), 0u);
}

TEST(Degenerate, TwoNodesLinkEachOther) {
  std::vector<OverlayNode> two = {{5, DomainPath({0}), -1},
                                  {200, DomainPath({1}), -1}};
  const OverlayNetwork net(IdSpace(8), std::move(two));
  const auto links = build_crescendo(net);
  EXPECT_TRUE(links.has_link(0, 1));
  EXPECT_TRUE(links.has_link(1, 0));
}

TEST(Degenerate, AllNodesInOneLeafDomainIsChord) {
  Rng rng(31337);
  std::vector<OverlayNode> nodes;
  const auto ids = sample_unique_ids(64, IdSpace(16), rng);
  for (const NodeId id : ids) nodes.push_back({id, DomainPath({3, 1}), -1});
  const OverlayNetwork net(IdSpace(16), std::move(nodes));
  const auto crescendo = build_crescendo(net);
  const auto chord = build_chord(net);
  for (std::uint32_t m = 0; m < net.size(); ++m) {
    const auto a = crescendo.neighbors(m);
    const auto b = chord.neighbors(m);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
  }
}

}  // namespace
}  // namespace canon
