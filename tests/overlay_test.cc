// Unit tests for the overlay substrate: the network container, ring views,
// link tables, greedy routers and path metrics.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "overlay/link_table.h"
#include "overlay/metrics.h"
#include "overlay/overlay_network.h"
#include "overlay/population.h"
#include "overlay/routing.h"

namespace canon {
namespace {

OverlayNetwork small_net() {
  // IDs on a 4-bit ring: 0, 3, 5, 8, 10, 12 (mirrors the paper's Figure 2).
  std::vector<OverlayNode> nodes;
  for (const NodeId id : {0, 3, 5, 8, 10, 12}) {
    nodes.push_back(OverlayNode{id, DomainPath{}, -1});
  }
  return OverlayNetwork(IdSpace(4), std::move(nodes));
}

TEST(OverlayNetwork, SortsAndIndexesByIds) {
  const auto net = small_net();
  ASSERT_EQ(net.size(), 6u);
  for (std::uint32_t i = 1; i < net.size(); ++i) {
    EXPECT_LT(net.id(i - 1), net.id(i));
  }
  EXPECT_EQ(net.index_of(8), 3u);
  EXPECT_THROW(net.index_of(9), std::invalid_argument);
}

TEST(OverlayNetwork, RejectsDuplicatesAndOutOfRange) {
  std::vector<OverlayNode> dup = {{1, {}, -1}, {1, {}, -1}};
  EXPECT_THROW(OverlayNetwork(IdSpace(4), dup), std::invalid_argument);
  std::vector<OverlayNode> big = {{16, {}, -1}};
  EXPECT_THROW(OverlayNetwork(IdSpace(4), big), std::invalid_argument);
}

TEST(OverlayNetwork, Responsible) {
  const auto net = small_net();
  // Responsibility: largest ID <= key (paper footnote 3), wrapping.
  EXPECT_EQ(net.id(net.responsible(0)), 0u);
  EXPECT_EQ(net.id(net.responsible(1)), 0u);
  EXPECT_EQ(net.id(net.responsible(3)), 3u);
  EXPECT_EQ(net.id(net.responsible(4)), 3u);
  EXPECT_EQ(net.id(net.responsible(15)), 12u);
}

TEST(OverlayNetwork, XorClosestBruteForceAgreement) {
  Rng rng(21);
  PopulationSpec spec;
  spec.node_count = 300;
  spec.id_bits = 16;
  const auto net = make_population(spec, rng);
  for (int trial = 0; trial < 200; ++trial) {
    const NodeId key = net.space().wrap(rng());
    std::uint32_t best = 0;
    for (std::uint32_t i = 1; i < net.size(); ++i) {
      if (net.space().xor_distance(net.id(i), key) <
          net.space().xor_distance(net.id(best), key)) {
        best = i;
      }
    }
    EXPECT_EQ(net.xor_closest(key), best) << "key=" << key;
  }
}

TEST(RingView, SuccessorWrapsAroundZero) {
  const auto net = small_net();
  const RingView ring = net.ring();
  EXPECT_EQ(net.id(ring.successor(13)), 0u);
  EXPECT_EQ(net.id(ring.successor(0)), 0u);
  EXPECT_EQ(net.id(ring.successor(1)), 3u);
}

TEST(RingView, FirstAtDistanceMatchesChordRule) {
  const auto net = small_net();
  const RingView ring = net.ring();
  // From node 0: closest node at distance >= 1, 2, 4 is node 3; >= 8 is 8.
  EXPECT_EQ(net.id(ring.first_at_distance(0, 1)), 3u);
  EXPECT_EQ(net.id(ring.first_at_distance(0, 4)), 5u);
  EXPECT_EQ(net.id(ring.first_at_distance(0, 8)), 8u);
  EXPECT_EQ(ring.first_at_distance(0, 17), RingView::kNone);
}

TEST(RingView, CountAndSelect) {
  const auto net = small_net();
  const RingView ring = net.ring();
  EXPECT_EQ(ring.count_in(0, 6), 3u);   // ids 0, 3, 5
  EXPECT_EQ(ring.count_in(13, 4), 1u);  // wraps: id 0
  EXPECT_EQ(ring.count_in(0, 16), 6u);  // full ring
  EXPECT_EQ(ring.count_in(6, 0), 0u);
  EXPECT_EQ(net.id(ring.select_in(0, 6, 1)), 3u);
  EXPECT_EQ(net.id(ring.select_in(13, 4, 0)), 0u);
  EXPECT_THROW(ring.select_in(0, 6, 3), std::out_of_range);
}

TEST(RingView, SuccessorDistance) {
  const auto net = small_net();
  const RingView ring = net.ring();
  EXPECT_EQ(ring.successor_distance(0), 3u);
  EXPECT_EQ(ring.successor_distance(12), 4u);  // wraps to 0
}

TEST(RingView, SingletonSuccessorDistanceUnbounded) {
  std::vector<OverlayNode> nodes = {{5, {}, -1}};
  const OverlayNetwork net(IdSpace(4), std::move(nodes));
  EXPECT_EQ(net.ring().successor_distance(5),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(LinkTable, AddFinalizeQuery) {
  LinkTable t(4);
  t.add(0, 1);
  t.add(0, 1);  // duplicate collapses
  t.add(0, 3);
  t.add(0, 0);  // self-link ignored
  t.finalize();
  EXPECT_EQ(t.degree(0), 2u);
  EXPECT_TRUE(t.has_link(0, 1));
  EXPECT_FALSE(t.has_link(1, 0));
  EXPECT_EQ(t.total_links(), 2u);
  EXPECT_DOUBLE_EQ(t.mean_degree(), 0.5);
  EXPECT_THROW(t.add(0, 9), std::out_of_range);
}

TEST(LinkTable, UnfinalizedQueriesThrow) {
  LinkTable t(2);
  t.add(0, 1);
  EXPECT_THROW(t.neighbors(0), std::logic_error);
  EXPECT_THROW(t.degree(0), std::logic_error);
}

TEST(LinkTable, SetNeighborsSanitizes) {
  LinkTable t(5);
  t.finalize();
  t.set_neighbors(2, {4, 1, 4, 2, 1});
  const auto nb = t.neighbors(2);
  ASSERT_EQ(nb.size(), 2u);
  EXPECT_EQ(nb[0], 1u);
  EXPECT_EQ(nb[1], 4u);
}

// Builds the full Chord links on the small ring by brute force so the
// routers can be tested independently of the dht module.
LinkTable full_chord_links(const OverlayNetwork& net) {
  LinkTable t(net.size());
  const RingView ring = net.ring();
  for (std::uint32_t m = 0; m < net.size(); ++m) {
    for (int k = 0; k < net.space().bits(); ++k) {
      const auto v = ring.first_at_distance(net.id(m), std::uint64_t{1} << k);
      if (v != RingView::kNone) t.add(m, v);
    }
  }
  t.finalize();
  return t;
}

TEST(RingRouter, ReachesResponsibleNodeForAllKeys) {
  const auto net = small_net();
  const auto links = full_chord_links(net);
  const RingRouter router(net, links);
  for (std::uint32_t from = 0; from < net.size(); ++from) {
    for (NodeId key = 0; key < 16; ++key) {
      const Route r = router.route(from, key);
      EXPECT_TRUE(r.ok);
      EXPECT_EQ(r.terminal(), net.responsible(key));
      EXPECT_EQ(r.source(), from);
    }
  }
}

TEST(RingRouter, NeverOvershoots) {
  const auto net = small_net();
  const auto links = full_chord_links(net);
  const RingRouter router(net, links);
  for (std::uint32_t from = 0; from < net.size(); ++from) {
    for (NodeId key = 0; key < 16; ++key) {
      const Route r = router.route(from, key);
      // Clockwise distance to the key must strictly decrease along the path.
      for (std::size_t i = 1; i < r.path.size(); ++i) {
        EXPECT_LT(net.space().ring_distance(net.id(r.path[i]), key),
                  net.space().ring_distance(net.id(r.path[i - 1]), key));
      }
    }
  }
}

TEST(RingRouter, LookaheadNoWorseThanGreedy) {
  Rng rng(31);
  PopulationSpec spec;
  spec.node_count = 256;
  spec.id_bits = 20;
  const auto net = make_population(spec, rng);
  const auto links = full_chord_links(net);
  const RingRouter router(net, links);
  for (int trial = 0; trial < 100; ++trial) {
    const std::uint32_t from =
        static_cast<std::uint32_t>(rng.uniform(net.size()));
    const NodeId key = net.space().wrap(rng());
    const Route greedy = router.route(from, key);
    const Route ahead = router.route_lookahead(from, key);
    EXPECT_TRUE(greedy.ok);
    EXPECT_TRUE(ahead.ok);
    EXPECT_EQ(ahead.terminal(), greedy.terminal());
    // Committing to the best 2-step plan is at least as fast as two greedy
    // steps, so the lookahead route is at most one hop longer overall.
    EXPECT_LE(ahead.hops(), greedy.hops() + 1);
  }
}

TEST(RingRouter, ValidatesLinkTable) {
  const auto net = small_net();
  LinkTable wrong_size(3);
  wrong_size.finalize();
  EXPECT_THROW(RingRouter(net, wrong_size), std::invalid_argument);
  LinkTable unfinalized(net.size());
  EXPECT_THROW(RingRouter(net, unfinalized), std::invalid_argument);
}

TEST(XorRouter, ReachesXorClosestWithFullBuckets) {
  Rng rng(41);
  PopulationSpec spec;
  spec.node_count = 200;
  spec.id_bits = 16;
  const auto net = make_population(spec, rng);
  // Deterministic Kademlia-complete table: for every k, link to the
  // XOR-closest node in bucket [2^k, 2^{k+1}).
  LinkTable t(net.size());
  for (std::uint32_t m = 0; m < net.size(); ++m) {
    for (std::uint32_t v = 0; v < net.size(); ++v) {
      if (m == v) continue;
      // Link if v is the closest node in its bucket.
      const std::uint64_t d = net.space().xor_distance(net.id(m), net.id(v));
      bool closest = true;
      for (std::uint32_t w = 0; w < net.size(); ++w) {
        if (w == m || w == v) continue;
        const std::uint64_t dw =
            net.space().xor_distance(net.id(m), net.id(w));
        if (floor_log2(dw) == floor_log2(d) && dw < d) closest = false;
      }
      if (closest) t.add(m, v);
    }
  }
  t.finalize();
  const XorRouter router(net, t);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint32_t from =
        static_cast<std::uint32_t>(rng.uniform(net.size()));
    const NodeId key = net.space().wrap(rng());
    const Route r = router.route(from, key);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.terminal(), net.xor_closest(key));
    // XOR distance strictly decreases hop by hop.
    for (std::size_t i = 1; i < r.path.size(); ++i) {
      EXPECT_LT(net.space().xor_distance(net.id(r.path[i]), key),
                net.space().xor_distance(net.id(r.path[i - 1]), key));
    }
  }
}

TEST(Metrics, PathCostSumsHops) {
  Route r;
  r.path = {0, 2, 5};
  const auto cost = [](std::uint32_t a, std::uint32_t b) {
    return static_cast<double>(a + b);
  };
  EXPECT_DOUBLE_EQ(path_cost(r, cost), 2 + 7);
}

TEST(Metrics, HopOverlapFraction) {
  Route first;
  first.path = {0, 4, 7, 9};
  Route second;
  second.path = {1, 5, 7, 9};  // meets `first` at node 7
  const auto f = hop_overlap_fraction(first, second);
  ASSERT_TRUE(f.has_value());
  EXPECT_DOUBLE_EQ(*f, 1.0 / 3.0);

  Route trivial;
  trivial.path = {3};
  EXPECT_FALSE(hop_overlap_fraction(first, trivial).has_value());

  Route disjoint;
  disjoint.path = {1, 2, 3};
  EXPECT_DOUBLE_EQ(*hop_overlap_fraction(first, disjoint), 0.0);
}

TEST(Metrics, CostOverlapFraction) {
  Route first;
  first.path = {0, 4, 7, 9};
  Route second;
  second.path = {1, 5, 7, 9};
  const auto cost = [](std::uint32_t, std::uint32_t) { return 2.0; };
  const auto f = cost_overlap_fraction(first, second, cost);
  ASSERT_TRUE(f.has_value());
  EXPECT_DOUBLE_EQ(*f, 1.0 / 3.0);
}

TEST(Metrics, MulticastTreeDedupesEdges) {
  MulticastTree tree;
  Route a;
  a.path = {0, 2, 3};
  Route b;
  b.path = {1, 2, 3};  // shares edge 2->3
  tree.add_route(a);
  tree.add_route(b);
  EXPECT_EQ(tree.edge_count(), 3u);
}

TEST(Metrics, MulticastInterDomainEdges) {
  std::vector<OverlayNode> nodes = {{0, DomainPath({0}), -1},
                                    {4, DomainPath({0}), -1},
                                    {8, DomainPath({1}), -1},
                                    {12, DomainPath({1}), -1}};
  const OverlayNetwork net(IdSpace(4), std::move(nodes));
  MulticastTree tree;
  Route r;
  r.path = {0, 1, 2, 3};  // one edge crosses the level-1 boundary
  tree.add_route(r);
  EXPECT_EQ(tree.inter_domain_edges(net, 1), 1u);
  EXPECT_EQ(tree.inter_domain_edges(net, 0), 0u);
}

TEST(Population, BuildsRequestedShape) {
  Rng rng(51);
  PopulationSpec spec;
  spec.node_count = 500;
  spec.id_bits = 24;
  spec.hierarchy.levels = 3;
  spec.hierarchy.fanout = 4;
  const auto net = make_population(spec, rng);
  EXPECT_EQ(net.size(), 500u);
  EXPECT_EQ(net.space().bits(), 24);
  EXPECT_EQ(net.domains().max_depth(), 2);
}

}  // namespace
}  // namespace canon
