// Figure 5: average number of routing hops vs. network size, levels 1-5.
//
// Expected shape (paper): ~0.5*log2(n) + c; a small constant increase
// (at most ~0.7) as the number of levels grows, mirroring the slight drop
// in links.
//
// Lookups run through the batch QueryEngine: the (from, key) workload is
// pre-generated from forked RNG streams and fanned across --threads, with
// results byte-identical at every thread count. With --json, each
// (nodes, levels) cell additionally reports the per-hierarchy-level hop
// breakdown tallied by the engine: hops at level l stay inside a common
// level-l domain (deep = local). The breakdown always sums to the cell's
// total hop count.
//
// --crash-rate=f additionally fail-stops that fraction of nodes
// (FaultPlan::fail_fraction) and routes through the failure-aware ring
// core; cells then carry success rates instead of asserting zero
// failures. The flag is recorded in params (and changes the report) only
// when passed — a flagless run's output is byte-identical to the
// pre-resilience figure.
#include <iostream>

#include "bench/bench_util.h"
#include "canon/crescendo.h"
#include "common/table.h"
#include "overlay/population.h"
#include "overlay/query_engine.h"
#include "overlay/resilient_routing.h"
#include "overlay/routing.h"

using namespace canon;

int main(int argc, char** argv) {
  bench::BenchRun run(argc, argv, "fig5_hops");
  const std::uint64_t min_n = run.u64("min-nodes", 1024);
  const std::uint64_t max_n = run.u64("max-nodes", 65536);
  const std::uint64_t trials = run.u64("trials", 4000);
  const bool faulty = run.present("crash-rate");
  const double crash_rate = faulty ? run.f64("crash-rate", 0.0) : 0.0;
  run.header("Figure 5: average routing hops",
             "avg #hops vs n, levels 1-5, fanout 10, Zipf(1.25)");

  TextTable table({"nodes", "levels=1 (Chord)", "levels=2", "levels=3",
                   "levels=4", "levels=5"});
  for (std::uint64_t n = min_n; n <= max_n; n *= 2) {
    std::vector<std::string> row = {TextTable::num(n)};
    for (int levels = 1; levels <= 5; ++levels) {
      Rng rng(run.seed + static_cast<std::uint64_t>(levels));
      PopulationSpec spec;
      spec.node_count = n;
      spec.hierarchy.levels = levels;
      spec.hierarchy.fanout = 10;
      const auto net = make_population(spec, rng);
      const auto links = build_crescendo(net);
      QueryEngine engine(net);
      engine.set_level_tracking(run.json_enabled());
      const auto queries = uniform_workload(net, trials, rng);
      QueryStats stats;
      ResilientStats rstats;
      if (faulty) {
        const ResilientRingRouter router(net, links);
        const FaultPlan plan =
            FaultPlan::fail_fraction(net.size(), crash_rate, run.seed);
        rstats = engine.run_resilient(queries, router, plan);
        stats = rstats.base;
      } else {
        const RingRouter router(net, links);
        stats = engine.run(queries, router);
        if (stats.failures != 0) {
          std::cerr << "routing failure (broken structure)\n";
          return 1;
        }
      }
      row.push_back(TextTable::num(stats.hops.mean(), 2));
      if (run.json_enabled()) {
        telemetry::JsonValue cell = telemetry::JsonValue::object();
        cell.set("nodes", telemetry::JsonValue(n));
        cell.set("levels", telemetry::JsonValue(levels));
        cell.set("mean_hops", telemetry::JsonValue(stats.hops.mean()));
        cell.set("total_hops", telemetry::JsonValue(stats.total_hops));
        telemetry::JsonValue by_level = telemetry::JsonValue::array();
        for (const std::uint64_t c : stats.hops_by_level) {
          by_level.push_back(telemetry::JsonValue(c));
        }
        cell.set("hops_by_level", std::move(by_level));
        if (faulty) {
          cell.set("success", telemetry::JsonValue(rstats.success_rate()));
          cell.set("retries", telemetry::JsonValue(rstats.retries));
          cell.set("fallback_hops",
                   telemetry::JsonValue(rstats.fallback_hops));
          cell.set("skipped_dead_source",
                   telemetry::JsonValue(rstats.skipped_dead_source));
        }
        run.report().add_row(std::move(cell));
      }
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\n(paper: ~0.5*log2(n)+c; deeper hierarchies cost at most "
               "~0.7 extra hops)\n";
  return run.finish();
}
