// Figure 5: average number of routing hops vs. network size, levels 1-5.
//
// Expected shape (paper): ~0.5*log2(n) + c; a small constant increase
// (at most ~0.7) as the number of levels grows, mirroring the slight drop
// in links.
#include <iostream>

#include "bench/bench_util.h"
#include "canon/crescendo.h"
#include "common/table.h"
#include "overlay/population.h"
#include "overlay/routing.h"

using namespace canon;

int main(int argc, char** argv) {
  const std::uint64_t seed = bench::flag_u64(argc, argv, "seed", 42);
  const std::uint64_t min_n = bench::flag_u64(argc, argv, "min-nodes", 1024);
  const std::uint64_t max_n = bench::flag_u64(argc, argv, "max-nodes", 65536);
  const std::uint64_t trials = bench::flag_u64(argc, argv, "trials", 4000);
  bench::header("Figure 5: average routing hops",
                "avg #hops vs n, levels 1-5, fanout 10, Zipf(1.25)");

  TextTable table({"nodes", "levels=1 (Chord)", "levels=2", "levels=3",
                   "levels=4", "levels=5"});
  for (std::uint64_t n = min_n; n <= max_n; n *= 2) {
    std::vector<std::string> row = {TextTable::num(n)};
    for (int levels = 1; levels <= 5; ++levels) {
      Rng rng(seed + levels);
      PopulationSpec spec;
      spec.node_count = n;
      spec.hierarchy.levels = levels;
      spec.hierarchy.fanout = 10;
      const auto net = make_population(spec, rng);
      const auto links = build_crescendo(net);
      const RingRouter router(net, links);
      Summary hops;
      for (std::uint64_t t = 0; t < trials; ++t) {
        const auto from =
            static_cast<std::uint32_t>(rng.uniform(net.size()));
        const NodeId key = net.space().wrap(rng());
        const Route r = router.route(from, key);
        if (!r.ok) {
          std::cerr << "routing failure (broken structure)\n";
          return 1;
        }
        hops.add(r.hops());
      }
      row.push_back(TextTable::num(hops.mean(), 2));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\n(paper: ~0.5*log2(n)+c; deeper hierarchies cost at most "
               "~0.7 extra hops)\n";
  return 0;
}
