// Shared main() for the google-benchmark microbenchmarks, adding the same
// --json=<path> report the fig*/ablation_* binaries emit.
//
// google-benchmark owns the command line (and rejects flags it does not
// know), so run_micro_benchmarks strips --json/--seed before Initialize,
// captures every benchmark run through a pass-through reporter, and folds
// the results — plus any registry metrics the benchmarked code recorded,
// e.g. the build.*_ms construction timers — into the standard report
// schema: one series row per benchmark with {name, iterations, real_time,
// cpu_time, time_unit, <counters...>}.
#ifndef CANON_BENCH_MICRO_UTIL_H
#define CANON_BENCH_MICRO_UTIL_H

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "bench/flags.h"
#include "common/parallel.h"
#include "overlay/query_engine.h"
#include "overlay/routing.h"
#include "telemetry/report.h"

namespace canon::bench {

/// ConsoleReporter that also keeps every Run for the JSON report.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& r : runs) runs_.push_back(r);
    ConsoleReporter::ReportRuns(runs);
  }
  const std::vector<Run>& runs() const { return runs_; }

 private:
  std::vector<Run> runs_;
};

inline int run_micro_benchmarks(int argc, char** argv,
                                const char* bench_name) {
  const std::string json_path = flag_str(argc, argv, "json", "");
  const std::uint64_t seed = flag_u64(argc, argv, "seed", 42);
  // --threads=N (0 ⇒ hardware_concurrency, 1 ⇒ exact serial path) for the
  // construction benchmarks; deterministic, only affects wall clock.
  set_parallel_threads(
      static_cast<int>(flag_u64(argc, argv, "threads", 0)));
  // Batch-engine knobs (see bench_util.h): results are width/grain
  // invariant, only the memory schedule moves.
  set_query_grain(
      static_cast<std::size_t>(flag_u64(argc, argv, "grain", 0)));
  set_probe_batch_width(static_cast<int>(flag_u64(
      argc, argv, "batch-width",
      static_cast<std::uint64_t>(kDefaultProbeBatchWidth))));

  // Hide our flags from google-benchmark's strict parser.
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json", 6) == 0 ||
        std::strncmp(argv[i], "--seed", 6) == 0 ||
        std::strncmp(argv[i], "--threads", 9) == 0 ||
        std::strncmp(argv[i], "--grain", 7) == 0 ||
        std::strncmp(argv[i], "--batch-width", 13) == 0) {
      continue;
    }
    args.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(args.size());

  telemetry::MetricsRegistry registry;
  telemetry::MetricsRegistry* prev = nullptr;
  if (!json_path.empty()) prev = telemetry::install_registry(&registry);

  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);

  int rc = 0;
  if (!json_path.empty()) {
    telemetry::install_registry(prev);
    telemetry::BenchReport report(bench_name, seed);
    report.set_param("threads",
                     telemetry::JsonValue(
                         static_cast<std::int64_t>(parallel_threads())));
    report.set_param("grain",
                     telemetry::JsonValue(
                         static_cast<std::uint64_t>(query_grain())));
    report.set_param("batch_width",
                     telemetry::JsonValue(
                         static_cast<std::int64_t>(probe_batch_width())));
    for (const auto& r : reporter.runs()) {
      telemetry::JsonValue row = telemetry::JsonValue::object();
      row.set("name", telemetry::JsonValue(r.benchmark_name()));
      row.set("iterations",
              telemetry::JsonValue(static_cast<std::int64_t>(r.iterations)));
      row.set("real_time", telemetry::JsonValue(r.GetAdjustedRealTime()));
      row.set("cpu_time", telemetry::JsonValue(r.GetAdjustedCPUTime()));
      row.set("time_unit",
              telemetry::JsonValue(benchmark::GetTimeUnitString(r.time_unit)));
      for (const auto& [name, counter] : r.counters) {
        row.set(name, telemetry::JsonValue(static_cast<double>(counter)));
      }
      report.add_row(std::move(row));
    }
    report.merge_registry(registry);
    try {
      report.write_file(json_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      rc = 1;
    }
  }
  benchmark::Shutdown();
  return rc;
}

}  // namespace canon::bench

/// Drop-in replacement for BENCHMARK_MAIN() with --json support.
#define CANON_MICRO_MAIN(bench_name)                                \
  int main(int argc, char** argv) {                                 \
    return canon::bench::run_micro_benchmarks(argc, argv,           \
                                              bench_name);          \
  }

#endif  // CANON_BENCH_MICRO_UTIL_H
