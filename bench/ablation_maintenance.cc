// Ablation A7 (Section 2.3): dynamic maintenance cost. Messages per join
// (per-level lookups + link updates at existing nodes) should grow as
// O(log n), matching plain Chord. The grown structure is audited at the
// end — a maintenance bug would bias every cost number, so the report
// carries the audit verdict alongside the series.
#include <cmath>
#include <iostream>

#include "audit/auditor.h"
#include "overlay/family_registry.h"
#include "bench/bench_util.h"
#include "common/table.h"
#include "hierarchy/generators.h"
#include "maintenance/dynamic_crescendo.h"

using namespace canon;

int main(int argc, char** argv) {
  bench::BenchRun run(argc, argv, "ablation_maintenance");
  const std::uint64_t seed = run.seed;
  const std::uint64_t max_n = run.u64("max-nodes", 4096);
  run.header("Ablation A7: dynamic maintenance cost",
                "messages per join (lookup hops + nodes updated) vs n, "
                "3-level hierarchy");

  Rng rng(seed);
  HierarchySpec hier;
  hier.levels = 3;
  hier.fanout = 10;
  const IdSpace space(32);
  DynamicCrescendo dyn(space);

  TextTable table({"n (before join)", "lookup hops", "nodes updated",
                   "messages", "log2(n)"});
  std::uint64_t next_report = 256;
  Summary hops;
  Summary updated;
  Summary messages;
  while (dyn.size() < max_n) {
    const auto ids = sample_unique_ids(1, space, rng);
    if (dyn.links_by_id().contains(ids[0])) continue;
    const auto paths = generate_hierarchy(1, hier, rng);
    const MaintenanceCost c = dyn.join(OverlayNode{ids[0], paths[0], -1});
    hops.add(c.lookup_hops);
    updated.add(c.nodes_updated);
    messages.add(c.messages());
    if (dyn.size() == next_report) {
      table.add_row({TextTable::num(next_report),
                     TextTable::num(hops.mean(), 1),
                     TextTable::num(updated.mean(), 1),
                     TextTable::num(messages.mean(), 1),
                     TextTable::num(std::log2(
                         static_cast<double>(next_report)), 1)});
      next_report *= 2;
      hops = Summary{};
      updated = Summary{};
      messages = Summary{};
    }
  }
  table.print(std::cout);
  std::cout << "\n(expected: messages track a small multiple of log2(n), as "
               "in plain Chord)\n";

  // Structural audit of the incrementally grown network.
  const LinkTable links = dyn.link_table();
  const audit::AuditReport audit_report =
      registry::audit_family("crescendo", dyn.network(), links);
  std::cout << "structural audit: " << audit_report.summary() << "\n";
  run.report().set_series(bench::table_to_json(table));
  run.report().set_param("audit", audit_report.to_json());
  const int rc = run.finish();
  return rc != 0 ? rc : (audit_report.ok() ? 0 : 1);
}
