// Figure 9 (table): number of inter-domain links in a 1000-source
// multicast tree, 32K nodes — the bandwidth-saving metric.
//
// 1000 random nodes route a query to one common random destination; the
// union of the paths is the multicast tree (data flows along the reverse
// edges). We count tree edges that cross a domain boundary at hierarchy
// levels 1, 2 and 3.
//
// Expected shape (paper): Crescendo 19 / 39 / 353.7 vs Chord (Prox.)
// 884.9 / 1273.7 / 2502.7 — a ~44x saving at the top level, ~15% usage at
// level 3.
#include <iostream>

#include "bench/bench_util.h"
#include "canon/crescendo.h"
#include "canon/proximity.h"
#include "common/table.h"
#include "overlay/metrics.h"
#include "overlay/routing.h"
#include "topology/physical_network.h"

using namespace canon;

int main(int argc, char** argv) {
  bench::BenchRun run(argc, argv, "fig9_multicast");
  const std::uint64_t seed = run.seed;
  const std::uint64_t n = run.u64("nodes", 32768);
  const std::uint64_t sources = run.u64("sources", 1000);
  const std::uint64_t repeats = run.u64("repeats", 10);
  run.header("Figure 9: inter-domain links in a 1000-source multicast "
                "tree (32K nodes)",
                "Crescendo vs Chord (Prox.), domain levels 1-3");

  Rng topo_rng(seed);
  const PhysicalNetwork phys(TransitStubConfig{}, topo_rng);
  Rng rng(seed + 1);
  const auto net = make_physical_population(n, phys, 32, rng);
  const HopCost cost = host_hop_cost(net, phys);
  const GroupedOverlay groups(net, 16);
  const ProximityConfig cfg;

  const auto crescendo = build_crescendo(net);
  const auto chord_prox = build_chord_prox(net, groups, cost, cfg, rng);
  const RingRouter crescendo_router(net, crescendo);
  const GroupRouter chord_router(net, groups, chord_prox);

  Summary cr[4];
  Summary ch[4];
  Rng qrng(seed + 5);
  for (std::uint64_t rep = 0; rep < repeats; ++rep) {
    const NodeId key = net.space().wrap(qrng());
    MulticastTree cr_tree;
    MulticastTree ch_tree;
    for (std::uint64_t s = 0; s < sources; ++s) {
      const auto src = static_cast<std::uint32_t>(qrng.uniform(net.size()));
      const Route a = crescendo_router.route(src, key);
      const Route b = chord_router.route(src, key);
      if (a.ok) cr_tree.add_route(a);
      if (b.ok) ch_tree.add_route(b);
    }
    for (int level = 1; level <= 3; ++level) {
      cr[level].add(
          static_cast<double>(cr_tree.inter_domain_edges(net, level)));
      ch[level].add(
          static_cast<double>(ch_tree.inter_domain_edges(net, level)));
    }
  }

  TextTable table({"domain level", "Crescendo", "Chord (Prox.)", "ratio"});
  for (int level = 1; level <= 3; ++level) {
    table.add_row({TextTable::num(level), TextTable::num(cr[level].mean(), 1),
                   TextTable::num(ch[level].mean(), 1),
                   TextTable::num(ch[level].mean() / cr[level].mean(), 1)});
  }
  table.print(std::cout);
  std::cout << "\n(paper: Crescendo 19 / 39 / 353.7; Chord(Prox) 884.9 / "
               "1273.7 / 2502.7 -> ratios ~44x / ~33x / ~7x)\n";
  run.report().set_series(bench::table_to_json(table));
  return run.finish();
}
