// Figure 3: average number of links per node vs. network size, for
// hierarchies of 1 (flat Chord) to 5 levels with fan-out 10 and Zipf(1.25)
// node placement, 32-bit IDs.
//
// Expected shape (paper): all curves sit just below log2(n); more levels
// give slightly FEWER links (Jensen's inequality), not more.
#include <iostream>

#include "bench/bench_util.h"
#include "canon/crescendo.h"
#include "common/table.h"
#include "overlay/population.h"

using namespace canon;

int main(int argc, char** argv) {
  bench::BenchRun run(argc, argv, "fig3_links");
  const std::uint64_t seed = run.seed;
  const std::uint64_t min_n = run.u64("min-nodes", 1024);
  const std::uint64_t max_n = run.u64("max-nodes", 65536);
  run.header("Figure 3: average links per node",
             "avg #edges/node vs n, levels 1-5, fanout 10, Zipf(1.25)");

  TextTable table({"nodes", "levels=1 (Chord)", "levels=2", "levels=3",
                   "levels=4", "levels=5"});
  for (std::uint64_t n = min_n; n <= max_n; n *= 2) {
    std::vector<std::string> row = {TextTable::num(n)};
    for (int levels = 1; levels <= 5; ++levels) {
      Rng rng(seed + levels);
      PopulationSpec spec;
      spec.node_count = n;
      spec.hierarchy.levels = levels;
      spec.hierarchy.fanout = 10;
      spec.hierarchy.placement = Placement::kZipf;
      const auto net = make_population(spec, rng);
      const auto links = build_crescendo(net);
      row.push_back(TextTable::num(links.mean_degree(), 2));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\n(paper: curves hug log2(n); deeper hierarchies slightly "
               "below flat Chord)\n";
  run.report().set_series(bench::table_to_json(table));
  return run.finish();
}
