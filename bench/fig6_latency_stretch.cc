// Figure 6: routing latency and stretch vs. network size on the 2040-router
// transit-stub topology, for Chord and Crescendo with and without proximity
// adaptation.
//
// Expected shape (paper): plain Chord's latency grows ~linearly in log n
// (stretch 5-8); plain Crescendo holds an almost constant stretch ~2.7;
// Chord (Prox.) improves but still grows (~2 at 64K); Crescendo (Prox.)
// holds a constant stretch ~1.3 and wins everywhere.
//
// Lookups run through the batch QueryEngine (workload pre-generated from
// forked RNG streams, fanned across --threads, byte-identical results at
// every thread count); latency Summaries cover successful routes.
#include <iostream>

#include "bench/bench_util.h"
#include "canon/crescendo.h"
#include "canon/proximity.h"
#include "common/table.h"
#include "dht/chord.h"
#include "overlay/metrics.h"
#include "overlay/query_engine.h"
#include "overlay/routing.h"
#include "topology/physical_network.h"

using namespace canon;

int main(int argc, char** argv) {
  bench::BenchRun run(argc, argv, "fig6_latency_stretch");
  const std::uint64_t seed = run.seed;
  const std::uint64_t min_n = run.u64("min-nodes", 2048);
  const std::uint64_t max_n = run.u64("max-nodes", 65536);
  const std::uint64_t trials = run.u64("trials", 2000);
  run.header(
      "Figure 6: latency and stretch on the transit-stub topology",
      "Chord / Crescendo x (no prox / prox), 2040 routers, 5-level hierarchy");

  Rng topo_rng(seed);
  const PhysicalNetwork phys(TransitStubConfig{}, topo_rng);
  const double base = phys.mean_host_latency(200000, topo_rng);
  std::cout << "mean shortest-path host latency (stretch normalizer): "
            << TextTable::num(base, 1) << " ms\n\n";

  TextTable table({"nodes", "Chord ms", "Chord stretch", "Crescendo ms",
                   "Crescendo stretch", "Chord(Prox) ms",
                   "Chord(Prox) stretch", "Crescendo(Prox) ms",
                   "Crescendo(Prox) stretch"});

  for (std::uint64_t n = min_n; n <= max_n; n *= 2) {
    Rng rng(seed + n);
    const auto net = make_physical_population(n, phys, 32, rng);
    const HopCost cost = host_hop_cost(net, phys);
    const GroupedOverlay groups(net, 16);
    const ProximityConfig cfg;

    QueryEngine engine(net);
    engine.set_cost(cost);
    std::vector<Summary> ms(4);

    // Plain Chord and Crescendo share the greedy ring router (and the
    // same pre-generated workload, as before).
    {
      const auto chord = build_chord(net);
      const auto crescendo = build_crescendo(net);
      const RingRouter chord_router(net, chord);
      const RingRouter crescendo_router(net, crescendo);
      const auto queries = uniform_workload(net, trials, Rng(seed + n + 1));
      ms[0] = engine.run(queries, chord_router).cost;
      ms[1] = engine.run(queries, crescendo_router).cost;
    }
    // Proximity-adapted versions use the group router.
    {
      Rng brng(seed + n + 2);
      const auto chord_prox = build_chord_prox(net, groups, cost, cfg, brng);
      const auto crescendo_prox =
          build_crescendo_prox(net, groups, cost, cfg, brng);
      const GroupRouter chord_router(net, groups, chord_prox);
      const GroupRouter crescendo_router(net, groups, crescendo_prox);
      const auto queries = uniform_workload(net, trials, Rng(seed + n + 3));
      ms[2] = engine.run(queries, chord_router).cost;
      ms[3] = engine.run(queries, crescendo_router).cost;
    }

    std::vector<std::string> row = {TextTable::num(n)};
    for (int s = 0; s < 4; ++s) {
      row.push_back(TextTable::num(ms[s].mean(), 0));
      row.push_back(TextTable::num(ms[s].mean() / base, 2));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\n(paper: Chord stretch grows with log n; Crescendo ~2.7 "
               "flat; Chord(Prox) ~2 at 64K; Crescendo(Prox) ~1.3 flat)\n";
  run.report().set_series(bench::table_to_json(table));
  return run.finish();
}
