// Microbenchmarks (google-benchmark): routing throughput for the greedy
// ring router (Chord/Crescendo), lookahead and XOR routing.
#include <benchmark/benchmark.h>

#include "bench/micro_util.h"

#include "canon/crescendo.h"
#include "canon/kandy.h"
#include "dht/chord.h"
#include "overlay/population.h"
#include "overlay/routing.h"

namespace canon {
namespace {

OverlayNetwork population(std::int64_t n, int levels) {
  Rng rng(42);
  PopulationSpec spec;
  spec.node_count = static_cast<std::size_t>(n);
  spec.hierarchy.levels = levels;
  spec.hierarchy.fanout = 10;
  return make_population(spec, rng);
}

void BM_RouteCrescendo(benchmark::State& state) {
  const auto net = population(state.range(0), 4);
  const auto links = build_crescendo(net);
  const RingRouter router(net, links);
  Rng rng(11);
  for (auto _ : state) {
    const auto from = static_cast<std::uint32_t>(rng.uniform(net.size()));
    const NodeId key = net.space().wrap(rng());
    benchmark::DoNotOptimize(router.route(from, key));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RouteCrescendo)->Arg(1024)->Arg(8192)->Arg(65536);

void BM_RouteCrescendoLookahead(benchmark::State& state) {
  const auto net = population(state.range(0), 4);
  const auto links = build_crescendo(net);
  const RingRouter router(net, links);
  Rng rng(12);
  for (auto _ : state) {
    const auto from = static_cast<std::uint32_t>(rng.uniform(net.size()));
    const NodeId key = net.space().wrap(rng());
    benchmark::DoNotOptimize(router.route_lookahead(from, key));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RouteCrescendoLookahead)->Arg(8192);

void BM_RouteKandy(benchmark::State& state) {
  const auto net = population(state.range(0), 4);
  Rng rng(13);
  const auto links = build_kandy(net, BucketChoice::kClosest, rng);
  const XorRouter router(net, links);
  for (auto _ : state) {
    const auto from = static_cast<std::uint32_t>(rng.uniform(net.size()));
    const NodeId key = net.space().wrap(rng());
    benchmark::DoNotOptimize(router.route(from, key));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RouteKandy)->Arg(8192);

}  // namespace
}  // namespace canon

CANON_MICRO_MAIN("micro_routing");
