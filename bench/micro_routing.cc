// Microbenchmarks (google-benchmark): routing throughput for the greedy
// ring router (Chord/Crescendo), lookahead and XOR routing, plus the batch
// QueryEngine.
//
// All (from, key) workloads are pre-generated outside the timed loops
// (cycled through a power-of-two array), so BM_Route* measures routing
// only — not RNG draws. The BM_Batch* benchmarks route the whole workload
// per iteration through the QueryEngine; pass --threads=N to fan the batch
// across the pool (items/sec is the headline number). BM_ProbeBatch* /
// BM_ProbeScalar* isolate the interleaved memory-level-parallel probe
// kernel against its scalar loop on a shared (cached) fixture, up to a
// DRAM-resident 2^20 nodes.
#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "bench/micro_util.h"

#include "canon/crescendo.h"
#include "canon/kandy.h"
#include "dht/chord.h"
#include "overlay/population.h"
#include "overlay/query_engine.h"
#include "overlay/routing.h"

namespace canon {
namespace {

/// Pre-generated workload size; a power of two so the timed loops cycle
/// with a mask instead of a modulo.
constexpr std::size_t kWorkload = 4096;
constexpr std::size_t kMask = kWorkload - 1;

void BM_RouteCrescendo(benchmark::State& state) {
  const auto net = bench::bench_population(
      static_cast<std::size_t>(state.range(0)), 4);
  const auto links = build_crescendo(net);
  const RingRouter router(net, links);
  const auto queries = uniform_workload(net, kWorkload, Rng(11));
  std::size_t i = 0;
  for (auto _ : state) {
    const Query& q = queries[i++ & kMask];
    benchmark::DoNotOptimize(router.route(q.from, q.key));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RouteCrescendo)->Arg(1024)->Arg(8192)->Arg(65536);

void BM_RouteCrescendoInto(benchmark::State& state) {
  const auto net = bench::bench_population(
      static_cast<std::size_t>(state.range(0)), 4);
  const auto links = build_crescendo(net);
  const RingRouter router(net, links);
  const auto queries = uniform_workload(net, kWorkload, Rng(11));
  Route scratch;  // reused: no per-query allocation after warm-up
  std::size_t i = 0;
  for (auto _ : state) {
    const Query& q = queries[i++ & kMask];
    router.route_into(q.from, q.key, scratch);
    benchmark::DoNotOptimize(scratch.ok);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RouteCrescendoInto)->Arg(8192);

void BM_ProbeCrescendo(benchmark::State& state) {
  const auto net = bench::bench_population(
      static_cast<std::size_t>(state.range(0)), 4);
  const auto links = build_crescendo(net);
  const RingRouter router(net, links);
  const auto queries = uniform_workload(net, kWorkload, Rng(11));
  std::size_t i = 0;
  for (auto _ : state) {
    const Query& q = queries[i++ & kMask];
    benchmark::DoNotOptimize(router.probe(q.from, q.key));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProbeCrescendo)->Arg(8192);

void BM_RouteCrescendoLookahead(benchmark::State& state) {
  const auto net = bench::bench_population(
      static_cast<std::size_t>(state.range(0)), 4);
  const auto links = build_crescendo(net);
  const RingRouter router(net, links);
  const auto queries = uniform_workload(net, kWorkload, Rng(12));
  std::size_t i = 0;
  for (auto _ : state) {
    const Query& q = queries[i++ & kMask];
    benchmark::DoNotOptimize(router.route_lookahead(q.from, q.key));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RouteCrescendoLookahead)->Arg(8192);

void BM_RouteKandy(benchmark::State& state) {
  const auto net = bench::bench_population(
      static_cast<std::size_t>(state.range(0)), 4);
  Rng rng(13);
  const auto links = build_kandy(net, BucketChoice::kClosest, rng);
  const XorRouter router(net, links);
  const auto queries = uniform_workload(net, kWorkload, rng);
  std::size_t i = 0;
  for (auto _ : state) {
    const Query& q = queries[i++ & kMask];
    benchmark::DoNotOptimize(router.route(q.from, q.key));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RouteKandy)->Arg(8192);

/// Shared population+links fixture for the probe-kernel benchmarks,
/// streamed-built (byte-identical to build_crescendo) so the 2^20 entry
/// stays inside the bench's memory budget, and cached across re-entries —
/// google-benchmark re-runs a benchmark function while estimating
/// iteration counts, and a 2^20 build is far too expensive to repeat.
const std::pair<OverlayNetwork, LinkTable>& probe_fixture(std::size_t n) {
  static std::map<std::size_t,
                  std::unique_ptr<std::pair<OverlayNetwork, LinkTable>>>
      cache;
  auto& slot = cache[n];
  if (!slot) {
    auto net = bench::bench_population(n, 4);
    auto links = build_crescendo_streamed(net);
    slot = std::make_unique<std::pair<OverlayNetwork, LinkTable>>(
        std::move(net), std::move(links));
  }
  return *slot;
}

/// The interleaved batch probe kernel (RingRouter::probe_batch at the
/// configured --batch-width) over the whole pre-generated workload per
/// iteration. 2^20 is deliberately DRAM-resident — the CSR row loads miss
/// every cache level, which is exactly where the group-prefetch window
/// earns its speedup over BM_ProbeScalarCrescendo.
void BM_ProbeBatchCrescendo(benchmark::State& state) {
  const auto& [net, links] =
      probe_fixture(static_cast<std::size_t>(state.range(0)));
  const RingRouter router(net, links);
  const auto queries = uniform_workload(net, kWorkload, Rng(11));
  std::vector<RouteProbe> out(queries.size());
  for (auto _ : state) {
    router.probe_batch(queries, out);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kWorkload));
}
BENCHMARK(BM_ProbeBatchCrescendo)->Arg(8192)->Arg(1 << 20);

/// The scalar per-call probe loop over the same fixture and workload —
/// the baseline BM_ProbeBatchCrescendo's speedup is measured against
/// (same build path, same cycling, only the kernel differs).
void BM_ProbeScalarCrescendo(benchmark::State& state) {
  const auto& [net, links] =
      probe_fixture(static_cast<std::size_t>(state.range(0)));
  const RingRouter router(net, links);
  const auto queries = uniform_workload(net, kWorkload, Rng(11));
  std::size_t i = 0;
  for (auto _ : state) {
    const Query& q = queries[i++ & kMask];
    benchmark::DoNotOptimize(router.probe(q.from, q.key));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProbeScalarCrescendo)->Arg(8192)->Arg(1 << 20);

/// Whole-workload batch through the QueryEngine in probe mode (the
/// engine's fastest path: no path storage at all). One iteration routes
/// kWorkload lookups; items/sec is lookup throughput at the configured
/// --threads.
void BM_BatchRouteCrescendo(benchmark::State& state) {
  const auto net = bench::bench_population(
      static_cast<std::size_t>(state.range(0)), 4);
  const auto links = build_crescendo(net);
  const RingRouter router(net, links);
  const QueryEngine engine(net);
  const auto queries = uniform_workload(net, kWorkload, Rng(11));
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(queries, router));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kWorkload));
}
BENCHMARK(BM_BatchRouteCrescendo)->Arg(8192)->Arg(65536);

/// Same batch in full mode (per-shard scratch route_into + level tallies):
/// what the fig5-style benches pay per lookup.
void BM_BatchRouteCrescendoFull(benchmark::State& state) {
  const auto net = bench::bench_population(
      static_cast<std::size_t>(state.range(0)), 4);
  const auto links = build_crescendo(net);
  const RingRouter router(net, links);
  QueryEngine engine(net);
  engine.set_level_tracking(true);
  const auto queries = uniform_workload(net, kWorkload, Rng(11));
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(queries, router));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kWorkload));
}
BENCHMARK(BM_BatchRouteCrescendoFull)->Arg(8192);

}  // namespace
}  // namespace canon

CANON_MICRO_MAIN("micro_routing");
