// Microbenchmarks (google-benchmark): routing throughput for the greedy
// ring router (Chord/Crescendo), lookahead and XOR routing, plus the batch
// QueryEngine.
//
// All (from, key) workloads are pre-generated outside the timed loops
// (cycled through a power-of-two array), so BM_Route* measures routing
// only — not RNG draws. The BM_Batch* benchmarks route the whole workload
// per iteration through the QueryEngine; pass --threads=N to fan the batch
// across the pool (items/sec is the headline number).
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "bench/micro_util.h"

#include "canon/crescendo.h"
#include "canon/kandy.h"
#include "dht/chord.h"
#include "overlay/population.h"
#include "overlay/query_engine.h"
#include "overlay/routing.h"

namespace canon {
namespace {

/// Pre-generated workload size; a power of two so the timed loops cycle
/// with a mask instead of a modulo.
constexpr std::size_t kWorkload = 4096;
constexpr std::size_t kMask = kWorkload - 1;

void BM_RouteCrescendo(benchmark::State& state) {
  const auto net = bench::bench_population(
      static_cast<std::size_t>(state.range(0)), 4);
  const auto links = build_crescendo(net);
  const RingRouter router(net, links);
  const auto queries = uniform_workload(net, kWorkload, Rng(11));
  std::size_t i = 0;
  for (auto _ : state) {
    const Query& q = queries[i++ & kMask];
    benchmark::DoNotOptimize(router.route(q.from, q.key));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RouteCrescendo)->Arg(1024)->Arg(8192)->Arg(65536);

void BM_RouteCrescendoInto(benchmark::State& state) {
  const auto net = bench::bench_population(
      static_cast<std::size_t>(state.range(0)), 4);
  const auto links = build_crescendo(net);
  const RingRouter router(net, links);
  const auto queries = uniform_workload(net, kWorkload, Rng(11));
  Route scratch;  // reused: no per-query allocation after warm-up
  std::size_t i = 0;
  for (auto _ : state) {
    const Query& q = queries[i++ & kMask];
    router.route_into(q.from, q.key, scratch);
    benchmark::DoNotOptimize(scratch.ok);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RouteCrescendoInto)->Arg(8192);

void BM_ProbeCrescendo(benchmark::State& state) {
  const auto net = bench::bench_population(
      static_cast<std::size_t>(state.range(0)), 4);
  const auto links = build_crescendo(net);
  const RingRouter router(net, links);
  const auto queries = uniform_workload(net, kWorkload, Rng(11));
  std::size_t i = 0;
  for (auto _ : state) {
    const Query& q = queries[i++ & kMask];
    benchmark::DoNotOptimize(router.probe(q.from, q.key));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProbeCrescendo)->Arg(8192);

void BM_RouteCrescendoLookahead(benchmark::State& state) {
  const auto net = bench::bench_population(
      static_cast<std::size_t>(state.range(0)), 4);
  const auto links = build_crescendo(net);
  const RingRouter router(net, links);
  const auto queries = uniform_workload(net, kWorkload, Rng(12));
  std::size_t i = 0;
  for (auto _ : state) {
    const Query& q = queries[i++ & kMask];
    benchmark::DoNotOptimize(router.route_lookahead(q.from, q.key));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RouteCrescendoLookahead)->Arg(8192);

void BM_RouteKandy(benchmark::State& state) {
  const auto net = bench::bench_population(
      static_cast<std::size_t>(state.range(0)), 4);
  Rng rng(13);
  const auto links = build_kandy(net, BucketChoice::kClosest, rng);
  const XorRouter router(net, links);
  const auto queries = uniform_workload(net, kWorkload, rng);
  std::size_t i = 0;
  for (auto _ : state) {
    const Query& q = queries[i++ & kMask];
    benchmark::DoNotOptimize(router.route(q.from, q.key));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RouteKandy)->Arg(8192);

/// Whole-workload batch through the QueryEngine in probe mode (the
/// engine's fastest path: no path storage at all). One iteration routes
/// kWorkload lookups; items/sec is lookup throughput at the configured
/// --threads.
void BM_BatchRouteCrescendo(benchmark::State& state) {
  const auto net = bench::bench_population(
      static_cast<std::size_t>(state.range(0)), 4);
  const auto links = build_crescendo(net);
  const RingRouter router(net, links);
  const QueryEngine engine(net);
  const auto queries = uniform_workload(net, kWorkload, Rng(11));
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(queries, router));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kWorkload));
}
BENCHMARK(BM_BatchRouteCrescendo)->Arg(8192)->Arg(65536);

/// Same batch in full mode (per-shard scratch route_into + level tallies):
/// what the fig5-style benches pay per lookup.
void BM_BatchRouteCrescendoFull(benchmark::State& state) {
  const auto net = bench::bench_population(
      static_cast<std::size_t>(state.range(0)), 4);
  const auto links = build_crescendo(net);
  const RingRouter router(net, links);
  QueryEngine engine(net);
  engine.set_level_tracking(true);
  const auto queries = uniform_workload(net, kWorkload, Rng(11));
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(queries, router));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kWorkload));
}
BENCHMARK(BM_BatchRouteCrescendoFull)->Arg(8192);

}  // namespace
}  // namespace canon

CANON_MICRO_MAIN("micro_routing");
