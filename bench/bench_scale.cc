// Mega-scale crescendo: streamed construction and batch lookups at
// 10^6..10^7 nodes, with the resource observatory attached
// (docs/PERFORMANCE.md "Scaling to millions of nodes", docs/TELEMETRY.md
// §10 "Resource observatory").
//
// Each row builds a fresh population of n nodes (SoA metadata), streams
// the Crescendo link table shard by shard (build_crescendo_streamed), and
// fires --lookups uniform queries through the batch QueryEngine's probe
// hot path. A fresh MemoryAccountant is installed per row, so every row
// carries a per-subsystem byte ledger; current_rss_mb() is sampled at
// every phase boundary and per streamed-build shard into an RSS timeline.
// Reported per row:
//
//   real_time        link-construction wall clock in ms (the gated metric
//                    — tools/compare_bench.py matches micro-bench reports
//                    by "name" and gates "real_time")
//   build_s          the same wall clock in seconds
//   pop_s            population generation (IDs + hierarchy + sort)
//   peak_rss_mb      process high-water RSS after the row (monotone over
//                    the process lifetime)
//   current_rss_mb   point-in-time RSS after the row (VmRSS) — the pair
//                    makes each row self-describing; no read-order caveat
//   links            total directed links
//   lookups_per_sec  probe-mode throughput through the interleaved batch
//                    kernel (the configured --batch-width)
//   scalar_lookups_per_sec  the same workload through the scalar per-query
//                    probe loop (batch width 0) — the MLP baseline
//   batch_speedup    lookups_per_sec / scalar_lookups_per_sec (the row
//                    self-checks that both runs produced bit-identical
//                    stats before reporting either)
//   mean_hops        mean hop count over OK lookups
//
// Crescendo row names are "crescendo/<n>"; sizes quadruple from
// --min-nodes to --max-nodes. A final "landmark/<routers>" row covers the
// landmark-latency trajectory: a transit-stub topology past the 4096-router
// exact threshold, its LandmarkLatency estimator, and a physical population
// of --landmark-nodes hosts (0 disables the row). Per-subsystem peak bytes
// ride in "mem/<row>/<tag>" series rows (gated in CI via
// compare_bench.py --metric=peak_bytes) and the full ledgers plus the RSS
// timeline land in metrics.memory. Attributed tags and bytes are
// byte-identical at any --threads; only wall clocks and measured RSS move
// (check_json_schema.py --threads-invariant strips exactly those).
#include <chrono>
#include <iostream>
#include <mutex>

#include "bench/bench_util.h"
#include "canon/crescendo.h"
#include "common/table.h"
#include "overlay/population.h"
#include "overlay/query_engine.h"
#include "overlay/routing.h"
#include "telemetry/mem_stats.h"
#include "telemetry/timeseries.h"
#include "topology/physical_network.h"

using namespace canon;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Wall-clock RSS timeline over the whole bench run: thread-safe sampler
/// feeding the TimeSeriesRecorder's rss channel (the recorder itself is
/// single-threaded, so samples from build workers funnel through a mutex).
class RssTimeline {
 public:
  void sample() {
    const double at_ms = seconds_since(epoch_) * 1e3;
    const double mb = bench::current_rss_mb();
    std::lock_guard<std::mutex> lock(mu_);
    series_.rss_mb(at_ms, mb);
  }
  telemetry::JsonValue to_json() {
    std::lock_guard<std::mutex> lock(mu_);
    return series_.to_json();
  }

 private:
  std::chrono::steady_clock::time_point epoch_ =
      std::chrono::steady_clock::now();
  std::mutex mu_;
  telemetry::TimeSeriesRecorder series_{100.0};  // 100 ms windows
};

/// One row's ledger + measured-RSS report under metrics.memory, plus the
/// "mem/<row>/<tag>" series rows the CI byte gate matches by name.
void emit_memory_report(bench::BenchRun& run, const std::string& row_name,
                        const telemetry::MemoryAccountant& acct,
                        telemetry::JsonValue measured,
                        telemetry::JsonValue& memory_section) {
  telemetry::JsonValue entry = acct.to_json();
  entry.set("measured", std::move(measured));
  memory_section.set(row_name, std::move(entry));
  for (const auto& [tag, stats] : acct.tags()) {
    telemetry::JsonValue row = telemetry::JsonValue::object();
    row.set("name", telemetry::JsonValue("mem/" + row_name + "/" + tag));
    row.set("peak_bytes", telemetry::JsonValue(stats.peak));
    row.set("current_bytes", telemetry::JsonValue(stats.current));
    run.report().add_row(std::move(row));
  }
}

/// One row's lookup phase, run twice over the same workload: first the
/// scalar per-query probe loop (batch width forced to 0 — the
/// memory-level-parallelism baseline), then the interleaved batch kernel
/// at the configured --batch-width. The two runs must produce
/// bit-identical stats (the kernels change when memory is touched, never
/// which neighbor wins); their wall clocks become the row's
/// scalar/batch throughput columns.
struct QueryPhase {
  QueryStats stats;
  double lookups_per_sec = 0;         // batch kernel throughput
  double scalar_lookups_per_sec = 0;  // width-0 reference loop
  double batch_speedup = 0;
};

bool run_query_phase(const QueryEngine& engine, const RingRouter& router,
                     const std::vector<Query>& queries,
                     RssTimeline& timeline, QueryPhase& out) {
  const std::size_t lookups = queries.size();
  const int width = probe_batch_width();

  set_probe_batch_width(0);
  auto start = std::chrono::steady_clock::now();
  const QueryStats scalar_stats = engine.run(queries, router);
  const double scalar_s = seconds_since(start);
  set_probe_batch_width(width);
  timeline.sample();

  start = std::chrono::steady_clock::now();
  out.stats = engine.run(queries, router);
  const double batch_s = seconds_since(start);
  timeline.sample();

  if (out.stats.queries != scalar_stats.queries ||
      out.stats.failures != scalar_stats.failures ||
      out.stats.total_hops != scalar_stats.total_hops ||
      out.stats.hops.count() != scalar_stats.hops.count() ||
      out.stats.hops.mean() != scalar_stats.hops.mean()) {
    std::cerr << "batch kernel diverged from the scalar probe loop\n";
    return false;
  }
  out.lookups_per_sec =
      batch_s > 0 ? static_cast<double>(lookups) / batch_s : 0.0;
  out.scalar_lookups_per_sec =
      scalar_s > 0 ? static_cast<double>(lookups) / scalar_s : 0.0;
  out.batch_speedup = batch_s > 0 ? scalar_s / batch_s : 0.0;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchRun run(argc, argv, "bench_scale");
  const std::uint64_t min_n = run.u64("min-nodes", std::uint64_t{1} << 18);
  const std::uint64_t max_n = run.u64("max-nodes", std::uint64_t{1} << 20);
  const std::uint64_t lookups = run.u64("lookups", 100000);
  const int levels = static_cast<int>(run.u64("levels", 3));
  const std::uint64_t shard_nodes = run.u64("shard-nodes", kStreamShardNodes);
  const std::uint64_t landmark_nodes =
      run.u64("landmark-nodes", std::uint64_t{1} << 16);
  run.header("Mega-scale crescendo: streamed build + batch lookups",
             "construction/lookup throughput at 10^6+ nodes "
             "(32-bit hot paths, SoA metadata, streamed CSR, "
             "per-subsystem memory ledger)");

  RssTimeline timeline;
  telemetry::JsonValue memory_section = telemetry::JsonValue::object();

  TextTable table({"row", "pop s", "build s", "RSS MB (peak/now)",
                   "attributed MB", "links", "Mlookups/s", "speedup",
                   "mean hops"});

  for (std::uint64_t n = min_n; n <= max_n; n *= 4) {
    telemetry::MemoryAccountant acct;
    telemetry::MemoryAccountant* prev =
        telemetry::install_mem_accountant(&acct);
    timeline.sample();
    const double start_mb = bench::current_rss_mb();

    auto start = std::chrono::steady_clock::now();
    const auto net = bench::bench_population(n, levels, run.seed);
    const double pop_s = seconds_since(start);
    timeline.sample();
    const double after_pop_mb = bench::current_rss_mb();

    start = std::chrono::steady_clock::now();
    const auto links = build_crescendo_streamed(
        net, shard_nodes,
        [&timeline](std::size_t, std::size_t) { timeline.sample(); });
    const double build_s = seconds_since(start);
    timeline.sample();
    const double after_build_mb = bench::current_rss_mb();

    const RingRouter router(net, links);
    QueryEngine engine(net);
    const auto queries = uniform_workload(net, lookups, Rng(run.seed));
    QueryPhase q;
    if (!run_query_phase(engine, router, queries, timeline, q)) return 1;
    const QueryStats& stats = q.stats;
    if (stats.failures != 0) {
      std::cerr << "routing failure (broken structure)\n";
      return 1;
    }
    const double peak_mb = bench::peak_rss_mb();
    const double now_mb = bench::current_rss_mb();
    const double attributed_mb =
        static_cast<double>(acct.current_bytes()) / (1024.0 * 1024.0);

    const std::string row_name = "crescendo/" + std::to_string(n);
    table.add_row({row_name, TextTable::num(pop_s, 2),
                   TextTable::num(build_s, 2),
                   TextTable::num(peak_mb, 0) + "/" +
                       TextTable::num(now_mb, 0),
                   TextTable::num(attributed_mb, 0),
                   TextTable::num(links.total_links()),
                   TextTable::num(q.lookups_per_sec / 1e6, 2),
                   TextTable::num(q.batch_speedup, 2),
                   TextTable::num(stats.hops.mean(), 2)});
    if (run.json_enabled()) {
      run.metrics().gauge("build.peak_rss_mb").set(peak_mb);
      telemetry::JsonValue row = telemetry::JsonValue::object();
      row.set("name", telemetry::JsonValue(row_name));
      row.set("nodes", telemetry::JsonValue(n));
      row.set("levels", telemetry::JsonValue(
                            static_cast<std::int64_t>(levels)));
      row.set("real_time", telemetry::JsonValue(build_s * 1e3));
      row.set("build_s", telemetry::JsonValue(build_s));
      row.set("pop_s", telemetry::JsonValue(pop_s));
      row.set("peak_rss_mb", telemetry::JsonValue(peak_mb));
      row.set("current_rss_mb", telemetry::JsonValue(now_mb));
      row.set("links", telemetry::JsonValue(links.total_links()));
      row.set("lookups", telemetry::JsonValue(lookups));
      row.set("lookups_per_sec", telemetry::JsonValue(q.lookups_per_sec));
      row.set("scalar_lookups_per_sec",
              telemetry::JsonValue(q.scalar_lookups_per_sec));
      row.set("batch_speedup", telemetry::JsonValue(q.batch_speedup));
      row.set("mean_hops", telemetry::JsonValue(stats.hops.mean()));
      run.report().add_row(std::move(row));

      telemetry::JsonValue measured = telemetry::JsonValue::object();
      measured.set("start_mb", telemetry::JsonValue(start_mb));
      measured.set("after_pop_mb", telemetry::JsonValue(after_pop_mb));
      measured.set("after_build_mb", telemetry::JsonValue(after_build_mb));
      measured.set("after_queries_mb", telemetry::JsonValue(now_mb));
      measured.set("peak_mb", telemetry::JsonValue(peak_mb));
      emit_memory_report(run, row_name, acct, std::move(measured),
                         memory_section);
    }
    telemetry::install_mem_accountant(prev);
  }

  // Landmark-mode row: a transit-stub topology past the 4096-router exact
  // threshold (the ROADMAP's uncovered trajectory), its LandmarkLatency
  // estimator, and a crescendo build over a physical population.
  if (landmark_nodes > 0) {
    telemetry::MemoryAccountant acct;
    telemetry::MemoryAccountant* prev =
        telemetry::install_mem_accountant(&acct);
    timeline.sample();
    const double start_mb = bench::current_rss_mb();

    TransitStubConfig topo_config;  // 40 transit + 5120 stub = 5160 routers
    topo_config.stub_domains_per_transit = 8;
    topo_config.stubs_per_domain = 16;

    auto start = std::chrono::steady_clock::now();
    Rng rng(run.seed);
    const PhysicalNetwork phys(topo_config, rng);
    const double latency_build_s = seconds_since(start);
    timeline.sample();

    start = std::chrono::steady_clock::now();
    const auto net =
        make_physical_population(landmark_nodes, phys, 32, rng);
    const double pop_s = seconds_since(start);
    timeline.sample();
    const double after_pop_mb = bench::current_rss_mb();

    start = std::chrono::steady_clock::now();
    const auto links = build_crescendo_streamed(
        net, shard_nodes,
        [&timeline](std::size_t, std::size_t) { timeline.sample(); });
    const double build_s = seconds_since(start);
    timeline.sample();
    const double after_build_mb = bench::current_rss_mb();

    const RingRouter router(net, links);
    QueryEngine engine(net);
    const auto queries = uniform_workload(net, lookups, Rng(run.seed));
    QueryPhase q;
    if (!run_query_phase(engine, router, queries, timeline, q)) return 1;
    const QueryStats& stats = q.stats;
    if (stats.failures != 0) {
      std::cerr << "routing failure (broken structure)\n";
      return 1;
    }
    const double peak_mb = bench::peak_rss_mb();
    const double now_mb = bench::current_rss_mb();
    const double attributed_mb =
        static_cast<double>(acct.current_bytes()) / (1024.0 * 1024.0);
    const int routers = phys.topology().router_count();
    if (phys.latencies().exact()) {
      std::cerr << "landmark row unexpectedly on the exact-matrix path\n";
      return 1;
    }

    const std::string row_name = "landmark/" + std::to_string(routers);
    table.add_row({row_name, TextTable::num(pop_s, 2),
                   TextTable::num(build_s, 2),
                   TextTable::num(peak_mb, 0) + "/" +
                       TextTable::num(now_mb, 0),
                   TextTable::num(attributed_mb, 0),
                   TextTable::num(links.total_links()),
                   TextTable::num(q.lookups_per_sec / 1e6, 2),
                   TextTable::num(q.batch_speedup, 2),
                   TextTable::num(stats.hops.mean(), 2)});
    if (run.json_enabled()) {
      telemetry::JsonValue row = telemetry::JsonValue::object();
      row.set("name", telemetry::JsonValue(row_name));
      row.set("nodes", telemetry::JsonValue(landmark_nodes));
      row.set("routers", telemetry::JsonValue(
                             static_cast<std::int64_t>(routers)));
      row.set("landmarks",
              telemetry::JsonValue(static_cast<std::uint64_t>(
                  phys.latencies().landmarks().size())));
      row.set("real_time", telemetry::JsonValue(build_s * 1e3));
      row.set("build_s", telemetry::JsonValue(build_s));
      row.set("pop_s", telemetry::JsonValue(pop_s));
      row.set("latency_build_s", telemetry::JsonValue(latency_build_s));
      row.set("peak_rss_mb", telemetry::JsonValue(peak_mb));
      row.set("current_rss_mb", telemetry::JsonValue(now_mb));
      row.set("links", telemetry::JsonValue(links.total_links()));
      row.set("lookups", telemetry::JsonValue(lookups));
      row.set("lookups_per_sec", telemetry::JsonValue(q.lookups_per_sec));
      row.set("scalar_lookups_per_sec",
              telemetry::JsonValue(q.scalar_lookups_per_sec));
      row.set("batch_speedup", telemetry::JsonValue(q.batch_speedup));
      row.set("mean_hops", telemetry::JsonValue(stats.hops.mean()));
      run.report().add_row(std::move(row));

      telemetry::JsonValue measured = telemetry::JsonValue::object();
      measured.set("start_mb", telemetry::JsonValue(start_mb));
      measured.set("after_pop_mb", telemetry::JsonValue(after_pop_mb));
      measured.set("after_build_mb", telemetry::JsonValue(after_build_mb));
      measured.set("after_queries_mb", telemetry::JsonValue(now_mb));
      measured.set("peak_mb", telemetry::JsonValue(peak_mb));
      emit_memory_report(run, row_name, acct, std::move(measured),
                         memory_section);
    }
    telemetry::install_mem_accountant(prev);
  }

  if (run.json_enabled()) {
    memory_section.set("rss_timeline", timeline.to_json());
    run.report().set_metric("memory", std::move(memory_section));
  }

  table.print(std::cout);
  std::cout << "\n(RSS MB column is peak/current; per-subsystem bytes in "
               "the JSON report's metrics.memory section)\n";
  return run.finish();
}
