// Mega-scale crescendo: streamed construction and batch lookups at
// 10^6..10^7 nodes (docs/PERFORMANCE.md "Scaling to millions of nodes").
//
// Each row builds a fresh population of n nodes (SoA metadata), streams
// the Crescendo link table shard by shard (build_crescendo_streamed), and
// fires --lookups uniform queries through the batch QueryEngine's probe
// hot path. Reported per row:
//
//   real_time        link-construction wall clock in ms (the gated metric
//                    — tools/compare_bench.py matches micro-bench reports
//                    by "name" and gates "real_time")
//   build_s          the same wall clock in seconds
//   pop_s            population generation (IDs + hierarchy + sort)
//   peak_rss_mb      process high-water RSS after the row's build; a
//                    monotone high-water mark, so rows must be read in
//                    ascending-n order as "peak so far"
//   links            total directed links
//   lookups_per_sec  probe-mode batch throughput
//   mean_hops        mean hop count over OK lookups
//
// Row names are "crescendo/<n>". Sizes quadruple from --min-nodes to
// --max-nodes; the committed BENCH_scale.json carries a smoke run
// (2^18 + 2^20, gated in CI via --run=bench_scale) and a full 2^22 run
// for the trajectory. Everything here is deterministic at any --threads;
// only the wall clocks move.
#include <chrono>
#include <iostream>

#include "bench/bench_util.h"
#include "canon/crescendo.h"
#include "common/table.h"
#include "overlay/population.h"
#include "overlay/query_engine.h"
#include "overlay/routing.h"

using namespace canon;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchRun run(argc, argv, "bench_scale");
  const std::uint64_t min_n = run.u64("min-nodes", std::uint64_t{1} << 18);
  const std::uint64_t max_n = run.u64("max-nodes", std::uint64_t{1} << 20);
  const std::uint64_t lookups = run.u64("lookups", 100000);
  const int levels = static_cast<int>(run.u64("levels", 3));
  const std::uint64_t shard_nodes = run.u64("shard-nodes", kStreamShardNodes);
  run.header("Mega-scale crescendo: streamed build + batch lookups",
             "construction/lookup throughput at 10^6+ nodes "
             "(32-bit hot paths, SoA metadata, streamed CSR)");

  TextTable table({"nodes", "pop s", "build s", "peak RSS MB", "links",
                   "Mlookups/s", "mean hops"});
  for (std::uint64_t n = min_n; n <= max_n; n *= 4) {
    auto start = std::chrono::steady_clock::now();
    const auto net = bench::bench_population(n, levels, run.seed);
    const double pop_s = seconds_since(start);

    start = std::chrono::steady_clock::now();
    const auto links = build_crescendo_streamed(net, shard_nodes);
    const double build_s = seconds_since(start);
    const double rss_mb = bench::peak_rss_mb();

    const RingRouter router(net, links);
    QueryEngine engine(net);
    const auto queries = uniform_workload(net, lookups, Rng(run.seed));
    start = std::chrono::steady_clock::now();
    const QueryStats stats = engine.run(queries, router);
    const double query_s = seconds_since(start);
    if (stats.failures != 0) {
      std::cerr << "routing failure (broken structure)\n";
      return 1;
    }
    const double lookups_per_sec =
        query_s > 0 ? static_cast<double>(lookups) / query_s : 0.0;

    table.add_row({TextTable::num(n), TextTable::num(pop_s, 2),
                   TextTable::num(build_s, 2), TextTable::num(rss_mb, 0),
                   TextTable::num(links.total_links()),
                   TextTable::num(lookups_per_sec / 1e6, 2),
                   TextTable::num(stats.hops.mean(), 2)});
    if (run.json_enabled()) {
      run.metrics().gauge("build.peak_rss_mb").set(rss_mb);
      telemetry::JsonValue row = telemetry::JsonValue::object();
      row.set("name",
              telemetry::JsonValue("crescendo/" + std::to_string(n)));
      row.set("nodes", telemetry::JsonValue(n));
      row.set("levels", telemetry::JsonValue(
                            static_cast<std::int64_t>(levels)));
      row.set("real_time", telemetry::JsonValue(build_s * 1e3));
      row.set("build_s", telemetry::JsonValue(build_s));
      row.set("pop_s", telemetry::JsonValue(pop_s));
      row.set("peak_rss_mb", telemetry::JsonValue(rss_mb));
      row.set("links", telemetry::JsonValue(links.total_links()));
      row.set("lookups", telemetry::JsonValue(lookups));
      row.set("lookups_per_sec", telemetry::JsonValue(lookups_per_sec));
      row.set("mean_hops", telemetry::JsonValue(stats.hops.mean()));
      run.report().add_row(std::move(row));
    }
  }
  table.print(std::cout);
  std::cout << "\n(peak RSS is a process high-water mark: read rows in "
               "ascending-n order as \"peak so far\")\n";
  return run.finish();
}
