// Figure 4: the distribution (PDF) of the number of links per node in a
// 32K-node network, for 1 to 5 hierarchy levels.
//
// Expected shape (paper): mean ~15 links/node; deeper hierarchies flatten
// the distribution to the LEFT of the mean while the maximum barely moves.
#include <iostream>

#include "bench/bench_util.h"
#include "canon/crescendo.h"
#include "common/table.h"
#include "overlay/population.h"

using namespace canon;

int main(int argc, char** argv) {
  bench::BenchRun run(argc, argv, "fig4_degree_pdf");
  const std::uint64_t seed = run.seed;
  const std::uint64_t n = run.u64("nodes", 32768);
  run.header("Figure 4: PDF of links per node (32K nodes)",
                "fraction of nodes with a given degree, levels 1-5");

  std::vector<Histogram> hist(5);
  std::vector<double> mean(5);
  for (int levels = 1; levels <= 5; ++levels) {
    Rng rng(seed + levels);
    PopulationSpec spec;
    spec.node_count = n;
    spec.hierarchy.levels = levels;
    spec.hierarchy.fanout = 10;
    const auto net = make_population(spec, rng);
    const auto links = build_crescendo(net);
    hist[levels - 1] = links.degree_histogram();
    mean[levels - 1] = links.mean_degree();
  }

  TextTable table({"#links", "levels=1 (Chord)", "levels=2", "levels=3",
                   "levels=4", "levels=5"});
  std::int64_t lo = hist[0].min();
  std::int64_t hi = hist[0].max();
  for (const auto& h : hist) {
    lo = std::min(lo, h.min());
    hi = std::max(hi, h.max());
  }
  for (std::int64_t d = lo; d <= hi; ++d) {
    std::vector<std::string> row = {std::to_string(d)};
    for (int l = 0; l < 5; ++l) row.push_back(TextTable::num(hist[l].pmf(d), 4));
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\nmeans:";
  for (int l = 0; l < 5; ++l) {
    std::cout << " levels=" << (l + 1) << ": " << TextTable::num(mean[l], 2);
  }
  std::cout << "\nmax degree:";
  for (int l = 0; l < 5; ++l) {
    std::cout << " levels=" << (l + 1) << ": " << hist[l].max();
  }
  std::cout << "\n(paper: distribution flattens left of the ~15-link mean as "
               "levels grow; max stays put)\n";
  run.report().set_series(bench::table_to_json(table));
  return run.finish();
}
