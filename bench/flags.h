// Command-line flag parsing shared by every binary that is not allowed a
// real flags library: the fig*/ablation_* experiments (bench_util.h), the
// google-benchmark micros (micro_util.h) and the canon_doctor tool.
//
// Flags are "--name=value" (a bare "--name" is the empty string, which
// flag_bool treats as true). Unknown flags are ignored by these helpers;
// binaries that want strictness can enumerate argv themselves.
#ifndef CANON_BENCH_FLAGS_H
#define CANON_BENCH_FLAGS_H

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>

namespace canon::bench {

/// Returns the value of "--name=value" from argv, or nullptr if absent.
/// A bare "--name" yields the empty string.
inline const char* flag_raw(int argc, char** argv, const char* name) {
  const std::string flag = std::string("--") + name;
  const std::string prefix = flag + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
    if (flag == argv[i]) return "";
  }
  return nullptr;
}

/// True iff "--name" or "--name=value" appears in argv at all. Lets a
/// binary keep an optional flag out of its recorded params (and so out of
/// the JSON report) unless the caller actually passed it.
inline bool flag_present(int argc, char** argv, const char* name) {
  return flag_raw(argc, argv, name) != nullptr;
}

/// Parses "--name=value" from argv; returns `fallback` if absent.
inline std::uint64_t flag_u64(int argc, char** argv, const char* name,
                              std::uint64_t fallback) {
  const char* v = flag_raw(argc, argv, name);
  return (v && *v) ? std::strtoull(v, nullptr, 10) : fallback;
}

inline double flag_double(int argc, char** argv, const char* name,
                          double fallback) {
  const char* v = flag_raw(argc, argv, name);
  return (v && *v) ? std::strtod(v, nullptr) : fallback;
}

inline std::string flag_str(int argc, char** argv, const char* name,
                            const char* fallback) {
  const char* v = flag_raw(argc, argv, name);
  return v ? std::string(v) : std::string(fallback);
}

/// "--name" and "--name=true/1/yes/on" are true; "--name=false/0/no/off"
/// is false; absent is `fallback`.
inline bool flag_bool(int argc, char** argv, const char* name, bool fallback) {
  const char* v = flag_raw(argc, argv, name);
  if (!v) return fallback;
  if (!*v) return true;
  const std::string s(v);
  return !(s == "false" || s == "0" || s == "no" || s == "off");
}

}  // namespace canon::bench

#endif  // CANON_BENCH_FLAGS_H
