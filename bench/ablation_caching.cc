// Ablation A3 (Section 4.2): hierarchical proxy caching under a Zipfian
// workload with domain locality of reference. Reports hop savings and the
// level-aware vs LRU replacement comparison under cache pressure.
#include <iostream>

#include "bench/bench_util.h"
#include "canon/crescendo.h"
#include "common/table.h"
#include "common/zipf.h"
#include "overlay/population.h"
#include "storage/hierarchical_store.h"

using namespace canon;

namespace {

struct RunResult {
  double mean_hops = 0;
  double cache_hit_rate = 0;
};

RunResult run(const OverlayNetwork& net, const LinkTable& links,
              std::size_t cache_capacity, CachePolicy policy,
              std::uint64_t queries, std::uint64_t seed) {
  HierarchicalStore store(net, links, cache_capacity, policy);
  Rng rng(seed);
  // 512 popular keys, globally stored; popularity is Zipf(0.9).
  const std::size_t kKeys = 512;
  std::vector<NodeId> keys;
  for (std::size_t i = 0; i < kKeys; ++i) {
    const NodeId key = net.space().wrap(rng());
    keys.push_back(key);
    store.put(static_cast<std::uint32_t>(rng.uniform(net.size())), key,
              "v" + std::to_string(i), 0, 0);
  }
  // Locality of reference: each leaf domain prefers its own permutation of
  // the key ranks (nodes near each other ask for the same things).
  ZipfSampler zipf(kKeys, 0.9);
  Summary hops;
  std::uint64_t hits = 0;
  for (std::uint64_t q = 0; q < queries; ++q) {
    const auto origin = static_cast<std::uint32_t>(rng.uniform(net.size()));
    const std::size_t rank = zipf.sample(rng);
    // Rotate ranks by the origin's leaf domain so different domains have
    // different favorites.
    const int leaf = net.domains().domain_chain(origin).back();
    const NodeId key = keys[(rank + static_cast<std::size_t>(leaf) * 37) %
                            kKeys];
    const GetResult got = store.get(origin, key);
    if (got.source == AnswerSource::kNotFound) continue;
    hops.add(got.route.hops());
    hits += (got.source == AnswerSource::kCache);
  }
  return RunResult{hops.mean(),
                   static_cast<double>(hits) / static_cast<double>(queries)};
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchRun bench_run(argc, argv, "ablation_caching");
  const std::uint64_t seed = bench_run.seed;
  const std::uint64_t n = bench_run.u64("nodes", 8192);
  const std::uint64_t queries = bench_run.u64("queries", 30000);
  bench_run.header("Ablation A3: hierarchical proxy caching",
                "Zipf(0.9) workload with per-domain locality, 512 keys, "
                "Crescendo with 4-level hierarchy");

  Rng rng(seed);
  PopulationSpec spec;
  spec.node_count = n;
  spec.hierarchy.levels = 4;
  spec.hierarchy.fanout = 8;
  const auto net = make_population(spec, rng);
  const auto links = build_crescendo(net);

  TextTable table({"configuration", "mean hops/query", "cache hit rate"});
  const auto off = run(net, links, 0, CachePolicy::kLevelAware, queries, seed);
  table.add_row({"no caching", TextTable::num(off.mean_hops, 2), "-"});
  for (const std::size_t capacity : {4u, 16u, 64u}) {
    const auto lvl =
        run(net, links, capacity, CachePolicy::kLevelAware, queries, seed);
    const auto lru = run(net, links, capacity, CachePolicy::kLru, queries,
                         seed);
    table.add_row({"level-aware, cap=" + std::to_string(capacity),
                   TextTable::num(lvl.mean_hops, 2),
                   TextTable::num(lvl.cache_hit_rate, 3)});
    table.add_row({"plain LRU,  cap=" + std::to_string(capacity),
                   TextTable::num(lru.mean_hops, 2),
                   TextTable::num(lru.cache_hit_rate, 3)});
  }
  table.print(std::cout);
  std::cout << "\n(expected: caching cuts mean hops substantially; one copy "
               "per proxy level suffices, so small caches already help)\n";
  bench_run.report().set_series(bench::table_to_json(table));
  return bench_run.finish();
}
