// Ablation A4 (Sections 3.1-3.4): the rest of the Canon family vs their
// flat originals — degree, hops and routing success for Cacophony,
// nondeterministic Crescendo, Kandy (both merge policies) and Can-Can.
//
// The Canon variants go through the family registry: one build + one
// make_router per row, no hand-wired router types. The flat originals
// route directly — they run over a separate single-level population, which
// is outside the registry's hierarchical-net conventions. Each system
// routes its own pre-generated workload (forked off the shared experiment
// RNG) through the batch QueryEngine; hop means cover successful routes.
#include <iostream>

#include "bench/bench_util.h"
#include "canon/kandy.h"
#include "common/table.h"
#include "dht/can.h"
#include "dht/kademlia.h"
#include "dht/nondet_chord.h"
#include "dht/symphony.h"
#include "overlay/family_registry.h"
#include "overlay/population.h"
#include "overlay/query_engine.h"
#include "overlay/routing.h"

using namespace canon;

namespace {

struct Row {
  std::string name;
  double degree = 0;
  double hops = 0;
  double success = 0;
};

Row from_stats(std::string name, double degree, const QueryStats& st) {
  return Row{std::move(name), degree, st.hops.mean(),
             static_cast<double>(st.ok()) / static_cast<double>(st.queries)};
}

/// Routes a fresh workload (forked off `rng`, which advances by one draw)
/// through the engine on any router exposing the route_into/probe hot
/// paths.
template <typename Router>
Row measure(const std::string& name, double degree, const Router& router,
            const OverlayNetwork& net, std::uint64_t trials, Rng& rng) {
  const QueryEngine engine(net);
  const auto queries = uniform_workload(net, trials, rng.fork(rng()));
  return from_stats(name, degree, engine.run(queries, router));
}

/// Same for routers that only expose route() (flat CAN): full mode via a
/// per-query Route assignment, no probe.
template <typename Router>
Row measure_via_route(const std::string& name, double degree,
                      const Router& router, const OverlayNetwork& net,
                      std::uint64_t trials, Rng& rng) {
  const QueryEngine engine(net);
  const auto queries = uniform_workload(net, trials, rng.fork(rng()));
  const QueryStats st = engine.run_batch(
      queries,
      [&router](std::uint32_t from, NodeId key, Route& out) {
        out = router.route(from, key);
      },
      nullptr);
  return from_stats(name, degree, st);
}

/// A Canon-variant row over an already-built table, routed through the
/// registry's batch wrapper for `family`.
Row measure_family(const std::string& name, std::string_view family,
                   const OverlayNetwork& net, const LinkTable& links,
                   std::uint64_t trials, Rng& rng) {
  const QueryEngine engine(net);
  const auto router = registry::family(family).make_router(net, links);
  const auto queries = uniform_workload(net, trials, rng.fork(rng()));
  return from_stats(name, links.mean_degree(), router.run(engine, queries));
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchRun run(argc, argv, "ablation_family");
  const std::uint64_t seed = run.seed;
  const std::uint64_t n = run.u64("nodes", 8192);
  const std::uint64_t trials = run.u64("trials", 2000);
  run.header("Ablation A4: the Canon family vs flat originals",
                "degree / hops / success; 8192 nodes, 3-level hierarchy "
                "(fanout 10, Zipf)");

  PopulationSpec spec;
  spec.node_count = n;
  spec.hierarchy.levels = 3;
  spec.hierarchy.fanout = 10;
  Rng rng(seed);
  const auto net = make_population(spec, rng);
  PopulationSpec flat_spec = spec;
  flat_spec.hierarchy.levels = 1;
  Rng flat_rng(seed);
  const auto flat = make_population(flat_spec, flat_rng);

  // Canon variant rows build through their registry entry (drawing from
  // the same shared rng stream the hand-wired blocks used).
  const auto canon_row = [&](const std::string& name,
                             std::string_view family) {
    const LinkTable links = registry::family(family).build(net, rng);
    return measure_family(name, family, net, links, trials, rng);
  };

  std::vector<Row> rows;
  {
    const auto links = build_symphony(flat, rng);
    const RingRouter r(flat, links);
    rows.push_back(
        measure("Symphony (flat)", links.mean_degree(), r, flat, trials, rng));
  }
  rows.push_back(canon_row("Cacophony", "cacophony"));
  {
    const auto links = build_nondet_chord(flat, rng);
    const RingRouter r(flat, links);
    rows.push_back(measure("Nondet Chord (flat)", links.mean_degree(), r,
                           flat, trials, rng));
  }
  rows.push_back(canon_row("Nondet Crescendo", "nondet_crescendo"));
  {
    const auto links = build_kademlia(flat, BucketChoice::kClosest, rng);
    const XorRouter r(flat, links);
    rows.push_back(measure("Kademlia (flat)", links.mean_degree(), r, flat,
                           trials, rng));
  }
  rows.push_back(canon_row("Kandy (frugal merge)", "kandy"));
  {
    // The literal-merge variant is not a registry family of its own; build
    // it directly and route through the kandy entry's XOR wrapper.
    const auto links =
        build_kandy(net, BucketChoice::kClosest, rng, MergePolicy::kLiteral);
    rows.push_back(measure_family("Kandy (literal merge)", "kandy", net,
                                  links, trials, rng));
  }
  {
    const auto can = build_can(flat);
    const CanRouter r(flat, can.tree, can.links);
    rows.push_back(measure_via_route("CAN (flat, prefix-tree)",
                                     can.links.mean_degree(), r, flat, trials,
                                     rng));
  }
  rows.push_back(canon_row("Can-Can", "cancan"));

  TextTable table({"system", "mean degree", "mean hops", "success"});
  for (const auto& row : rows) {
    table.add_row({row.name, TextTable::num(row.degree, 2),
                   TextTable::num(row.hops, 2),
                   TextTable::num(row.success, 3)});
  }
  table.print(std::cout);
  std::cout << "\n(expected: every Canonical version keeps ~flat degree and "
               "hops with success 1.0; literal Kandy trades extra links for "
               "slightly shorter XOR paths)\n";
  run.report().set_series(bench::table_to_json(table));
  return run.finish();
}
