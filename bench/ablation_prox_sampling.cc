// Ablation A8 (Section 3.6): the claim that sampling s = 32 candidate
// endpoints per group link suffices to find a nearby node. We sweep s and
// measure the mean group-link latency and end-to-end route latency for
// Chord (Prox.), where every inter-group link is a sampled endpoint.
#include <iostream>

#include "bench/bench_util.h"
#include "canon/proximity.h"
#include "common/table.h"
#include "overlay/metrics.h"
#include "overlay/query_engine.h"
#include "topology/physical_network.h"

using namespace canon;

int main(int argc, char** argv) {
  bench::BenchRun run(argc, argv, "ablation_prox_sampling");
  const std::uint64_t seed = run.seed;
  const std::uint64_t n = run.u64("nodes", 16384);
  const std::uint64_t trials = run.u64("trials", 2000);
  run.header("Ablation A8: proximity sampling budget s",
                "mean link and route latency of Chord (Prox.) vs the "
                "number of sampled endpoints per group link");

  Rng topo_rng(seed);
  const PhysicalNetwork phys(TransitStubConfig{}, topo_rng);
  Rng rng(seed + 1);
  const auto net = make_physical_population(n, phys, 32, rng);
  const HopCost cost = host_hop_cost(net, phys);
  const GroupedOverlay groups(net, 16);

  TextTable table({"s", "mean group-link ms", "mean route ms",
                   "route stretch vs s=32"});
  // One workload for every s (the original re-seeded identically per s);
  // routed through the batch QueryEngine with per-path latency costs.
  QueryEngine engine(net);
  engine.set_cost(cost);
  const auto queries = uniform_workload(net, trials, Rng(seed + 3));
  double base_route = 0;
  std::vector<std::vector<std::string>> rows;
  for (const int s : {1, 2, 4, 8, 16, 32}) {
    ProximityConfig cfg;
    cfg.sample_size = s;
    Rng brng(seed + 2);  // same stream for every s: isolates the s effect
    const auto links = build_chord_prox(net, groups, cost, cfg, brng);
    // Mean latency of the inter-group links.
    Summary link_ms;
    for (std::uint32_t m = 0; m < net.size(); ++m) {
      for (const auto v : links.neighbors(m)) {
        if (groups.group_index_of(v) != groups.group_index_of(m)) {
          link_ms.add(cost(m, v));
        }
      }
    }
    const GroupRouter router(net, groups, links);
    const Summary route_ms = engine.run(queries, router).cost;
    if (s == 32) base_route = route_ms.mean();
    rows.push_back({std::to_string(s), TextTable::num(link_ms.mean(), 0),
                    TextTable::num(route_ms.mean(), 0),
                    TextTable::num(route_ms.mean(), 0)});
  }
  for (auto& row : rows) {
    row[3] = TextTable::num(std::stod(row[2]) / base_route, 2);
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\n(paper cites internet measurements that s = 32 suffices; "
               "expected: returns diminish well before 32)\n";
  run.report().set_series(bench::table_to_json(table));
  return run.finish();
}
