// Shared helpers for the experiment binaries: flag parsing, headers, and
// machine-readable JSON reports.
//
// Every bench accepts --seed=<u64> plus experiment-specific size/trial
// flags so results are reproducible and scalable, and --json=<path> to
// emit a telemetry::BenchReport (schema in docs/TELEMETRY.md) alongside
// the human-readable output. The BenchRun helper ties it together:
//
//   int main(int argc, char** argv) {
//     bench::BenchRun run(argc, argv, "fig5_hops");
//     const std::uint64_t trials = run.u64("trials", 4000);   // parsed AND
//     run.header("Figure 5: ...", "avg #hops vs n, ...");     // recorded
//     ...
//     run.report().add_row(...);          // bench-specific series rows
//     return run.finish();                // writes --json if requested
//   }
//
// When --json is given, BenchRun installs a process-wide MetricsRegistry
// before any router/builder is constructed, so library-level counters and
// phase timers flow into the report. Without --json no registry is
// installed and every instrumented path stays on its no-op branch.
#ifndef CANON_BENCH_BENCH_UTIL_H
#define CANON_BENCH_BENCH_UTIL_H

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "bench/flags.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/table.h"
#include "overlay/population.h"
#include "overlay/query_engine.h"
#include "overlay/routing.h"
#include "telemetry/json_writer.h"
#include "telemetry/mem_stats.h"
#include "telemetry/metrics.h"
#include "telemetry/report.h"

namespace canon::bench {

/// The standard benchmark population: `n` nodes in a `levels`-deep
/// hierarchy with fanout 10 (the figures' default), grown from its own
/// dedicated seed. Shared by the micro benches so every binary ties its
/// timings to the same structures.
inline OverlayNetwork bench_population(std::size_t n, int levels,
                                       std::uint64_t seed = 42) {
  Rng rng(seed);
  PopulationSpec spec;
  spec.node_count = n;
  spec.hierarchy.levels = levels;
  spec.hierarchy.fanout = 10;
  return make_population(spec, rng);
}

/// The process's peak resident set size in MB (getrusage high-water mark;
/// ru_maxrss is in KB on Linux). Monotone over the process lifetime —
/// pair it with current_rss_mb() for a point-in-time figure (the scale
/// bench reports both per row). Only the scale bench records it (as the
/// build.peak_rss_mb gauge) — the figure benches leave their reports free
/// of machine-dependent gauges beyond timings.
inline double peak_rss_mb() { return telemetry::peak_rss_mb(); }

/// The process's resident set size right now, in MB (VmRSS from
/// /proc/self/status; see telemetry/mem_stats.h for the fallbacks).
inline double current_rss_mb() { return telemetry::current_rss_mb(); }

inline void header(const char* title, const char* paper_ref) {
  std::printf("== %s ==\n", title);
  std::printf("   reproduces: %s\n\n", paper_ref);
}

/// Converts a printed TextTable into JSON series rows: one object per row,
/// keyed by column header, with cells that parse completely as numbers
/// emitted as numbers and everything else as strings.
inline telemetry::JsonValue table_to_json(const TextTable& table) {
  telemetry::JsonValue rows = telemetry::JsonValue::array();
  for (const auto& row : table.rows()) {
    telemetry::JsonValue obj = telemetry::JsonValue::object();
    for (std::size_t c = 0; c < row.size() && c < table.header().size(); ++c) {
      const std::string& cell = row[c];
      char* end = nullptr;
      const double num = std::strtod(cell.c_str(), &end);
      if (!cell.empty() && end == cell.c_str() + cell.size()) {
        obj.set(table.header()[c], telemetry::JsonValue(num));
      } else {
        obj.set(table.header()[c], telemetry::JsonValue(cell));
      }
    }
    rows.push_back(std::move(obj));
  }
  return rows;
}

/// Per-binary run context: parses and records flags, prints the header
/// with the effective seed/params, and owns the optional JSON report and
/// metrics registry. See the file comment for the intended main() shape.
class BenchRun {
 public:
  BenchRun(int argc, char** argv, const char* bench_name)
      : seed(flag_u64(argc, argv, "seed", 42)),
        argc_(argc),
        argv_(argv),
        json_path_(flag_str(argc, argv, "json", "")),
        report_(bench_name, seed) {
    params_.emplace_back("seed", std::to_string(seed));
    if (json_enabled()) {
      prev_registry_ = telemetry::install_registry(&registry_);
    }
    // Execution knobs (0 ⇒ hardware_concurrency / default grain). Figures
    // are byte-identical at every --threads and --batch-width, and at
    // every --grain up to float-summation order (see query_grain() in
    // overlay/query_engine.h); check_json_schema.py strips all three from
    // compared reports. Parsed into one RunOptions so a bench passes the
    // same bag to engine.run()/run_resilient() that was applied here.
    opts_.threads = static_cast<int>(flag_u64(argc, argv, "threads", 0));
    opts_.grain =
        static_cast<std::size_t>(flag_u64(argc, argv, "grain", 0));
    opts_.batch_width = static_cast<int>(flag_u64(
        argc, argv, "batch-width",
        static_cast<std::uint64_t>(kDefaultProbeBatchWidth)));
    opts_.apply();
    record("threads", std::to_string(parallel_threads()),
           telemetry::JsonValue(
               static_cast<std::int64_t>(parallel_threads())));
    record("grain", std::to_string(query_grain()),
           telemetry::JsonValue(
               static_cast<std::uint64_t>(query_grain())));
    record("batch_width", std::to_string(probe_batch_width()),
           telemetry::JsonValue(
               static_cast<std::int64_t>(probe_batch_width())));
  }

  /// The execution knobs parsed from the standard flags (already applied
  /// process-wide by the constructor). Copy it to add a per-run fault
  /// plan or trace sink before handing it to the engine.
  const RunOptions& run_options() const { return opts_; }

  BenchRun(const BenchRun&) = delete;
  BenchRun& operator=(const BenchRun&) = delete;

  ~BenchRun() {
    if (json_enabled()) telemetry::install_registry(prev_registry_);
  }

  /// Flag accessors that also record the effective value as a report
  /// param and in the printed header.
  std::uint64_t u64(const char* name, std::uint64_t fallback) {
    const std::uint64_t v = flag_u64(argc_, argv_, name, fallback);
    record(name, std::to_string(v), telemetry::JsonValue(v));
    return v;
  }
  double f64(const char* name, double fallback) {
    const double v = flag_double(argc_, argv_, name, fallback);
    char buf[32];
    std::snprintf(buf, sizeof buf, "%g", v);
    record(name, buf, telemetry::JsonValue(v));
    return v;
  }
  std::string str(const char* name, const char* fallback) {
    std::string v = flag_str(argc_, argv_, name, fallback);
    record(name, v, telemetry::JsonValue(v));
    return v;
  }
  bool boolean(const char* name, bool fallback) {
    const bool v = flag_bool(argc_, argv_, name, fallback);
    record(name, v ? "true" : "false", telemetry::JsonValue(v));
    return v;
  }

  /// True iff the flag was passed at all. Does not record anything: use it
  /// to gate an optional flag's u64/f64 call so an unused feature leaves
  /// the report's params byte-identical to a build that predates the flag.
  bool present(const char* name) const {
    return flag_present(argc_, argv_, name);
  }

  /// Prints the bench header plus one line with every recorded param, so
  /// a pasted output snippet is reproducible on its own.
  void header(const char* title, const char* paper_ref) const {
    std::printf("== %s ==\n", title);
    std::printf("   reproduces: %s\n", paper_ref);
    std::printf("  ");
    for (const auto& [name, value] : params_) {
      std::printf(" %s=%s", name.c_str(), value.c_str());
    }
    std::printf("\n\n");
  }

  telemetry::BenchReport& report() { return report_; }
  bool json_enabled() const { return !json_path_.empty(); }

  /// The registry collecting this run's metrics (installed process-wide
  /// only when --json is given).
  telemetry::MetricsRegistry& metrics() { return registry_; }

  /// Writes the JSON report if --json was given. Returns the process exit
  /// code (0, or 1 on write failure) so main can `return run.finish();`.
  int finish() {
    if (!json_enabled()) return 0;
    report_.merge_registry(registry_);
    try {
      report_.write_file(json_path_);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
    return 0;
  }

  const std::uint64_t seed;

 private:
  void record(const char* name, std::string printed, telemetry::JsonValue v) {
    params_.emplace_back(name, std::move(printed));
    report_.set_param(name, std::move(v));
  }

  int argc_;
  char** argv_;
  RunOptions opts_;
  std::string json_path_;
  telemetry::BenchReport report_;
  telemetry::MetricsRegistry registry_;
  telemetry::MetricsRegistry* prev_registry_ = nullptr;
  std::vector<std::pair<std::string, std::string>> params_;
};

}  // namespace canon::bench

#endif  // CANON_BENCH_BENCH_UTIL_H
