// Shared helpers for the experiment binaries: flag parsing and headers.
// Every bench accepts --seed=<u64> plus experiment-specific size/trial
// flags so results are reproducible and scalable.
#ifndef CANON_BENCH_BENCH_UTIL_H
#define CANON_BENCH_BENCH_UTIL_H

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace canon::bench {

/// Parses "--name=value" from argv; returns `fallback` if absent.
inline std::uint64_t flag_u64(int argc, char** argv, const char* name,
                              std::uint64_t fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::strtoull(argv[i] + prefix.size(), nullptr, 10);
    }
  }
  return fallback;
}

inline void header(const char* title, const char* paper_ref) {
  std::printf("== %s ==\n", title);
  std::printf("   reproduces: %s\n\n", paper_ref);
}

}  // namespace canon::bench

#endif  // CANON_BENCH_BENCH_UTIL_H
