// Microbenchmarks (google-benchmark): construction throughput of the main
// link builders at several network sizes.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "bench/micro_util.h"

#include "canon/cancan.h"
#include "canon/crescendo.h"
#include "canon/kandy.h"
#include "dht/chord.h"
#include "dht/kademlia.h"
#include "overlay/population.h"
#include "topology/latency_matrix.h"
#include "topology/transit_stub.h"

namespace canon {
namespace {

void BM_BuildChord(benchmark::State& state) {
  const auto net = bench::bench_population(
      static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_chord(net));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BuildChord)->Arg(1024)->Arg(8192)->Arg(32768);

void BM_BuildCrescendo(benchmark::State& state) {
  const auto net = bench::bench_population(
      static_cast<std::size_t>(state.range(0)), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_crescendo(net));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BuildCrescendo)->Arg(1024)->Arg(8192)->Arg(32768)->Arg(65536);

void BM_BuildKandy(benchmark::State& state) {
  const auto net = bench::bench_population(
      static_cast<std::size_t>(state.range(0)), 4);
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        build_kandy(net, BucketChoice::kClosest, rng));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BuildKandy)->Arg(1024)->Arg(8192);

void BM_BuildCanCan(benchmark::State& state) {
  const auto net = bench::bench_population(
      static_cast<std::size_t>(state.range(0)), 4);
  for (auto _ : state) {
    CanCanNetwork cancan(net);
    benchmark::DoNotOptimize(cancan.links().total_links());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BuildCanCan)->Arg(1024)->Arg(8192);

void BM_BuildLatencyMatrix(benchmark::State& state) {
  // The paper's 2040-router transit-stub graph: one Dijkstra per router.
  Rng rng(42);
  const TransitStubTopology topo(TransitStubConfig{}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(LatencyMatrix(topo).router_count());
  }
  state.SetItemsProcessed(state.iterations() * topo.router_count());
}
BENCHMARK(BM_BuildLatencyMatrix);

}  // namespace
}  // namespace canon

CANON_MICRO_MAIN("micro_construction");
