// Ablation A5 (Section 2.2): fault isolation, measured under injected
// faults instead of by rebuilding survivor sub-networks.
//
// Every node outside one level-1 domain crashes at once (a FaultPlan of
// explicit fail-stops), and the survivors route an intra-domain workload
// through their family's failure-aware core. A hierarchy-respecting
// family keeps its per-domain rings self-contained, so survival stays at
// ~1.0; flat families — whose fingers and successors mostly point outside
// the domain — collapse. Unlike the old survivor-subnetwork rebuild, the
// routers here run over the *original* link tables with the dead marked
// dead, which is the failure model the resilient cores implement.
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/table.h"
#include "overlay/family_registry.h"
#include "overlay/population.h"
#include "overlay/query_engine.h"

using namespace canon;

int main(int argc, char** argv) {
  bench::BenchRun run(argc, argv, "ablation_fault_isolation");
  const std::uint64_t seed = run.seed;
  const std::uint64_t n = run.u64("nodes", 8192);
  const std::uint64_t trials = run.u64("trials", 2000);
  run.header("Ablation A5: fault isolation",
                "all nodes outside one level-1 domain fail (injected "
                "fail-stop); fraction of intra-domain routes that still "
                "succeed, per family");

  PopulationSpec spec;
  spec.node_count = n;
  spec.hierarchy.levels = 3;
  spec.hierarchy.fanout = 10;
  Rng rng(seed);
  const auto net = make_population(spec, rng);
  const QueryEngine engine(net);

  // The level-1 domains that stay up, one scenario per domain: everything
  // outside crashes. Keep the old bench's shape (first four big-enough
  // children of the root).
  std::vector<int> scenarios;
  for (const int d : net.domains().domain(net.domains().root()).children) {
    if (net.domains().domain(d).members.size() >= 10) scenarios.push_back(d);
    if (scenarios.size() >= 4) break;
  }

  std::vector<std::string> header = {"family"};
  for (const int d : scenarios) {
    const std::size_t alive = net.domains().domain(d).members.size();
    header.push_back(
        TextTable::num(static_cast<double>(n - alive) /
                       static_cast<double>(alive), 1) + "x dead");
  }
  TextTable table(header);
  // Success alone no longer separates the ring families: the shared
  // recovery core gives every one of them per-level leaf sets, so even
  // flat Chord eventually crawls to the right survivor. What prices the
  // missing hierarchy is the recovery work — fallback hops per lookup.
  TextTable fallback_table(std::move(header));

  for (const registry::FamilyEntry& entry : registry::families()) {
    const LinkTable links = registry::build_family(net, entry.name, seed);
    const registry::FamilyRouter router = entry.make_router(net, links);
    std::vector<std::string> cells = {std::string(entry.name)};
    std::vector<std::string> fallback_cells = {std::string(entry.name)};
    for (const int d : scenarios) {
      const auto& members = net.domains().domain(d).members;
      FaultPlan plan;
      {
        std::vector<bool> in_domain(net.size(), false);
        for (const std::uint32_t m : members) in_domain[m] = true;
        for (std::uint32_t i = 0; i < net.size(); ++i) {
          if (!in_domain[i]) plan.crash(i);
        }
      }
      const FailureSet dead = plan.materialize(net);
      // Intra-domain workload: source and target both drawn from the
      // survivors, key = the target's own ID (the draw the old bench
      // made). Deterministic per (seed, domain), thread-invariant.
      const auto queries = generate_workload(
          trials, Rng(seed + static_cast<std::uint64_t>(d)),
          [&](Rng& qrng, std::size_t) {
            Query q;
            q.from = members[qrng.uniform(members.size())];
            q.key = net.id(members[qrng.uniform(members.size())]);
            return q;
          });
      const ResilientStats st =
          router.run_resilient_with(engine, queries, dead, plan);
      cells.push_back(TextTable::num(st.success_rate(), 3));
      fallback_cells.push_back(TextTable::num(
          static_cast<double>(st.fallback_hops) /
              static_cast<double>(st.attempted()), 2));

      telemetry::JsonValue row = telemetry::JsonValue::object();
      row.set("family", telemetry::JsonValue(entry.name));
      row.set("domain", telemetry::JsonValue(
                            static_cast<std::int64_t>(d)));
      row.set("survivors", telemetry::JsonValue(
                               static_cast<std::uint64_t>(members.size())));
      row.set("crashed", telemetry::JsonValue(
                             static_cast<std::uint64_t>(dead.dead_count())));
      row.set("attempted", telemetry::JsonValue(st.attempted()));
      row.set("ok", telemetry::JsonValue(st.base.ok()));
      row.set("success", telemetry::JsonValue(st.success_rate()));
      row.set("retries", telemetry::JsonValue(st.retries));
      row.set("fallback_hops", telemetry::JsonValue(st.fallback_hops));
      run.report().add_row(std::move(row));
    }
    table.add_row(std::move(cells));
    fallback_table.add_row(std::move(fallback_cells));
  }
  std::cout << "-- survival (fraction of intra-domain lookups that "
               "succeed) --\n";
  table.print(std::cout);
  std::cout << "\n-- recovery cost (fallback hops per lookup) --\n";
  fallback_table.print(std::cout);
  std::cout << "\n(expected: the hierarchical families route intra-domain "
               "with zero fallbacks — their per-domain rings/zones are "
               "self-contained; flat ring families survive only by leaning "
               "on leaf-set recovery every hop, and the flat XOR/CAN/group "
               "families collapse outright)\n";
  return run.finish();
}
