// Ablation A5 (Section 2.2): fault isolation. Every node outside one
// domain fails simultaneously; we measure how many intra-domain routes
// still succeed. Crescendo's per-domain rings survive unscathed; flat
// Chord (whose fingers and successors mostly point outside the domain)
// collapses.
#include <iostream>

#include "bench/bench_util.h"
#include "canon/crescendo.h"
#include "common/table.h"
#include "dht/chord.h"
#include "overlay/population.h"
#include "overlay/routing.h"

using namespace canon;

namespace {

/// Restricts `links` to the survivors of domain `domain` (depth `depth`)
/// and re-routes within the surviving sub-network.
double survival_rate(const OverlayNetwork& net, const LinkTable& links,
                     int domain, std::uint64_t trials, Rng& rng) {
  // Build the survivor-only network (same IDs, flat hierarchy is fine for
  // responsibility checks).
  const auto& members = net.domains().domain(domain).members;
  std::vector<OverlayNode> survivors;
  std::vector<std::uint32_t> old_index;
  for (const std::uint32_t m : members) {
    survivors.push_back(net.node(m));
    old_index.push_back(m);
  }
  const OverlayNetwork sub(net.space(), survivors);
  LinkTable sub_links(sub.size());
  for (std::size_t i = 0; i < old_index.size(); ++i) {
    const std::uint32_t new_from = sub.index_of(net.id(old_index[i]));
    for (const std::uint32_t v : links.neighbors(old_index[i])) {
      // Links to dead (outside) nodes are simply gone.
      bool alive = false;
      for (const std::uint32_t m : members) {
        if (m == v) {
          alive = true;
          break;
        }
      }
      if (alive) sub_links.add(new_from, sub.index_of(net.id(v)));
    }
  }
  sub_links.finalize();
  const RingRouter router(sub, sub_links);
  std::uint64_t ok = 0;
  for (std::uint64_t t = 0; t < trials; ++t) {
    const auto from = static_cast<std::uint32_t>(rng.uniform(sub.size()));
    const auto target = static_cast<std::uint32_t>(rng.uniform(sub.size()));
    const Route r = router.route(from, sub.id(target));
    ok += (r.ok && r.terminal() == target);
  }
  return static_cast<double>(ok) / static_cast<double>(trials);
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchRun run(argc, argv, "ablation_fault_isolation");
  const std::uint64_t seed = run.seed;
  const std::uint64_t n = run.u64("nodes", 8192);
  const std::uint64_t trials = run.u64("trials", 2000);
  run.header("Ablation A5: fault isolation",
                "all nodes outside one level-1 domain fail; fraction of "
                "intra-domain routes that still succeed");

  PopulationSpec spec;
  spec.node_count = n;
  spec.hierarchy.levels = 3;
  spec.hierarchy.fanout = 10;
  Rng rng(seed);
  const auto net = make_population(spec, rng);
  const auto crescendo = build_crescendo(net);
  const auto chord = build_chord(net);

  TextTable table({"failed-to-survivor ratio", "Crescendo", "flat Chord"});
  const auto& root = net.domains().domain(net.domains().root());
  int shown = 0;
  for (const int d : root.children) {
    if (shown++ >= 4) break;
    const std::size_t alive = net.domains().domain(d).members.size();
    if (alive < 10) continue;
    Rng r1(seed + d);
    Rng r2(seed + d);
    const double cr = survival_rate(net, crescendo, d, trials, r1);
    const double ch = survival_rate(net, chord, d, trials, r2);
    table.add_row(
        {TextTable::num(static_cast<double>(n - alive) /
                        static_cast<double>(alive), 1) + "x",
         TextTable::num(cr, 3), TextTable::num(ch, 3)});
  }
  table.print(std::cout);
  std::cout << "\n(expected: Crescendo 1.000 in every domain — its "
               "per-domain rings are self-contained; flat Chord collapses)\n";
  run.report().set_series(bench::table_to_json(table));
  return run.finish();
}
