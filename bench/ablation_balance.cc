// Ablation A2 (Section 4.3): partition balance. Max/min partition ratio
// for random IDs (Theta(log^2 n)), the bisection scheme (constant), and
// the hierarchical variant (constant per domain as well).
#include <iostream>

#include "balance/id_allocator.h"
#include "bench/bench_util.h"
#include "common/table.h"

using namespace canon;

namespace {

struct Grown {
  std::vector<NodeId> all;
  std::vector<std::vector<NodeId>> domains;
};

Grown grow(IdAllocator& alloc, std::size_t n, int domains, const IdSpace& space,
           Rng& rng) {
  Grown g;
  g.domains.resize(static_cast<std::size_t>(domains));
  for (std::size_t i = 0; i < n; ++i) {
    auto& mates = g.domains[i % g.domains.size()];
    const NodeId id = alloc.allocate(g.all, mates, space, rng);
    g.all.insert(std::lower_bound(g.all.begin(), g.all.end(), id), id);
    mates.push_back(id);
  }
  return g;
}

double worst_domain_ratio(const Grown& g, const IdSpace& space) {
  double worst = 0;
  for (const auto& d : g.domains) {
    if (d.size() >= 2) worst = std::max(worst, partition_ratio(d, space));
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchRun run(argc, argv, "ablation_balance");
  const std::uint64_t seed = run.seed;
  const std::uint64_t min_n = run.u64("min-nodes", 1024);
  const std::uint64_t max_n = run.u64("max-nodes", 16384);
  run.header("Ablation A2: partition balance",
                "global and worst-domain max/min partition ratio; random vs "
                "bisection vs hierarchical (16 domains)");

  const IdSpace space(32);
  TextTable table({"nodes", "random global", "random domain",
                   "bisection global", "bisection domain", "hier global",
                   "hier domain"});
  for (std::uint64_t n = min_n; n <= max_n; n *= 2) {
    Rng r1(seed + n);
    Rng r2(seed + n);
    Rng r3(seed + n);
    RandomIdAllocator random_alloc;
    BisectionIdAllocator bisect_alloc;
    HierarchicalIdAllocator hier_alloc;
    const Grown a = grow(random_alloc, n, 16, space, r1);
    const Grown b = grow(bisect_alloc, n, 16, space, r2);
    const Grown c = grow(hier_alloc, n, 16, space, r3);
    table.add_row({TextTable::num(n),
                   TextTable::num(partition_ratio(a.all, space), 1),
                   TextTable::num(worst_domain_ratio(a, space), 1),
                   TextTable::num(partition_ratio(b.all, space), 1),
                   TextTable::num(worst_domain_ratio(b, space), 1),
                   TextTable::num(partition_ratio(c.all, space), 1),
                   TextTable::num(worst_domain_ratio(c, space), 1)});
  }
  table.print(std::cout);
  std::cout << "\n(paper/[11]: random grows as log^2 n; bisection is a small "
               "constant; the hierarchical variant also balances every "
               "domain)\n";
  run.report().set_series(bench::table_to_json(table));
  return run.finish();
}
