// Ablation A10: congestion under concurrent α-parallel lookups.
//
// Everything upstream of this bench evaluates routes one at a time; here
// the message-granularity simulator (overlay/message_sim.h) runs the same
// workloads as *timestamped message traffic* through per-node bounded
// inboxes over the 2040-router transit-stub topology's latencies, and the
// table sweeps offered load × α for flat Chord vs hierarchical Crescendo:
//
//   * Under uniform traffic every load point stays uncongested: p99
//     latency tracks the link latencies and nothing times out.
//   * Under a Zipf(1.25) flash crowd the hottest key's terminal saturates
//     near load 1.0: queue waits pass the probe timeout, retries add
//     traffic to the already-saturated node, and p99 / timeout counts
//     rise super-linearly past the knee while sub-saturation points stay
//     flat.
//   * α > 1 keeps warm backup probes per hop — at the cost of
//     multiplying message load, which drags the knee earlier.
//   * The LoadAccountant rides along on every row: hierarchical
//     Crescendo keeps its intra-domain lookups confined (§5) even while
//     collapsing under the flash crowd; flat Chord never confines.
//
// The simulator is serial and drains its event heap in (time, seq) order,
// so every row — percentiles, timeout counts, confinement, the congestion
// time series — is byte-identical at any --threads
// (ctest bench_query_determinism_congestion).
#include <algorithm>
#include <iostream>
#include <string>

#include "bench/bench_util.h"
#include "common/table.h"
#include "overlay/family_registry.h"
#include "overlay/message_sim.h"
#include "telemetry/load_stats.h"
#include "telemetry/timeseries.h"
#include "topology/physical_network.h"

using namespace canon;

int main(int argc, char** argv) {
  bench::BenchRun run(argc, argv, "ablation_congestion");
  const std::uint64_t seed = run.seed;
  const std::uint64_t n = run.u64("nodes", 512);
  const std::uint64_t lookups = run.u64("lookups", 4000);
  const double theta = run.f64("theta", 1.25);
  // Submission gap (ms) between consecutive lookups at offered load 1.0;
  // load x divides it. Tuned so the Zipf flash crowd's hottest terminal
  // crosses its service capacity right around x = 1.
  const double base_gap_ms = run.f64("base-gap-ms", 1.25);
  run.header(
      "Ablation A10: congestion under concurrent lookups",
      "message-granularity simulation on the transit-stub topology; "
      "offered load x alpha, uniform vs Zipf flash crowd, Chord vs "
      "Crescendo");

  Rng topo_rng(seed);
  const PhysicalNetwork phys(TransitStubConfig{}, topo_rng);
  Rng net_rng(seed + 1);
  const auto net = make_physical_population(n, phys, 32, net_rng);
  const HopCost latency = host_hop_cost(net, phys);

  MessageSimConfig base_config;
  base_config.service_ms = 5.0;     // a node serves 200 req/s
  base_config.timeout_ms = 1500.0;  // > the longest uncongested RTT
  base_config.backoff = 2.0;
  base_config.retry_budget = 3;
  base_config.inbox_capacity = 256;

  const char* kFamilies[] = {"chord", "crescendo"};
  const char* kWorkloads[] = {"uniform", "zipf"};
  const int kAlphas[] = {1, 2, 4};
  const double kLoads[] = {0.5, 1.0, 2.0, 4.0};
  const double max_load = kLoads[std::size(kLoads) - 1];

  TextTable table({"family", "workload", "alpha", "load", "p50 ms", "p99 ms",
                   "p999 ms", "timeouts", "retries", "failed", "hops",
                   "max queue", "confined"});

  for (const char* family : kFamilies) {
    const LinkTable links = registry::build_family(net, family, seed);
    const registry::FamilyEntry& entry = registry::family(family);
    const Stepper stepper = entry.make_stepper(net, links);
    for (const char* workload : kWorkloads) {
      const Rng wrng(seed);
      const auto queries =
          std::string(workload) == "uniform"
              ? uniform_workload(net, lookups, wrng)
              : zipf_workload(net, lookups, wrng, theta);
      for (const int alpha : kAlphas) {
        for (const double load : kLoads) {
          MessageSimConfig config = base_config;
          config.alpha = alpha;
          MessageSimulator sim(net, links, stepper, latency, config);

          telemetry::LoadAccountant accountant(net.domains(), net.ids());
          telemetry::TimeSeriesRecorder series(/*window_ms=*/250.0);
          SimSinks sinks;
          sinks.load = &accountant;
          sinks.timeseries = &series;
          sim.attach(sinks);

          const double gap_ms = base_gap_ms / load;
          for (std::size_t i = 0; i < queries.size(); ++i) {
            sim.submit(queries[i].from, queries[i].key,
                       gap_ms * static_cast<double>(i));
          }
          sim.run();

          const auto& results = sim.lookups();
          const double p50 = lookup_latency_percentile(results, 0.50);
          const double p99 = lookup_latency_percentile(results, 0.99);
          const double p999 = lookup_latency_percentile(results, 0.999);
          std::uint64_t ok = 0;
          std::uint64_t ok_hops = 0;
          for (const auto& r : results) {
            if (r.ok) {
              ++ok;
              ok_hops += static_cast<std::uint64_t>(r.hops);
            }
          }
          const double mean_hops =
              ok ? static_cast<double>(ok_hops) / static_cast<double>(ok) : 0;
          const std::uint32_t max_queue = *std::max_element(
              sim.max_queue_depth().begin(), sim.max_queue_depth().end());
          const MessageSimulator::Totals& totals = sim.totals();

          table.add_row(
              {family, workload, TextTable::num(alpha),
               TextTable::num(load, 2), TextTable::num(p50, 0),
               TextTable::num(p99, 0), TextTable::num(p999, 0),
               TextTable::num(static_cast<double>(totals.timeouts), 0),
               TextTable::num(static_cast<double>(totals.retries), 0),
               TextTable::num(static_cast<double>(totals.failures), 0),
               TextTable::num(mean_hops, 2),
               TextTable::num(static_cast<std::uint64_t>(max_queue)),
               TextTable::num(accountant.confinement_ratio(), 3)});

          telemetry::JsonValue row = telemetry::JsonValue::object();
          row.set("name", telemetry::JsonValue(
                              std::string(family) + "/" + workload + "/a" +
                              std::to_string(alpha) + "/x" +
                              TextTable::num(load, 2)));
          row.set("family", telemetry::JsonValue(family));
          row.set("workload", telemetry::JsonValue(workload));
          row.set("alpha",
                  telemetry::JsonValue(static_cast<std::int64_t>(alpha)));
          row.set("load", telemetry::JsonValue(load));
          row.set("gap_ms", telemetry::JsonValue(gap_ms));
          row.set("p50_ms", telemetry::JsonValue(p50));
          row.set("p99_ms", telemetry::JsonValue(p99));
          row.set("p999_ms", telemetry::JsonValue(p999));
          row.set("mean_hops", telemetry::JsonValue(mean_hops));
          row.set("sent", telemetry::JsonValue(totals.sent));
          row.set("serviced", telemetry::JsonValue(totals.serviced));
          row.set("timeouts", telemetry::JsonValue(totals.timeouts));
          row.set("retries", telemetry::JsonValue(totals.retries));
          row.set("link_drops", telemetry::JsonValue(totals.link_drops));
          row.set("inbox_drops", telemetry::JsonValue(totals.inbox_drops));
          row.set("failures", telemetry::JsonValue(totals.failures));
          row.set("max_queue_depth",
                  telemetry::JsonValue(
                      static_cast<std::uint64_t>(max_queue)));
          row.set("confinement",
                  telemetry::JsonValue(accountant.confinement_ratio()));
          row.set("load_stats", accountant.to_json());
          // The congestion curve (lookups/s vs completions/s vs queueing)
          // for the flash-crowd collapse rows only — one curve per family
          // at the deepest saturation keeps the report compact.
          if (std::string(workload) == "zipf" && alpha == 2 &&
              load == max_load) {
            row.set("timeseries", series.to_json());
          }
          run.report().add_row(std::move(row));
        }
      }
    }
  }
  table.print(std::cout);
  std::cout << "\n(expected: uniform rows stay flat at every load; zipf "
               "rows show the knee — p99 and timeouts rise super-linearly "
               "past load 1.0, earlier at higher alpha; Crescendo keeps "
               "confined >= 0.95 on every zipf row while Chord stays "
               "< 0.2)\n";
  return run.finish();
}
