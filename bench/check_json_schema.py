#!/usr/bin/env python3
"""End-to-end check for the machine-readable output schemas.

Modes:

  check_json_schema.py <bench_binary>
    Runs a bench binary with small parameters and --json, then asserts the
    stable top-level schema {bench, seed, params, metrics, series} and —
    for fig5_hops — that every series row's per-hierarchy-level hop
    breakdown sums to its total hop count (the paper's convergence
    accounting).

  check_json_schema.py --threads-invariant <bench_binary> [args...]
    Runs the binary at --threads=1 and --threads=8 with the given args and
    asserts the two --json reports are identical after stripping the
    wall-clock-dependent fields (params.threads, metrics.gauges,
    metrics.histograms): the batch QueryEngine / parallel construction
    determinism contract (docs/PERFORMANCE.md). An optional
    --widths=W1,W2,... arg widens the matrix to {threads} x {widths},
    running each combination with --batch-width=W and asserting every
    stripped report byte-identical — the memory-level-parallel routing
    contract (the interleaved kernels change when memory is touched,
    never which neighbor wins).

  check_json_schema.py --doctor <canon_doctor_binary>
    Runs canon_doctor in static (--all) and churn (--journal-out) modes
    and asserts (a) the doctor's --json report carries a schema-valid
    audit object per family, (b) the churn journal is schema-valid JSONL
    with contiguous sequence numbers and a clean final audit_snapshot,
    and (c) replaying the journal reproduces the healthy verdict. Also
    runs one family with --crash-rate and asserts the resilience object
    and the crash events journaled by the fault plan.

  check_json_schema.py --resilient <ablation_resilience_binary>
    Runs the resilience ablation with small parameters and asserts the
    per-row schema: success rates in [0, 1], zero-fault rows lossless and
    retry-free (the empty-plan identity), and success monotone
    non-increasing in the kill fraction within each (family, leaf_set)
    series (fail_fraction's kill sets are nested).

  check_json_schema.py --load <ablation_load_binary>
    Runs the load-observatory ablation with small parameters and asserts
    the LoadAccountant schema on every per-levels row (accounting
    invariants, Gini and shares in range, sorted hotspot lists, and the
    §5 confinement ratio exactly 1.0 for every hierarchical row) plus the
    crash_curve row's time series (windows ordered, failures only after
    the crash point, live-node count dropping by the crash count).

  check_json_schema.py --congestion <ablation_congestion_binary>
    Runs the congestion ablation (message-granularity simulation) and
    asserts the per-row schema plus the paper-level shape of the sweep:
    uniform rows stay flat across offered load, Zipf flash-crowd rows
    show the knee (zero timeouts below saturation, a large super-linear
    jump past it, p99 rising with it), hierarchical rows keep the §5
    confinement ratio >= 0.95 under the flash crowd while flat rows stay
    < 0.2, and the collapse rows carry the congestion time series.

  check_json_schema.py --scale <bench_scale_binary>
    Runs the mega-scale bench with small parameters and asserts the
    per-row schema (name, build wall clock, peak + current RSS, link
    count, lookup throughput, mean hops), that the build.peak_rss_mb
    gauge is recorded, that the landmark-mode row crossed the exact
    threshold (> 4096 routers), and that every row routed its full
    lookup batch without failures. Each row reports both peak_rss_mb
    (process high-water) and current_rss_mb (point-in-time), so rows
    are self-describing in any read order.

  check_json_schema.py --resources <bench_scale_binary>
    Runs the mega-scale bench and validates the resource observatory:
    the metrics.memory ledgers (per-tag current <= peak, charges >= 1,
    tag currents summing to the attributed total, the expected subsystem
    tag set per row), the measured-RSS phase samples, the RSS timeline
    (windows ordered, rss_mb populated), and the mem/<row>/<tag> series
    rows agreeing byte-for-byte with the ledgers (these rows are what
    CI's compare_bench --metric=peak_bytes gates).
"""
import json
import os
import subprocess
import sys
import tempfile

JOURNAL_TYPES = {"join", "leave", "repair", "lookup_failure",
                 "audit_snapshot", "crash", "revive", "load_snapshot"}
JOURNAL_REQUIRED = {
    "join": {"id", "path", "lookup_hops", "size"},
    "leave": {"id", "size"},
    "repair": {"cause", "pivot", "nodes_updated"},
    "lookup_failure": {"from", "key", "hops"},
    "audit_snapshot": {"size", "checks", "violations"},
    "crash": {"node", "id", "at"},
    "revive": {"node", "id", "at"},
    "load_snapshot": {"t_ms", "nodes"},
}


def check_report_envelope(doc):
    for key in ("bench", "seed", "params", "metrics", "series"):
        assert key in doc, f"missing top-level key {key!r}"
    assert isinstance(doc["params"], dict)
    assert isinstance(doc["series"], list) and doc["series"], "empty series"
    for section in ("counters", "gauges", "histograms"):
        assert section in doc["metrics"], f"missing metrics.{section}"


def check_audit_object(audit):
    for key in ("ok", "checks", "violation_count", "violations"):
        assert key in audit, f"audit object missing {key!r}"
    assert isinstance(audit["checks"], dict) and audit["checks"]
    assert audit["violation_count"] == len(audit["violations"])
    for v in audit["violations"]:
        for key in ("check", "node", "level", "detail"):
            assert key in v, f"violation missing {key!r}"


def check_journal(path):
    with open(path) as f:
        lines = [ln for ln in f.read().splitlines() if ln]
    assert lines, "empty journal"
    last_snapshot = None
    for i, line in enumerate(lines):
        ev = json.loads(line)
        assert ev["seq"] == i, f"line {i + 1}: seq {ev['seq']} != {i}"
        assert ev["type"] in JOURNAL_TYPES, f"unknown type {ev['type']!r}"
        missing = JOURNAL_REQUIRED[ev["type"]] - set(ev)
        assert not missing, f"{ev['type']} event missing {missing}"
        if ev["type"] == "audit_snapshot":
            last_snapshot = ev
    assert last_snapshot is not None, "journal has no audit_snapshot"
    assert last_snapshot["violations"] == 0, (
        f"final snapshot reports {last_snapshot['violations']} violations")


def check_bench(binary):
    with tempfile.TemporaryDirectory() as tmp:
        out = os.path.join(tmp, "report.json")
        subprocess.run(
            [binary, "--min-nodes=256", "--max-nodes=512", "--trials=200",
             f"--json={out}"],
            check=True, stdout=subprocess.DEVNULL)
        with open(out) as f:
            doc = json.load(f)

    check_report_envelope(doc)
    if doc["bench"] == "fig5_hops":
        for row in doc["series"]:
            total = row["total_hops"]
            by_level = row["hops_by_level"]
            assert sum(by_level) == total, (
                f"hops_by_level {by_level} does not sum to {total} "
                f"(nodes={row['nodes']}, levels={row['levels']})")
            assert len(by_level) <= row["levels"] + 1
        counters = doc["metrics"]["counters"]
        # Lookups flow through the batch QueryEngine, which flushes its
        # per-shard tallies to the query_engine.* counters post-merge.
        assert counters["query_engine.queries"] > 0
        assert counters["query_engine.failures"] == 0
        assert counters["query_engine.hops"] == sum(
            r["total_hops"] for r in doc["series"])


def check_doctor(binary):
    with tempfile.TemporaryDirectory() as tmp:
        report = os.path.join(tmp, "doctor.json")
        subprocess.run(
            [binary, "--all", "--nodes=256", "--levels=3",
             f"--json={report}"],
            check=True, stdout=subprocess.DEVNULL)
        with open(report) as f:
            doc = json.load(f)
        check_report_envelope(doc)
        assert doc["bench"] == "canon_doctor"
        families = set()
        for row in doc["series"]:
            assert "family" in row and "audit" in row
            check_audit_object(row["audit"])
            assert row["audit"]["ok"] is True, (
                f"family {row['family']} audited unhealthy")
            families.add(row["family"])
        assert len(families) == 13, f"expected 13 families, got {families}"
        counters = doc["metrics"]["counters"]
        assert counters["audit.checks"] > 0
        assert counters.get("audit.violations", 0) == 0

        journal = os.path.join(tmp, "churn.jsonl")
        subprocess.run(
            [binary, "--nodes=128", "--churn=60", "--snapshot-every=20",
             f"--journal-out={journal}"],
            check=True, stdout=subprocess.DEVNULL)
        check_journal(journal)
        subprocess.run([binary, f"--replay={journal}"],
                       check=True, stdout=subprocess.DEVNULL)

        # Fault phase: --crash-rate adds a resilience object per family row
        # and journals every injected crash.
        fault_report = os.path.join(tmp, "faults.json")
        fault_journal = os.path.join(tmp, "faults.jsonl")
        subprocess.run(
            [binary, "--family=crescendo", "--nodes=256", "--levels=3",
             "--crash-rate=0.3", "--trials=300",
             f"--json={fault_report}", f"--journal-out={fault_journal}"],
            check=True, stdout=subprocess.DEVNULL)
        with open(fault_report) as f:
            doc = json.load(f)
        res = doc["series"][0]["resilience"]
        for key in ("crash_rate", "crashed", "attempted", "ok",
                    "success_rate", "availability", "retries",
                    "fallback_hops", "skipped_dead_source"):
            assert key in res, f"resilience object missing {key!r}"
        assert 0.0 <= res["success_rate"] <= 1.0
        with open(fault_journal) as f:
            events = [json.loads(ln) for ln in f.read().splitlines() if ln]
        assert events, "fault journal is empty"
        crashes = 0
        for i, ev in enumerate(events):
            assert ev["seq"] == i, f"fault journal seq {ev['seq']} != {i}"
            assert ev["type"] in JOURNAL_TYPES
            missing = JOURNAL_REQUIRED[ev["type"]] - set(ev)
            assert not missing, f"{ev['type']} event missing {missing}"
            crashes += ev["type"] == "crash"
        assert crashes == res["crashed"], (
            f"journal has {crashes} crash events, "
            f"report says {res['crashed']}")

        # Observatory phase: --load-report adds a schema-valid load
        # section per family row; --trace-out writes a Chrome trace-event
        # JSON with construction-phase spans and sampled lookup hops.
        obs_report = os.path.join(tmp, "observatory.json")
        trace = os.path.join(tmp, "trace.json")
        subprocess.run(
            [binary, "--family=crescendo", "--nodes=256", "--levels=3",
             "--trials=400", "--load-report", f"--trace-out={trace}",
             f"--json={obs_report}"],
            check=True, stdout=subprocess.DEVNULL)
        with open(obs_report) as f:
            doc = json.load(f)
        row = doc["series"][0]
        assert "load" in row, "doctor row missing load section"
        check_load_section(row["load"], 3)
        assert row["load"]["queries"] == 400, row["load"]["queries"]
        with open(trace) as f:
            tdoc = json.load(f)
        assert tdoc["displayTimeUnit"] == "ms"
        spans = [e for e in tdoc["traceEvents"] if e.get("ph") == "X"]
        assert spans, "trace has no complete events"
        for e in spans:
            assert e["ts"] >= 0 and e["dur"] >= 0, e
        assert any(e["name"].startswith("build.") for e in spans), (
            "no construction-phase spans in trace")
        assert any(e["name"].startswith("hop ") for e in spans), (
            "no lookup hop spans in trace")
        assert any(e.get("ph") == "M" for e in tdoc["traceEvents"]), (
            "no metadata (process/thread name) events in trace")


def check_resilient(binary):
    with tempfile.TemporaryDirectory() as tmp:
        out = os.path.join(tmp, "report.json")
        subprocess.run(
            [binary, "--nodes=1024", "--trials=500", f"--json={out}"],
            check=True, stdout=subprocess.DEVNULL)
        with open(out) as f:
            doc = json.load(f)
    check_report_envelope(doc)
    assert doc["bench"] == "ablation_resilience"
    series = {}  # (family, leaf_set or None) -> [(fail_pct, success)]
    for row in doc["series"]:
        for key in ("family", "fail_pct", "attempted", "ok", "success",
                    "availability", "retries", "fallback_hops"):
            assert key in row, f"series row missing {key!r}"
        assert 0.0 <= row["success"] <= 1.0, row
        assert 0.0 <= row["availability"] <= 1.0, row
        if row["fail_pct"] == 0:
            # Empty-plan identity: nothing dead, nothing dropped, so the
            # resilient engine must be lossless and retry-free.
            assert row["success"] == 1.0, row
            assert row["retries"] == 0, row
            assert row["fallback_hops"] == 0, row
            assert row["skipped_dead_source"] == 0, row
        series.setdefault((row["family"], row.get("leaf_set")),
                          []).append((row["fail_pct"], row["success"]))
    assert len(series) == 13 + 4, "expected 13 family + 4 leaf-set series"
    for (family, leaf), points in series.items():
        points.sort()
        for (_, prev), (_, cur) in zip(points, points[1:]):
            # Small slack: deeper kill sets also shrink the attempted pool
            # and reassign live responsibility, so single lookups can flip.
            assert cur <= prev + 0.02, (
                f"success not monotone for {family} (leaf_set={leaf}): "
                f"{points}")


def check_load_section(load, levels):
    for key in ("queries", "ok", "total_hops", "domain_level", "load",
                "top_nodes", "top_keys", "hops_by_level", "domains",
                "confinement"):
        assert key in load, f"load section missing {key!r}"
    spread = load["load"]
    assert 0.0 <= spread["gini"] <= 1.0, spread
    assert spread["max"] >= spread["mean"] >= 0.0, spread
    assert sum(load["hops_by_level"]) == load["total_hops"], (
        f"hops_by_level {load['hops_by_level']} does not sum to "
        f"{load['total_hops']}")
    totals = [n["total"] for n in load["top_nodes"]]
    assert totals == sorted(totals, reverse=True), "top_nodes not sorted"
    for n in load["top_nodes"]:
        # A single-node lookup is one message wearing two hats (source and
        # terminal), so the role sum can exceed the message total — but
        # never by more than one hat per message, and no single role can
        # outnumber the messages.
        roles = n["as_source"] + n["as_relay"] + n["as_terminal"]
        assert n["total"] <= roles <= 2 * n["total"], n
        assert max(n["as_source"], n["as_relay"],
                   n["as_terminal"]) <= n["total"], n
    lookups = [k["lookups"] for k in load["top_keys"]]
    assert lookups == sorted(lookups, reverse=True), "top_keys not sorted"
    share_sum = 0.0
    for d in load["domains"]:
        assert 0.0 <= d["share"] <= 1.0, d
        share_sum += d["share"]
    assert share_sum <= 1.0 + 1e-9, f"domain shares sum to {share_sum}"
    conf = load["confinement"]
    assert 0.0 <= conf["ratio"] <= 1.0, conf
    assert conf["confined"] <= conf["intra_queries"], conf
    if levels >= 2:
        # The §5 claim as a measured number: an intra-domain Crescendo
        # lookup never leaves its domain.
        assert conf["ratio"] == 1.0, (
            f"levels={levels}: confinement {conf['ratio']} != 1.0")
        assert load["domains"], "hierarchical row has no domain shares"


def check_load(binary):
    with tempfile.TemporaryDirectory() as tmp:
        out = os.path.join(tmp, "report.json")
        subprocess.run(
            [binary, "--nodes=1024", "--lookups=3000", f"--json={out}"],
            check=True, stdout=subprocess.DEVNULL)
        with open(out) as f:
            doc = json.load(f)
    check_report_envelope(doc)
    assert doc["bench"] == "ablation_load"
    level_rows = [r for r in doc["series"] if "load" in r]
    assert len(level_rows) == 5, f"expected 5 per-levels rows"
    for row in level_rows:
        check_load_section(row["load"], row["levels"])
        assert row["load"]["queries"] == 3000, row["load"]["queries"]

    crash = [r for r in doc["series"] if r.get("phase") == "crash_curve"]
    assert len(crash) == 1, "expected one crash_curve row"
    crash = crash[0]
    rows = crash["timeseries"]
    assert rows, "crash_curve row has an empty time series"
    times = [r["t_ms"] for r in rows]
    assert times == sorted(times), "time series windows out of order"
    window = times[1] - times[0] if len(times) > 1 else times[0] or 1.0
    crash_at = crash["crash_at_ms"]
    failures = 0.0
    for r in rows:
        for key in ("t_ms", "issued_per_s", "lookups_per_s",
                    "failures_per_s", "messages_per_s", "live_nodes"):
            assert key in r, f"time-series row missing {key!r}"
        failures += r["failures_per_s"] * window / 1000.0
        if r["failures_per_s"] > 0:
            # Failures are completions at a dead node, so they can only
            # land in windows that end after the crash instant.
            assert r["t_ms"] + window > crash_at, (
                f"failures at t={r['t_ms']} before crash at {crash_at}")
    assert round(failures) == crash["failed"], (
        f"time series counts {failures} failures, row says "
        f"{crash['failed']}")
    live = [r["live_nodes"] for r in rows if r["live_nodes"] >= 0]
    assert live and live[0] == 1024 and live[-1] == 1024 - crash["crashed"], (
        f"live-node curve {live[:3]}...{live[-3:]} does not drop by "
        f"{crash['crashed']}")


CONGESTION_ROW_FIELDS = ("name", "family", "workload", "alpha", "load",
                         "gap_ms", "p50_ms", "p99_ms", "p999_ms",
                         "mean_hops", "sent", "serviced", "timeouts",
                         "retries", "link_drops", "inbox_drops", "failures",
                         "max_queue_depth", "confinement", "load_stats")


def check_congestion(binary):
    with tempfile.TemporaryDirectory() as tmp:
        out = os.path.join(tmp, "report.json")
        subprocess.run([binary, f"--json={out}"],
                       check=True, stdout=subprocess.DEVNULL)
        with open(out) as f:
            doc = json.load(f)
    check_report_envelope(doc)
    assert doc["bench"] == "ablation_congestion"
    rows = doc["series"]
    # 2 families x {uniform, zipf} x alpha {1,2,4} x 4 load points.
    assert len(rows) == 48, f"expected 48 rows, got {len(rows)}"
    assert len({r["name"] for r in rows}) == len(rows), "duplicate row names"
    sweeps = {}  # (family, workload, alpha) -> [(load, row)]
    for row in rows:
        for key in CONGESTION_ROW_FIELDS:
            assert key in row, f"congestion row missing {key!r}"
        assert 0 < row["p50_ms"] <= row["p99_ms"] <= row["p999_ms"], row
        assert row["mean_hops"] > 1.0, row
        # Every serviced request is either a wire probe or a lookup's
        # local injection at its source (no wire message).
        assert row["serviced"] <= row["sent"] + row["load_stats"]["queries"], row
        assert row["retries"] <= row["timeouts"], row
        # retry_budget resends keep lookups alive through the collapse.
        assert row["failures"] <= 0.01 * row["load_stats"]["queries"], row
        # The ledger rides along on every row (same invariants as the
        # load observatory; the ratio==1.0 check is replaced by the
        # explicit confinement split below).
        check_load_section(row["load_stats"], 1)
        sweeps.setdefault((row["family"], row["workload"], row["alpha"]),
                          []).append((row["load"], row))
    families = {f for f, _, _ in sweeps}
    assert families == {"chord", "crescendo"}, families
    for (family, workload, alpha), points in sweeps.items():
        points.sort(key=lambda p: p[0])
        lo, hi = points[0][1], points[-1][1]
        label = f"{family}/{workload}/a{alpha}"
        if workload == "uniform":
            # No hot key, load far below per-node capacity: every offered
            # load point stays uncongested and flat.
            assert hi["p99_ms"] < 1.5 * lo["p99_ms"], (
                f"{label}: uniform p99 not flat: "
                f"{[p[1]['p99_ms'] for p in points]}")
            assert hi["timeouts"] <= 16, (
                f"{label}: uniform row congested: {hi['timeouts']} timeouts")
        else:
            # The knee: nothing times out below saturation, then the hot
            # key's owner saturates and timeouts jump super-linearly.
            below, knee = points[0][1], points[2][1]
            assert below["timeouts"] == 0, (
                f"{label}: timeouts below saturation: {below['timeouts']}")
            assert points[1][1]["timeouts"] <= 5, label
            assert knee["timeouts"] >= 50, (
                f"{label}: no knee: "
                f"{[p[1]['timeouts'] for p in points]}")
            assert hi["timeouts"] >= knee["timeouts"], label
            assert hi["p99_ms"] > 1.2 * lo["p99_ms"], (
                f"{label}: p99 did not rise past the knee: "
                f"{lo['p99_ms']} -> {hi['p99_ms']}")
        # The §5 split under concurrent traffic: hierarchical lookups stay
        # inside their transit domain even while congested; flat ones
        # never do.
        for _, row in points:
            ratio = row["confinement"]
            if family == "crescendo":
                assert ratio >= 0.95, f"{label}: confinement {ratio} < 0.95"
            else:
                assert ratio < 0.2, f"{label}: confinement {ratio} >= 0.2"
    # The collapse rows (zipf, alpha=2, deepest load) carry the congestion
    # curve: ordered windows with message and completion rates.
    curves = [r for r in rows if "timeseries" in r]
    assert {r["family"] for r in curves} == {"chord", "crescendo"}, (
        f"expected one congestion curve per family, got "
        f"{[r['name'] for r in curves]}")
    for r in curves:
        assert r["workload"] == "zipf" and r["alpha"] == 2, r["name"]
        windows = r["timeseries"]
        assert windows, f"{r['name']}: empty time series"
        times = [w["t_ms"] for w in windows]
        assert times == sorted(times), f"{r['name']}: windows out of order"
        assert any(w["messages_per_s"] > 0 for w in windows), r["name"]
        assert any(w["lookups_per_s"] > 0 for w in windows), r["name"]


def check_scale(binary):
    with tempfile.TemporaryDirectory() as tmp:
        out = os.path.join(tmp, "report.json")
        subprocess.run(
            [binary, "--min-nodes=4096", "--max-nodes=16384",
             "--lookups=2000", "--landmark-nodes=8192", f"--json={out}"],
            check=True, stdout=subprocess.DEVNULL)
        with open(out) as f:
            doc = json.load(f)
    check_report_envelope(doc)
    assert doc["bench"] == "bench_scale"
    assert doc["metrics"]["gauges"].get("build.peak_rss_mb", 0) > 0, (
        "build.peak_rss_mb gauge missing")
    rows = [r for r in doc["series"] if not r["name"].startswith("mem/")]
    names = [r["name"] for r in rows]
    assert names[:2] == ["crescendo/4096", "crescendo/16384"], names
    assert len(rows) == 3 and names[2].startswith("landmark/"), names
    for row in rows:
        for key in ("name", "nodes", "real_time", "build_s", "pop_s",
                    "peak_rss_mb", "current_rss_mb", "links", "lookups",
                    "lookups_per_sec", "mean_hops", "scalar_lookups_per_sec",
                    "batch_speedup"):
            assert key in row, f"scale row missing {key!r}"
        assert row["real_time"] > 0 and row["build_s"] > 0, row
        # Batch-probe column: both throughput flavors positive (the bench
        # itself asserts batch stats == scalar stats before reporting).
        assert row["scalar_lookups_per_sec"] > 0, row
        assert row["batch_speedup"] > 0, row
        assert row["links"] > row["nodes"], (
            f"{row['nodes']} nodes carry only {row['links']} links")
        assert row["lookups_per_sec"] > 0, row
        assert row["mean_hops"] > 1.0, row
        # Both RSS flavors per row: the high-water mark and the
        # point-in-time figure (rows are self-describing in any order).
        assert row["peak_rss_mb"] >= row["current_rss_mb"] * 0.5 > 0, row
    for row in rows[:2]:
        assert row["name"] == f"crescendo/{row['nodes']}", row["name"]
    landmark = rows[2]
    assert landmark["routers"] > 4096, (
        f"landmark row must exceed the exact threshold: {landmark}")
    assert landmark["landmarks"] > 0, landmark
    assert landmark["latency_build_s"] >= 0, landmark
    counters = doc["metrics"]["counters"]
    # Each of the 3 rows runs its 2000-lookup workload twice: once through
    # the scalar probe loop, once through the batch kernel.
    assert counters["query_engine.queries"] == 2 * 3 * 2000
    assert counters["query_engine.failures"] == 0


# Subsystem tags every bench_scale row's ledger must carry (the landmark
# row adds "topology.landmark" on top).
EXPECTED_SCALE_TAGS = {"overlay.soa", "hierarchy.path_pool",
                       "hierarchy.domain_tree", "link_table.csr",
                       "overlay.stream_chunks"}


def check_memory_ledger(mem, context):
    """Asserts MemoryAccountant.to_json() invariants for one row."""
    for key in ("attributed", "tags"):
        assert key in mem, f"{context}: ledger missing {key!r}"
    att = mem["attributed"]
    assert 0 <= att["current_bytes"] <= att["peak_bytes"], (context, att)
    total_current = 0
    for tag, st in mem["tags"].items():
        assert 0 <= st["current_bytes"] <= st["peak_bytes"], (context, tag)
        assert st["charges"] >= 1, (context, tag)
        total_current += st["current_bytes"]
    assert total_current == att["current_bytes"], (
        f"{context}: tag currents sum to {total_current}, "
        f"attributed says {att['current_bytes']}")
    assert att["peak_bytes"] >= max(
        st["peak_bytes"] for st in mem["tags"].values()), context


def check_resources(binary):
    with tempfile.TemporaryDirectory() as tmp:
        out = os.path.join(tmp, "report.json")
        subprocess.run(
            [binary, "--min-nodes=4096", "--max-nodes=4096",
             "--lookups=1000", "--landmark-nodes=8192", f"--json={out}"],
            check=True, stdout=subprocess.DEVNULL)
        with open(out) as f:
            doc = json.load(f)
    check_report_envelope(doc)
    memory = doc["metrics"]["memory"]
    row_names = [r["name"] for r in doc["series"]
                 if not r["name"].startswith("mem/")]
    assert set(memory) == set(row_names) | {"rss_timeline"}, (
        f"memory section keys {set(memory)} != rows {row_names}")
    mem_rows = {r["name"]: r for r in doc["series"]
                if r["name"].startswith("mem/")}
    for name in row_names:
        ledger = memory[name]
        check_memory_ledger(ledger, name)
        expected = set(EXPECTED_SCALE_TAGS)
        if name.startswith("landmark/"):
            expected.add("topology.landmark")
        assert expected <= set(ledger["tags"]), (
            f"{name}: tags {set(ledger['tags'])} missing "
            f"{expected - set(ledger['tags'])}")
        measured = ledger["measured"]
        for key in ("start_mb", "after_pop_mb", "after_build_mb",
                    "after_queries_mb", "peak_mb"):
            assert measured.get(key, 0) > 0, f"{name}: measured.{key}"
        assert measured["peak_mb"] >= measured["start_mb"], measured
        # Every ledger tag rides as a mem/<row>/<tag> series row with the
        # same bytes — the rows CI's compare_bench --metric=peak_bytes
        # gates against BENCH_scale.json.
        for tag, st in ledger["tags"].items():
            row = mem_rows.get(f"mem/{name}/{tag}")
            assert row is not None, f"missing series row mem/{name}/{tag}"
            assert row["peak_bytes"] == st["peak_bytes"], (name, tag)
            assert row["current_bytes"] == st["current_bytes"], (name, tag)
    timeline = memory["rss_timeline"]
    assert timeline, "empty RSS timeline"
    times = [w["t_ms"] for w in timeline]
    assert times == sorted(times), "RSS timeline windows out of order"
    assert all(w.get("rss_mb", 0) > 0 for w in timeline), (
        "RSS timeline window without an rss_mb sample")


SCALE_WALL_CLOCK_FIELDS = ("real_time", "build_s", "pop_s", "peak_rss_mb",
                           "current_rss_mb", "latency_build_s",
                           "lookups_per_sec", "scalar_lookups_per_sec",
                           "batch_speedup")


def strip_timing(doc):
    """Removes the only report fields allowed to vary with --threads (or
    with the batch-engine knobs --batch-width / --grain)."""
    doc["params"].pop("threads", None)
    doc["params"].pop("grain", None)
    doc["params"].pop("batch_width", None)
    doc["metrics"].pop("gauges", None)
    doc["metrics"].pop("histograms", None)
    if doc.get("bench") == "bench_scale":
        # The scale bench reports wall clocks and RSS per series row; the
        # determinism contract covers the structural fields that remain
        # (nodes, links, lookups, mean_hops, and every attributed byte
        # figure — the ledger is a pure function of the charge sequence).
        for row in doc["series"]:
            for field in SCALE_WALL_CLOCK_FIELDS:
                row.pop(field, None)
        memory = doc["metrics"].get("memory")
        if memory:
            # Measured RSS and the wall-clock-bucketed timeline move with
            # the machine; the attributed ledgers must not.
            memory.pop("rss_timeline", None)
            for entry in memory.values():
                entry.pop("measured", None)
    return doc


def check_threads_invariant(binary, extra_args):
    # --widths=1,8,16 widens the matrix: every (threads, batch width)
    # combination must produce the same stripped report.
    widths = [None]
    args = []
    for a in extra_args:
        if a.startswith("--widths="):
            widths = [int(w) for w in a.split("=", 1)[1].split(",")]
        else:
            args.append(a)
    docs = []
    with tempfile.TemporaryDirectory() as tmp:
        for threads in (1, 8):
            for width in widths:
                label = f"t{threads}" if width is None else (
                    f"t{threads}_w{width}")
                out = os.path.join(tmp, f"{label}.json")
                cmd = [binary, *args, f"--threads={threads}"]
                if width is not None:
                    cmd.append(f"--batch-width={width}")
                subprocess.run(cmd + [f"--json={out}"],
                               check=True, stdout=subprocess.DEVNULL)
                with open(out) as f:
                    docs.append((label, strip_timing(json.load(f))))
    base_label, base = docs[0]
    for label, doc in docs[1:]:
        assert doc == base, (
            f"report differs between {base_label} and {label}")


def main():
    if sys.argv[1] == "--doctor":
        check_doctor(sys.argv[2])
    elif sys.argv[1] == "--resilient":
        check_resilient(sys.argv[2])
    elif sys.argv[1] == "--threads-invariant":
        check_threads_invariant(sys.argv[2], sys.argv[3:])
    elif sys.argv[1] == "--load":
        check_load(sys.argv[2])
    elif sys.argv[1] == "--congestion":
        check_congestion(sys.argv[2])
    elif sys.argv[1] == "--scale":
        check_scale(sys.argv[2])
    elif sys.argv[1] == "--resources":
        check_resources(sys.argv[2])
    else:
        check_bench(sys.argv[1])
    print("ok")


if __name__ == "__main__":
    main()
