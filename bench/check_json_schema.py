#!/usr/bin/env python3
"""End-to-end check for the machine-readable output schemas.

Four modes:

  check_json_schema.py <bench_binary>
    Runs a bench binary with small parameters and --json, then asserts the
    stable top-level schema {bench, seed, params, metrics, series} and —
    for fig5_hops — that every series row's per-hierarchy-level hop
    breakdown sums to its total hop count (the paper's convergence
    accounting).

  check_json_schema.py --threads-invariant <bench_binary> [args...]
    Runs the binary at --threads=1 and --threads=8 with the given args and
    asserts the two --json reports are identical after stripping the
    wall-clock-dependent fields (params.threads, metrics.gauges,
    metrics.histograms): the batch QueryEngine / parallel construction
    determinism contract (docs/PERFORMANCE.md).

  check_json_schema.py --doctor <canon_doctor_binary>
    Runs canon_doctor in static (--all) and churn (--journal-out) modes
    and asserts (a) the doctor's --json report carries a schema-valid
    audit object per family, (b) the churn journal is schema-valid JSONL
    with contiguous sequence numbers and a clean final audit_snapshot,
    and (c) replaying the journal reproduces the healthy verdict. Also
    runs one family with --crash-rate and asserts the resilience object
    and the crash events journaled by the fault plan.

  check_json_schema.py --resilient <ablation_resilience_binary>
    Runs the resilience ablation with small parameters and asserts the
    per-row schema: success rates in [0, 1], zero-fault rows lossless and
    retry-free (the empty-plan identity), and success monotone
    non-increasing in the kill fraction within each (family, leaf_set)
    series (fail_fraction's kill sets are nested).
"""
import json
import os
import subprocess
import sys
import tempfile

JOURNAL_TYPES = {"join", "leave", "repair", "lookup_failure",
                 "audit_snapshot", "crash", "revive"}
JOURNAL_REQUIRED = {
    "join": {"id", "path", "lookup_hops", "size"},
    "leave": {"id", "size"},
    "repair": {"cause", "pivot", "nodes_updated"},
    "lookup_failure": {"from", "key", "hops"},
    "audit_snapshot": {"size", "checks", "violations"},
    "crash": {"node", "id", "at"},
    "revive": {"node", "id", "at"},
}


def check_report_envelope(doc):
    for key in ("bench", "seed", "params", "metrics", "series"):
        assert key in doc, f"missing top-level key {key!r}"
    assert isinstance(doc["params"], dict)
    assert isinstance(doc["series"], list) and doc["series"], "empty series"
    for section in ("counters", "gauges", "histograms"):
        assert section in doc["metrics"], f"missing metrics.{section}"


def check_audit_object(audit):
    for key in ("ok", "checks", "violation_count", "violations"):
        assert key in audit, f"audit object missing {key!r}"
    assert isinstance(audit["checks"], dict) and audit["checks"]
    assert audit["violation_count"] == len(audit["violations"])
    for v in audit["violations"]:
        for key in ("check", "node", "level", "detail"):
            assert key in v, f"violation missing {key!r}"


def check_journal(path):
    with open(path) as f:
        lines = [ln for ln in f.read().splitlines() if ln]
    assert lines, "empty journal"
    last_snapshot = None
    for i, line in enumerate(lines):
        ev = json.loads(line)
        assert ev["seq"] == i, f"line {i + 1}: seq {ev['seq']} != {i}"
        assert ev["type"] in JOURNAL_TYPES, f"unknown type {ev['type']!r}"
        missing = JOURNAL_REQUIRED[ev["type"]] - set(ev)
        assert not missing, f"{ev['type']} event missing {missing}"
        if ev["type"] == "audit_snapshot":
            last_snapshot = ev
    assert last_snapshot is not None, "journal has no audit_snapshot"
    assert last_snapshot["violations"] == 0, (
        f"final snapshot reports {last_snapshot['violations']} violations")


def check_bench(binary):
    with tempfile.TemporaryDirectory() as tmp:
        out = os.path.join(tmp, "report.json")
        subprocess.run(
            [binary, "--min-nodes=256", "--max-nodes=512", "--trials=200",
             f"--json={out}"],
            check=True, stdout=subprocess.DEVNULL)
        with open(out) as f:
            doc = json.load(f)

    check_report_envelope(doc)
    if doc["bench"] == "fig5_hops":
        for row in doc["series"]:
            total = row["total_hops"]
            by_level = row["hops_by_level"]
            assert sum(by_level) == total, (
                f"hops_by_level {by_level} does not sum to {total} "
                f"(nodes={row['nodes']}, levels={row['levels']})")
            assert len(by_level) <= row["levels"] + 1
        counters = doc["metrics"]["counters"]
        # Lookups flow through the batch QueryEngine, which flushes its
        # per-shard tallies to the query_engine.* counters post-merge.
        assert counters["query_engine.queries"] > 0
        assert counters["query_engine.failures"] == 0
        assert counters["query_engine.hops"] == sum(
            r["total_hops"] for r in doc["series"])


def check_doctor(binary):
    with tempfile.TemporaryDirectory() as tmp:
        report = os.path.join(tmp, "doctor.json")
        subprocess.run(
            [binary, "--all", "--nodes=256", "--levels=3",
             f"--json={report}"],
            check=True, stdout=subprocess.DEVNULL)
        with open(report) as f:
            doc = json.load(f)
        check_report_envelope(doc)
        assert doc["bench"] == "canon_doctor"
        families = set()
        for row in doc["series"]:
            assert "family" in row and "audit" in row
            check_audit_object(row["audit"])
            assert row["audit"]["ok"] is True, (
                f"family {row['family']} audited unhealthy")
            families.add(row["family"])
        assert len(families) == 13, f"expected 13 families, got {families}"
        counters = doc["metrics"]["counters"]
        assert counters["audit.checks"] > 0
        assert counters.get("audit.violations", 0) == 0

        journal = os.path.join(tmp, "churn.jsonl")
        subprocess.run(
            [binary, "--nodes=128", "--churn=60", "--snapshot-every=20",
             f"--journal-out={journal}"],
            check=True, stdout=subprocess.DEVNULL)
        check_journal(journal)
        subprocess.run([binary, f"--replay={journal}"],
                       check=True, stdout=subprocess.DEVNULL)

        # Fault phase: --crash-rate adds a resilience object per family row
        # and journals every injected crash.
        fault_report = os.path.join(tmp, "faults.json")
        fault_journal = os.path.join(tmp, "faults.jsonl")
        subprocess.run(
            [binary, "--family=crescendo", "--nodes=256", "--levels=3",
             "--crash-rate=0.3", "--trials=300",
             f"--json={fault_report}", f"--journal-out={fault_journal}"],
            check=True, stdout=subprocess.DEVNULL)
        with open(fault_report) as f:
            doc = json.load(f)
        res = doc["series"][0]["resilience"]
        for key in ("crash_rate", "crashed", "attempted", "ok",
                    "success_rate", "availability", "retries",
                    "fallback_hops", "skipped_dead_source"):
            assert key in res, f"resilience object missing {key!r}"
        assert 0.0 <= res["success_rate"] <= 1.0
        with open(fault_journal) as f:
            events = [json.loads(ln) for ln in f.read().splitlines() if ln]
        assert events, "fault journal is empty"
        crashes = 0
        for i, ev in enumerate(events):
            assert ev["seq"] == i, f"fault journal seq {ev['seq']} != {i}"
            assert ev["type"] in JOURNAL_TYPES
            missing = JOURNAL_REQUIRED[ev["type"]] - set(ev)
            assert not missing, f"{ev['type']} event missing {missing}"
            crashes += ev["type"] == "crash"
        assert crashes == res["crashed"], (
            f"journal has {crashes} crash events, "
            f"report says {res['crashed']}")


def check_resilient(binary):
    with tempfile.TemporaryDirectory() as tmp:
        out = os.path.join(tmp, "report.json")
        subprocess.run(
            [binary, "--nodes=1024", "--trials=500", f"--json={out}"],
            check=True, stdout=subprocess.DEVNULL)
        with open(out) as f:
            doc = json.load(f)
    check_report_envelope(doc)
    assert doc["bench"] == "ablation_resilience"
    series = {}  # (family, leaf_set or None) -> [(fail_pct, success)]
    for row in doc["series"]:
        for key in ("family", "fail_pct", "attempted", "ok", "success",
                    "availability", "retries", "fallback_hops"):
            assert key in row, f"series row missing {key!r}"
        assert 0.0 <= row["success"] <= 1.0, row
        assert 0.0 <= row["availability"] <= 1.0, row
        if row["fail_pct"] == 0:
            # Empty-plan identity: nothing dead, nothing dropped, so the
            # resilient engine must be lossless and retry-free.
            assert row["success"] == 1.0, row
            assert row["retries"] == 0, row
            assert row["fallback_hops"] == 0, row
            assert row["skipped_dead_source"] == 0, row
        series.setdefault((row["family"], row.get("leaf_set")),
                          []).append((row["fail_pct"], row["success"]))
    assert len(series) == 13 + 4, "expected 13 family + 4 leaf-set series"
    for (family, leaf), points in series.items():
        points.sort()
        for (_, prev), (_, cur) in zip(points, points[1:]):
            # Small slack: deeper kill sets also shrink the attempted pool
            # and reassign live responsibility, so single lookups can flip.
            assert cur <= prev + 0.02, (
                f"success not monotone for {family} (leaf_set={leaf}): "
                f"{points}")


def strip_timing(doc):
    """Removes the only report fields allowed to vary with --threads."""
    doc["params"].pop("threads", None)
    doc["metrics"].pop("gauges", None)
    doc["metrics"].pop("histograms", None)
    return doc


def check_threads_invariant(binary, extra_args):
    docs = []
    with tempfile.TemporaryDirectory() as tmp:
        for threads in (1, 8):
            out = os.path.join(tmp, f"t{threads}.json")
            subprocess.run(
                [binary, *extra_args, f"--threads={threads}",
                 f"--json={out}"],
                check=True, stdout=subprocess.DEVNULL)
            with open(out) as f:
                docs.append(strip_timing(json.load(f)))
    assert docs[0] == docs[1], (
        "report differs between --threads=1 and --threads=8")


def main():
    if sys.argv[1] == "--doctor":
        check_doctor(sys.argv[2])
    elif sys.argv[1] == "--resilient":
        check_resilient(sys.argv[2])
    elif sys.argv[1] == "--threads-invariant":
        check_threads_invariant(sys.argv[2], sys.argv[3:])
    else:
        check_bench(sys.argv[1])
    print("ok")


if __name__ == "__main__":
    main()
