#!/usr/bin/env python3
"""End-to-end check for the bench --json report schema.

Runs a bench binary (argv[1]) with small parameters and --json, then
asserts the stable top-level schema {bench, seed, params, metrics, series}
and — for fig5_hops — that every series row's per-hierarchy-level hop
breakdown sums to its total hop count (the paper's convergence accounting).
"""
import json
import os
import subprocess
import sys
import tempfile


def main():
    binary = sys.argv[1]
    with tempfile.TemporaryDirectory() as tmp:
        out = os.path.join(tmp, "report.json")
        subprocess.run(
            [binary, "--min-nodes=256", "--max-nodes=512", "--trials=200",
             f"--json={out}"],
            check=True, stdout=subprocess.DEVNULL)
        with open(out) as f:
            doc = json.load(f)

    for key in ("bench", "seed", "params", "metrics", "series"):
        assert key in doc, f"missing top-level key {key!r}"
    assert isinstance(doc["params"], dict)
    assert isinstance(doc["series"], list) and doc["series"], "empty series"
    for section in ("counters", "gauges", "histograms"):
        assert section in doc["metrics"], f"missing metrics.{section}"

    if doc["bench"] == "fig5_hops":
        for row in doc["series"]:
            total = row["total_hops"]
            by_level = row["hops_by_level"]
            assert sum(by_level) == total, (
                f"hops_by_level {by_level} does not sum to {total} "
                f"(nodes={row['nodes']}, levels={row['levels']})")
            assert len(by_level) <= row["levels"] + 1
        counters = doc["metrics"]["counters"]
        assert counters["ring_router.routes"] > 0
        assert counters["ring_router.hops"] == sum(
            r["total_hops"] for r in doc["series"])
    print("ok")


if __name__ == "__main__":
    main()
