// Ablation A1 (Section 3.1): greedy routing with a 1-step lookahead cuts
// hop counts by ~40% in Symphony; Cacophony inherits the same improvement.
//
// Both variants route the same pre-generated workload through the batch
// QueryEngine (probe mode, parallel across --threads); hop means cover
// successful routes.
#include <iostream>

#include "bench/bench_util.h"
#include "canon/cacophony.h"
#include "common/table.h"
#include "dht/symphony.h"
#include "overlay/population.h"
#include "overlay/query_engine.h"
#include "overlay/routing.h"

using namespace canon;

int main(int argc, char** argv) {
  bench::BenchRun run(argc, argv, "ablation_lookahead");
  const std::uint64_t seed = run.seed;
  const std::uint64_t min_n = run.u64("min-nodes", 1024);
  const std::uint64_t max_n = run.u64("max-nodes", 32768);
  const std::uint64_t trials = run.u64("trials", 2000);
  run.header("Ablation A1: greedy-with-lookahead routing",
                "Symphony & Cacophony (3 levels), hops with/without "
                "lookahead");

  TextTable table({"nodes", "Symphony greedy", "Symphony lookahead", "saved",
                   "Cacophony greedy", "Cacophony lookahead", "saved"});
  for (std::uint64_t n = min_n; n <= max_n; n *= 2) {
    std::vector<std::string> row = {TextTable::num(n)};
    for (const bool hierarchical : {false, true}) {
      Rng rng(seed + n + hierarchical);
      PopulationSpec spec;
      spec.node_count = n;
      spec.hierarchy.levels = hierarchical ? 3 : 1;
      spec.hierarchy.fanout = 10;
      const auto net = make_population(spec, rng);
      const auto links = hierarchical ? build_cacophony(net, rng)
                                      : build_symphony(net, rng);
      const RingRouter router(net, links);
      const QueryEngine engine(net);
      const auto queries = uniform_workload(net, trials, rng);
      const Summary greedy = engine.run(queries, router).hops;
      const Summary ahead = engine.run_lookahead(queries, router).hops;
      row.push_back(TextTable::num(greedy.mean(), 2));
      row.push_back(TextTable::num(ahead.mean(), 2));
      row.push_back(
          TextTable::num(100 * (1 - ahead.mean() / greedy.mean()), 0) + "%");
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\n(paper: ~40% savings asymptotically — O(log n / log log n) "
               "vs 0.5 log n; our conservative committed-pair variant saves "
               "~15-25% at these sizes, growing with n)\n";
  run.report().set_series(bench::table_to_json(table));
  return run.finish();
}
