// Ablation A9: the load observatory. The paper's motivation for Canon is
// getting hierarchy WITHOUT hierarchical systems' hot spots, and §5 claims
// traffic between nodes of one domain stays inside that domain. Both are
// measured here:
//
//   Section A (per-levels rows): an identical hot-key (Zipf) or uniform
//   workload routed through Crescendo at 1-5 levels via the batch
//   QueryEngine with a LoadAccountant attached — per-node load spread
//   (mean, max, Gini), hotspot nodes/keys, per-domain traffic shares, and
//   the domain-confinement ratio, which must be exactly 1.0 for every
//   hierarchical row. Each JSON row carries the full "load" section; the
//   accountant merges per-shard tallies in fixed shard order, so rows are
//   byte-identical at any --threads (ctest bench_query_determinism_load).
//
//   Section B (one "crash_curve" row): the discrete-event simulator runs
//   the concurrent version of the workload while a FaultPlan crashes a
//   fraction of nodes mid-run; a TimeSeriesRecorder turns the degradation
//   into a curve (lookups/s, failures/s, live nodes) emitted as the row's
//   "timeseries" array. The simulator is serial, so this too is
//   thread-invariant.
#include <iostream>
#include <string>

#include "bench/bench_util.h"
#include "canon/crescendo.h"
#include "common/table.h"
#include "overlay/event_sim.h"
#include "overlay/population.h"
#include "overlay/query_engine.h"
#include "telemetry/load_stats.h"
#include "telemetry/timeseries.h"

using namespace canon;

int main(int argc, char** argv) {
  bench::BenchRun run(argc, argv, "ablation_load");
  const std::uint64_t seed = run.seed;
  const std::uint64_t n = run.u64("nodes", 8192);
  const std::uint64_t lookups = run.u64("lookups", 50000);
  const std::string workload = run.str("workload", "zipf");
  const double theta = run.f64("theta", 1.25);
  const double crash_fraction = run.f64("crash_fraction", 0.25);
  run.header("Ablation A9: the load observatory",
             "per-node load spread, hotspots, per-domain traffic shares and "
             "the §5 confinement ratio; flat Chord vs Crescendo levels 2-5, "
             "plus a crash-curve time series");

  TextTable table({"levels", "mean hops", "mean load", "max load", "max/mean",
                   "gini", "top share", "confined"});
  for (int levels = 1; levels <= 5; ++levels) {
    Rng rng(seed + static_cast<std::uint64_t>(levels));
    PopulationSpec spec;
    spec.node_count = n;
    spec.hierarchy.levels = levels;
    spec.hierarchy.fanout = 10;
    const auto net = make_population(spec, rng);
    const auto links = build_crescendo(net);
    const RingRouter router(net, links);

    // Identical workload for every structure: keys are absolute ID-space
    // points, so each structure resolves the same traffic.
    const Rng wrng(seed);
    const auto queries =
        workload == "uniform"
            ? uniform_workload(net, lookups, wrng)
            : zipf_workload(net, lookups, wrng, theta);

    telemetry::LoadAccountant load(net.domains(), net.ids());
    QueryEngine engine(net);
    engine.set_load(&load);
    const QueryStats stats = engine.run(queries, router);

    double top_share = 0;
    for (const auto& dl : load.domain_loads()) {
      top_share = std::max(top_share, dl.share);
    }
    table.add_row({levels == 1 ? "1 (Chord)" : std::to_string(levels),
                   TextTable::num(stats.hops.mean(), 2),
                   TextTable::num(load.mean_load(), 1),
                   TextTable::num(static_cast<double>(load.max_load()), 0),
                   TextTable::num(load.max_mean_ratio(), 2),
                   TextTable::num(load.gini(), 3),
                   TextTable::num(top_share, 3),
                   TextTable::num(load.confinement_ratio(), 3)});

    telemetry::JsonValue row = telemetry::JsonValue::object();
    row.set("levels", telemetry::JsonValue(static_cast<std::int64_t>(levels)));
    row.set("mean_hops", telemetry::JsonValue(stats.hops.mean()));
    row.set("failures", telemetry::JsonValue(stats.failures));
    row.set("load", load.to_json());
    run.report().add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\n(expected: max/mean and gini stay at flat Chord's level "
               "across 1-5 levels, and 'confined' — the fraction of "
               "intra-domain lookups that never leave their domain — is "
               "exactly 1.000 for every hierarchical row)\n";

  // Section B: degradation under crashes as a time series (levels 3).
  {
    Rng rng(seed + 3);
    PopulationSpec spec;
    spec.node_count = n;
    spec.hierarchy.levels = 3;
    spec.hierarchy.fanout = 10;
    const auto net = make_population(spec, rng);
    const auto links = build_crescendo(net);
    EventSimulator sim(net, links);
    telemetry::TimeSeriesRecorder series(25.0);

    const double submit_gap_ms = 0.02;
    const double span_ms = submit_gap_ms * static_cast<double>(lookups);
    const auto crash_at = static_cast<std::uint64_t>(span_ms / 2);
    FaultPlan plan =
        FaultPlan::fail_fraction(net.size(), crash_fraction, seed ^ 0xc4a54);
    FaultPlan timed;  // same kill set, scheduled mid-run
    for (const FaultEvent& fe : plan.events()) {
      timed.crash(fe.node, crash_at);
    }
    SimSinks sinks;
    sinks.timeseries = &series;
    sinks.fault_plan = &timed;
    sim.attach(sinks);

    Rng qrng(seed);
    for (std::uint64_t t = 0; t < lookups; ++t) {
      const auto from = static_cast<std::uint32_t>(qrng.uniform(net.size()));
      sim.submit(from, net.space().wrap(qrng()),
                 submit_gap_ms * static_cast<double>(t));
    }
    sim.run();

    std::uint64_t failed = 0;
    for (const auto& lookup : sim.lookups()) {
      if (!lookup.ok) ++failed;
    }
    std::cout << "\ncrash curve: " << timed.events().size() << " nodes ("
              << crash_fraction * 100 << "%) crash at t=" << crash_at
              << "ms; " << failed << "/" << lookups
              << " lookups fail; time series in the JSON report\n";

    telemetry::JsonValue row = telemetry::JsonValue::object();
    row.set("phase", telemetry::JsonValue("crash_curve"));
    row.set("levels", telemetry::JsonValue(std::int64_t{3}));
    row.set("crash_at_ms",
            telemetry::JsonValue(static_cast<std::uint64_t>(crash_at)));
    row.set("crashed", telemetry::JsonValue(static_cast<std::uint64_t>(
                           timed.events().size())));
    row.set("failed", telemetry::JsonValue(failed));
    row.set("timeseries", series.to_json());
    run.report().add_row(std::move(row));
  }
  return run.finish();
}
