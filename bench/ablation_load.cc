// Ablation A9 (Section 1): load homogeneity. The paper's motivation for
// Canon is getting hierarchy WITHOUT hierarchical systems' hot spots. We
// drive identical concurrent lookup workloads through flat Chord and
// Crescendo at 1-5 levels with the discrete-event simulator and compare
// the distribution of per-node routing load.
#include <iostream>

#include "bench/bench_util.h"
#include "canon/crescendo.h"
#include "common/table.h"
#include "overlay/event_sim.h"
#include "overlay/population.h"

using namespace canon;

int main(int argc, char** argv) {
  bench::BenchRun run(argc, argv, "ablation_load");
  const std::uint64_t seed = run.seed;
  const std::uint64_t n = run.u64("nodes", 8192);
  const std::uint64_t lookups = run.u64("lookups", 50000);
  run.header("Ablation A9: routing-load homogeneity",
                "per-node messages processed under a uniform concurrent "
                "workload; flat Chord vs Crescendo levels 2-5");

  TextTable table({"levels", "mean load", "p99 load", "max load",
                   "max/mean", "mean lookup ms"});
  for (int levels = 1; levels <= 5; ++levels) {
    Rng rng(seed + levels);
    PopulationSpec spec;
    spec.node_count = n;
    spec.hierarchy.levels = levels;
    spec.hierarchy.fanout = 10;
    const auto net = make_population(spec, rng);
    const auto links = build_crescendo(net);
    EventSimulator sim(net, links);
    Rng qrng(seed);  // identical workload for every structure
    for (std::uint64_t t = 0; t < lookups; ++t) {
      const auto from = static_cast<std::uint32_t>(qrng.uniform(net.size()));
      sim.submit(from, net.space().wrap(qrng()),
                 0.02 * static_cast<double>(t));
    }
    sim.run();
    Percentiles load;
    Summary latency;
    for (const auto l : sim.node_load()) {
      load.add(static_cast<double>(l));
    }
    for (const auto& lookup : sim.lookups()) {
      latency.add(lookup.latency_ms());
    }
    table.add_row({levels == 1 ? "1 (Chord)" : std::to_string(levels),
                   TextTable::num(load.mean(), 1),
                   TextTable::num(load.quantile(0.99), 0),
                   TextTable::num(load.quantile(1.0), 0),
                   TextTable::num(load.quantile(1.0) / load.mean(), 2),
                   TextTable::num(latency.mean(), 2)});
  }
  table.print(std::cout);
  std::cout << "\n(expected: hierarchy does NOT create hot spots — max/mean "
               "load stays at flat Chord's level across 1-5 levels)\n";
  run.report().set_series(bench::table_to_json(table));
  return run.finish();
}
