// Figure 8: overlap fraction between converging query paths as a function
// of domain level, 32K nodes — the caching benefit metric.
//
// Two nodes drawn from the same level-d domain issue the same query; the
// overlap fraction is the fraction of the second path (hops / latency)
// shared with the first. Systems: Crescendo vs Chord (Prox.).
//
// Expected shape (paper): Chord's overlap is near zero at every level;
// Crescendo's rises steeply with domain level, and latency overlap exceeds
// hop overlap.
#include <iostream>

#include "bench/bench_util.h"
#include "canon/crescendo.h"
#include "canon/proximity.h"
#include "common/table.h"
#include "overlay/metrics.h"
#include "overlay/routing.h"
#include "topology/physical_network.h"

using namespace canon;

int main(int argc, char** argv) {
  bench::BenchRun run(argc, argv, "fig8_overlap");
  const std::uint64_t seed = run.seed;
  const std::uint64_t n = run.u64("nodes", 32768);
  const std::uint64_t trials = run.u64("trials", 3000);
  run.header("Figure 8: path overlap fraction vs domain level (32K)",
                "hop & latency overlap of two same-domain queries; "
                "Crescendo vs Chord (Prox.)");

  Rng topo_rng(seed);
  const PhysicalNetwork phys(TransitStubConfig{}, topo_rng);
  Rng rng(seed + 1);
  const auto net = make_physical_population(n, phys, 32, rng);
  const HopCost cost = host_hop_cost(net, phys);
  const GroupedOverlay groups(net, 16);
  const ProximityConfig cfg;

  const auto crescendo = build_crescendo(net);
  const auto chord_prox = build_chord_prox(net, groups, cost, cfg, rng);
  const RingRouter crescendo_router(net, crescendo);
  const GroupRouter chord_router(net, groups, chord_prox);

  TextTable table({"domain level", "Crescendo hops", "Crescendo latency",
                   "Chord(Prox) hops", "Chord(Prox) latency"});
  const char* labels[] = {"Top Level", "Level 1", "Level 2", "Level 3",
                          "Level 4"};
  for (int level = 0; level <= 4; ++level) {
    Summary cr_hops;
    Summary cr_ms;
    Summary ch_hops;
    Summary ch_ms;
    Rng qrng(seed + 11 + level);
    for (std::uint64_t t = 0; t < trials; ++t) {
      // Two distinct nodes from the same level-`level` domain, one common
      // random key.
      const auto first =
          static_cast<std::uint32_t>(qrng.uniform(net.size()));
      const int domain = net.domains().domain_of(first, level);
      const RingView ring = net.domain_ring(domain);
      if (ring.size() < 2) continue;
      std::uint32_t second = ring.at(qrng.uniform(ring.size()));
      if (second == first) continue;
      const NodeId key = net.space().wrap(qrng());

      const Route c1 = crescendo_router.route(first, key);
      const Route c2 = crescendo_router.route(second, key);
      if (c1.ok && c2.ok) {
        if (const auto f = hop_overlap_fraction(c1, c2)) cr_hops.add(*f);
        if (const auto f = cost_overlap_fraction(c1, c2, cost)) cr_ms.add(*f);
      }
      const Route p1 = chord_router.route(first, key);
      const Route p2 = chord_router.route(second, key);
      if (p1.ok && p2.ok) {
        if (const auto f = hop_overlap_fraction(p1, p2)) ch_hops.add(*f);
        if (const auto f = cost_overlap_fraction(p1, p2, cost)) ch_ms.add(*f);
      }
    }
    table.add_row({labels[level], TextTable::num(cr_hops.mean(), 3),
                   TextTable::num(cr_ms.mean(), 3),
                   TextTable::num(ch_hops.mean(), 3),
                   TextTable::num(ch_ms.mean(), 3)});
  }
  table.print(std::cout);
  std::cout << "\n(paper: Crescendo overlap climbs toward ~0.9 with domain "
               "level, latency > hops; Chord stays near 0)\n";
  run.report().set_series(bench::table_to_json(table));
  return run.finish();
}
