// Figure 7: query latency as a function of query locality, 32K nodes on
// the transit-stub topology.
//
// A "Level k" query is initiated by a node for content stored within its
// own level-k domain (Top Level = anywhere in the system); the query routes
// to the node responsible for that content. Systems: Chord (Prox.),
// Crescendo (No Prox.), Crescendo (Prox.).
//
// Expected shape (paper): Crescendo latency collapses as locality rises
// (virtually zero at level 3+, where queries stay inside one stub domain);
// Chord barely improves even with proximity adaptation.
//
// Per-level workloads are pre-generated from forked RNG streams and run
// through the batch QueryEngine (all three systems route the same
// queries); latency Summaries cover successful routes.
#include <iostream>

#include "bench/bench_util.h"
#include "canon/crescendo.h"
#include "canon/proximity.h"
#include "common/table.h"
#include "overlay/metrics.h"
#include "overlay/query_engine.h"
#include "overlay/routing.h"
#include "topology/physical_network.h"

using namespace canon;

int main(int argc, char** argv) {
  bench::BenchRun run(argc, argv, "fig7_locality");
  const std::uint64_t seed = run.seed;
  const std::uint64_t n = run.u64("nodes", 32768);
  const std::uint64_t trials = run.u64("trials", 3000);
  run.header("Figure 7: latency vs query locality (32K nodes)",
                "latency of level-k-local queries; Chord(Prox), "
                "Crescendo(No Prox), Crescendo(Prox)");

  Rng topo_rng(seed);
  const PhysicalNetwork phys(TransitStubConfig{}, topo_rng);
  Rng rng(seed + 1);
  const auto net = make_physical_population(n, phys, 32, rng);
  const HopCost cost = host_hop_cost(net, phys);
  const GroupedOverlay groups(net, 16);
  const ProximityConfig cfg;

  const auto crescendo = build_crescendo(net);
  const auto chord_prox = build_chord_prox(net, groups, cost, cfg, rng);
  const auto crescendo_prox = build_crescendo_prox(net, groups, cost, cfg, rng);
  const RingRouter crescendo_router(net, crescendo);
  const GroupRouter chord_prox_router(net, groups, chord_prox);
  const GroupRouter crescendo_prox_router(net, groups, crescendo_prox);

  TextTable table({"query locality", "Chord (Prox.) ms",
                   "Crescendo (No Prox.) ms", "Crescendo (Prox.) ms"});
  const char* labels[] = {"Top Level", "Level 1", "Level 2", "Level 3",
                          "Level 4"};
  QueryEngine engine(net);
  engine.set_cost(cost);
  for (int level = 0; level <= 4; ++level) {
    // A query picks content stored at a random node of the source's
    // level-k domain (level 0 = anywhere); the key is that node's ID.
    const auto queries = generate_workload(
        trials, Rng(seed + 7 + static_cast<std::uint64_t>(level)),
        [&](Rng& q, std::size_t) {
          const auto from = static_cast<std::uint32_t>(q.uniform(net.size()));
          const int domain = net.domains().domain_of(from, level);
          const RingView ring = net.domain_ring(domain);
          const std::uint32_t target = ring.at(q.uniform(ring.size()));
          return Query{from, net.id(target)};
        });
    const Summary ms_chord_prox = engine.run(queries, chord_prox_router).cost;
    const Summary ms_crescendo = engine.run(queries, crescendo_router).cost;
    const Summary ms_crescendo_prox =
        engine.run(queries, crescendo_prox_router).cost;
    table.add_row({labels[level], TextTable::num(ms_chord_prox.mean(), 0),
                   TextTable::num(ms_crescendo.mean(), 0),
                   TextTable::num(ms_crescendo_prox.mean(), 0)});
  }
  table.print(std::cout);
  std::cout << "\n(paper: Crescendo latency collapses with locality, near 0 "
               "by level 3; Chord(Prox) barely improves)\n";
  run.report().set_series(bench::table_to_json(table));
  return run.finish();
}
