// Figure 7: query latency as a function of query locality, 32K nodes on
// the transit-stub topology.
//
// A "Level k" query is initiated by a node for content stored within its
// own level-k domain (Top Level = anywhere in the system); the query routes
// to the node responsible for that content. Systems: Chord (Prox.),
// Crescendo (No Prox.), Crescendo (Prox.).
//
// Expected shape (paper): Crescendo latency collapses as locality rises
// (virtually zero at level 3+, where queries stay inside one stub domain);
// Chord barely improves even with proximity adaptation.
#include <iostream>

#include "bench/bench_util.h"
#include "canon/crescendo.h"
#include "canon/proximity.h"
#include "common/table.h"
#include "overlay/metrics.h"
#include "overlay/routing.h"
#include "topology/physical_network.h"

using namespace canon;

int main(int argc, char** argv) {
  bench::BenchRun run(argc, argv, "fig7_locality");
  const std::uint64_t seed = run.seed;
  const std::uint64_t n = run.u64("nodes", 32768);
  const std::uint64_t trials = run.u64("trials", 3000);
  run.header("Figure 7: latency vs query locality (32K nodes)",
                "latency of level-k-local queries; Chord(Prox), "
                "Crescendo(No Prox), Crescendo(Prox)");

  Rng topo_rng(seed);
  const PhysicalNetwork phys(TransitStubConfig{}, topo_rng);
  Rng rng(seed + 1);
  const auto net = make_physical_population(n, phys, 32, rng);
  const HopCost cost = host_hop_cost(net, phys);
  const GroupedOverlay groups(net, 16);
  const ProximityConfig cfg;

  const auto crescendo = build_crescendo(net);
  const auto chord_prox = build_chord_prox(net, groups, cost, cfg, rng);
  const auto crescendo_prox = build_crescendo_prox(net, groups, cost, cfg, rng);
  const RingRouter crescendo_router(net, crescendo);
  const GroupRouter chord_prox_router(net, groups, chord_prox);
  const GroupRouter crescendo_prox_router(net, groups, crescendo_prox);

  TextTable table({"query locality", "Chord (Prox.) ms",
                   "Crescendo (No Prox.) ms", "Crescendo (Prox.) ms"});
  const char* labels[] = {"Top Level", "Level 1", "Level 2", "Level 3",
                          "Level 4"};
  for (int level = 0; level <= 4; ++level) {
    Summary ms_chord_prox;
    Summary ms_crescendo;
    Summary ms_crescendo_prox;
    Rng qrng(seed + 7 + level);
    for (std::uint64_t t = 0; t < trials; ++t) {
      const auto from = static_cast<std::uint32_t>(qrng.uniform(net.size()));
      // Pick content stored at a random node of the source's level-k
      // domain (level 0 = anywhere); the query key is that node's ID.
      const int domain = net.domains().domain_of(from, level);
      const RingView ring = net.domain_ring(domain);
      const std::uint32_t target = ring.at(qrng.uniform(ring.size()));
      const NodeId key = net.id(target);
      const Route a = chord_prox_router.route(from, key);
      const Route b = crescendo_router.route(from, key);
      const Route c = crescendo_prox_router.route(from, key);
      if (a.ok) ms_chord_prox.add(path_cost(a, cost));
      if (b.ok) ms_crescendo.add(path_cost(b, cost));
      if (c.ok) ms_crescendo_prox.add(path_cost(c, cost));
    }
    table.add_row({labels[level], TextTable::num(ms_chord_prox.mean(), 0),
                   TextTable::num(ms_crescendo.mean(), 0),
                   TextTable::num(ms_crescendo_prox.mean(), 0)});
  }
  table.print(std::cout);
  std::cout << "\n(paper: Crescendo latency collapses with locality, near 0 "
               "by level 3; Chord(Prox) barely improves)\n";
  run.report().set_series(bench::table_to_json(table));
  return run.finish();
}
