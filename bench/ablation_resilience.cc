// Ablation A6 (Section 2.3 leaf sets): routing availability under random
// node failures, as a function of the leaf-set depth, plus the effect of
// replicating content across the key's r live successors.
#include <iostream>

#include "bench/bench_util.h"
#include "canon/crescendo.h"
#include "common/table.h"
#include "overlay/population.h"
#include "overlay/resilient_routing.h"

using namespace canon;

int main(int argc, char** argv) {
  bench::BenchRun run(argc, argv, "ablation_resilience");
  const std::uint64_t seed = run.seed;
  const std::uint64_t n = run.u64("nodes", 4096);
  const std::uint64_t trials = run.u64("trials", 2000);
  run.header("Ablation A6: routing availability under failures",
                "fraction of lookups that reach the live responsible node; "
                "Crescendo, 3 levels, leaf-set fallback");

  PopulationSpec spec;
  spec.node_count = n;
  spec.hierarchy.levels = 3;
  spec.hierarchy.fanout = 10;
  Rng rng(seed);
  const auto net = make_population(spec, rng);
  const auto links = build_crescendo(net);

  TextTable table({"failed fraction", "leaf set=0", "leaf set=2",
                   "leaf set=4", "leaf set=8"});
  for (const int percent : {5, 10, 20, 30, 50}) {
    Rng frng(seed + percent);
    FailureSet failures(net.size());
    for (std::uint32_t i = 0; i < net.size(); ++i) {
      if (frng.uniform(100) < static_cast<std::uint64_t>(percent)) {
        failures.kill(i);
      }
    }
    std::vector<std::string> row = {std::to_string(percent) + "%"};
    for (const int leaf : {0, 2, 4, 8}) {
      const ResilientRingRouter router(net, links, failures, leaf);
      Rng qrng(seed + percent + leaf);
      std::uint64_t ok = 0;
      std::uint64_t total = 0;
      while (total < trials) {
        const auto from =
            static_cast<std::uint32_t>(qrng.uniform(net.size()));
        if (failures.dead(from)) continue;
        ++total;
        const NodeId key = net.space().wrap(qrng());
        ok += router.route(from, key).ok;
      }
      row.push_back(TextTable::num(
          static_cast<double>(ok) / static_cast<double>(total), 3));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\n(expected: bare fingers lose many lookups; a modest leaf "
               "set restores ~100% availability until failures dominate)\n";
  run.report().set_series(bench::table_to_json(table));
  return run.finish();
}
