// Ablation A6 (Sections 2.3, 3.x): routing availability under injected
// failures, for every family in the registry, plus the classic leaf-set
// sweep for Crescendo.
//
// Every family builds once, then routes the same pre-generated workload
// through its failure-aware router under FaultPlan::fail_fraction kill
// sets of {0, 10, 30, 50}% (nested in the fraction: every node dead at
// 10% is dead at 30%, so success rates are comparable down a column).
// Dead sources are skipped — availability, not success rate, prices them
// in. --drop-rate adds a per-forwarding message-drop probability on top.
//
// The 0% rows run the resilient engine with an empty plan, which is
// byte-identical to the plain batch engine — the zero-cost-when-healthy
// contract (docs/RESILIENCE.md).
#include <iostream>

#include "bench/bench_util.h"
#include "canon/crescendo.h"
#include "common/table.h"
#include "overlay/family_registry.h"
#include "overlay/population.h"
#include "overlay/query_engine.h"
#include "overlay/resilient_routing.h"

using namespace canon;

namespace {

constexpr int kFailPercents[] = {0, 10, 30, 50};

telemetry::JsonValue resilience_row(std::string_view family, int fail_pct,
                                    const ResilientStats& st) {
  telemetry::JsonValue row = telemetry::JsonValue::object();
  row.set("family", telemetry::JsonValue(family));
  row.set("fail_pct", telemetry::JsonValue(fail_pct));
  row.set("attempted", telemetry::JsonValue(st.attempted()));
  row.set("ok", telemetry::JsonValue(st.base.ok()));
  row.set("success", telemetry::JsonValue(st.success_rate()));
  row.set("availability", telemetry::JsonValue(st.availability()));
  row.set("retries", telemetry::JsonValue(st.retries));
  row.set("fallback_hops", telemetry::JsonValue(st.fallback_hops));
  row.set("skipped_dead_source",
          telemetry::JsonValue(st.skipped_dead_source));
  // mean() throws on an empty Summary; a cell where nothing succeeded
  // (deep kill fractions, leaf set=0) reports 0 hops.
  row.set("mean_hops", telemetry::JsonValue(
                           st.base.hops.count() ? st.base.hops.mean() : 0.0));
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchRun run(argc, argv, "ablation_resilience");
  const std::uint64_t seed = run.seed;
  const std::uint64_t n = run.u64("nodes", 4096);
  const std::uint64_t trials = run.u64("trials", 2000);
  // Out of the recorded params unless passed: a drop-free report stays
  // byte-identical to one from a build without the flag.
  const double drop_rate =
      run.present("drop-rate") ? run.f64("drop-rate", 0.0) : 0.0;
  run.header("Ablation A6: routing availability under failures",
                "fraction of lookups that reach the live responsible node; "
                "every family, fail-stop {0,10,30,50}% + leaf-set sweep");

  PopulationSpec spec;
  spec.node_count = n;
  spec.hierarchy.levels = 3;
  spec.hierarchy.fanout = 10;
  Rng rng(seed);
  const auto net = make_population(spec, rng);
  const QueryEngine engine(net);
  const auto queries = uniform_workload(net, trials, Rng(seed).fork(1));

  const auto plan_for = [&](int percent) {
    FaultPlan plan = FaultPlan::fail_fraction(
        net.size(), static_cast<double>(percent) / 100.0, seed);
    if (drop_rate > 0.0) plan.set_drop(drop_rate);
    return plan;
  };

  TextTable table({"family", "0% fail", "10% fail", "30% fail", "50% fail"});
  for (const registry::FamilyEntry& entry : registry::families()) {
    const LinkTable links = registry::build_family(net, entry.name, seed);
    const registry::FamilyRouter router = entry.make_router(net, links);
    std::vector<std::string> cells = {std::string(entry.name)};
    for (const int percent : kFailPercents) {
      const ResilientStats st =
          router.run_resilient(engine, queries, plan_for(percent));
      cells.push_back(TextTable::num(st.success_rate(), 3));
      run.report().add_row(resilience_row(entry.name, percent, st));
    }
    table.add_row(std::move(cells));
  }
  table.print(std::cout);

  // The classic leaf-set ablation: Crescendo's ring fallback depth is the
  // recovery knob the paper's Section 2.3 leans on.
  const auto crescendo = build_crescendo(net);
  TextTable leaf_table({"failed fraction", "leaf set=0", "leaf set=2",
                        "leaf set=4", "leaf set=8"});
  for (const int percent : kFailPercents) {
    const FaultPlan plan = plan_for(percent);
    std::vector<std::string> row = {std::to_string(percent) + "%"};
    for (const int leaf : {0, 2, 4, 8}) {
      const ResilientRingRouter router(net, crescendo, leaf);
      const ResilientStats st = engine.run_resilient(queries, router, plan);
      row.push_back(TextTable::num(st.success_rate(), 3));
      telemetry::JsonValue jrow =
          resilience_row("crescendo", percent, st);
      jrow.set("leaf_set", telemetry::JsonValue(
                               static_cast<std::int64_t>(leaf)));
      run.report().add_row(std::move(jrow));
    }
    leaf_table.add_row(std::move(row));
  }
  std::cout << "\n";
  leaf_table.print(std::cout);
  std::cout << "\n(expected: ring families hold ~1.0 through 30% via leaf "
               "sets; XOR/CAN families degrade gracefully; bare fingers "
               "(leaf set=0) lose lookups early)\n";
  return run.finish();
}
