#include "maintenance/dynamic_crescendo.h"

#include <algorithm>
#include <stdexcept>

#include "canon/crescendo.h"
#include "overlay/routing.h"
#include "telemetry/journal.h"
#include "telemetry/metrics.h"
#include "telemetry/scoped_timer.h"

namespace canon {

DynamicCrescendo::DynamicCrescendo(IdSpace space,
                                   std::vector<OverlayNode> initial)
    : space_(space), members_(std::move(initial)) {
  rebuild_network();
  if (net_->size() > 0) {
    std::vector<NodeId> all;
    all.reserve(net_->size());
    for (std::uint32_t i = 0; i < net_->size(); ++i) all.push_back(net_->id(i));
    recompute_links(all);
  }
}

void DynamicCrescendo::rebuild_network() {
  net_ = std::make_unique<OverlayNetwork>(space_, members_);
}

LinkTable DynamicCrescendo::link_table() const {
  LinkTable table(net_->size());
  for (const auto& [id, neighbors] : links_) {
    const std::uint32_t from = net_->index_of(id);
    for (const NodeId nb : neighbors) table.add(from, net_->index_of(nb));
  }
  // Capture inline neighbor IDs so routers built on maintenance snapshots
  // use the same flat CSR fast path as the static builders.
  table.finalize(net_->ids());
  return table;
}

std::vector<NodeId> DynamicCrescendo::affected_ids(std::uint32_t pivot) const {
  // Nodes whose links can involve `pivot`:
  //  * per level ring R of pivot's chain, per finger distance 2^k: members
  //    x with x.id + 2^k in (pred(pivot), pivot] now/then have pivot as the
  //    closest node at distance >= 2^k;
  //  * the predecessor of pivot in each ring (its merge limit depends on
  //    its successor distance, which pivot changes).
  std::vector<NodeId> out;
  const NodeId pid = net_->id(pivot);
  const auto& chain = net_->domains().domain_chain(pivot);
  for (const int d : chain) {
    const RingView ring = net_->domain_ring(d);
    if (ring.size() < 2) continue;
    // Predecessor of pivot in this ring.
    const std::uint32_t pred =
        ring.predecessor_or_self(space_.advance(pid, space_.mask()));
    out.push_back(net_->id(pred));
    const std::uint64_t gap = space_.ring_distance(net_->id(pred), pid);
    for (int k = 0; k < space_.bits(); ++k) {
      const std::uint64_t dist = std::uint64_t{1} << k;
      // x with x.id in (pid - 2^k - gap, pid - 2^k] (wrapping): for these,
      // x.id + 2^k lands in (pred, pivot].
      const NodeId lo = space_.advance(pid, space_.mask() + 1 - dist - gap +
                                                1);  // pid - dist - gap + 1
      const std::size_t count = ring.count_in(lo, gap);
      for (std::size_t i = 0; i < count; ++i) {
        out.push_back(net_->id(ring.select_in(lo, gap, i)));
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  out.erase(std::remove(out.begin(), out.end(), pid), out.end());
  return out;
}

void DynamicCrescendo::recompute_links(const std::vector<NodeId>& ids) {
  // Compute fresh links for the given nodes on the current network.
  LinkTable scratch(net_->size());
  for (const NodeId id : ids) {
    add_crescendo_links(*net_, net_->index_of(id), scratch);
  }
  scratch.finalize();
  for (const NodeId id : ids) {
    std::vector<NodeId> neighbors;
    for (const std::uint32_t v : scratch.neighbors(net_->index_of(id))) {
      neighbors.push_back(net_->id(v));
    }
    links_[id] = std::move(neighbors);
  }
}

int DynamicCrescendo::count_lookup_hops(const OverlayNode& node) const {
  // The joiner routes a query for its own ID through its bootstrap node;
  // greedy routing visits its predecessor at each level on the way. We
  // charge the full-route hop count on the pre-join structure.
  if (net_->size() == 0) return 0;
  const LinkTable table = link_table();
  const RingRouter router(*net_, table);
  // Bootstrap: the paper assumes a known node in the joiner's lowest-level
  // populated domain; use the domain-closest existing node.
  std::uint32_t bootstrap = 0;
  int best_lca = -1;
  for (std::uint32_t i = 0; i < net_->size(); ++i) {
    const int lca = net_->node(i).domain.lca_depth(node.domain);
    if (lca > best_lca) {
      best_lca = lca;
      bootstrap = i;
    }
  }
  return router.route(bootstrap, node.id).hops();
}

MaintenanceCost DynamicCrescendo::join(const OverlayNode& node) {
  if (links_.contains(node.id)) {
    throw std::invalid_argument("DynamicCrescendo::join: duplicate ID");
  }
  telemetry::ScopedTimer timer("maintenance.join_ms");
  if (telemetry::Counter* c = telemetry::maybe_counter("maintenance.joins")) {
    c->inc();
  }
  MaintenanceCost cost;
  cost.lookup_hops = count_lookup_hops(node);

  members_.push_back(node);
  rebuild_network();  // throws (and must restore) on duplicates
  const std::uint32_t pivot = net_->index_of(node.id);

  std::vector<NodeId> dirty = affected_ids(pivot);
  cost.nodes_updated = static_cast<int>(dirty.size());
  dirty.push_back(node.id);
  recompute_links(dirty);
  if (journal_) {
    journal_->join(node.id, node.domain.branches(), cost.lookup_hops,
                   members_.size());
    journal_->repair("join", node.id, cost.nodes_updated);
  }
  return cost;
}

MaintenanceCost DynamicCrescendo::leave(NodeId id) {
  const auto it =
      std::find_if(members_.begin(), members_.end(),
                   [&](const OverlayNode& n) { return n.id == id; });
  if (it == members_.end()) {
    throw std::invalid_argument("DynamicCrescendo::leave: unknown ID");
  }
  telemetry::ScopedTimer timer("maintenance.leave_ms");
  if (telemetry::Counter* c = telemetry::maybe_counter("maintenance.leaves")) {
    c->inc();
  }
  MaintenanceCost cost;
  // Affected set computed while the leaver is still present.
  const std::vector<NodeId> dirty = affected_ids(net_->index_of(id));
  cost.nodes_updated = static_cast<int>(dirty.size());

  members_.erase(it);
  links_.erase(id);
  rebuild_network();
  recompute_links(dirty);
  if (journal_) {
    journal_->leave(id, members_.size());
    journal_->repair("leave", id, cost.nodes_updated);
  }
  return cost;
}

std::vector<NodeId> DynamicCrescendo::leaf_set(NodeId id, int level,
                                               int count) const {
  const std::uint32_t node = net_->index_of(id);
  const int domain = net_->domains().domain_of(node, level);
  const RingView ring = net_->domain_ring(domain);
  std::vector<NodeId> out;
  const std::size_t pos = ring.successor_pos(space_.advance(id, 1));
  for (int i = 0; i < count && i < static_cast<int>(ring.size()) - 1; ++i) {
    out.push_back(net_->id(ring.at((pos + static_cast<std::size_t>(i)) %
                                   ring.size())));
  }
  return out;
}

}  // namespace canon
