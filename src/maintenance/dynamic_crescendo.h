// Dynamic maintenance for Crescendo (Section 2.3).
//
// Crescendo's link structure is a deterministic function of the member set
// (IDs + hierarchy positions), so maintenance reduces to (a) routing the
// joiner's ID to its predecessor at every level (the paper's insertion
// lookups), (b) computing the joiner's own links, and (c) notifying the
// O(log n) existing nodes whose links or merge limits the change affects.
// This class simulates that protocol: it maintains the link structure
// incrementally across joins and leaves, counts the messages each
// operation would send, and exposes per-level leaf sets (successor lists).
//
// The key invariant — verified by tests — is that the incrementally
// maintained structure is identical to a from-scratch construction over
// the surviving member set.
#ifndef CANON_MAINTENANCE_DYNAMIC_CRESCENDO_H
#define CANON_MAINTENANCE_DYNAMIC_CRESCENDO_H

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "overlay/link_table.h"
#include "overlay/overlay_network.h"

namespace canon::telemetry {
class EventJournal;  // telemetry/journal.h
}

namespace canon {

struct MaintenanceCost {
  int lookup_hops = 0;     ///< hops to locate per-level predecessors
  int nodes_updated = 0;   ///< existing nodes whose links were recomputed
  int messages() const { return lookup_hops + nodes_updated; }
};

class DynamicCrescendo {
 public:
  /// Starts from an initial population (may be empty).
  DynamicCrescendo(IdSpace space, std::vector<OverlayNode> initial = {});

  std::size_t size() const { return members_.size(); }

  /// Current network (rebuilt after each membership change).
  const OverlayNetwork& network() const { return *net_; }

  /// Current links, as ID -> sorted neighbor IDs.
  const std::map<NodeId, std::vector<NodeId>>& links_by_id() const {
    return links_; }

  /// Current links as a LinkTable over network() (for routing).
  LinkTable link_table() const;

  /// Adds a node. Throws on duplicate ID.
  MaintenanceCost join(const OverlayNode& node);

  /// Removes the node with this ID. Throws if absent.
  MaintenanceCost leave(NodeId id);

  /// The `count` successors of `id` within its level-`level` domain ring —
  /// the paper's per-level leaf set.
  std::vector<NodeId> leaf_set(NodeId id, int level, int count) const;

  /// Attaches an event journal (see telemetry/journal.h): each successful
  /// join() emits join + repair events, each leave() emits leave + repair,
  /// so a churn run becomes a replayable JSONL artifact. nullptr detaches.
  void set_journal(telemetry::EventJournal* journal) { journal_ = journal; }

 private:
  void rebuild_network();
  /// IDs whose links can change when `pivot` joins or leaves, computed on
  /// the network that contains `pivot`.
  std::vector<NodeId> affected_ids(std::uint32_t pivot) const;
  void recompute_links(const std::vector<NodeId>& ids);
  int count_lookup_hops(const OverlayNode& node) const;

  IdSpace space_;
  std::vector<OverlayNode> members_;
  std::unique_ptr<OverlayNetwork> net_;
  std::map<NodeId, std::vector<NodeId>> links_;
  telemetry::EventJournal* journal_ = nullptr;
};

}  // namespace canon

#endif  // CANON_MAINTENANCE_DYNAMIC_CRESCENDO_H
