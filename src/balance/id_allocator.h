// Partition balance (Section 4.3).
//
// Random ID selection leaves a Theta(log^2 n) ratio between the largest
// and smallest partition. The paper's fix ([11]): a joiner picks a random
// ID, finds the responsible node, then bisects the largest partition among
// the nodes sharing that node's B-bit ID prefix (B chosen so ~log n nodes
// share a prefix), driving the ratio to a constant (4 w.h.p.). The
// hierarchical variant additionally spreads a joiner away from its own
// domain-mates so that partitions are balanced at every level of the
// hierarchy, not just globally.
#ifndef CANON_BALANCE_ID_ALLOCATOR_H
#define CANON_BALANCE_ID_ALLOCATOR_H

#include <memory>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"

namespace canon {

/// Strategy for assigning an ID to a joining node. `existing` is the
/// ID-sorted list of current members; `domain_mates` (possibly empty) are
/// the IDs of current members of the joiner's lowest-level domain.
class IdAllocator {
 public:
  virtual ~IdAllocator() = default;
  virtual NodeId allocate(const std::vector<NodeId>& existing,
                          const std::vector<NodeId>& domain_mates,
                          const IdSpace& space, Rng& rng) = 0;
};

/// Baseline: uniformly random unique ID.
class RandomIdAllocator : public IdAllocator {
 public:
  NodeId allocate(const std::vector<NodeId>& existing,
                  const std::vector<NodeId>& domain_mates,
                  const IdSpace& space, Rng& rng) override;
};

/// The paper's prefix-bucket bisection scheme.
class BisectionIdAllocator : public IdAllocator {
 public:
  NodeId allocate(const std::vector<NodeId>& existing,
                  const std::vector<NodeId>& domain_mates,
                  const IdSpace& space, Rng& rng) override;
};

/// Hierarchical balance: the joiner bisects the largest gap between its
/// own domain-mates (staying "as far apart from the other nodes in the
/// domain as possible"), falling back to global bisection when the domain
/// is empty.
class HierarchicalIdAllocator : public IdAllocator {
 public:
  NodeId allocate(const std::vector<NodeId>& existing,
                  const std::vector<NodeId>& domain_mates,
                  const IdSpace& space, Rng& rng) override;
};

/// Ratio of the largest to the smallest partition over the ring of
/// `ids` (which need not be sorted). Requires >= 2 IDs.
double partition_ratio(std::vector<NodeId> ids, const IdSpace& space);

}  // namespace canon

#endif  // CANON_BALANCE_ID_ALLOCATOR_H
