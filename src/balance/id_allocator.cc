#include "balance/id_allocator.h"

#include <algorithm>
#include <stdexcept>

namespace canon {

namespace {

bool contains_sorted(const std::vector<NodeId>& sorted, NodeId id) {
  return std::binary_search(sorted.begin(), sorted.end(), id);
}

/// Partition of the member at `pos` in an ID-sorted ring: [id, next id).
std::uint64_t partition_size(const std::vector<NodeId>& sorted,
                             std::size_t pos, const IdSpace& space) {
  const NodeId id = sorted[pos];
  const NodeId next = sorted[(pos + 1) % sorted.size()];
  const std::uint64_t d = space.ring_distance(id, next);
  // A single node owns the whole ring.
  return d == 0 ? space.mask() + 1 : d;
}

NodeId random_unique(const std::vector<NodeId>& existing, const IdSpace& space,
                     Rng& rng) {
  for (int attempt = 0; attempt < 1 << 16; ++attempt) {
    const NodeId id = space.wrap(rng());
    if (!contains_sorted(existing, id)) return id;
  }
  throw std::runtime_error("IdAllocator: identifier space exhausted");
}

}  // namespace

NodeId RandomIdAllocator::allocate(const std::vector<NodeId>& existing,
                                   const std::vector<NodeId>& /*domain_mates*/,
                                   const IdSpace& space, Rng& rng) {
  return random_unique(existing, space, rng);
}

NodeId BisectionIdAllocator::allocate(const std::vector<NodeId>& existing,
                                      const std::vector<NodeId>& /*mates*/,
                                      const IdSpace& space, Rng& rng) {
  if (existing.size() < 2) return random_unique(existing, space, rng);
  // 1. Random probe -> responsible node.
  const NodeId probe = space.wrap(rng());
  const auto succ = std::lower_bound(existing.begin(), existing.end(), probe);
  const std::size_t responsible =
      (succ == existing.begin() ? existing.size() : static_cast<std::size_t>(
           succ - existing.begin())) - 1;
  // 2. B-bit prefix bucket around the responsible node: B chosen so an
  //    expected ~log2(n) nodes share a prefix.
  const std::size_t n = existing.size();
  const int logn = std::max(1, floor_log2(n));
  const int b = std::max(0, ceil_log2(n / static_cast<std::size_t>(logn)));
  const int shift = space.bits() - std::min(space.bits(), b);
  const NodeId prefix = existing[responsible] >> shift;
  // The bucket is a contiguous run in the sorted list.
  std::size_t lo = responsible;
  while (lo > 0 && (existing[lo - 1] >> shift) == prefix) --lo;
  std::size_t hi = responsible + 1;
  while (hi < n && (existing[hi] >> shift) == prefix) ++hi;
  // 3. Bisect the largest partition in the bucket.
  std::size_t best = lo;
  std::uint64_t best_size = 0;
  for (std::size_t i = lo; i < hi; ++i) {
    const std::uint64_t s = partition_size(existing, i, space);
    if (s > best_size) {
      best_size = s;
      best = i;
    }
  }
  if (best_size < 2) return random_unique(existing, space, rng);
  return space.advance(existing[best], best_size / 2);
}

NodeId HierarchicalIdAllocator::allocate(const std::vector<NodeId>& existing,
                                         const std::vector<NodeId>& mates,
                                         const IdSpace& space, Rng& rng) {
  if (mates.size() < 2) {
    return BisectionIdAllocator().allocate(existing, mates, space, rng);
  }
  // Section 4.3: the joiner chooses its top ~log log n bits so as to be as
  // far apart from its domain-mates as possible; the remaining bits stay
  // random. We bisect the largest gap between the mates' top-bit prefixes.
  // Enough prefix slots to spread the current mates with constant slack
  // (the paper's "top log log n bits" assumes small leaf domains; we let
  // the prefix width track the domain size).
  const int t = std::min(space.bits(), ceil_log2(mates.size()) + 3);
  const int shift = space.bits() - t;
  const IdSpace prefix_space(t);
  std::vector<NodeId> prefixes;
  prefixes.reserve(mates.size());
  for (const NodeId m : mates) prefixes.push_back(m >> shift);
  std::sort(prefixes.begin(), prefixes.end());
  prefixes.erase(std::unique(prefixes.begin(), prefixes.end()),
                 prefixes.end());
  std::size_t best = 0;
  std::uint64_t best_size = 0;
  for (std::size_t i = 0; i < prefixes.size(); ++i) {
    const std::uint64_t s = partition_size(prefixes, i, prefix_space);
    if (s > best_size) {
      best_size = s;
      best = i;
    }
  }
  const NodeId prefix = prefix_space.advance(prefixes[best], best_size / 2);
  // Within the chosen prefix block, keep the *global* partitioning even by
  // bisecting the largest partition owned inside the block (or taking the
  // block's midpoint when it is empty).
  const NodeId block_lo = prefix << shift;
  const std::uint64_t block_size = shift == 0 ? 1 : (NodeId{1} << shift);
  const auto begin =
      std::lower_bound(existing.begin(), existing.end(), block_lo);
  const auto end = std::lower_bound(existing.begin(), existing.end(),
                                    block_lo + block_size);
  if (begin == end) {
    const NodeId id = space.wrap(block_lo + block_size / 2);
    if (!contains_sorted(existing, id)) return id;
  } else {
    std::size_t best_pos = 0;
    std::uint64_t best_part = 0;
    for (auto it = begin; it != end; ++it) {
      const std::size_t pos =
          static_cast<std::size_t>(it - existing.begin());
      const std::uint64_t s = partition_size(existing, pos, space);
      if (s > best_part) {
        best_part = s;
        best_pos = pos;
      }
    }
    if (best_part >= 2) {
      return space.advance(existing[best_pos], best_part / 2);
    }
  }
  // Degenerate fallback: random ID within the block.
  for (int attempt = 0; attempt < 1 << 16; ++attempt) {
    const NodeId low = shift == 0 ? 0 : (rng() & ((NodeId{1} << shift) - 1));
    const NodeId id = (prefix << shift) | low;
    if (!contains_sorted(existing, id)) return id;
  }
  throw std::runtime_error("HierarchicalIdAllocator: space exhausted");
}

double partition_ratio(std::vector<NodeId> ids, const IdSpace& space) {
  if (ids.size() < 2) {
    throw std::invalid_argument("partition_ratio: need at least 2 IDs");
  }
  std::sort(ids.begin(), ids.end());
  std::uint64_t smallest = ~std::uint64_t{0};
  std::uint64_t largest = 0;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const std::uint64_t s = partition_size(ids, i, space);
    smallest = std::min(smallest, s);
    largest = std::max(largest, s);
  }
  return static_cast<double>(largest) / static_cast<double>(smallest);
}

}  // namespace canon
