#include "common/rng.h"

#include <stdexcept>
#include <unordered_set>

namespace canon {

std::uint64_t Rng::uniform(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("Rng::uniform: bound == 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % bound;
  }
}

std::uint64_t Rng::uniform_in(std::uint64_t lo, std::uint64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform_in: lo > hi");
  const std::uint64_t span = hi - lo + 1;
  if (span == 0) return (*this)();  // full 64-bit range
  return lo + uniform(span);
}

double Rng::uniform_double() {
  // 53 random mantissa bits.
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

Rng Rng::fork(std::uint64_t stream) const {
  SplitMix64 sm(state_[0] ^ (stream * 0x9e3779b97f4a7c15ULL));
  return Rng(sm.next());
}

std::vector<NodeId> sample_unique_ids(std::size_t count, const IdSpace& space,
                                      Rng& rng) {
  if (space.bits() < 63 &&
      static_cast<double>(count) > space.size() / 2.0) {
    throw std::invalid_argument(
        "sample_unique_ids: space too small for requested count");
  }
  std::vector<NodeId> ids;
  ids.reserve(count);
  // Membership tracking only decides which draws are accepted, so the two
  // branches below produce identical ID sequences for the same rng: both
  // accept the first occurrence of each drawn id, in draw order.
  if (space.bits() <= 32 &&
      space.size() / 8.0 <= static_cast<double>(count) * 32.0) {
    // Dense bitmap: when the sample is a large fraction of the id space
    // (mega-scale populations in 24-32 bit spaces), 2^bits bits cost less
    // than the hash set's ~32 bytes per entry and test-and-set is one
    // word access instead of a probe chain.
    std::vector<std::uint64_t> seen(
        (static_cast<std::size_t>(space.mask()) >> 6) + 1);
    while (ids.size() < count) {
      const NodeId id = space.wrap(rng());
      std::uint64_t& word = seen[static_cast<std::size_t>(id >> 6)];
      const std::uint64_t bit = std::uint64_t{1} << (id & 63);
      if (!(word & bit)) {
        word |= bit;
        ids.push_back(id);
      }
    }
    return ids;
  }
  std::unordered_set<NodeId> seen;
  seen.reserve(count + count / 4);
  while (ids.size() < count) {
    const NodeId id = space.wrap(rng());
    if (seen.insert(id).second) ids.push_back(id);
  }
  return ids;
}

}  // namespace canon
