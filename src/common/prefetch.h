// Portable software-prefetch shim for the memory-level-parallel hot paths
// (overlay/batch_probe.h). A prefetch is a pure scheduling hint: it never
// changes which bytes a kernel reads or what it computes, only *when* the
// cache line starts moving — the determinism contracts are untouched by
// construction.
#ifndef CANON_COMMON_PREFETCH_H
#define CANON_COMMON_PREFETCH_H

namespace canon {

/// Hints the prefetcher to pull the line holding `p` for a read. No-op on
/// toolchains without __builtin_prefetch.
inline void prefetch_ro(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
  (void)p;
#endif
}

}  // namespace canon

#endif  // CANON_COMMON_PREFETCH_H
