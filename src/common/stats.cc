#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace canon {

void Summary::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  sum_sq_ += x * x;
}

double Summary::mean() const {
  if (count_ == 0) throw std::logic_error("Summary::mean: empty");
  return sum_ / static_cast<double>(count_);
}

double Summary::min() const {
  if (count_ == 0) return std::numeric_limits<double>::quiet_NaN();
  return min_;
}

double Summary::max() const {
  if (count_ == 0) return std::numeric_limits<double>::quiet_NaN();
  return max_;
}

double Summary::variance() const {
  if (count_ < 2) return 0;
  const double n = static_cast<double>(count_);
  const double var = (sum_sq_ - sum_ * sum_ / n) / (n - 1);
  return var > 0 ? var : 0;
}

double Summary::stddev() const { return std::sqrt(variance()); }

void Summary::merge(const Summary& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
  sum_ += other.sum_;
  sum_sq_ += other.sum_sq_;
}

void Histogram::add(std::int64_t value, std::uint64_t weight) {
  buckets_[value] += weight;
  total_ += weight;
}

std::uint64_t Histogram::count_at(std::int64_t value) const {
  const auto it = buckets_.find(value);
  return it == buckets_.end() ? 0 : it->second;
}

double Histogram::pmf(std::int64_t value) const {
  if (total_ == 0) return 0;
  return static_cast<double>(count_at(value)) / static_cast<double>(total_);
}

std::int64_t Histogram::min() const {
  if (buckets_.empty()) throw std::logic_error("Histogram::min: empty");
  return buckets_.begin()->first;
}

std::int64_t Histogram::max() const {
  if (buckets_.empty()) throw std::logic_error("Histogram::max: empty");
  return buckets_.rbegin()->first;
}

double Histogram::mean() const {
  if (total_ == 0) throw std::logic_error("Histogram::mean: empty");
  double s = 0;
  for (const auto& [v, c] : buckets_) {
    s += static_cast<double>(v) * static_cast<double>(c);
  }
  return s / static_cast<double>(total_);
}

std::int64_t Histogram::quantile(double q) const {
  if (total_ == 0) throw std::logic_error("Histogram::quantile: empty");
  if (q < 0 || q > 1) throw std::invalid_argument("Histogram::quantile: q");
  const double target = q * static_cast<double>(total_);
  std::uint64_t acc = 0;
  for (const auto& [v, c] : buckets_) {
    acc += c;
    if (static_cast<double>(acc) >= target) return v;
  }
  return buckets_.rbegin()->first;
}

double Percentiles::quantile(double q) const {
  if (samples_.empty()) throw std::logic_error("Percentiles::quantile: empty");
  if (q < 0 || q > 1) throw std::invalid_argument("Percentiles::quantile: q");
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(samples_.size() - 1) + 0.5);
  return samples_[std::min(idx, samples_.size() - 1)];
}

double Percentiles::mean() const {
  if (samples_.empty()) throw std::logic_error("Percentiles::mean: empty");
  double s = 0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

}  // namespace canon
