#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <stdexcept>

namespace canon {

namespace {

std::atomic<int> g_requested_threads{0};  // 0 = hardware_concurrency

int effective_threads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

// The process-wide pool, created lazily and rebuilt when the requested
// thread count changes. Guarded by its own mutex: parallel_for is not
// expected to race with itself, but lazy creation must still be safe.
std::mutex g_pool_mutex;
ThreadPool* g_pool = nullptr;  // intentionally leaked (crash-only teardown)
int g_pool_workers = 0;

ThreadPool& default_pool(int workers) {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  if (g_pool == nullptr || g_pool_workers != workers) {
    delete g_pool;
    g_pool = new ThreadPool(workers);
    g_pool_workers = workers;
  }
  return *g_pool;
}

}  // namespace

int parallel_threads() {
  return effective_threads(g_requested_threads.load(std::memory_order_relaxed));
}

void set_parallel_threads(int n) {
  if (n < 0) throw std::invalid_argument("set_parallel_threads: n < 0");
  g_requested_threads.store(n, std::memory_order_relaxed);
}

ThreadPool::ThreadPool(int workers) {
  if (workers < 1) throw std::invalid_argument("ThreadPool: workers < 1");
  spawned_ = workers - 1;
  threads_.reserve(static_cast<std::size_t>(spawned_));
  for (int i = 0; i < spawned_; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_cv_.wait(lock, [&] { return stopping_ || generation_ != seen; });
    if (stopping_) return;
    seen = generation_;
    ++busy_;
    drain_job();  // temporarily releases mutex_ around each shard
    if (--busy_ == 0) done_cv_.notify_all();
  }
}

void ThreadPool::drain_job() {
  // Called with mutex_ held; leaves with mutex_ held.
  while (next_shard_ < shard_count_) {
    const std::size_t mine = next_shard_++;
    mutex_.unlock();
    try {
      (*shard_fn_)(mine);
      mutex_.lock();
    } catch (...) {
      mutex_.lock();
      if (!error_) error_ = std::current_exception();
      next_shard_ = shard_count_;  // abandon the remaining shards
    }
  }
}

void ThreadPool::for_shards(std::size_t shard_count,
                            const std::function<void(std::size_t)>& shard) {
  if (shard_count == 0) return;
  std::unique_lock<std::mutex> lock(mutex_);
  shard_count_ = shard_count;
  next_shard_ = 0;
  shard_fn_ = &shard;
  error_ = nullptr;
  ++generation_;
  work_cv_.notify_all();
  drain_job();  // the submitting thread works too
  done_cv_.wait(lock, [&] { return busy_ == 0; });
  shard_fn_ = nullptr;
  shard_count_ = 0;
  if (error_) {
    std::exception_ptr e = error_;
    error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(e);
  }
}

void parallel_for(std::size_t n, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  const int workers = parallel_threads();
  if (workers <= 1 || n <= grain) {
    fn(0, n);  // exact serial path
    return;
  }
  const std::size_t shards = (n + grain - 1) / grain;
  default_pool(workers).for_shards(shards, [&](std::size_t s) {
    const std::size_t begin = s * grain;
    fn(begin, std::min(begin + grain, n));
  });
}

}  // namespace canon
