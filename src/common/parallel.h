// Deterministic fork-join parallelism for the construction pipeline.
//
// parallel_for(n, grain, fn) splits the index range [0, n) into fixed-size
// shards of `grain` indices and runs fn(begin, end) once per shard on a
// process-wide worker pool. Shard boundaries depend only on n and grain —
// never on the thread count — so any data laid out per index (adjacency
// rows, matrix rows) is written identically at every thread count, and
// builders that derive per-index RNG streams (Rng::fork) produce
// byte-identical output serial or parallel.
//
// Thread count is a process-wide setting: set_parallel_threads(n), with
// n == 0 meaning std::thread::hardware_concurrency(). With an effective
// count of 1 (or n <= grain) parallel_for degrades to a single inline
// fn(0, n) call on the calling thread — the exact serial code path, with
// no pool, no atomics and no synchronization.
//
// Exceptions thrown by fn are captured on the worker, the remaining shards
// are abandoned, and the first captured exception is rethrown on the
// calling thread once every in-flight shard has settled. The pool itself
// is crash-only: it is created lazily on first parallel use and lives for
// the remainder of the process (rebuilt only when the thread count
// changes).
#ifndef CANON_COMMON_PARALLEL_H
#define CANON_COMMON_PARALLEL_H

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace canon {

/// Effective worker count used by parallel_for (>= 1).
int parallel_threads();

/// Sets the process-wide worker count; 0 restores the default
/// (hardware_concurrency). Not safe to call while a parallel_for is
/// running on another thread.
void set_parallel_threads(int n);

/// A dependency-free fixed-size worker pool executing one sharded job at a
/// time. parallel_for uses one process-wide instance; standalone pools are
/// only needed by tests.
class ThreadPool {
 public:
  /// Spawns `workers - 1` threads (the submitting thread participates in
  /// every job, so a pool of size 1 spawns nothing). Requires workers >= 1.
  explicit ThreadPool(int workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int workers() const { return spawned_ + 1; }

  /// Runs shard(i) for every i in [0, shard_count), distributing shards
  /// dynamically over the pool plus the calling thread. Returns when all
  /// shards have settled; rethrows the first captured exception. One job
  /// at a time: not reentrant, callers must not overlap invocations.
  void for_shards(std::size_t shard_count,
                  const std::function<void(std::size_t)>& shard);

 private:
  void worker_loop();
  /// Claims and runs shards until the job is drained; records the first
  /// exception and skips the remaining shards after a failure.
  void drain_job();

  std::mutex mutex_;
  std::condition_variable work_cv_;   // signals a new job generation
  std::condition_variable done_cv_;   // signals busy_ reaching 0
  std::vector<std::thread> threads_;
  int spawned_ = 0;

  // Current-job state, all guarded by mutex_ (shard claims included: the
  // per-claim critical section is trivial next to any real shard body).
  std::uint64_t generation_ = 0;
  std::size_t next_shard_ = 0;
  std::size_t shard_count_ = 0;
  const std::function<void(std::size_t)>* shard_fn_ = nullptr;
  int busy_ = 0;
  std::exception_ptr error_;
  bool stopping_ = false;
};

/// See the file comment. `grain` is the number of indices per shard
/// (minimum 1); pick it so one shard amortizes scheduling but still yields
/// many shards per worker for load balancing.
void parallel_for(std::size_t n, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& fn);

/// Default shard size for per-node link-construction loops: one node costs
/// on the order of a few µs (binary searches over the rings), so 64 nodes
/// amortize a shard claim while a 2^16-node build still yields ~1000
/// shards to balance.
inline constexpr std::size_t kNodeGrain = 64;

}  // namespace canon

#endif  // CANON_COMMON_PARALLEL_H
