// Identifier spaces and distance metrics shared by every DHT in the library.
//
// All DHTs in the paper operate on N-bit integer identifiers. Chord-family
// networks measure distance clockwise on the ring [0, 2^N); Kademlia/CAN
// measure distance with the XOR metric. Both metrics are provided here as
// small value types parameterized by the bit width.
#ifndef CANON_COMMON_IDS_H
#define CANON_COMMON_IDS_H

#include <cstdint>
#include <stdexcept>
#include <string>

namespace canon {

/// A node or key identifier. Only the low `bits` (<= 64) are meaningful.
using NodeId = std::uint64_t;

/// A node's position 0..n-1 in an ID-sorted population. Deliberately 32
/// bits: every CSR row, routing scratch buffer and query-engine shard
/// stores node *indices*, so the compact type halves the resident
/// link-table footprint and doubles the candidates per cache line on the
/// greedy scans. 64-bit NodeId is kept only for key-space arithmetic.
/// 2^32 - 1 nodes is far beyond the 10^6..10^7 populations the scale
/// benches target (see docs/PERFORMANCE.md "Scaling to millions of
/// nodes").
using NodeIndex = std::uint32_t;

/// Sentinel for "no node" in NodeIndex-valued hot paths (RingView::kNone
/// aliases it).
inline constexpr NodeIndex kInvalidNodeIndex = 0xFFFFFFFFu;

/// Number of bits in the default identifier space (matches the paper's
/// 32-bit experiments).
inline constexpr int kDefaultIdBits = 32;

/// Integer floor(log2(x)) for x >= 1.
constexpr int floor_log2(std::uint64_t x) {
  int r = 0;
  while (x >>= 1) ++r;
  return r;
}

/// Integer ceil(log2(x)) for x >= 1.
constexpr int ceil_log2(std::uint64_t x) {
  return x <= 1 ? 0 : floor_log2(x - 1) + 1;
}

/// An N-bit identifier space. Provides masking and the two distance
/// metrics used throughout the library.
class IdSpace {
 public:
  /// Constructs an identifier space of `bits` bits, 1 <= bits <= 64.
  explicit constexpr IdSpace(int bits = kDefaultIdBits) : bits_(bits) {
    if (bits < 1 || bits > 64) {
      throw std::invalid_argument("IdSpace: bits must be in [1, 64]");
    }
  }

  constexpr int bits() const { return bits_; }

  /// Bit mask covering the identifier space (2^bits - 1).
  constexpr NodeId mask() const {
    return bits_ == 64 ? ~NodeId{0} : (NodeId{1} << bits_) - 1;
  }

  /// Size of the space as a double (exact up to 2^53; used for ratios only).
  constexpr double size() const {
    return bits_ == 64 ? 18446744073709551616.0
                       : static_cast<double>(NodeId{1} << bits_);
  }

  /// Reduces an arbitrary integer into the space.
  constexpr NodeId wrap(NodeId x) const { return x & mask(); }

  /// Clockwise (ring) distance from `a` to `b`: the number of steps to walk
  /// clockwise (in increasing-ID direction, wrapping) from a to b.
  constexpr NodeId ring_distance(NodeId a, NodeId b) const {
    return (b - a) & mask();
  }

  /// XOR distance between `a` and `b` (symmetric).
  constexpr NodeId xor_distance(NodeId a, NodeId b) const {
    return (a ^ b) & mask();
  }

  /// The ID at clockwise offset `d` from `a`.
  constexpr NodeId advance(NodeId a, NodeId d) const { return (a + d) & mask(); }

  friend constexpr bool operator==(const IdSpace&, const IdSpace&) = default;

 private:
  int bits_;
};

/// Renders an ID as a fixed-width hex string (for logs and error messages).
std::string id_to_hex(NodeId id, int bits = kDefaultIdBits);

}  // namespace canon

#endif  // CANON_COMMON_IDS_H
