#include "common/table.h"

#include <cstdint>
#include <cstdio>
#include <stdexcept>

namespace canon {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("TextTable: empty header");
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("TextTable::add_row: cell count mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::num(std::uint64_t v) { return std::to_string(v); }
std::string TextTable::num(int v) { return std::to_string(v); }

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << row[c];
      for (std::size_t p = row[c].size(); p < width[c]; ++p) os << ' ';
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c == 0 ? 0 : 2);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

}  // namespace canon
