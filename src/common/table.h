// Minimal aligned text-table printer for the experiment harnesses, so every
// bench binary reports its figure/table in the same readable format.
#ifndef CANON_COMMON_TABLE_H
#define CANON_COMMON_TABLE_H

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace canon {

/// Collects rows of strings and prints them with aligned columns.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Adds a row; must have the same number of cells as the header.
  void add_row(std::vector<std::string> cells);

  /// Formats a double with `precision` digits after the point.
  static std::string num(double v, int precision = 2);
  static std::string num(std::uint64_t v);
  static std::string num(int v);

  void print(std::ostream& os) const;

  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace canon

#endif  // CANON_COMMON_TABLE_H
