// Streaming statistics accumulators used by the experiment harnesses.
#ifndef CANON_COMMON_STATS_H
#define CANON_COMMON_STATS_H

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

namespace canon {

/// Accumulates a stream of doubles; answers mean / min / max / variance.
class Summary {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  /// Throws std::logic_error when empty.
  double mean() const;
  /// Quiet NaN when empty (min/max of nothing is undefined, but callers
  /// often print them unconditionally; NaN propagates visibly instead of
  /// throwing mid-report).
  double min() const;
  double max() const;
  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double sum() const { return sum_; }

  /// Merges another summary into this one.
  void merge(const Summary& other);

 private:
  std::size_t count_ = 0;
  double sum_ = 0;
  double sum_sq_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Exact integer histogram (for degree distributions, hop counts, ...).
class Histogram {
 public:
  void add(std::int64_t value, std::uint64_t weight = 1);

  std::uint64_t total() const { return total_; }
  std::uint64_t count_at(std::int64_t value) const;
  /// Fraction of the mass at `value` (0 if empty).
  double pmf(std::int64_t value) const;
  std::int64_t min() const;
  std::int64_t max() const;
  double mean() const;
  /// Smallest value v such that at least `q` (in [0,1]) of the mass is <= v.
  std::int64_t quantile(double q) const;

  const std::map<std::int64_t, std::uint64_t>& buckets() const {
    return buckets_;
  }

 private:
  std::map<std::int64_t, std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
};

/// Collects raw samples; answers arbitrary percentiles exactly.
///
/// NOT thread-safe, including the const accessors: quantile() lazily sorts
/// the sample buffer through a `mutable` cache, so concurrent quantile()
/// calls (or quantile() racing add()) are data races. The whole library is
/// single-threaded by design; guard this class externally before sharing
/// it across threads.
class Percentiles {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }
  std::size_t count() const { return samples_.size(); }
  /// `q` in [0,1]; nearest-rank percentile. Requires at least one sample.
  /// Sorts the (mutable) sample cache on first call after an add().
  double quantile(double q) const;
  double mean() const;

 private:
  // Lazy sort cache; see class comment for the single-thread contract.
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

}  // namespace canon

#endif  // CANON_COMMON_STATS_H
