#include "common/ids.h"

#include <array>

namespace canon {

std::string id_to_hex(NodeId id, int bits) {
  static constexpr std::array<char, 16> digits = {'0', '1', '2', '3', '4', '5',
                                                  '6', '7', '8', '9', 'a', 'b',
                                                  'c', 'd', 'e', 'f'};
  const int nibbles = (bits + 3) / 4;
  std::string out(static_cast<std::size_t>(nibbles) + 2, '0');
  out[0] = '0';
  out[1] = 'x';
  for (int i = 0; i < nibbles; ++i) {
    out[static_cast<std::size_t>(2 + nibbles - 1 - i)] =
        digits[(id >> (4 * i)) & 0xF];
  }
  return out;
}

}  // namespace canon
