#include "common/zipf.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace canon {

ZipfSampler::ZipfSampler(std::size_t n, double theta) : theta_(theta) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n == 0");
  if (theta < 0) throw std::invalid_argument("ZipfSampler: theta < 0");
  cdf_.resize(n);
  double total = 0;
  for (std::size_t k = 0; k < n; ++k) {
    total += std::pow(static_cast<double>(k + 1), -theta);
    cdf_[k] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.uniform_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::pmf(std::size_t k) const {
  if (k >= cdf_.size()) throw std::out_of_range("ZipfSampler::pmf");
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

}  // namespace canon
