// Zipfian sampling.
//
// The paper's hierarchy experiments place nodes into branches with a
// Zipf(1.25) distribution ("the number of nodes in the k-th largest branch
// is proportional to 1/k^1.25"), and the caching ablation uses a Zipfian
// query popularity model. This sampler precomputes the CDF and draws in
// O(log k) by binary search.
#ifndef CANON_COMMON_ZIPF_H
#define CANON_COMMON_ZIPF_H

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace canon {

/// Samples ranks in [0, n) with P(rank = k) proportional to 1/(k+1)^theta.
class ZipfSampler {
 public:
  /// `n` must be >= 1; `theta` >= 0 (theta == 0 is uniform).
  ZipfSampler(std::size_t n, double theta);

  std::size_t n() const { return cdf_.size(); }
  double theta() const { return theta_; }

  /// Draws one rank.
  std::size_t sample(Rng& rng) const;

  /// Probability mass of rank k.
  double pmf(std::size_t k) const;

 private:
  double theta_;
  std::vector<double> cdf_;  // cdf_[k] = P(rank <= k)
};

}  // namespace canon

#endif  // CANON_COMMON_ZIPF_H
