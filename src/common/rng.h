// Deterministic pseudo-random number generation.
//
// Every experiment in the repository takes an explicit 64-bit seed so that
// benches and tests are reproducible run-to-run and machine-to-machine.
// We implement xoshiro256** (seeded via SplitMix64) rather than relying on
// std::mt19937_64 so the stream is fully specified by this repository.
#ifndef CANON_COMMON_RNG_H
#define CANON_COMMON_RNG_H

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/ids.h"

namespace canon {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality, 256-bit state. Satisfies
/// std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x6b61746f6e696321ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Requires bound > 0.
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform integer in [lo, hi]. Requires lo <= hi.
  std::uint64_t uniform_in(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [0, 1).
  double uniform_double();

  /// A derived generator with an independent stream; useful for giving each
  /// module of an experiment — or each node of a sharded parallel build —
  /// its own deterministic stream. Depends only on the current state and
  /// `stream`, never advances this generator, so forks taken in any order
  /// (or concurrently from a const base) are identical.
  Rng fork(std::uint64_t stream) const;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Draws `count` distinct IDs uniformly at random from `space`.
/// Throws std::invalid_argument if the space is too small to hold them.
std::vector<NodeId> sample_unique_ids(std::size_t count, const IdSpace& space,
                                      Rng& rng);

}  // namespace canon

#endif  // CANON_COMMON_RNG_H
