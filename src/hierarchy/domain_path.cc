#include "hierarchy/domain_path.h"

#include <algorithm>

namespace canon {

int DomainPath::lca_depth(const DomainPath& other) const {
  return view().lca_depth(other.view());
}

bool DomainPath::in_domain_of(const DomainPath& other, int level) const {
  return view().in_domain_of(other.view(), level);
}

namespace {

std::string branches_to_string(std::span<const std::uint16_t> branches) {
  std::string out;
  for (std::size_t i = 0; i < branches.size(); ++i) {
    if (i > 0) out += '.';
    out += std::to_string(branches[i]);
  }
  return out;
}

}  // namespace

std::string DomainPathView::to_string() const {
  return branches_to_string(branches_);
}

std::string DomainPath::to_string() const {
  return branches_to_string({branches_.data(), branches_.size()});
}

}  // namespace canon
