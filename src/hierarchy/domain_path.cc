#include "hierarchy/domain_path.h"

#include <algorithm>

namespace canon {

int DomainPath::lca_depth(const DomainPath& other) const {
  const int limit = std::min(depth(), other.depth());
  int d = 0;
  while (d < limit && branches_[static_cast<std::size_t>(d)] ==
                          other.branches_[static_cast<std::size_t>(d)]) {
    ++d;
  }
  return d;
}

bool DomainPath::in_domain_of(const DomainPath& other, int level) const {
  if (level < 0 || level > other.depth() || level > depth()) return false;
  return lca_depth(other) >= level;
}

std::string DomainPath::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < branches_.size(); ++i) {
    if (i > 0) out += '.';
    out += std::to_string(branches_[i]);
  }
  return out;
}

}  // namespace canon
