// Synthetic hierarchy generators matching the paper's evaluation setup
// (Section 5.1): a tree with fan-out `fanout` at every internal domain,
// `levels` levels in total (1 = flat), and nodes assigned to leaves either
// uniformly at random or with a per-domain Zipf(theta) branch popularity.
#ifndef CANON_HIERARCHY_GENERATORS_H
#define CANON_HIERARCHY_GENERATORS_H

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "hierarchy/domain_path.h"

namespace canon {

enum class Placement {
  kUniform,  ///< each branch chosen uniformly at random
  kZipf,     ///< k-th most popular branch gets mass proportional to 1/k^theta
};

struct HierarchySpec {
  int levels = 1;      ///< >= 1; 1 means a flat (single-domain) population
  int fanout = 10;     ///< branches per internal domain (>= 1)
  Placement placement = Placement::kZipf;
  double zipf_theta = 1.25;  ///< the paper's exponent
};

/// Draws a domain path (of length levels-1) for each of `count` nodes.
/// Branch popularity ranks are themselves shuffled per domain so that the
/// "largest branch" is not always branch 0.
std::vector<DomainPath> generate_hierarchy(std::size_t count,
                                           const HierarchySpec& spec,
                                           Rng& rng);

/// Flat-pool variant for mega-scale populations: consumes the same RNG
/// draw sequence as generate_hierarchy (the emitted branches are
/// byte-identical), but packs every path into one DomainPathPool instead
/// of one heap vector per node — the difference between ~70 and ~10 bytes
/// of path metadata per node at 10^6+ nodes.
DomainPathPool generate_hierarchy_pool(std::size_t count,
                                       const HierarchySpec& spec, Rng& rng);

}  // namespace canon

#endif  // CANON_HIERARCHY_GENERATORS_H
