// An index of the conceptual hierarchy over a concrete set of nodes.
//
// Canon's constructions repeatedly need "all nodes in the level-l domain of
// node m, sorted by identifier". DomainTree materializes every non-empty
// domain (every distinct path prefix) with its member list in ID-sorted
// order, plus the chain of domains each node belongs to, so constructions
// can run bottom-up in O(levels) lookups per node.
//
// Per-node chains live in one flat structure-of-arrays pool (an offsets
// array plus a packed chain array) instead of n separate vectors: at 10^6+
// nodes the pooled layout removes a 24-byte vector header and an allocator
// round-trip per node, and domain_chain() hands out spans into the pool.
#ifndef CANON_HIERARCHY_DOMAIN_TREE_H
#define CANON_HIERARCHY_DOMAIN_TREE_H

#include <cstdint>
#include <span>
#include <vector>

#include "common/ids.h"
#include "hierarchy/domain_path.h"

namespace canon {

/// One non-empty domain in the hierarchy.
struct Domain {
  int parent = -1;              ///< index of parent domain; -1 for root
  int depth = 0;                ///< 0 = root
  std::uint16_t branch = 0;     ///< branch index under the parent
  std::vector<int> children;    ///< indices of child domains
  std::vector<NodeIndex> members;  ///< node indices, ascending by node ID
};

/// Immutable index of all non-empty domains for a fixed node population.
///
/// Node `i` is described by `paths[i]`; `ids[i]` orders members within each
/// domain. Construction is O(n * depth) after an O(n log n) sort.
class DomainTree {
 public:
  /// `paths` and `ids` must be the same length; IDs need not be sorted but
  /// must be unique.
  DomainTree(const std::vector<DomainPath>& paths,
             const std::vector<NodeId>& ids);

  /// Same, over a flat path pool: node i's branches occupy
  /// path_branches[path_offsets[i] .. path_offsets[i + 1]). This is the
  /// allocation-free entry point OverlayNetwork's structure-of-arrays
  /// storage uses; `path_offsets` has ids.size() + 1 entries.
  DomainTree(std::span<const std::uint32_t> path_offsets,
             std::span<const std::uint16_t> path_branches,
             const std::vector<NodeId>& ids);

  std::size_t node_count() const { return chain_offsets_.size() - 1; }
  int domain_count() const { return static_cast<int>(domains_.size()); }
  const Domain& domain(int d) const {
    return domains_[static_cast<std::size_t>(d)];
  }
  int root() const { return 0; }

  /// Maximum leaf-domain depth over all nodes (0 for a flat population).
  int max_depth() const { return max_depth_; }

  /// The domain containing node `node` at hierarchy level `level`
  /// (0 = root). `level` must not exceed the node's own depth.
  int domain_of(NodeIndex node, int level) const;

  /// Depth of node `node`'s leaf domain.
  int node_depth(NodeIndex node) const {
    return static_cast<int>(chain_offsets_[node + 1] - chain_offsets_[node]) -
           1;
  }

  /// All domains of node `node`, root first (a span into the flat chain
  /// pool; valid while the tree is alive).
  std::span<const std::int32_t> domain_chain(NodeIndex node) const {
    return {chains_.data() + chain_offsets_[node],
            static_cast<std::size_t>(chain_offsets_[node + 1] -
                                     chain_offsets_[node])};
  }

  /// Allocated bytes of the tree: the domain array (including every
  /// domain's children/members backing stores) plus the flat chain pool.
  /// Feeds the memory accountant's "hierarchy.domain_tree" tag.
  std::uint64_t memory_bytes() const;

 private:
  void build(std::span<const std::uint32_t> path_offsets,
             std::span<const std::uint16_t> path_branches,
             const std::vector<NodeId>& ids);

  std::vector<Domain> domains_;
  std::vector<std::uint32_t> chain_offsets_;  // n + 1; chain pool offsets
  std::vector<std::int32_t> chains_;          // packed root..leaf chains
  int max_depth_ = 0;
};

}  // namespace canon

#endif  // CANON_HIERARCHY_DOMAIN_TREE_H
