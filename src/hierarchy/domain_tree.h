// An index of the conceptual hierarchy over a concrete set of nodes.
//
// Canon's constructions repeatedly need "all nodes in the level-l domain of
// node m, sorted by identifier". DomainTree materializes every non-empty
// domain (every distinct path prefix) with its member list in ID-sorted
// order, plus the chain of domains each node belongs to, so constructions
// can run bottom-up in O(levels) lookups per node.
#ifndef CANON_HIERARCHY_DOMAIN_TREE_H
#define CANON_HIERARCHY_DOMAIN_TREE_H

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "hierarchy/domain_path.h"

namespace canon {

/// One non-empty domain in the hierarchy.
struct Domain {
  int parent = -1;              ///< index of parent domain; -1 for root
  int depth = 0;                ///< 0 = root
  std::uint16_t branch = 0;     ///< branch index under the parent
  std::vector<int> children;    ///< indices of child domains
  std::vector<std::uint32_t> members;  ///< node indices, ascending by node ID
};

/// Immutable index of all non-empty domains for a fixed node population.
///
/// Node `i` is described by `paths[i]`; `ids[i]` orders members within each
/// domain. Construction is O(n * depth) after an O(n log n) sort.
class DomainTree {
 public:
  /// `paths` and `ids` must be the same length; IDs need not be sorted but
  /// must be unique.
  DomainTree(const std::vector<DomainPath>& paths,
             const std::vector<NodeId>& ids);

  std::size_t node_count() const { return node_domains_.size(); }
  int domain_count() const { return static_cast<int>(domains_.size()); }
  const Domain& domain(int d) const {
    return domains_[static_cast<std::size_t>(d)];
  }
  int root() const { return 0; }

  /// Maximum leaf-domain depth over all nodes (0 for a flat population).
  int max_depth() const { return max_depth_; }

  /// The domain containing node `node` at hierarchy level `level`
  /// (0 = root). `level` must not exceed the node's own depth.
  int domain_of(std::uint32_t node, int level) const;

  /// Depth of node `node`'s leaf domain.
  int node_depth(std::uint32_t node) const {
    return static_cast<int>(node_domains_[node].size()) - 1;
  }

  /// All domains of node `node`, root first.
  const std::vector<int>& domain_chain(std::uint32_t node) const {
    return node_domains_[node];
  }

 private:
  std::vector<Domain> domains_;
  std::vector<std::vector<int>> node_domains_;  // per node: root..leaf
  int max_depth_ = 0;
};

}  // namespace canon

#endif  // CANON_HIERARCHY_DOMAIN_TREE_H
