#include "hierarchy/generators.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <stdexcept>

#include "common/zipf.h"

namespace canon {

namespace {

/// Per-domain random permutation of branch ranks, so the Zipf "largest
/// branch" is positioned randomly rather than always at index 0. Keyed by
/// the path prefix so all nodes in one domain agree.
class BranchShuffler {
 public:
  BranchShuffler(int fanout, Rng& rng) : fanout_(fanout), rng_(rng) {}

  std::uint16_t map(const std::vector<std::uint16_t>& prefix,
                    std::size_t rank) {
    auto [it, inserted] = perms_.try_emplace(prefix);
    if (inserted) {
      it->second.resize(static_cast<std::size_t>(fanout_));
      std::iota(it->second.begin(), it->second.end(), 0);
      for (std::size_t i = it->second.size(); i > 1; --i) {
        std::swap(it->second[i - 1], it->second[rng_.uniform(i)]);
      }
    }
    return it->second[rank];
  }

 private:
  int fanout_;
  Rng& rng_;
  std::map<std::vector<std::uint16_t>, std::vector<std::uint16_t>> perms_;
};

}  // namespace

namespace {

/// Shared draw loop of the two public variants: emits each node's branch
/// vector through `emit(scratch)` (which may copy or move it). The RNG
/// draw sequence depends only on (count, spec), so both variants produce
/// byte-identical branches.
template <typename Emit>
void generate_hierarchy_impl(std::size_t count, const HierarchySpec& spec,
                             Rng& rng, Emit&& emit) {
  if (spec.levels < 1) throw std::invalid_argument("levels must be >= 1");
  if (spec.fanout < 1) throw std::invalid_argument("fanout must be >= 1");
  const int path_len = spec.levels - 1;

  ZipfSampler zipf(static_cast<std::size_t>(spec.fanout), spec.zipf_theta);
  BranchShuffler shuffler(spec.fanout, rng);

  std::vector<std::uint16_t> branches;
  for (std::size_t i = 0; i < count; ++i) {
    branches.clear();
    branches.reserve(static_cast<std::size_t>(path_len));
    for (int level = 0; level < path_len; ++level) {
      std::size_t rank;
      if (spec.placement == Placement::kUniform) {
        rank = rng.uniform(static_cast<std::uint64_t>(spec.fanout));
      } else {
        rank = zipf.sample(rng);
      }
      branches.push_back(shuffler.map(branches, rank));
    }
    emit(branches);
  }
}

}  // namespace

std::vector<DomainPath> generate_hierarchy(std::size_t count,
                                           const HierarchySpec& spec,
                                           Rng& rng) {
  std::vector<DomainPath> paths;
  paths.reserve(count);
  generate_hierarchy_impl(count, spec, rng,
                          [&](std::vector<std::uint16_t>& branches) {
                            paths.emplace_back(branches);
                          });
  return paths;
}

DomainPathPool generate_hierarchy_pool(std::size_t count,
                                       const HierarchySpec& spec, Rng& rng) {
  DomainPathPool pool;
  pool.offsets.reserve(count + 1);
  pool.offsets.push_back(0);
  pool.branches.reserve(count *
                        static_cast<std::size_t>(
                            spec.levels > 0 ? spec.levels - 1 : 0));
  generate_hierarchy_impl(
      count, spec, rng, [&](std::vector<std::uint16_t>& branches) {
        pool.branches.insert(pool.branches.end(), branches.begin(),
                             branches.end());
        pool.offsets.push_back(
            static_cast<std::uint32_t>(pool.branches.size()));
      });
  return pool;
}

}  // namespace canon
