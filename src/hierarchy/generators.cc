#include "hierarchy/generators.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <stdexcept>

#include "common/zipf.h"

namespace canon {

namespace {

/// Per-domain random permutation of branch ranks, so the Zipf "largest
/// branch" is positioned randomly rather than always at index 0. Keyed by
/// the path prefix so all nodes in one domain agree.
class BranchShuffler {
 public:
  BranchShuffler(int fanout, Rng& rng) : fanout_(fanout), rng_(rng) {}

  std::uint16_t map(const std::vector<std::uint16_t>& prefix,
                    std::size_t rank) {
    auto [it, inserted] = perms_.try_emplace(prefix);
    if (inserted) {
      it->second.resize(static_cast<std::size_t>(fanout_));
      std::iota(it->second.begin(), it->second.end(), 0);
      for (std::size_t i = it->second.size(); i > 1; --i) {
        std::swap(it->second[i - 1], it->second[rng_.uniform(i)]);
      }
    }
    return it->second[rank];
  }

 private:
  int fanout_;
  Rng& rng_;
  std::map<std::vector<std::uint16_t>, std::vector<std::uint16_t>> perms_;
};

}  // namespace

std::vector<DomainPath> generate_hierarchy(std::size_t count,
                                           const HierarchySpec& spec,
                                           Rng& rng) {
  if (spec.levels < 1) throw std::invalid_argument("levels must be >= 1");
  if (spec.fanout < 1) throw std::invalid_argument("fanout must be >= 1");
  const int path_len = spec.levels - 1;

  std::vector<DomainPath> paths;
  paths.reserve(count);
  if (path_len == 0) {
    paths.assign(count, DomainPath{});
    return paths;
  }

  ZipfSampler zipf(static_cast<std::size_t>(spec.fanout), spec.zipf_theta);
  BranchShuffler shuffler(spec.fanout, rng);

  for (std::size_t i = 0; i < count; ++i) {
    std::vector<std::uint16_t> branches;
    branches.reserve(static_cast<std::size_t>(path_len));
    for (int level = 0; level < path_len; ++level) {
      std::size_t rank;
      if (spec.placement == Placement::kUniform) {
        rank = rng.uniform(static_cast<std::uint64_t>(spec.fanout));
      } else {
        rank = zipf.sample(rng);
      }
      branches.push_back(shuffler.map(branches, rank));
    }
    paths.emplace_back(std::move(branches));
  }
  return paths;
}

}  // namespace canon
