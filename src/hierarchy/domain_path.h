// A node's position in the conceptual hierarchy (Section 2.1 of the paper).
//
// The paper's hierarchy is a tree of *domains*; system nodes hang off the
// leaves. No global knowledge of the tree is required: each node knows only
// its own path from the root, and any two nodes can compute their lowest
// common ancestor (LCA) from their paths — exactly the two capabilities the
// paper demands.
#ifndef CANON_HIERARCHY_DOMAIN_PATH_H
#define CANON_HIERARCHY_DOMAIN_PATH_H

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace canon {

/// The branch-index path from the root domain to a node's leaf domain.
/// An empty path means the node lives directly under the root (flat DHT).
/// A path of length d places the node in a hierarchy with d+1 levels
/// (level 0 = root, level d = leaf domain).
class DomainPath {
 public:
  DomainPath() = default;
  explicit DomainPath(std::vector<std::uint16_t> branches)
      : branches_(std::move(branches)) {}
  DomainPath(std::initializer_list<std::uint16_t> branches)
      : branches_(branches) {}

  /// Number of components; the node's leaf domain is at depth `depth()`.
  int depth() const { return static_cast<int>(branches_.size()); }

  /// Branch taken at level `level` (0-based, level < depth()).
  std::uint16_t branch(int level) const {
    return branches_[static_cast<std::size_t>(level)];
  }

  const std::vector<std::uint16_t>& branches() const { return branches_; }

  /// Depth of the lowest common domain of this path and `other`:
  /// 0 means only the root is shared.
  int lca_depth(const DomainPath& other) const;

  /// True if this node lies inside the domain identified by the first
  /// `level` components of `other` (level 0 = root = always true).
  bool in_domain_of(const DomainPath& other, int level) const;

  /// Dotted representation, e.g. "2.0.7" ("" for the empty path).
  std::string to_string() const;

  friend bool operator==(const DomainPath&, const DomainPath&) = default;

 private:
  std::vector<std::uint16_t> branches_;
};

}  // namespace canon

#endif  // CANON_HIERARCHY_DOMAIN_PATH_H
