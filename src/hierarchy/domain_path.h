// A node's position in the conceptual hierarchy (Section 2.1 of the paper).
//
// The paper's hierarchy is a tree of *domains*; system nodes hang off the
// leaves. No global knowledge of the tree is required: each node knows only
// its own path from the root, and any two nodes can compute their lowest
// common ancestor (LCA) from their paths — exactly the two capabilities the
// paper demands.
//
// Two representations share the same semantics:
//
// * DomainPath — the owning value type (one heap vector per path). Fine
//   for construction inputs, examples and tests.
// * DomainPathView — a non-owning span over branch components stored
//   elsewhere, e.g. in OverlayNetwork's flat structure-of-arrays path
//   pool. At 10^6+ nodes the pooled layout replaces n separate vector
//   allocations (24-byte headers plus allocator slop each) with two flat
//   arrays, which is what makes mega-scale populations fit in memory.
#ifndef CANON_HIERARCHY_DOMAIN_PATH_H
#define CANON_HIERARCHY_DOMAIN_PATH_H

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace canon {

/// Non-owning view of a branch-index path (see file comment). Cheap to
/// copy; the underlying storage must outlive the view.
class DomainPathView {
 public:
  DomainPathView() = default;
  explicit DomainPathView(std::span<const std::uint16_t> branches)
      : branches_(branches) {}

  int depth() const { return static_cast<int>(branches_.size()); }

  std::uint16_t branch(int level) const {
    return branches_[static_cast<std::size_t>(level)];
  }

  std::span<const std::uint16_t> branches() const { return branches_; }

  /// Depth of the lowest common domain of this path and `other`:
  /// 0 means only the root is shared.
  int lca_depth(DomainPathView other) const {
    const int limit = depth() < other.depth() ? depth() : other.depth();
    int d = 0;
    while (d < limit && branches_[static_cast<std::size_t>(d)] ==
                            other.branches_[static_cast<std::size_t>(d)]) {
      ++d;
    }
    return d;
  }

  /// True if this node lies inside the domain identified by the first
  /// `level` components of `other` (level 0 = root = always true).
  bool in_domain_of(DomainPathView other, int level) const {
    if (level < 0 || level > other.depth() || level > depth()) return false;
    return lca_depth(other) >= level;
  }

  /// Dotted representation, e.g. "2.0.7" ("" for the empty path).
  std::string to_string() const;

  friend bool operator==(DomainPathView a, DomainPathView b) {
    return a.branches_.size() == b.branches_.size() &&
           std::equal(a.branches_.begin(), a.branches_.end(),
                      b.branches_.begin());
  }

 private:
  std::span<const std::uint16_t> branches_;
};

/// The branch-index path from the root domain to a node's leaf domain.
/// An empty path means the node lives directly under the root (flat DHT).
/// A path of length d places the node in a hierarchy with d+1 levels
/// (level 0 = root, level d = leaf domain).
class DomainPath {
 public:
  DomainPath() = default;
  explicit DomainPath(std::vector<std::uint16_t> branches)
      : branches_(std::move(branches)) {}
  DomainPath(std::initializer_list<std::uint16_t> branches)
      : branches_(branches) {}
  /// Materializes an owning copy of a view.
  explicit DomainPath(DomainPathView view)
      : branches_(view.branches().begin(), view.branches().end()) {}

  /// Number of components; the node's leaf domain is at depth `depth()`.
  int depth() const { return static_cast<int>(branches_.size()); }

  /// Branch taken at level `level` (0-based, level < depth()).
  std::uint16_t branch(int level) const {
    return branches_[static_cast<std::size_t>(level)];
  }

  const std::vector<std::uint16_t>& branches() const { return branches_; }

  /// Non-owning view over this path (valid while *this is alive).
  DomainPathView view() const {
    return DomainPathView({branches_.data(), branches_.size()});
  }

  /// Depth of the lowest common domain of this path and `other`:
  /// 0 means only the root is shared.
  int lca_depth(const DomainPath& other) const;

  /// True if this node lies inside the domain identified by the first
  /// `level` components of `other` (level 0 = root = always true).
  bool in_domain_of(const DomainPath& other, int level) const;

  /// Dotted representation, e.g. "2.0.7" ("" for the empty path).
  std::string to_string() const;

  friend bool operator==(const DomainPath&, const DomainPath&) = default;

 private:
  std::vector<std::uint16_t> branches_;
};

/// A packed set of domain paths in structure-of-arrays form: path i's
/// branches occupy branches[offsets[i] .. offsets[i + 1]). The flat layout
/// is what OverlayNetwork stores per node and what the mega-scale
/// generators emit directly, skipping one heap allocation per node.
struct DomainPathPool {
  std::vector<std::uint32_t> offsets;   ///< node_count + 1 entries
  std::vector<std::uint16_t> branches;  ///< packed branch components

  std::size_t size() const { return offsets.empty() ? 0 : offsets.size() - 1; }

  DomainPathView view(std::size_t i) const {
    return DomainPathView({branches.data() + offsets[i],
                           static_cast<std::size_t>(offsets[i + 1] -
                                                    offsets[i])});
  }

  /// Appends one path (the streaming emit used by the generators).
  void push_back(DomainPathView path) {
    if (offsets.empty()) offsets.push_back(0);
    branches.insert(branches.end(), path.branches().begin(),
                    path.branches().end());
    offsets.push_back(static_cast<std::uint32_t>(branches.size()));
  }

  /// Allocated bytes of the pool's backing stores (capacity-based; feeds
  /// the memory accountant's "hierarchy.path_pool" tag).
  std::uint64_t memory_bytes() const {
    return static_cast<std::uint64_t>(offsets.capacity()) * sizeof(offsets[0]) +
           static_cast<std::uint64_t>(branches.capacity()) *
               sizeof(branches[0]);
  }
};

}  // namespace canon

#endif  // CANON_HIERARCHY_DOMAIN_PATH_H
