#include "hierarchy/domain_tree.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <type_traits>

namespace canon {

namespace {

/// Flattens owning paths into the (offsets, branches) pool shape used by
/// the structure-of-arrays constructor.
void flatten_paths(const std::vector<DomainPath>& paths,
                   std::vector<std::uint32_t>& offsets,
                   std::vector<std::uint16_t>& branches) {
  offsets.resize(paths.size() + 1);
  offsets[0] = 0;
  std::size_t total = 0;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    total += static_cast<std::size_t>(paths[i].depth());
    offsets[i + 1] = static_cast<std::uint32_t>(total);
  }
  branches.reserve(total);
  for (const DomainPath& p : paths) {
    branches.insert(branches.end(), p.branches().begin(), p.branches().end());
  }
}

}  // namespace

DomainTree::DomainTree(const std::vector<DomainPath>& paths,
                       const std::vector<NodeId>& ids) {
  if (paths.size() != ids.size()) {
    throw std::invalid_argument("DomainTree: paths/ids size mismatch");
  }
  std::vector<std::uint32_t> offsets;
  std::vector<std::uint16_t> branches;
  flatten_paths(paths, offsets, branches);
  build({offsets.data(), offsets.size()}, {branches.data(), branches.size()},
        ids);
}

DomainTree::DomainTree(std::span<const std::uint32_t> path_offsets,
                       std::span<const std::uint16_t> path_branches,
                       const std::vector<NodeId>& ids) {
  if (path_offsets.size() != ids.size() + 1) {
    throw std::invalid_argument("DomainTree: path_offsets/ids size mismatch");
  }
  build(path_offsets, path_branches, ids);
}

void DomainTree::build(std::span<const std::uint32_t> path_offsets,
                       std::span<const std::uint16_t> path_branches,
                       const std::vector<NodeId>& ids) {
  const std::size_t n = ids.size();
  const auto depth_of = [&](NodeIndex node) {
    return static_cast<int>(path_offsets[node + 1] - path_offsets[node]);
  };
  const auto branch_of = [&](NodeIndex node, int level) {
    return path_branches[path_offsets[node] + static_cast<std::uint32_t>(level)];
  };

  // Order node indices by ID once; every domain's member list is a
  // subsequence of this order and therefore also ID-sorted.
  std::vector<NodeIndex> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](NodeIndex a, NodeIndex b) { return ids[a] < ids[b]; });
  for (std::size_t i = 1; i < n; ++i) {
    if (ids[order[i - 1]] == ids[order[i]]) {
      throw std::invalid_argument("DomainTree: duplicate node IDs");
    }
  }

  // Flat chain pool: node i owns depth(i) + 1 slots (root..leaf); the
  // worklist below fills slot `depth` of every member when the domain at
  // that depth is processed.
  chain_offsets_.resize(n + 1);
  chain_offsets_[0] = 0;
  std::size_t total_chain = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total_chain += static_cast<std::size_t>(depth_of(
                       static_cast<NodeIndex>(i))) +
                   1;
    chain_offsets_[i + 1] = static_cast<std::uint32_t>(total_chain);
  }
  chains_.assign(total_chain, -1);

  domains_.push_back(Domain{});  // root
  domains_[0].members = order;

  // Recursively partition each domain's member list by the next path
  // component. Iterative worklist to avoid deep recursion.
  std::vector<int> work = {0};
  while (!work.empty()) {
    const int d = work.back();
    work.pop_back();
    const int depth = domains_[static_cast<std::size_t>(d)].depth;
    // Bucket members by their branch at this depth; members whose path ends
    // here stay attached to this domain as their leaf.
    std::vector<std::pair<std::uint16_t, NodeIndex>> buckets;
    for (const NodeIndex node :
         domains_[static_cast<std::size_t>(d)].members) {
      chains_[chain_offsets_[node] + static_cast<std::uint32_t>(depth)] = d;
      if (depth_of(node) > depth) {
        buckets.emplace_back(branch_of(node, depth), node);
      }
    }
    if (buckets.empty()) continue;
    std::stable_sort(buckets.begin(), buckets.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    std::size_t i = 0;
    while (i < buckets.size()) {
      const std::uint16_t branch = buckets[i].first;
      Domain child;
      child.parent = d;
      child.depth = depth + 1;
      child.branch = branch;
      while (i < buckets.size() && buckets[i].first == branch) {
        child.members.push_back(buckets[i].second);
        ++i;
      }
      const int child_index = static_cast<int>(domains_.size());
      domains_.push_back(std::move(child));
      domains_[static_cast<std::size_t>(d)].children.push_back(child_index);
      work.push_back(child_index);
      max_depth_ = std::max(max_depth_, depth + 1);
    }
  }
}

int DomainTree::domain_of(NodeIndex node, int level) const {
  const auto chain = domain_chain(node);
  if (level < 0 || level >= static_cast<int>(chain.size())) {
    throw std::out_of_range("DomainTree::domain_of: bad level");
  }
  return chain[static_cast<std::size_t>(level)];
}

std::uint64_t DomainTree::memory_bytes() const {
  auto vec_bytes = [](const auto& v) {
    return static_cast<std::uint64_t>(v.capacity()) *
           sizeof(typename std::decay_t<decltype(v)>::value_type);
  };
  std::uint64_t bytes =
      vec_bytes(domains_) + vec_bytes(chain_offsets_) + vec_bytes(chains_);
  for (const Domain& d : domains_) {
    bytes += vec_bytes(d.children) + vec_bytes(d.members);
  }
  return bytes;
}

}  // namespace canon
