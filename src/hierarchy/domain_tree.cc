#include "hierarchy/domain_tree.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace canon {

DomainTree::DomainTree(const std::vector<DomainPath>& paths,
                       const std::vector<NodeId>& ids) {
  if (paths.size() != ids.size()) {
    throw std::invalid_argument("DomainTree: paths/ids size mismatch");
  }
  const std::size_t n = paths.size();

  // Order node indices by ID once; every domain's member list is a
  // subsequence of this order and therefore also ID-sorted.
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) { return ids[a] < ids[b]; });
  for (std::size_t i = 1; i < n; ++i) {
    if (ids[order[i - 1]] == ids[order[i]]) {
      throw std::invalid_argument("DomainTree: duplicate node IDs");
    }
  }

  node_domains_.assign(n, {});
  domains_.push_back(Domain{});  // root
  domains_[0].members = order;

  // Recursively partition each domain's member list by the next path
  // component. Iterative worklist to avoid deep recursion.
  std::vector<int> work = {0};
  while (!work.empty()) {
    const int d = work.back();
    work.pop_back();
    const int depth = domains_[static_cast<std::size_t>(d)].depth;
    // Bucket members by their branch at this depth; members whose path ends
    // here stay attached to this domain as their leaf.
    std::vector<std::pair<std::uint16_t, std::uint32_t>> buckets;
    for (const std::uint32_t node :
         domains_[static_cast<std::size_t>(d)].members) {
      node_domains_[node].push_back(d);
      if (paths[node].depth() > depth) {
        buckets.emplace_back(paths[node].branch(depth), node);
      }
    }
    if (buckets.empty()) continue;
    std::stable_sort(buckets.begin(), buckets.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    std::size_t i = 0;
    while (i < buckets.size()) {
      const std::uint16_t branch = buckets[i].first;
      Domain child;
      child.parent = d;
      child.depth = depth + 1;
      child.branch = branch;
      while (i < buckets.size() && buckets[i].first == branch) {
        child.members.push_back(buckets[i].second);
        ++i;
      }
      const int child_index = static_cast<int>(domains_.size());
      domains_.push_back(std::move(child));
      domains_[static_cast<std::size_t>(d)].children.push_back(child_index);
      work.push_back(child_index);
      max_depth_ = std::max(max_depth_, depth + 1);
    }
  }
}

int DomainTree::domain_of(std::uint32_t node, int level) const {
  const auto& chain = node_domains_[node];
  if (level < 0 || level >= static_cast<int>(chain.size())) {
    throw std::out_of_range("DomainTree::domain_of: bad level");
  }
  return chain[static_cast<std::size_t>(level)];
}

}  // namespace canon
