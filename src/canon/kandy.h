// Kandy: the Canonical version of Kademlia (Section 3.3).
//
// Within its leaf domain a node keeps plain Kademlia bucket links. At each
// higher level it applies the Kademlia rule over the enclosing domain's
// members but throws away any candidate whose XOR distance exceeds the
// distance of the closest node in its own child domain (the shortest link
// it can possess at the lower level).
#ifndef CANON_CANON_KANDY_H
#define CANON_CANON_KANDY_H

#include "common/rng.h"
#include "dht/kademlia.h"
#include "overlay/link_table.h"
#include "overlay/overlay_network.h"

namespace canon {

/// Adds all of node `m`'s Kandy links.
void add_kandy_links(const OverlayNetwork& net, std::uint32_t m,
                     BucketChoice choice, MergePolicy policy, Rng& rng,
                     LinkTable& out);

/// Builds the complete Kandy network. Flat populations yield plain
/// Kademlia.
LinkTable build_kandy(const OverlayNetwork& net, BucketChoice choice,
                      Rng& rng, MergePolicy policy = MergePolicy::kFrugal);

}  // namespace canon

#endif  // CANON_CANON_KANDY_H
