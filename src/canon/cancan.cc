#include "canon/cancan.h"

#include <algorithm>
#include <unordered_set>

#include "common/parallel.h"
#include "dht/chord.h"
#include "dht/kademlia.h"
#include "telemetry/scoped_timer.h"

namespace canon {

CanCanNetwork::CanCanNetwork(const OverlayNetwork& net)
    : net_(&net), links_(net.size()) {
  telemetry::ScopedTimer timer("build.cancan_ms");
  const DomainTree& dom = net.domains();
  trees_.resize(static_cast<std::size_t>(dom.domain_count()));
  // Per-domain zone tries are independent; one shard per few domains.
  parallel_for(static_cast<std::size_t>(dom.domain_count()), 4,
               [&](std::size_t begin, std::size_t end) {
                 for (std::size_t d = begin; d < end; ++d) {
                   const auto& members =
                       dom.domain(static_cast<int>(d)).members;
                   trees_[d] = std::make_unique<ZoneTree>(
                       net, std::span<const std::uint32_t>{members.data(),
                                                           members.size()});
                 }
               });

  const auto add_node_links = [&](std::uint32_t m,
                                  std::vector<std::uint32_t>& face) {
    const auto& chain = dom.domain_chain(m);
    const int leaf = static_cast<int>(chain.size()) - 1;
    // Leaf domain: every CAN edge.
    for (const std::uint32_t v :
         tree(chain[static_cast<std::size_t>(leaf)]).neighbors(m)) {
      links_.add(m, v);
    }
    // Higher levels: a face edge survives the merge only if it is shorter
    // than the shortest lower-level link *for that face* (the per-bucket
    // reading of condition (b), as in Kandy). On the virtual hypercube a
    // face at prefix position `pos` spans 2^(N-1-pos); the lower zone
    // covers exactly the faces at positions < len(lower zone), so deeper
    // faces are always kept, and a shallower face survives only when the
    // lower domain has no member at all across it (its ID bucket is empty).
    const int bits = net.space().bits();
    for (int level = leaf - 1; level >= 0; --level) {
      const RingView child_ring =
          net.domain_ring(chain[static_cast<std::size_t>(level + 1)]);
      const int lower_len =
          tree(chain[static_cast<std::size_t>(level + 1)]).zone(m).len;
      const ZoneTree& t = tree(chain[static_cast<std::size_t>(level)]);
      const int len = t.zone(m).len;
      for (int pos = 0; pos < len; ++pos) {
        if (pos < lower_len) {
          // Keep only if the child domain is empty across this face.
          const std::uint64_t child_d = bucket_closest_distance(
              net, child_ring, net.id(m), bits - 1 - pos);
          if (child_d != kNoLimit) continue;
        }
        face.clear();
        t.face_neighbors(m, pos, face);
        for (const std::uint32_t v : face) links_.add(m, v);
      }
    }
  };
  parallel_for(net.size(), kNodeGrain, [&](std::size_t begin,
                                           std::size_t end) {
    std::vector<std::uint32_t> face;  // per-shard scratch
    for (std::size_t m = begin; m < end; ++m) {
      add_node_links(static_cast<std::uint32_t>(m), face);
    }
  });
  links_.finalize(net.ids());
}

std::uint32_t CanCanNetwork::responsible(NodeId key) const {
  return tree(net_->domains().root()).owner_of(key);
}

CanCanRouter::CanCanRouter(const CanCanNetwork& network)
    : network_(&network),
      max_hops_(8 * network.net().space().bits() + 16) {}

Route CanCanRouter::route(std::uint32_t from, NodeId key) const {
  const OverlayNetwork& net = network_->net();
  const IdSpace& space = net.space();
  const DomainTree& dom = net.domains();
  Route r;
  r.path.push_back(from);
  std::uint32_t current = from;
  // Stage = the domain whose partition the message is currently finishing,
  // starting at the source's leaf domain and lifting toward the root.
  int stage_domain = dom.domain_chain(from).back();
  // The XOR fallback can decrease the prefix match, so guard against
  // revisiting a node (which would mean a routing cycle).
  std::unordered_set<std::uint32_t> visited = {from};

  for (int step = 0; step < max_hops_; ++step) {
    const ZoneTree& t = network_->tree(stage_domain);
    if (t.owner_of(key) == current) {
      if (dom.domain(stage_domain).parent < 0) {
        r.ok = true;  // finished the root partition
        return r;
      }
      stage_domain = dom.domain(stage_domain).parent;
      continue;  // lift the stage without consuming a hop
    }
    const int cur_match = t.match_len(current, key);
    std::uint32_t best = current;
    int best_match = cur_match;
    for (const std::uint32_t nb : network_->links().neighbors(current)) {
      if (!t.contains(nb) || visited.contains(nb)) continue;
      const int m = t.match_len(nb, key);
      if (m > best_match) {
        best_match = m;
        best = nb;
      }
    }
    if (best == current) {
      // The key's stage zone may be a short empty-sibling block: accept a
      // neighbor that owns the key outright.
      for (const std::uint32_t nb : network_->links().neighbors(current)) {
        if (t.contains(nb) && !visited.contains(nb) &&
            t.owner_of(key) == nb) {
          best = nb;
          break;
        }
      }
    }
    if (best == current) {
      // Fallback for faces the merge filter removed: any stage-domain
      // neighbor strictly closer to the key in XOR distance.
      const std::uint64_t cur_d = space.xor_distance(net.id(current), key);
      std::uint64_t best_d = cur_d;
      for (const std::uint32_t nb : network_->links().neighbors(current)) {
        if (!t.contains(nb) || visited.contains(nb)) continue;
        const std::uint64_t d = space.xor_distance(net.id(nb), key);
        if (d < best_d) {
          best_d = d;
          best = nb;
        }
      }
      if (best != current) fallback_.fetch_add(1, std::memory_order_relaxed);
    }
    if (best == current) {
      stuck_.fetch_add(1, std::memory_order_relaxed);
      r.ok = false;
      return r;
    }
    current = best;
    visited.insert(current);
    r.path.push_back(current);
  }
  r.ok = false;
  return r;
}

namespace {

bool in_list(const std::vector<std::uint32_t>& list, std::uint32_t node) {
  return std::find(list.begin(), list.end(), node) != list.end();
}

struct NullRecorder {
  void operator()(std::uint32_t) const {}
};

struct PathRecorder {
  std::vector<std::uint32_t>* path;
  void operator()(std::uint32_t node) const { path->push_back(node); }
};

}  // namespace

ResilientCanCanRouter::ResilientCanCanRouter(const CanCanNetwork& network,
                                             int retry_budget)
    : network_(&network),
      retry_budget_(retry_budget),
      max_hops_(8 * network.net().space().bits() + 16) {
  if (retry_budget < 1) {
    throw std::invalid_argument("ResilientCanCanRouter: retry budget < 1");
  }
}

std::uint32_t ResilientCanCanRouter::live_stage_owner(
    const ZoneTree& t, int d, NodeId key, const FailureSet& dead) const {
  const std::uint32_t structural = t.owner_of(key);
  if (!dead.dead(structural)) return structural;
  const OverlayNetwork& net = network_->net();
  const IdSpace& space = net.space();
  std::uint32_t best = RingView::kNone;
  std::uint64_t best_d = 0;
  for (const std::uint32_t m : net.domains().domain(d).members) {
    if (dead.dead(m) || !t.contains(m)) continue;
    const std::uint64_t dist = space.xor_distance(net.id(m), key);
    if (best == RingView::kNone || dist < best_d) {
      best = m;
      best_d = dist;
    }
  }
  if (best == RingView::kNone) {
    throw std::logic_error("live_stage_owner: stage domain has no live node");
  }
  return best;
}

template <typename Recorder>
ResilientProbe ResilientCanCanRouter::core(std::uint32_t from, NodeId key,
                                           const FailureSet& dead,
                                           DropRoller& drops, Scratch& scratch,
                                           Recorder&& record) const {
  if (dead.dead(from)) {
    throw std::invalid_argument("ResilientCanCanRouter: source is dead");
  }
  const OverlayNetwork& net = network_->net();
  const IdSpace& space = net.space();
  const DomainTree& dom = net.domains();
  const bool faults = dead.any() || drops.active();
  std::uint32_t current = from;
  int hops = 0;
  int retries = 0;
  int fallback_hops = 0;
  int stage_domain = dom.domain_chain(from).back();
  const ZoneTree* t = &network_->tree(stage_domain);
  // The target of the current stage; under faults a dead owner's zone is
  // taken over by the live stage member XOR-closest to the key.
  std::uint32_t stage_target =
      faults ? live_stage_owner(*t, stage_domain, key, dead) : t->owner_of(key);
  scratch.visited.clear();
  scratch.visited.push_back(from);

  for (int step = 0; step < max_hops_; ++step) {
    if (stage_target == current) {
      if (dom.domain(stage_domain).parent < 0) {
        return {current, hops, true, retries, fallback_hops};  // root done
      }
      stage_domain = dom.domain(stage_domain).parent;
      t = &network_->tree(stage_domain);
      stage_target = faults ? live_stage_owner(*t, stage_domain, key, dead)
                            : t->owner_of(key);
      continue;  // lift the stage without consuming a hop
    }
    const int cur_match = t->match_len(current, key);
    scratch.banned.clear();
    int attempts = retry_budget_;
    for (;;) {  // per-hop retry ladder
      std::uint32_t best = current;
      int best_match = cur_match;
      for (const std::uint32_t nb : network_->links().neighbors(current)) {
        if (!t->contains(nb) || in_list(scratch.visited, nb)) continue;
        if (faults && (dead.dead(nb) || in_list(scratch.banned, nb))) {
          continue;
        }
        const int m = t->match_len(nb, key);
        if (m > best_match) {
          best_match = m;
          best = nb;
        }
      }
      if (best == current) {
        // The key's stage zone may be a short empty-sibling block: accept
        // a neighbor that is the stage target outright.
        for (const std::uint32_t nb : network_->links().neighbors(current)) {
          if (!t->contains(nb) || in_list(scratch.visited, nb) ||
              nb != stage_target) {
            continue;
          }
          if (faults && in_list(scratch.banned, nb)) continue;
          best = nb;
          break;
        }
      }
      bool via_fallback = false;
      if (best == current) {
        // Fallback for faces the merge filter removed (and, under faults,
        // for dead ones): any stage-domain neighbor strictly closer to the
        // key in XOR distance.
        std::uint64_t best_d = space.xor_distance(net.id(current), key);
        for (const std::uint32_t nb : network_->links().neighbors(current)) {
          if (!t->contains(nb) || in_list(scratch.visited, nb)) continue;
          if (faults && (dead.dead(nb) || in_list(scratch.banned, nb))) {
            continue;
          }
          const std::uint64_t d = space.xor_distance(net.id(nb), key);
          if (d < best_d) {
            best_d = d;
            best = nb;
          }
        }
        via_fallback = best != current;
      }
      if (best == current) {
        return {current, hops, false, retries, fallback_hops};  // stuck
      }
      if (drops.drop()) {
        scratch.banned.push_back(best);
        ++retries;
        if (--attempts <= 0) {
          return {current, hops, false, retries, fallback_hops};  // lost
        }
        continue;
      }
      if (via_fallback) ++fallback_hops;
      current = best;
      ++hops;
      record(current);
      scratch.visited.push_back(current);
      break;
    }
  }
  return {current, hops, false, retries, fallback_hops};
}

ResilientProbe ResilientCanCanRouter::route_into(std::uint32_t from,
                                                 NodeId key,
                                                 const FailureSet& dead,
                                                 DropRoller& drops,
                                                 Scratch& scratch,
                                                 Route& out) const {
  out.path.clear();
  out.path.push_back(from);
  out.ok = false;
  const ResilientProbe p =
      core(from, key, dead, drops, scratch, PathRecorder{&out.path});
  out.ok = p.ok;
  return p;
}

ResilientProbe ResilientCanCanRouter::probe(std::uint32_t from, NodeId key,
                                            const FailureSet& dead,
                                            DropRoller& drops,
                                            Scratch& scratch) const {
  return core(from, key, dead, drops, scratch, NullRecorder{});
}

}  // namespace canon
