#include "canon/cancan.h"

#include <algorithm>
#include <unordered_set>

#include "common/parallel.h"
#include "dht/chord.h"
#include "dht/kademlia.h"
#include "telemetry/scoped_timer.h"

namespace canon {

CanCanNetwork::CanCanNetwork(const OverlayNetwork& net)
    : net_(&net), links_(net.size()) {
  telemetry::ScopedTimer timer("build.cancan_ms");
  const DomainTree& dom = net.domains();
  trees_.resize(static_cast<std::size_t>(dom.domain_count()));
  // Per-domain zone tries are independent; one shard per few domains.
  parallel_for(static_cast<std::size_t>(dom.domain_count()), 4,
               [&](std::size_t begin, std::size_t end) {
                 for (std::size_t d = begin; d < end; ++d) {
                   const auto& members =
                       dom.domain(static_cast<int>(d)).members;
                   trees_[d] = std::make_unique<ZoneTree>(
                       net, std::span<const std::uint32_t>{members.data(),
                                                           members.size()});
                 }
               });

  const auto add_node_links = [&](std::uint32_t m,
                                  std::vector<std::uint32_t>& face) {
    const auto& chain = dom.domain_chain(m);
    const int leaf = static_cast<int>(chain.size()) - 1;
    // Leaf domain: every CAN edge.
    for (const std::uint32_t v :
         tree(chain[static_cast<std::size_t>(leaf)]).neighbors(m)) {
      links_.add(m, v);
    }
    // Higher levels: a face edge survives the merge only if it is shorter
    // than the shortest lower-level link *for that face* (the per-bucket
    // reading of condition (b), as in Kandy). On the virtual hypercube a
    // face at prefix position `pos` spans 2^(N-1-pos); the lower zone
    // covers exactly the faces at positions < len(lower zone), so deeper
    // faces are always kept, and a shallower face survives only when the
    // lower domain has no member at all across it (its ID bucket is empty).
    const int bits = net.space().bits();
    for (int level = leaf - 1; level >= 0; --level) {
      const RingView child_ring =
          net.domain_ring(chain[static_cast<std::size_t>(level + 1)]);
      const int lower_len =
          tree(chain[static_cast<std::size_t>(level + 1)]).zone(m).len;
      const ZoneTree& t = tree(chain[static_cast<std::size_t>(level)]);
      const int len = t.zone(m).len;
      for (int pos = 0; pos < len; ++pos) {
        if (pos < lower_len) {
          // Keep only if the child domain is empty across this face.
          const std::uint64_t child_d = bucket_closest_distance(
              net, child_ring, net.id(m), bits - 1 - pos);
          if (child_d != kNoLimit) continue;
        }
        face.clear();
        t.face_neighbors(m, pos, face);
        for (const std::uint32_t v : face) links_.add(m, v);
      }
    }
  };
  parallel_for(net.size(), kNodeGrain, [&](std::size_t begin,
                                           std::size_t end) {
    std::vector<std::uint32_t> face;  // per-shard scratch
    for (std::size_t m = begin; m < end; ++m) {
      add_node_links(static_cast<std::uint32_t>(m), face);
    }
  });
  links_.finalize(net.ids());
}

std::uint32_t CanCanNetwork::responsible(NodeId key) const {
  return tree(net_->domains().root()).owner_of(key);
}

CanCanRouter::CanCanRouter(const CanCanNetwork& network)
    : network_(&network),
      max_hops_(8 * network.net().space().bits() + 16) {}

Route CanCanRouter::route(std::uint32_t from, NodeId key) const {
  const OverlayNetwork& net = network_->net();
  const IdSpace& space = net.space();
  const DomainTree& dom = net.domains();
  Route r;
  r.path.push_back(from);
  std::uint32_t current = from;
  // Stage = the domain whose partition the message is currently finishing,
  // starting at the source's leaf domain and lifting toward the root.
  int stage_domain = dom.domain_chain(from).back();
  // The XOR fallback can decrease the prefix match, so guard against
  // revisiting a node (which would mean a routing cycle).
  std::unordered_set<std::uint32_t> visited = {from};

  for (int step = 0; step < max_hops_; ++step) {
    const ZoneTree& t = network_->tree(stage_domain);
    if (t.owner_of(key) == current) {
      if (dom.domain(stage_domain).parent < 0) {
        r.ok = true;  // finished the root partition
        return r;
      }
      stage_domain = dom.domain(stage_domain).parent;
      continue;  // lift the stage without consuming a hop
    }
    const int cur_match = t.match_len(current, key);
    std::uint32_t best = current;
    int best_match = cur_match;
    for (const std::uint32_t nb : network_->links().neighbors(current)) {
      if (!t.contains(nb) || visited.contains(nb)) continue;
      const int m = t.match_len(nb, key);
      if (m > best_match) {
        best_match = m;
        best = nb;
      }
    }
    if (best == current) {
      // The key's stage zone may be a short empty-sibling block: accept a
      // neighbor that owns the key outright.
      for (const std::uint32_t nb : network_->links().neighbors(current)) {
        if (t.contains(nb) && !visited.contains(nb) &&
            t.owner_of(key) == nb) {
          best = nb;
          break;
        }
      }
    }
    if (best == current) {
      // Fallback for faces the merge filter removed: any stage-domain
      // neighbor strictly closer to the key in XOR distance.
      const std::uint64_t cur_d = space.xor_distance(net.id(current), key);
      std::uint64_t best_d = cur_d;
      for (const std::uint32_t nb : network_->links().neighbors(current)) {
        if (!t.contains(nb) || visited.contains(nb)) continue;
        const std::uint64_t d = space.xor_distance(net.id(nb), key);
        if (d < best_d) {
          best_d = d;
          best = nb;
        }
      }
      if (best != current) fallback_.fetch_add(1, std::memory_order_relaxed);
    }
    if (best == current) {
      stuck_.fetch_add(1, std::memory_order_relaxed);
      r.ok = false;
      return r;
    }
    current = best;
    visited.insert(current);
    r.path.push_back(current);
  }
  r.ok = false;
  return r;
}

}  // namespace canon
