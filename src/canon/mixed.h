// Mixed per-level structures (Section 3.5): the routing structure need not
// be the same at every level. The paper's example links all nodes of a
// lowest-level domain (e.g. one LAN with cheap broadcast) into a complete
// graph, then merges the LANs with the usual Crescendo rule.
#ifndef CANON_CANON_MIXED_H
#define CANON_CANON_MIXED_H

#include "overlay/link_table.h"
#include "overlay/overlay_network.h"

namespace canon {

/// Crescendo with a complete graph inside every leaf domain. Greedy
/// clockwise routing crosses any leaf domain in one hop.
LinkTable build_clique_crescendo(const OverlayNetwork& net);

}  // namespace canon

#endif  // CANON_CANON_MIXED_H
