// Cacophony: the Canonical version of Symphony (Section 3.1).
//
// Within its leaf domain (n_l members) a node draws floor(log2 n_l)
// harmonic long links plus its successor. At each higher level with n_{l-1}
// members it draws floor(log2 n_{l-1}) links by the same process but keeps
// only those closer than its successor at the lower level, and always links
// its successor at the new level.
#ifndef CANON_CANON_CACOPHONY_H
#define CANON_CANON_CACOPHONY_H

#include "common/rng.h"
#include "overlay/link_table.h"
#include "overlay/overlay_network.h"

namespace canon {

/// Adds all of node `m`'s Cacophony links.
void add_cacophony_links(const OverlayNetwork& net, std::uint32_t m, Rng& rng,
                         LinkTable& out);

/// Builds the complete Cacophony network. With a flat population this is
/// exactly Symphony.
LinkTable build_cacophony(const OverlayNetwork& net, Rng& rng);

}  // namespace canon

#endif  // CANON_CANON_CACOPHONY_H
