#include "canon/kandy.h"

#include "common/parallel.h"
#include "telemetry/scoped_timer.h"

#include "dht/chord.h"

namespace canon {

void add_kandy_links(const OverlayNetwork& net, std::uint32_t m,
                     BucketChoice choice, MergePolicy policy, Rng& rng,
                     LinkTable& out) {
  const auto& chain = net.domains().domain_chain(m);
  const int leaf = static_cast<int>(chain.size()) - 1;
  add_kademlia_links(
      net, net.domain_ring(chain[static_cast<std::size_t>(leaf)]), m,
      /*child=*/nullptr, choice, policy, rng, out);
  for (int level = leaf - 1; level >= 0; --level) {
    const RingView child_ring =
        net.domain_ring(chain[static_cast<std::size_t>(level + 1)]);
    add_kademlia_links(
        net, net.domain_ring(chain[static_cast<std::size_t>(level)]), m,
        &child_ring, choice, policy, rng, out);
  }
}

LinkTable build_kandy(const OverlayNetwork& net, BucketChoice choice, Rng& rng,
                      MergePolicy policy) {
  telemetry::ScopedTimer timer("build.kandy_ms");
  LinkTable out(net.size());
  // Per-node forked RNG streams (see build_symphony): deterministic at any
  // thread count.
  const Rng base = rng;
  parallel_for(net.size(), kNodeGrain, [&](std::size_t begin, std::size_t end) {
    for (std::size_t m = begin; m < end; ++m) {
      Rng node_rng = base.fork(m);
      add_kandy_links(net, static_cast<std::uint32_t>(m), choice, policy,
                      node_rng, out);
    }
  });
  out.finalize(net.ids());
  return out;
}

}  // namespace canon
