// Proximity adaptation (Section 3.6): group-based link construction.
//
// Nodes sharing the top T ID bits form a group; edge-creation rules apply
// to group IDs, and the concrete endpoint inside a target group is chosen
// as the lowest-latency node among up to `sample_size` sampled members
// (the paper cites s = 32 as sufficient). Nodes within a group form a
// separate dense network (here: a clique), "necessary even otherwise for
// replication and fault tolerance". T is chosen so groups have a constant
// expected size.
//
// Chord (Prox.) applies the group construction globally; Crescendo (Prox.)
// builds normal Crescendo rings below the root and applies the group
// construction only to the top-level merge.
#ifndef CANON_CANON_PROXIMITY_H
#define CANON_CANON_PROXIMITY_H

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "overlay/fault_plan.h"
#include "overlay/link_table.h"
#include "overlay/metrics.h"
#include "overlay/overlay_network.h"
#include "overlay/routing.h"

namespace canon {

struct ProximityConfig {
  int target_group_size = 16;  ///< expected nodes per group
  int sample_size = 32;        ///< latency samples per group link (s)
};

/// The grouping of an overlay's nodes by their top-T ID bits.
class GroupedOverlay {
 public:
  GroupedOverlay(const OverlayNetwork& net, int target_group_size);

  struct Group {
    NodeId gid = 0;
    std::vector<std::uint32_t> members;  ///< ascending by ID
  };

  /// Number of bits in a group ID (T). 0 means a single group.
  int prefix_bits() const { return prefix_bits_; }
  NodeId gid_of_key(NodeId key) const { return key >> shift_; }
  NodeId gid_of_node(std::uint32_t node) const;

  const std::vector<Group>& groups() const { return groups_; }
  int group_index_of(std::uint32_t node) const;

  /// Index of the first non-empty group with gid >= g (wrapping).
  int group_successor(NodeId g) const;

  /// Index of the group responsible for `key`: the largest non-empty gid
  /// <= the key's gid (wrapping).
  int responsible_group(NodeId key) const;

  /// The node answering `key` under group-based responsibility: the
  /// ring-predecessor of the key among the responsible group's members.
  std::uint32_t responsible(NodeId key) const;

  /// Clockwise distance between group IDs (mod 2^T).
  std::uint64_t group_distance(NodeId from_gid, NodeId to_gid) const;

 private:
  const OverlayNetwork* net_;
  int prefix_bits_ = 0;
  int shift_ = 0;
  std::vector<Group> groups_;            // ascending by gid
  std::vector<int> group_index_;         // per node
};

/// Flat Chord with proximity adaptation: the Chord rule on group IDs, a
/// latency-sampled endpoint per group link, plus intra-group cliques.
LinkTable build_chord_prox(const OverlayNetwork& net,
                           const GroupedOverlay& groups,
                           const HopCost& latency, const ProximityConfig& cfg,
                           Rng& rng);

/// Crescendo with proximity adaptation at the top level only.
LinkTable build_crescendo_prox(const OverlayNetwork& net,
                               const GroupedOverlay& groups,
                               const HopCost& latency,
                               const ProximityConfig& cfg, Rng& rng);

/// Two-phase greedy router for group-based structures: greedy clockwise on
/// group IDs (never overshooting the responsible group), with ties broken
/// by clockwise ID progress, then a final intra-group hop.
class GroupRouter {
 public:
  GroupRouter(const OverlayNetwork& net, const GroupedOverlay& groups,
              const LinkTable& links);

  Route route(std::uint32_t from, NodeId key) const;

  /// Allocation-free variants (see the hot-path contract in
  /// overlay/routing.h): identical outcome, caller's buffer / no path.
  /// Like route(), these touch no telemetry and are safe to call
  /// concurrently on one const router.
  void route_into(std::uint32_t from, NodeId key, Route& out) const;
  RouteProbe probe(std::uint32_t from, NodeId key) const;

  /// Interleaved batch probe over the two-phase group walk; see
  /// RingRouter::probe_batch in overlay/routing.h for the contract
  /// (out[i] == probe(queries[i]) at every batch width).
  void probe_batch(std::span<const Query> queries,
                   std::span<RouteProbe> out) const;

 private:
  const OverlayNetwork* net_;
  const GroupedOverlay* groups_;
  const LinkTable* links_;
  int max_hops_;
};

/// Failure-aware two-phase group routing: the plain greedy walk on group
/// distance restricted to live neighbors, aiming at the live responsible
/// node (a dead responsible's duty falls to its closest live ring
/// predecessor — the intra-group clique is "necessary even otherwise for
/// replication and fault tolerance"). When no live neighbor makes plain
/// greedy progress the query sidesteps to the live neighbor strictly
/// closer to the target in (group distance, ID distance) lexicographic
/// order, which cannot cycle. Dropped forwarding attempts retry the next
/// candidate (the final clique hop retransmits to the same target), up to
/// `retry_budget` per hop. Hot-path contract of overlay/routing.h.
class ResilientGroupRouter {
 public:
  ResilientGroupRouter(const OverlayNetwork& net, const GroupedOverlay& groups,
                       const LinkTable& links,
                       int retry_budget = kRetryBudget);

  struct Scratch {
    std::vector<std::uint32_t> banned;  ///< candidates dropped this hop
  };

  /// ok iff the terminal is live_responsible(key). Throws
  /// std::invalid_argument on a dead source.
  ResilientProbe route_into(std::uint32_t from, NodeId key,
                            const FailureSet& dead, DropRoller& drops,
                            Scratch& scratch, Route& out) const;
  ResilientProbe probe(std::uint32_t from, NodeId key, const FailureSet& dead,
                       DropRoller& drops, Scratch& scratch) const;

  /// The group-responsible node for `key`, or — when it is dead — its
  /// closest live predecessor on the global ring.
  std::uint32_t live_responsible(NodeId key, const FailureSet& dead) const;

 private:
  template <typename Recorder>
  ResilientProbe core(std::uint32_t from, NodeId key, const FailureSet& dead,
                      DropRoller& drops, Scratch& scratch,
                      Recorder&& record) const;

  const OverlayNetwork* net_;
  const GroupedOverlay* groups_;
  const LinkTable* links_;
  int retry_budget_;
  int max_hops_;
};

}  // namespace canon

#endif  // CANON_CANON_PROXIMITY_H
