#include "canon/proximity.h"

#include "telemetry/scoped_timer.h"

#include <algorithm>
#include <stdexcept>

#include "common/parallel.h"
#include "common/prefetch.h"
#include "dht/chord.h"
#include "overlay/batch_probe.h"

namespace canon {

GroupedOverlay::GroupedOverlay(const OverlayNetwork& net,
                               int target_group_size)
    : net_(&net) {
  if (target_group_size < 1) {
    throw std::invalid_argument("GroupedOverlay: bad target group size");
  }
  const int bits = net.space().bits();
  const std::size_t n = net.size();
  if (n == 0) throw std::invalid_argument("GroupedOverlay: empty network");
  prefix_bits_ = std::min(
      bits, ceil_log2(std::max<std::uint64_t>(
                1, n / static_cast<std::size_t>(target_group_size))));
  shift_ = bits - prefix_bits_;

  // Nodes are ID-sorted, so groups are contiguous runs of equal gid.
  group_index_.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const NodeId g = net.id(i) >> shift_;
    if (groups_.empty() || groups_.back().gid != g) {
      groups_.push_back(Group{g, {}});
    }
    groups_.back().members.push_back(i);
    group_index_[i] = static_cast<int>(groups_.size()) - 1;
  }
}

NodeId GroupedOverlay::gid_of_node(std::uint32_t node) const {
  return net_->id(node) >> shift_;
}

int GroupedOverlay::group_index_of(std::uint32_t node) const {
  return group_index_[node];
}

int GroupedOverlay::group_successor(NodeId g) const {
  const auto it = std::lower_bound(
      groups_.begin(), groups_.end(), g,
      [](const Group& grp, NodeId key) { return grp.gid < key; });
  if (it == groups_.end()) return 0;
  return static_cast<int>(it - groups_.begin());
}

int GroupedOverlay::responsible_group(NodeId key) const {
  const NodeId g = gid_of_key(key);
  const int succ = group_successor(g);
  if (groups_[static_cast<std::size_t>(succ)].gid == g) return succ;
  return (succ + static_cast<int>(groups_.size()) - 1) %
         static_cast<int>(groups_.size());
}

std::uint32_t GroupedOverlay::responsible(NodeId key) const {
  const auto& members =
      groups_[static_cast<std::size_t>(responsible_group(key))].members;
  const RingView view(net_->space(), net_->ids(),
                      {members.data(), members.size()});
  return view.predecessor_or_self(key);
}

std::uint64_t GroupedOverlay::group_distance(NodeId from_gid,
                                             NodeId to_gid) const {
  if (prefix_bits_ == 0) return 0;
  const std::uint64_t mask = (prefix_bits_ == 64)
                                 ? ~std::uint64_t{0}
                                 : (std::uint64_t{1} << prefix_bits_) - 1;
  return (to_gid - from_gid) & mask;
}

namespace {

/// The latency-nearest of up to `samples` randomly sampled group members.
std::uint32_t pick_nearest(const std::vector<std::uint32_t>& members,
                           std::uint32_t from, const HopCost& latency,
                           int samples, Rng& rng) {
  std::uint32_t best = RingView::kNone;
  double best_ms = 0;
  const int budget = std::min<int>(samples, static_cast<int>(members.size()));
  for (int i = 0; i < budget; ++i) {
    const std::uint32_t cand =
        budget == static_cast<int>(members.size())
            ? members[static_cast<std::size_t>(i)]
            : members[rng.uniform(members.size())];
    if (cand == from) continue;
    const double ms = latency(from, cand);
    if (best == RingView::kNone || ms < best_ms) {
      best = cand;
      best_ms = ms;
    }
  }
  return best;
}

/// Adds node `m`'s group-level Chord links: for each 0 <= k < T, the first
/// non-empty group at group distance >= 2^k, capped (strictly) at
/// `group_limit` group-distance (condition (b) at group granularity; pass
/// kNoLimit for flat Chord Prox). Endpoints are latency-sampled.
void add_group_links(const OverlayNetwork& /*net*/,
                     const GroupedOverlay& groups,
                     std::uint32_t m, std::uint64_t group_limit,
                     const HopCost& latency, const ProximityConfig& cfg,
                     Rng& rng, LinkTable& out) {
  const int T = groups.prefix_bits();
  const NodeId g = groups.gid_of_node(m);
  for (int k = 0; k < T; ++k) {
    const std::uint64_t dist = std::uint64_t{1} << k;
    if (dist >= group_limit) break;
    const std::uint64_t mask = (std::uint64_t{1} << T) - 1;
    const int gi = groups.group_successor((g + dist) & mask);
    const auto& target = groups.groups()[static_cast<std::size_t>(gi)];
    const std::uint64_t covered = groups.group_distance(g, target.gid);
    if (covered == 0 || covered >= group_limit) continue;
    const std::uint32_t v =
        pick_nearest(target.members, m, latency, cfg.sample_size, rng);
    if (v != RingView::kNone) out.add(m, v);
  }
}

void add_clique_links(const GroupedOverlay& groups, std::uint32_t m,
                      LinkTable& out) {
  const auto& mine =
      groups.groups()[static_cast<std::size_t>(groups.group_index_of(m))];
  for (const std::uint32_t v : mine.members) out.add(m, v);
}

}  // namespace

LinkTable build_chord_prox(const OverlayNetwork& net,
                           const GroupedOverlay& groups,
                           const HopCost& latency, const ProximityConfig& cfg,
                           Rng& rng) {
  telemetry::ScopedTimer timer("build.chord_prox_ms");
  LinkTable out(net.size());
  // Per-node forked RNG streams (see build_symphony): deterministic at any
  // thread count.
  const Rng base = rng;
  parallel_for(net.size(), kNodeGrain, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const auto m = static_cast<std::uint32_t>(i);
      Rng node_rng = base.fork(m);
      add_clique_links(groups, m, out);
      add_group_links(net, groups, m, kNoLimit, latency, cfg, node_rng, out);
    }
  });
  out.finalize(net.ids());
  return out;
}

LinkTable build_crescendo_prox(const OverlayNetwork& net,
                               const GroupedOverlay& groups,
                               const HopCost& latency,
                               const ProximityConfig& cfg, Rng& rng) {
  telemetry::ScopedTimer timer("build.crescendo_prox_ms");
  LinkTable out(net.size());
  const DomainTree& dom = net.domains();
  const auto add_node_links = [&](std::uint32_t m, Rng& node_rng) {
    add_clique_links(groups, m, out);
    const auto& chain = dom.domain_chain(m);
    const int leaf = static_cast<int>(chain.size()) - 1;
    if (leaf == 0) {
      // Flat population: the whole structure is group-based.
      add_group_links(net, groups, m, kNoLimit, latency, cfg, node_rng, out);
      return;
    }
    // Normal Crescendo inside the leaf and at every merge except the root.
    add_chord_fingers(net,
                      net.domain_ring(chain[static_cast<std::size_t>(leaf)]),
                      m, kNoLimit, out);
    for (int level = leaf - 1; level >= 1; --level) {
      const std::uint64_t limit =
          net.domain_ring(chain[static_cast<std::size_t>(level + 1)])
              .successor_distance(net.id(m));
      add_chord_fingers(
          net, net.domain_ring(chain[static_cast<std::size_t>(level)]), m,
          limit, out);
    }
    // Top-level merge: group-based, with condition (b) at group
    // granularity — only groups strictly closer than the group of the
    // child-ring successor.
    const RingView child = net.domain_ring(chain[1]);
    const std::uint32_t succ = child.first_at_distance(net.id(m), 1);
    std::uint64_t group_limit = kNoLimit;
    if (succ != RingView::kNone && succ != m) {
      group_limit = groups.group_distance(groups.gid_of_node(m),
                                          groups.gid_of_node(succ));
      if (group_limit == 0) return;  // child successor shares the group
    }
    add_group_links(net, groups, m, group_limit, latency, cfg, node_rng, out);
  };
  // Per-node forked RNG streams (see build_symphony): deterministic at any
  // thread count.
  const Rng base = rng;
  parallel_for(net.size(), kNodeGrain, [&](std::size_t begin, std::size_t end) {
    for (std::size_t m = begin; m < end; ++m) {
      Rng node_rng = base.fork(m);
      add_node_links(static_cast<std::uint32_t>(m), node_rng);
    }
  });
  out.finalize(net.ids());
  return out;
}

GroupRouter::GroupRouter(const OverlayNetwork& net,
                         const GroupedOverlay& groups, const LinkTable& links)
    : net_(&net),
      groups_(&groups),
      links_(&links),
      max_hops_(4 * net.space().bits() + 16) {
  if (!links.finalized()) {
    throw std::invalid_argument("GroupRouter: link table not finalized");
  }
}

namespace {

// Recorder-policy core shared by route()/route_into()/probe(), mirroring
// the pattern in overlay/routing.cc: the recorder appends nodes entered
// after `from` (or is a no-op for probe), and the core itself touches no
// telemetry and no mutable state.
template <typename Recorder>
RouteProbe group_core(const OverlayNetwork& net, const GroupedOverlay& groups,
                      const LinkTable& links, int max_hops, std::uint32_t from,
                      NodeId key, Recorder&& record) {
  const IdSpace& space = net.space();
  const int target_group = groups.responsible_group(key);
  const NodeId target_gid =
      groups.groups()[static_cast<std::size_t>(target_group)].gid;
  const std::uint32_t target = groups.responsible(key);

  std::uint32_t current = from;
  int hops = 0;
  for (int step = 0; step < max_hops; ++step) {
    if (current == target) {
      return {current, hops, true};
    }
    const NodeId cur_gid = groups.gid_of_node(current);
    if (cur_gid == target_gid) {
      // Final intra-group hop over the dense group network.
      if (links.has_link(current, target)) {
        record(target);
        return {target, hops + 1, true};
      }
      return {current, hops, false};
    }
    // Greedy on group distance, never overshooting the target group; ties
    // broken by clockwise ID progress toward the key.
    const std::uint64_t remaining_groups =
        groups.group_distance(cur_gid, target_gid);
    const std::uint64_t remaining_ids =
        space.ring_distance(net.id(current), key);
    std::uint32_t best = current;
    std::uint64_t best_gcov = 0;
    std::uint64_t best_icov = 0;
    for (const std::uint32_t nb : links.neighbors(current)) {
      const std::uint64_t gcov =
          groups.group_distance(cur_gid, groups.gid_of_node(nb));
      if (gcov > remaining_groups) continue;  // overshoots the target group
      const std::uint64_t icov =
          space.ring_distance(net.id(current), net.id(nb));
      if (gcov == 0 && icov > remaining_ids) continue;
      if (gcov > best_gcov || (gcov == best_gcov && icov > best_icov)) {
        best_gcov = gcov;
        best_icov = icov;
        best = nb;
      }
    }
    if (best == current) {
      return {current, hops, false};
    }
    current = best;
    ++hops;
    record(current);
  }
  return {current, hops, false};
}

struct GroupNullRecorder {
  void operator()(std::uint32_t) const {}
};

struct GroupPathRecorder {
  std::vector<std::uint32_t>* path;
  void operator()(std::uint32_t node) const { path->push_back(node); }
};

// Lane state + hooks of the interleaved group batch kernel, driven by
// detail::interleaved_probe_batch (overlay/batch_probe.h). The lane
// carries cur_id forward from the winning scan entry (target_ids_[k] is
// ids[targets_[k]] by CSR construction) and derives every group ID from
// it via gid_of_key — gid_of_node(m) == gid_of_key(net.id(m)) — so the
// steady-state hop reads only the prefetched CSR row. The scan body is
// group_core's loop verbatim, with indices tracked instead of nodes.
struct GroupStepper {
  const OverlayNetwork& net;
  const GroupedOverlay& groups;
  const LinkTable& links;
  std::uint64_t mask;  // ID-space mask (ring_distance on raw NodeIds)
  int max_hops;

  struct Lane {
    std::size_t query_index;
    std::uint32_t current;
    NodeId cur_id;
    NodeId key;
    std::uint32_t target;
    NodeId target_gid;
    int hops;
    LinkOffset row_begin;
    LinkOffset row_end;
    bool need_id;
  };

  void begin(Lane& l, const Query& q, std::size_t query_index) const {
    l.query_index = query_index;
    l.current = q.from;
    l.key = q.key;
    l.hops = 0;
    l.need_id = true;
    // The same up-front responsibility lookups group_core performs once
    // per query.
    const int target_group = groups.responsible_group(q.key);
    l.target_gid = groups.groups()[static_cast<std::size_t>(target_group)].gid;
    l.target = groups.responsible(q.key);
    prefetch_ro(net.ids().data() + q.from);
    links.prefetch_row_bounds(q.from);
  }

  void fetch(Lane& l) const {
    if (l.need_id) {
      l.cur_id = net.id(l.current);
      l.need_id = false;
    }
    const auto [b, e] = links.row_bounds(l.current);
    l.row_begin = b;
    l.row_end = e;
    links.prefetch_row_payload(b, e);
  }

  bool advance(Lane& l, RouteProbe& out) const {
    if (l.hops >= max_hops) {  // group_core's hop-guard exhaustion
      out = {l.current, l.hops, false};
      return true;
    }
    if (l.current == l.target) {
      out = {l.current, l.hops, true};
      return true;
    }
    const NodeId cur_gid = groups.gid_of_key(l.cur_id);
    if (cur_gid == l.target_gid) {
      // Final intra-group hop over the dense group network.
      if (links.has_link(l.current, l.target)) {
        out = {l.target, l.hops + 1, true};
      } else {
        out = {l.current, l.hops, false};
      }
      return true;
    }
    const std::uint64_t remaining_groups =
        groups.group_distance(cur_gid, l.target_gid);
    const std::uint64_t remaining_ids = (l.key - l.cur_id) & mask;
    const NodeId* ids = links.target_ids_data() + l.row_begin;
    const std::size_t count = l.row_end - l.row_begin;
    constexpr std::size_t kNone = static_cast<std::size_t>(-1);
    std::size_t best_j = kNone;
    std::uint64_t best_gcov = 0;
    std::uint64_t best_icov = 0;
    for (std::size_t j = 0; j < count; ++j) {
      const std::uint64_t gcov =
          groups.group_distance(cur_gid, groups.gid_of_key(ids[j]));
      if (gcov > remaining_groups) continue;  // overshoots the target group
      const std::uint64_t icov = (ids[j] - l.cur_id) & mask;
      if (gcov == 0 && icov > remaining_ids) continue;
      if (gcov > best_gcov || (gcov == best_gcov && icov > best_icov)) {
        best_gcov = gcov;
        best_icov = icov;
        best_j = j;
      }
    }
    if (best_j == kNone) {
      out = {l.current, l.hops, false};
      return true;
    }
    l.current = links.targets_data()[l.row_begin + best_j];
    l.cur_id = ids[best_j];
    ++l.hops;
    links.prefetch_row_bounds(l.current);
    return false;
  }
};

}  // namespace

void GroupRouter::route_into(std::uint32_t from, NodeId key,
                             Route& out) const {
  out.path.clear();
  out.path.push_back(from);
  out.ok = group_core(*net_, *groups_, *links_, max_hops_, from, key,
                      GroupPathRecorder{&out.path})
               .ok;
}

RouteProbe GroupRouter::probe(std::uint32_t from, NodeId key) const {
  return group_core(*net_, *groups_, *links_, max_hops_, from, key,
                    GroupNullRecorder{});
}

void GroupRouter::probe_batch(std::span<const Query> queries,
                              std::span<RouteProbe> out) const {
  if (queries.size() != out.size()) {
    throw std::invalid_argument("probe_batch: out.size() != queries.size()");
  }
  const int width = probe_batch_width();
  if (width <= 0 || !links_->has_inline_ids()) {
    for (std::size_t i = 0; i < queries.size(); ++i) {
      out[i] = probe(queries[i].from, queries[i].key);
    }
    return;
  }
  detail::interleaved_probe_batch(
      queries, out, width,
      GroupStepper{*net_, *groups_, *links_, net_->space().mask(), max_hops_});
}

Route GroupRouter::route(std::uint32_t from, NodeId key) const {
  Route r;
  route_into(from, key, r);
  return r;
}

namespace {

bool in_list(const std::vector<std::uint32_t>& list, std::uint32_t node) {
  return std::find(list.begin(), list.end(), node) != list.end();
}

}  // namespace

ResilientGroupRouter::ResilientGroupRouter(const OverlayNetwork& net,
                                           const GroupedOverlay& groups,
                                           const LinkTable& links,
                                           int retry_budget)
    : net_(&net),
      groups_(&groups),
      links_(&links),
      retry_budget_(retry_budget),
      max_hops_(4 * net.space().bits() + 16) {
  if (!links.finalized()) {
    throw std::invalid_argument("ResilientGroupRouter: links not finalized");
  }
  if (retry_budget < 1) {
    throw std::invalid_argument("ResilientGroupRouter: retry budget < 1");
  }
}

std::uint32_t ResilientGroupRouter::live_responsible(
    NodeId key, const FailureSet& dead) const {
  const std::uint32_t structural = groups_->responsible(key);
  if (!dead.dead(structural)) return structural;
  // Node indices are ring positions (ascending-ID order): walk
  // predecessors from the structural responsible until a live one.
  const std::uint32_t n = static_cast<std::uint32_t>(net_->size());
  for (std::uint32_t i = 1; i < n; ++i) {
    const std::uint32_t candidate = (structural + n - i) % n;
    if (!dead.dead(candidate)) return candidate;
  }
  throw std::logic_error("live_responsible: everyone is dead");
}

template <typename Recorder>
ResilientProbe ResilientGroupRouter::core(std::uint32_t from, NodeId key,
                                          const FailureSet& dead,
                                          DropRoller& drops, Scratch& scratch,
                                          Recorder&& record) const {
  if (dead.dead(from)) {
    throw std::invalid_argument("ResilientGroupRouter: source is dead");
  }
  const IdSpace& space = net_->space();
  const bool faults = dead.any() || drops.active();
  const std::uint32_t target =
      faults ? live_responsible(key, dead) : groups_->responsible(key);
  const NodeId target_gid = groups_->gid_of_node(target);

  std::uint32_t current = from;
  int hops = 0;
  int retries = 0;
  int fallback_hops = 0;
  for (int step = 0; step < max_hops_; ++step) {
    if (current == target) return {current, hops, true, retries, fallback_hops};
    const NodeId cur_gid = groups_->gid_of_node(current);
    const std::uint64_t remaining_groups =
        groups_->group_distance(cur_gid, target_gid);
    const std::uint64_t remaining_ids =
        space.ring_distance(net_->id(current), key);
    scratch.banned.clear();
    int attempts = retry_budget_;
    for (;;) {  // per-hop retry ladder
      std::uint32_t best = current;
      bool final_hop = false;
      bool via_fallback = false;
      if (cur_gid == target_gid) {
        // Final intra-group hop over the dense group network.
        if (!links_->has_link(current, target)) {
          return {current, hops, false, retries, fallback_hops};
        }
        best = target;
        final_hop = true;
      } else {
        // Greedy on group distance, never overshooting the target group;
        // ties broken by clockwise ID progress toward the key.
        std::uint64_t best_gcov = 0;
        std::uint64_t best_icov = 0;
        for (const std::uint32_t nb : links_->neighbors(current)) {
          const std::uint64_t gcov =
              groups_->group_distance(cur_gid, groups_->gid_of_node(nb));
          if (gcov > remaining_groups) continue;  // overshoots
          const std::uint64_t icov =
              space.ring_distance(net_->id(current), net_->id(nb));
          if (gcov == 0 && icov > remaining_ids) continue;
          if (faults && (dead.dead(nb) || in_list(scratch.banned, nb))) {
            continue;
          }
          if (gcov > best_gcov || (gcov == best_gcov && icov > best_icov)) {
            best_gcov = gcov;
            best_icov = icov;
            best = nb;
          }
        }
        if (best == current && faults) {
          // Sidestep: the live neighbor strictly closer to the target in
          // (group distance, ID distance) lexicographic order — strictly
          // decreasing, so fallback chains cannot cycle.
          std::uint64_t best_gd = remaining_groups;
          std::uint64_t best_idd = remaining_ids;
          for (const std::uint32_t nb : links_->neighbors(current)) {
            if (dead.dead(nb) || in_list(scratch.banned, nb)) continue;
            const std::uint64_t gd =
                groups_->group_distance(groups_->gid_of_node(nb), target_gid);
            const std::uint64_t idd =
                space.ring_distance(net_->id(nb), key);
            if (gd < best_gd || (gd == best_gd && idd < best_idd)) {
              best_gd = gd;
              best_idd = idd;
              best = nb;
            }
          }
          via_fallback = best != current;
        }
      }
      if (best == current) {
        return {current, hops, false, retries, fallback_hops};  // stuck
      }
      if (drops.drop()) {
        ++retries;
        if (--attempts <= 0) {
          return {current, hops, false, retries, fallback_hops};  // lost
        }
        // The clique hop has a single possible receiver: retransmit
        // instead of banning it.
        if (!final_hop) scratch.banned.push_back(best);
        continue;
      }
      if (via_fallback) ++fallback_hops;
      current = best;
      ++hops;
      record(current);
      break;
    }
  }
  return {current, hops, false, retries, fallback_hops};
}

ResilientProbe ResilientGroupRouter::route_into(std::uint32_t from, NodeId key,
                                                const FailureSet& dead,
                                                DropRoller& drops,
                                                Scratch& scratch,
                                                Route& out) const {
  out.path.clear();
  out.path.push_back(from);
  out.ok = false;
  const ResilientProbe p =
      core(from, key, dead, drops, scratch, GroupPathRecorder{&out.path});
  out.ok = p.ok;
  return p;
}

ResilientProbe ResilientGroupRouter::probe(std::uint32_t from, NodeId key,
                                           const FailureSet& dead,
                                           DropRoller& drops,
                                           Scratch& scratch) const {
  return core(from, key, dead, drops, scratch, GroupNullRecorder{});
}

}  // namespace canon
