#include "canon/mixed.h"

#include "telemetry/scoped_timer.h"

#include "dht/chord.h"

namespace canon {

LinkTable build_clique_crescendo(const OverlayNetwork& net) {
  telemetry::ScopedTimer timer("build.clique_crescendo_ms");
  LinkTable out(net.size());
  const DomainTree& dom = net.domains();
  for (std::uint32_t m = 0; m < net.size(); ++m) {
    const auto& chain = dom.domain_chain(m);
    const int leaf = static_cast<int>(chain.size()) - 1;
    // Leaf domain: complete graph.
    const RingView leaf_ring =
        net.domain_ring(chain[static_cast<std::size_t>(leaf)]);
    for (const std::uint32_t v : leaf_ring.members()) out.add(m, v);
    // Higher levels: the standard Crescendo merge.
    for (int level = leaf - 1; level >= 0; --level) {
      const std::uint64_t limit =
          net.domain_ring(chain[static_cast<std::size_t>(level + 1)])
              .successor_distance(net.id(m));
      add_chord_fingers(
          net, net.domain_ring(chain[static_cast<std::size_t>(level)]), m,
          limit, out);
    }
  }
  out.finalize();
  return out;
}

}  // namespace canon
