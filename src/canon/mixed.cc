#include "canon/mixed.h"

#include "telemetry/scoped_timer.h"

#include "common/parallel.h"
#include "dht/chord.h"

namespace canon {

namespace {

void add_clique_crescendo_links(const OverlayNetwork& net, std::uint32_t m,
                                LinkTable& out) {
  const DomainTree& dom = net.domains();
  const auto& chain = dom.domain_chain(m);
  const int leaf = static_cast<int>(chain.size()) - 1;
  // Leaf domain: complete graph.
  const RingView leaf_ring =
      net.domain_ring(chain[static_cast<std::size_t>(leaf)]);
  for (const std::uint32_t v : leaf_ring.members()) out.add(m, v);
  // Higher levels: the standard Crescendo merge.
  for (int level = leaf - 1; level >= 0; --level) {
    const std::uint64_t limit =
        net.domain_ring(chain[static_cast<std::size_t>(level + 1)])
            .successor_distance(net.id(m));
    add_chord_fingers(net,
                      net.domain_ring(chain[static_cast<std::size_t>(level)]),
                      m, limit, out);
  }
}

}  // namespace

LinkTable build_clique_crescendo(const OverlayNetwork& net) {
  telemetry::ScopedTimer timer("build.clique_crescendo_ms");
  LinkTable out(net.size());
  parallel_for(net.size(), kNodeGrain, [&](std::size_t begin, std::size_t end) {
    for (std::size_t m = begin; m < end; ++m) {
      add_clique_crescendo_links(net, static_cast<std::uint32_t>(m), out);
    }
  });
  out.finalize(net.ids());
  return out;
}

}  // namespace canon
