#include "canon/crescendo.h"

#include "common/parallel.h"
#include "dht/chord.h"
#include "telemetry/scoped_timer.h"

namespace canon {

void add_crescendo_links(const OverlayNetwork& net, NodeIndex m,
                         LinkTable& out) {
  const auto& chain = net.domains().domain_chain(m);
  const int leaf = static_cast<int>(chain.size()) - 1;
  // Leaf domain: plain Chord among the members.
  add_chord_fingers(net, net.domain_ring(chain[static_cast<std::size_t>(leaf)]),
                    m, kNoLimit, out);
  // Merge levels, bottom-up: links must beat the child-ring successor.
  for (int level = leaf - 1; level >= 0; --level) {
    const std::uint64_t limit =
        net.domain_ring(chain[static_cast<std::size_t>(level + 1)])
            .successor_distance(net.id(m));
    add_chord_fingers(net,
                      net.domain_ring(chain[static_cast<std::size_t>(level)]),
                      m, limit, out);
  }
}

LinkTable build_crescendo_streamed(
    const OverlayNetwork& net, std::size_t shard_nodes,
    const std::function<void(std::size_t done, std::size_t shards)>&
        on_shard) {
  telemetry::ScopedTimer timer("build.crescendo_streamed_ms");
  return LinkTable::build_streaming(
      net.size(), net.ids(), shard_nodes,
      [&net](NodeIndex m, LinkTable& sink) {
        add_crescendo_links(net, m, sink);
      },
      on_shard);
}

LinkTable build_crescendo(const OverlayNetwork& net) {
  telemetry::ScopedTimer timer("build.crescendo_ms");
  LinkTable out(net.size());
  parallel_for(net.size(), kNodeGrain, [&](std::size_t begin, std::size_t end) {
    for (std::size_t m = begin; m < end; ++m) {
      add_crescendo_links(net, static_cast<std::uint32_t>(m), out);
    }
  });
  out.finalize(net.ids());
  return out;
}

}  // namespace canon
