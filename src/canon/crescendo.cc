#include "canon/crescendo.h"

#include "dht/chord.h"
#include "telemetry/scoped_timer.h"

namespace canon {

void add_crescendo_links(const OverlayNetwork& net, std::uint32_t m,
                         LinkTable& out) {
  const auto& chain = net.domains().domain_chain(m);
  const int leaf = static_cast<int>(chain.size()) - 1;
  // Leaf domain: plain Chord among the members.
  add_chord_fingers(net, net.domain_ring(chain[static_cast<std::size_t>(leaf)]),
                    m, kNoLimit, out);
  // Merge levels, bottom-up: links must beat the child-ring successor.
  for (int level = leaf - 1; level >= 0; --level) {
    const std::uint64_t limit =
        net.domain_ring(chain[static_cast<std::size_t>(level + 1)])
            .successor_distance(net.id(m));
    add_chord_fingers(net,
                      net.domain_ring(chain[static_cast<std::size_t>(level)]),
                      m, limit, out);
  }
}

LinkTable build_crescendo(const OverlayNetwork& net) {
  telemetry::ScopedTimer timer("build.crescendo_ms");
  LinkTable out(net.size());
  for (std::uint32_t m = 0; m < net.size(); ++m) {
    add_crescendo_links(net, m, out);
  }
  out.finalize();
  return out;
}

}  // namespace canon
