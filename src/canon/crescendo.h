// Crescendo: the Canonical (hierarchical) version of Chord (Section 2).
//
// Construction runs bottom-up over the conceptual hierarchy. Within its
// leaf domain a node keeps plain Chord fingers. At each higher level, the
// child rings merge: a node links to a node of the enclosing ring iff
//   (a) it is the closest node at ring distance >= 2^k for some k
//       (the Chord rule over the merged member set), and
//   (b) it is strictly closer than every node of the node's own child ring
//       (equivalently: closer than the child-ring successor).
// The result is that each domain's nodes form a complete Crescendo ring of
// their own, giving intra-domain path locality and inter-domain path
// convergence under plain greedy clockwise routing.
#ifndef CANON_CANON_CRESCENDO_H
#define CANON_CANON_CRESCENDO_H

#include "overlay/link_table.h"
#include "overlay/overlay_network.h"

namespace canon {

/// Adds all of node `m`'s Crescendo links (every hierarchy level).
void add_crescendo_links(const OverlayNetwork& net, std::uint32_t m,
                         LinkTable& out);

/// Builds the complete Crescendo network. With a flat population this is
/// exactly Chord.
LinkTable build_crescendo(const OverlayNetwork& net);

}  // namespace canon

#endif  // CANON_CANON_CRESCENDO_H
