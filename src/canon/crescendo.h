// Crescendo: the Canonical (hierarchical) version of Chord (Section 2).
//
// Construction runs bottom-up over the conceptual hierarchy. Within its
// leaf domain a node keeps plain Chord fingers. At each higher level, the
// child rings merge: a node links to a node of the enclosing ring iff
//   (a) it is the closest node at ring distance >= 2^k for some k
//       (the Chord rule over the merged member set), and
//   (b) it is strictly closer than every node of the node's own child ring
//       (equivalently: closer than the child-ring successor).
// The result is that each domain's nodes form a complete Crescendo ring of
// their own, giving intra-domain path locality and inter-domain path
// convergence under plain greedy clockwise routing.
#ifndef CANON_CANON_CRESCENDO_H
#define CANON_CANON_CRESCENDO_H

#include "overlay/link_table.h"
#include "overlay/overlay_network.h"

namespace canon {

/// Adds all of node `m`'s Crescendo links (every hierarchy level).
void add_crescendo_links(const OverlayNetwork& net, NodeIndex m,
                         LinkTable& out);

/// Builds the complete Crescendo network. With a flat population this is
/// exactly Chord.
LinkTable build_crescendo(const OverlayNetwork& net);

/// Default shard size for build_crescendo_streamed: large enough that one
/// shard's sort/compact amortizes the claim, small enough that in-flight
/// build rows never dominate peak RSS.
inline constexpr std::size_t kStreamShardNodes = 8192;

/// Builds the same network as build_crescendo (byte-identical: operator==
/// compares equal) through LinkTable::build_streaming, compacting and
/// freeing each shard's build rows as it completes. This is the mega-scale
/// entry point: at 10^6+ nodes it trims the construction's peak RSS by the
/// per-node build-vector overhead the plain path holds across the whole
/// population. `on_shard` is LinkTable::build_streaming's progress hook
/// (thread-safe callback, never influences the built table) — the
/// resource observatory samples the RSS timeline through it.
LinkTable build_crescendo_streamed(
    const OverlayNetwork& net, std::size_t shard_nodes = kStreamShardNodes,
    const std::function<void(std::size_t done, std::size_t shards)>&
        on_shard = {});

}  // namespace canon

#endif  // CANON_CANON_CRESCENDO_H
