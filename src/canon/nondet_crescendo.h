// Nondeterministic Crescendo (Section 3.2): Crescendo with the
// nondeterministic-Chord link rule. When rings merge, a node exercises its
// per-bucket random choice only among nodes strictly closer than the
// closest node of its own child ring.
#ifndef CANON_CANON_NONDET_CRESCENDO_H
#define CANON_CANON_NONDET_CRESCENDO_H

#include "common/rng.h"
#include "overlay/link_table.h"
#include "overlay/overlay_network.h"

namespace canon {

/// Adds all of node `m`'s nondeterministic-Crescendo links.
void add_nondet_crescendo_links(const OverlayNetwork& net, std::uint32_t m,
                                Rng& rng, LinkTable& out);

/// Builds the complete network. Flat populations yield plain
/// nondeterministic Chord.
LinkTable build_nondet_crescendo(const OverlayNetwork& net, Rng& rng);

}  // namespace canon

#endif  // CANON_CANON_NONDET_CRESCENDO_H
