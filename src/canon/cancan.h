// Can-Can: the Canonical version of the binary-prefix-tree CAN
// (Section 3.4).
//
// Every domain of the hierarchy carries its own CAN zone partition over its
// members. A node keeps all CAN edges of its leaf domain's partition; at
// each higher level it keeps a face edge only if the edge is "shorter than
// the shortest link at the lower level" — on the virtual hypercube a face
// at prefix position i spans distance 2^(N-1-i), and the shortest
// lower-level link is the sibling face of the lower zone (2^(N - len)), so
// the rule keeps exactly the faces at positions >= len(lower zone).
//
// Routing proceeds stage by stage through progressively larger domains:
// within the current domain's partition the message greedily extends the
// prefix match with the key until it reaches the key's zone owner, then the
// stage lifts to the parent domain.
#ifndef CANON_CANON_CANCAN_H
#define CANON_CANON_CANCAN_H

#include <atomic>
#include <memory>
#include <vector>

#include "dht/can.h"
#include "overlay/link_table.h"
#include "overlay/overlay_network.h"
#include "overlay/routing.h"

namespace canon {

/// The per-domain zone partitions plus the Canon-filtered link table.
class CanCanNetwork {
 public:
  explicit CanCanNetwork(const OverlayNetwork& net);

  const OverlayNetwork& net() const { return *net_; }
  const LinkTable& links() const { return links_; }

  /// Zone partition of domain `d` (a DomainTree index).
  const ZoneTree& tree(int d) const { return *trees_[static_cast<std::size_t>(d)]; }

  /// The node that should answer `key` (owner of the key's zone in the
  /// root partition).
  std::uint32_t responsible(NodeId key) const;

 private:
  const OverlayNetwork* net_;
  std::vector<std::unique_ptr<ZoneTree>> trees_;  // by domain index
  LinkTable links_;
};

/// Staged greedy router over a CanCanNetwork (see file comment). Reports
/// `stuck_count` across its lifetime: hops where no link improved the
/// current stage's prefix match (a failed route). The counts are atomic so
/// concurrent route() calls on one const router (batch QueryEngine fan-out)
/// stay race-free; they are diagnostics, not part of the deterministic
/// per-query results.
///
/// Ordering contract: every access — the fetch_add on the hot scan and
/// the reads above — uses memory_order_relaxed. The counters are
/// merge-only tallies: no other memory is published through them, readers
/// want a sum, not a synchronization point, and the QueryEngine's shard
/// barrier (parallel_for join) already sequences "batch finished" before
/// any caller reads the totals. Relaxed keeps the per-hop increment a
/// plain locked add with no fence on the scan path; do not "upgrade"
/// these to acquire/release — there is nothing to acquire.
class CanCanRouter {
 public:
  explicit CanCanRouter(const CanCanNetwork& network);

  Route route(std::uint32_t from, NodeId key) const;

  /// Routes that dead-ended (failed).
  std::size_t stuck_count() const {
    return stuck_.load(std::memory_order_relaxed);
  }
  /// Hops that needed the XOR-distance fallback (route still succeeded).
  std::size_t fallback_count() const {
    return fallback_.load(std::memory_order_relaxed);
  }

 private:
  const CanCanNetwork* network_;
  int max_hops_;
  mutable std::atomic<std::size_t> stuck_{0};
  mutable std::atomic<std::size_t> fallback_{0};
};

/// Failure-aware staged routing over a CanCanNetwork: the plain stage walk
/// restricted to live neighbors, with per-stage zone takeover (a dead
/// stage owner is replaced by the live stage member XOR-closest to the
/// key — every stage domain contains the live source, so a takeover
/// always exists) and the per-hop drop-retry ladder shared by the other
/// resilient cores. Follows the hot-path contract of overlay/routing.h.
class ResilientCanCanRouter {
 public:
  explicit ResilientCanCanRouter(const CanCanNetwork& network,
                                 int retry_budget = kRetryBudget);

  struct Scratch {
    std::vector<std::uint32_t> banned;   ///< candidates dropped this hop
    std::vector<std::uint32_t> visited;  ///< cycle guard (plain has it too)
  };

  /// ok iff the walk finished the root partition at the key's live owner.
  /// Throws std::invalid_argument on a dead source.
  ResilientProbe route_into(std::uint32_t from, NodeId key,
                            const FailureSet& dead, DropRoller& drops,
                            Scratch& scratch, Route& out) const;
  ResilientProbe probe(std::uint32_t from, NodeId key, const FailureSet& dead,
                       DropRoller& drops, Scratch& scratch) const;

 private:
  template <typename Recorder>
  ResilientProbe core(std::uint32_t from, NodeId key, const FailureSet& dead,
                      DropRoller& drops, Scratch& scratch,
                      Recorder&& record) const;

  /// The stage partition's key owner, or its live takeover within domain
  /// `d` (see class comment).
  std::uint32_t live_stage_owner(const ZoneTree& t, int d, NodeId key,
                                 const FailureSet& dead) const;

  const CanCanNetwork* network_;
  int retry_budget_;
  int max_hops_;
};

}  // namespace canon

#endif  // CANON_CANON_CANCAN_H
