#include "canon/nondet_crescendo.h"

#include "common/parallel.h"
#include "telemetry/scoped_timer.h"

#include "dht/chord.h"
#include "dht/nondet_chord.h"

namespace canon {

void add_nondet_crescendo_links(const OverlayNetwork& net, std::uint32_t m,
                                Rng& rng, LinkTable& out) {
  const auto& chain = net.domains().domain_chain(m);
  const int leaf = static_cast<int>(chain.size()) - 1;
  add_nondet_chord_links(
      net, net.domain_ring(chain[static_cast<std::size_t>(leaf)]), m, kNoLimit,
      rng, out);
  for (int level = leaf - 1; level >= 0; --level) {
    const std::uint64_t limit =
        net.domain_ring(chain[static_cast<std::size_t>(level + 1)])
            .successor_distance(net.id(m));
    add_nondet_chord_links(
        net, net.domain_ring(chain[static_cast<std::size_t>(level)]), m, limit,
        rng, out);
  }
}

LinkTable build_nondet_crescendo(const OverlayNetwork& net, Rng& rng) {
  telemetry::ScopedTimer timer("build.nondet_crescendo_ms");
  LinkTable out(net.size());
  // Per-node forked RNG streams (see build_symphony): deterministic at any
  // thread count.
  const Rng base = rng;
  parallel_for(net.size(), kNodeGrain, [&](std::size_t begin, std::size_t end) {
    for (std::size_t m = begin; m < end; ++m) {
      Rng node_rng = base.fork(m);
      add_nondet_crescendo_links(net, static_cast<std::uint32_t>(m), node_rng,
                                 out);
    }
  });
  out.finalize(net.ids());
  return out;
}

}  // namespace canon
