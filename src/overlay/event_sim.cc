#include "overlay/event_sim.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "telemetry/journal.h"
#include "telemetry/load_stats.h"

namespace canon {

EventSimulator::EventSimulator(const OverlayNetwork& net,
                               const LinkTable& links, HopCost latency,
                               EventSimConfig config)
    : net_(&net),
      links_(&links),
      latency_(std::move(latency)),
      config_(config),
      stepper_(make_ring_stepper(net, links)),
      load_(net.size(), 0),
      busy_until_(net.size(), 0),
      dead_(net.size()),
      messages_counter_(telemetry::maybe_counter("event_sim.messages")),
      completed_counter_(telemetry::maybe_counter("event_sim.completed")),
      queue_hist_(telemetry::maybe_histogram("event_sim.queue_ms")) {
  if (!links.finalized()) {
    throw std::invalid_argument("EventSimulator: links not finalized");
  }
}

void EventSimulator::set_stepper(Stepper stepper) {
  stepper_ = stepper ? std::move(stepper)
                     : make_ring_stepper(*net_, *links_);
}

void EventSimulator::attach(const SimSinks& sinks) {
  sinks.validate();
  if (sinks.trace != sink_) {
    sink_ = sinks.trace;
    if (sink_) {
      // Backfill begin_lookup for lookups submitted before the sink was
      // attached so their hop/end events carry a real lookup id.
      for (std::size_t i = 0; i < lookups_.size(); ++i) {
        if (!traced_[i] && lookups_[i].completed_ms < 0) {
          trace_ids_[i] = sink_->begin_lookup(lookups_[i].from,
                                              lookups_[i].key);
          traced_[i] = true;
        }
      }
    }
  }
  journal_ = sinks.journal;
  if (sinks.timeseries != timeseries_) {
    timeseries_ = sinks.timeseries;
    if (timeseries_) {
      // Backfill submissions that have not yet completed, mirroring the
      // trace sink's retroactive begin_lookup.
      for (const LookupStats& lk : lookups_) {
        if (lk.completed_ms < 0) timeseries_->lookup_issued(lk.issued_ms);
      }
    }
  }
  if (sinks.fault_plan != sinks_.fault_plan) {
    fault_schedule_.clear();
    next_fault_ = 0;
    if (sinks.fault_plan) {
      const auto events = sinks.fault_plan->events();
      fault_schedule_.assign(events.begin(), events.end());
      std::stable_sort(fault_schedule_.begin(), fault_schedule_.end(),
                       [](const FaultEvent& a, const FaultEvent& b) {
                         return a.at < b.at;
                       });
    }
  }
  snapshot_k_ = sinks.snapshot_top_k;
  snapshot_window_ms_ = sinks.snapshot_window_ms;
  sinks_ = sinks;
}

void EventSimulator::set_trace(telemetry::RouteTraceSink* sink) {
  SimSinks sinks = sinks_;
  sinks.trace = sink;
  attach(sinks);
}

void EventSimulator::set_journal(telemetry::EventJournal* journal) {
  SimSinks sinks = sinks_;
  sinks.journal = journal;
  attach(sinks);
}

void EventSimulator::set_timeseries(telemetry::TimeSeriesRecorder* series) {
  SimSinks sinks = sinks_;
  sinks.timeseries = series;
  attach(sinks);
}

void EventSimulator::set_fault_plan(const FaultPlan* plan) {
  SimSinks sinks = sinks_;
  sinks.fault_plan = plan;
  attach(sinks);
}

void EventSimulator::set_load_snapshots(int top_k, double window_ms) {
  SimSinks sinks = sinks_;
  sinks.snapshot_top_k = top_k;
  sinks.snapshot_window_ms = window_ms;
  attach(sinks);
}

int EventSimulator::submit(std::uint32_t from, NodeId key, double at_ms) {
  if (from >= net_->size()) {
    throw std::out_of_range("EventSimulator::submit: bad node");
  }
  LookupStats stats;
  stats.from = from;
  stats.key = key;
  stats.issued_ms = at_ms;
  const int id = static_cast<int>(lookups_.size());
  lookups_.push_back(stats);
  step_state_.push_back(0);
  trace_ids_.push_back(sink_ ? sink_->begin_lookup(from, key) : 0);
  traced_.push_back(sink_ != nullptr);
  if (timeseries_) timeseries_->lookup_issued(at_ms);
  queue_.push(Event{at_ms, id, from});
  return id;
}

void EventSimulator::apply_faults_until(double now) {
  while (next_fault_ < fault_schedule_.size() &&
         static_cast<double>(fault_schedule_[next_fault_].at) <= now) {
    const FaultEvent& fe = fault_schedule_[next_fault_++];
    if (fe.kind == FaultEvent::Kind::kCrash) {
      dead_.kill(fe.node);
      if (journal_) journal_->crash(fe.node, net_->id(fe.node), fe.at);
    } else {
      dead_.revive(fe.node);
      if (journal_) journal_->revive(fe.node, net_->id(fe.node), fe.at);
    }
    if (timeseries_) {
      timeseries_->live_nodes(static_cast<double>(fe.at),
                              static_cast<double>(live_nodes()));
    }
  }
}

void EventSimulator::maybe_snapshot(double now) {
  if (!journal_ || snapshot_k_ <= 0) return;
  while (static_cast<double>(snapshots_emitted_ + 1) * snapshot_window_ms_ <=
         now) {
    ++snapshots_emitted_;
    const double t =
        static_cast<double>(snapshots_emitted_) * snapshot_window_ms_;
    journal_->load_snapshot(
        t, telemetry::top_loaded_nodes(
               load_, static_cast<std::size_t>(snapshot_k_)));
  }
}

void EventSimulator::complete_failed(int lookup, double at_ms,
                                     std::uint32_t terminal) {
  LookupStats& stats = lookups_[static_cast<std::size_t>(lookup)];
  stats.completed_ms = at_ms;
  stats.ok = false;
  if (completed_counter_) completed_counter_->inc();
  if (sink_ && traced_[static_cast<std::size_t>(lookup)]) {
    sink_->end_lookup(trace_ids_[static_cast<std::size_t>(lookup)], false,
                      terminal);
  }
  if (journal_) journal_->lookup_failure(stats.from, stats.key, stats.hops);
  if (timeseries_) {
    timeseries_->lookup_completed(at_ms, false, at_ms - stats.issued_ms);
  }
}

void EventSimulator::run() {
  const int hop_guard = 4 * net_->space().bits() + 16;
  if (timeseries_) {
    timeseries_->live_nodes(now_, static_cast<double>(live_nodes()));
  }
  while (!queue_.empty()) {
    const Event ev = queue_.top();
    queue_.pop();
    now_ = std::max(now_, ev.at_ms);
    apply_faults_until(now_);
    maybe_snapshot(now_);
    LookupStats& stats = lookups_[static_cast<std::size_t>(ev.lookup)];

    // A message arriving at a crashed node is lost: the lookup fails at
    // the arrival time; the dead node pays no processing and no load.
    if (dead_.any() && dead_.dead(ev.node)) {
      complete_failed(ev.lookup, ev.at_ms, ev.node);
      continue;
    }

    // The message occupies the node from max(arrival, node free).
    const double start =
        std::max(ev.at_ms, busy_until_[ev.node]);
    const double done = start + config_.processing_ms;
    busy_until_[ev.node] = done;
    ++load_[ev.node];
    if (messages_counter_) messages_counter_->inc();
    if (queue_hist_) queue_hist_->record_ms(start - ev.at_ms);
    if (timeseries_) timeseries_->message(ev.at_ms, start - ev.at_ms);

    // One stepper candidate: this engine follows the family's greedy
    // chain (candidate 0), one message per hop.
    NodeIndex next = ev.node;
    const StepResult step = stepper_(
        ev.node, stats.key,
        step_state_[static_cast<std::size_t>(ev.lookup)],
        std::span<NodeIndex>(&next, 1));
    if (step.done || step.count == 0 || stats.hops >= hop_guard) {
      stats.completed_ms = done;
      stats.ok = (stats.hops < hop_guard) && step.done && step.ok;
      if (completed_counter_) completed_counter_->inc();
      if (sink_ && traced_[static_cast<std::size_t>(ev.lookup)]) {
        sink_->end_lookup(trace_ids_[static_cast<std::size_t>(ev.lookup)],
                          stats.ok, ev.node);
      }
      if (journal_ && !stats.ok) {
        journal_->lookup_failure(stats.from, stats.key, stats.hops);
      }
      if (timeseries_) {
        timeseries_->lookup_completed(done, stats.ok, done - stats.issued_ms);
      }
      continue;
    }
    const double hop_ms =
        latency_ ? latency_(ev.node, next) : config_.default_hop_ms;
    if (sink_ && traced_[static_cast<std::size_t>(ev.lookup)]) {
      telemetry::HopRecord hop;
      hop.lookup = trace_ids_[static_cast<std::size_t>(ev.lookup)];
      hop.from = ev.node;
      hop.to = next;
      hop.hop_index = stats.hops;
      hop.level = net_->lca_level(ev.node, next);
      hop.candidates =
          static_cast<std::uint32_t>(links_->neighbors(ev.node).size());
      hop.queue_ms = start - ev.at_ms;
      hop.hop_ms = hop_ms;
      sink_->on_hop(hop);
    }
    ++stats.hops;
    queue_.push(Event{done + hop_ms, ev.lookup, next});
  }
  // Final snapshot at the drained clock so a run shorter than one window
  // still leaves a load record.
  if (journal_ && snapshot_k_ > 0) {
    journal_->load_snapshot(
        now_, telemetry::top_loaded_nodes(
                  load_, static_cast<std::size_t>(snapshot_k_)));
  }
}

}  // namespace canon
