#include "overlay/event_sim.h"

#include <algorithm>
#include <stdexcept>

#include "telemetry/journal.h"

namespace canon {

EventSimulator::EventSimulator(const OverlayNetwork& net,
                               const LinkTable& links, HopCost latency,
                               EventSimConfig config)
    : net_(&net),
      links_(&links),
      latency_(std::move(latency)),
      config_(config),
      load_(net.size(), 0),
      busy_until_(net.size(), 0),
      messages_counter_(telemetry::maybe_counter("event_sim.messages")),
      completed_counter_(telemetry::maybe_counter("event_sim.completed")),
      queue_hist_(telemetry::maybe_histogram("event_sim.queue_ms")) {
  if (!links.finalized()) {
    throw std::invalid_argument("EventSimulator: links not finalized");
  }
}

void EventSimulator::set_trace(telemetry::RouteTraceSink* sink) {
  sink_ = sink;
  if (!sink) return;
  // Backfill begin_lookup for lookups submitted before the sink was
  // attached so their hop/end events carry a real lookup id.
  for (std::size_t i = 0; i < lookups_.size(); ++i) {
    if (!traced_[i] && lookups_[i].completed_ms < 0) {
      trace_ids_[i] = sink->begin_lookup(lookups_[i].from, lookups_[i].key);
      traced_[i] = true;
    }
  }
}

int EventSimulator::submit(std::uint32_t from, NodeId key, double at_ms) {
  if (from >= net_->size()) {
    throw std::out_of_range("EventSimulator::submit: bad node");
  }
  LookupStats stats;
  stats.from = from;
  stats.key = key;
  stats.issued_ms = at_ms;
  const int id = static_cast<int>(lookups_.size());
  lookups_.push_back(stats);
  trace_ids_.push_back(sink_ ? sink_->begin_lookup(from, key) : 0);
  traced_.push_back(sink_ != nullptr);
  queue_.push(Event{at_ms, id, from});
  return id;
}

std::uint32_t EventSimulator::next_hop(std::uint32_t node, NodeId key) const {
  const IdSpace& space = net_->space();
  const std::uint64_t remaining = space.ring_distance(net_->id(node), key);
  std::uint32_t best = node;
  std::uint64_t best_covered = 0;
  for (const std::uint32_t nb : links_->neighbors(node)) {
    const std::uint64_t covered =
        space.ring_distance(net_->id(node), net_->id(nb));
    if (covered <= remaining && covered > best_covered) {
      best_covered = covered;
      best = nb;
    }
  }
  return best;
}

void EventSimulator::run() {
  const int hop_guard = 4 * net_->space().bits() + 16;
  while (!queue_.empty()) {
    const Event ev = queue_.top();
    queue_.pop();
    now_ = std::max(now_, ev.at_ms);
    LookupStats& stats = lookups_[static_cast<std::size_t>(ev.lookup)];

    // The message occupies the node from max(arrival, node free).
    const double start =
        std::max(ev.at_ms, busy_until_[ev.node]);
    const double done = start + config_.processing_ms;
    busy_until_[ev.node] = done;
    ++load_[ev.node];
    if (messages_counter_) messages_counter_->inc();
    if (queue_hist_) queue_hist_->record_ms(start - ev.at_ms);

    const std::uint32_t next = next_hop(ev.node, stats.key);
    if (next == ev.node || stats.hops >= hop_guard) {
      stats.completed_ms = done;
      stats.ok = (stats.hops < hop_guard) &&
                 (ev.node == net_->responsible(stats.key));
      if (completed_counter_) completed_counter_->inc();
      if (sink_ && traced_[static_cast<std::size_t>(ev.lookup)]) {
        sink_->end_lookup(trace_ids_[static_cast<std::size_t>(ev.lookup)],
                          stats.ok, ev.node);
      }
      if (journal_ && !stats.ok) {
        journal_->lookup_failure(stats.from, stats.key, stats.hops);
      }
      continue;
    }
    const double hop_ms =
        latency_ ? latency_(ev.node, next) : config_.default_hop_ms;
    if (sink_ && traced_[static_cast<std::size_t>(ev.lookup)]) {
      telemetry::HopRecord hop;
      hop.lookup = trace_ids_[static_cast<std::size_t>(ev.lookup)];
      hop.from = ev.node;
      hop.to = next;
      hop.hop_index = stats.hops;
      hop.level = net_->lca_level(ev.node, next);
      hop.candidates =
          static_cast<std::uint32_t>(links_->neighbors(ev.node).size());
      hop.queue_ms = start - ev.at_ms;
      hop.hop_ms = hop_ms;
      sink_->on_hop(hop);
    }
    ++stats.hops;
    queue_.push(Event{done + hop_ms, ev.lookup, next});
  }
}

}  // namespace canon
