#include "overlay/metrics.h"

#include <algorithm>
#include <unordered_set>

namespace canon {

double path_cost(const Route& route, const HopCost& cost) {
  double total = 0;
  for (std::size_t i = 1; i < route.path.size(); ++i) {
    total += cost(route.path[i - 1], route.path[i]);
  }
  return total;
}

namespace {

/// Index of the first node of `second` that appears anywhere on `first`,
/// or second.path.size() if the paths never meet.
std::size_t first_meet(const Route& first, const Route& second) {
  std::unordered_set<std::uint32_t> on_first(first.path.begin(),
                                             first.path.end());
  for (std::size_t i = 0; i < second.path.size(); ++i) {
    if (on_first.contains(second.path[i])) return i;
  }
  return second.path.size();
}

}  // namespace

std::optional<double> hop_overlap_fraction(const Route& first,
                                           const Route& second) {
  const std::size_t total_hops = second.path.size() - 1;
  if (total_hops == 0) return std::nullopt;
  const std::size_t meet = first_meet(first, second);
  const std::size_t overlap_hops =
      meet >= second.path.size() ? 0 : (second.path.size() - 1 - meet);
  return static_cast<double>(overlap_hops) / static_cast<double>(total_hops);
}

std::optional<double> cost_overlap_fraction(const Route& first,
                                            const Route& second,
                                            const HopCost& cost) {
  const double total = path_cost(second, cost);
  if (total <= 0) return std::nullopt;
  const std::size_t meet = first_meet(first, second);
  double overlap = 0;
  for (std::size_t i = std::max<std::size_t>(meet, 1);
       i < second.path.size(); ++i) {
    if (i > meet) overlap += cost(second.path[i - 1], second.path[i]);
  }
  return overlap / total;
}

void MulticastTree::add_route(const Route& route) {
  for (std::size_t i = 1; i < route.path.size(); ++i) {
    edges_.emplace_back(route.path[i - 1], route.path[i]);
  }
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
}

std::size_t MulticastTree::inter_domain_edges(const OverlayNetwork& net,
                                              int level) const {
  std::size_t count = 0;
  for (const auto& [u, v] : edges_) {
    if (net.lca_level(u, v) < level) ++count;
  }
  return count;
}

}  // namespace canon
