#include "overlay/stepper.h"

namespace canon {

Stepper make_ring_stepper(const OverlayNetwork& net, const LinkTable& links) {
  const OverlayNetwork* n = &net;
  const LinkTable* l = &links;
  return [n, l](NodeIndex at, NodeId key, std::uint64_t&,
                std::span<NodeIndex> out) -> StepResult {
    const IdSpace& space = n->space();
    const NodeId cur_id = n->id(at);
    const std::uint64_t remaining = space.ring_distance(cur_id, key);
    // Rank progressing neighbors by clockwise distance covered, largest
    // first: metric = remaining - covered keeps the ascending TopK order
    // and — with ties preserving insertion order — makes candidate 0 the
    // first-best winner ring_core / ring_scan_argbest picks.
    detail::TopK top(static_cast<int>(out.size()));
    for (const std::uint32_t nb : l->neighbors(at)) {
      const std::uint64_t covered = space.ring_distance(cur_id, n->id(nb));
      if (covered == 0 || covered > remaining) continue;
      top.push(remaining - covered, nb);
    }
    if (top.count == 0) {
      return {0, true, at == n->responsible(key)};
    }
    return {top.emit(out), false, false};
  };
}

Stepper make_xor_stepper(const OverlayNetwork& net, const LinkTable& links) {
  const OverlayNetwork* n = &net;
  const LinkTable* l = &links;
  return [n, l](NodeIndex at, NodeId key, std::uint64_t&,
                std::span<NodeIndex> out) -> StepResult {
    const IdSpace& space = n->space();
    const std::uint64_t remaining = space.xor_distance(n->id(at), key);
    detail::TopK top(static_cast<int>(out.size()));
    for (const std::uint32_t nb : l->neighbors(at)) {
      const std::uint64_t d = space.xor_distance(n->id(nb), key);
      if (d >= remaining) continue;
      top.push(d, nb);
    }
    if (top.count == 0) {
      return {0, true, at == n->xor_closest(key)};
    }
    return {top.emit(out), false, false};
  };
}

}  // namespace canon
