// Discrete-event simulation of concurrent lookups.
//
// The structural experiments elsewhere in this library evaluate paths one
// at a time; EventSimulator runs many greedy lookups *concurrently* against
// a link structure, with per-hop network latency and a serial per-message
// processing cost at each node (messages queue when a node is busy). This
// supports the paper's load-homogeneity claim — a hierarchical Canon DHT
// keeps the flat design's uniform distribution of routing load — and gives
// end-to-end lookup latency distributions under load.
//
// The per-hop decision is a Stepper (overlay/stepper.h): the default is
// the greedy-clockwise ring stepper, and set_stepper() accepts any
// family's stepper from the registry's make_stepper hook — the simulator
// itself knows no family. For message-granularity semantics (per-node
// inbox queues, timeouts, α-parallel probes) see overlay/message_sim.h;
// this engine models one message chain per lookup.
//
// Observers attach as one SimSinks bundle (overlay/sim_sinks.h); the
// historical per-field setters survive as thin forwarders.
#ifndef CANON_OVERLAY_EVENT_SIM_H
#define CANON_OVERLAY_EVENT_SIM_H

#include <cstdint>
#include <queue>
#include <vector>

#include "overlay/fault_plan.h"
#include "overlay/link_table.h"
#include "overlay/metrics.h"
#include "overlay/overlay_network.h"
#include "overlay/sim_sinks.h"
#include "overlay/stepper.h"
#include "telemetry/metrics.h"
#include "telemetry/timeseries.h"
#include "telemetry/trace.h"

namespace canon::telemetry {
class EventJournal;  // telemetry/journal.h
}

namespace canon {

struct EventSimConfig {
  /// Serial cost for a node to process one message (ms). Messages arriving
  /// at a busy node queue FIFO.
  double processing_ms = 0.05;
  /// Used when no latency callback is supplied.
  double default_hop_ms = 1.0;
};

class EventSimulator {
 public:
  /// `latency` may be empty, in which case every hop costs
  /// config.default_hop_ms.
  EventSimulator(const OverlayNetwork& net, const LinkTable& links,
                 HopCost latency = {}, EventSimConfig config = {});

  struct LookupStats {
    std::uint32_t from = 0;
    NodeId key = 0;
    double issued_ms = 0;
    double completed_ms = -1;  ///< -1 until completed
    int hops = 0;
    bool ok = false;

    double latency_ms() const { return completed_ms - issued_ms; }
  };

  /// Schedules a lookup; returns its index into lookups().
  int submit(std::uint32_t from, NodeId key, double at_ms);

  /// Runs until every scheduled lookup completes.
  void run();

  const std::vector<LookupStats>& lookups() const { return lookups_; }

  /// Messages processed by each node over the run (routing load).
  const std::vector<std::uint64_t>& node_load() const { return load_; }

  /// Simulated clock after run().
  double now_ms() const { return now_; }

  /// Replaces the per-hop routing decision (default: the greedy-clockwise
  /// ring stepper over the construction links). Pass a family's stepper
  /// from registry::family(name).make_stepper to simulate that family.
  /// Call before run(); an empty stepper restores the default.
  void set_stepper(Stepper stepper);

  /// Installs the full observer bundle, replacing whatever was attached
  /// before (an empty SimSinks detaches everything). Validates the bundle
  /// once; semantics per field:
  ///
  /// * trace — hop events carry queueing delay and modeled hop latency;
  ///   lookups submitted before attachment that have not yet completed get
  ///   a retroactive begin_lookup.
  /// * journal — unsuccessful completions emit lookup_failure; applied
  ///   fault events emit crash/revive; load snapshots (snapshot_top_k > 0)
  ///   emit load_snapshot lines every snapshot_window_ms of simulated
  ///   time plus one final snapshot when run() drains.
  /// * timeseries — submissions/completions, per-message queueing and the
  ///   live-node count, keyed on the simulated clock; pending submissions
  ///   are backfilled as issued on attach.
  /// * fault_plan — crash/revive schedule applied on the simulated clock
  ///   (FaultEvent::at is milliseconds). A message arriving at a dead node
  ///   is lost and its lookup completes failed at the arrival time. The
  ///   plan's drop probability is ignored here (fail-stop only; the
  ///   message simulator models drops).
  /// * load — ignored by this engine (MessageSimulator feeds it).
  void attach(const SimSinks& sinks);

  /// The currently attached bundle.
  const SimSinks& sinks() const { return sinks_; }

  /// Deprecated forwarder: edits the attached bundle's trace field.
  /// Prefer attach().
  void set_trace(telemetry::RouteTraceSink* sink);

  /// Deprecated forwarder: edits the attached bundle's journal field.
  /// Prefer attach().
  void set_journal(telemetry::EventJournal* journal);

  /// Deprecated forwarder: edits the attached bundle's timeseries field.
  /// Prefer attach().
  void set_timeseries(telemetry::TimeSeriesRecorder* series);

  /// Deprecated forwarder: edits the attached bundle's fault_plan field.
  /// Prefer attach().
  void set_fault_plan(const FaultPlan* plan);

  /// Live nodes right now (population minus crashed).
  std::size_t live_nodes() const { return dead_.size() - dead_.dead_count(); }

  /// Deprecated forwarder: edits the attached bundle's snapshot options.
  /// Prefer attach().
  void set_load_snapshots(int top_k, double window_ms = 50.0);

 private:
  struct Event {
    double at_ms = 0;
    int lookup = 0;
    std::uint32_t node = 0;
    bool operator>(const Event& other) const { return at_ms > other.at_ms; }
  };

  /// Applies every scheduled fault with at <= `now` (journaling them and
  /// updating the live-node series).
  void apply_faults_until(double now);

  /// Emits load_snapshot events for every whole snapshot window that ends
  /// at or before `now`.
  void maybe_snapshot(double now);

  /// Completes lookup `ev.lookup` as failed at `at_ms` (dead node or hop
  /// guard), firing trace/journal/time-series observers.
  void complete_failed(int lookup, double at_ms, std::uint32_t terminal);

  const OverlayNetwork* net_;
  const LinkTable* links_;
  HopCost latency_;
  EventSimConfig config_;
  Stepper stepper_;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::vector<LookupStats> lookups_;
  std::vector<std::uint64_t> step_state_;  // per-lookup stepper state word
  std::vector<std::uint64_t> load_;
  std::vector<double> busy_until_;
  double now_ = 0;
  FailureSet dead_;
  std::vector<FaultEvent> fault_schedule_;  // stably sorted by time
  std::size_t next_fault_ = 0;
  SimSinks sinks_;
  telemetry::TimeSeriesRecorder* timeseries_ = nullptr;
  int snapshot_k_ = 0;
  double snapshot_window_ms_ = 50.0;
  std::int64_t snapshots_emitted_ = 0;  // windows already snapshotted
  telemetry::RouteTraceSink* sink_ = nullptr;
  telemetry::EventJournal* journal_ = nullptr;
  std::vector<std::uint64_t> trace_ids_;  // parallel to lookups_
  std::vector<bool> traced_;              // begin_lookup fired for lookup i
  telemetry::Counter* messages_counter_;
  telemetry::Counter* completed_counter_;
  telemetry::LatencyHistogram* queue_hist_;
};

}  // namespace canon

#endif  // CANON_OVERLAY_EVENT_SIM_H
