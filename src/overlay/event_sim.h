// Discrete-event simulation of concurrent lookups.
//
// The structural experiments elsewhere in this library evaluate paths one
// at a time; EventSimulator runs many greedy lookups *concurrently* against
// a link structure, with per-hop network latency and a serial per-message
// processing cost at each node (messages queue when a node is busy). This
// supports the paper's load-homogeneity claim — a hierarchical Canon DHT
// keeps the flat design's uniform distribution of routing load — and gives
// end-to-end lookup latency distributions under load.
#ifndef CANON_OVERLAY_EVENT_SIM_H
#define CANON_OVERLAY_EVENT_SIM_H

#include <cstdint>
#include <queue>
#include <vector>

#include "overlay/fault_plan.h"
#include "overlay/link_table.h"
#include "overlay/metrics.h"
#include "overlay/overlay_network.h"
#include "telemetry/metrics.h"
#include "telemetry/timeseries.h"
#include "telemetry/trace.h"

namespace canon::telemetry {
class EventJournal;  // telemetry/journal.h
}

namespace canon {

struct EventSimConfig {
  /// Serial cost for a node to process one message (ms). Messages arriving
  /// at a busy node queue FIFO.
  double processing_ms = 0.05;
  /// Used when no latency callback is supplied.
  double default_hop_ms = 1.0;
};

class EventSimulator {
 public:
  /// `latency` may be empty, in which case every hop costs
  /// config.default_hop_ms.
  EventSimulator(const OverlayNetwork& net, const LinkTable& links,
                 HopCost latency = {}, EventSimConfig config = {});

  struct LookupStats {
    std::uint32_t from = 0;
    NodeId key = 0;
    double issued_ms = 0;
    double completed_ms = -1;  ///< -1 until completed
    int hops = 0;
    bool ok = false;

    double latency_ms() const { return completed_ms - issued_ms; }
  };

  /// Schedules a lookup; returns its index into lookups().
  int submit(std::uint32_t from, NodeId key, double at_ms);

  /// Runs until every scheduled lookup completes.
  void run();

  const std::vector<LookupStats>& lookups() const { return lookups_; }

  /// Messages processed by each node over the run (routing load).
  const std::vector<std::uint64_t>& node_load() const { return load_; }

  /// Simulated clock after run().
  double now_ms() const { return now_; }

  /// Attaches a trace sink. Hop events carry the queueing delay the message
  /// experienced at the forwarding node and the modeled hop latency;
  /// lookups interleave, so events are keyed by lookup id. May be called
  /// at any time: lookups submitted before attachment that have not yet
  /// completed get a retroactive begin_lookup, so every traced lookup's
  /// hop/end events are keyed to a real id. (Previously a late set_trace
  /// silently dropped begin_lookup and emitted misattributed events.)
  /// nullptr detaches; already-completed lookups are never re-traced.
  void set_trace(telemetry::RouteTraceSink* sink);

  /// Attaches an event journal (see telemetry/journal.h): every lookup
  /// that completes unsuccessfully emits a lookup_failure event; applied
  /// fault-plan events emit crash/revive lines; load snapshots (when
  /// enabled) emit load_snapshot lines. nullptr detaches.
  void set_journal(telemetry::EventJournal* journal) { journal_ = journal; }

  /// Attaches a windowed time-series recorder keyed on the simulated
  /// clock: lookup submissions/completions, per-message queueing, and the
  /// live-node count all feed it. Lookups submitted before attachment
  /// that have not yet completed are backfilled as issued. nullptr
  /// detaches.
  void set_timeseries(telemetry::TimeSeriesRecorder* series);

  /// Schedules `plan`'s crash/revive events on the simulated clock
  /// (FaultEvent::at is taken as milliseconds). A message arriving at a
  /// dead node is lost and its lookup completes failed at the arrival
  /// time; the node pays no processing cost and gains no load. The plan's
  /// drop probability is ignored (the simulator models fail-stop only).
  /// Applied events are journaled as crash/revive when a journal is
  /// attached. nullptr detaches; pass before run().
  void set_fault_plan(const FaultPlan* plan);

  /// Live nodes right now (population minus crashed).
  std::size_t live_nodes() const { return dead_.size() - dead_.dead_count(); }

  /// Emits a load_snapshot journal event (top `top_k` loaded nodes) every
  /// `window_ms` of simulated time, plus one final snapshot when run()
  /// drains; requires an attached journal. `top_k` <= 0 disables (the
  /// default).
  void set_load_snapshots(int top_k, double window_ms = 50.0);

 private:
  struct Event {
    double at_ms = 0;
    int lookup = 0;
    std::uint32_t node = 0;
    bool operator>(const Event& other) const { return at_ms > other.at_ms; }
  };

  /// Greedy clockwise next hop, or the node itself when it is responsible.
  std::uint32_t next_hop(std::uint32_t node, NodeId key) const;

  /// Applies every scheduled fault with at <= `now` (journaling them and
  /// updating the live-node series).
  void apply_faults_until(double now);

  /// Emits load_snapshot events for every whole snapshot window that ends
  /// at or before `now`.
  void maybe_snapshot(double now);

  /// Completes lookup `ev.lookup` as failed at `at_ms` (dead node or hop
  /// guard), firing trace/journal/time-series observers.
  void complete_failed(int lookup, double at_ms, std::uint32_t terminal);

  const OverlayNetwork* net_;
  const LinkTable* links_;
  HopCost latency_;
  EventSimConfig config_;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::vector<LookupStats> lookups_;
  std::vector<std::uint64_t> load_;
  std::vector<double> busy_until_;
  double now_ = 0;
  FailureSet dead_;
  std::vector<FaultEvent> fault_schedule_;  // stably sorted by time
  std::size_t next_fault_ = 0;
  telemetry::TimeSeriesRecorder* timeseries_ = nullptr;
  int snapshot_k_ = 0;
  double snapshot_window_ms_ = 50.0;
  std::int64_t snapshots_emitted_ = 0;  // windows already snapshotted
  telemetry::RouteTraceSink* sink_ = nullptr;
  telemetry::EventJournal* journal_ = nullptr;
  std::vector<std::uint64_t> trace_ids_;  // parallel to lookups_
  std::vector<bool> traced_;              // begin_lookup fired for lookup i
  telemetry::Counter* messages_counter_;
  telemetry::Counter* completed_counter_;
  telemetry::LatencyHistogram* queue_hist_;
};

}  // namespace canon

#endif  // CANON_OVERLAY_EVENT_SIM_H
