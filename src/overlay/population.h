// Convenience factory assembling an OverlayNetwork from the paper's
// experimental knobs: node count, ID space, hierarchy shape and seed.
#ifndef CANON_OVERLAY_POPULATION_H
#define CANON_OVERLAY_POPULATION_H

#include <cstddef>

#include "common/rng.h"
#include "hierarchy/generators.h"
#include "overlay/overlay_network.h"

namespace canon {

struct PopulationSpec {
  std::size_t node_count = 1024;
  int id_bits = kDefaultIdBits;
  HierarchySpec hierarchy;
};

/// Draws unique random IDs and hierarchy positions and builds the network.
OverlayNetwork make_population(const PopulationSpec& spec, Rng& rng);

}  // namespace canon

#endif  // CANON_OVERLAY_POPULATION_H
