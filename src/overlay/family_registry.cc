#include "overlay/family_registry.h"

#include <array>
#include <limits>
#include <memory>
#include <stdexcept>
#include <utility>

#include "canon/cacophony.h"
#include "canon/cancan.h"
#include "canon/crescendo.h"
#include "canon/kandy.h"
#include "canon/mixed.h"
#include "canon/nondet_crescendo.h"
#include "canon/proximity.h"
#include "dht/can.h"
#include "dht/chord.h"
#include "dht/kademlia.h"
#include "dht/nondet_chord.h"
#include "dht/symphony.h"
#include "overlay/resilient_routing.h"
#include "overlay/routing.h"

namespace canon::registry {

namespace {

// ---------------------------------------------------------------------------
// build hooks
//
// The shared experiment conventions (tests/parallel_determinism_test.cc):
// the proximity families group by the top bits (default target group size)
// and rank endpoints with a synthetic but deterministic latency oracle.

double synthetic_latency(std::uint32_t a, std::uint32_t b) {
  return static_cast<double>((a * 31u + b * 17u) % 97u + 1u);
}

LinkTable build_chord_hook(const OverlayNetwork& net, Rng&) {
  return build_chord(net);
}
LinkTable build_symphony_hook(const OverlayNetwork& net, Rng& rng) {
  return build_symphony(net, rng);
}
LinkTable build_nondet_chord_hook(const OverlayNetwork& net, Rng& rng) {
  return build_nondet_chord(net, rng);
}
LinkTable build_kademlia_hook(const OverlayNetwork& net, Rng& rng) {
  return build_kademlia(net, BucketChoice::kClosest, rng);
}
LinkTable build_can_hook(const OverlayNetwork& net, Rng&) {
  return build_can(net).links;
}
LinkTable build_crescendo_hook(const OverlayNetwork& net, Rng&) {
  return build_crescendo(net);
}
LinkTable build_clique_crescendo_hook(const OverlayNetwork& net, Rng&) {
  return build_clique_crescendo(net);
}
LinkTable build_cacophony_hook(const OverlayNetwork& net, Rng& rng) {
  return build_cacophony(net, rng);
}
LinkTable build_nondet_crescendo_hook(const OverlayNetwork& net, Rng& rng) {
  return build_nondet_crescendo(net, rng);
}
LinkTable build_kandy_hook(const OverlayNetwork& net, Rng& rng) {
  return build_kandy(net, BucketChoice::kClosest, rng);
}
LinkTable build_cancan_hook(const OverlayNetwork& net, Rng&) {
  return CanCanNetwork(net).links();
}
LinkTable build_chord_prox_hook(const OverlayNetwork& net, Rng& rng) {
  const GroupedOverlay groups(net, ProximityConfig{}.target_group_size);
  return build_chord_prox(net, groups, synthetic_latency, ProximityConfig{},
                          rng);
}
LinkTable build_crescendo_prox_hook(const OverlayNetwork& net, Rng& rng) {
  const GroupedOverlay groups(net, ProximityConfig{}.target_group_size);
  return build_crescendo_prox(net, groups, synthetic_latency,
                              ProximityConfig{}, rng);
}

// ---------------------------------------------------------------------------
// make_router hooks
//
// Each state struct owns the concrete plain + resilient routers (and any
// auxiliary structure they index); both batch closures share it. The
// greedy cores stay fully template-typed inside the one std::function call
// per batch.

template <typename State>
FamilyRouter wrap(std::shared_ptr<const State> state) {
  FamilyRouter r;
  r.run_fn = [state](const QueryEngine& engine, std::span<const Query> q,
                     std::vector<RouteProbe>* per_query) {
    return state->run(engine, q, per_query);
  };
  r.resilient_fn = [state](const QueryEngine& engine,
                           std::span<const Query> q, const FaultPlan& plan,
                           std::vector<RouteProbe>* per_query) {
    return engine.run_resilient(q, state->resilient, plan, per_query);
  };
  r.resilient_with_fn = [state](const QueryEngine& engine,
                                std::span<const Query> q,
                                const FailureSet& dead, const FaultPlan& plan,
                                std::vector<RouteProbe>* per_query) {
    return engine.run_resilient_with(q, state->resilient, dead, plan,
                                     per_query);
  };
  return r;
}

// The Ring/Xor/Group states route through engine.run(), whose probe_batch
// detection picks up those routers' interleaved batch kernels
// transparently; Can/CanCan expose only route() and stay on the generic
// full-mode core below — the registry-level scalar fallback.
struct RingState {
  RingRouter plain;
  ResilientRingRouter resilient;
  RingState(const OverlayNetwork& net, const LinkTable& links)
      : plain(net, links), resilient(net, links) {}
  QueryStats run(const QueryEngine& engine, std::span<const Query> q,
                 std::vector<RouteProbe>* per_query) const {
    return engine.run(q, plain, per_query);
  }
};

struct XorState {
  XorRouter plain;
  ResilientXorRouter resilient;
  XorState(const OverlayNetwork& net, const LinkTable& links)
      : plain(net, links), resilient(net, links) {}
  QueryStats run(const QueryEngine& engine, std::span<const Query> q,
                 std::vector<RouteProbe>* per_query) const {
    return engine.run(q, plain, per_query);
  }
};

struct CanState {
  ZoneTree tree;
  CanRouter plain;
  ResilientCanRouter resilient;
  CanState(const OverlayNetwork& net, const LinkTable& links)
      : tree(net, net.ring().members()),
        plain(net, tree, links),
        resilient(net, tree, links) {}
  // CanRouter exposes only route(); full mode via the generic core.
  QueryStats run(const QueryEngine& engine, std::span<const Query> q,
                 std::vector<RouteProbe>* per_query) const {
    return engine.run_batch(
        q,
        [this](std::uint32_t from, NodeId key, Route& out) {
          out = plain.route(from, key);
        },
        nullptr, per_query);
  }
};

struct CanCanState {
  CanCanNetwork network;  // rebuilt: deterministic, equal to build()'s table
  CanCanRouter plain;
  ResilientCanCanRouter resilient;
  explicit CanCanState(const OverlayNetwork& net)
      : network(net), plain(network), resilient(network) {}
  QueryStats run(const QueryEngine& engine, std::span<const Query> q,
                 std::vector<RouteProbe>* per_query) const {
    return engine.run_batch(
        q,
        [this](std::uint32_t from, NodeId key, Route& out) {
          out = plain.route(from, key);
        },
        nullptr, per_query);
  }
};

struct GroupState {
  GroupedOverlay groups;
  GroupRouter plain;
  ResilientGroupRouter resilient;
  GroupState(const OverlayNetwork& net, const LinkTable& links)
      : groups(net, ProximityConfig{}.target_group_size),
        plain(net, groups, links),
        resilient(net, groups, links) {}
  QueryStats run(const QueryEngine& engine, std::span<const Query> q,
                 std::vector<RouteProbe>* per_query) const {
    return engine.run(q, plain, per_query);
  }
};

FamilyRouter make_ring_router(const OverlayNetwork& net,
                              const LinkTable& links) {
  return wrap(std::make_shared<const RingState>(net, links));
}
FamilyRouter make_xor_router(const OverlayNetwork& net,
                             const LinkTable& links) {
  return wrap(std::make_shared<const XorState>(net, links));
}
FamilyRouter make_can_router(const OverlayNetwork& net,
                             const LinkTable& links) {
  return wrap(std::make_shared<const CanState>(net, links));
}
FamilyRouter make_cancan_router(const OverlayNetwork& net,
                                const LinkTable&) {
  return wrap(std::make_shared<const CanCanState>(net));
}
FamilyRouter make_group_router(const OverlayNetwork& net,
                               const LinkTable& links) {
  return wrap(std::make_shared<const GroupState>(net, links));
}

// ---------------------------------------------------------------------------
// make_stepper hooks
//
// Resumable one-hop versions of the CAN / Can-Can / group routing cores
// (overlay/stepper.h documents the contract; the ring/XOR steppers live in
// canon_overlay and their factories go straight into the table). Each
// closure owns its auxiliary structure via shared_ptr, mirroring the
// make_router states above.

// CanRouter::route's loop body: candidates grow the zone-tree prefix
// match, ranked longest-match-first; when no neighbor improves the match,
// the key's zone may be a short empty-sibling block owned by an adjacent
// node, so a neighbor owning the key outright is the single fallback.
Stepper make_can_stepper(const OverlayNetwork& net, const LinkTable& links) {
  auto tree = std::make_shared<const ZoneTree>(net, net.ring().members());
  const LinkTable* l = &links;
  return [tree, l](NodeIndex at, NodeId key, std::uint64_t&,
                   std::span<NodeIndex> out) -> StepResult {
    if (tree->owner_of(key) == at) return {0, true, true};
    const int cur_match = tree->match_len(at, key);
    detail::TopK top(static_cast<int>(out.size()));
    for (const std::uint32_t nb : l->neighbors(at)) {
      if (!tree->contains(nb)) continue;
      const int m = tree->match_len(nb, key);
      if (m > cur_match) top.push(static_cast<std::uint64_t>(64 - m), nb);
    }
    if (top.count == 0) {
      for (const std::uint32_t nb : l->neighbors(at)) {
        if (tree->contains(nb) && tree->owner_of(key) == nb) {
          out[0] = nb;
          return {1, false, false};
        }
      }
      return {0, true, false};  // stuck
    }
    return {top.emit(out), false, false};
  };
}

// CanCanRouter::route's loop body. The lookup-local word packs the stage
// domain plus the previously visited node: the scalar core keeps a full
// visited set to guard the XOR fallback against cycles, which cannot ride
// in 64 bits — the immediate-backtrack guard catches the 2-cycles the
// fallback actually produces and the simulator's hop guard bounds the
// rest. state = (prev_node+1) << 32 | (stage_domain+1); 0 = first step.
Stepper make_cancan_stepper(const OverlayNetwork& net, const LinkTable&) {
  auto network = std::make_shared<const CanCanNetwork>(net);
  return [network](NodeIndex at, NodeId key, std::uint64_t& state,
                   std::span<NodeIndex> out) -> StepResult {
    const OverlayNetwork& n = network->net();
    const IdSpace& space = n.space();
    const DomainTree& dom = n.domains();
    int stage = state == 0
                    ? static_cast<int>(dom.domain_chain(at).back())
                    : static_cast<int>((state & 0xFFFFFFFFu) - 1);
    const std::uint32_t prev =
        state == 0 ? at : static_cast<std::uint32_t>((state >> 32) - 1);
    // Lift the stage toward the root while this node owns the key's zone
    // in the stage partition; lifting consumes no hop.
    while (network->tree(stage).owner_of(key) == at) {
      if (dom.domain(stage).parent < 0) return {0, true, true};
      stage = dom.domain(stage).parent;
    }
    const ZoneTree& t = network->tree(stage);
    const int cur_match = t.match_len(at, key);
    detail::TopK top(static_cast<int>(out.size()));
    for (const std::uint32_t nb : network->links().neighbors(at)) {
      if (!t.contains(nb) || nb == prev) continue;
      const int m = t.match_len(nb, key);
      if (m > cur_match) top.push(static_cast<std::uint64_t>(64 - m), nb);
    }
    if (top.count == 0) {
      // Empty-sibling fallback: a stage neighbor owning the key outright.
      for (const std::uint32_t nb : network->links().neighbors(at)) {
        if (t.contains(nb) && nb != prev && t.owner_of(key) == nb) {
          top.push(0, nb);
          break;
        }
      }
    }
    if (top.count == 0) {
      // Faces the merge filter removed: stage neighbors strictly closer
      // to the key in XOR distance.
      const std::uint64_t cur_d = space.xor_distance(n.id(at), key);
      for (const std::uint32_t nb : network->links().neighbors(at)) {
        if (!t.contains(nb) || nb == prev) continue;
        const std::uint64_t d = space.xor_distance(n.id(nb), key);
        if (d < cur_d) top.push(d, nb);
      }
    }
    if (top.count == 0) return {0, true, false};  // stuck
    state = (static_cast<std::uint64_t>(at) + 1) << 32 |
            static_cast<std::uint64_t>(stage + 1);
    return {top.emit(out), false, false};
  };
}

// group_core's loop body: greedy on group distance (never overshooting the
// target group), ties broken by clockwise ID progress; once inside the
// target group, the final hop goes straight to the responsible node over
// the dense group network.
Stepper make_group_stepper(const OverlayNetwork& net, const LinkTable& links) {
  auto groups = std::make_shared<const GroupedOverlay>(
      net, ProximityConfig{}.target_group_size);
  const OverlayNetwork* n = &net;
  const LinkTable* l = &links;
  return [groups, n, l](NodeIndex at, NodeId key, std::uint64_t&,
                        std::span<NodeIndex> out) -> StepResult {
    const IdSpace& space = n->space();
    const int target_group = groups->responsible_group(key);
    const NodeId target_gid =
        groups->groups()[static_cast<std::size_t>(target_group)].gid;
    const std::uint32_t target = groups->responsible(key);
    if (at == target) return {0, true, true};
    const NodeId cur_gid = groups->gid_of_node(at);
    if (cur_gid == target_gid) {
      if (l->has_link(at, target)) {
        out[0] = target;
        return {1, false, false};
      }
      return {0, true, false};  // stuck inside the target group
    }
    const std::uint64_t remaining_groups =
        groups->group_distance(cur_gid, target_gid);
    const std::uint64_t remaining_ids =
        space.ring_distance(n->id(at), key);
    // (gcov desc, icov desc) needs a lexicographic two-word rank, so this
    // one keeps explicit pairs instead of detail::TopK's single metric.
    // Strictly-greater displacement keeps first-seen order on full ties,
    // matching the scalar core's running argbest.
    std::uint64_t gcov[kMaxStepCandidates];
    std::uint64_t icov[kMaxStepCandidates];
    NodeIndex node[kMaxStepCandidates];
    int count = 0;
    const int cap = static_cast<int>(out.size());
    for (const std::uint32_t nb : l->neighbors(at)) {
      const std::uint64_t g =
          groups->group_distance(cur_gid, groups->gid_of_node(nb));
      if (g > remaining_groups) continue;  // overshoots the target group
      const std::uint64_t i = space.ring_distance(n->id(at), n->id(nb));
      if (g == 0 && i > remaining_ids) continue;
      if (g == 0 && i == 0) continue;  // no progress at all
      int pos = count < cap ? count : cap - 1;
      if (count < cap) {
        ++count;
      } else if (g < gcov[cap - 1] ||
                 (g == gcov[cap - 1] && i <= icov[cap - 1])) {
        continue;
      }
      while (pos > 0 && (gcov[pos - 1] < g ||
                         (gcov[pos - 1] == g && icov[pos - 1] < i))) {
        gcov[pos] = gcov[pos - 1];
        icov[pos] = icov[pos - 1];
        node[pos] = node[pos - 1];
        --pos;
      }
      gcov[pos] = g;
      icov[pos] = i;
      node[pos] = nb;
    }
    if (count == 0) return {0, true, false};  // stuck
    for (int i = 0; i < count; ++i) out[static_cast<std::size_t>(i)] = node[i];
    return {count, false, false};
  };
}

// ---------------------------------------------------------------------------
// audit hooks
//
// Battery composition per family (table in audit/auditor.h); every family
// starts with csr + hierarchy. These used to live in
// StructureAuditor::audit(family) as a name-dispatch chain.

constexpr int kAllLevels = std::numeric_limits<int>::max();

struct Battery {
  audit::StructureAuditor auditor;
  audit::AuditReport r;
  Battery(const OverlayNetwork& net, const LinkTable& links)
      : auditor(net, links) {
    auditor.check_csr(r);
    auditor.check_hierarchy(r);
  }
};

audit::AuditReport audit_chord(const OverlayNetwork& net,
                               const LinkTable& links) {
  Battery b(net, links);
  b.auditor.check_ring_closure(b.r, 0, 0);
  b.auditor.check_chord_fingers(b.r, /*hierarchical=*/false);
  return std::move(b.r);
}

audit::AuditReport audit_crescendo(const OverlayNetwork& net,
                                   const LinkTable& links) {
  Battery b(net, links);
  b.auditor.check_ring_closure(b.r, 0, kAllLevels);
  b.auditor.check_chord_fingers(b.r, /*hierarchical=*/true);
  return std::move(b.r);
}

audit::AuditReport audit_clique_crescendo(const OverlayNetwork& net,
                                          const LinkTable& links) {
  Battery b(net, links);
  b.auditor.check_ring_closure(b.r, 0, kAllLevels);
  b.auditor.check_expected(b.r, build_clique_crescendo(net),
                           "clique_crescendo.links");
  return std::move(b.r);
}

audit::AuditReport audit_flat_ring(const OverlayNetwork& net,
                                   const LinkTable& links) {
  Battery b(net, links);
  b.auditor.check_ring_closure(b.r, 0, 0);
  return std::move(b.r);
}

audit::AuditReport audit_level_rings(const OverlayNetwork& net,
                                     const LinkTable& links) {
  Battery b(net, links);
  b.auditor.check_ring_closure(b.r, 0, kAllLevels);
  return std::move(b.r);
}

audit::AuditReport audit_kademlia(const OverlayNetwork& net,
                                  const LinkTable& links) {
  Battery b(net, links);
  b.auditor.check_xor_buckets(b.r, /*hierarchical=*/false);
  return std::move(b.r);
}

audit::AuditReport audit_kandy(const OverlayNetwork& net,
                               const LinkTable& links) {
  Battery b(net, links);
  b.auditor.check_xor_buckets(b.r, /*hierarchical=*/true);
  return std::move(b.r);
}

audit::AuditReport audit_can(const OverlayNetwork& net,
                             const LinkTable& links) {
  Battery b(net, links);
  const ZoneTree tree(net, net.ring().members());
  const auto zones =
      audit::StructureAuditor::extract_zones(tree, net.ring().members());
  b.auditor.check_zone_list(b.r, zones, 0);
  b.auditor.check_can_links(b.r, tree, net.ring().members(), 0,
                            /*exact=*/true);
  return std::move(b.r);
}

audit::AuditReport audit_cancan(const OverlayNetwork& net,
                                const LinkTable& links) {
  Battery b(net, links);
  const CanCanNetwork cc(net);
  const DomainTree& dom = net.domains();
  for (int d = 0; d < dom.domain_count(); ++d) {
    const auto& members = dom.domain(d).members;
    const auto zones =
        audit::StructureAuditor::extract_zones(cc.tree(d), members);
    b.auditor.check_zone_list(b.r, zones, dom.domain(d).depth);
  }
  // Every node keeps all CAN edges of its leaf domain's partition.
  std::vector<std::vector<std::uint32_t>> leaf_members(
      static_cast<std::size_t>(dom.domain_count()));
  for (std::uint32_t m = 0; m < net.size(); ++m) {
    leaf_members[static_cast<std::size_t>(dom.domain_chain(m).back())]
        .push_back(m);
  }
  for (int d = 0; d < dom.domain_count(); ++d) {
    const auto& members = leaf_members[static_cast<std::size_t>(d)];
    if (members.empty()) continue;
    b.auditor.check_can_links(b.r, cc.tree(d), members, dom.domain(d).depth,
                              /*exact=*/false);
  }
  b.auditor.check_expected(b.r, cc.links(), "cancan.links");
  return std::move(b.r);
}

audit::AuditReport audit_chord_prox(const OverlayNetwork& net,
                                    const LinkTable& links) {
  Battery b(net, links);
  const GroupedOverlay groups(net, ProximityConfig{}.target_group_size);
  b.auditor.check_group_cliques(b.r, groups);
  return std::move(b.r);
}

audit::AuditReport audit_crescendo_prox(const OverlayNetwork& net,
                                        const LinkTable& links) {
  Battery b(net, links);
  const GroupedOverlay groups(net, ProximityConfig{}.target_group_size);
  b.auditor.check_group_cliques(b.r, groups);
  // Below the root the structure is plain Crescendo; the top-level merge
  // is group-based and not per-node ring-closed.
  b.auditor.check_ring_closure(b.r, 1, kAllLevels);
  return std::move(b.r);
}

// ---------------------------------------------------------------------------
// the table (canonical doctor-report order)

constexpr FamilyEntry kFamilies[] = {
    {"chord", build_chord_hook, make_ring_router, audit_chord,
     make_ring_stepper},
    {"symphony", build_symphony_hook, make_ring_router, audit_flat_ring,
     make_ring_stepper},
    {"nondet_chord", build_nondet_chord_hook, make_ring_router,
     audit_flat_ring, make_ring_stepper},
    {"kademlia", build_kademlia_hook, make_xor_router, audit_kademlia,
     make_xor_stepper},
    {"can", build_can_hook, make_can_router, audit_can, make_can_stepper},
    {"crescendo", build_crescendo_hook, make_ring_router, audit_crescendo,
     make_ring_stepper},
    {"clique_crescendo", build_clique_crescendo_hook, make_ring_router,
     audit_clique_crescendo, make_ring_stepper},
    {"cacophony", build_cacophony_hook, make_ring_router, audit_level_rings,
     make_ring_stepper},
    {"nondet_crescendo", build_nondet_crescendo_hook, make_ring_router,
     audit_level_rings, make_ring_stepper},
    {"kandy", build_kandy_hook, make_xor_router, audit_kandy,
     make_xor_stepper},
    {"cancan", build_cancan_hook, make_cancan_router, audit_cancan,
     make_cancan_stepper},
    {"chord_prox", build_chord_prox_hook, make_group_router,
     audit_chord_prox, make_group_stepper},
    {"crescendo_prox", build_crescendo_prox_hook, make_group_router,
     audit_crescendo_prox, make_group_stepper},
};

constexpr std::size_t kFamilyCount = std::size(kFamilies);

constexpr std::array<std::string_view, kFamilyCount> make_names() {
  std::array<std::string_view, kFamilyCount> names{};
  for (std::size_t i = 0; i < kFamilyCount; ++i) names[i] = kFamilies[i].name;
  return names;
}
constexpr std::array<std::string_view, kFamilyCount> kNames = make_names();

}  // namespace

std::span<const FamilyEntry> families() { return kFamilies; }

std::span<const std::string_view> family_names() { return kNames; }

bool is_family(std::string_view name) {
  for (const FamilyEntry& e : kFamilies) {
    if (e.name == name) return true;
  }
  return false;
}

std::string family_list() {
  std::string out;
  for (const FamilyEntry& e : kFamilies) {
    if (!out.empty()) out += ", ";
    out += e.name;
  }
  return out;
}

const FamilyEntry& family(std::string_view name) {
  for (const FamilyEntry& e : kFamilies) {
    if (e.name == name) return e;
  }
  throw std::invalid_argument("unknown family '" + std::string(name) +
                              "' (families: " + family_list() + ")");
}

LinkTable build_family(const OverlayNetwork& net, std::string_view name,
                       std::uint64_t seed) {
  Rng rng(seed * 2 + 1);
  return family(name).build(net, rng);
}

audit::AuditReport audit_family(std::string_view name,
                                const OverlayNetwork& net,
                                const LinkTable& links) {
  return family(name).audit(net, links);
}

}  // namespace canon::registry
