// Interleaved batch probe driver: the memory-level-parallelism engine
// behind RingRouter/XorRouter/GroupRouter::probe_batch.
//
// Greedy DHT routing is a chain of dependent random accesses — each hop's
// CSR row address is known only after the previous row is scanned — so a
// single lookup cannot hide DRAM latency. A *batch* of lookups can: the
// driver keeps a window of W independent queries ("lanes") in flight and
// advances each by one greedy hop per round, in two passes:
//
//   fetch pass   — every lane reads its row bounds (prefetched at the end
//                  of the previous round) and issues prefetches for the
//                  row payload (inline NodeIds + target indices).
//   advance pass — every lane scans its now-arriving row, picks the same
//                  winner the scalar core would, and prefetches the next
//                  node's row bounds.
//
// This is classic group prefetching (a static sibling of AMAC): by the
// time lane i's scan runs, its row has been streaming in while the other
// W-1 lanes were scanned, so one lane's cache miss overlaps the others'
// compute. Finished lanes retire their RouteProbe and refill from the
// remaining queries, keeping the window full until the batch drains.
//
// Determinism: prefetches are scheduling hints and every lane executes
// the scalar hop sequence unchanged, so out[i] is bit-identical to
// probe(queries[i]) at every width — the equivalence contract
// tests/batch_probe_test.cc pins for all families.
//
// Internal header: included by routing.cc and canon/proximity.cc only.
// The Stepper supplies the metric-specific pieces:
//
//   struct Stepper {
//     struct Lane { std::size_t query_index; ... };
//     void begin(Lane&, const Query&, std::size_t query_index) const;
//     void fetch(Lane&) const;    // read bounds, prefetch row payload
//     bool advance(Lane&, RouteProbe& out) const;  // one greedy hop;
//                                 // true = done, `out` is the result
//   };
#ifndef CANON_OVERLAY_BATCH_PROBE_H
#define CANON_OVERLAY_BATCH_PROBE_H

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

#include "common/ids.h"
#include "overlay/routing.h"

namespace canon::detail {

/// Runs `queries` through `st` with a window of `width` lanes (clamped to
/// [1, kMaxProbeBatchWidth] and to the batch size). Writes one RouteProbe
/// per query, in query order.
template <typename Stepper>
void interleaved_probe_batch(std::span<const Query> queries,
                             std::span<RouteProbe> out, int width,
                             const Stepper& st) {
  using Lane = typename Stepper::Lane;
  const std::size_t n = queries.size();
  const std::size_t w = std::min(
      n, static_cast<std::size_t>(std::clamp(width, 1, kMaxProbeBatchWidth)));

  std::array<Lane, kMaxProbeBatchWidth> lanes;
  std::size_t next = 0;
  std::size_t active = 0;
  for (; active < w; ++active, ++next) {
    st.begin(lanes[active], queries[next], next);
  }
  while (active > 0) {
    for (std::size_t i = 0; i < active; ++i) st.fetch(lanes[i]);
    for (std::size_t i = 0; i < active;) {
      RouteProbe result;
      if (!st.advance(lanes[i], result)) {
        ++i;
        continue;
      }
      out[lanes[i].query_index] = result;
      if (next < n) {
        // Refill in place; the fresh lane fetches at the top of the next
        // round, so its begin() prefetches get a full round of cover.
        st.begin(lanes[i], queries[next], next);
        ++next;
        ++i;
      } else {
        // Batch drained: compact the window (order within the window is
        // irrelevant — lanes are independent and retire by query_index).
        lanes[i] = lanes[--active];
      }
    }
  }
}

/// Index of the scalar ring winner in `ids[0..count)`, or kNoScanWinner.
/// Branch-light restatement of the ring_core scan: a neighbor covering
/// `covered` clockwise distance is valid iff 0 < covered <= remaining;
/// overshooters are masked to 0 and a strict running max keeps the
/// first-best index — exactly the scalar loop's `covered <= remaining &&
/// covered > best_covered` (best_covered starts at 0, so covered == 0
/// never wins there either).
inline constexpr std::size_t kNoScanWinner = static_cast<std::size_t>(-1);

inline std::size_t ring_scan_argbest(const NodeId* ids, std::size_t count,
                                     NodeId cur_id, std::uint64_t mask,
                                     std::uint64_t remaining) {
  std::size_t best_j = kNoScanWinner;
  std::uint64_t best_covered = 0;
  for (std::size_t j = 0; j < count; ++j) {
    const std::uint64_t covered = (ids[j] - cur_id) & mask;
    const std::uint64_t masked = covered <= remaining ? covered : 0;
    if (masked > best_covered) {
      best_covered = masked;
      best_j = j;
    }
  }
  return best_j;
}

/// Index of the scalar XOR winner in `ids[0..count)`, or kNoScanWinner:
/// running argmin of xor-distance seeded with the current node's own
/// distance, strict `<` keeping the first-best index — the xor_core loop
/// verbatim.
inline std::size_t xor_scan_argbest(const NodeId* ids, std::size_t count,
                                    NodeId key, std::uint64_t mask,
                                    std::uint64_t remaining) {
  std::size_t best_j = kNoScanWinner;
  std::uint64_t best_d = remaining;
  for (std::size_t j = 0; j < count; ++j) {
    const std::uint64_t d = (ids[j] ^ key) & mask;
    if (d < best_d) {
      best_d = d;
      best_j = j;
    }
  }
  return best_j;
}

}  // namespace canon::detail

#endif  // CANON_OVERLAY_BATCH_PROBE_H
