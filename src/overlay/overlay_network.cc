#include "overlay/overlay_network.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace canon {

/// ID-sorted, validated structure-of-arrays bundle.
struct OverlayNetwork::Soa {
  std::vector<NodeId> ids;
  DomainPathPool paths;
  std::vector<std::int32_t> attach;
};

/// Validates IDs against the space, then sorts the parallel arrays by ID
/// (one permutation applied to every array) and rejects duplicates. The
/// permutation is applied with gathers into fresh arrays: O(n) extra for
/// the array being permuted, never one allocation per node.
OverlayNetwork::Soa OverlayNetwork::sort_by_id(
    IdSpace space, std::vector<NodeId> ids, DomainPathPool paths,
    std::vector<std::int32_t> attach) {
  const std::size_t n = ids.size();
  if (paths.offsets.empty()) paths.offsets.push_back(0);
  if (paths.size() != n) {
    throw std::invalid_argument("OverlayNetwork: ids/paths size mismatch");
  }
  if (!attach.empty() && attach.size() != n) {
    throw std::invalid_argument("OverlayNetwork: ids/attach size mismatch");
  }
  for (const NodeId id : ids) {
    if (id != space.wrap(id)) {
      throw std::invalid_argument("OverlayNetwork: ID outside the IdSpace");
    }
  }
  std::vector<NodeIndex> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](NodeIndex a, NodeIndex b) { return ids[a] < ids[b]; });

  Soa out;
  out.ids.resize(n);
  for (std::size_t i = 0; i < n; ++i) out.ids[i] = ids[order[i]];
  for (std::size_t i = 1; i < n; ++i) {
    if (out.ids[i - 1] == out.ids[i]) {
      throw std::invalid_argument("OverlayNetwork: duplicate node IDs");
    }
  }
  ids.clear();
  ids.shrink_to_fit();

  out.paths.offsets.reserve(n + 1);
  out.paths.offsets.push_back(0);
  out.paths.branches.reserve(paths.branches.size());
  for (std::size_t i = 0; i < n; ++i) {
    const DomainPathView p = paths.view(order[i]);
    out.paths.branches.insert(out.paths.branches.end(), p.branches().begin(),
                              p.branches().end());
    out.paths.offsets.push_back(
        static_cast<std::uint32_t>(out.paths.branches.size()));
  }
  if (!attach.empty()) {
    out.attach.resize(n);
    for (std::size_t i = 0; i < n; ++i) out.attach[i] = attach[order[i]];
  }
  return out;
}

// ---------------------------------------------------------------- RingView

std::size_t RingView::successor_pos(NodeId key) const {
  if (members_.empty()) throw std::logic_error("RingView: empty view");
  // First member with id >= key; wrap to position 0 if none.
  const auto cmp = [this](NodeIndex m, NodeId k) {
    return (*ids_)[m] < k;
  };
  const auto it = std::lower_bound(members_.begin(), members_.end(), key, cmp);
  return it == members_.end() ? 0
                              : static_cast<std::size_t>(it - members_.begin());
}

NodeIndex RingView::successor(NodeId key) const {
  return members_[successor_pos(key)];
}

NodeIndex RingView::predecessor_or_self(NodeId key) const {
  if (members_.empty()) throw std::logic_error("RingView: empty view");
  const std::size_t pos = successor_pos(key);
  // If the successor sits exactly on the key, it manages the key itself;
  // otherwise the manager is the member just before the successor.
  if ((*ids_)[members_[pos]] == key) return members_[pos];
  return members_[(pos + members_.size() - 1) % members_.size()];
}

NodeIndex RingView::first_at_distance(NodeId from,
                                      std::uint64_t dist) const {
  if (members_.empty()) throw std::logic_error("RingView: empty view");
  if (dist > space_.mask()) return kNone;
  return successor(space_.advance(from, dist));
}

std::size_t RingView::count_in(NodeId lo, std::uint64_t len) const {
  if (members_.empty() || len == 0) return 0;
  if (space_.bits() < 64 && len >= (std::uint64_t{1} << space_.bits())) {
    return members_.size();
  }
  const NodeId hi = space_.advance(lo, len);  // exclusive end
  const auto cmp = [this](NodeIndex m, NodeId k) {
    return (*ids_)[m] < k;
  };
  const std::size_t plo = static_cast<std::size_t>(
      std::lower_bound(members_.begin(), members_.end(), lo, cmp) -
      members_.begin());
  const std::size_t phi = static_cast<std::size_t>(
      std::lower_bound(members_.begin(), members_.end(), hi, cmp) -
      members_.begin());
  if (lo < hi) {
    // Non-wrapping interval [lo, hi).
    return phi - plo;
  }
  // Wrapping interval: [lo, 2^N) plus [0, hi). (lo == hi means the full
  // ring, which the same expression handles.)
  return (members_.size() - plo) + phi;
}

NodeIndex RingView::select_in(NodeId lo, std::uint64_t len,
                              std::size_t k) const {
  if (k >= count_in(lo, len)) {
    throw std::out_of_range("RingView::select_in: k out of range");
  }
  const std::size_t start = successor_pos(lo);
  return members_[(start + k) % members_.size()];
}

std::uint64_t RingView::successor_distance(NodeId from) const {
  if (members_.empty()) throw std::logic_error("RingView: empty view");
  const NodeIndex succ = successor(space_.advance(from, 1));
  const std::uint64_t d = space_.ring_distance(from, (*ids_)[succ]);
  if (d == 0) {
    // The only member ahead is `from` itself: the view is a singleton
    // containing from. Treat the distance as unbounded.
    return std::numeric_limits<std::uint64_t>::max();
  }
  return d;
}

// ---------------------------------------------------------- OverlayNetwork

OverlayNetwork::OverlayNetwork(IdSpace space, std::vector<NodeId> ids,
                               DomainPathPool paths,
                               std::vector<std::int32_t> attach)
    : OverlayNetwork(space, sort_by_id(space, std::move(ids), std::move(paths),
                                       std::move(attach))) {}

OverlayNetwork::OverlayNetwork(IdSpace space, Soa soa)
    : space_(space),
      ids_(std::move(soa.ids)),
      paths_(std::move(soa.paths)),
      attach_(std::move(soa.attach)),
      tree_({paths_.offsets.data(), paths_.offsets.size()},
            {paths_.branches.data(), paths_.branches.size()}, ids_) {
  mem_soa_.reset("overlay.soa", telemetry::vector_bytes(ids_) +
                                    telemetry::vector_bytes(attach_));
  mem_paths_.reset("hierarchy.path_pool", paths_.memory_bytes());
  mem_tree_.reset("hierarchy.domain_tree", tree_.memory_bytes());
}

OverlayNetwork::Soa OverlayNetwork::soa_from_nodes(
    const std::vector<OverlayNode>& nodes) {
  Soa soa;
  soa.ids.reserve(nodes.size());
  soa.paths.offsets.reserve(nodes.size() + 1);
  soa.attach.resize(nodes.size());
  std::size_t i = 0;
  for (const OverlayNode& n : nodes) {
    soa.ids.push_back(n.id);
    soa.paths.push_back(n.domain.view());
    soa.attach[i++] = n.attach;
  }
  if (soa.paths.offsets.empty()) soa.paths.offsets.push_back(0);
  return soa;
}

OverlayNetwork::OverlayNetwork(IdSpace space, std::vector<OverlayNode> nodes)
    : OverlayNetwork(space,
                     [&] {
                       Soa soa = soa_from_nodes(nodes);
                       return sort_by_id(space, std::move(soa.ids),
                                         std::move(soa.paths),
                                         std::move(soa.attach));
                     }()) {}

RingView OverlayNetwork::ring() const {
  return domain_ring(tree_.root());
}

RingView OverlayNetwork::domain_ring(int d) const {
  const auto& members = tree_.domain(d).members;
  return RingView(space_, ids_, {members.data(), members.size()});
}

NodeIndex OverlayNetwork::responsible(NodeId key) const {
  return ring().predecessor_or_self(key);
}

NodeIndex OverlayNetwork::xor_closest(NodeId key) const {
  if (ids_.empty()) throw std::logic_error("OverlayNetwork: empty");
  // Walk the bits of the key from the top, keeping the range of sorted IDs
  // that matches the best achievable prefix.
  std::size_t lo = 0;
  std::size_t hi = ids_.size();
  NodeId prefix = 0;
  for (int b = space_.bits() - 1; b >= 0; --b) {
    if (hi - lo == 1) break;
    const NodeId want = prefix | (key & (NodeId{1} << b));
    // Split [lo, hi) at the first ID whose bit b is 1 (IDs are sorted, and
    // all share `prefix` above bit b).
    const NodeId split = prefix | (NodeId{1} << b);
    const auto it = std::lower_bound(ids_.begin() + static_cast<long>(lo),
                                     ids_.begin() + static_cast<long>(hi),
                                     split);
    const std::size_t mid = static_cast<std::size_t>(it - ids_.begin());
    const bool want_one = (want >> b) & 1;
    const bool preferred_nonempty = want_one ? (mid < hi) : (lo < mid);
    // Descend into the preferred subtree when possible, otherwise into the
    // (necessarily non-empty) other one.
    const bool take_one = preferred_nonempty ? want_one : !want_one;
    if (take_one) {
      lo = mid;
      prefix = split;
    } else {
      hi = mid;
    }
  }
  return static_cast<NodeIndex>(lo);
}

NodeIndex OverlayNetwork::index_of(NodeId id) const {
  const auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
  if (it == ids_.end() || *it != id) {
    throw std::invalid_argument("OverlayNetwork::index_of: unknown ID");
  }
  return static_cast<NodeIndex>(it - ids_.begin());
}

}  // namespace canon
