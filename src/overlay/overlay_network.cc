#include "overlay/overlay_network.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace canon {

namespace {

std::vector<OverlayNode> sort_by_id(std::vector<OverlayNode> nodes,
                                    const IdSpace& space) {
  for (const auto& n : nodes) {
    if (n.id != space.wrap(n.id)) {
      throw std::invalid_argument("OverlayNetwork: ID outside the IdSpace");
    }
  }
  std::sort(nodes.begin(), nodes.end(),
            [](const OverlayNode& a, const OverlayNode& b) {
              return a.id < b.id;
            });
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    if (nodes[i - 1].id == nodes[i].id) {
      throw std::invalid_argument("OverlayNetwork: duplicate node IDs");
    }
  }
  return nodes;
}

std::vector<NodeId> extract_ids(const std::vector<OverlayNode>& nodes) {
  std::vector<NodeId> ids;
  ids.reserve(nodes.size());
  for (const auto& n : nodes) ids.push_back(n.id);
  return ids;
}

std::vector<DomainPath> extract_paths(const std::vector<OverlayNode>& nodes) {
  std::vector<DomainPath> paths;
  paths.reserve(nodes.size());
  for (const auto& n : nodes) paths.push_back(n.domain);
  return paths;
}

}  // namespace

// ---------------------------------------------------------------- RingView

std::size_t RingView::successor_pos(NodeId key) const {
  if (members_.empty()) throw std::logic_error("RingView: empty view");
  // First member with id >= key; wrap to position 0 if none.
  const auto cmp = [this](std::uint32_t m, NodeId k) {
    return (*ids_)[m] < k;
  };
  const auto it = std::lower_bound(members_.begin(), members_.end(), key, cmp);
  return it == members_.end() ? 0
                              : static_cast<std::size_t>(it - members_.begin());
}

std::uint32_t RingView::successor(NodeId key) const {
  return members_[successor_pos(key)];
}

std::uint32_t RingView::predecessor_or_self(NodeId key) const {
  if (members_.empty()) throw std::logic_error("RingView: empty view");
  const std::size_t pos = successor_pos(key);
  // If the successor sits exactly on the key, it manages the key itself;
  // otherwise the manager is the member just before the successor.
  if ((*ids_)[members_[pos]] == key) return members_[pos];
  return members_[(pos + members_.size() - 1) % members_.size()];
}

std::uint32_t RingView::first_at_distance(NodeId from,
                                          std::uint64_t dist) const {
  if (members_.empty()) throw std::logic_error("RingView: empty view");
  if (dist > space_.mask()) return kNone;
  return successor(space_.advance(from, dist));
}

std::size_t RingView::count_in(NodeId lo, std::uint64_t len) const {
  if (members_.empty() || len == 0) return 0;
  if (space_.bits() < 64 && len >= (std::uint64_t{1} << space_.bits())) {
    return members_.size();
  }
  const NodeId hi = space_.advance(lo, len);  // exclusive end
  const auto cmp = [this](std::uint32_t m, NodeId k) {
    return (*ids_)[m] < k;
  };
  const std::size_t plo = static_cast<std::size_t>(
      std::lower_bound(members_.begin(), members_.end(), lo, cmp) -
      members_.begin());
  const std::size_t phi = static_cast<std::size_t>(
      std::lower_bound(members_.begin(), members_.end(), hi, cmp) -
      members_.begin());
  if (lo < hi) {
    // Non-wrapping interval [lo, hi).
    return phi - plo;
  }
  // Wrapping interval: [lo, 2^N) plus [0, hi). (lo == hi means the full
  // ring, which the same expression handles.)
  return (members_.size() - plo) + phi;
}

std::uint32_t RingView::select_in(NodeId lo, std::uint64_t len,
                                  std::size_t k) const {
  if (k >= count_in(lo, len)) {
    throw std::out_of_range("RingView::select_in: k out of range");
  }
  const std::size_t start = successor_pos(lo);
  return members_[(start + k) % members_.size()];
}

std::uint64_t RingView::successor_distance(NodeId from) const {
  if (members_.empty()) throw std::logic_error("RingView: empty view");
  const std::uint32_t succ = successor(space_.advance(from, 1));
  const std::uint64_t d = space_.ring_distance(from, (*ids_)[succ]);
  if (d == 0) {
    // The only member ahead is `from` itself: the view is a singleton
    // containing from. Treat the distance as unbounded.
    return std::numeric_limits<std::uint64_t>::max();
  }
  return d;
}

// ---------------------------------------------------------- OverlayNetwork

OverlayNetwork::OverlayNetwork(IdSpace space, std::vector<OverlayNode> nodes)
    : space_(space),
      nodes_(sort_by_id(std::move(nodes), space)),
      ids_(extract_ids(nodes_)),
      tree_(extract_paths(nodes_), ids_) {}

RingView OverlayNetwork::ring() const {
  return domain_ring(tree_.root());
}

RingView OverlayNetwork::domain_ring(int d) const {
  const auto& members = tree_.domain(d).members;
  return RingView(space_, ids_, {members.data(), members.size()});
}

std::uint32_t OverlayNetwork::responsible(NodeId key) const {
  return ring().predecessor_or_self(key);
}

std::uint32_t OverlayNetwork::xor_closest(NodeId key) const {
  if (nodes_.empty()) throw std::logic_error("OverlayNetwork: empty");
  // Walk the bits of the key from the top, keeping the range of sorted IDs
  // that matches the best achievable prefix.
  std::size_t lo = 0;
  std::size_t hi = nodes_.size();
  NodeId prefix = 0;
  for (int b = space_.bits() - 1; b >= 0; --b) {
    if (hi - lo == 1) break;
    const NodeId want = prefix | (key & (NodeId{1} << b));
    // Split [lo, hi) at the first ID whose bit b is 1 (IDs are sorted, and
    // all share `prefix` above bit b).
    const NodeId split = prefix | (NodeId{1} << b);
    const auto it = std::lower_bound(ids_.begin() + static_cast<long>(lo),
                                     ids_.begin() + static_cast<long>(hi),
                                     split);
    const std::size_t mid = static_cast<std::size_t>(it - ids_.begin());
    const bool want_one = (want >> b) & 1;
    const bool preferred_nonempty = want_one ? (mid < hi) : (lo < mid);
    // Descend into the preferred subtree when possible, otherwise into the
    // (necessarily non-empty) other one.
    const bool take_one = preferred_nonempty ? want_one : !want_one;
    if (take_one) {
      lo = mid;
      prefix = split;
    } else {
      hi = mid;
    }
  }
  return static_cast<std::uint32_t>(lo);
}

std::uint32_t OverlayNetwork::index_of(NodeId id) const {
  const auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
  if (it == ids_.end() || *it != id) {
    throw std::invalid_argument("OverlayNetwork::index_of: unknown ID");
  }
  return static_cast<std::uint32_t>(it - ids_.begin());
}

}  // namespace canon
