// The family registry: one table describing every buildable overlay
// family, replacing the `if (family == ...)` dispatch chains that used to
// be triplicated across canon_doctor, the family benches, and the
// structure auditor.
//
// Each of the 13 families contributes one FamilyEntry:
//
//   build(net, rng)         the family's link-table construction under the
//                           shared experiment conventions (randomized
//                           families draw from `rng`; deterministic ones
//                           ignore it; the proximity families use the
//                           synthetic latency oracle and default
//                           ProximityConfig)
//   make_router(net, links) the family's concrete router(s) wrapped for
//                           QueryEngine batches — plain and failure-aware
//   audit(net, links)       the StructureAuditor battery composition the
//                           construction guarantees
//
// The FamilyRouter returned by make_router type-erases at *batch*
// granularity only: one std::function call runs a whole workload, inside
// which the concrete template cores (RingRouter, XorRouter, GroupRouter,
// Resilient*) route every query with zero virtual dispatch — the hot-path
// contract of overlay/routing.h is untouched.
//
// This header pulls in every family, so it lives in its own library
// (canon_registry, on top of canon_core/canon_dht/canon_audit) even though
// the file sits beside the overlay layer it serves.
#ifndef CANON_OVERLAY_FAMILY_REGISTRY_H
#define CANON_OVERLAY_FAMILY_REGISTRY_H

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "audit/auditor.h"
#include "common/rng.h"
#include "overlay/fault_plan.h"
#include "overlay/link_table.h"
#include "overlay/overlay_network.h"
#include "overlay/query_engine.h"
#include "overlay/stepper.h"

namespace canon::registry {

/// A built family's routers, wrapped for batch execution. Copyable; the
/// closures share ownership of the concrete router plus whatever auxiliary
/// structure it needs (ZoneTree, CanCanNetwork, GroupedOverlay), while
/// `net` and `links` passed to make_router are borrowed and must outlive
/// the FamilyRouter.
struct FamilyRouter {
  using RunFn = std::function<QueryStats(
      const QueryEngine&, std::span<const Query>, std::vector<RouteProbe>*)>;
  using RunResilientFn = std::function<ResilientStats(
      const QueryEngine&, std::span<const Query>, const FaultPlan&,
      std::vector<RouteProbe>*)>;
  using RunResilientWithFn = std::function<ResilientStats(
      const QueryEngine&, std::span<const Query>, const FailureSet&,
      const FaultPlan&, std::vector<RouteProbe>*)>;

  RunFn run_fn;
  RunResilientFn resilient_fn;
  RunResilientWithFn resilient_with_fn;

  /// Plain batch, exactly what engine.run(queries, <concrete router>)
  /// would produce.
  QueryStats run(const QueryEngine& engine, std::span<const Query> queries,
                 std::vector<RouteProbe>* per_query = nullptr) const {
    return run_fn(engine, queries, per_query);
  }

  /// Failure-aware batch through the family's resilient core; with an
  /// empty plan the stats match run() field-for-field.
  ResilientStats run_resilient(const QueryEngine& engine,
                               std::span<const Query> queries,
                               const FaultPlan& plan,
                               std::vector<RouteProbe>* per_query =
                                   nullptr) const {
    return resilient_fn(engine, queries, plan, per_query);
  }

  /// Same over an already-materialized FailureSet — for callers that also
  /// audit or journal the dead set themselves.
  ResilientStats run_resilient_with(const QueryEngine& engine,
                                    std::span<const Query> queries,
                                    const FailureSet& dead,
                                    const FaultPlan& plan,
                                    std::vector<RouteProbe>* per_query =
                                        nullptr) const {
    return resilient_with_fn(engine, queries, dead, plan, per_query);
  }
};

/// One row of the registry. Plain function pointers: entries are a static
/// table, not runtime-registered plugins.
struct FamilyEntry {
  std::string_view name;

  /// Builds the family's link table. Deterministic constructions ignore
  /// `rng`; callers wanting the shared experiment conventions should use
  /// build_family(), which seeds the stream the way every figure does.
  LinkTable (*build)(const OverlayNetwork& net, Rng& rng);

  /// Wraps the family's routers over an already-built table. The CAN
  /// families reconstruct their deterministic zone trees from `net`
  /// internally (Can-Can routes over its own rebuilt tables, which equal
  /// any `links` produced by build()).
  FamilyRouter (*make_router)(const OverlayNetwork& net,
                              const LinkTable& links);

  /// Runs the audit batteries the construction guarantees (battery table
  /// in audit/auditor.h). Every family starts with csr + hierarchy.
  audit::AuditReport (*audit)(const OverlayNetwork& net,
                              const LinkTable& links);

  /// Builds the family's resumable one-hop stepper (overlay/stepper.h)
  /// for the discrete-event simulators: candidate 0 reproduces the hop
  /// the family's greedy route() would take; later candidates feed
  /// α-parallel speculation. The CAN families rebuild their deterministic
  /// auxiliary structures from `net` and the returned closure owns them;
  /// `net` and `links` themselves are borrowed and must outlive the
  /// stepper.
  Stepper (*make_stepper)(const OverlayNetwork& net, const LinkTable& links);
};

/// All 13 families, in the canonical order the doctor reports them.
std::span<const FamilyEntry> families();

/// Name list / membership test, e.g. for validating --family flags.
std::span<const std::string_view> family_names();
bool is_family(std::string_view name);

/// "chord, symphony, ..." — for CLI usage and error messages.
std::string family_list();

/// Looks up one entry; throws std::invalid_argument naming every valid
/// family when `name` is unknown.
const FamilyEntry& family(std::string_view name);

/// Builds `name` under the shared experiment conventions used by
/// canon_doctor and tests/parallel_determinism_test.cc: randomized
/// families draw from Rng(seed * 2 + 1).
LinkTable build_family(const OverlayNetwork& net, std::string_view name,
                       std::uint64_t seed);

/// family(name).audit(net, links) — the one-call replacement for the old
/// StructureAuditor::audit(family).
audit::AuditReport audit_family(std::string_view name,
                                const OverlayNetwork& net,
                                const LinkTable& links);

}  // namespace canon::registry

#endif  // CANON_OVERLAY_FAMILY_REGISTRY_H
