// Failure-aware greedy routing for the ring and XOR families.
//
// The paper's leaf sets (Section 2.3) exist so routing survives node
// failures: when a finger or successor is dead, a node falls back to the
// next-best live neighbor, and ultimately to its per-level successor list.
// ResilientRingRouter routes over a link structure in the presence of a
// FailureSet: dead neighbors are skipped, and when a node's own links give
// no live progress, the leaf set (the next `leaf_set` successors at every
// level of its domain chain) is consulted — mirroring what a real
// deployment keeps in soft state. ResilientXorRouter is the Kademlia-style
// counterpart: greedy XOR descent over live neighbors with up to
// `retry_budget` (alpha) candidates retried per hop when forwarding
// attempts are dropped.
//
// Both routers follow the hot-path contract of overlay/routing.h:
// route_into/probe touch no telemetry and no mutable router state, take
// every per-query input (FailureSet, DropRoller, Scratch) by argument, and
// are therefore safe to run concurrently on one const router — the
// QueryEngine's resilient batch mode relies on that. With an empty
// FailureSet and inactive drops they take hop-for-hop the same path as the
// plain RingRouter/XorRouter on a healthy structure.
#ifndef CANON_OVERLAY_RESILIENT_ROUTING_H
#define CANON_OVERLAY_RESILIENT_ROUTING_H

#include <cstdint>
#include <vector>

#include "overlay/fault_plan.h"
#include "overlay/link_table.h"
#include "overlay/overlay_network.h"
#include "overlay/routing.h"

namespace canon {

class ResilientRingRouter {
 public:
  /// `leaf_set` = successors remembered per hierarchy level (paper: "each
  /// node maintains a list of successors at every level"); `retry_budget`
  /// = forwarding attempts per hop before the query is declared lost.
  ResilientRingRouter(const OverlayNetwork& net, const LinkTable& links,
                      int leaf_set = 4, int retry_budget = kRetryBudget);

  /// Caller-owned per-shard buffers; capacity is reused across queries
  /// (the allocation-free contract of the batch hot paths).
  struct Scratch {
    std::vector<std::uint32_t> leaf;    ///< leaf-set candidates of one hop
    std::vector<std::uint32_t> banned;  ///< candidates dropped this hop
  };

  /// Greedy clockwise routing from a live node, skipping dead neighbors
  /// and falling back to leaf-set successors; ok iff the terminal is the
  /// key's responsible node *among live nodes*. Writes the path into
  /// `out` (capacity reused). Throws std::invalid_argument on a dead
  /// source.
  ResilientProbe route_into(std::uint32_t from, NodeId key,
                            const FailureSet& dead, DropRoller& drops,
                            Scratch& scratch, Route& out) const;

  /// Terminal-only variant; same result fields, no path storage.
  ResilientProbe probe(std::uint32_t from, NodeId key, const FailureSet& dead,
                       DropRoller& drops, Scratch& scratch) const;

  /// Single-query convenience (storage, examples, tests): fresh buffers,
  /// no message drops.
  Route route(std::uint32_t from, NodeId key, const FailureSet& dead) const;

  /// The live node responsible for `key` (closest live predecessor).
  std::uint32_t live_responsible(NodeId key, const FailureSet& dead) const;

  /// Live leaf-set fallback candidates of `m`: the next `leaf_set` live
  /// successors at every level of its domain chain, collected into the
  /// caller-owned `out` (cleared first, capacity reused).
  void live_candidates(std::uint32_t m, const FailureSet& dead,
                       std::vector<std::uint32_t>& out) const;

 private:
  template <typename Recorder>
  ResilientProbe core(std::uint32_t from, NodeId key, const FailureSet& dead,
                      DropRoller& drops, Scratch& scratch,
                      Recorder&& record) const;

  const OverlayNetwork* net_;
  const LinkTable* links_;
  int leaf_set_;
  int retry_budget_;
  int max_hops_;
};

/// Failure-aware greedy XOR descent (Kademlia/Kandy). Per hop, up to
/// `retry_budget` live candidates are tried in order of XOR progress —
/// the alpha-parallel lookup of Maymounkov & Mazières collapsed onto a
/// simulator: a dropped attempt bans that candidate and the scan resumes.
class ResilientXorRouter {
 public:
  ResilientXorRouter(const OverlayNetwork& net, const LinkTable& links,
                     int retry_budget = kRetryBudget);

  struct Scratch {
    std::vector<std::uint32_t> banned;  ///< candidates dropped this hop
  };

  /// ok iff the terminal minimizes XOR distance to the key *among live
  /// nodes*. Throws std::invalid_argument on a dead source.
  ResilientProbe route_into(std::uint32_t from, NodeId key,
                            const FailureSet& dead, DropRoller& drops,
                            Scratch& scratch, Route& out) const;
  ResilientProbe probe(std::uint32_t from, NodeId key, const FailureSet& dead,
                       DropRoller& drops, Scratch& scratch) const;

  /// The live node minimizing XOR distance to `key`.
  std::uint32_t live_closest(NodeId key, const FailureSet& dead) const;

 private:
  template <typename Recorder>
  ResilientProbe core(std::uint32_t from, NodeId key, const FailureSet& dead,
                      DropRoller& drops, Scratch& scratch,
                      Recorder&& record) const;

  const OverlayNetwork* net_;
  const LinkTable* links_;
  int retry_budget_;
  int max_hops_;
};

}  // namespace canon

#endif  // CANON_OVERLAY_RESILIENT_ROUTING_H
