// Failure-aware greedy routing.
//
// The paper's leaf sets (Section 2.3) exist so routing survives node
// failures: when a finger or successor is dead, a node falls back to the
// next-best live neighbor, and ultimately to its per-level successor list.
// ResilientRingRouter simulates routing over a link structure in the
// presence of a failed-node set: dead neighbors are skipped, and when a
// node's own links give no live progress, the leaf set (the next `leaf_set`
// successors at every level of its domain chain) is consulted — mirroring
// what a real deployment keeps in soft state.
#ifndef CANON_OVERLAY_RESILIENT_ROUTING_H
#define CANON_OVERLAY_RESILIENT_ROUTING_H

#include <cstdint>
#include <vector>

#include "overlay/link_table.h"
#include "overlay/overlay_network.h"
#include "overlay/routing.h"

namespace canon {

/// Live/dead state for the population; nodes are alive by default.
class FailureSet {
 public:
  explicit FailureSet(std::size_t node_count) : dead_(node_count, false) {}

  void kill(std::uint32_t node) { dead_[node] = true; }
  void revive(std::uint32_t node) { dead_[node] = false; }
  bool dead(std::uint32_t node) const { return dead_[node]; }
  std::size_t dead_count() const;

 private:
  std::vector<bool> dead_;
};

class ResilientRingRouter {
 public:
  /// `leaf_set` = successors remembered per hierarchy level (paper: "each
  /// node maintains a list of successors at every level").
  ResilientRingRouter(const OverlayNetwork& net, const LinkTable& links,
                      const FailureSet& failures, int leaf_set = 4);

  /// Greedy clockwise routing from a live node, skipping dead neighbors
  /// and falling back to leaf-set successors. Route::ok is set iff the
  /// terminal is the key's responsible node *among live nodes*.
  Route route(std::uint32_t from, NodeId key) const;

  /// The live node responsible for `key` (closest live predecessor).
  std::uint32_t live_responsible(NodeId key) const;

 private:
  /// Candidate next hops from `m`: live link-table neighbors plus live
  /// leaf-set successors at every level.
  void live_candidates(std::uint32_t m,
                       std::vector<std::uint32_t>& out) const;

  const OverlayNetwork* net_;
  const LinkTable* links_;
  const FailureSet* failures_;
  int leaf_set_;
  int max_hops_;
};

}  // namespace canon

#endif  // CANON_OVERLAY_RESILIENT_ROUTING_H
