// Message-granularity discrete-event simulation of α-parallel lookups.
//
// EventSimulator (overlay/event_sim.h) models one message chain per
// lookup: useful for load homogeneity, blind to everything the paper's §5
// claims meet in a real deployment — queueing, timeouts, retry traffic,
// congestion collapse. MessageSimulator models each in-flight lookup as a
// *sequence of timestamped messages* through per-node bounded inboxes:
//
// * Iterative, source-coordinated rounds (the Kademlia shape): the lookup
//   holds a frontier node and a ranked candidate list from the family's
//   Stepper (overlay/stepper.h). Each round it keeps up to α REQUEST
//   probes outstanding against the best unresolved candidates.
// * A REQUEST pays link latency (the HopCost callback, e.g. a transit-stub
//   LandmarkLatency table; default_hop_ms otherwise), lands in the target's
//   bounded inbox (overflow ⇒ the message is dropped), waits for the node
//   to drain ahead-of-it work, pays service_ms, and sends a RESPONSE
//   carrying the step verdict back over the same link.
// * Every probe attempt arms a timeout (timeout_ms, multiplied by
//   `backoff` per retry). A probe whose response never arrives — crashed
//   node per the FaultPlan schedule, dropped request/response leg per the
//   plan's drop probability, inbox overflow, or plain congestion — is
//   resent up to retry_budget times, then marked failed and replaced by
//   the next ranked candidate.
// * The frontier advances via the *best-ranked* candidate that responds
//   (candidate 0 unless it permanently failed, then candidate 1, ...), so
//   with α=1 and no faults the frontier walks exactly the family's greedy
//   chain — hop counts match the QueryEngine probe on the same workload —
//   while α>1 buys warm backups at the cost of speculative load.
//
// Determinism contract: the engine is serial; the event heap drains in
// (time, sequence) order, so simultaneous events resolve identically on
// every run; drop decisions come from RNG streams forked per message
// attempt (root seed → fork(lookup) → fork(attempt)); nothing reads the
// wall clock or thread count. Reports derived from a run are therefore
// byte-identical at any --threads.
//
// Observers attach as one SimSinks bundle (overlay/sim_sinks.h), shared
// with EventSimulator; this engine additionally feeds SimSinks::load with
// every completed lookup's frontier path, so domain confinement and
// hotspot reports work under concurrent traffic.
#ifndef CANON_OVERLAY_MESSAGE_SIM_H
#define CANON_OVERLAY_MESSAGE_SIM_H

#include <array>
#include <cstdint>
#include <queue>
#include <span>
#include <vector>

#include "common/rng.h"
#include "overlay/fault_plan.h"
#include "overlay/link_table.h"
#include "overlay/metrics.h"
#include "overlay/overlay_network.h"
#include "overlay/sim_sinks.h"
#include "overlay/stepper.h"
#include "telemetry/load_stats.h"
#include "telemetry/metrics.h"

namespace canon::telemetry {
class EventJournal;  // telemetry/journal.h
}

namespace canon {

struct MessageSimConfig {
  /// Serial cost for a node to service one request (ms).
  double service_ms = 0.05;
  /// Per-message link latency when no HopCost callback is supplied.
  double default_hop_ms = 1.0;
  /// Outstanding probes per round (Kademlia's α). 1 = the iterative
  /// baseline; clamped by the candidate width below.
  int alpha = 1;
  /// Ranked candidates requested from the stepper per hop — the pool α
  /// probes draw from and timeouts fall back to.
  int candidates = kMaxStepCandidates;
  /// Bounded inbox: a request finding this many messages queued ahead of
  /// it at the target is dropped (counts as inbox_drops, recovers via the
  /// sender's timeout).
  int inbox_capacity = 64;
  /// First-attempt response deadline; attempt a waits
  /// timeout_ms * backoff^a.
  double timeout_ms = 8.0;
  double backoff = 2.0;
  /// Sends per candidate before it is marked failed (kRetryBudget: the
  /// ladder the resilient routing cores use).
  int retry_budget = kRetryBudget;
};

class MessageSimulator {
 public:
  /// `stepper` empty selects the greedy-clockwise ring stepper; pass a
  /// family's stepper from registry::family(name).make_stepper for any
  /// other family. `latency` empty charges default_hop_ms per message.
  /// Throws std::invalid_argument on un-finalized links or a config out
  /// of range.
  MessageSimulator(const OverlayNetwork& net, const LinkTable& links,
                   Stepper stepper = {}, HopCost latency = {},
                   MessageSimConfig config = {});

  struct LookupResult {
    std::uint32_t from = 0;
    NodeId key = 0;
    double issued_ms = 0;
    double completed_ms = -1;  ///< -1 until completed
    int hops = 0;              ///< frontier advances
    bool ok = false;
    int timeouts = 0;  ///< probe attempts that expired
    int retries = 0;   ///< expired attempts that were resent

    double latency_ms() const { return completed_ms - issued_ms; }
  };

  /// Whole-run message accounting.
  struct Totals {
    std::uint64_t sent = 0;        ///< REQUEST attempts put on the wire
    std::uint64_t serviced = 0;    ///< requests a live node processed
    std::uint64_t timeouts = 0;    ///< attempts that expired
    std::uint64_t retries = 0;     ///< expired attempts resent
    std::uint64_t link_drops = 0;  ///< request/response legs the plan dropped
    std::uint64_t inbox_drops = 0; ///< requests bounced off a full inbox
    std::uint64_t failures = 0;    ///< lookups completed unsuccessfully
  };

  /// Schedules a lookup; returns its index into lookups().
  int submit(std::uint32_t from, NodeId key, double at_ms);

  /// Drains the event heap; every submitted lookup completes (ok or not).
  void run();

  const std::vector<LookupResult>& lookups() const { return lookups_; }
  const Totals& totals() const { return totals_; }

  /// Requests serviced by each node over the run (routing load).
  const std::vector<std::uint64_t>& node_load() const { return load_; }

  /// Deepest inbox each node saw (messages queued ahead + the arrival).
  const std::vector<std::uint32_t>& max_queue_depth() const {
    return max_depth_;
  }

  /// Simulated clock after run().
  double now_ms() const { return now_; }

  /// Installs the observer bundle (overlay/sim_sinks.h); replaces the
  /// previous one, validates once. All of trace/journal/timeseries/
  /// fault_plan behave as on EventSimulator; `load` additionally receives
  /// every completed lookup's frontier path. The fault plan's drop
  /// probability applies per message leg here. Attach before run().
  void attach(const SimSinks& sinks);

  const SimSinks& sinks() const { return sinks_; }

  /// Live nodes right now (population minus crashed).
  std::size_t live_nodes() const { return dead_.size() - dead_.dead_count(); }

 private:
  enum class Kind : std::uint8_t { kStart, kArrive, kResponse, kTimeout };

  struct Event {
    double at_ms = 0;
    std::uint64_t seq = 0;  ///< tie-break: heap pops in (time, seq) order
    std::int32_t lookup = -1;
    std::int32_t probe = -1;
    std::int32_t attempt = 0;  ///< timeout staleness stamp
    Kind kind = Kind::kStart;

    bool operator>(const Event& other) const {
      if (at_ms != other.at_ms) return at_ms > other.at_ms;
      return seq > other.seq;
    }
  };

  struct Probe {
    std::int32_t lookup = -1;
    std::int32_t round = 0;
    std::int32_t cand_index = 0;
    NodeIndex target = 0;
    NodeIndex sent_from = 0;  ///< frontier at send time (response link)
    std::int32_t attempt = 0;
    bool responded = false;
    bool failed = false;
    bool response_lost = false;  ///< this attempt's response leg is doomed
    StepResult result;
    std::uint64_t state_after = 0;
    std::array<NodeIndex, kMaxStepCandidates> next_cands{};
  };

  struct Lookup {
    NodeIndex frontier = 0;
    std::uint64_t state = 0;
    std::int32_t round = 0;
    std::int32_t cand_count = 0;
    std::int32_t launched = 0;
    std::array<NodeIndex, kMaxStepCandidates> cands{};
    std::array<std::int32_t, kMaxStepCandidates> round_probes{};
    std::uint64_t attempt_seq = 0;  ///< forks the per-message drop streams
    std::vector<std::uint32_t> path;  ///< frontier chain, source first
  };

  void push_event(double at_ms, Kind kind, std::int32_t lookup,
                  std::int32_t probe, std::int32_t attempt = 0);
  double link_ms(NodeIndex a, NodeIndex b) const;
  void apply_faults_until(double now);
  void maybe_snapshot(double now);

  /// Services one request at `node` (queueing, load, depth); returns the
  /// service-completion time or a negative value when the message was
  /// lost (dead node or inbox overflow).
  double service(NodeIndex node, double at_ms);

  void start_lookup(std::int32_t lookup, double now);
  void launch_candidate(std::int32_t lookup, std::int32_t cand_index,
                        double now);
  void send_probe(std::int32_t probe, double now);
  void on_arrive(std::int32_t probe, std::int32_t attempt, double now);
  void on_response(std::int32_t probe, std::int32_t attempt, double now);
  void on_timeout(std::int32_t probe, std::int32_t attempt, double now);

  /// Advances/fails the lookup if its best-ranked candidate is decided.
  void check_round(std::int32_t lookup, double now);
  void advance(std::int32_t lookup, std::int32_t probe, double now);
  void begin_round(std::int32_t lookup, double now);
  void complete(std::int32_t lookup, bool ok, double now,
                NodeIndex terminal);

  bool lookup_open(std::int32_t lookup) const {
    return lookups_[static_cast<std::size_t>(lookup)].completed_ms < 0;
  }

  const OverlayNetwork* net_;
  const LinkTable* links_;
  Stepper stepper_;
  HopCost latency_;
  MessageSimConfig config_;
  int hop_guard_;

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::uint64_t next_seq_ = 0;
  double now_ = 0;

  std::vector<LookupResult> lookups_;
  std::vector<Lookup> state_;
  std::vector<Probe> probes_;
  Totals totals_;

  std::vector<std::uint64_t> load_;
  std::vector<double> busy_until_;
  std::vector<std::uint32_t> max_depth_;

  FailureSet dead_;
  std::vector<FaultEvent> fault_schedule_;  // stably sorted by time
  std::size_t next_fault_ = 0;
  bool rolling_drops_ = false;
  double drop_p_ = 0;
  Rng drop_base_{0};

  SimSinks sinks_;
  std::int64_t snapshots_emitted_ = 0;
  std::vector<std::uint64_t> trace_ids_;  // parallel to lookups_
  telemetry::LoadAccountant::Shard load_shard_;  // merged when run() drains

  telemetry::Counter* messages_counter_;
  telemetry::Counter* timeouts_counter_;
  telemetry::Counter* retries_counter_;
  telemetry::LatencyHistogram* queue_hist_;
};

/// Nearest-rank percentile (q in [0,1]) of completed lookups' end-to-end
/// latency; 0 when none completed. Pure function of the results array.
double lookup_latency_percentile(
    std::span<const MessageSimulator::LookupResult> lookups, double q);

}  // namespace canon

#endif  // CANON_OVERLAY_MESSAGE_SIM_H
