#include "overlay/message_sim.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "telemetry/journal.h"
#include "telemetry/timeseries.h"
#include "telemetry/trace.h"

namespace canon {

MessageSimulator::MessageSimulator(const OverlayNetwork& net,
                                   const LinkTable& links, Stepper stepper,
                                   HopCost latency, MessageSimConfig config)
    : net_(&net),
      links_(&links),
      stepper_(stepper ? std::move(stepper) : make_ring_stepper(net, links)),
      latency_(std::move(latency)),
      config_(config),
      hop_guard_(4 * net.space().bits() + 16),
      load_(net.size(), 0),
      busy_until_(net.size(), 0),
      max_depth_(net.size(), 0),
      dead_(net.size()),
      messages_counter_(telemetry::maybe_counter("message_sim.messages")),
      timeouts_counter_(telemetry::maybe_counter("message_sim.timeouts")),
      retries_counter_(telemetry::maybe_counter("message_sim.retries")),
      queue_hist_(telemetry::maybe_histogram("message_sim.queue_ms")) {
  if (!links.finalized()) {
    throw std::invalid_argument("MessageSimulator: links not finalized");
  }
  if (config_.candidates < 1 || config_.candidates > kMaxStepCandidates) {
    throw std::invalid_argument(
        "MessageSimulator: candidates must be in [1, kMaxStepCandidates]");
  }
  if (config_.alpha < 1 || config_.alpha > config_.candidates) {
    throw std::invalid_argument(
        "MessageSimulator: alpha must be in [1, candidates]");
  }
  if (config_.inbox_capacity < 1) {
    throw std::invalid_argument(
        "MessageSimulator: inbox_capacity must be >= 1");
  }
  if (config_.service_ms <= 0 || config_.timeout_ms <= 0) {
    throw std::invalid_argument(
        "MessageSimulator: service_ms and timeout_ms must be > 0");
  }
  if (config_.backoff < 1.0 || config_.retry_budget < 1) {
    throw std::invalid_argument(
        "MessageSimulator: backoff must be >= 1 and retry_budget >= 1");
  }
}

void MessageSimulator::attach(const SimSinks& sinks) {
  sinks.validate();
  if (sinks.fault_plan != sinks_.fault_plan) {
    fault_schedule_.clear();
    next_fault_ = 0;
    rolling_drops_ = false;
    drop_p_ = 0;
    if (sinks.fault_plan) {
      const auto events = sinks.fault_plan->events();
      fault_schedule_.assign(events.begin(), events.end());
      std::stable_sort(fault_schedule_.begin(), fault_schedule_.end(),
                       [](const FaultEvent& a, const FaultEvent& b) {
                         return a.at < b.at;
                       });
      if (sinks.fault_plan->has_drops()) {
        rolling_drops_ = true;
        drop_p_ = sinks.fault_plan->drop_probability();
        drop_base_ = Rng(sinks.fault_plan->drop_seed());
      }
    }
  }
  if (sinks.trace != sinks_.trace && sinks.trace) {
    for (std::size_t i = 0; i < lookups_.size(); ++i) {
      if (trace_ids_[i] == 0 && lookups_[i].completed_ms < 0) {
        trace_ids_[i] =
            sinks.trace->begin_lookup(lookups_[i].from, lookups_[i].key);
      }
    }
  }
  if (sinks.timeseries != sinks_.timeseries && sinks.timeseries) {
    for (const LookupResult& lk : lookups_) {
      if (lk.completed_ms < 0) sinks.timeseries->lookup_issued(lk.issued_ms);
    }
  }
  sinks_ = sinks;
}

int MessageSimulator::submit(std::uint32_t from, NodeId key, double at_ms) {
  if (from >= net_->size()) {
    throw std::out_of_range("MessageSimulator::submit: bad node");
  }
  LookupResult result;
  result.from = from;
  result.key = key;
  result.issued_ms = at_ms;
  const int id = static_cast<int>(lookups_.size());
  lookups_.push_back(result);
  Lookup lk;
  lk.frontier = from;
  lk.path.push_back(from);
  state_.push_back(std::move(lk));
  trace_ids_.push_back(
      sinks_.trace ? sinks_.trace->begin_lookup(from, key) : 0);
  if (sinks_.timeseries) sinks_.timeseries->lookup_issued(at_ms);
  push_event(at_ms, Kind::kStart, id, -1);
  return id;
}

void MessageSimulator::push_event(double at_ms, Kind kind,
                                  std::int32_t lookup, std::int32_t probe,
                                  std::int32_t attempt) {
  Event ev;
  ev.at_ms = at_ms;
  ev.seq = next_seq_++;
  ev.lookup = lookup;
  ev.probe = probe;
  ev.attempt = attempt;
  ev.kind = kind;
  queue_.push(ev);
}

double MessageSimulator::link_ms(NodeIndex a, NodeIndex b) const {
  return latency_ ? latency_(a, b) : config_.default_hop_ms;
}

void MessageSimulator::apply_faults_until(double now) {
  while (next_fault_ < fault_schedule_.size() &&
         static_cast<double>(fault_schedule_[next_fault_].at) <= now) {
    const FaultEvent& fe = fault_schedule_[next_fault_++];
    if (fe.kind == FaultEvent::Kind::kCrash) {
      dead_.kill(fe.node);
      if (sinks_.journal) {
        sinks_.journal->crash(fe.node, net_->id(fe.node), fe.at);
      }
    } else {
      dead_.revive(fe.node);
      if (sinks_.journal) {
        sinks_.journal->revive(fe.node, net_->id(fe.node), fe.at);
      }
    }
    if (sinks_.timeseries) {
      sinks_.timeseries->live_nodes(static_cast<double>(fe.at),
                                    static_cast<double>(live_nodes()));
    }
  }
}

void MessageSimulator::maybe_snapshot(double now) {
  if (!sinks_.journal || sinks_.snapshot_top_k <= 0) return;
  while (static_cast<double>(snapshots_emitted_ + 1) *
             sinks_.snapshot_window_ms <=
         now) {
    ++snapshots_emitted_;
    const double t =
        static_cast<double>(snapshots_emitted_) * sinks_.snapshot_window_ms;
    sinks_.journal->load_snapshot(
        t, telemetry::top_loaded_nodes(
               load_, static_cast<std::size_t>(sinks_.snapshot_top_k)));
  }
}

double MessageSimulator::service(NodeIndex node, double at_ms) {
  if (dead_.any() && dead_.dead(node)) return -1;
  // Inbox depth derived from the pending-work backlog: the node drains one
  // message per service_ms, so backlog / service_ms messages sit ahead of
  // this arrival.
  const double backlog = busy_until_[node] - at_ms;
  const std::uint32_t ahead =
      backlog <= 0 ? 0
                   : static_cast<std::uint32_t>(
                         std::ceil(backlog / config_.service_ms - 1e-9));
  if (ahead >= static_cast<std::uint32_t>(config_.inbox_capacity)) {
    ++totals_.inbox_drops;
    return -1;
  }
  max_depth_[node] = std::max(max_depth_[node], ahead + 1);
  const double start = std::max(at_ms, busy_until_[node]);
  const double done = start + config_.service_ms;
  busy_until_[node] = done;
  ++load_[node];
  ++totals_.serviced;
  if (messages_counter_) messages_counter_->inc();
  if (queue_hist_) queue_hist_->record_ms(start - at_ms);
  if (sinks_.timeseries) sinks_.timeseries->message(at_ms, start - at_ms);
  return done;
}

void MessageSimulator::start_lookup(std::int32_t lookup, double now) {
  Lookup& lk = state_[static_cast<std::size_t>(lookup)];
  LookupResult& result = lookups_[static_cast<std::size_t>(lookup)];
  // The source is frontier 0: it services the query injection itself,
  // then steps locally (no network legs).
  const double done = service(lk.frontier, now);
  if (done < 0) {  // dead or overloaded source: the query never enters
    complete(lookup, false, now, lk.frontier);
    return;
  }
  std::array<NodeIndex, kMaxStepCandidates> cands{};
  const StepResult step = stepper_(
      lk.frontier, result.key, lk.state,
      std::span<NodeIndex>(cands.data(),
                           static_cast<std::size_t>(config_.candidates)));
  if (step.done || step.count == 0) {
    complete(lookup, step.done && step.ok, done, lk.frontier);
    return;
  }
  lk.cands = cands;
  lk.cand_count = step.count;
  begin_round(lookup, done);
}

void MessageSimulator::begin_round(std::int32_t lookup, double now) {
  Lookup& lk = state_[static_cast<std::size_t>(lookup)];
  lk.launched = 0;
  lk.round_probes.fill(-1);
  const int fan = std::min(config_.alpha, static_cast<int>(lk.cand_count));
  for (int i = 0; i < fan; ++i) {
    launch_candidate(lookup, i, now);
  }
}

void MessageSimulator::launch_candidate(std::int32_t lookup,
                                        std::int32_t cand_index, double now) {
  Lookup& lk = state_[static_cast<std::size_t>(lookup)];
  Probe probe;
  probe.lookup = lookup;
  probe.round = lk.round;
  probe.cand_index = cand_index;
  probe.target = lk.cands[static_cast<std::size_t>(cand_index)];
  probe.sent_from = lk.frontier;
  const std::int32_t id = static_cast<std::int32_t>(probes_.size());
  probes_.push_back(probe);
  lk.round_probes[static_cast<std::size_t>(cand_index)] = id;
  lk.launched = cand_index + 1;
  send_probe(id, now);
}

void MessageSimulator::send_probe(std::int32_t probe_id, double now) {
  Probe& probe = probes_[static_cast<std::size_t>(probe_id)];
  Lookup& lk = state_[static_cast<std::size_t>(probe.lookup)];
  ++totals_.sent;
  bool request_lost = false;
  bool response_lost = false;
  if (rolling_drops_) {
    // One forked stream per message attempt: draw both legs up front so
    // the pattern is a pure function of (drop seed, lookup, attempt).
    Rng msg_rng = drop_base_.fork(static_cast<std::uint64_t>(probe.lookup))
                      .fork(lk.attempt_seq);
    request_lost = msg_rng.uniform_double() < drop_p_;
    response_lost = msg_rng.uniform_double() < drop_p_;
  }
  ++lk.attempt_seq;
  if (request_lost) {
    ++totals_.link_drops;
  } else {
    push_event(now + link_ms(probe.sent_from, probe.target), Kind::kArrive,
               probe.lookup, probe_id, probe.attempt);
  }
  // The response-leg verdict rides in the probe so kArrive can apply it.
  probe.response_lost = response_lost;
  probe.result = StepResult{};
  probe.state_after = 0;
  const double deadline =
      config_.timeout_ms *
      std::pow(config_.backoff, static_cast<double>(probe.attempt));
  push_event(now + deadline, Kind::kTimeout, probe.lookup, probe_id,
             probe.attempt);
}

void MessageSimulator::on_arrive(std::int32_t probe_id, std::int32_t attempt,
                                 double now) {
  Probe& probe = probes_[static_cast<std::size_t>(probe_id)];
  // The request is on the wire regardless of lookup progress: stale
  // probes still consume the target's service capacity.
  const double done = service(probe.target, now);
  if (done < 0) return;  // dead node or inbox overflow: timeout recovers
  const Lookup& lk = state_[static_cast<std::size_t>(probe.lookup)];
  if (!lookup_open(probe.lookup) || probe.round != lk.round ||
      probe.responded || probe.failed || probe.attempt != attempt) {
    return;  // stale: serviced, but nobody is waiting for the verdict
  }
  if (probe.response_lost) {
    ++totals_.link_drops;
    return;
  }
  std::uint64_t state_copy = lk.state;
  std::array<NodeIndex, kMaxStepCandidates> cands{};
  const StepResult step = stepper_(
      probe.target, lookups_[static_cast<std::size_t>(probe.lookup)].key,
      state_copy,
      std::span<NodeIndex>(cands.data(),
                           static_cast<std::size_t>(config_.candidates)));
  probe.result = step;
  probe.state_after = state_copy;
  probe.next_cands = cands;
  push_event(done + link_ms(probe.target, probe.sent_from), Kind::kResponse,
             probe.lookup, probe_id, attempt);
}

void MessageSimulator::on_response(std::int32_t probe_id,
                                   std::int32_t attempt, double now) {
  Probe& probe = probes_[static_cast<std::size_t>(probe_id)];
  const Lookup& lk = state_[static_cast<std::size_t>(probe.lookup)];
  if (!lookup_open(probe.lookup) || probe.round != lk.round ||
      probe.responded || probe.failed || probe.attempt != attempt) {
    return;  // a retry superseded this attempt: its late response is noise
  }
  probe.responded = true;
  check_round(probe.lookup, now);
}

void MessageSimulator::on_timeout(std::int32_t probe_id, std::int32_t attempt,
                                  double now) {
  Probe& probe = probes_[static_cast<std::size_t>(probe_id)];
  Lookup& lk = state_[static_cast<std::size_t>(probe.lookup)];
  if (!lookup_open(probe.lookup) || probe.round != lk.round ||
      probe.responded || probe.failed || probe.attempt != attempt) {
    return;  // stale stamp: a retry superseded this deadline
  }
  ++totals_.timeouts;
  if (timeouts_counter_) timeouts_counter_->inc();
  ++lookups_[static_cast<std::size_t>(probe.lookup)].timeouts;
  if (probe.attempt + 1 < config_.retry_budget) {
    ++probe.attempt;
    ++totals_.retries;
    if (retries_counter_) retries_counter_->inc();
    ++lookups_[static_cast<std::size_t>(probe.lookup)].retries;
    send_probe(probe_id, now);
    return;
  }
  probe.failed = true;
  if (lk.launched < lk.cand_count) {
    launch_candidate(probe.lookup, lk.launched, now);
  }
  check_round(probe.lookup, now);
}

void MessageSimulator::check_round(std::int32_t lookup, double now) {
  Lookup& lk = state_[static_cast<std::size_t>(lookup)];
  // The frontier advances via the best-ranked candidate still in play:
  // the round is decided only once every better-ranked candidate has
  // permanently failed and that candidate has responded.
  for (std::int32_t i = 0; i < lk.cand_count; ++i) {
    if (i >= lk.launched) return;  // not launched yet: wait
    const Probe& probe =
        probes_[static_cast<std::size_t>(lk.round_probes[
            static_cast<std::size_t>(i)])];
    if (probe.failed) continue;
    if (probe.responded) {
      advance(lookup, lk.round_probes[static_cast<std::size_t>(i)], now);
    }
    return;  // best-ranked survivor still waiting for its response
  }
  // Every candidate permanently failed: the lookup is lost.
  complete(lookup, false, now, lk.frontier);
}

void MessageSimulator::advance(std::int32_t lookup, std::int32_t probe_id,
                               double now) {
  Lookup& lk = state_[static_cast<std::size_t>(lookup)];
  LookupResult& result = lookups_[static_cast<std::size_t>(lookup)];
  const Probe& probe = probes_[static_cast<std::size_t>(probe_id)];
  if (sinks_.trace && trace_ids_[static_cast<std::size_t>(lookup)] != 0) {
    telemetry::HopRecord hop;
    hop.lookup = trace_ids_[static_cast<std::size_t>(lookup)];
    hop.from = lk.frontier;
    hop.to = probe.target;
    hop.hop_index = result.hops;
    hop.level = net_->lca_level(lk.frontier, probe.target);
    hop.candidates = static_cast<std::uint32_t>(lk.cand_count);
    sinks_.trace->on_hop(hop);
  }
  lk.frontier = probe.target;
  lk.state = probe.state_after;
  lk.path.push_back(probe.target);
  ++result.hops;
  ++lk.round;
  if (probe.result.done) {
    complete(lookup, probe.result.ok, now, lk.frontier);
    return;
  }
  if (result.hops >= hop_guard_) {
    complete(lookup, false, now, lk.frontier);
    return;
  }
  lk.cands = probe.next_cands;
  lk.cand_count = probe.result.count;
  begin_round(lookup, now);
}

void MessageSimulator::complete(std::int32_t lookup, bool ok, double now,
                                NodeIndex terminal) {
  Lookup& lk = state_[static_cast<std::size_t>(lookup)];
  LookupResult& result = lookups_[static_cast<std::size_t>(lookup)];
  result.completed_ms = now;
  result.ok = ok;
  if (!ok) ++totals_.failures;
  if (sinks_.trace && trace_ids_[static_cast<std::size_t>(lookup)] != 0) {
    sinks_.trace->end_lookup(trace_ids_[static_cast<std::size_t>(lookup)],
                             ok, terminal);
  }
  if (sinks_.journal && !ok) {
    sinks_.journal->lookup_failure(result.from, result.key, result.hops);
  }
  if (sinks_.timeseries) {
    sinks_.timeseries->lookup_completed(now, ok, now - result.issued_ms);
  }
  if (sinks_.load) {
    sinks_.load->observe(lk.path, ok, result.key, load_shard_);
  }
}

void MessageSimulator::run() {
  if (sinks_.timeseries) {
    sinks_.timeseries->live_nodes(now_, static_cast<double>(live_nodes()));
  }
  while (!queue_.empty()) {
    const Event ev = queue_.top();
    queue_.pop();
    now_ = std::max(now_, ev.at_ms);
    apply_faults_until(now_);
    maybe_snapshot(now_);
    switch (ev.kind) {
      case Kind::kStart:
        start_lookup(ev.lookup, ev.at_ms);
        break;
      case Kind::kArrive:
        on_arrive(ev.probe, ev.attempt, ev.at_ms);
        break;
      case Kind::kResponse:
        on_response(ev.probe, ev.attempt, ev.at_ms);
        break;
      case Kind::kTimeout:
        on_timeout(ev.probe, ev.attempt, ev.at_ms);
        break;
    }
  }
  if (sinks_.load) {
    sinks_.load->merge(load_shard_);
    load_shard_ = telemetry::LoadAccountant::Shard{};
  }
  if (sinks_.journal && sinks_.snapshot_top_k > 0) {
    sinks_.journal->load_snapshot(
        now_, telemetry::top_loaded_nodes(
                  load_, static_cast<std::size_t>(sinks_.snapshot_top_k)));
  }
}

double lookup_latency_percentile(
    std::span<const MessageSimulator::LookupResult> lookups, double q) {
  std::vector<double> latencies;
  latencies.reserve(lookups.size());
  for (const auto& lk : lookups) {
    if (lk.completed_ms >= 0) latencies.push_back(lk.latency_ms());
  }
  if (latencies.empty()) return 0;
  std::sort(latencies.begin(), latencies.end());
  const double clamped = std::min(std::max(q, 0.0), 1.0);
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(clamped * static_cast<double>(latencies.size())));
  if (rank == 0) rank = 1;
  return latencies[rank - 1];
}

}  // namespace canon
