// The simulators' observer bundle.
//
// EventSimulator grew one setter per observer (trace, journal, time
// series, fault plan, load snapshots); with MessageSimulator arriving the
// pair would have doubled that surface. SimSinks is the one aggregate both
// engines accept: raw pointers to the caller-owned sinks plus the options
// that only mean something when a sink is present, validated once at
// attach() time instead of per-setter.
//
//   telemetry::TimeSeriesRecorder series(50.0);
//   SimSinks sinks;
//   sinks.timeseries = &series;
//   sinks.fault_plan = &plan;
//   sinks.snapshot_top_k = 5;       // needs sinks.journal
//   sim.attach(sinks);              // validates, then installs atomically
//
// All pointers are borrowed: the caller keeps the sinks alive for the
// simulator's lifetime. Attaching replaces the whole previous bundle
// (attach(SimSinks{}) detaches everything). The legacy per-field setters
// survive as thin forwarders that edit a copy of the current bundle and
// re-attach it; new code should build a SimSinks directly.
#ifndef CANON_OVERLAY_SIM_SINKS_H
#define CANON_OVERLAY_SIM_SINKS_H

#include <stdexcept>

namespace canon {

class FaultPlan;  // overlay/fault_plan.h

namespace telemetry {
class RouteTraceSink;     // telemetry/trace.h
class EventJournal;       // telemetry/journal.h
class TimeSeriesRecorder; // telemetry/timeseries.h
class LoadAccountant;     // telemetry/load_stats.h
}  // namespace telemetry

/// Everything a simulator run can observe or be perturbed by, in one
/// aggregate. See the file comment for ownership and attach semantics.
struct SimSinks {
  /// Per-hop route tracing (begin/on_hop/end, keyed by lookup id).
  telemetry::RouteTraceSink* trace = nullptr;

  /// Event journal: lookup failures, applied crash/revive events, load
  /// snapshots.
  telemetry::EventJournal* journal = nullptr;

  /// Windowed curves over the simulated clock: submissions, completions,
  /// per-message queueing, live-node count.
  telemetry::TimeSeriesRecorder* timeseries = nullptr;

  /// Crash/revive schedule applied on the simulated clock (and, in
  /// MessageSimulator, the per-attempt drop probability). Borrowed.
  const FaultPlan* fault_plan = nullptr;

  /// Per-lookup frontier paths tallied for domain-confinement / hotspot
  /// reports. Only MessageSimulator feeds it.
  telemetry::LoadAccountant* load = nullptr;

  /// Emit a load_snapshot journal line with the top-k loaded nodes every
  /// snapshot_window_ms of simulated time (<= 0 disables). Snapshots only
  /// emit while a journal is attached.
  int snapshot_top_k = 0;
  double snapshot_window_ms = 50.0;

  /// Validates the option fields; attach() calls this once. Throws
  /// std::invalid_argument on a bundle that could only be a bug.
  void validate() const {
    if (snapshot_window_ms <= 0) {
      throw std::invalid_argument(
          "SimSinks: snapshot_window_ms must be > 0");
    }
  }
};

}  // namespace canon

#endif  // CANON_OVERLAY_SIM_SINKS_H
