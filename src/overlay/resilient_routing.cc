#include "overlay/resilient_routing.h"

#include <stdexcept>

namespace canon {

std::size_t FailureSet::dead_count() const {
  std::size_t n = 0;
  for (const bool d : dead_) n += d;
  return n;
}

ResilientRingRouter::ResilientRingRouter(const OverlayNetwork& net,
                                         const LinkTable& links,
                                         const FailureSet& failures,
                                         int leaf_set)
    : net_(&net),
      links_(&links),
      failures_(&failures),
      leaf_set_(leaf_set),
      max_hops_(4 * net.space().bits() + 16) {
  if (!links.finalized()) {
    throw std::invalid_argument("ResilientRingRouter: links not finalized");
  }
}

std::uint32_t ResilientRingRouter::live_responsible(NodeId key) const {
  // Walk predecessors until a live one is found.
  const RingView ring = net_->ring();
  std::size_t pos = ring.successor_pos(key);
  // predecessor_or_self semantics: if the successor sits on the key it is
  // responsible, otherwise step back one.
  if (net_->id(ring.at(pos)) != key) {
    pos = (pos + ring.size() - 1) % ring.size();
  }
  for (std::size_t i = 0; i < ring.size(); ++i) {
    const std::uint32_t candidate =
        ring.at((pos + ring.size() - i) % ring.size());
    if (!failures_->dead(candidate)) return candidate;
  }
  throw std::logic_error("live_responsible: everyone is dead");
}

void ResilientRingRouter::live_candidates(
    std::uint32_t m, std::vector<std::uint32_t>& out) const {
  out.clear();
  for (const std::uint32_t nb : links_->neighbors(m)) {
    if (!failures_->dead(nb)) out.push_back(nb);
  }
  // Leaf sets: the next `leaf_set_` successors at every level.
  const auto& chain = net_->domains().domain_chain(m);
  for (const int d : chain) {
    const RingView ring = net_->domain_ring(d);
    if (ring.size() < 2) continue;
    std::size_t pos = ring.successor_pos(
        net_->space().advance(net_->id(m), 1));
    for (int i = 0; i < leaf_set_; ++i) {
      const std::uint32_t s = ring.at(pos);
      if (s == m) break;  // wrapped all the way around
      if (!failures_->dead(s)) out.push_back(s);
      pos = (pos + 1) % ring.size();
    }
  }
}

Route ResilientRingRouter::route(std::uint32_t from, NodeId key) const {
  if (failures_->dead(from)) {
    throw std::invalid_argument("ResilientRingRouter: source is dead");
  }
  const IdSpace& space = net_->space();
  Route r;
  r.path.push_back(from);
  std::uint32_t current = from;
  std::vector<std::uint32_t> candidates;
  for (int step = 0; step < max_hops_; ++step) {
    const std::uint64_t remaining = space.ring_distance(net_->id(current), key);
    live_candidates(current, candidates);
    std::uint32_t best = current;
    std::uint64_t best_covered = 0;
    for (const std::uint32_t nb : candidates) {
      const std::uint64_t covered =
          space.ring_distance(net_->id(current), net_->id(nb));
      if (covered <= remaining && covered > best_covered) {
        best_covered = covered;
        best = nb;
      }
    }
    if (best == current) {
      r.ok = (current == live_responsible(key));
      return r;
    }
    current = best;
    r.path.push_back(current);
  }
  r.ok = false;
  return r;
}

}  // namespace canon
