#include "overlay/resilient_routing.h"

#include <algorithm>
#include <stdexcept>

namespace canon {

namespace {

constexpr std::size_t kNoCandidate = static_cast<std::size_t>(-1);

const NodeId* inline_ids_or_null(const LinkTable& links, std::uint32_t node) {
  return links.has_inline_ids() ? links.neighbor_ids(node).data() : nullptr;
}

bool is_banned(const std::vector<std::uint32_t>& banned, std::uint32_t node) {
  return std::find(banned.begin(), banned.end(), node) != banned.end();
}

struct NullRecorder {
  void operator()(std::uint32_t) const {}
};

struct PathRecorder {
  std::vector<std::uint32_t>* path;
  void operator()(std::uint32_t node) const { path->push_back(node); }
};

}  // namespace

ResilientRingRouter::ResilientRingRouter(const OverlayNetwork& net,
                                         const LinkTable& links, int leaf_set,
                                         int retry_budget)
    : net_(&net),
      links_(&links),
      leaf_set_(leaf_set),
      retry_budget_(retry_budget),
      max_hops_(4 * net.space().bits() + 16) {
  if (!links.finalized()) {
    throw std::invalid_argument("ResilientRingRouter: links not finalized");
  }
  if (retry_budget < 1) {
    throw std::invalid_argument("ResilientRingRouter: retry budget < 1");
  }
}

std::uint32_t ResilientRingRouter::live_responsible(
    NodeId key, const FailureSet& dead) const {
  // Walk predecessors until a live one is found.
  const RingView ring = net_->ring();
  std::size_t pos = ring.successor_pos(key);
  // predecessor_or_self semantics: if the successor sits on the key it is
  // responsible, otherwise step back one.
  if (net_->id(ring.at(pos)) != key) {
    pos = (pos + ring.size() - 1) % ring.size();
  }
  for (std::size_t i = 0; i < ring.size(); ++i) {
    const std::uint32_t candidate =
        ring.at((pos + ring.size() - i) % ring.size());
    if (!dead.dead(candidate)) return candidate;
  }
  throw std::logic_error("live_responsible: everyone is dead");
}

void ResilientRingRouter::live_candidates(
    std::uint32_t m, const FailureSet& dead,
    std::vector<std::uint32_t>& out) const {
  out.clear();
  // Leaf sets: the next `leaf_set_` successors at every level.
  const auto& chain = net_->domains().domain_chain(m);
  for (const int d : chain) {
    const RingView ring = net_->domain_ring(d);
    if (ring.size() < 2) continue;
    std::size_t pos =
        ring.successor_pos(net_->space().advance(net_->id(m), 1));
    for (int i = 0; i < leaf_set_; ++i) {
      const std::uint32_t s = ring.at(pos);
      if (s == m) break;  // wrapped all the way around
      if (!dead.dead(s)) out.push_back(s);
      pos = (pos + 1) % ring.size();
    }
  }
}

template <typename Recorder>
ResilientProbe ResilientRingRouter::core(std::uint32_t from, NodeId key,
                                         const FailureSet& dead,
                                         DropRoller& drops, Scratch& scratch,
                                         Recorder&& record) const {
  if (dead.dead(from)) {
    throw std::invalid_argument("ResilientRingRouter: source is dead");
  }
  const IdSpace& space = net_->space();
  // Fault-only bookkeeping (fallback tallies, banned filters) is gated so
  // the zero-fault scan is the plain ring_core scan, comparison for
  // comparison.
  const bool faults = dead.any() || drops.active();
  std::uint32_t current = from;
  int hops = 0;
  int retries = 0;
  int fallback_hops = 0;
  for (int step = 0; step < max_hops_; ++step) {
    const NodeId cur_id = net_->id(current);
    const std::uint64_t remaining = space.ring_distance(cur_id, key);
    scratch.banned.clear();
    bool leaf_fresh = false;
    int attempts = retry_budget_;
    for (;;) {  // per-hop retry ladder
      // Stage 1: the plain greedy scan — most clockwise coverage without
      // overshooting — restricted to live, unbanned neighbors.
      std::size_t best_j = kNoCandidate;
      std::uint64_t best_covered = 0;
      std::uint64_t best_any = 0;  // incl. dead/banned: fallback tally
      const auto neighbors = links_->neighbors(current);
      const NodeId* nb_ids = inline_ids_or_null(*links_, current);
      for (std::size_t j = 0; j < neighbors.size(); ++j) {
        const NodeId nb_id = nb_ids ? nb_ids[j] : net_->id(neighbors[j]);
        const std::uint64_t covered = space.ring_distance(cur_id, nb_id);
        if (covered > remaining) continue;
        if (faults && covered > best_any) best_any = covered;
        if (covered <= best_covered) continue;
        const std::uint32_t nb = neighbors[j];
        if (faults && (dead.dead(nb) || is_banned(scratch.banned, nb))) {
          continue;
        }
        best_covered = covered;
        best_j = j;
      }
      std::uint32_t best = best_j == kNoCandidate ? current : neighbors[best_j];
      // Stage 2: no live link makes progress — consult the leaf set.
      bool via_leaf = false;
      if (best == current && faults) {
        if (!leaf_fresh) {
          live_candidates(current, dead, scratch.leaf);
          leaf_fresh = true;
        }
        std::uint64_t best_leaf = 0;
        for (const std::uint32_t c : scratch.leaf) {
          if (is_banned(scratch.banned, c)) continue;
          const std::uint64_t covered =
              space.ring_distance(cur_id, net_->id(c));
          if (covered <= remaining && covered > best_leaf) {
            best_leaf = covered;
            best = c;
          }
        }
        via_leaf = best != current;
      }
      if (best == current) {
        const bool ok = current == (faults ? live_responsible(key, dead)
                                           : net_->responsible(key));
        return {current, hops, ok, retries, fallback_hops};
      }
      if (drops.drop()) {
        scratch.banned.push_back(best);
        ++retries;
        if (--attempts <= 0) {
          return {current, hops, false, retries, fallback_hops};  // lost
        }
        continue;
      }
      if (via_leaf || (faults && best_covered < best_any)) ++fallback_hops;
      current = best;
      ++hops;
      record(current);
      break;
    }
  }
  // Hop guard exceeded: structurally broken table.
  return {current, hops, false, retries, fallback_hops};
}

ResilientProbe ResilientRingRouter::route_into(std::uint32_t from, NodeId key,
                                               const FailureSet& dead,
                                               DropRoller& drops,
                                               Scratch& scratch,
                                               Route& out) const {
  out.path.clear();
  out.path.push_back(from);
  out.ok = false;
  const ResilientProbe p =
      core(from, key, dead, drops, scratch, PathRecorder{&out.path});
  out.ok = p.ok;
  return p;
}

ResilientProbe ResilientRingRouter::probe(std::uint32_t from, NodeId key,
                                          const FailureSet& dead,
                                          DropRoller& drops,
                                          Scratch& scratch) const {
  return core(from, key, dead, drops, scratch, NullRecorder{});
}

Route ResilientRingRouter::route(std::uint32_t from, NodeId key,
                                 const FailureSet& dead) const {
  Route r;
  Scratch scratch;
  DropRoller drops;
  route_into(from, key, dead, drops, scratch, r);
  return r;
}

ResilientXorRouter::ResilientXorRouter(const OverlayNetwork& net,
                                       const LinkTable& links,
                                       int retry_budget)
    : net_(&net),
      links_(&links),
      retry_budget_(retry_budget),
      max_hops_(4 * net.space().bits() + 16) {
  if (!links.finalized()) {
    throw std::invalid_argument("ResilientXorRouter: links not finalized");
  }
  if (retry_budget < 1) {
    throw std::invalid_argument("ResilientXorRouter: retry budget < 1");
  }
}

std::uint32_t ResilientXorRouter::live_closest(NodeId key,
                                               const FailureSet& dead) const {
  const std::uint32_t structural = net_->xor_closest(key);
  if (!dead.dead(structural)) return structural;
  const IdSpace& space = net_->space();
  std::uint32_t best = RingView::kNone;
  std::uint64_t best_d = 0;
  for (std::uint32_t i = 0; i < net_->size(); ++i) {
    if (dead.dead(i)) continue;
    const std::uint64_t d = space.xor_distance(net_->id(i), key);
    if (best == RingView::kNone || d < best_d) {
      best = i;
      best_d = d;
    }
  }
  if (best == RingView::kNone) {
    throw std::logic_error("live_closest: everyone is dead");
  }
  return best;
}

template <typename Recorder>
ResilientProbe ResilientXorRouter::core(std::uint32_t from, NodeId key,
                                        const FailureSet& dead,
                                        DropRoller& drops, Scratch& scratch,
                                        Recorder&& record) const {
  if (dead.dead(from)) {
    throw std::invalid_argument("ResilientXorRouter: source is dead");
  }
  const IdSpace& space = net_->space();
  const bool faults = dead.any() || drops.active();
  std::uint32_t current = from;
  int hops = 0;
  int retries = 0;
  int fallback_hops = 0;
  for (int step = 0; step < max_hops_; ++step) {
    const std::uint64_t remaining = space.xor_distance(net_->id(current), key);
    scratch.banned.clear();
    int attempts = retry_budget_;
    for (;;) {  // per-hop retry ladder over alpha candidates
      std::size_t best_j = kNoCandidate;
      std::uint64_t best_remaining = remaining;
      std::uint64_t best_any = remaining;  // incl. dead/banned
      const auto neighbors = links_->neighbors(current);
      const NodeId* nb_ids = inline_ids_or_null(*links_, current);
      for (std::size_t j = 0; j < neighbors.size(); ++j) {
        const NodeId nb_id = nb_ids ? nb_ids[j] : net_->id(neighbors[j]);
        const std::uint64_t d = space.xor_distance(nb_id, key);
        if (faults && d < best_any) best_any = d;
        if (d >= best_remaining) continue;
        const std::uint32_t nb = neighbors[j];
        if (faults && (dead.dead(nb) || is_banned(scratch.banned, nb))) {
          continue;
        }
        best_remaining = d;
        best_j = j;
      }
      if (best_j == kNoCandidate) {
        const bool ok = current == (faults ? live_closest(key, dead)
                                           : net_->xor_closest(key));
        return {current, hops, ok, retries, fallback_hops};
      }
      const std::uint32_t best = neighbors[best_j];
      if (drops.drop()) {
        scratch.banned.push_back(best);
        ++retries;
        if (--attempts <= 0) {
          return {current, hops, false, retries, fallback_hops};  // lost
        }
        continue;
      }
      if (faults && best_remaining > best_any) ++fallback_hops;
      current = best;
      ++hops;
      record(current);
      break;
    }
  }
  return {current, hops, false, retries, fallback_hops};
}

ResilientProbe ResilientXorRouter::route_into(std::uint32_t from, NodeId key,
                                              const FailureSet& dead,
                                              DropRoller& drops,
                                              Scratch& scratch,
                                              Route& out) const {
  out.path.clear();
  out.path.push_back(from);
  out.ok = false;
  const ResilientProbe p =
      core(from, key, dead, drops, scratch, PathRecorder{&out.path});
  out.ok = p.ok;
  return p;
}

ResilientProbe ResilientXorRouter::probe(std::uint32_t from, NodeId key,
                                         const FailureSet& dead,
                                         DropRoller& drops,
                                         Scratch& scratch) const {
  return core(from, key, dead, drops, scratch, NullRecorder{});
}

}  // namespace canon
