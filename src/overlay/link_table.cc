#include "overlay/link_table.h"

#include <algorithm>
#include <stdexcept>

#include "common/parallel.h"
#include "telemetry/metrics.h"

namespace canon {

namespace {

/// Rows per finalize() shard: sorting a handful of short adjacency rows is
/// cheap, so shards need to batch enough of them to amortize scheduling.
constexpr std::size_t kFinalizeGrain = 512;

}  // namespace

LinkTable::LinkTable(std::size_t node_count)
    : node_count_(node_count), rows_(node_count) {}

void LinkTable::add(std::uint32_t from, std::uint32_t to) {
  if (from >= node_count_ || to >= node_count_) {
    throw std::out_of_range("LinkTable::add: node index out of range");
  }
  if (finalized_) {
    throw std::logic_error(
        "LinkTable::add: table is finalized (use set_neighbors to edit)");
  }
  if (from == to) return;
  rows_[from].push_back(to);
}

void LinkTable::finalize(std::span<const NodeId> ids) {
  if (finalized_) return;
  if (!ids.empty() && ids.size() != node_count_) {
    throw std::invalid_argument("LinkTable::finalize: ids size mismatch");
  }
  if (telemetry::Gauge* g = telemetry::maybe_gauge("build.threads")) {
    g->set(parallel_threads());
  }
  // Sort and deduplicate every row; rows are independent, so shard them.
  parallel_for(node_count_, kFinalizeGrain,
               [&](std::size_t begin, std::size_t end) {
                 for (std::size_t m = begin; m < end; ++m) {
                   auto& row = rows_[m];
                   std::sort(row.begin(), row.end());
                   row.erase(std::unique(row.begin(), row.end()), row.end());
                 }
               });
  // Serial prefix sum over the row sizes, then a sharded scatter into the
  // flat arrays; both stages depend only on row contents, so the layout is
  // identical at every thread count.
  offsets_.assign(node_count_ + 1, 0);
  for (std::size_t m = 0; m < node_count_; ++m) {
    offsets_[m + 1] = offsets_[m] + rows_[m].size();
  }
  targets_.resize(offsets_[node_count_]);
  if (!ids.empty()) {
    ids_.assign(ids.begin(), ids.end());
    target_ids_.resize(offsets_[node_count_]);
  }
  parallel_for(node_count_, kFinalizeGrain,
               [&](std::size_t begin, std::size_t end) {
                 for (std::size_t m = begin; m < end; ++m) {
                   std::size_t k = offsets_[m];
                   for (const std::uint32_t to : rows_[m]) {
                     targets_[k] = to;
                     if (!ids_.empty()) target_ids_[k] = ids_[to];
                     ++k;
                   }
                 }
               });
  rows_.clear();
  rows_.shrink_to_fit();
  finalized_ = true;
}

void LinkTable::throw_neighbor_ids_unavailable() const {
  if (!finalized_) {
    throw std::logic_error(
        "LinkTable::neighbor_ids: finalize() has not been called");
  }
  throw std::logic_error(
      "LinkTable::neighbor_ids: finalize(ids) did not capture node IDs");
}

bool LinkTable::has_link(std::uint32_t from, std::uint32_t to) const {
  if (!finalized_) {
    throw std::logic_error(
        "LinkTable::has_link: finalize() has not been called");
  }
  const auto row = neighbors(from);
  return std::binary_search(row.begin(), row.end(), to);
}

std::size_t LinkTable::total_links() const {
  if (!finalized_) {
    throw std::logic_error(
        "LinkTable::total_links: finalize() has not been called");
  }
  return targets_.size();
}

double LinkTable::mean_degree() const {
  if (node_count_ == 0) return 0;
  return static_cast<double>(total_links()) /
         static_cast<double>(node_count_);
}

Histogram LinkTable::degree_histogram() const {
  Histogram h;
  for (std::uint32_t i = 0; i < node_count_; ++i) {
    h.add(static_cast<std::int64_t>(degree(i)));
  }
  return h;
}

void LinkTable::set_neighbors(std::uint32_t node,
                              std::vector<std::uint32_t> neighbors) {
  if (node >= node_count_) {
    throw std::out_of_range("LinkTable::set_neighbors: node out of range");
  }
  std::sort(neighbors.begin(), neighbors.end());
  neighbors.erase(std::unique(neighbors.begin(), neighbors.end()),
                  neighbors.end());
  neighbors.erase(std::remove(neighbors.begin(), neighbors.end(), node),
                  neighbors.end());
  if (!neighbors.empty() && neighbors.back() >= node_count_) {
    throw std::out_of_range("LinkTable::set_neighbors: neighbor out of range");
  }
  if (!finalized_) {
    rows_[node] = std::move(neighbors);
    return;
  }
  // CSR edit path: splice the row in place. Equal-size rewrites touch only
  // the row; size changes shift the tail of the flat arrays once.
  const std::size_t begin = offsets_[node];
  const std::size_t old_size = offsets_[node + 1] - begin;
  const std::size_t new_size = neighbors.size();
  const auto row_begin =
      targets_.begin() + static_cast<std::ptrdiff_t>(begin);
  if (new_size > old_size) {
    targets_.insert(row_begin + static_cast<std::ptrdiff_t>(old_size),
                    new_size - old_size, 0);
    if (!ids_.empty()) {
      target_ids_.insert(target_ids_.begin() +
                             static_cast<std::ptrdiff_t>(begin + old_size),
                         new_size - old_size, 0);
    }
  } else if (new_size < old_size) {
    targets_.erase(row_begin + static_cast<std::ptrdiff_t>(new_size),
                   row_begin + static_cast<std::ptrdiff_t>(old_size));
    if (!ids_.empty()) {
      target_ids_.erase(
          target_ids_.begin() + static_cast<std::ptrdiff_t>(begin + new_size),
          target_ids_.begin() + static_cast<std::ptrdiff_t>(begin + old_size));
    }
  }
  for (std::size_t k = 0; k < new_size; ++k) {
    targets_[begin + k] = neighbors[k];
    if (!ids_.empty()) target_ids_[begin + k] = ids_[neighbors[k]];
  }
  if (new_size != old_size) {
    const std::ptrdiff_t delta = static_cast<std::ptrdiff_t>(new_size) -
                                 static_cast<std::ptrdiff_t>(old_size);
    for (std::size_t m = node + 1; m <= node_count_; ++m) {
      offsets_[m] = static_cast<std::size_t>(
          static_cast<std::ptrdiff_t>(offsets_[m]) + delta);
    }
  }
}

bool operator==(const LinkTable& a, const LinkTable& b) {
  return a.finalized_ && b.finalized_ && a.node_count_ == b.node_count_ &&
         a.offsets_ == b.offsets_ && a.targets_ == b.targets_ &&
         a.target_ids_ == b.target_ids_;
}

}  // namespace canon
