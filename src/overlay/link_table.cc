#include "overlay/link_table.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <stdexcept>

#include "common/parallel.h"
#include "telemetry/metrics.h"

namespace canon {

namespace {

/// Rows per finalize() shard: sorting a handful of short adjacency rows is
/// cheap, so shards need to batch enough of them to amortize scheduling.
constexpr std::size_t kFinalizeGrain = 512;

/// Guards the 32-bit CSR offsets: link counts must fit LinkOffset.
LinkOffset checked_offset(std::size_t links) {
  if (links > std::numeric_limits<LinkOffset>::max()) {
    throw std::length_error(
        "LinkTable: more than 2^32 - 1 links (LinkOffset overflow)");
  }
  return static_cast<LinkOffset>(links);
}

/// Allocated bytes of the per-node build rows: each row's backing store
/// plus its vector header. Capacities are a pure function of the add()
/// sequence per node, so the figure is thread-invariant.
std::uint64_t rows_bytes(const std::vector<std::vector<NodeIndex>>& rows) {
  std::uint64_t bytes = telemetry::vector_bytes(rows);
  for (const auto& row : rows) bytes += telemetry::vector_bytes(row);
  return bytes;
}

}  // namespace

LinkTable::LinkTable(std::size_t node_count)
    : node_count_(node_count), rows_(node_count) {}

void LinkTable::add(NodeIndex from, NodeIndex to) {
  if (from >= node_count_ || to >= node_count_) {
    throw std::out_of_range("LinkTable::add: node index out of range");
  }
  if (finalized_) {
    throw std::logic_error(
        "LinkTable::add: table is finalized (use set_neighbors to edit)");
  }
  if (from == to) return;
  rows_[from].push_back(to);
}

void LinkTable::finalize(std::span<const NodeId> ids) {
  if (finalized_) return;
  if (!ids.empty() && ids.size() != node_count_) {
    throw std::invalid_argument("LinkTable::finalize: ids size mismatch");
  }
  if (telemetry::Gauge* g = telemetry::maybe_gauge("build.threads")) {
    g->set(parallel_threads());
  }
  // Transient ledger charge for the build rows the CSR replaces; held
  // until the rows are freed at the end, so the link_table.csr charge
  // below overlaps it the way the allocations really do.
  telemetry::MemScope row_scope("overlay.link_rows", rows_bytes(rows_));
  // Sort and deduplicate every row; rows are independent, so shard them.
  parallel_for(node_count_, kFinalizeGrain,
               [&](std::size_t begin, std::size_t end) {
                 for (std::size_t m = begin; m < end; ++m) {
                   auto& row = rows_[m];
                   std::sort(row.begin(), row.end());
                   row.erase(std::unique(row.begin(), row.end()), row.end());
                 }
               });
  // Serial prefix sum over the row sizes, then a sharded scatter into the
  // flat arrays; both stages depend only on row contents, so the layout is
  // identical at every thread count.
  offsets_.assign(node_count_ + 1, 0);
  std::size_t total = 0;
  for (std::size_t m = 0; m < node_count_; ++m) {
    total += rows_[m].size();
    offsets_[m + 1] = checked_offset(total);
  }
  targets_.resize(total);
  if (!ids.empty()) {
    ids_.assign(ids.begin(), ids.end());
    target_ids_.resize(total);
  }
  parallel_for(node_count_, kFinalizeGrain,
               [&](std::size_t begin, std::size_t end) {
                 for (std::size_t m = begin; m < end; ++m) {
                   std::size_t k = offsets_[m];
                   for (const NodeIndex to : rows_[m]) {
                     targets_[k] = to;
                     if (!ids_.empty()) target_ids_[k] = ids_[to];
                     ++k;
                   }
                 }
               });
  account_csr();
  rows_.clear();
  rows_.shrink_to_fit();
  finalized_ = true;
}

LinkTable LinkTable::build_streaming(
    std::size_t node_count, std::span<const NodeId> ids,
    std::size_t shard_nodes,
    const std::function<void(NodeIndex node, LinkTable& sink)>& add_links,
    const std::function<void(std::size_t done, std::size_t shards)>&
        on_shard) {
  if (shard_nodes == 0) {
    throw std::invalid_argument("LinkTable::build_streaming: shard_nodes == 0");
  }
  if (!ids.empty() && ids.size() != node_count) {
    throw std::invalid_argument("LinkTable::build_streaming: ids size mismatch");
  }
  LinkTable out(node_count);
  const std::size_t shards = (node_count + shard_nodes - 1) / shard_nodes;
  // Per-shard compact chunks: flat sorted/deduped targets plus per-node
  // row sizes. Each shard owns its slice of out.rows_ during the build,
  // then frees those row vectors as soon as the chunk is compacted —
  // that bound (in-flight rows only) is the whole point of streaming.
  struct Chunk {
    std::vector<NodeIndex> targets;
    std::vector<LinkOffset> sizes;
  };
  std::vector<Chunk> chunks(shards);
  std::atomic<std::size_t> shards_done{0};
  parallel_for(shards, 1, [&](std::size_t begin, std::size_t end) {
    for (std::size_t s = begin; s < end; ++s) {
      const std::size_t lo = s * shard_nodes;
      const std::size_t hi = std::min(node_count, lo + shard_nodes);
      Chunk& chunk = chunks[s];
      chunk.sizes.reserve(hi - lo);
      for (std::size_t m = lo; m < hi; ++m) {
        add_links(static_cast<NodeIndex>(m), out);
        auto& row = out.rows_[m];
        std::sort(row.begin(), row.end());
        row.erase(std::unique(row.begin(), row.end()), row.end());
        chunk.sizes.push_back(checked_offset(row.size()));
        chunk.targets.insert(chunk.targets.end(), row.begin(), row.end());
        row.clear();
        row.shrink_to_fit();
      }
      if (on_shard) {
        on_shard(shards_done.fetch_add(1, std::memory_order_relaxed) + 1,
                 shards);
      }
    }
  });
  // Ledger charge for the compacted chunks, in fixed shard order on the
  // calling thread (the in-flight build rows themselves are bounded by one
  // shard per worker and are not attributed; the RSS timeline measures
  // them). Held until the chunks are freed at return, overlapping the CSR
  // charge below exactly as the allocations do.
  telemetry::MemScope chunk_scope("overlay.stream_chunks");
  for (const Chunk& chunk : chunks) {
    chunk_scope.add(telemetry::vector_bytes(chunk.targets) +
                    telemetry::vector_bytes(chunk.sizes));
  }
  // Serial prefix sum over the per-node sizes (fixed shard order), then a
  // sharded scatter of the chunks into the final CSR arrays.
  out.offsets_.assign(node_count + 1, 0);
  std::size_t total = 0;
  {
    std::size_t m = 0;
    for (const Chunk& chunk : chunks) {
      for (const LinkOffset size : chunk.sizes) {
        total += size;
        out.offsets_[++m] = checked_offset(total);
      }
    }
  }
  out.targets_.resize(total);
  if (!ids.empty()) {
    out.ids_.assign(ids.begin(), ids.end());
    out.target_ids_.resize(total);
  }
  parallel_for(shards, 1, [&](std::size_t begin, std::size_t end) {
    for (std::size_t s = begin; s < end; ++s) {
      Chunk& chunk = chunks[s];
      std::size_t k = out.offsets_[s * shard_nodes];
      for (std::size_t j = 0; j < chunk.targets.size(); ++j, ++k) {
        const NodeIndex to = chunk.targets[j];
        out.targets_[k] = to;
        if (!out.ids_.empty()) out.target_ids_[k] = out.ids_[to];
      }
      chunk.targets.clear();
      chunk.targets.shrink_to_fit();
    }
  });
  out.rows_.clear();
  out.rows_.shrink_to_fit();
  out.finalized_ = true;
  out.account_csr();
  if (telemetry::Gauge* g = telemetry::maybe_gauge("build.threads")) {
    g->set(parallel_threads());
  }
  return out;
}

void LinkTable::account_csr() {
  mem_.reset("link_table.csr",
             telemetry::vector_bytes(offsets_) +
                 telemetry::vector_bytes(targets_) +
                 telemetry::vector_bytes(target_ids_) +
                 telemetry::vector_bytes(ids_));
}

void LinkTable::throw_neighbor_ids_unavailable() const {
  if (!finalized_) {
    throw std::logic_error(
        "LinkTable::neighbor_ids: finalize() has not been called");
  }
  throw std::logic_error(
      "LinkTable::neighbor_ids: finalize(ids) did not capture node IDs");
}

bool LinkTable::has_link(NodeIndex from, NodeIndex to) const {
  if (!finalized_) {
    throw std::logic_error(
        "LinkTable::has_link: finalize() has not been called");
  }
  const auto row = neighbors(from);
  return std::binary_search(row.begin(), row.end(), to);
}

std::size_t LinkTable::total_links() const {
  if (!finalized_) {
    throw std::logic_error(
        "LinkTable::total_links: finalize() has not been called");
  }
  return targets_.size();
}

double LinkTable::mean_degree() const {
  if (node_count_ == 0) return 0;
  return static_cast<double>(total_links()) /
         static_cast<double>(node_count_);
}

Histogram LinkTable::degree_histogram() const {
  Histogram h;
  for (NodeIndex i = 0; i < node_count_; ++i) {
    h.add(static_cast<std::int64_t>(degree(i)));
  }
  return h;
}

void LinkTable::set_neighbors(NodeIndex node,
                              std::vector<NodeIndex> neighbors) {
  if (node >= node_count_) {
    throw std::out_of_range("LinkTable::set_neighbors: node out of range");
  }
  std::sort(neighbors.begin(), neighbors.end());
  neighbors.erase(std::unique(neighbors.begin(), neighbors.end()),
                  neighbors.end());
  neighbors.erase(std::remove(neighbors.begin(), neighbors.end(), node),
                  neighbors.end());
  if (!neighbors.empty() && neighbors.back() >= node_count_) {
    throw std::out_of_range("LinkTable::set_neighbors: neighbor out of range");
  }
  if (!finalized_) {
    rows_[node] = std::move(neighbors);
    return;
  }
  // CSR edit path: splice the row in place. Equal-size rewrites touch only
  // the row; size changes shift the tail of the flat arrays once.
  const std::size_t begin = offsets_[node];
  const std::size_t old_size = offsets_[node + 1] - begin;
  const std::size_t new_size = neighbors.size();
  if (new_size > old_size) {
    checked_offset(targets_.size() + (new_size - old_size));
  }
  const auto row_begin =
      targets_.begin() + static_cast<std::ptrdiff_t>(begin);
  if (new_size > old_size) {
    targets_.insert(row_begin + static_cast<std::ptrdiff_t>(old_size),
                    new_size - old_size, 0);
    if (!ids_.empty()) {
      target_ids_.insert(target_ids_.begin() +
                             static_cast<std::ptrdiff_t>(begin + old_size),
                         new_size - old_size, 0);
    }
  } else if (new_size < old_size) {
    targets_.erase(row_begin + static_cast<std::ptrdiff_t>(new_size),
                   row_begin + static_cast<std::ptrdiff_t>(old_size));
    if (!ids_.empty()) {
      target_ids_.erase(
          target_ids_.begin() + static_cast<std::ptrdiff_t>(begin + new_size),
          target_ids_.begin() + static_cast<std::ptrdiff_t>(begin + old_size));
    }
  }
  for (std::size_t k = 0; k < new_size; ++k) {
    targets_[begin + k] = neighbors[k];
    if (!ids_.empty()) target_ids_[begin + k] = ids_[neighbors[k]];
  }
  if (new_size != old_size) {
    const std::ptrdiff_t delta = static_cast<std::ptrdiff_t>(new_size) -
                                 static_cast<std::ptrdiff_t>(old_size);
    for (std::size_t m = node + 1; m <= node_count_; ++m) {
      offsets_[m] = static_cast<LinkOffset>(
          static_cast<std::ptrdiff_t>(offsets_[m]) + delta);
    }
    // Keep the ledger holding in step with the spliced arrays; tables
    // built before the accountant was installed stay off the ledger.
    if (mem_.held() != 0) account_csr();
  }
}

bool operator==(const LinkTable& a, const LinkTable& b) {
  return a.finalized_ && b.finalized_ && a.node_count_ == b.node_count_ &&
         a.offsets_ == b.offsets_ && a.targets_ == b.targets_ &&
         a.target_ids_ == b.target_ids_;
}

}  // namespace canon
