#include "overlay/link_table.h"

#include <algorithm>
#include <stdexcept>

namespace canon {

LinkTable::LinkTable(std::size_t node_count) : out_(node_count) {}

void LinkTable::add(std::uint32_t from, std::uint32_t to) {
  if (from >= out_.size() || to >= out_.size()) {
    throw std::out_of_range("LinkTable::add: node index out of range");
  }
  if (from == to) return;
  out_[from].push_back(to);
  finalized_ = false;
}

void LinkTable::finalize() {
  for (auto& list : out_) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
  finalized_ = true;
}

std::span<const std::uint32_t> LinkTable::neighbors(std::uint32_t node) const {
  if (!finalized_) throw std::logic_error("LinkTable: not finalized");
  const auto& list = out_[node];
  return {list.data(), list.size()};
}

bool LinkTable::has_link(std::uint32_t from, std::uint32_t to) const {
  if (!finalized_) throw std::logic_error("LinkTable: not finalized");
  const auto& list = out_[from];
  return std::binary_search(list.begin(), list.end(), to);
}

std::size_t LinkTable::degree(std::uint32_t node) const {
  if (!finalized_) throw std::logic_error("LinkTable: not finalized");
  return out_[node].size();
}

std::size_t LinkTable::total_links() const {
  if (!finalized_) throw std::logic_error("LinkTable: not finalized");
  std::size_t total = 0;
  for (const auto& list : out_) total += list.size();
  return total;
}

double LinkTable::mean_degree() const {
  if (out_.empty()) return 0;
  return static_cast<double>(total_links()) / static_cast<double>(out_.size());
}

Histogram LinkTable::degree_histogram() const {
  Histogram h;
  for (std::uint32_t i = 0; i < out_.size(); ++i) {
    h.add(static_cast<std::int64_t>(degree(i)));
  }
  return h;
}

void LinkTable::set_neighbors(std::uint32_t node,
                              std::vector<std::uint32_t> neighbors) {
  if (node >= out_.size()) {
    throw std::out_of_range("LinkTable::set_neighbors: node out of range");
  }
  std::sort(neighbors.begin(), neighbors.end());
  neighbors.erase(std::unique(neighbors.begin(), neighbors.end()),
                  neighbors.end());
  neighbors.erase(std::remove(neighbors.begin(), neighbors.end(), node),
                  neighbors.end());
  out_[node] = std::move(neighbors);
}

}  // namespace canon
