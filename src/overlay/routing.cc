#include "overlay/routing.h"

#include <stdexcept>

namespace canon {

namespace {

int hop_guard(const OverlayNetwork& net) {
  // Generous upper bound; all routes in a correct structure finish in
  // O(log n) << 4N hops. Exceeding this indicates a broken link table.
  return 4 * net.space().bits() + 16;
}

}  // namespace

RingRouter::RingRouter(const OverlayNetwork& net, const LinkTable& links)
    : net_(&net),
      links_(&links),
      max_hops_(hop_guard(net)),
      routes_counter_(telemetry::maybe_counter("ring_router.routes")),
      hops_counter_(telemetry::maybe_counter("ring_router.hops")),
      failures_counter_(telemetry::maybe_counter("ring_router.failures")) {
  if (links.node_count() != net.size()) {
    throw std::invalid_argument("RingRouter: link table size mismatch");
  }
  if (!links.finalized()) {
    throw std::invalid_argument("RingRouter: link table not finalized");
  }
}

Route RingRouter::route(std::uint32_t from, NodeId key) const {
  const IdSpace& space = net_->space();
  Route r;
  r.path.push_back(from);
  std::uint32_t current = from;
  const std::uint64_t trace_id = sink_ ? sink_->begin_lookup(from, key) : 0;
  for (int step = 0; step < max_hops_; ++step) {
    const std::uint64_t remaining = space.ring_distance(net_->id(current), key);
    // Choose the neighbor that covers the most clockwise distance without
    // overshooting the key.
    std::uint32_t best = current;
    std::uint64_t best_covered = 0;
    const auto neighbors = links_->neighbors(current);
    for (const std::uint32_t nb : neighbors) {
      const std::uint64_t covered =
          space.ring_distance(net_->id(current), net_->id(nb));
      if (covered <= remaining && covered > best_covered) {
        best_covered = covered;
        best = nb;
      }
    }
    if (best == current) {
      r.ok = (current == net_->responsible(key));
      if (routes_counter_) {
        routes_counter_->inc();
        hops_counter_->inc(static_cast<std::uint64_t>(r.hops()));
        if (!r.ok) failures_counter_->inc();
      }
      if (sink_) sink_->end_lookup(trace_id, r.ok, current);
      return r;
    }
    if (sink_) {
      telemetry::HopRecord hop;
      hop.lookup = trace_id;
      hop.from = current;
      hop.to = best;
      hop.hop_index = step;
      hop.level = net_->lca_level(current, best);
      hop.candidates = static_cast<std::uint32_t>(neighbors.size());
      sink_->on_hop(hop);
    }
    current = best;
    r.path.push_back(current);
  }
  r.ok = false;  // hop guard exceeded: structurally broken table
  if (routes_counter_) {
    routes_counter_->inc();
    hops_counter_->inc(static_cast<std::uint64_t>(r.hops()));
    failures_counter_->inc();
  }
  if (sink_) sink_->end_lookup(trace_id, false, current);
  return r;
}

Route RingRouter::route_lookahead(std::uint32_t from, NodeId key) const {
  const IdSpace& space = net_->space();
  Route r;
  r.path.push_back(from);
  std::uint32_t current = from;
  const std::uint64_t trace_id = sink_ ? sink_->begin_lookup(from, key) : 0;
  for (int step = 0; step < max_hops_; ++step) {
    const NodeId cur_id = net_->id(current);
    const std::uint64_t remaining = space.ring_distance(cur_id, key);
    // Evaluate all 1-step and 2-step plans that never overshoot and commit
    // to the whole plan with the smallest final remaining distance.
    std::uint32_t best_v = current;
    std::uint32_t best_w = current;  // == best_v for 1-step plans
    std::uint64_t best_final = remaining;
    const auto neighbors = links_->neighbors(current);
    for (const std::uint32_t v : neighbors) {
      const std::uint64_t covered1 =
          space.ring_distance(cur_id, net_->id(v));
      if (covered1 == 0 || covered1 > remaining) continue;
      const std::uint64_t after1 = remaining - covered1;
      if (after1 < best_final) {
        best_final = after1;
        best_v = v;
        best_w = v;
      }
      for (const std::uint32_t w : links_->neighbors(v)) {
        const std::uint64_t covered2 =
            space.ring_distance(net_->id(v), net_->id(w));
        if (covered2 == 0 || covered2 > after1) continue;
        const std::uint64_t after2 = after1 - covered2;
        if (after2 < best_final) {
          best_final = after2;
          best_v = v;
          best_w = w;
        }
      }
    }
    if (best_v == current) {
      r.ok = (current == net_->responsible(key));
      if (routes_counter_) {
        routes_counter_->inc();
        hops_counter_->inc(static_cast<std::uint64_t>(r.hops()));
        if (!r.ok) failures_counter_->inc();
      }
      if (sink_) sink_->end_lookup(trace_id, r.ok, current);
      return r;
    }
    if (sink_) {
      telemetry::HopRecord hop;
      hop.lookup = trace_id;
      hop.from = current;
      hop.to = best_v;
      hop.hop_index = r.hops();
      hop.level = net_->lca_level(current, best_v);
      hop.candidates = static_cast<std::uint32_t>(neighbors.size());
      sink_->on_hop(hop);
      if (best_w != best_v) {
        telemetry::HopRecord hop2;
        hop2.lookup = trace_id;
        hop2.from = best_v;
        hop2.to = best_w;
        hop2.hop_index = r.hops() + 1;
        hop2.level = net_->lca_level(best_v, best_w);
        hop2.candidates =
            static_cast<std::uint32_t>(links_->neighbors(best_v).size());
        sink_->on_hop(hop2);
      }
    }
    r.path.push_back(best_v);
    if (best_w != best_v) r.path.push_back(best_w);
    current = best_w;
  }
  r.ok = false;
  if (routes_counter_) {
    routes_counter_->inc();
    hops_counter_->inc(static_cast<std::uint64_t>(r.hops()));
    failures_counter_->inc();
  }
  if (sink_) sink_->end_lookup(trace_id, false, current);
  return r;
}

XorRouter::XorRouter(const OverlayNetwork& net, const LinkTable& links)
    : net_(&net),
      links_(&links),
      max_hops_(hop_guard(net)),
      routes_counter_(telemetry::maybe_counter("xor_router.routes")),
      hops_counter_(telemetry::maybe_counter("xor_router.hops")),
      failures_counter_(telemetry::maybe_counter("xor_router.failures")) {
  if (links.node_count() != net.size()) {
    throw std::invalid_argument("XorRouter: link table size mismatch");
  }
  if (!links.finalized()) {
    throw std::invalid_argument("XorRouter: link table not finalized");
  }
}

Route XorRouter::route(std::uint32_t from, NodeId key) const {
  const IdSpace& space = net_->space();
  Route r;
  r.path.push_back(from);
  std::uint32_t current = from;
  const std::uint64_t trace_id = sink_ ? sink_->begin_lookup(from, key) : 0;
  for (int step = 0; step < max_hops_; ++step) {
    const std::uint64_t remaining = space.xor_distance(net_->id(current), key);
    std::uint32_t best = current;
    std::uint64_t best_remaining = remaining;
    const auto neighbors = links_->neighbors(current);
    for (const std::uint32_t nb : neighbors) {
      const std::uint64_t d = space.xor_distance(net_->id(nb), key);
      if (d < best_remaining) {
        best_remaining = d;
        best = nb;
      }
    }
    if (best == current) {
      r.ok = (current == net_->xor_closest(key));
      if (routes_counter_) {
        routes_counter_->inc();
        hops_counter_->inc(static_cast<std::uint64_t>(r.hops()));
        if (!r.ok) failures_counter_->inc();
      }
      if (sink_) sink_->end_lookup(trace_id, r.ok, current);
      return r;
    }
    if (sink_) {
      telemetry::HopRecord hop;
      hop.lookup = trace_id;
      hop.from = current;
      hop.to = best;
      hop.hop_index = step;
      hop.level = net_->lca_level(current, best);
      hop.candidates = static_cast<std::uint32_t>(neighbors.size());
      sink_->on_hop(hop);
    }
    current = best;
    r.path.push_back(current);
  }
  r.ok = false;
  if (routes_counter_) {
    routes_counter_->inc();
    hops_counter_->inc(static_cast<std::uint64_t>(r.hops()));
    failures_counter_->inc();
  }
  if (sink_) sink_->end_lookup(trace_id, false, current);
  return r;
}

}  // namespace canon
