#include "overlay/routing.h"

#include <stdexcept>

namespace canon {

namespace {

constexpr std::size_t kNoCandidate = static_cast<std::size_t>(-1);

int hop_guard(const OverlayNetwork& net) {
  // Generous upper bound; all routes in a correct structure finish in
  // O(log n) << 4N hops. Exceeding this indicates a broken link table.
  return 4 * net.space().bits() + 16;
}

/// Shared epilogue for every route() exit (success, stuck, hop guard):
/// stamps the outcome, bumps the route/hop/failure counters, and closes
/// the trace.
void finish_route(Route& r, bool ok, telemetry::Counter* routes,
                  telemetry::Counter* hops, telemetry::Counter* failures,
                  telemetry::RouteTraceSink* sink, std::uint64_t trace_id,
                  std::uint32_t terminal) {
  r.ok = ok;
  if (routes) {
    routes->inc();
    hops->inc(static_cast<std::uint64_t>(r.hops()));
    if (!ok) failures->inc();
  }
  if (sink) sink->end_lookup(trace_id, ok, terminal);
}

/// NodeIds of `links`' neighbors of `node`, read from the CSR inline-id
/// array when the table captured it, else nullptr (caller falls back to
/// per-candidate net lookups — tables finalized without ids).
const NodeId* inline_ids_or_null(const LinkTable& links, std::uint32_t node) {
  return links.has_inline_ids() ? links.neighbor_ids(node).data() : nullptr;
}

}  // namespace

RingRouter::RingRouter(const OverlayNetwork& net, const LinkTable& links)
    : net_(&net),
      links_(&links),
      max_hops_(hop_guard(net)),
      routes_counter_(telemetry::maybe_counter("ring_router.routes")),
      hops_counter_(telemetry::maybe_counter("ring_router.hops")),
      failures_counter_(telemetry::maybe_counter("ring_router.failures")) {
  if (links.node_count() != net.size()) {
    throw std::invalid_argument("RingRouter: link table size mismatch");
  }
  if (!links.finalized()) {
    throw std::invalid_argument("RingRouter: link table not finalized");
  }
}

Route RingRouter::route(std::uint32_t from, NodeId key) const {
  const IdSpace& space = net_->space();
  Route r;
  r.path.push_back(from);
  std::uint32_t current = from;
  const std::uint64_t trace_id = sink_ ? sink_->begin_lookup(from, key) : 0;
  for (int step = 0; step < max_hops_; ++step) {
    const std::uint64_t remaining = space.ring_distance(net_->id(current), key);
    // Choose the neighbor that covers the most clockwise distance without
    // overshooting the key. The scan reads only the contiguous NodeId
    // array; the winner's index is fetched once afterwards.
    std::size_t best_j = kNoCandidate;
    std::uint64_t best_covered = 0;
    const NodeId cur_id = net_->id(current);
    const auto neighbors = links_->neighbors(current);
    const NodeId* nb_ids = inline_ids_or_null(*links_, current);
    for (std::size_t j = 0; j < neighbors.size(); ++j) {
      const NodeId nb_id = nb_ids ? nb_ids[j] : net_->id(neighbors[j]);
      const std::uint64_t covered = space.ring_distance(cur_id, nb_id);
      if (covered <= remaining && covered > best_covered) {
        best_covered = covered;
        best_j = j;
      }
    }
    const std::uint32_t best =
        best_j == kNoCandidate ? current : neighbors[best_j];
    if (best == current) {
      finish_route(r, current == net_->responsible(key), routes_counter_,
                   hops_counter_, failures_counter_, sink_, trace_id, current);
      return r;
    }
    if (sink_) {
      telemetry::HopRecord hop;
      hop.lookup = trace_id;
      hop.from = current;
      hop.to = best;
      hop.hop_index = step;
      hop.level = net_->lca_level(current, best);
      hop.candidates = static_cast<std::uint32_t>(neighbors.size());
      sink_->on_hop(hop);
    }
    current = best;
    r.path.push_back(current);
  }
  // Hop guard exceeded: structurally broken table.
  finish_route(r, false, routes_counter_, hops_counter_, failures_counter_,
               sink_, trace_id, current);
  return r;
}

Route RingRouter::route_lookahead(std::uint32_t from, NodeId key) const {
  const IdSpace& space = net_->space();
  Route r;
  r.path.push_back(from);
  std::uint32_t current = from;
  const std::uint64_t trace_id = sink_ ? sink_->begin_lookup(from, key) : 0;
  for (int step = 0; step < max_hops_; ++step) {
    const NodeId cur_id = net_->id(current);
    const std::uint64_t remaining = space.ring_distance(cur_id, key);
    // Evaluate all 1-step and 2-step plans that never overshoot and commit
    // to the whole plan with the smallest final remaining distance.
    std::uint32_t best_v = current;
    std::uint32_t best_w = current;  // == best_v for 1-step plans
    std::uint64_t best_final = remaining;
    const auto neighbors = links_->neighbors(current);
    const NodeId* nb_ids = inline_ids_or_null(*links_, current);
    for (std::size_t j = 0; j < neighbors.size(); ++j) {
      const std::uint32_t v = neighbors[j];
      const NodeId v_id = nb_ids ? nb_ids[j] : net_->id(v);
      const std::uint64_t covered1 = space.ring_distance(cur_id, v_id);
      if (covered1 == 0 || covered1 > remaining) continue;
      const std::uint64_t after1 = remaining - covered1;
      if (after1 < best_final) {
        best_final = after1;
        best_v = v;
        best_w = v;
      }
      const auto second = links_->neighbors(v);
      const NodeId* second_ids = inline_ids_or_null(*links_, v);
      for (std::size_t k = 0; k < second.size(); ++k) {
        const NodeId w_id = second_ids ? second_ids[k] : net_->id(second[k]);
        const std::uint64_t covered2 = space.ring_distance(v_id, w_id);
        if (covered2 == 0 || covered2 > after1) continue;
        const std::uint64_t after2 = after1 - covered2;
        if (after2 < best_final) {
          best_final = after2;
          best_v = v;
          best_w = second[k];
        }
      }
    }
    if (best_v == current) {
      finish_route(r, current == net_->responsible(key), routes_counter_,
                   hops_counter_, failures_counter_, sink_, trace_id, current);
      return r;
    }
    if (sink_) {
      telemetry::HopRecord hop;
      hop.lookup = trace_id;
      hop.from = current;
      hop.to = best_v;
      hop.hop_index = r.hops();
      hop.level = net_->lca_level(current, best_v);
      hop.candidates = static_cast<std::uint32_t>(neighbors.size());
      sink_->on_hop(hop);
      if (best_w != best_v) {
        telemetry::HopRecord hop2;
        hop2.lookup = trace_id;
        hop2.from = best_v;
        hop2.to = best_w;
        hop2.hop_index = r.hops() + 1;
        hop2.level = net_->lca_level(best_v, best_w);
        hop2.candidates =
            static_cast<std::uint32_t>(links_->neighbors(best_v).size());
        sink_->on_hop(hop2);
      }
    }
    r.path.push_back(best_v);
    if (best_w != best_v) r.path.push_back(best_w);
    current = best_w;
  }
  finish_route(r, false, routes_counter_, hops_counter_, failures_counter_,
               sink_, trace_id, current);
  return r;
}

XorRouter::XorRouter(const OverlayNetwork& net, const LinkTable& links)
    : net_(&net),
      links_(&links),
      max_hops_(hop_guard(net)),
      routes_counter_(telemetry::maybe_counter("xor_router.routes")),
      hops_counter_(telemetry::maybe_counter("xor_router.hops")),
      failures_counter_(telemetry::maybe_counter("xor_router.failures")) {
  if (links.node_count() != net.size()) {
    throw std::invalid_argument("XorRouter: link table size mismatch");
  }
  if (!links.finalized()) {
    throw std::invalid_argument("XorRouter: link table not finalized");
  }
}

Route XorRouter::route(std::uint32_t from, NodeId key) const {
  const IdSpace& space = net_->space();
  Route r;
  r.path.push_back(from);
  std::uint32_t current = from;
  const std::uint64_t trace_id = sink_ ? sink_->begin_lookup(from, key) : 0;
  for (int step = 0; step < max_hops_; ++step) {
    const std::uint64_t remaining = space.xor_distance(net_->id(current), key);
    std::size_t best_j = kNoCandidate;
    std::uint64_t best_remaining = remaining;
    const auto neighbors = links_->neighbors(current);
    const NodeId* nb_ids = inline_ids_or_null(*links_, current);
    for (std::size_t j = 0; j < neighbors.size(); ++j) {
      const NodeId nb_id = nb_ids ? nb_ids[j] : net_->id(neighbors[j]);
      const std::uint64_t d = space.xor_distance(nb_id, key);
      if (d < best_remaining) {
        best_remaining = d;
        best_j = j;
      }
    }
    const std::uint32_t best =
        best_j == kNoCandidate ? current : neighbors[best_j];
    if (best == current) {
      finish_route(r, current == net_->xor_closest(key), routes_counter_,
                   hops_counter_, failures_counter_, sink_, trace_id, current);
      return r;
    }
    if (sink_) {
      telemetry::HopRecord hop;
      hop.lookup = trace_id;
      hop.from = current;
      hop.to = best;
      hop.hop_index = step;
      hop.level = net_->lca_level(current, best);
      hop.candidates = static_cast<std::uint32_t>(neighbors.size());
      sink_->on_hop(hop);
    }
    current = best;
    r.path.push_back(current);
  }
  finish_route(r, false, routes_counter_, hops_counter_, failures_counter_,
               sink_, trace_id, current);
  return r;
}

}  // namespace canon
