#include "overlay/routing.h"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <utility>

#include "common/prefetch.h"
#include "overlay/batch_probe.h"

namespace canon {

namespace {

constexpr std::size_t kNoCandidate = static_cast<std::size_t>(-1);
static_assert(kNoCandidate == detail::kNoScanWinner,
              "scalar cores and batch kernels share the sentinel");

// Process-wide batch window (see routing.h). Relaxed atomics: the knob is
// set once at startup (bench flag parsing) or between batches in tests —
// never mid-batch — so ordering carries no data.
std::atomic<int> g_probe_batch_width{kDefaultProbeBatchWidth};

int hop_guard(const OverlayNetwork& net) {
  // Generous upper bound; all routes in a correct structure finish in
  // O(log n) << 4N hops. Exceeding this indicates a broken link table.
  return 4 * net.space().bits() + 16;
}

/// NodeIds of `links`' neighbors of `node`, read from the CSR inline-id
/// array when the table captured it, else nullptr (caller falls back to
/// per-candidate net lookups — tables finalized without ids).
const NodeId* inline_ids_or_null(const LinkTable& links, NodeIndex node) {
  return links.has_inline_ids() ? links.neighbor_ids(node).data() : nullptr;
}

// The greedy loops below are shared by every routing entry point through a
// recorder policy: route()/route_into() pass a recorder that appends each
// hop to a path vector, probe() passes a no-op recorder and the loop
// degrades to pure hop counting. The cores touch no telemetry and no
// mutable router state, so they are safe to run concurrently on one const
// router — the batch QueryEngine's fan-out relies on that.

struct NullRecorder {
  void operator()(NodeIndex) const {}
};

struct PathRecorder {
  std::vector<NodeIndex>* path;
  void operator()(NodeIndex node) const { path->push_back(node); }
};

/// Greedy clockwise core. Records every node entered after `from`;
/// returns terminal/hops/ok.
template <typename Recorder>
RouteProbe ring_core(const OverlayNetwork& net, const LinkTable& links,
                     int max_hops, NodeIndex from, NodeId key,
                     Recorder&& record) {
  const IdSpace& space = net.space();
  NodeIndex current = from;
  int hops = 0;
  for (int step = 0; step < max_hops; ++step) {
    const std::uint64_t remaining = space.ring_distance(net.id(current), key);
    // Choose the neighbor that covers the most clockwise distance without
    // overshooting the key. The scan reads only the contiguous NodeId
    // array; the winner's index is fetched once afterwards. The inline-id
    // path shares the branch-light kernel with the batch probe
    // (overlay/batch_probe.h) — one winner-selection to test, one to
    // autovectorize.
    std::size_t best_j = kNoCandidate;
    const NodeId cur_id = net.id(current);
    const auto neighbors = links.neighbors(current);
    const NodeId* nb_ids = inline_ids_or_null(links, current);
    if (nb_ids) {
      best_j = detail::ring_scan_argbest(nb_ids, neighbors.size(), cur_id,
                                         space.mask(), remaining);
    } else {
      std::uint64_t best_covered = 0;
      for (std::size_t j = 0; j < neighbors.size(); ++j) {
        const std::uint64_t covered =
            space.ring_distance(cur_id, net.id(neighbors[j]));
        if (covered <= remaining && covered > best_covered) {
          best_covered = covered;
          best_j = j;
        }
      }
    }
    const NodeIndex best =
        best_j == kNoCandidate ? current : neighbors[best_j];
    if (best == current) {
      return {current, hops, current == net.responsible(key)};
    }
    current = best;
    ++hops;
    record(current);
  }
  // Hop guard exceeded: structurally broken table.
  return {current, hops, false};
}

/// Greedy-with-lookahead core (Symphony §3.1): commits to the whole best
/// 2-step plan, recording one or two nodes per iteration.
template <typename Recorder>
RouteProbe ring_lookahead_core(const OverlayNetwork& net,
                               const LinkTable& links, int max_hops,
                               NodeIndex from, NodeId key,
                               Recorder&& record) {
  const IdSpace& space = net.space();
  NodeIndex current = from;
  int hops = 0;
  for (int step = 0; step < max_hops; ++step) {
    const NodeId cur_id = net.id(current);
    const std::uint64_t remaining = space.ring_distance(cur_id, key);
    // Evaluate all 1-step and 2-step plans that never overshoot and commit
    // to the whole plan with the smallest final remaining distance.
    NodeIndex best_v = current;
    NodeIndex best_w = current;  // == best_v for 1-step plans
    std::uint64_t best_final = remaining;
    const auto neighbors = links.neighbors(current);
    const NodeId* nb_ids = inline_ids_or_null(links, current);
    for (std::size_t j = 0; j < neighbors.size(); ++j) {
      const NodeIndex v = neighbors[j];
      const NodeId v_id = nb_ids ? nb_ids[j] : net.id(v);
      const std::uint64_t covered1 = space.ring_distance(cur_id, v_id);
      if (covered1 == 0 || covered1 > remaining) continue;
      const std::uint64_t after1 = remaining - covered1;
      if (after1 < best_final) {
        best_final = after1;
        best_v = v;
        best_w = v;
      }
      const auto second = links.neighbors(v);
      const NodeId* second_ids = inline_ids_or_null(links, v);
      for (std::size_t k = 0; k < second.size(); ++k) {
        const NodeId w_id = second_ids ? second_ids[k] : net.id(second[k]);
        const std::uint64_t covered2 = space.ring_distance(v_id, w_id);
        if (covered2 == 0 || covered2 > after1) continue;
        const std::uint64_t after2 = after1 - covered2;
        if (after2 < best_final) {
          best_final = after2;
          best_v = v;
          best_w = second[k];
        }
      }
    }
    if (best_v == current) {
      return {current, hops, current == net.responsible(key)};
    }
    record(best_v);
    ++hops;
    if (best_w != best_v) {
      record(best_w);
      ++hops;
    }
    current = best_w;
  }
  return {current, hops, false};
}

/// Greedy XOR-distance core.
template <typename Recorder>
RouteProbe xor_core(const OverlayNetwork& net, const LinkTable& links,
                    int max_hops, NodeIndex from, NodeId key,
                    Recorder&& record) {
  const IdSpace& space = net.space();
  NodeIndex current = from;
  int hops = 0;
  for (int step = 0; step < max_hops; ++step) {
    const std::uint64_t remaining = space.xor_distance(net.id(current), key);
    std::size_t best_j = kNoCandidate;
    const auto neighbors = links.neighbors(current);
    const NodeId* nb_ids = inline_ids_or_null(links, current);
    if (nb_ids) {
      best_j = detail::xor_scan_argbest(nb_ids, neighbors.size(), key,
                                        space.mask(), remaining);
    } else {
      std::uint64_t best_remaining = remaining;
      for (std::size_t j = 0; j < neighbors.size(); ++j) {
        const std::uint64_t d = space.xor_distance(net.id(neighbors[j]), key);
        if (d < best_remaining) {
          best_remaining = d;
          best_j = j;
        }
      }
    }
    const NodeIndex best =
        best_j == kNoCandidate ? current : neighbors[best_j];
    if (best == current) {
      return {current, hops, current == net.xor_closest(key)};
    }
    current = best;
    ++hops;
    record(current);
  }
  return {current, hops, false};
}

/// Resets `out` (keeping its capacity) and stamps the probe result of a
/// path-recording core run onto it.
void begin_route(Route& out, NodeIndex from) {
  out.path.clear();
  out.path.push_back(from);
  out.ok = false;
}

/// Telemetry epilogue of the single-query route() paths: bumps the
/// route/hop/failure counters and, when a sink is attached, replays the
/// completed path as begin/on_hop*/end events. The replayed records are
/// field-identical to what the pre-refactor inline emission produced: a
/// hop's `candidates` is the out-degree of its `from` node and its level
/// the endpoints' LCA depth, both recomputable from the path.
void finish_route(const Route& r, NodeId key, const OverlayNetwork& net,
                  const LinkTable& links, telemetry::Counter* routes,
                  telemetry::Counter* hops, telemetry::Counter* failures,
                  telemetry::RouteTraceSink* sink) {
  if (routes) {
    routes->inc();
    hops->inc(static_cast<std::uint64_t>(r.hops()));
    if (!r.ok) failures->inc();
  }
  if (!sink) return;
  const std::uint64_t trace_id = sink->begin_lookup(r.source(), key);
  for (std::size_t i = 0; i + 1 < r.path.size(); ++i) {
    telemetry::HopRecord hop;
    hop.lookup = trace_id;
    hop.from = r.path[i];
    hop.to = r.path[i + 1];
    hop.hop_index = static_cast<int>(i);
    hop.level = net.lca_level(r.path[i], r.path[i + 1]);
    hop.candidates =
        static_cast<std::uint32_t>(links.neighbors(r.path[i]).size());
    sink->on_hop(hop);
  }
  sink->end_lookup(trace_id, r.ok, r.terminal());
}

// Lane state + metric hooks of the interleaved batch kernels, driven by
// detail::interleaved_probe_batch (overlay/batch_probe.h has the
// fetch/advance contract, round structure, and equivalence argument).
// Both steppers carry the current node's NodeId forward from the winning
// scan entry — target_ids_[k] is ids[targets_[k]] by CSR construction —
// so the steady-state hop never touches the overlay's id array; only a
// fresh lane reads it once (need_id).

struct RingStepper {
  const OverlayNetwork& net;
  const LinkTable& links;
  std::uint64_t mask;
  int max_hops;

  struct Lane {
    std::size_t query_index;
    NodeIndex current;
    NodeId cur_id;  // == net.id(current) once need_id clears
    NodeId key;
    int hops;
    LinkOffset row_begin;
    LinkOffset row_end;
    bool need_id;
  };

  void begin(Lane& l, const Query& q, std::size_t query_index) const {
    l.query_index = query_index;
    l.current = q.from;
    l.key = q.key;
    l.hops = 0;
    l.need_id = true;
    prefetch_ro(net.ids().data() + q.from);
    links.prefetch_row_bounds(q.from);
  }

  void fetch(Lane& l) const {
    if (l.need_id) {
      l.cur_id = net.id(l.current);
      l.need_id = false;
    }
    const auto [b, e] = links.row_bounds(l.current);
    l.row_begin = b;
    l.row_end = e;
    links.prefetch_row_payload(b, e);
  }

  bool advance(Lane& l, RouteProbe& out) const {
    if (l.hops >= max_hops) {  // ring_core's hop-guard exhaustion
      out = {l.current, l.hops, false};
      return true;
    }
    const std::uint64_t remaining = (l.key - l.cur_id) & mask;
    const NodeId* ids = links.target_ids_data() + l.row_begin;
    const std::size_t count = l.row_end - l.row_begin;
    const std::size_t best_j =
        detail::ring_scan_argbest(ids, count, l.cur_id, mask, remaining);
    if (best_j == kNoCandidate) {
      out = {l.current, l.hops, l.current == net.responsible(l.key)};
      return true;
    }
    l.current = links.targets_data()[l.row_begin + best_j];
    l.cur_id = ids[best_j];
    ++l.hops;
    links.prefetch_row_bounds(l.current);
    return false;
  }
};

struct XorStepper {
  const OverlayNetwork& net;
  const LinkTable& links;
  std::uint64_t mask;
  int max_hops;

  struct Lane {
    std::size_t query_index;
    NodeIndex current;
    NodeId cur_id;
    NodeId key;
    int hops;
    LinkOffset row_begin;
    LinkOffset row_end;
    bool need_id;
  };

  void begin(Lane& l, const Query& q, std::size_t query_index) const {
    l.query_index = query_index;
    l.current = q.from;
    l.key = q.key;
    l.hops = 0;
    l.need_id = true;
    prefetch_ro(net.ids().data() + q.from);
    links.prefetch_row_bounds(q.from);
  }

  void fetch(Lane& l) const {
    if (l.need_id) {
      l.cur_id = net.id(l.current);
      l.need_id = false;
    }
    const auto [b, e] = links.row_bounds(l.current);
    l.row_begin = b;
    l.row_end = e;
    links.prefetch_row_payload(b, e);
  }

  bool advance(Lane& l, RouteProbe& out) const {
    if (l.hops >= max_hops) {  // xor_core's hop-guard exhaustion
      out = {l.current, l.hops, false};
      return true;
    }
    const std::uint64_t remaining = (l.cur_id ^ l.key) & mask;
    const NodeId* ids = links.target_ids_data() + l.row_begin;
    const std::size_t count = l.row_end - l.row_begin;
    const std::size_t best_j =
        detail::xor_scan_argbest(ids, count, l.key, mask, remaining);
    if (best_j == kNoCandidate) {
      out = {l.current, l.hops, l.current == net.xor_closest(l.key)};
      return true;
    }
    l.current = links.targets_data()[l.row_begin + best_j];
    l.cur_id = ids[best_j];
    ++l.hops;
    links.prefetch_row_bounds(l.current);
    return false;
  }
};

/// Shared probe_batch shell: scalar loop when batching is off or the
/// table has no inline ids (the interleaved kernels scan target_ids_),
/// else the windowed driver.
template <typename Stepper, typename Router>
void probe_batch_with(std::span<const Query> queries,
                      std::span<RouteProbe> out, const Router& router,
                      const OverlayNetwork& net, const LinkTable& links,
                      int max_hops) {
  if (queries.size() != out.size()) {
    throw std::invalid_argument("probe_batch: out.size() != queries.size()");
  }
  const int width = probe_batch_width();
  if (width <= 0 || !links.has_inline_ids()) {
    for (std::size_t i = 0; i < queries.size(); ++i) {
      out[i] = router.probe(queries[i].from, queries[i].key);
    }
    return;
  }
  detail::interleaved_probe_batch(
      queries, out, width, Stepper{net, links, net.space().mask(), max_hops});
}

}  // namespace

int probe_batch_width() {
  return g_probe_batch_width.load(std::memory_order_relaxed);
}

void set_probe_batch_width(int width) {
  g_probe_batch_width.store(std::clamp(width, 0, kMaxProbeBatchWidth),
                            std::memory_order_relaxed);
}

RingRouter::RingRouter(const OverlayNetwork& net, const LinkTable& links)
    : net_(&net),
      links_(&links),
      max_hops_(hop_guard(net)),
      routes_counter_(telemetry::maybe_counter("ring_router.routes")),
      hops_counter_(telemetry::maybe_counter("ring_router.hops")),
      failures_counter_(telemetry::maybe_counter("ring_router.failures")) {
  if (links.node_count() != net.size()) {
    throw std::invalid_argument("RingRouter: link table size mismatch");
  }
  if (!links.finalized()) {
    throw std::invalid_argument("RingRouter: link table not finalized");
  }
}

void RingRouter::route_into(NodeIndex from, NodeId key, Route& out) const {
  begin_route(out, from);
  out.ok =
      ring_core(*net_, *links_, max_hops_, from, key, PathRecorder{&out.path})
          .ok;
}

RouteProbe RingRouter::probe(NodeIndex from, NodeId key) const {
  return ring_core(*net_, *links_, max_hops_, from, key, NullRecorder{});
}

void RingRouter::probe_batch(std::span<const Query> queries,
                             std::span<RouteProbe> out) const {
  probe_batch_with<RingStepper>(queries, out, *this, *net_, *links_,
                                max_hops_);
}

Route RingRouter::route(NodeIndex from, NodeId key) const {
  Route r;
  route_into(from, key, r);
  finish_route(r, key, *net_, *links_, routes_counter_, hops_counter_,
               failures_counter_, sink_);
  return r;
}

void RingRouter::route_lookahead_into(NodeIndex from, NodeId key,
                                      Route& out) const {
  begin_route(out, from);
  out.ok = ring_lookahead_core(*net_, *links_, max_hops_, from, key,
                               PathRecorder{&out.path})
               .ok;
}

RouteProbe RingRouter::probe_lookahead(NodeIndex from, NodeId key) const {
  return ring_lookahead_core(*net_, *links_, max_hops_, from, key,
                             NullRecorder{});
}

Route RingRouter::route_lookahead(NodeIndex from, NodeId key) const {
  Route r;
  route_lookahead_into(from, key, r);
  finish_route(r, key, *net_, *links_, routes_counter_, hops_counter_,
               failures_counter_, sink_);
  return r;
}

XorRouter::XorRouter(const OverlayNetwork& net, const LinkTable& links)
    : net_(&net),
      links_(&links),
      max_hops_(hop_guard(net)),
      routes_counter_(telemetry::maybe_counter("xor_router.routes")),
      hops_counter_(telemetry::maybe_counter("xor_router.hops")),
      failures_counter_(telemetry::maybe_counter("xor_router.failures")) {
  if (links.node_count() != net.size()) {
    throw std::invalid_argument("XorRouter: link table size mismatch");
  }
  if (!links.finalized()) {
    throw std::invalid_argument("XorRouter: link table not finalized");
  }
}

void XorRouter::route_into(NodeIndex from, NodeId key, Route& out) const {
  begin_route(out, from);
  out.ok =
      xor_core(*net_, *links_, max_hops_, from, key, PathRecorder{&out.path})
          .ok;
}

RouteProbe XorRouter::probe(NodeIndex from, NodeId key) const {
  return xor_core(*net_, *links_, max_hops_, from, key, NullRecorder{});
}

void XorRouter::probe_batch(std::span<const Query> queries,
                            std::span<RouteProbe> out) const {
  probe_batch_with<XorStepper>(queries, out, *this, *net_, *links_,
                               max_hops_);
}

Route XorRouter::route(NodeIndex from, NodeId key) const {
  Route r;
  route_into(from, key, r);
  finish_route(r, key, *net_, *links_, routes_counter_, hops_counter_,
               failures_counter_, sink_);
  return r;
}

}  // namespace canon
