// Per-node out-link adjacency produced by the DHT link builders.
//
// The paper counts only out-degree ("the degree of a node refers to its
// out-degree, and does not count incoming edges"); LinkTable mirrors that.
//
// Lifecycle and CSR invariants
// ----------------------------
// A table has two phases. In the *build* phase, add() appends to per-node
// rows; rows are independent, so shard-parallel builders may call add()
// concurrently as long as no two threads add links for the same `from`
// node. finalize() ends the build phase by sorting and deduplicating each
// row and compacting the whole table into a flat CSR (compressed sparse
// row) layout:
//
//   offsets_  : node_count() + 1 monotone offsets into the flat arrays;
//               node m's neighbors occupy [offsets_[m], offsets_[m + 1]).
//               Offsets are 32-bit LinkOffset values: even 10^7-node
//               populations carry well under 2^32 links, and the compact
//               type halves the per-node offset footprint (finalize()
//               throws std::length_error past 2^32 - 1 links).
//   targets_  : all neighbor *indices* (NodeIndex), row by row, each row
//               sorted ascending with no duplicates and no self-links.
//   target_ids_: when finalize(ids) was given the node-ID array, the
//               NodeId of targets_[k] stored at the same position k, so
//               routers read one contiguous array instead of chasing
//               net.id(nb) per candidate. Empty when no ids were given.
//
// After finalize() the table is a read-only routing structure: add()
// throws std::logic_error, and the query methods (neighbors(), has_link(),
// degree(), ...) throw std::logic_error *before* finalize(). The one
// sanctioned post-finalize mutation is set_neighbors(), the dynamic-
// maintenance edit path, which splices the CSR arrays in place (O(degree)
// when the row size is unchanged, O(total_links) otherwise) and keeps
// every invariant above, including target_ids_ alignment.
//
// Mega-scale populations: build_streaming() constructs the same CSR (bit
// for bit) shard by shard, compacting and freeing each shard's build rows
// as soon as it completes, so peak RSS stays near the final CSR size
// instead of CSR + every per-node build vector. See the method comment.
#ifndef CANON_OVERLAY_LINK_TABLE_H
#define CANON_OVERLAY_LINK_TABLE_H

#include <cstdint>
#include <functional>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "common/prefetch.h"
#include "common/stats.h"
#include "telemetry/mem_stats.h"

namespace canon {

/// Index into the flat CSR arrays (a link count). 32-bit by design: see
/// the file comment.
using LinkOffset = std::uint32_t;

/// Mutable while links are being added; `finalize()` compacts the table
/// into a flat CSR layout, after which it is read-only (except for the
/// set_neighbors() maintenance edit path). See the file comment.
class LinkTable {
 public:
  explicit LinkTable(std::size_t node_count);

  std::size_t node_count() const { return node_count_; }

  /// Records a directed link. Self-links are ignored. Duplicate links are
  /// tolerated and collapsed by finalize(). Throws std::logic_error once
  /// the table is finalized. Thread-safe across *distinct* `from` nodes
  /// during a sharded build; never for the same `from` concurrently.
  void add(NodeIndex from, NodeIndex to);

  /// Ends the build phase: sorts and deduplicates every row and compacts
  /// the table into the flat CSR layout. When `ids` is non-empty it must
  /// map node index -> NodeId (size node_count()); neighbor NodeIds are
  /// then stored inline alongside the indices for cache-friendly routing.
  /// Idempotent on an already-finalized table (a no-op).
  void finalize(std::span<const NodeId> ids = {});

  /// Streaming construction for mega-scale populations. Processes nodes
  /// in fixed shards of `shard_nodes`; for each node the callback adds
  /// that node's links through the provided sink table (same contract as
  /// a sharded build over a plain LinkTable). When a shard completes, its
  /// rows are sorted, deduplicated and compacted into one tightly-packed
  /// per-shard chunk and the per-node build vectors are freed
  /// immediately, so peak RSS carries none of the per-node vector
  /// headers, push_back growth slack, or allocator slop that an
  /// add()-then-finalize() build holds across the whole population
  /// (roughly 40-80 bytes per node plus ~1.5x target slack at 10^6+
  /// nodes); chunks themselves are freed as they scatter into the final
  /// CSR. Shards run on the worker pool; chunks are concatenated in
  /// fixed shard order, so the result is byte-identical to
  /// add()-then-finalize() at every thread count (operator== compares
  /// equal).
  ///
  /// `on_shard(done, shards)`, when given, fires after each shard's rows
  /// are compacted, from whichever worker ran the shard (`done` counts
  /// completed shards so far). It must be thread-safe and must not touch
  /// the table; the resource observatory uses it to sample the RSS
  /// timeline mid-build (bench/bench_scale.cc). It never influences the
  /// built table.
  static LinkTable build_streaming(
      std::size_t node_count, std::span<const NodeId> ids,
      std::size_t shard_nodes,
      const std::function<void(NodeIndex node, LinkTable& sink)>& add_links,
      const std::function<void(std::size_t done, std::size_t shards)>&
          on_shard = {});

  bool finalized() const { return finalized_; }

  /// True when finalize(ids) captured inline neighbor NodeIds.
  bool has_inline_ids() const { return !ids_.empty(); }

  /// Neighbors of `node`, sorted ascending (requires finalize()).
  /// Defined inline: this is every router's per-hop access.
  std::span<const NodeIndex> neighbors(NodeIndex node) const {
    if (!finalized_) {
      throw std::logic_error(
          "LinkTable::neighbors: finalize() has not been called");
    }
    return {targets_.data() + offsets_[node],
            static_cast<std::size_t>(offsets_[node + 1] - offsets_[node])};
  }

  /// NodeIds of `node`'s neighbors, aligned with neighbors() (requires
  /// finalize(ids); throws std::logic_error if ids were not captured).
  std::span<const NodeId> neighbor_ids(NodeIndex node) const {
    if (!finalized_ || ids_.empty()) {
      throw_neighbor_ids_unavailable();
    }
    return {target_ids_.data() + offsets_[node],
            static_cast<std::size_t>(offsets_[node + 1] - offsets_[node])};
  }

  // Unchecked row views for the interleaved batch probe kernels
  // (overlay/batch_probe.h). These skip the finalized_/ids_ guards that
  // neighbors()/neighbor_ids() carry — the routers validate once at
  // construction — so the per-hop loop stays branch-free. row_bounds()
  // plus targets_data()/target_ids_data() together are exactly
  // neighbors()/neighbor_ids() decomposed into reusable pieces.

  /// [begin, end) offsets of `node`'s CSR row. Requires finalize().
  std::pair<LinkOffset, LinkOffset> row_bounds(NodeIndex node) const {
    return {offsets_[node], offsets_[node + 1]};
  }
  /// Flat CSR neighbor-index array. Requires finalize().
  const NodeIndex* targets_data() const { return targets_.data(); }
  /// Flat inline neighbor-NodeId array. Requires finalize(ids).
  const NodeId* target_ids_data() const { return target_ids_.data(); }

  /// Prefetch hooks of the group-prefetching discipline: pull `node`'s
  /// row bounds one round before row_bounds() reads them, then the row's
  /// inline-ID and target payload one round before the greedy scan walks
  /// them. Pure scheduling hints — they never change what any kernel
  /// computes (common/prefetch.h).
  void prefetch_row_bounds(NodeIndex node) const {
    prefetch_ro(offsets_.data() + node);
    prefetch_ro(offsets_.data() + node + 1);
  }
  void prefetch_row_payload(LinkOffset begin, LinkOffset end) const {
    // Degrees are O(log n); cap the touched lines anyway so a pathological
    // row cannot evict more than it hides.
    constexpr int kMaxLines = 16;
    constexpr std::size_t kIdsPerLine = 64 / sizeof(NodeId);
    const NodeId* id = target_ids_.data() + begin;
    const NodeId* id_stop = target_ids_.data() + end;
    for (int line = 0; line < kMaxLines && id < id_stop;
         ++line, id += kIdsPerLine) {
      prefetch_ro(id);
    }
    constexpr std::size_t kTargetsPerLine = 64 / sizeof(NodeIndex);
    const NodeIndex* tgt = targets_.data() + begin;
    const NodeIndex* tgt_stop = targets_.data() + end;
    for (int line = 0; line < kMaxLines && tgt < tgt_stop;
         ++line, tgt += kTargetsPerLine) {
      prefetch_ro(tgt);
    }
  }

  /// True if the directed link from->to exists (requires finalize()).
  bool has_link(NodeIndex from, NodeIndex to) const;

  std::size_t degree(NodeIndex node) const {
    if (!finalized_) {
      throw std::logic_error(
          "LinkTable::degree: finalize() has not been called");
    }
    return offsets_[node + 1] - offsets_[node];
  }
  std::size_t total_links() const;
  double mean_degree() const;
  Histogram degree_histogram() const;

  /// Replaces node `node`'s neighbor list (used by dynamic maintenance).
  /// The list is sorted, deduplicated, and stripped of self-links; on a
  /// finalized table the CSR arrays (and inline ids, if captured) are
  /// spliced in place.
  void set_neighbors(NodeIndex node, std::vector<NodeIndex> neighbors);

  /// Structural equality of two finalized tables: same CSR offsets,
  /// targets, and inline ids. The determinism regression tests rely on
  /// this being exact (byte-identical layouts compare equal).
  friend bool operator==(const LinkTable& a, const LinkTable& b);

  /// Test-only backdoor (defined in tests/audit_test.cc): the public API
  /// cannot produce a malformed CSR — set_neighbors() re-sorts — so the
  /// auditor's mutation tests corrupt rows through this hook.
  friend struct LinkTableMutator;

 private:
  [[noreturn]] void throw_neighbor_ids_unavailable() const;

  /// (Re)charges the finalized CSR footprint to the memory accountant
  /// under "link_table.csr" (no-op when none is installed).
  void account_csr();

  std::size_t node_count_ = 0;
  std::vector<std::vector<NodeIndex>> rows_;  // build phase only
  std::vector<LinkOffset> offsets_;           // CSR, node_count_ + 1
  std::vector<NodeIndex> targets_;            // CSR, flat indices
  std::vector<NodeId> target_ids_;            // CSR, flat NodeIds
  std::vector<NodeId> ids_;       // node index -> NodeId (if captured)
  telemetry::MemCharge mem_;      // ledger holding for the CSR arrays
  bool finalized_ = false;
};

}  // namespace canon

#endif  // CANON_OVERLAY_LINK_TABLE_H
