// Per-node out-link adjacency produced by the DHT link builders.
//
// The paper counts only out-degree ("the degree of a node refers to its
// out-degree, and does not count incoming edges"); LinkTable mirrors that.
#ifndef CANON_OVERLAY_LINK_TABLE_H
#define CANON_OVERLAY_LINK_TABLE_H

#include <cstdint>
#include <span>
#include <vector>

#include "common/stats.h"

namespace canon {

/// Mutable while links are being added; `finalize()` sorts and deduplicates
/// each neighbor list, after which the table is read-only.
class LinkTable {
 public:
  explicit LinkTable(std::size_t node_count);

  std::size_t node_count() const { return out_.size(); }

  /// Records a directed link. Self-links are ignored. Duplicate links are
  /// tolerated and collapsed by finalize().
  void add(std::uint32_t from, std::uint32_t to);

  /// Sorts and deduplicates every neighbor list. Idempotent.
  void finalize();

  bool finalized() const { return finalized_; }

  /// Neighbors of `node` (requires finalize()).
  std::span<const std::uint32_t> neighbors(std::uint32_t node) const;

  /// True if the directed link from->to exists (requires finalize()).
  bool has_link(std::uint32_t from, std::uint32_t to) const;

  std::size_t degree(std::uint32_t node) const;
  std::size_t total_links() const;
  double mean_degree() const;
  Histogram degree_histogram() const;

  /// Replaces node `node`'s neighbor list (used by dynamic maintenance).
  void set_neighbors(std::uint32_t node, std::vector<std::uint32_t> neighbors);

 private:
  std::vector<std::vector<std::uint32_t>> out_;
  bool finalized_ = false;
};

}  // namespace canon

#endif  // CANON_OVERLAY_LINK_TABLE_H
