// Batch query engine: the lookup-phase counterpart of the parallel
// construction pipeline (docs/PERFORMANCE.md).
//
// The evaluation fires 10^3..10^5 lookups per (nodes, levels) cell. The
// engine runs such a workload in three deterministic steps:
//
//   1. The workload itself is pre-generated from forked RNG streams:
//      query i draws from base.fork(i), so the (from, key) array is a pure
//      function of (network, seed) at every thread count.
//   2. Routing fans out over fixed shards of kQueryGrain queries via
//      parallel_for on a shared *read-only* router, using the
//      allocation-free hot paths (route_into reusing one scratch Route per
//      shard, or probe() when nobody needs paths).
//   3. Results accumulate into per-shard QueryStats merged in fixed shard
//      order 0..S-1 after the barrier — float summation order is therefore
//      identical at every thread count, making every derived figure
//      byte-identical serial vs. parallel.
//
// Telemetry contract: the hot paths touch no telemetry (see
// overlay/routing.h). The engine tallies hops/failures into per-shard
// scratch and flushes the aggregate to the `query_engine.*` counters on
// the calling thread after the merge; a plain telemetry::Counter is never
// shared across shards. Attaching a trace sink (set_trace) forces the
// whole batch onto one thread, since sinks observe a global event order.
#ifndef CANON_OVERLAY_QUERY_ENGINE_H
#define CANON_OVERLAY_QUERY_ENGINE_H

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "overlay/metrics.h"
#include "overlay/overlay_network.h"
#include "overlay/routing.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace canon {

/// One lookup of a batch workload.
struct Query {
  std::uint32_t from = 0;  ///< source node index
  NodeId key = 0;          ///< target key

  friend bool operator==(const Query&, const Query&) = default;
};

/// Pre-generates `count` queries, query i drawn from `base.fork(i)` by
/// `make(rng, i)`. Parallelized over fixed shards; the result depends only
/// on (base, make), never on the thread count.
std::vector<Query> generate_workload(
    std::size_t count, const Rng& base,
    const std::function<Query(Rng&, std::size_t)>& make);

/// The standard uniform workload: source uniform over nodes, key uniform
/// over the ID space (the draw order within each forked stream matches the
/// figure benches: source first, then key).
std::vector<Query> uniform_workload(const OverlayNetwork& net,
                                    std::size_t count, const Rng& base);

/// Aggregated outcome of one batch. Mirrors what the serial benches
/// accumulated by hand: `hops` and `cost` summarize OK queries only
/// (failed routes historically never entered the figure Summaries), while
/// `total_hops` / `hops_by_level` count every hop taken, so
/// sum(hops_by_level) == total_hops whenever level tracking is on.
struct QueryStats {
  Summary hops;  ///< hop count per OK query
  Summary cost;  ///< path cost per OK query (iff a HopCost is set)
  std::vector<std::uint64_t> hops_by_level;  ///< index l = hops at LCA depth l
  std::uint64_t queries = 0;
  std::uint64_t failures = 0;
  std::uint64_t total_hops = 0;

  std::uint64_t ok() const { return queries - failures; }

  /// Folds `other` in; shard merging calls this in fixed shard order.
  void merge(const QueryStats& other);
};

/// See the file comment. One engine per overlay; routers are passed per
/// run() call and only read.
class QueryEngine {
 public:
  explicit QueryEngine(const OverlayNetwork& net);

  /// Adds per-query path cost to QueryStats::cost (disables probe mode:
  /// costs need the hop-by-hop path). Pass nullptr to clear.
  void set_cost(HopCost cost) { cost_ = std::move(cost); }

  /// Tallies hops by the LCA depth of their endpoints into
  /// QueryStats::hops_by_level (disables probe mode).
  void set_level_tracking(bool on) { level_tracking_ = on; }

  /// Attaches a sink receiving the familiar begin/on_hop/end event stream
  /// for every query. Forces the batch onto the calling thread in workload
  /// order. Engine-emitted HopRecords carry from/to/hop_index/level;
  /// `candidates` is left 0 (the engine has no link table — use a router's
  /// own set_trace for candidate counts). nullptr detaches.
  void set_trace(telemetry::RouteTraceSink* sink) { sink_ = sink; }

  /// Routes one query into the caller's buffer; must be safe to call
  /// concurrently on shared state (the hot-path contract).
  using RouteIntoFn =
      std::function<void(std::uint32_t, NodeId, Route&)>;
  /// Terminal-only variant; pass nullptr when the router has none.
  using ProbeFn = std::function<RouteProbe(std::uint32_t, NodeId)>;

  /// Runs the batch through any router exposing the route_into/probe hot
  /// paths (RingRouter, XorRouter, GroupRouter). When `per_query` is given
  /// it receives one RouteProbe per query, in workload order.
  template <typename Router>
  QueryStats run(std::span<const Query> queries, const Router& router,
                 std::vector<RouteProbe>* per_query = nullptr) const {
    return run_batch(
        queries,
        [&router](std::uint32_t from, NodeId key, Route& out) {
          router.route_into(from, key, out);
        },
        [&router](std::uint32_t from, NodeId key) {
          return router.probe(from, key);
        },
        per_query);
  }

  /// Same, through RingRouter's lookahead variant.
  QueryStats run_lookahead(std::span<const Query> queries,
                           const RingRouter& router,
                           std::vector<RouteProbe>* per_query = nullptr) const {
    return run_batch(
        queries,
        [&router](std::uint32_t from, NodeId key, Route& out) {
          router.route_lookahead_into(from, key, out);
        },
        [&router](std::uint32_t from, NodeId key) {
          return router.probe_lookahead(from, key);
        },
        per_query);
  }

  /// The generic core. Probe mode (no path recorded at all) is used iff
  /// `probe` is non-null and nothing needs paths: no cost fn, no level
  /// tracking, no sink. Routers exposing only route() fit via
  ///   [&](auto f, auto k, Route& out) { out = router.route(f, k); }
  /// with a null probe.
  QueryStats run_batch(std::span<const Query> queries,
                       const RouteIntoFn& route_into, const ProbeFn& probe,
                       std::vector<RouteProbe>* per_query = nullptr) const;

 private:
  const OverlayNetwork* net_;
  HopCost cost_;
  bool level_tracking_ = false;
  telemetry::RouteTraceSink* sink_ = nullptr;
  telemetry::Counter* batches_counter_;
  telemetry::Counter* queries_counter_;
  telemetry::Counter* hops_counter_;
  telemetry::Counter* failures_counter_;
};

/// Queries per shard: one lookup costs ~1µs at 64K nodes, so 256 amortize
/// the shard claim while a 4000-trial cell still yields ~16 shards.
inline constexpr std::size_t kQueryGrain = 256;

}  // namespace canon

#endif  // CANON_OVERLAY_QUERY_ENGINE_H
