// Batch query engine: the lookup-phase counterpart of the parallel
// construction pipeline (docs/PERFORMANCE.md).
//
// The evaluation fires 10^3..10^5 lookups per (nodes, levels) cell. The
// engine runs such a workload in three deterministic steps:
//
//   1. The workload itself is pre-generated from forked RNG streams:
//      query i draws from base.fork(i), so the (from, key) array is a pure
//      function of (network, seed) at every thread count.
//   2. Routing fans out over fixed shards of kQueryGrain queries via
//      parallel_for on a shared *read-only* router, using the
//      allocation-free hot paths (route_into reusing one scratch Route per
//      shard, or probe() when nobody needs paths).
//   3. Results accumulate into per-shard QueryStats merged in fixed shard
//      order 0..S-1 after the barrier — float summation order is therefore
//      identical at every thread count, making every derived figure
//      byte-identical serial vs. parallel.
//
// Telemetry contract: the hot paths touch no telemetry (see
// overlay/routing.h). The engine tallies hops/failures into per-shard
// scratch and flushes the aggregate to the `query_engine.*` counters on
// the calling thread after the merge; a plain telemetry::Counter is never
// shared across shards. Attaching a trace sink (set_trace) forces the
// whole batch onto one thread, since sinks observe a global event order.
#ifndef CANON_OVERLAY_QUERY_ENGINE_H
#define CANON_OVERLAY_QUERY_ENGINE_H

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include <algorithm>

#include "common/parallel.h"
#include "common/rng.h"
#include "common/stats.h"
#include "overlay/fault_plan.h"
#include "overlay/metrics.h"
#include "overlay/overlay_network.h"
#include "overlay/routing.h"
#include "telemetry/load_stats.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace canon {

// struct Query lives in overlay/routing.h (included above) so the
// routers' probe_batch entry points can name it without a cycle.

/// Pre-generates `count` queries, query i drawn from `base.fork(i)` by
/// `make(rng, i)`. Parallelized over fixed shards; the result depends only
/// on (base, make), never on the thread count.
std::vector<Query> generate_workload(
    std::size_t count, const Rng& base,
    const std::function<Query(Rng&, std::size_t)>& make);

/// The standard uniform workload: source uniform over nodes, key uniform
/// over the ID space (the draw order within each forked stream matches the
/// figure benches: source first, then key).
std::vector<Query> uniform_workload(const OverlayNetwork& net,
                                    std::size_t count, const Rng& base);

/// Hot-key workload: source uniform over nodes, key drawn Zipf(theta) from
/// a fixed pool of `key_pool` keys (default: one per node) whose rank
/// order and values derive from `base` — rank 0 is the hottest key. Like
/// uniform_workload the result is a pure function of (net, count, base,
/// theta, key_pool), byte-identical at every thread count.
std::vector<Query> zipf_workload(const OverlayNetwork& net, std::size_t count,
                                 const Rng& base, double theta = 1.25,
                                 std::size_t key_pool = 0);

/// Aggregated outcome of one batch. Mirrors what the serial benches
/// accumulated by hand: `hops` and `cost` summarize OK queries only
/// (failed routes historically never entered the figure Summaries), while
/// `total_hops` / `hops_by_level` count every hop taken, so
/// sum(hops_by_level) == total_hops whenever level tracking is on.
struct QueryStats {
  Summary hops;  ///< hop count per OK query
  Summary cost;  ///< path cost per OK query (iff a HopCost is set)
  std::vector<std::uint64_t> hops_by_level;  ///< index l = hops at LCA depth l
  std::uint64_t queries = 0;
  std::uint64_t failures = 0;
  std::uint64_t total_hops = 0;

  std::uint64_t ok() const { return queries - failures; }

  /// Folds `other` in; shard merging calls this in fixed shard order.
  void merge(const QueryStats& other);
};

/// Outcome of one resilient batch: the plain QueryStats over attempted
/// queries (dead sources are skipped, not failed — they never entered the
/// network) plus the recovery-work tallies. With an empty FaultPlan,
/// `base` is field-identical to what run() returns on the same workload.
struct ResilientStats {
  QueryStats base;  ///< attempted queries only
  std::uint64_t skipped_dead_source = 0;
  std::uint64_t retries = 0;        ///< dropped forwarding attempts retried
  std::uint64_t fallback_hops = 0;  ///< hops taken via recovery paths

  std::uint64_t attempted() const { return base.queries; }

  /// ok / attempted (1.0 on an empty batch).
  double success_rate() const;

  /// ok / (attempted + skipped): a dead source counts against
  /// availability even though it never issued the query.
  double availability() const;

  /// Folds `other` in; shard merging calls this in fixed shard order.
  void merge(const ResilientStats& other);
};

/// Queries per shard: one lookup costs ~1µs at 64K nodes, so 256 amortize
/// the shard claim while a 4000-trial cell still yields ~16 shards. The
/// compile-time default behind the runtime knob below.
inline constexpr std::size_t kQueryGrain = 256;

/// Process-wide queries-per-shard knob (the benches' --grain flag).
/// Returns kQueryGrain until set; set_query_grain(0) resets to the
/// default, other values clamp to >= 1. The shard partition is a pure
/// function of (workload size, grain) — never of the thread count — so
/// any fixed grain yields byte-identical figures at every --threads;
/// different grains may legitimately differ in float-summation order.
std::size_t query_grain();
void set_query_grain(std::size_t grain);

/// Everything one batch run depends on besides (workload, router), in one
/// bag: the three execution knobs every bench used to push through three
/// process-wide setters (--threads / --grain / --batch-width), plus the
/// per-run fault plan and trace sink that previously rode as extra
/// parameters and engine setters. bench::BenchRun builds one from the
/// standard flags (run_options()); engine overloads taking a RunOptions
/// apply the knobs and install the sinks for that call only.
struct RunOptions {
  /// Worker threads (set_parallel_threads semantics: 0 = hardware
  /// concurrency, 1 = the exact serial path).
  int threads = 0;
  /// Queries per shard (set_query_grain semantics: 0 = kQueryGrain).
  std::size_t grain = 0;
  /// Interleaved probe-kernel width (set_probe_batch_width semantics:
  /// 0 = scalar path).
  int batch_width = kDefaultProbeBatchWidth;
  /// Crash/drop schedule for resilient runs; null = fault-free (a
  /// RunOptions-taking run_resilient then matches run() field-for-field).
  /// Borrowed.
  const FaultPlan* fault_plan = nullptr;
  /// Trace sink installed for the duration of the call (forces the batch
  /// onto one thread, like QueryEngine::set_trace). Borrowed.
  telemetry::RouteTraceSink* trace = nullptr;

  /// Installs the three process-wide execution knobs.
  void apply() const;
};

/// See the file comment. One engine per overlay; routers are passed per
/// run() call and only read.
class QueryEngine {
 public:
  explicit QueryEngine(const OverlayNetwork& net);

  /// Adds per-query path cost to QueryStats::cost (disables probe mode:
  /// costs need the hop-by-hop path). Pass nullptr to clear.
  void set_cost(HopCost cost) { cost_ = std::move(cost); }

  /// Tallies hops by the LCA depth of their endpoints into
  /// QueryStats::hops_by_level (disables probe mode).
  void set_level_tracking(bool on) { level_tracking_ = on; }

  /// Attaches a sink receiving the familiar begin/on_hop/end event stream
  /// for every query. Forces the batch onto the calling thread in workload
  /// order. Engine-emitted HopRecords carry from/to/hop_index/level;
  /// `candidates` is left 0 (the engine has no link table — use a router's
  /// own set_trace for candidate counts). nullptr detaches.
  void set_trace(telemetry::RouteTraceSink* sink) { sink_ = sink; }

  /// Attaches an event journal: run_resilient records every crash/revive
  /// its FaultPlan materializes (before any query routes). nullptr
  /// detaches.
  void set_journal(telemetry::EventJournal* journal) { journal_ = journal; }

  /// Attaches a load accountant (telemetry/load_stats.h): every routed
  /// query's path is tallied into per-shard scratch and merged into the
  /// accountant in fixed shard order after the batch — load reports are
  /// therefore byte-identical at every thread count. Disables probe mode
  /// (accounting needs the hop-by-hop path). nullptr detaches.
  void set_load(telemetry::LoadAccountant* load) { load_ = load; }

  /// Routes one query into the caller's buffer; must be safe to call
  /// concurrently on shared state (the hot-path contract).
  using RouteIntoFn =
      std::function<void(NodeIndex, NodeId, Route&)>;
  /// Terminal-only variant; pass nullptr when the router has none.
  using ProbeFn = std::function<RouteProbe(NodeIndex, NodeId)>;
  /// Whole-shard terminal-only variant: the router's interleaved batch
  /// kernel (probe_batch), one result per query. Optional — probe mode
  /// falls back to per-query ProbeFn calls when absent.
  using ProbeBatchFn =
      std::function<void(std::span<const Query>, std::span<RouteProbe>)>;

  /// Runs the batch through any router exposing the route_into/probe hot
  /// paths (RingRouter, XorRouter, GroupRouter). When `per_query` is given
  /// it receives one RouteProbe per query, in workload order. Routers
  /// exposing probe_batch (the memory-level-parallel kernels) are picked
  /// up transparently: probe mode then routes whole shards through the
  /// interleaved kernel — same results, fewer stalls.
  template <typename Router>
  QueryStats run(std::span<const Query> queries, const Router& router,
                 std::vector<RouteProbe>* per_query = nullptr) const {
    ProbeBatchFn probe_batch;
    if constexpr (requires(const Router& r, std::span<const Query> q,
                           std::span<RouteProbe> o) { r.probe_batch(q, o); }) {
      probe_batch = [&router](std::span<const Query> q,
                              std::span<RouteProbe> o) {
        router.probe_batch(q, o);
      };
    }
    return run_batch(
        queries,
        [&router](NodeIndex from, NodeId key, Route& out) {
          router.route_into(from, key, out);
        },
        [&router](NodeIndex from, NodeId key) {
          return router.probe(from, key);
        },
        per_query, probe_batch);
  }

  /// run() under a RunOptions bag: applies the execution knobs, installs
  /// opts.trace for the duration of the call (restoring the previously
  /// attached sink after), and runs the plain batch. opts.fault_plan is
  /// ignored here — use the run_resilient overload for faulty runs.
  template <typename Router>
  QueryStats run(std::span<const Query> queries, const Router& router,
                 const RunOptions& opts,
                 std::vector<RouteProbe>* per_query = nullptr) {
    opts.apply();
    const SinkGuard guard(this, opts.trace);
    return run(queries, router, per_query);
  }

  /// run_resilient() under a RunOptions bag; a null opts.fault_plan runs
  /// fault-free (empty plan).
  template <typename RRouter>
  ResilientStats run_resilient(std::span<const Query> queries,
                               const RRouter& router, const RunOptions& opts,
                               std::vector<RouteProbe>* per_query = nullptr) {
    opts.apply();
    const SinkGuard guard(this, opts.trace);
    static const FaultPlan kNoFaults;
    return run_resilient(queries, router,
                         opts.fault_plan ? *opts.fault_plan : kNoFaults,
                         per_query);
  }

  /// Same, through RingRouter's lookahead variant.
  QueryStats run_lookahead(std::span<const Query> queries,
                           const RingRouter& router,
                           std::vector<RouteProbe>* per_query = nullptr) const {
    return run_batch(
        queries,
        [&router](NodeIndex from, NodeId key, Route& out) {
          router.route_lookahead_into(from, key, out);
        },
        [&router](NodeIndex from, NodeId key) {
          return router.probe_lookahead(from, key);
        },
        per_query);
  }

  /// The generic core. Probe mode (no path recorded at all) is used iff
  /// `probe` is non-null and nothing needs paths: no cost fn, no level
  /// tracking, no sink. Routers exposing only route() fit via
  ///   [&](auto f, auto k, Route& out) { out = router.route(f, k); }
  /// with a null probe. In probe mode a non-null `probe_batch` handles
  /// whole shards at once (the interleaved kernels); it must write
  /// out[i] == probe(queries[i].from, queries[i].key) for every i.
  QueryStats run_batch(std::span<const Query> queries,
                       const RouteIntoFn& route_into, const ProbeFn& probe,
                       std::vector<RouteProbe>* per_query = nullptr,
                       const ProbeBatchFn& probe_batch = {}) const;

  /// The resilient batch mode: materializes `plan` once (journaling its
  /// crash/revive events when a journal is attached) and runs the batch
  /// through a failure-aware router (ResilientRingRouter,
  /// ResilientXorRouter, ResilientCanRouter, ResilientCanCanRouter,
  /// ResilientGroupRouter — anything exposing the Scratch/route_into/probe
  /// shape). Dead-source queries are skipped (per_query gets
  /// {from, 0, false}); each attempted query i derives its drop stream
  /// from plan.drop_seed() forked by i, so results — like the plain
  /// batch's — are byte-identical at every thread count. The
  /// query_engine.resilient_* counters are flushed only for a non-empty
  /// plan, keeping empty-plan reports byte-identical to run()'s.
  template <typename RRouter>
  ResilientStats run_resilient(std::span<const Query> queries,
                               const RRouter& router, const FaultPlan& plan,
                               std::vector<RouteProbe>* per_query =
                                   nullptr) const {
    const FailureSet dead = plan.materialize(*net_, journal_);
    return run_resilient_with(queries, router, dead, plan, per_query);
  }

  /// Same, over an already-materialized FailureSet (callers that audit or
  /// journal the dead set themselves).
  template <typename RRouter>
  ResilientStats run_resilient_with(std::span<const Query> queries,
                                    const RRouter& router,
                                    const FailureSet& dead,
                                    const FaultPlan& plan,
                                    std::vector<RouteProbe>* per_query =
                                        nullptr) const {
    const std::size_t n = queries.size();
    const std::size_t grain = query_grain();
    const std::size_t shards = (n + grain - 1) / grain;
    if (per_query) per_query->assign(n, RouteProbe{});
    const bool use_probe =
        !cost_ && !level_tracking_ && sink_ == nullptr && load_ == nullptr;
    const Rng drop_base(plan.drop_seed());
    const double drop_p = plan.drop_probability();

    std::vector<ResilientStats> per_shard(shards);
    std::vector<telemetry::LoadAccountant::Shard> load_shards(
        load_ ? shards : 0);
    const auto run_shard = [&](std::size_t s) {
      ResilientStats& stats = per_shard[s];
      telemetry::LoadAccountant::Shard* load_shard =
          load_ ? &load_shards[s] : nullptr;
      Route route_scratch;  // per-shard buffers, capacity reused
      typename RRouter::Scratch scratch;
      const std::size_t begin = s * grain;
      const std::size_t end = std::min(n, begin + grain);
      for (std::size_t i = begin; i < end; ++i) {
        const Query& q = queries[i];
        if (dead.dead(q.from)) {
          ++stats.skipped_dead_source;
          if (per_query) (*per_query)[i] = RouteProbe{q.from, 0, false};
          continue;
        }
        DropRoller drops(drop_p, drop_base.fork(i));
        ResilientProbe rp;
        if (use_probe) {
          rp = router.probe(q.from, q.key, dead, drops, scratch);
        } else {
          rp = router.route_into(q.from, q.key, dead, drops, scratch,
                                 route_scratch);
          observe_route(q, route_scratch, stats.base, load_shard);
        }
        ++stats.base.queries;
        stats.base.total_hops += static_cast<std::uint64_t>(rp.hops);
        if (rp.ok) {
          stats.base.hops.add(rp.hops);
        } else {
          ++stats.base.failures;
        }
        stats.retries += static_cast<std::uint64_t>(rp.retries);
        stats.fallback_hops += static_cast<std::uint64_t>(rp.fallback_hops);
        if (per_query) (*per_query)[i] = rp.to_probe();
      }
    };

    if (sink_) {
      for (std::size_t s = 0; s < shards; ++s) run_shard(s);
    } else {
      parallel_for(shards, 1, [&](std::size_t begin, std::size_t end) {
        for (std::size_t s = begin; s < end; ++s) run_shard(s);
      });
    }

    ResilientStats out;
    for (const ResilientStats& s : per_shard) out.merge(s);
    if (load_) {
      for (const auto& s : load_shards) load_->merge(s);
    }
    flush_batch_counters(out.base);
    if (!plan.empty()) flush_resilient_counters(out);
    return out;
  }

 private:
  /// Installs a RunOptions trace sink for one call, restoring the
  /// previously attached sink on scope exit (a null options trace leaves
  /// the attached sink in place).
  struct SinkGuard {
    QueryEngine* engine;
    telemetry::RouteTraceSink* prev;
    SinkGuard(QueryEngine* e, telemetry::RouteTraceSink* trace)
        : engine(e), prev(e->sink_) {
      if (trace) e->sink_ = trace;
    }
    ~SinkGuard() { engine->sink_ = prev; }
    SinkGuard(const SinkGuard&) = delete;
    SinkGuard& operator=(const SinkGuard&) = delete;
  };

  /// The path-dependent tallies of full (non-probe) mode: level tracking,
  /// path cost, trace replay, load accounting (into `load_shard` when a
  /// LoadAccountant is attached). Shared by run_batch and
  /// run_resilient_with.
  void observe_route(const Query& q, const Route& route, QueryStats& stats,
                     telemetry::LoadAccountant::Shard* load_shard) const;

  /// Post-merge flush of the query_engine.{batches,queries,hops,failures}
  /// counters, on the calling thread.
  void flush_batch_counters(const QueryStats& stats) const;

  /// Post-merge flush of the query_engine.resilient_* counters. Looked up
  /// lazily so the names never register — and never surface in metric
  /// reports — unless a faulty batch actually ran.
  void flush_resilient_counters(const ResilientStats& stats) const;

  const OverlayNetwork* net_;
  HopCost cost_;
  bool level_tracking_ = false;
  telemetry::RouteTraceSink* sink_ = nullptr;
  telemetry::EventJournal* journal_ = nullptr;
  telemetry::LoadAccountant* load_ = nullptr;
  telemetry::Counter* batches_counter_;
  telemetry::Counter* queries_counter_;
  telemetry::Counter* hops_counter_;
  telemetry::Counter* failures_counter_;
};

}  // namespace canon

#endif  // CANON_OVERLAY_QUERY_ENGINE_H
