// Resumable one-hop routing steppers.
//
// The greedy cores in overlay/routing.h (and the CAN/Can-Can/group cores
// in their own layers) walk a whole route in one call. The discrete-event
// simulators need the same decision *one hop at a time*, interleaved
// across thousands of in-flight lookups: given the node a lookup currently
// sits at, rank the next-hop candidates best-first and say whether the
// node is terminal. A Stepper is exactly that — the per-hop body of a
// routing core with the loop stripped off.
//
// Contract:
//
// * step(at, key, state, out) fills `out` with up to out.size() candidate
//   next hops, best first, and returns how many it wrote plus the
//   done/ok verdict. Candidate 0 is the hop the family's greedy route()
//   would take, so driving a stepper with "always take candidate 0" walks
//   the exact same path hop-for-hop (the α=1 equivalence the simulator
//   tests pin). Later candidates are the runners-up of the same scan, for
//   α-parallel speculative probes.
// * done=true means the lookup terminates at `at` (count is then 0):
//   ok tells whether `at` is the correct destination. count==0 with
//   done=false never happens — a node with no way forward is terminal.
// * `state` is a small per-lookup word threaded through the lookup's
//   steps. 0 is the start value for every family; most families ignore it
//   (the ranking is a pure function of (at, key)). Can-Can uses it for
//   its stage domain and an immediate-backtrack guard, so callers running
//   speculative probes must pass each probe a *copy* and adopt the
//   winner's copy when the frontier advances.
// * Steppers are immutable once built and safe to call concurrently from
//   one thread per lookup interleaving — they touch no mutable state
//   beyond the caller's `state` word.
//
// Ring/XOR steppers (the seven ring families and the two XOR families)
// live here in canon_overlay; the CAN/Can-Can/group steppers own heavier
// auxiliary structures and are built via the family registry's
// make_stepper hook (overlay/family_registry.h).
#ifndef CANON_OVERLAY_STEPPER_H
#define CANON_OVERLAY_STEPPER_H

#include <cstdint>
#include <functional>
#include <span>

#include "common/ids.h"
#include "overlay/link_table.h"
#include "overlay/overlay_network.h"

namespace canon {

/// Verdict of one resumable routing step. See the file comment.
struct StepResult {
  int count = 0;     ///< candidates written, ranked best-first
  bool done = false; ///< the lookup terminates at the queried node
  bool ok = false;   ///< terminal node is the correct destination
};

/// Widest candidate ranking any caller asks for: α-parallel lookups fan
/// out to at most this many speculative probes per step.
inline constexpr int kMaxStepCandidates = 8;

/// The resumable one-hop decision. See the file comment for the contract.
using Stepper = std::function<StepResult(
    NodeIndex at, NodeId key, std::uint64_t& state,
    std::span<NodeIndex> out)>;

/// Greedy-clockwise stepper (Chord/Crescendo/Symphony/... — every ring
/// family): candidates are the neighbors that advance clockwise without
/// overshooting the key, ranked by distance covered; terminal ok iff the
/// node is the key's responsible node. Candidate 0 reproduces
/// RingRouter's choice (first-best on ties). `net` and `links` are
/// borrowed and must outlive the stepper.
Stepper make_ring_stepper(const OverlayNetwork& net, const LinkTable& links);

/// Greedy XOR stepper (Kademlia/Kandy): candidates strictly reduce the
/// XOR distance to the key, ranked closest-first; terminal ok iff the node
/// is the global XOR-closest. Candidate 0 reproduces XorRouter's choice.
Stepper make_xor_stepper(const OverlayNetwork& net, const LinkTable& links);

namespace detail {

/// Small fixed-capacity best-K ranking: keeps the K smallest keys seen,
/// stable on ties (first inserted stays first), so candidate 0 always
/// matches the strict-inequality running-argbest of the scalar cores.
struct TopK {
  std::uint64_t metric[kMaxStepCandidates];
  NodeIndex node[kMaxStepCandidates];
  int count = 0;
  int cap;

  explicit TopK(int capacity)
      : cap(capacity < kMaxStepCandidates ? capacity : kMaxStepCandidates) {}

  /// Inserts (m, v) keeping metric ascending; equal metrics keep
  /// insertion order.
  void push(std::uint64_t m, NodeIndex v) {
    int i = count < cap ? count : cap - 1;
    if (count < cap) {
      ++count;
    } else if (m >= metric[cap - 1]) {
      return;
    }
    while (i > 0 && metric[i - 1] > m) {
      metric[i] = metric[i - 1];
      node[i] = node[i - 1];
      --i;
    }
    metric[i] = m;
    node[i] = v;
  }

  int emit(std::span<NodeIndex> out) const {
    const int n = count < static_cast<int>(out.size())
                      ? count
                      : static_cast<int>(out.size());
    for (int i = 0; i < n; ++i) out[i] = node[i];
    return n;
  }
};

}  // namespace detail

}  // namespace canon

#endif  // CANON_OVERLAY_STEPPER_H
