#include "overlay/population.h"

namespace canon {

OverlayNetwork make_population(const PopulationSpec& spec, Rng& rng) {
  const IdSpace space(spec.id_bits);
  const std::vector<NodeId> ids =
      sample_unique_ids(spec.node_count, space, rng);
  const std::vector<DomainPath> paths =
      generate_hierarchy(spec.node_count, spec.hierarchy, rng);
  std::vector<OverlayNode> nodes(spec.node_count);
  for (std::size_t i = 0; i < spec.node_count; ++i) {
    nodes[i].id = ids[i];
    nodes[i].domain = paths[i];
  }
  return OverlayNetwork(space, std::move(nodes));
}

}  // namespace canon
