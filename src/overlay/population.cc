#include "overlay/population.h"

namespace canon {

OverlayNetwork make_population(const PopulationSpec& spec, Rng& rng) {
  const IdSpace space(spec.id_bits);
  // Structure-of-arrays end to end: IDs and the packed path pool feed the
  // SoA constructor directly, so nothing is ever allocated per node — the
  // 10^6..10^7-node scale benches build through this exact path.
  std::vector<NodeId> ids = sample_unique_ids(spec.node_count, space, rng);
  DomainPathPool paths =
      generate_hierarchy_pool(spec.node_count, spec.hierarchy, rng);
  return OverlayNetwork(space, std::move(ids), std::move(paths));
}

}  // namespace canon
