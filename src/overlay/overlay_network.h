// The static overlay-network model shared by every DHT construction.
//
// An OverlayNetwork is an immutable population of nodes, each with a unique
// N-bit identifier, a position in the conceptual hierarchy, and (optionally)
// an attachment point in a physical topology. Nodes are indexed 0..n-1 in
// ascending ID order; a DomainTree indexes every non-empty domain.
//
// Per-node metadata lives in structure-of-arrays form — one flat NodeId
// array, one packed domain-path pool, one attachment array — rather than an
// array of node structs. At mega-scale (10^6..10^7 nodes) this cuts the
// resident metadata from ~100 bytes per node (struct padding, a heap vector
// per path, allocator slop) to ~25, and the ID-only hot paths scan a dense
// NodeId array. The OverlayNode struct remains as a convenience view:
// node(i) materializes one on demand.
//
// Link construction (src/dht, src/canon) and routing (routing.h) are layered
// on top of this class; it owns no links itself.
#ifndef CANON_OVERLAY_OVERLAY_NETWORK_H
#define CANON_OVERLAY_OVERLAY_NETWORK_H

#include <cstdint>
#include <span>
#include <vector>

#include "common/ids.h"
#include "hierarchy/domain_path.h"
#include "hierarchy/domain_tree.h"
#include "telemetry/mem_stats.h"

namespace canon {

/// One participant node, as supplied by the caller (and materialized on
/// demand by node(); the network itself stores structure-of-arrays).
struct OverlayNode {
  NodeId id = 0;        ///< unique identifier within the network's IdSpace
  DomainPath domain;    ///< position in the conceptual hierarchy
  std::int32_t attach = -1;  ///< router index in a physical topology, or -1
};

/// A search view over an ID-sorted member list (a "ring" in Chord terms).
/// Used for finger computation, responsibility lookups and range counting
/// within any domain. Cheap to copy; does not own the member list.
class RingView {
 public:
  RingView(const IdSpace& space, const std::vector<NodeId>& ids,
           std::span<const NodeIndex> members)
      : space_(space), ids_(&ids), members_(members) {}

  std::size_t size() const { return members_.size(); }
  bool empty() const { return members_.empty(); }
  NodeIndex at(std::size_t pos) const { return members_[pos]; }
  std::span<const NodeIndex> members() const { return members_; }

  /// Position of the first member with ID >= key, wrapping to 0 past the
  /// end. Requires a non-empty view.
  std::size_t successor_pos(NodeId key) const;

  /// The member with the smallest ID >= key (wrapping): Chord's successor.
  NodeIndex successor(NodeId key) const;

  /// The member managing `key` under the paper's responsibility rule
  /// (footnote 3): largest ID <= key, wrapping.
  NodeIndex predecessor_or_self(NodeId key) const;

  /// The closest member at ring distance >= dist from `from` (the standard
  /// Chord finger target). `dist` may exceed the space size, in which case
  /// there is no such member and nullopt-like sentinel kNone is returned.
  NodeIndex first_at_distance(NodeId from, std::uint64_t dist) const;

  /// Number of members with ID in the wrapped interval [lo, lo+len).
  std::size_t count_in(NodeId lo, std::uint64_t len) const;

  /// The k-th member (k < count_in(lo, len)) of the wrapped interval,
  /// in clockwise order starting at lo.
  NodeIndex select_in(NodeId lo, std::uint64_t len, std::size_t k) const;

  /// Clockwise distance from `from` to the view's successor of `from`+1,
  /// i.e. to the nearest other member ahead. Returns the full ring size if
  /// the view contains only `from` itself.
  std::uint64_t successor_distance(NodeId from) const;

  static constexpr NodeIndex kNone = kInvalidNodeIndex;

 private:
  IdSpace space_;
  const std::vector<NodeId>* ids_;
  std::span<const NodeIndex> members_;
};

/// Immutable node population. See file comment.
class OverlayNetwork {
 public:
  /// Sorts nodes by ID and indexes the hierarchy. Throws on duplicate IDs
  /// or IDs outside the space. (Convenience wrapper over the
  /// structure-of-arrays constructor below.)
  OverlayNetwork(IdSpace space, std::vector<OverlayNode> nodes);

  /// Structure-of-arrays constructor: parallel per-node arrays, index i
  /// describing node i (ids[i], paths[i], attach[i]); `attach` may be
  /// empty (no physical attachment). Sorts all arrays together by ID.
  /// This is the mega-scale entry point — nothing is ever held per node
  /// on the heap.
  OverlayNetwork(IdSpace space, std::vector<NodeId> ids, DomainPathPool paths,
                 std::vector<std::int32_t> attach = {});

  const IdSpace& space() const { return space_; }
  std::size_t size() const { return ids_.size(); }

  /// Materializes node `i` as an owning struct (allocates the path copy —
  /// convenience for examples/tests, not a hot path; hot paths use id(),
  /// path(), attach()).
  OverlayNode node(NodeIndex i) const {
    return OverlayNode{ids_[i], DomainPath(path(i)), attach(i)};
  }

  NodeId id(NodeIndex i) const { return ids_[i]; }

  /// Node `i`'s hierarchy position as a view into the packed path pool.
  DomainPathView path(NodeIndex i) const { return paths_.view(i); }

  /// Node `i`'s physical attachment (router index), or -1.
  std::int32_t attach(NodeIndex i) const {
    return attach_.empty() ? -1 : attach_[i];
  }

  /// All node IDs in ascending order (node index i -> ids()[i]).
  const std::vector<NodeId>& ids() const { return ids_; }

  const DomainTree& domains() const { return tree_; }

  /// View over the entire population.
  RingView ring() const;

  /// View over the members of domain `d` (a DomainTree index).
  RingView domain_ring(int d) const;

  /// The node responsible for `key` (largest ID <= key, wrapping).
  NodeIndex responsible(NodeId key) const;

  /// The node whose ID minimizes XOR distance to `key` (Kademlia target).
  NodeIndex xor_closest(NodeId key) const;

  /// Node index with the given ID; throws if absent.
  NodeIndex index_of(NodeId id) const;

  /// Depth of the lowest common domain of nodes a and b.
  int lca_level(NodeIndex a, NodeIndex b) const {
    return path(a).lca_depth(path(b));
  }

 private:
  /// ID-sorted, validated structure-of-arrays bundle (built in the .cc).
  struct Soa;
  static Soa sort_by_id(IdSpace space, std::vector<NodeId> ids,
                        DomainPathPool paths,
                        std::vector<std::int32_t> attach);
  static Soa soa_from_nodes(const std::vector<OverlayNode>& nodes);
  OverlayNetwork(IdSpace space, Soa soa);

  IdSpace space_;
  std::vector<NodeId> ids_;           // ascending
  DomainPathPool paths_;              // packed, index-aligned with ids_
  std::vector<std::int32_t> attach_;  // index-aligned, or empty
  DomainTree tree_;
  // Ledger holdings for the three metadata stores (no-ops when no memory
  // accountant is installed; see telemetry/mem_stats.h).
  telemetry::MemCharge mem_soa_;
  telemetry::MemCharge mem_paths_;
  telemetry::MemCharge mem_tree_;
};

}  // namespace canon

#endif  // CANON_OVERLAY_OVERLAY_NETWORK_H
