// The static overlay-network model shared by every DHT construction.
//
// An OverlayNetwork is an immutable population of nodes, each with a unique
// N-bit identifier, a position in the conceptual hierarchy, and (optionally)
// an attachment point in a physical topology. Nodes are indexed 0..n-1 in
// ascending ID order; a DomainTree indexes every non-empty domain.
//
// Link construction (src/dht, src/canon) and routing (routing.h) are layered
// on top of this class; it owns no links itself.
#ifndef CANON_OVERLAY_OVERLAY_NETWORK_H
#define CANON_OVERLAY_OVERLAY_NETWORK_H

#include <cstdint>
#include <span>
#include <vector>

#include "common/ids.h"
#include "hierarchy/domain_path.h"
#include "hierarchy/domain_tree.h"

namespace canon {

/// One participant node, as supplied by the caller.
struct OverlayNode {
  NodeId id = 0;        ///< unique identifier within the network's IdSpace
  DomainPath domain;    ///< position in the conceptual hierarchy
  std::int32_t attach = -1;  ///< router index in a physical topology, or -1
};

/// A search view over an ID-sorted member list (a "ring" in Chord terms).
/// Used for finger computation, responsibility lookups and range counting
/// within any domain. Cheap to copy; does not own the member list.
class RingView {
 public:
  RingView(const IdSpace& space, const std::vector<NodeId>& ids,
           std::span<const std::uint32_t> members)
      : space_(space), ids_(&ids), members_(members) {}

  std::size_t size() const { return members_.size(); }
  bool empty() const { return members_.empty(); }
  std::uint32_t at(std::size_t pos) const { return members_[pos]; }
  std::span<const std::uint32_t> members() const { return members_; }

  /// Position of the first member with ID >= key, wrapping to 0 past the
  /// end. Requires a non-empty view.
  std::size_t successor_pos(NodeId key) const;

  /// The member with the smallest ID >= key (wrapping): Chord's successor.
  std::uint32_t successor(NodeId key) const;

  /// The member managing `key` under the paper's responsibility rule
  /// (footnote 3): largest ID <= key, wrapping.
  std::uint32_t predecessor_or_self(NodeId key) const;

  /// The closest member at ring distance >= dist from `from` (the standard
  /// Chord finger target). `dist` may exceed the space size, in which case
  /// there is no such member and nullopt-like sentinel kNone is returned.
  std::uint32_t first_at_distance(NodeId from, std::uint64_t dist) const;

  /// Number of members with ID in the wrapped interval [lo, lo+len).
  std::size_t count_in(NodeId lo, std::uint64_t len) const;

  /// The k-th member (k < count_in(lo, len)) of the wrapped interval,
  /// in clockwise order starting at lo.
  std::uint32_t select_in(NodeId lo, std::uint64_t len, std::size_t k) const;

  /// Clockwise distance from `from` to the view's successor of `from`+1,
  /// i.e. to the nearest other member ahead. Returns the full ring size if
  /// the view contains only `from` itself.
  std::uint64_t successor_distance(NodeId from) const;

  static constexpr std::uint32_t kNone = 0xFFFFFFFFu;

 private:
  IdSpace space_;
  const std::vector<NodeId>* ids_;
  std::span<const std::uint32_t> members_;
};

/// Immutable node population. See file comment.
class OverlayNetwork {
 public:
  /// Sorts nodes by ID and indexes the hierarchy. Throws on duplicate IDs
  /// or IDs outside the space.
  OverlayNetwork(IdSpace space, std::vector<OverlayNode> nodes);

  const IdSpace& space() const { return space_; }
  std::size_t size() const { return nodes_.size(); }
  const OverlayNode& node(std::uint32_t i) const { return nodes_[i]; }
  NodeId id(std::uint32_t i) const { return nodes_[i].id; }

  /// All node IDs in ascending order (node index i -> ids()[i]).
  const std::vector<NodeId>& ids() const { return ids_; }

  const DomainTree& domains() const { return tree_; }

  /// View over the entire population.
  RingView ring() const;

  /// View over the members of domain `d` (a DomainTree index).
  RingView domain_ring(int d) const;

  /// The node responsible for `key` (largest ID <= key, wrapping).
  std::uint32_t responsible(NodeId key) const;

  /// The node whose ID minimizes XOR distance to `key` (Kademlia target).
  std::uint32_t xor_closest(NodeId key) const;

  /// Node index with the given ID; throws if absent.
  std::uint32_t index_of(NodeId id) const;

  /// Depth of the lowest common domain of nodes a and b.
  int lca_level(std::uint32_t a, std::uint32_t b) const {
    return nodes_[a].domain.lca_depth(nodes_[b].domain);
  }

 private:
  IdSpace space_;
  std::vector<OverlayNode> nodes_;  // ascending by id
  std::vector<NodeId> ids_;         // nodes_[i].id
  DomainTree tree_;
};

}  // namespace canon

#endif  // CANON_OVERLAY_OVERLAY_NETWORK_H
