// Path-level metrics used by the evaluation (Sections 5.3 and 5.4):
// overlap fractions between converging query paths, per-path latency, and
// multicast trees formed by the union of reverse query paths.
#ifndef CANON_OVERLAY_METRICS_H
#define CANON_OVERLAY_METRICS_H

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "overlay/overlay_network.h"
#include "overlay/routing.h"

namespace canon {

/// Latency (or any additive cost) of a directed overlay hop.
using HopCost = std::function<double(std::uint32_t, std::uint32_t)>;

/// Total cost of a route under `cost`; 0 for single-node paths.
double path_cost(const Route& route, const HopCost& cost);

/// Fraction of `second`'s hops that overlap with `first` (Section 5.4).
///
/// Both routes must target the same key with deterministic routing, so once
/// `second` reaches any node on `first` the two paths coincide; the overlap
/// is that common suffix. Returns nullopt when `second` has no hops.
std::optional<double> hop_overlap_fraction(const Route& first,
                                           const Route& second);

/// Same, weighting hops by `cost` (the paper's latency overlap fraction).
/// Returns nullopt when `second` has zero total cost.
std::optional<double> cost_overlap_fraction(const Route& first,
                                            const Route& second,
                                            const HopCost& cost);

/// The multicast tree induced by routing from many sources to one common
/// destination: the union of the (directed) query-path edges.
class MulticastTree {
 public:
  void add_route(const Route& route);

  /// Number of distinct edges in the tree.
  std::size_t edge_count() const { return edges_.size(); }

  /// Number of distinct edges whose endpoints do NOT share a domain at
  /// depth `level` (i.e. edges crossing a level-`level` domain boundary).
  std::size_t inter_domain_edges(const OverlayNetwork& net, int level) const;

  const std::vector<std::pair<std::uint32_t, std::uint32_t>>& edges() const {
    return edges_;
  }

 private:
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges_;  // sorted set
};

}  // namespace canon

#endif  // CANON_OVERLAY_METRICS_H
