// Failure injection: what goes wrong, and when.
//
// A FaultPlan is the declarative description of an injected-failure
// scenario: fail-stop crashes (optionally scheduled at a virtual time),
// revivals, and a transient message-drop probability. Plans are inert
// data; materialize() turns the crash/revive schedule into the FailureSet
// the resilient routing cores consult per hop, journaling every applied
// event (telemetry/journal.h) so an experiment's fault history is a
// replayable artifact.
//
// Message drops are modelled per forwarding attempt: the engine derives a
// DropRoller per query from the plan's drop seed (forked by query index),
// so the drop pattern — like the workload itself — is a pure function of
// the seed, never of the thread count.
#ifndef CANON_OVERLAY_FAULT_PLAN_H
#define CANON_OVERLAY_FAULT_PLAN_H

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "overlay/overlay_network.h"
#include "overlay/routing.h"

namespace canon::telemetry {
class EventJournal;
}  // namespace canon::telemetry

namespace canon {

/// Live/dead state for the population; nodes are alive by default.
class FailureSet {
 public:
  explicit FailureSet(std::size_t node_count) : dead_(node_count, false) {}

  void kill(std::uint32_t node) {
    if (!dead_[node]) {
      dead_[node] = true;
      ++dead_count_;
    }
  }
  void revive(std::uint32_t node) {
    if (dead_[node]) {
      dead_[node] = false;
      --dead_count_;
    }
  }
  bool dead(std::uint32_t node) const { return dead_[node]; }
  std::size_t size() const { return dead_.size(); }
  std::size_t dead_count() const { return dead_count_; }
  /// O(1): the routing cores consult this per query to skip the
  /// fault-only bookkeeping on fully-live populations.
  bool any() const { return dead_count_ > 0; }

 private:
  std::vector<bool> dead_;
  std::size_t dead_count_ = 0;
};

/// One scheduled fail-stop or revival.
struct FaultEvent {
  enum class Kind : std::uint8_t { kCrash, kRevive };

  std::uint64_t at = 0;    ///< virtual time (experiment-defined units)
  std::uint32_t node = 0;  ///< node index
  Kind kind = Kind::kCrash;

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// See the file comment. An empty plan injects nothing; the engine's
/// resilient batch mode is then behaviourally identical to the plain one.
class FaultPlan {
 public:
  /// Schedules a fail-stop of `node` at virtual time `at`.
  void crash(std::uint32_t node, std::uint64_t at = 0);

  /// Schedules `node` to come back at virtual time `at`.
  void revive(std::uint32_t node, std::uint64_t at = 0);

  /// Every forwarding attempt is independently dropped with probability
  /// `probability`; `seed` roots the per-query drop streams.
  void set_drop(double probability, std::uint64_t seed = kDefaultDropSeed);

  double drop_probability() const { return drop_probability_; }
  std::uint64_t drop_seed() const { return drop_seed_; }
  bool has_drops() const { return drop_probability_ > 0; }

  /// True iff the plan injects nothing at all.
  bool empty() const { return events_.empty() && drop_probability_ == 0; }

  /// The schedule, in insertion order (materialize applies it stably
  /// sorted by time).
  std::span<const FaultEvent> events() const { return events_; }

  /// Applies every event with `at` <= `until` in (time, insertion) order
  /// and returns the resulting live/dead state. When `journal` is given,
  /// each applied event is recorded as a "crash" / "revive" journal line
  /// carrying the node index and its overlay ID.
  static constexpr std::uint64_t kWholeSchedule = ~std::uint64_t{0};
  FailureSet materialize(const OverlayNetwork& net,
                         telemetry::EventJournal* journal = nullptr,
                         std::uint64_t until = kWholeSchedule) const;

  /// The standard kill-fraction scenario: node i crashes iff its hash
  /// under `seed` falls below `fraction`. Kill sets are *nested* in the
  /// fraction — every node dead at 10% is also dead at 30% under the same
  /// seed — which is what makes success-vs-fraction curves (and the
  /// monotonicity tests) well-behaved.
  static FaultPlan fail_fraction(std::size_t node_count, double fraction,
                                 std::uint64_t seed);

  static constexpr std::uint64_t kDefaultDropSeed = 0x64726f7021ULL;

 private:
  std::vector<FaultEvent> events_;
  double drop_probability_ = 0;
  std::uint64_t drop_seed_ = kDefaultDropSeed;
};

/// Per-query source of forwarding-drop decisions. Value type; the engine
/// builds one per query from the plan's drop seed forked by query index.
class DropRoller {
 public:
  DropRoller() = default;
  DropRoller(double probability, Rng rng)
      : probability_(probability), rng_(rng) {}

  bool active() const { return probability_ > 0; }

  /// Rolls one forwarding attempt; true = the message was lost.
  bool drop() {
    return probability_ > 0 && rng_.uniform_double() < probability_;
  }

 private:
  double probability_ = 0;
  Rng rng_{0};
};

/// Outcome of one resilient routed query: a RouteProbe plus the recovery
/// work it took. At zero faults `retries` and `fallback_hops` are 0 and
/// to_probe() matches the plain router's probe() exactly.
struct ResilientProbe {
  std::uint32_t terminal = 0;
  int hops = 0;
  bool ok = false;
  int retries = 0;        ///< dropped forwarding attempts that were retried
  int fallback_hops = 0;  ///< hops taken via a recovery path (leaf set,
                          ///< live face, XOR fallback)

  RouteProbe to_probe() const { return RouteProbe{terminal, hops, ok}; }

  friend bool operator==(const ResilientProbe&,
                         const ResilientProbe&) = default;
};

/// Per-hop retry budget shared by every resilient core (Kademlia's alpha):
/// after this many consecutive drops on one hop the query is lost.
inline constexpr int kRetryBudget = 3;

}  // namespace canon

#endif  // CANON_OVERLAY_FAULT_PLAN_H
