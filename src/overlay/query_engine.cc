#include "overlay/query_engine.h"

#include <algorithm>
#include <atomic>

#include "common/parallel.h"
#include "common/zipf.h"
#include "telemetry/mem_stats.h"

namespace canon {

namespace {

// Runtime shard size (see query_grain() in the header). Relaxed atomics:
// set at startup or between batches, never mid-batch.
std::atomic<std::size_t> g_query_grain{kQueryGrain};

}  // namespace

std::size_t query_grain() {
  return g_query_grain.load(std::memory_order_relaxed);
}

void set_query_grain(std::size_t grain) {
  g_query_grain.store(grain == 0 ? kQueryGrain : grain,
                      std::memory_order_relaxed);
}

void RunOptions::apply() const {
  set_parallel_threads(threads);
  set_query_grain(grain);
  set_probe_batch_width(batch_width);
}

std::vector<Query> generate_workload(
    std::size_t count, const Rng& base,
    const std::function<Query(Rng&, std::size_t)>& make) {
  std::vector<Query> out(count);
  // Query i is a pure function of base.fork(i): any grain partitions the
  // same per-index work, so the workload is grain- and thread-invariant.
  parallel_for(count, query_grain(),
               [&](std::size_t begin, std::size_t end) {
                 for (std::size_t i = begin; i < end; ++i) {
                   Rng q = base.fork(i);
                   out[i] = make(q, i);
                 }
               });
  return out;
}

std::vector<Query> uniform_workload(const OverlayNetwork& net,
                                    std::size_t count, const Rng& base) {
  const std::size_t n = net.size();
  const IdSpace& space = net.space();
  return generate_workload(count, base, [&](Rng& rng, std::size_t) {
    Query q;
    q.from = static_cast<NodeIndex>(rng.uniform(n));
    q.key = space.wrap(rng());
    return q;
  });
}

std::vector<Query> zipf_workload(const OverlayNetwork& net, std::size_t count,
                                 const Rng& base, double theta,
                                 std::size_t key_pool) {
  const std::size_t n = net.size();
  const IdSpace& space = net.space();
  if (key_pool == 0) key_pool = n;
  // The pool is drawn serially from a dedicated fork so its contents don't
  // depend on count or thread count; rank r holds the r-th draw.
  Rng pool_rng = base.fork(0x6b657973ULL);  // "keys"
  std::vector<NodeId> pool(key_pool);
  for (NodeId& key : pool) key = space.wrap(pool_rng());
  const ZipfSampler zipf(key_pool, theta);
  return generate_workload(count, base, [&](Rng& rng, std::size_t) {
    Query q;
    q.from = static_cast<NodeIndex>(rng.uniform(n));
    q.key = pool[zipf.sample(rng)];
    return q;
  });
}

void QueryStats::merge(const QueryStats& other) {
  hops.merge(other.hops);
  cost.merge(other.cost);
  if (other.hops_by_level.size() > hops_by_level.size()) {
    hops_by_level.resize(other.hops_by_level.size(), 0);
  }
  for (std::size_t l = 0; l < other.hops_by_level.size(); ++l) {
    hops_by_level[l] += other.hops_by_level[l];
  }
  queries += other.queries;
  failures += other.failures;
  total_hops += other.total_hops;
}

double ResilientStats::success_rate() const {
  return base.queries == 0
             ? 1.0
             : static_cast<double>(base.ok()) /
                   static_cast<double>(base.queries);
}

double ResilientStats::availability() const {
  const std::uint64_t total = base.queries + skipped_dead_source;
  return total == 0
             ? 1.0
             : static_cast<double>(base.ok()) / static_cast<double>(total);
}

void ResilientStats::merge(const ResilientStats& other) {
  base.merge(other.base);
  skipped_dead_source += other.skipped_dead_source;
  retries += other.retries;
  fallback_hops += other.fallback_hops;
}

QueryEngine::QueryEngine(const OverlayNetwork& net)
    : net_(&net),
      batches_counter_(telemetry::maybe_counter("query_engine.batches")),
      queries_counter_(telemetry::maybe_counter("query_engine.queries")),
      hops_counter_(telemetry::maybe_counter("query_engine.hops")),
      failures_counter_(telemetry::maybe_counter("query_engine.failures")) {}

QueryStats QueryEngine::run_batch(std::span<const Query> queries,
                                  const RouteIntoFn& route_into,
                                  const ProbeFn& probe,
                                  std::vector<RouteProbe>* per_query,
                                  const ProbeBatchFn& probe_batch) const {
  const std::size_t n = queries.size();
  const std::size_t grain = query_grain();
  const std::size_t shards = (n + grain - 1) / grain;
  if (per_query) per_query->assign(n, RouteProbe{});

  // Probe mode: terminal-only routing, no path materialized anywhere.
  // Anything that must see the hop-by-hop path disables it.
  const bool use_probe = probe && !cost_ && !level_tracking_ &&
                         sink_ == nullptr && load_ == nullptr;

  std::vector<QueryStats> per_shard(shards);
  std::vector<telemetry::LoadAccountant::Shard> load_shards(load_ ? shards
                                                                  : 0);
  // Per-shard scratch footprint, recorded by the worker that ran the
  // shard (the shard's routes alone determine the final capacity) and
  // charged to the memory accountant on the calling thread after the
  // barrier, in fixed shard order.
  std::vector<std::uint64_t> scratch_bytes(
      telemetry::mem_accountant() ? shards : 0);
  const auto run_shard = [&](std::size_t s) {
    QueryStats& stats = per_shard[s];
    telemetry::LoadAccountant::Shard* load_shard =
        load_ ? &load_shards[s] : nullptr;
    Route scratch;  // one buffer per shard, capacity reused across queries
    const std::size_t begin = s * grain;
    const std::size_t end = std::min(n, begin + grain);
    // The interleaved kernel routes the whole shard up front; the stats
    // loop below then drains its results in query order, so every
    // accumulation (and with it every figure) is identical to the
    // per-query probe path.
    std::vector<RouteProbe> batch_out;
    const bool use_batch = use_probe && probe_batch != nullptr;
    if (use_batch) {
      batch_out.resize(end - begin);
      probe_batch(queries.subspan(begin, end - begin), batch_out);
    }
    for (std::size_t i = begin; i < end; ++i) {
      const Query& q = queries[i];
      RouteProbe p;
      if (use_batch) {
        p = batch_out[i - begin];
      } else if (use_probe) {
        p = probe(q.from, q.key);
      } else {
        route_into(q.from, q.key, scratch);
        p = RouteProbe{scratch.terminal(), scratch.hops(), scratch.ok};
        observe_route(q, scratch, stats, load_shard);
      }
      ++stats.queries;
      stats.total_hops += static_cast<std::uint64_t>(p.hops);
      if (p.ok) {
        stats.hops.add(p.hops);
      } else {
        ++stats.failures;
      }
      if (per_query) (*per_query)[i] = p;
    }
    if (!scratch_bytes.empty()) {
      scratch_bytes[s] = telemetry::vector_bytes(scratch.path) +
                         telemetry::vector_bytes(batch_out);
    }
  };

  if (sink_) {
    // A sink observes one global event stream: keep workload order.
    for (std::size_t s = 0; s < shards; ++s) run_shard(s);
  } else {
    // grain 1: shard s of the index range IS query-shard s, so the
    // partition (and with it every accumulation order below) is the same
    // at every thread count.
    parallel_for(shards, 1, [&](std::size_t begin, std::size_t end) {
      for (std::size_t s = begin; s < end; ++s) run_shard(s);
    });
  }

  QueryStats out;
  for (const QueryStats& s : per_shard) out.merge(s);
  if (load_) {
    for (const auto& s : load_shards) load_->merge(s);
  }
  if (!scratch_bytes.empty()) {
    // Charge every shard's scratch together, then release: the tag's peak
    // records the concurrency-equivalent footprint (all shards resident at
    // once), which is what the figure would be at maximum parallelism —
    // and is a pure function of the shard partition, so byte-identical at
    // any --threads.
    telemetry::MemScope scope("query.scratch");
    for (const std::uint64_t bytes : scratch_bytes) scope.add(bytes);
  }
  flush_batch_counters(out);
  return out;
}

void QueryEngine::observe_route(
    const Query& q, const Route& route, QueryStats& stats,
    telemetry::LoadAccountant::Shard* load_shard) const {
  if (load_shard) load_->observe(route.path, route.ok, q.key, *load_shard);
  if (level_tracking_) {
    for (std::size_t j = 0; j + 1 < route.path.size(); ++j) {
      const int level = net_->lca_level(route.path[j], route.path[j + 1]);
      if (level < 0) continue;
      if (static_cast<std::size_t>(level) >= stats.hops_by_level.size()) {
        stats.hops_by_level.resize(static_cast<std::size_t>(level) + 1, 0);
      }
      ++stats.hops_by_level[static_cast<std::size_t>(level)];
    }
  }
  if (cost_ && route.ok) stats.cost.add(path_cost(route, cost_));
  if (sink_) {
    const std::uint64_t trace_id = sink_->begin_lookup(q.from, q.key);
    for (std::size_t j = 0; j + 1 < route.path.size(); ++j) {
      telemetry::HopRecord hop;
      hop.lookup = trace_id;
      hop.from = route.path[j];
      hop.to = route.path[j + 1];
      hop.hop_index = static_cast<int>(j);
      hop.level = net_->lca_level(route.path[j], route.path[j + 1]);
      sink_->on_hop(hop);
    }
    sink_->end_lookup(trace_id, route.ok, route.terminal());
  }
}

void QueryEngine::flush_batch_counters(const QueryStats& stats) const {
  // Telemetry flush: aggregate only, on the calling thread, after the
  // barrier — no Counter is ever touched inside a shard.
  if (batches_counter_) batches_counter_->inc();
  if (queries_counter_) queries_counter_->inc(stats.queries);
  if (hops_counter_) hops_counter_->inc(stats.total_hops);
  if (failures_counter_) failures_counter_->inc(stats.failures);
}

void QueryEngine::flush_resilient_counters(const ResilientStats& stats) const {
  const auto bump = [](const char* name, std::uint64_t value) {
    if (telemetry::Counter* c = telemetry::maybe_counter(name)) c->inc(value);
  };
  bump("query_engine.resilient_batches", 1);
  bump("query_engine.resilient_retries", stats.retries);
  bump("query_engine.resilient_fallback_hops", stats.fallback_hops);
  bump("query_engine.resilient_skipped_sources", stats.skipped_dead_source);
}

}  // namespace canon
