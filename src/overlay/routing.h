// Greedy overlay routing (Section 2.2 of the paper).
//
// Routing in every Canon construction is plain greedy routing on the
// relevant metric over the union of a node's links; the hierarchical
// behaviour (intra-domain locality, inter-domain convergence) is emergent.
//
// * RingRouter: greedy clockwise, never overshooting the key. Terminates at
//   the key's responsible node (its closest predecessor). Also implements
//   Symphony's 1-step lookahead variant (Section 3.1).
// * XorRouter: greedy XOR-distance reduction (Kademlia/CAN families).
#ifndef CANON_OVERLAY_ROUTING_H
#define CANON_OVERLAY_ROUTING_H

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "overlay/link_table.h"
#include "overlay/overlay_network.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace canon {

/// The hop-by-hop trace of one routed query.
struct Route {
  std::vector<std::uint32_t> path;  ///< node indices, source first
  bool ok = false;  ///< true if routing reached the correct destination

  int hops() const { return static_cast<int>(path.size()) - 1; }
  std::uint32_t source() const { return path.front(); }
  std::uint32_t terminal() const { return path.back(); }
};

/// Greedy clockwise routing for the Chord/Crescendo/Symphony families.
class RingRouter {
 public:
  RingRouter(const OverlayNetwork& net, const LinkTable& links);

  /// Routes from node `from` towards `key`; stops at the first node none of
  /// whose neighbors can advance clockwise without overshooting the key.
  /// Route::ok is set iff that node is the key's responsible node.
  Route route(std::uint32_t from, NodeId key) const;

  /// Greedy routing with a 1-step lookahead: examines neighbors' neighbors
  /// and takes the first step of the best 2-step plan (Symphony, §3.1).
  Route route_lookahead(std::uint32_t from, NodeId key) const;

  /// Attaches a trace sink receiving per-hop events (hierarchy level,
  /// candidates evaluated) for every subsequent route; nullptr detaches.
  void set_trace(telemetry::RouteTraceSink* sink) { sink_ = sink; }

 private:
  const OverlayNetwork* net_;
  const LinkTable* links_;
  int max_hops_;
  telemetry::RouteTraceSink* sink_ = nullptr;
  telemetry::Counter* routes_counter_;
  telemetry::Counter* hops_counter_;
  telemetry::Counter* failures_counter_;
};

/// Greedy XOR routing for the Kademlia/CAN families.
class XorRouter {
 public:
  XorRouter(const OverlayNetwork& net, const LinkTable& links);

  /// Routes by strictly decreasing XOR distance to `key`. Route::ok is set
  /// iff the terminal node is the global XOR-closest node to the key.
  Route route(std::uint32_t from, NodeId key) const;

  /// Attaches a trace sink (see RingRouter::set_trace).
  void set_trace(telemetry::RouteTraceSink* sink) { sink_ = sink; }

 private:
  const OverlayNetwork* net_;
  const LinkTable* links_;
  int max_hops_;
  telemetry::RouteTraceSink* sink_ = nullptr;
  telemetry::Counter* routes_counter_;
  telemetry::Counter* hops_counter_;
  telemetry::Counter* failures_counter_;
};

}  // namespace canon

#endif  // CANON_OVERLAY_ROUTING_H
