// Greedy overlay routing (Section 2.2 of the paper).
//
// Routing in every Canon construction is plain greedy routing on the
// relevant metric over the union of a node's links; the hierarchical
// behaviour (intra-domain locality, inter-domain convergence) is emergent.
//
// * RingRouter: greedy clockwise, never overshooting the key. Terminates at
//   the key's responsible node (its closest predecessor). Also implements
//   Symphony's 1-step lookahead variant (Section 3.1).
// * XorRouter: greedy XOR-distance reduction (Kademlia/CAN families).
#ifndef CANON_OVERLAY_ROUTING_H
#define CANON_OVERLAY_ROUTING_H

#include <cstdint>
#include <span>
#include <vector>

#include "common/ids.h"
#include "overlay/link_table.h"
#include "overlay/overlay_network.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace canon {

/// The hop-by-hop trace of one routed query.
struct Route {
  std::vector<NodeIndex> path;  ///< node indices, source first
  bool ok = false;  ///< true if routing reached the correct destination

  int hops() const { return static_cast<int>(path.size()) - 1; }
  NodeIndex source() const { return path.front(); }
  NodeIndex terminal() const { return path.back(); }
};

/// Terminal-only outcome of a routed query: what probe-mode routing
/// returns, and what route_into/route imply hop-for-hop. For the same
/// (from, key) on the same structure, probe() and route() agree on every
/// field.
struct RouteProbe {
  NodeIndex terminal = 0;  ///< node the query stopped at
  int hops = 0;                ///< forwarding steps taken
  bool ok = false;             ///< reached the correct destination

  friend bool operator==(const RouteProbe&, const RouteProbe&) = default;
};

/// One lookup of a batch workload (lives here rather than in
/// query_engine.h so the routers' probe_batch entry points can name it).
struct Query {
  NodeIndex from = 0;      ///< source node index
  NodeId key = 0;          ///< target key

  friend bool operator==(const Query&, const Query&) = default;
};

/// Hard cap on the interleaved batch window: lane state must stay small
/// enough to live in L1 while W outstanding CSR rows stream in.
inline constexpr int kMaxProbeBatchWidth = 64;

/// Default window. 8-16 lanes cover typical DRAM latency at one greedy
/// scan (~tens of ns) per lane per round; chosen by measurement on the
/// reference container (docs/PERFORMANCE.md "Memory-level parallelism").
inline constexpr int kDefaultProbeBatchWidth = 16;

/// Process-wide batch window for every probe_batch() entry point
/// (routers are stateless about it, like parallel thread count).
/// Width <= 0 selects the scalar per-query probe loop — the reference
/// the equivalence tests compare against; width 1 runs the interleaved
/// kernel with a single lane. Values above kMaxProbeBatchWidth clamp.
/// Results are byte-identical at every width by construction.
int probe_batch_width();
void set_probe_batch_width(int width);

// Hot-path contract shared by RingRouter / XorRouter (and GroupRouter in
// canon/proximity.h):
//
// * route(from, key)          — allocates a fresh Route, bumps the router's
//                               telemetry counters and emits trace-sink
//                               events. The single-query convenience path.
// * route_into(from, key, r)  — identical path/ok result written into the
//                               caller's Route, reusing its capacity. No
//                               telemetry, no trace events: safe to call
//                               concurrently from many threads on one
//                               const router (the batch QueryEngine's full
//                               mode).
// * probe(from, key)          — hop count + terminal only, no path storage
//                               at all. Same concurrency guarantee (the
//                               QueryEngine's mode when nobody needs
//                               paths).
//
// Callers of route_into/probe own their telemetry: the QueryEngine
// accumulates per-shard tallies and flushes them after its merge barrier
// (telemetry::Counter is a plain uint64_t and must never be shared across
// shards).

/// Greedy clockwise routing for the Chord/Crescendo/Symphony families.
class RingRouter {
 public:
  RingRouter(const OverlayNetwork& net, const LinkTable& links);

  /// Routes from node `from` towards `key`; stops at the first node none of
  /// whose neighbors can advance clockwise without overshooting the key.
  /// Route::ok is set iff that node is the key's responsible node.
  Route route(NodeIndex from, NodeId key) const;

  /// Greedy routing with a 1-step lookahead: examines neighbors' neighbors
  /// and takes the first step of the best 2-step plan (Symphony, §3.1).
  Route route_lookahead(NodeIndex from, NodeId key) const;

  /// Allocation-free variants: see the hot-path contract above.
  void route_into(NodeIndex from, NodeId key, Route& out) const;
  void route_lookahead_into(NodeIndex from, NodeId key, Route& out) const;
  RouteProbe probe(NodeIndex from, NodeId key) const;
  RouteProbe probe_lookahead(NodeIndex from, NodeId key) const;

  /// Memory-level-parallel probe: advances probe_batch_width() queries in
  /// lockstep, one greedy hop each per round, prefetching every lane's
  /// next CSR row before any row is scanned. out[i] is exactly
  /// probe(queries[i].from, queries[i].key) — same hops, terminal, ok —
  /// at every width; only the memory schedule differs. Falls back to the
  /// scalar probe loop when the width is <= 0 or the link table has no
  /// inline ids. Same concurrency guarantee as probe().
  /// Requires out.size() == queries.size().
  void probe_batch(std::span<const Query> queries,
                   std::span<RouteProbe> out) const;

  /// Attaches a trace sink receiving per-hop events (hierarchy level,
  /// candidates evaluated) for every subsequent route; nullptr detaches.
  /// Only route()/route_lookahead() emit events; the *_into/probe hot
  /// paths never do.
  void set_trace(telemetry::RouteTraceSink* sink) { sink_ = sink; }

 private:
  const OverlayNetwork* net_;
  const LinkTable* links_;
  int max_hops_;
  telemetry::RouteTraceSink* sink_ = nullptr;
  telemetry::Counter* routes_counter_;
  telemetry::Counter* hops_counter_;
  telemetry::Counter* failures_counter_;
};

/// Greedy XOR routing for the Kademlia/CAN families.
class XorRouter {
 public:
  XorRouter(const OverlayNetwork& net, const LinkTable& links);

  /// Routes by strictly decreasing XOR distance to `key`. Route::ok is set
  /// iff the terminal node is the global XOR-closest node to the key.
  Route route(NodeIndex from, NodeId key) const;

  /// Allocation-free variants: see the hot-path contract above.
  void route_into(NodeIndex from, NodeId key, Route& out) const;
  RouteProbe probe(NodeIndex from, NodeId key) const;

  /// Interleaved batch probe; see RingRouter::probe_batch.
  void probe_batch(std::span<const Query> queries,
                   std::span<RouteProbe> out) const;

  /// Attaches a trace sink (see RingRouter::set_trace).
  void set_trace(telemetry::RouteTraceSink* sink) { sink_ = sink; }

 private:
  const OverlayNetwork* net_;
  const LinkTable* links_;
  int max_hops_;
  telemetry::RouteTraceSink* sink_ = nullptr;
  telemetry::Counter* routes_counter_;
  telemetry::Counter* hops_counter_;
  telemetry::Counter* failures_counter_;
};

}  // namespace canon

#endif  // CANON_OVERLAY_ROUTING_H
