#include "overlay/fault_plan.h"

#include <algorithm>
#include <stdexcept>

#include "telemetry/journal.h"

namespace canon {

void FaultPlan::crash(std::uint32_t node, std::uint64_t at) {
  events_.push_back(FaultEvent{at, node, FaultEvent::Kind::kCrash});
}

void FaultPlan::revive(std::uint32_t node, std::uint64_t at) {
  events_.push_back(FaultEvent{at, node, FaultEvent::Kind::kRevive});
}

void FaultPlan::set_drop(double probability, std::uint64_t seed) {
  if (probability < 0 || probability >= 1) {
    throw std::invalid_argument("FaultPlan: drop probability must be in [0,1)");
  }
  drop_probability_ = probability;
  drop_seed_ = seed;
}

FailureSet FaultPlan::materialize(const OverlayNetwork& net,
                                  telemetry::EventJournal* journal,
                                  std::uint64_t until) const {
  FailureSet out(net.size());
  // Stable sort: events at the same virtual time apply in insertion order.
  std::vector<std::size_t> order(events_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return events_[a].at < events_[b].at;
                   });
  for (const std::size_t i : order) {
    const FaultEvent& ev = events_[i];
    if (ev.at > until) break;
    if (ev.node >= net.size()) {
      throw std::out_of_range("FaultPlan: event node out of range");
    }
    if (ev.kind == FaultEvent::Kind::kCrash) {
      out.kill(ev.node);
      if (journal) journal->crash(ev.node, net.id(ev.node), ev.at);
    } else {
      out.revive(ev.node);
      if (journal) journal->revive(ev.node, net.id(ev.node), ev.at);
    }
  }
  return out;
}

FaultPlan FaultPlan::fail_fraction(std::size_t node_count, double fraction,
                                   std::uint64_t seed) {
  if (fraction < 0 || fraction >= 1) {
    throw std::invalid_argument("fail_fraction: fraction must be in [0,1)");
  }
  FaultPlan plan;
  for (std::size_t i = 0; i < node_count; ++i) {
    // One SplitMix64 draw per node, independent of the fraction: the kill
    // decision thresholds the same hash, so kill sets nest (header).
    SplitMix64 sm(seed ^ (0x9e3779b97f4a7c15ULL * (i + 1)));
    const double u =
        static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
    if (u < fraction) plan.crash(static_cast<std::uint32_t>(i));
  }
  return plan;
}

}  // namespace canon
